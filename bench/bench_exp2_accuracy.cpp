/// \file bench_exp2_accuracy.cpp
/// \brief EXP2 — Table I reconstruction: bandwidth-regulation accuracy.
///
/// One saturating DMA master is regulated to a sweep of target rates by
/// (a) the tightly-coupled hardware regulator (1 us window) and (b) the
/// software MemGuard baseline (1 ms timer + overflow IRQ + 3 us ISR
/// path). Reports measured vs programmed bandwidth and the relative
/// error. The HW regulator should track the budget almost exactly at
/// every rate; the SW baseline overshoots by the bytes that slip through
/// during its reaction window, which dominates at small budgets.
#include <cstdio>

#include "common.hpp"

using namespace fgqos;
using namespace fgqos::bench;

namespace {

double measure(Scheme scheme, double target_bps) {
  ScenarioParams p;
  p.scheme = scheme;
  p.aggressor_count = 1;
  p.critical_iterations = 0;  // no CPU task: isolate the regulator
  p.per_aggressor_budget_bps = target_bps;
  Scenario s = build_scenario(p);
  s.chip->run_for(20 * sim::kPsPerMs);
  return sim::bytes_per_second(
      s.chip->accel_port(0).stats().bytes_granted.value(), s.chip->now());
}

}  // namespace

int main() {
  std::printf(
      "EXP2 (Table I): regulation accuracy, HW (1 us window) vs SW MemGuard "
      "(1 ms period, 3 us ISR)\n\n");
  util::Table table({"target", "hw_measured", "hw_err_%", "sw_measured",
                     "sw_err_%"});
  const std::vector<double> targets = {50e6,  100e6, 200e6, 400e6,
                                       800e6, 1.6e9, 3.2e9};
  for (const double t : targets) {
    const double hw = measure(Scheme::kHwQos, t);
    const double sw = measure(Scheme::kSoftMemguard, t);
    table.add_row({util::format_bandwidth(t), util::format_bandwidth(hw),
                   util::format_fixed((hw - t) / t * 100.0, 2),
                   util::format_bandwidth(sw),
                   util::format_fixed((sw - t) / t * 100.0, 2)});
  }
  table.print();
  table.save_csv("exp2_accuracy.csv");
  std::printf("\nCSV written to exp2_accuracy.csv\n");
  return 0;
}
