/// \file bench_exp6_workloads.cpp
/// \brief EXP6 — Table II reconstruction: end-to-end workload suite.
///
/// Every kernel of the benchmark suite (streaming read/copy/write,
/// latency, random update, phased, compute-bound control) runs as the
/// critical task under: solo, unregulated interference (4 seq-read
/// aggressors), software MemGuard and the HW regulator (both at
/// 400 MB/s per aggressor). Reports mean and p99 iteration times and the
/// slowdown factors. Expected shape: memory-bound kernels suffer the
/// most; the compute-bound control is insensitive; HW QoS restores every
/// kernel to near solo while SW MemGuard leaves residual tail slowdown.
#include <cstdio>

#include "common.hpp"
#include "workload/suite.hpp"

using namespace fgqos;
using namespace fgqos::bench;

namespace {

struct Meas {
  double mean_ps;
  double p99_ps;
};

Meas run_one(const wl::SuiteEntry& entry, Scheme scheme) {
  ScenarioParams p;
  p.scheme = scheme;
  p.aggressor_count = 4;
  p.critical_iterations = entry.iterations;
  p.per_aggressor_budget_bps = 400e6;
  p.critical_kernel = entry.make;
  Scenario s = build_scenario(p);
  run_critical(s, 2000 * sim::kPsPerMs);
  const auto& h = s.critical->stats().iteration_ps;
  return Meas{h.mean(), static_cast<double>(h.p99())};
}

}  // namespace

int main() {
  std::printf(
      "EXP6 (Table II): workload suite under interference and regulation "
      "(4 seq-read aggressors, 400 MB/s budgets)\n\n");
  util::Table table({"workload", "solo_mean", "interf", "memguard_sw",
                     "hw_qos", "interf_p99_x", "sw_p99_x", "hw_p99_x"});
  for (const auto& entry : wl::benchmark_suite()) {
    const Meas solo = run_one(entry, Scheme::kSolo);
    const Meas unreg = run_one(entry, Scheme::kUnregulated);
    const Meas sw = run_one(entry, Scheme::kSoftMemguard);
    const Meas hw = run_one(entry, Scheme::kHwQos);
    table.add_row(
        {entry.name,
         util::format_time_ps(static_cast<sim::TimePs>(solo.mean_ps)),
         util::format_fixed(unreg.mean_ps / solo.mean_ps, 2) + "x",
         util::format_fixed(sw.mean_ps / solo.mean_ps, 2) + "x",
         util::format_fixed(hw.mean_ps / solo.mean_ps, 2) + "x",
         util::format_fixed(unreg.p99_ps / solo.p99_ps, 2) + "x",
         util::format_fixed(sw.p99_ps / solo.p99_ps, 2) + "x",
         util::format_fixed(hw.p99_ps / solo.p99_ps, 2) + "x"});
  }
  table.print();
  table.save_csv("exp6_workloads.csv");
  std::printf("\nCSV written to exp6_workloads.csv\n");
  return 0;
}
