/// \file bench_exp10_fabric_priority.cpp
/// \brief EXP10 — ablation: QoS-priority arbitration in the fabric vs.
///        bandwidth regulation at the port edge.
///
/// An alternative to regulating the aggressors is to prioritise the
/// critical master inside the interconnect (AXI QoS signals driving a
/// fixed-priority arbiter). This experiment compares, under 4 saturating
/// aggressors:
///   * plain round-robin fabric (baseline);
///   * fixed-priority fabric, CPU highest (no regulation);
///   * round-robin fabric + tightly-coupled per-port regulators;
///   * both combined.
/// Expected shape: fabric priority helps the critical task's *crossbar*
/// queueing but cannot control the DRAM controller's shared queues and
/// banks, so the critical tail stays inflated and — crucially — the
/// aggressors keep saturating memory. Regulation at the edge bounds the
/// aggressors themselves; the combination is strictest of all.
#include <cstdio>

#include "common.hpp"

using namespace fgqos;
using namespace fgqos::bench;

namespace {

struct Row {
  const char* config;
  double mean_slow;
  double p99_slow;
  double be_gbps;
};

double g_solo_mean = 0;
double g_solo_p99 = 0;

Row run_one(const char* label, bool priority_fabric, bool regulate) {
  ScenarioParams p;
  p.scheme = regulate ? Scheme::kHwQos : Scheme::kUnregulated;
  p.aggressor_count = 4;
  p.critical_iterations = 40;
  p.per_aggressor_budget_bps = 400e6;
  Scenario s = build_scenario(p);
  if (priority_fabric) {
    // CPU (master 0) gets the highest level, accelerators the lowest.
    std::vector<int> prio(s.chip->xbar().master_count(), 0);
    prio[0] = 15;
    s.chip->xbar().set_arbiter(
        std::make_unique<axi::FixedPriorityArbiter>(prio));
  }
  const double mean = run_critical(s, 2000 * sim::kPsPerMs);
  const double p99 =
      static_cast<double>(s.critical->stats().iteration_ps.p99());
  return Row{label, mean / g_solo_mean, p99 / g_solo_p99,
             s.aggressor_bps() / 1e9};
}

}  // namespace

int main() {
  std::printf(
      "EXP10 (ablation): fabric priority vs. edge regulation, 4 "
      "saturating aggressors\n\n");
  {
    ScenarioParams p;
    p.scheme = Scheme::kSolo;
    p.critical_iterations = 40;
    Scenario s = build_scenario(p);
    g_solo_mean = run_critical(s, 400 * sim::kPsPerMs);
    g_solo_p99 =
        static_cast<double>(s.critical->stats().iteration_ps.p99());
  }
  util::Table table({"fabric", "regulators", "slowdown_mean", "slowdown_p99",
                     "aggressor_GB/s"});
  const Row rows[] = {
      run_one("rr / off", false, false),
      run_one("priority / off", true, false),
      run_one("rr / on", false, true),
      run_one("priority / on", true, true),
  };
  const char* fabric[] = {"round-robin", "cpu-priority", "round-robin",
                          "cpu-priority"};
  const char* regs[] = {"off", "off", "400 MB/s", "400 MB/s"};
  for (std::size_t i = 0; i < 4; ++i) {
    table.add_row({fabric[i], regs[i],
                   util::format_fixed(rows[i].mean_slow, 2) + "x",
                   util::format_fixed(rows[i].p99_slow, 2) + "x",
                   util::format_fixed(rows[i].be_gbps, 2)});
  }
  table.print();
  table.save_csv("exp10_fabric_priority.csv");
  std::printf("\nCSV written to exp10_fabric_priority.csv\n");
  return 0;
}
