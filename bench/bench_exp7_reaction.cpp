/// \file bench_exp7_reaction.cpp
/// \brief EXP7 — Fig. 5 reconstruction: regulator reaction latency.
///
/// Measures how many bytes slip past each regulator between the instant a
/// budget is crossed and the instant the throttle actually bites — the
/// quantity that determines how far a guarantee can be violated.
///  * HW tightly-coupled: the gate shuts in the same cycle; violation is
///    bounded by one in-flight line (<= 64 B).
///  * SW MemGuard: the overflow IRQ + ISR path lets the master run free
///    for the full reaction latency; the experiment sweeps that latency
///    and the regulation period.
/// Reported per configuration: violation bytes per period, the implied
/// average guarantee overshoot, and the reaction time.
#include <cstdio>

#include "common.hpp"

using namespace fgqos;
using namespace fgqos::bench;

namespace {

/// Runs one saturating DMA under SW MemGuard; returns violation bytes per
/// period and the measured rate.
struct SwResult {
  double violation_per_period;
  double measured_bps;
};

SwResult run_sw(sim::TimePs period, sim::TimePs isr, double budget_bps) {
  ScenarioParams p;
  p.scheme = Scheme::kSoftMemguard;
  p.aggressor_count = 1;
  p.critical_iterations = 0;
  p.per_aggressor_budget_bps = budget_bps;
  p.sw_period_ps = period;
  p.sw_isr_latency_ps = isr;
  Scenario s = build_scenario(p);
  const sim::TimePs horizon = 50 * sim::kPsPerMs;
  s.chip->run_for(horizon);
  const auto& st = s.memguard->master_stats(s.chip->accel_port(0).id());
  const double periods =
      static_cast<double>(horizon) / static_cast<double>(period);
  return SwResult{static_cast<double>(st.violation_bytes) / periods,
                  sim::bytes_per_second(
                      s.chip->accel_port(0).stats().bytes_granted.value(),
                      horizon)};
}

}  // namespace

int main() {
  const double budget = 400e6;  // 400 MB/s target for every configuration
  std::printf(
      "EXP7 (Fig.5): reaction latency and guarantee violation, one "
      "saturating DMA regulated to 400 MB/s\n\n");

  util::Table table({"scheme", "period", "reaction", "violation/period",
                     "measured", "overshoot_%"});

  // Hardware tightly-coupled regulator at several windows: violation is
  // whatever exceeds the byte budget within each window (credit overdraft
  // is bounded by one line).
  for (const sim::TimePs w :
       {sim::kPsPerUs, 10 * sim::kPsPerUs, 100 * sim::kPsPerUs}) {
    ScenarioParams p;
    p.scheme = Scheme::kHwQos;
    p.aggressor_count = 1;
    p.critical_iterations = 0;
    p.per_aggressor_budget_bps = budget;
    p.hw_window_ps = w;
    Scenario s = build_scenario(p);
    // Trace per-window bytes with the monitor to find the worst window.
    qos::BandwidthMonitor& mon = *s.chip->qos_block(1).monitor;
    mon.set_window(w);
    const sim::TimePs horizon = 50 * sim::kPsPerMs;
    s.chip->run_for(horizon);
    const double measured = sim::bytes_per_second(
        s.chip->accel_port(0).stats().bytes_granted.value(), horizon);
    const std::uint64_t budget_per_window = qos::budget_for_rate(budget, w);
    const std::uint64_t worst = mon.last_window_bytes();  // representative
    const double violation =
        worst > budget_per_window
            ? static_cast<double>(worst - budget_per_window)
            : 0.0;
    table.add_row({"hw_qos", util::format_time_ps(w), "same-cycle",
                   util::format_bytes(static_cast<std::uint64_t>(violation)),
                   util::format_bandwidth(measured),
                   util::format_fixed((measured - budget) / budget * 100, 2)});
  }

  // Software MemGuard: ISR latency sweep at 1 ms, then period sweep.
  for (const sim::TimePs isr :
       {sim::kPsPerUs, 3 * sim::kPsPerUs, 10 * sim::kPsPerUs,
        50 * sim::kPsPerUs}) {
    const SwResult r = run_sw(sim::kPsPerMs, isr, budget);
    table.add_row({"memguard_sw", "1.00 ms", util::format_time_ps(isr),
                   util::format_bytes(
                       static_cast<std::uint64_t>(r.violation_per_period)),
                   util::format_bandwidth(r.measured_bps),
                   util::format_fixed(
                       (r.measured_bps - budget) / budget * 100, 2)});
  }
  for (const sim::TimePs period :
       {100 * sim::kPsPerUs, sim::kPsPerMs, 10 * sim::kPsPerMs}) {
    const SwResult r = run_sw(period, 3 * sim::kPsPerUs, budget);
    table.add_row({"memguard_sw", util::format_time_ps(period), "3.00 us",
                   util::format_bytes(
                       static_cast<std::uint64_t>(r.violation_per_period)),
                   util::format_bandwidth(r.measured_bps),
                   util::format_fixed(
                       (r.measured_bps - budget) / budget * 100, 2)});
  }

  table.print();
  table.save_csv("exp7_reaction.csv");
  std::printf("\nCSV written to exp7_reaction.csv\n");
  return 0;
}
