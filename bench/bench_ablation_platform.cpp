/// \file bench_ablation_platform.cpp
/// \brief Platform-model ablations (DESIGN.md §5): the substrate design
///        choices that shape every other experiment.
///
/// Three sweeps on the same 2-aggressor + critical-CPU scenario:
///  * DRAM page policy (open vs. closed) x address mapping (bank-
///    interleaved vs. row-major);
///  * crossbar arbitration granularity (line vs. transaction) x DMA
///    burst length — shows how burst locking amplifies CPU interference;
///  * regulator replenish kind (fixed window vs. token bucket with a
///    4-window burst cap) — burst tolerance vs. tail latency.
#include <cstdio>

#include "common.hpp"

using namespace fgqos;
using namespace fgqos::bench;

namespace {

struct Meas {
  double crit_mean_us;
  double crit_p99_us;
  double aggr_gbps;
};

Meas run(std::function<void(soc::SocConfig&)> tweak) {
  ScenarioParams p;
  p.scheme = Scheme::kUnregulated;
  p.aggressor_count = 2;
  p.critical_iterations = 16;
  p.tweak_config = std::move(tweak);
  Scenario s = build_scenario(p);
  run_critical(s, 1000 * sim::kPsPerMs);
  const auto& h = s.critical->stats().iteration_ps;
  return Meas{h.mean() / 1e6, static_cast<double>(h.p99()) / 1e6,
              s.aggressor_bps() / 1e9};
}

}  // namespace

int main() {
  std::printf("Platform ablations (DESIGN.md section 5)\n\n");

  // --- 1. Page policy x mapping --------------------------------------------
  {
    util::Table t({"page_policy", "mapping", "crit_mean_us", "crit_p99_us",
                   "aggr_GB/s"});
    for (const auto policy :
         {dram::PagePolicy::kOpen, dram::PagePolicy::kClosed}) {
      for (const auto mapping : {dram::MappingPolicy::kBankInterleaved,
                                 dram::MappingPolicy::kRowBankColumn}) {
        const Meas m = run([&](soc::SocConfig& cfg) {
          cfg.dram.page_policy = policy;
          cfg.dram.mapping = mapping;
        });
        t.add_row({policy == dram::PagePolicy::kOpen ? "open" : "closed",
                   mapping == dram::MappingPolicy::kBankInterleaved
                       ? "interleaved"
                       : "row_major",
                   util::format_fixed(m.crit_mean_us, 1),
                   util::format_fixed(m.crit_p99_us, 1),
                   util::format_fixed(m.aggr_gbps, 2)});
      }
    }
    std::printf("1. DRAM page policy x address mapping:\n");
    t.print();
    t.save_csv("ablation_page_mapping.csv");
  }

  // --- 2. Arbitration granularity x burst length ---------------------------
  {
    util::Table t({"granularity", "dma_burst", "crit_mean_us", "crit_p99_us",
                   "aggr_GB/s"});
    for (const auto gran :
         {axi::ArbGranularity::kLine, axi::ArbGranularity::kTransaction}) {
      for (const std::uint32_t burst : {256u, 1024u, 4096u}) {
        ScenarioParams p;
        p.scheme = Scheme::kSolo;  // aggressors added manually with burst
        p.critical_iterations = 16;
        p.tweak_config = [&](soc::SocConfig& cfg) {
          cfg.xbar.granularity = gran;
        };
        Scenario s = build_scenario(p);
        for (std::size_t i = 0; i < 2; ++i) {
          wl::TrafficGenConfig tg;
          tg.name = "agg" + std::to_string(i);
          tg.burst_bytes = burst;
          tg.base = 0x8000'0000 + (static_cast<axi::Addr>(i) << 26);
          tg.seed = 30 + i;
          s.aggressors.push_back(&s.chip->add_traffic_gen(i, tg));
        }
        run_critical(s, 1000 * sim::kPsPerMs);
        const auto& h = s.critical->stats().iteration_ps;
        t.add_row(
            {gran == axi::ArbGranularity::kLine ? "line" : "transaction",
             util::format_bytes(burst),
             util::format_fixed(h.mean() / 1e6, 1),
             util::format_fixed(static_cast<double>(h.p99()) / 1e6, 1),
             util::format_fixed(s.aggressor_bps() / 1e9, 2)});
      }
    }
    std::printf("\n2. crossbar arbitration granularity x DMA burst length:\n");
    t.print();
    t.save_csv("ablation_arbitration.csv");
  }

  // --- 3. Replenish kind ----------------------------------------------------
  {
    util::Table t({"replenish", "burst_cap", "crit_mean_us", "crit_p99_us",
                   "aggr_GB/s"});
    struct Cfg {
      qos::ReplenishKind kind;
      std::uint64_t windows;
      const char* label;
    };
    for (const Cfg c : {Cfg{qos::ReplenishKind::kFixedWindow, 1, "fixed"},
                        Cfg{qos::ReplenishKind::kTokenBucket, 1, "bucket"},
                        Cfg{qos::ReplenishKind::kTokenBucket, 4, "bucket"}}) {
      ScenarioParams p;
      p.scheme = Scheme::kHwQos;
      p.aggressor_count = 2;
      p.critical_iterations = 16;
      p.per_aggressor_budget_bps = 800e6;
      p.hw_window_ps = 10 * sim::kPsPerUs;
      // Phased aggressors (50 us on / 50 us off): idle phases let a
      // token bucket accumulate credit that is then spent as a burst.
      p.aggressor_active_ps = 50 * sim::kPsPerUs;
      p.aggressor_idle_ps = 50 * sim::kPsPerUs;
      p.tweak_config = [&](soc::SocConfig& cfg) {
        cfg.default_regulator.kind = c.kind;
        cfg.default_regulator.max_accumulation_windows = c.windows;
      };
      Scenario s = build_scenario(p);
      run_critical(s, 1000 * sim::kPsPerMs);
      const auto& h = s.critical->stats().iteration_ps;
      t.add_row({c.label, static_cast<std::uint64_t>(c.windows),
                 util::format_fixed(h.mean() / 1e6, 1),
                 util::format_fixed(static_cast<double>(h.p99()) / 1e6, 1),
                 util::format_fixed(s.aggressor_bps() / 1e9, 2)});
    }
    std::printf("\n3. regulator replenish kind (800 MB/s budgets):\n");
    t.print();
    t.save_csv("ablation_replenish.csv");
  }
  return 0;
}
