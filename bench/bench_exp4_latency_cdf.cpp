/// \file bench_exp4_latency_cdf.cpp
/// \brief EXP4 — Fig. 3 reconstruction: critical read-latency distribution.
///
/// Percentiles (p50/p90/p99/p99.9/max) of the critical CPU's DRAM read
/// latency under: solo, unregulated interference, software MemGuard and
/// the tightly-coupled hardware regulator, plus the full CDF as CSV.
/// Expected shape: HW QoS pulls the whole distribution back near solo;
/// SW MemGuard trims the average but leaves a long tail (the bursts that
/// slip through each period before the ISR lands).
#include <cstdio>

#include "common.hpp"

using namespace fgqos;
using namespace fgqos::bench;

namespace {

struct Dist {
  std::string scheme;
  sim::Histogram latency;
  double aggressor_gbps = 0;
};

Dist run_one(Scheme scheme) {
  ScenarioParams p;
  p.scheme = scheme;
  p.aggressor_count = 4;
  // >= 10 SW-MemGuard periods of run time, so the distribution reflects
  // steady-state regulation rather than first-period transients.
  p.critical_iterations = 80;
  p.per_aggressor_budget_bps = 400e6;
  Scenario s = build_scenario(p);
  run_critical(s, 2000 * sim::kPsPerMs);
  Dist d;
  d.scheme = scheme_name(scheme);
  d.latency = s.chip->cpu_port().stats().read_latency;
  d.aggressor_gbps = s.aggressor_bps() / 1e9;
  return d;
}

}  // namespace

int main() {
  std::printf(
      "EXP4 (Fig.3): critical CPU read-latency distribution, 4 aggressors\n\n");
  const std::vector<Scheme> schemes = {Scheme::kSolo, Scheme::kUnregulated,
                                       Scheme::kSoftMemguard, Scheme::kHwQos};
  util::Table table({"scheme", "p50", "p90", "p99", "p99.9", "max", "mean",
                     "aggr_GB/s"});
  util::Table cdf_csv({"scheme", "latency_ps", "cumulative"});
  for (const Scheme s : schemes) {
    Dist d = run_one(s);
    table.add_row({d.scheme, util::format_time_ps(d.latency.p50()),
                   util::format_time_ps(d.latency.p90()),
                   util::format_time_ps(d.latency.p99()),
                   util::format_time_ps(d.latency.p999()),
                   util::format_time_ps(d.latency.max()),
                   util::format_time_ps(
                       static_cast<sim::TimePs>(d.latency.mean())),
                   util::format_fixed(d.aggressor_gbps, 2)});
    for (const auto& pt : d.latency.cdf()) {
      cdf_csv.add_row({d.scheme, pt.value, pt.cumulative});
    }
  }
  table.print();
  cdf_csv.save_csv("exp4_latency_cdf.csv");
  std::printf("\nfull CDF series written to exp4_latency_cdf.csv\n");
  return 0;
}
