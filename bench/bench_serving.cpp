/// \file bench_serving.cpp
/// \brief SERVING — request-level QoS defense reproduction.
///
/// A latency-critical key-value serving tenant (Zipfian keys, open-loop
/// Poisson arrivals, per-request SLO) shares the memory system with
/// best-effort bulk DMA masters. Swept over offered load, three schemes:
///
///   * solo        — the serving tenant alone (attainment ceiling);
///   * unregulated — bulk masters free-running: the tenant's request p99
///                   blows through its SLO (the paper's Fig. 1 problem,
///                   restated at request level);
///   * regulated   — the paper's defense stack: hardware regulators on
///                   the bulk ports, driven by the AdaptiveQosController
///                   from a tightly-coupled latency monitor on the
///                   serving port, with the SLA watchdog auditing the
///                   tenant's objectives per blame window.
///
/// Reported per (scheme, load): offered/completed QPS, request latency
/// p50/p99/p99.9, SLO attainment, bulk throughput, and the controller /
/// watchdog activity. CSV `serving_defense.csv` feeds
/// `plot_experiments.py serving`.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common.hpp"
#include "qos/adaptive_controller.hpp"
#include "qos/latency_monitor.hpp"
#include "qos/sla_watchdog.hpp"
#include "workload/serving.hpp"

using namespace fgqos;
using namespace fgqos::bench;

namespace {

constexpr sim::TimePs kDurationPs = 20 * sim::kPsPerMs;
constexpr sim::TimePs kSloPs = 3 * sim::kPsPerUs;
constexpr std::size_t kBulkCount = 3;  ///< ports 0..2; tenant owns port 3

enum class ServingScheme { kSolo, kUnregulated, kRegulated };

const char* serving_scheme_name(ServingScheme s) {
  switch (s) {
    case ServingScheme::kSolo: return "solo";
    case ServingScheme::kUnregulated: return "unregulated";
    case ServingScheme::kRegulated: return "regulated";
  }
  return "?";
}

struct Row {
  std::string scheme;
  double load_qps = 0;
  double offered_qps = 0;
  double completed_qps = 0;
  std::uint64_t dropped = 0;
  double p50_us = 0;
  double p99_us = 0;
  double p999_us = 0;
  std::string attainment_table;  ///< 2-decimal pct, or "n/a" (no samples)
  std::string attainment_csv;    ///< 4-decimal pct, or "n/a" (no samples)
  double bulk_gbps = 0;
  std::string note;
};

Row run_point(ServingScheme scheme, double load_qps) {
  soc::SocConfig cfg;
  soc::Soc chip(cfg);

  wl::ServingSpec spec;
  spec.seed = 7;
  spec.duration_ps = kDurationPs;
  wl::ServingTenantSpec t;
  t.name = "lc";
  t.port = 3;
  t.arrival = wl::ArrivalKind::kPoisson;
  t.rate_qps = load_qps;
  t.zipf_s = 0.99;
  t.key_count = 65536;
  t.value_bytes = 4096;
  t.read_fraction = 0.95;
  t.slo_ps = kSloPs;
  t.max_outstanding = 8;
  t.queue_capacity = 4096;
  spec.tenants.push_back(t);
  chip.add_serving(spec, /*run_seed=*/1);
  wl::ServingTenant& lc = chip.serving_tenant(0);

  if (scheme != ServingScheme::kSolo) {
    // Two hungry generators per bulk port: a streaming writer (write
    // drains contend with the tenant's reads at the DDRC) and a random
    // reader (row-buffer thrash).
    for (std::size_t i = 0; i < 2 * kBulkCount; ++i) {
      wl::TrafficGenConfig tg;
      tg.name = "bulk" + std::to_string(i);
      tg.pattern =
          (i & 1) != 0 ? wl::Pattern::kRandomRead : wl::Pattern::kSeqWrite;
      tg.base = 0x8000'0000 + (static_cast<axi::Addr>(i) << 26);
      tg.seed = 60 + i;
      chip.add_traffic_gen(i % kBulkCount, tg);
    }
  }

  // Defense stack (regulated only): latency monitor on the serving port
  // feeding the AIMD controller over the bulk-port regulators, plus the
  // SLA watchdog auditing the tenant's request-latency objective.
  std::unique_ptr<qos::LatencyMonitor> mon;
  std::unique_ptr<qos::AdaptiveQosController> ctrl;
  std::unique_ptr<qos::SlaWatchdog> dog;
  if (scheme == ServingScheme::kRegulated) {
    qos::LatencyMonitorConfig lmc;
    lmc.window_ps = 100 * sim::kPsPerUs;
    mon = std::make_unique<qos::LatencyMonitor>(chip.sim(), lmc);
    chip.accel_port(t.port).add_observer(*mon);

    std::vector<qos::Regulator*> regs;
    for (std::size_t i = 0; i < kBulkCount; ++i) {
      regs.push_back(chip.qos_block(1 + i).regulator.get());
    }
    qos::AdaptiveControllerConfig ac;
    ac.latency_target_ps = 2 * sim::kPsPerUs;
    ac.period_ps = lmc.window_ps;
    ac.increase_bps = 200e6;
    ctrl = std::make_unique<qos::AdaptiveQosController>(chip.sim(), ac, *mon,
                                                        regs);
    ctrl->start();

    telemetry::AttributionEngine& eng =
        chip.enable_attribution(100 * sim::kPsPerUs);
    dog = std::make_unique<qos::SlaWatchdog>(eng, chip.telemetry().metrics());
    qos::SlaSpec sla;
    sla.max_p99_latency_ps = kSloPs;
    dog->watch(chip.accel_port(t.port), sla);
  }

  chip.run_until(kDurationPs);
  const sim::TimePs drain_deadline = chip.now() + 10 * sim::kPsPerMs;
  while (!lc.drained() && chip.now() < drain_deadline) {
    chip.run_for(100 * sim::kPsPerUs);
  }

  Row r;
  r.scheme = serving_scheme_name(scheme);
  r.load_qps = load_qps;
  r.offered_qps = lc.offered_qps();
  r.completed_qps = lc.completed_qps();
  r.dropped = lc.stats().dropped;
  r.p50_us = static_cast<double>(lc.latency().p50()) / 1e6;
  r.p99_us = static_cast<double>(lc.latency().p99()) / 1e6;
  r.p999_us = static_cast<double>(lc.latency().p999()) / 1e6;
  r.attainment_table = wl::attainment_pct_cell(lc, 2);
  r.attainment_csv = wl::attainment_pct_cell(lc, 4);
  if (scheme != ServingScheme::kSolo) {
    double bulk = 0;
    for (std::size_t i = 0; i < kBulkCount; ++i) {
      bulk += sim::bytes_per_second(
          chip.accel_port(i).stats().bytes_granted.value(), chip.now());
    }
    r.bulk_gbps = bulk / 1e9;
  }
  if (ctrl) {
    char buf[96];
    std::snprintf(buf, sizeof buf, "%llu dec / %llu inc, %llu sla trips",
                  static_cast<unsigned long long>(ctrl->stats().decreases),
                  static_cast<unsigned long long>(ctrl->stats().increases),
                  static_cast<unsigned long long>(dog->violations().size()));
    r.note = buf;
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  std::printf(
      "SERVING: request-level QoS defense — Zipfian KV tenant vs. bulk "
      "masters\n  open-loop Poisson arrivals, SLO %.1f us, %zu bulk DMA "
      "masters, %.0f ms/point\n\n",
      static_cast<double>(kSloPs) / 1e6, kBulkCount,
      static_cast<double>(kDurationPs) / 1e9);

  const std::vector<double> loads = {100e3, 200e3, 300e3};
  struct Point {
    ServingScheme scheme;
    double load;
  };
  std::vector<Point> grid;
  for (const ServingScheme s :
       {ServingScheme::kSolo, ServingScheme::kUnregulated,
        ServingScheme::kRegulated}) {
    for (const double l : loads) {
      grid.push_back({s, l});
    }
  }
  exec::ScenarioRunner runner(bench_exec_config(argc, argv));
  const std::vector<Row> rows =
      runner.map(grid.size(), [&](const exec::JobContext& ctx) {
        const Point& pt = grid[ctx.index];
        return run_point(pt.scheme, pt.load);
      });

  util::Table table({"scheme", "load_kqps", "completed_kqps", "dropped",
                     "p50_us", "p99_us", "p99.9_us", "attain_%", "bulk_GB/s",
                     "note"});
  for (const Row& r : rows) {
    table.add_row({r.scheme, util::format_fixed(r.load_qps / 1e3, 0),
                   util::format_fixed(r.completed_qps / 1e3, 1), r.dropped,
                   util::format_fixed(r.p50_us, 2),
                   util::format_fixed(r.p99_us, 2),
                   util::format_fixed(r.p999_us, 2), r.attainment_table,
                   util::format_fixed(r.bulk_gbps, 2), r.note});
  }
  table.print();

  // The plot-friendly CSV keeps raw units (qps, us, pct).
  util::Table csv({"scheme", "load_qps", "offered_qps", "completed_qps",
                   "dropped", "p50_us", "p99_us", "p999_us", "attainment_pct",
                   "bulk_gbps"});
  for (const Row& r : rows) {
    csv.add_row({r.scheme, util::format_fixed(r.load_qps, 0),
                 util::format_fixed(r.offered_qps, 2),
                 util::format_fixed(r.completed_qps, 2), r.dropped,
                 util::format_fixed(r.p50_us, 3), util::format_fixed(r.p99_us, 3),
                 util::format_fixed(r.p999_us, 3), r.attainment_csv,
                 util::format_fixed(r.bulk_gbps, 3)});
  }
  csv.save_csv("serving_defense.csv");
  std::printf(
      "\nunregulated should miss the SLO (attainment well below 99%%); the "
      "regulated\nstack should restore attainment >= 99%% while keeping "
      "bulk throughput > 0.\nCSV written to serving_defense.csv\n");
  print_exec_summary(runner);
  return 0;
}
