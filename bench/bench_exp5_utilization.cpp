/// \file bench_exp5_utilization.cpp
/// \brief EXP5 — Fig. 4 reconstruction: guarantee vs. utilisation.
///
/// Holds the critical CPU task's slowdown near a 10% target under every
/// scheme and reports how much aggregate best-effort accelerator
/// bandwidth each scheme preserves. Prior-work anchors (DATE'22): PREM
/// leaves the accelerator bandwidth during CPU slots entirely unused;
/// CMRI recovers >40% of it while keeping the slowdown below 10%; the
/// tightly-coupled HW regulator should do at least as well without any
/// slot structure. For HW QoS and CMRI the knob (per-master budget /
/// injection budget) is swept and each point is reported, so the
/// slowdown-vs-utilisation frontier is visible.
#include <cstdio>

#include "common.hpp"

using namespace fgqos;
using namespace fgqos::bench;

namespace {

struct Point {
  std::string scheme;
  std::string knob;
  double slowdown_mean;
  double slowdown_p99;  ///< the guarantee metric (WCET proxy)
  double be_gbps;
};

double g_solo_mean = 0;
double g_solo_p99 = 0;

Point run_point(ScenarioParams p, std::string knob) {
  // Long enough to span many SW-MemGuard periods (>= 10 ms of run time),
  // so per-period boundary effects do not distort the bandwidth averages.
  p.critical_iterations = 80;
  p.aggressor_count = 4;
  Scenario s = build_scenario(p);
  const double mean = run_critical(s, 2000 * sim::kPsPerMs);
  const double p99 =
      static_cast<double>(s.critical->stats().iteration_ps.p99());
  return Point{scheme_name(p.scheme), std::move(knob), mean / g_solo_mean,
               p99 / g_solo_p99, s.aggressor_bps() / 1e9};
}

}  // namespace

int main(int argc, char** argv) {
  std::printf(
      "EXP5 (Fig.4): critical-task slowdown vs. best-effort bandwidth "
      "(guarantee: p99 slowdown <= 1.15x)\n\n");
  {
    ScenarioParams p;
    p.scheme = Scheme::kSolo;
    p.critical_iterations = 80;
    Scenario s = build_scenario(p);
    g_solo_mean = run_critical(s, 400 * sim::kPsPerMs);
    g_solo_p99 =
        static_cast<double>(s.critical->stats().iteration_ps.p99());
  }

  util::Table table({"scheme", "knob", "slowdown_mean", "slowdown_p99",
                     "best_effort_GB/s", "vs_unregulated_%"});

  // Every point is an independent scenario; declare them all, then fan
  // out. The solo baseline above ran first because run_point reads it.
  std::vector<std::pair<ScenarioParams, std::string>> specs;
  {
    ScenarioParams p;
    p.scheme = Scheme::kUnregulated;
    specs.emplace_back(p, "-");
  }
  // Strict PREM: accelerators fully blocked while the critical task runs.
  {
    ScenarioParams p;
    p.scheme = Scheme::kPremStrict;
    specs.emplace_back(p, "-");
  }
  // PREM: 50/50 TDMA frame.
  {
    ScenarioParams p;
    p.scheme = Scheme::kPrem;
    specs.emplace_back(p, "slot 10us");
  }
  // PREM + CMRI: injection budget sweep.
  for (const std::uint64_t inj : {1024u, 4096u, 16384u, 65536u}) {
    ScenarioParams p;
    p.scheme = Scheme::kPremCmri;
    p.cmri_injection_bytes = inj;
    specs.emplace_back(p, util::format_bytes(inj) + "/slot");
  }
  // Software MemGuard: per-master budget sweep.
  for (const double b : {200e6, 400e6, 800e6}) {
    ScenarioParams p;
    p.scheme = Scheme::kSoftMemguard;
    p.per_aggressor_budget_bps = b;
    specs.emplace_back(p, util::format_bandwidth(b) + "/master");
  }
  // Tightly-coupled HW regulators: per-master budget sweep.
  for (const double b : {200e6, 400e6, 800e6, 1200e6, 1600e6}) {
    ScenarioParams p;
    p.scheme = Scheme::kHwQos;
    p.per_aggressor_budget_bps = b;
    specs.emplace_back(p, util::format_bandwidth(b) + "/master");
  }

  exec::ScenarioRunner runner(bench_exec_config(argc, argv));
  const std::vector<Point> points =
      runner.map(specs.size(), [&](const exec::JobContext& ctx) {
        return run_point(specs[ctx.index].first, specs[ctx.index].second);
      });
  const double unreg_be = points[0].be_gbps;

  for (const auto& pt : points) {
    table.add_row({pt.scheme, pt.knob,
                   util::format_fixed(pt.slowdown_mean, 2) + "x",
                   util::format_fixed(pt.slowdown_p99, 2) + "x",
                   util::format_fixed(pt.be_gbps, 2),
                   util::format_fixed(pt.be_gbps / unreg_be * 100.0, 1)});
  }
  table.print();
  table.save_csv("exp5_utilization.csv");

  // Summary: best bandwidth at slowdown <= 1.10 per scheme.
  std::printf(
      "\nbest best-effort bandwidth with p99 slowdown <= 1.15x (the\n"
      "guarantee criterion: tail latency, not average):\n");
  for (const char* scheme :
       {"prem_strict", "prem_tdma", "prem_cmri", "memguard_sw", "hw_qos"}) {
    double best = 0;
    for (const auto& pt : points) {
      if (pt.scheme == scheme && pt.slowdown_p99 <= 1.15) {
        best = std::max(best, pt.be_gbps);
      }
    }
    std::printf("  %-12s %6.2f GB/s (%.0f%% of unregulated)\n", scheme, best,
                best / unreg_be * 100.0);
  }
  std::printf("\nCSV written to exp5_utilization.csv\n");
  print_exec_summary(runner);
  return 0;
}
