/// \file bench_micro_sim.cpp
/// \brief Engineering micro-benchmarks of the simulator itself
///        (google-benchmark): kernel primitives and whole-platform
///        simulation throughput.
///
/// Besides the google-benchmark suite, `--kernel-json[=PATH]` runs a fixed
/// kernel-throughput workload (self-rescheduling one-shot timers, recurring
/// timers and clocked spinners — the event/tick mix of a real platform run)
/// and writes events/sec, ns/event and peak RSS to PATH (default
/// BENCH_micro.json). CI uploads that file as the perf record of the build.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#if defined(__unix__)
#include <sys/resource.h>
#endif

#include "axi/timed_fifo.hpp"
#include "sim/clock_domain.hpp"
#include "sim/event_queue.hpp"
#include "sim/histogram.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "soc/soc.hpp"
#include "telemetry/profiler.hpp"
#include "workload/cpu_workloads.hpp"
#include "workload/traffic_gen.hpp"

namespace {

using namespace fgqos;

void BM_Xoshiro(benchmark::State& state) {
  sim::Xoshiro256 rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.next());
  }
}
BENCHMARK(BM_Xoshiro);

void BM_HistogramRecord(benchmark::State& state) {
  sim::Histogram h;
  sim::Xoshiro256 rng(1);
  for (auto _ : state) {
    h.record(rng.next_below(1'000'000));
  }
  benchmark::DoNotOptimize(h.count());
}
BENCHMARK(BM_HistogramRecord);

void BM_EventQueueScheduleAndPop(benchmark::State& state) {
  sim::EventQueue q;
  std::uint64_t t = 0;
  for (auto _ : state) {
    q.schedule(t += 7, [] {});
    if (q.size() > 64) {
      q.run_next();
    }
  }
}
BENCHMARK(BM_EventQueueScheduleAndPop);

void BM_TimedFifoPushPop(benchmark::State& state) {
  axi::TimedFifo<std::uint64_t> f(64, 10);
  std::uint64_t now = 0;
  for (auto _ : state) {
    now += 5;
    if (!f.full()) {
      f.push(now, now);
    }
    if (f.can_pop(now)) {
      benchmark::DoNotOptimize(f.pop(now));
    }
  }
}
BENCHMARK(BM_TimedFifoPushPop);

/// Whole-platform throughput: simulated microseconds per wall second with
/// one saturating DMA and one CPU pointer chaser.
void BM_SocSimulationThroughput(benchmark::State& state) {
  soc::SocConfig cfg;
  soc::Soc chip(cfg);
  wl::PointerChaseConfig pc;
  cpu::CoreConfig cc;
  chip.add_core(cc, wl::make_pointer_chase(pc));
  wl::TrafficGenConfig tg;
  chip.add_traffic_gen(0, tg);
  for (auto _ : state) {
    chip.run_for(10 * sim::kPsPerUs);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(chip.sim().tick_count()));
  state.counters["sim_us_per_iter"] = 10;
}
BENCHMARK(BM_SocSimulationThroughput)->Unit(benchmark::kMillisecond);

/// DRAM controller request throughput under random traffic.
void BM_DramRandomTraffic(benchmark::State& state) {
  soc::SocConfig cfg;
  cfg.qos_blocks = false;
  soc::Soc chip(cfg);
  wl::TrafficGenConfig tg;
  tg.pattern = wl::Pattern::kRandomRead;
  chip.add_traffic_gen(0, tg);
  for (auto _ : state) {
    chip.run_for(10 * sim::kPsPerUs);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(
      chip.dram().stats().reads_serviced.value()));
}
BENCHMARK(BM_DramRandomTraffic)->Unit(benchmark::kMillisecond);

// --------------------------------------------------------------------------
// --kernel-json: fixed kernel-throughput workload with JSON output
// --------------------------------------------------------------------------

/// One-shot self-rescheduling timer (the schedule() hot path).
struct OneShotTimer {
  sim::Simulator* sim;
  sim::TimePs period;
  std::uint32_t tag = 0;
  std::uint64_t fired = 0;
  void arm(sim::TimePs when) {
    sim->schedule_at(
        when,
        [this, when]() {
          ++fired;
          arm(when + period);
        },
        tag);
  }
};

/// Recurring timer re-armed through the allocation-free recurring path.
struct RecurringTimer {
  sim::Simulator* sim;
  sim::TimePs period;
  sim::EventQueue::RecurringId id = 0;
  std::uint32_t tag = 0;
  std::uint64_t fired = 0;
  void start(sim::TimePs when) {
    id = sim->make_recurring_event(
        [this](std::uint64_t) {
          ++fired;
          sim->schedule_recurring(id, sim->now() + period);
        },
        tag);
    sim->schedule_recurring(id, when);
  }
};

/// Clock edge consumer that never sleeps (the tick hot path).
class Spinner final : public sim::Clocked {
 public:
  Spinner(sim::Simulator& s, const sim::ClockDomain& clk)
      : sim::Clocked(s, clk, "spin") {}
  bool tick(sim::Cycles) override { return true; }
};

struct KernelRun {
  std::uint64_t events = 0;
  std::uint64_t ticks = 0;
  std::size_t max_queue = 0;
  double wall_ns = 0.0;
};

KernelRun run_kernel_workload(sim::TimePs sim_time,
                              telemetry::HostProfiler* prof = nullptr) {
  constexpr int kOneShotTimers = 32;
  constexpr int kRecurringTimers = 32;
  constexpr int kSpinners = 4;

  sim::Simulator s;
  if (prof != nullptr) {
    prof->attach(s);
  }
  // profile_tag() is 0 (untagged) when no profiler is attached, so the
  // headline profile-off reps take the identical code path.
  const std::uint32_t oneshot_tag = s.profile_tag("bench.oneshot");
  const std::uint32_t recurring_tag = s.profile_tag("bench.recurring");
  sim::ClockDomain clk("c", 1000);  // 1 GHz
  std::vector<std::unique_ptr<Spinner>> spinners;
  for (int i = 0; i < kSpinners; ++i) {
    spinners.push_back(std::make_unique<Spinner>(s, clk));
  }
  std::vector<OneShotTimer> one_shot(kOneShotTimers);
  for (int i = 0; i < kOneShotTimers; ++i) {
    one_shot[static_cast<std::size_t>(i)].sim = &s;
    one_shot[static_cast<std::size_t>(i)].period =
        1000 + 17 * static_cast<sim::TimePs>(i);
    one_shot[static_cast<std::size_t>(i)].tag = oneshot_tag;
    one_shot[static_cast<std::size_t>(i)].arm(
        one_shot[static_cast<std::size_t>(i)].period);
  }
  std::vector<RecurringTimer> recurring(kRecurringTimers);
  for (int i = 0; i < kRecurringTimers; ++i) {
    recurring[static_cast<std::size_t>(i)].sim = &s;
    recurring[static_cast<std::size_t>(i)].period =
        1000 + 17 * static_cast<sim::TimePs>(kOneShotTimers + i);
    recurring[static_cast<std::size_t>(i)].tag = recurring_tag;
    recurring[static_cast<std::size_t>(i)].start(
        recurring[static_cast<std::size_t>(i)].period);
  }

  const auto t0 = std::chrono::steady_clock::now();
  s.run_until(sim_time);
  const auto t1 = std::chrono::steady_clock::now();

  KernelRun r;
  r.events = s.events_dispatched();
  r.ticks = s.tick_count();
  r.max_queue = s.max_event_queue();
  r.wall_ns = static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
  return r;
}

long peak_rss_kb() {
#if defined(__unix__)
  struct rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) == 0) {
    return ru.ru_maxrss;  // KiB on Linux
  }
#endif
  return -1;
}

int run_kernel_json(const std::string& path) {
  constexpr sim::TimePs kSimTime = sim::kPsPerMs / 2;
  constexpr int kReps = 5;

  run_kernel_workload(kSimTime);  // warm-up (page faults, branch training)
  KernelRun best;
  for (int i = 0; i < kReps; ++i) {
    const KernelRun r = run_kernel_workload(kSimTime);
    if (best.wall_ns == 0.0 || r.wall_ns < best.wall_ns) {
      best = r;
    }
  }
  const double dispatched = static_cast<double>(best.events + best.ticks);
  const double events_per_sec = dispatched / (best.wall_ns / 1e9);
  const double ns_per_event = best.wall_ns / dispatched;

  // One extra profiled rep for the "profile" section. The headline
  // events/sec above comes exclusively from the profile-off reps, so the
  // attribution cost never pollutes the perf record CI gates on.
  telemetry::HostProfiler prof;
  run_kernel_workload(kSimTime, &prof);
  const telemetry::ProfileSnapshot snap = prof.snapshot();
  std::ostringstream profile_json;
  snap.write_json_object(profile_json);

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"schema_version\": 1,\n"
               "  \"benchmark\": \"kernel_throughput\",\n"
               "  \"workload\": {\"one_shot_timers\": 32, "
               "\"recurring_timers\": 32, \"spinners\": 4, "
               "\"sim_time_ps\": %llu},\n"
               "  \"events_dispatched\": %llu,\n"
               "  \"ticks\": %llu,\n"
               "  \"max_event_queue\": %llu,\n"
               "  \"wall_ms\": %.3f,\n"
               "  \"events_per_sec\": %.6e,\n"
               "  \"ns_per_event\": %.3f,\n"
               "  \"peak_rss_kb\": %ld,\n"
               "  \"profile\": %s\n"
               "}\n",
               static_cast<unsigned long long>(kSimTime),
               static_cast<unsigned long long>(best.events),
               static_cast<unsigned long long>(best.ticks),
               static_cast<unsigned long long>(best.max_queue),
               best.wall_ns / 1e6, events_per_sec, ns_per_event,
               peak_rss_kb(), profile_json.str().c_str());
  std::fclose(f);
  std::printf("kernel throughput: %.3e events/s (%.2f ns/event) -> %s\n",
              events_per_sec, ns_per_event, path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--kernel-json") == 0) {
      return run_kernel_json(i + 1 < argc ? argv[i + 1]
                                          : "BENCH_micro.json");
    }
    if (std::strncmp(argv[i], "--kernel-json=", 14) == 0) {
      return run_kernel_json(argv[i] + 14);
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
