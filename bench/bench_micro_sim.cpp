/// \file bench_micro_sim.cpp
/// \brief Engineering micro-benchmarks of the simulator itself
///        (google-benchmark): kernel primitives and whole-platform
///        simulation throughput.
#include <benchmark/benchmark.h>

#include "axi/timed_fifo.hpp"
#include "sim/event_queue.hpp"
#include "sim/histogram.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "soc/soc.hpp"
#include "workload/cpu_workloads.hpp"
#include "workload/traffic_gen.hpp"

namespace {

using namespace fgqos;

void BM_Xoshiro(benchmark::State& state) {
  sim::Xoshiro256 rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.next());
  }
}
BENCHMARK(BM_Xoshiro);

void BM_HistogramRecord(benchmark::State& state) {
  sim::Histogram h;
  sim::Xoshiro256 rng(1);
  for (auto _ : state) {
    h.record(rng.next_below(1'000'000));
  }
  benchmark::DoNotOptimize(h.count());
}
BENCHMARK(BM_HistogramRecord);

void BM_EventQueueScheduleAndPop(benchmark::State& state) {
  sim::EventQueue q;
  std::uint64_t t = 0;
  for (auto _ : state) {
    q.schedule(t += 7, [] {});
    if (q.size() > 64) {
      q.pop();
    }
  }
}
BENCHMARK(BM_EventQueueScheduleAndPop);

void BM_TimedFifoPushPop(benchmark::State& state) {
  axi::TimedFifo<std::uint64_t> f(64, 10);
  std::uint64_t now = 0;
  for (auto _ : state) {
    now += 5;
    if (!f.full()) {
      f.push(now, now);
    }
    if (f.can_pop(now)) {
      benchmark::DoNotOptimize(f.pop(now));
    }
  }
}
BENCHMARK(BM_TimedFifoPushPop);

/// Whole-platform throughput: simulated microseconds per wall second with
/// one saturating DMA and one CPU pointer chaser.
void BM_SocSimulationThroughput(benchmark::State& state) {
  soc::SocConfig cfg;
  soc::Soc chip(cfg);
  wl::PointerChaseConfig pc;
  cpu::CoreConfig cc;
  chip.add_core(cc, wl::make_pointer_chase(pc));
  wl::TrafficGenConfig tg;
  chip.add_traffic_gen(0, tg);
  for (auto _ : state) {
    chip.run_for(10 * sim::kPsPerUs);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(chip.sim().tick_count()));
  state.counters["sim_us_per_iter"] = 10;
}
BENCHMARK(BM_SocSimulationThroughput)->Unit(benchmark::kMillisecond);

/// DRAM controller request throughput under random traffic.
void BM_DramRandomTraffic(benchmark::State& state) {
  soc::SocConfig cfg;
  cfg.qos_blocks = false;
  soc::Soc chip(cfg);
  wl::TrafficGenConfig tg;
  tg.pattern = wl::Pattern::kRandomRead;
  chip.add_traffic_gen(0, tg);
  for (auto _ : state) {
    chip.run_for(10 * sim::kPsPerUs);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(
      chip.dram().stats().reads_serviced.value()));
}
BENCHMARK(BM_DramRandomTraffic)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
