/// \file bench_exp3_granularity.cpp
/// \brief EXP3 — Fig. 2 reconstruction: regulation-window granularity.
///
/// Three DMA aggressors each regulated to the same rate (800 MB/s) with
/// the replenish window swept from 200 ns to 10 ms, against a
/// latency-critical CPU task. Reports the critical task's mean and p99
/// iteration time, the CPU read p99, and the worst burst any aggressor
/// fit into a fixed 10 us measurement interval. Coarser windows let the
/// full window budget arrive as one contiguous burst, inflating the
/// critical task's tail latency even though the average rate is
/// unchanged — the reason fine granularity (only affordable in tightly-
/// coupled hardware) matters.
#include <cstdio>

#include "common.hpp"

using namespace fgqos;
using namespace fgqos::bench;

namespace {

struct WindowRow {
  double iter_mean_ps = 0;
  sim::TimePs iter_p99_ps = 0;
  sim::TimePs read_p99_ps = 0;
  std::uint64_t max_burst_bytes = 0;
  double aggr_gbps = 0;
};

WindowRow run_window(sim::TimePs w) {
  ScenarioParams p;
  p.scheme = Scheme::kHwQos;
  p.aggressor_count = 3;
  // The run must span many regulation windows for the average to be
  // meaningful; one pointer-chase iteration is ~140 us.
  const std::uint64_t needed = (30 * w) / (140 * sim::kPsPerUs) + 1;
  p.critical_iterations =
      std::max<std::uint64_t>(8, std::min<std::uint64_t>(needed, 2200));
  p.per_aggressor_budget_bps = 800e6;
  p.hw_window_ps = w;
  Scenario s = build_scenario(p);
  // Fixed-resolution burst measurement on aggressor port 0.
  sim::WindowedBytes burst(10 * sim::kPsPerUs);
  class BurstObserver final : public axi::TxnObserver {
   public:
    explicit BurstObserver(sim::WindowedBytes& wbytes) : w_(wbytes) {}
    void on_issue(const axi::Transaction&, sim::TimePs) override {}
    void on_grant(const axi::LineRequest& l, sim::TimePs now) override {
      w_.add(now, l.bytes);
    }
    void on_complete(const axi::Transaction&, sim::TimePs) override {}

   private:
    sim::WindowedBytes& w_;
  } obs(burst);
  s.chip->accel_port(0).add_observer(obs);

  const double mean = run_critical(s, 600 * sim::kPsPerMs);
  burst.flush(s.chip->now());
  return WindowRow{mean, s.critical->stats().iteration_ps.p99(),
                   s.chip->cpu_port().stats().read_latency.p99(),
                   burst.max_window_bytes(), s.aggressor_bps() / 1e9};
}

}  // namespace

int main(int argc, char** argv) {
  std::printf(
      "EXP3 (Fig.2): regulation window sweep, 3 aggressors @ 800 MB/s "
      "each, latency-critical CPU task\n\n");
  const std::vector<sim::TimePs> windows = {
      200 * sim::kPsPerNs,  sim::kPsPerUs,       5 * sim::kPsPerUs,
      20 * sim::kPsPerUs,   100 * sim::kPsPerUs, sim::kPsPerMs,
      10 * sim::kPsPerMs};

  // Solo reference.
  double solo_mean = 0;
  {
    ScenarioParams p;
    p.scheme = Scheme::kSolo;
    p.critical_iterations = 8;
    Scenario s = build_scenario(p);
    solo_mean = run_critical(s, 400 * sim::kPsPerMs);
  }

  // Each window length is an independent point; fan out and merge in
  // sweep order.
  exec::ScenarioRunner runner(bench_exec_config(argc, argv));
  const std::vector<WindowRow> rows = runner.map(
      windows.size(),
      [&](const exec::JobContext& ctx) { return run_window(windows[ctx.index]); });

  util::Table table({"window", "iter_mean", "iter_p99", "slowdown",
                     "cpu_read_p99", "max_burst_10us", "aggr_GB/s"});
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const WindowRow& r = rows[i];
    table.add_row(
        {util::format_time_ps(windows[i]),
         util::format_time_ps(static_cast<sim::TimePs>(r.iter_mean_ps)),
         util::format_time_ps(r.iter_p99_ps),
         util::format_fixed(r.iter_mean_ps / solo_mean, 2) + "x",
         util::format_time_ps(r.read_p99_ps),
         util::format_bytes(r.max_burst_bytes),
         util::format_fixed(r.aggr_gbps, 2)});
  }
  table.print();
  table.save_csv("exp3_granularity.csv");
  std::printf(
      "\nsolo reference: %s per iteration\nCSV written to "
      "exp3_granularity.csv\n",
      util::format_time_ps(static_cast<sim::TimePs>(solo_mean)).c_str());
  print_exec_summary(runner);
  return 0;
}
