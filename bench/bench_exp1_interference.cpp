/// \file bench_exp1_interference.cpp
/// \brief EXP1 — Fig. 1 reconstruction: unregulated memory interference.
///
/// Sweeps the number of active FPGA DMA masters (0..4) and their traffic
/// pattern, for two critical CPU workload classes (latency-sensitive
/// pointer chase and bandwidth-sensitive streaming), and reports the
/// critical task's slowdown relative to solo execution plus the raw CPU
/// read-latency tail. Prior-work anchor (same research group, DATE'22):
/// CPU tasks slow down by up to ~16x on FPGA HeSoCs under such traffic.
#include <cstdio>

#include "common.hpp"

using namespace fgqos;
using namespace fgqos::bench;

namespace {

struct Row {
  std::string workload;
  std::string pattern;
  std::size_t gens;
  double iter_mean_ps;
  double read_p99_ps;
  double aggressor_gbps;
};

Row run_one(const std::string& workload, wl::Pattern pattern,
            std::size_t gens) {
  ScenarioParams p;
  p.scheme = gens == 0 ? Scheme::kSolo : Scheme::kUnregulated;
  p.aggressor_count = gens;
  p.aggressor_pattern = pattern;
  p.critical_iterations = 8;
  if (workload == "latency") {
    p.critical_kernel = [] {
      wl::PointerChaseConfig pc;
      pc.accesses_per_iteration = 1024;
      return wl::make_pointer_chase(pc);
    };
  } else {
    p.critical_kernel = [] {
      wl::StreamConfig sc;
      sc.lines_per_iteration = 16384;
      return wl::make_stream(sc);
    };
  }
  Scenario s = build_scenario(p);
  const double mean = run_critical(s, 400 * sim::kPsPerMs);
  return Row{workload,
             pattern_name(pattern),
             gens,
             mean,
             static_cast<double>(
                 s.chip->cpu_port().stats().read_latency.p99()),
             s.aggressor_bps() / 1e9};
}

}  // namespace

int main(int argc, char** argv) {
  std::printf(
      "EXP1 (Fig.1): unregulated interference on the critical CPU task\n"
      "platform: %zu HP ports, DDR4-2400 64-bit (19.2 GB/s peak)\n\n",
      soc::SocConfig{}.accel_ports);

  const std::vector<std::string> workloads = {"latency", "stream"};
  const std::vector<wl::Pattern> patterns = {
      wl::Pattern::kSeqRead, wl::Pattern::kSeqWrite, wl::Pattern::kRandomRead};

  // Every (workload, pattern, gens) cell is an independent simulation:
  // flatten the grid, fan out, merge rows back in grid order.
  struct Point {
    std::string workload;
    wl::Pattern pattern;
    std::size_t gens;
  };
  std::vector<Point> grid;
  for (const auto& w : workloads) {
    for (const auto pat : patterns) {
      for (std::size_t gens = 0; gens <= 4; ++gens) {
        grid.push_back({w, pat, gens});
      }
    }
  }
  exec::ScenarioRunner runner(bench_exec_config(argc, argv));
  const std::vector<Row> rows =
      runner.map(grid.size(), [&](const exec::JobContext& ctx) {
        const Point& pt = grid[ctx.index];
        return run_one(pt.workload, pt.pattern, pt.gens);
      });

  util::Table table({"workload", "aggressor", "n_gens", "iter_mean",
                     "slowdown", "cpu_read_p99", "aggr_GB/s"});
  double solo_mean = 0;
  for (const Row& r : rows) {
    if (r.gens == 0) {
      solo_mean = r.iter_mean_ps;
    }
    table.add_row({r.workload, r.pattern, static_cast<std::uint64_t>(r.gens),
                   util::format_time_ps(
                       static_cast<sim::TimePs>(r.iter_mean_ps)),
                   util::format_fixed(r.iter_mean_ps / solo_mean, 2) + "x",
                   util::format_time_ps(
                       static_cast<sim::TimePs>(r.read_p99_ps)),
                   util::format_fixed(r.aggressor_gbps, 2)});
  }
  table.print();
  table.save_csv("exp1_interference.csv");
  std::printf("\nCSV written to exp1_interference.csv\n");
  print_exec_summary(runner);
  return 0;
}
