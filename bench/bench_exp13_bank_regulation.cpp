/// \file bench_exp13_bank_regulation.cpp
/// \brief EXP13 — per-bank vs. aggregate regulation on the serving defense.
///
/// The PR-7 request-serving scenario recast onto a bank-partitioned
/// channel: the latency-critical KV tenant owns DRAM bank 0 (its 64 MiB
/// footprint sits inside the first 128 MiB slice). One bulk port runs a
/// single-line row-miss thrasher *inside the tenant's bank*; the other
/// two stream reads through private banks the tenant never touches.
/// Both defenses apply one uniform policy to every bulk port. Swept over
/// offered load, three schemes:
///
///   * none      — bulk free-running: the tenant's request p99 collapses;
///   * aggregate — the classic per-port token bucket, same rate on every
///                 bulk port. One knob prices every admitted byte
///                 identically, so the protective rate is set by the most
///                 harmful byte anywhere in the address space;
///   * perbank   — the same BankBudgetSpec on every bulk port, with the
///                 budgets taken from what per-bank interference
///                 accounting actually measures. The tenant's stalls are
///                 charged to the private-bank streamers (bus occupancy),
///                 NOT to the in-bank thrasher — FR-FCFS row-hit-first
///                 scheduling absorbs the row misses behind the tenant's
///                 hits. So every private bank is held at the protective
///                 rate while the tenant's own bank, whose bulk traffic
///                 is measured harmless, keeps its headroom. Equal victim
///                 protection, strictly more bulk throughput.
///
/// This is the paper's tight monitoring/regulation coupling in one
/// experiment: the per-bank counters (what the tentpole adds) are the
/// evidence that lets the per-bank budgets beat the port-granular knob.
///
/// CSV `exp13_bank_regulation.csv` feeds `plot_experiments.py bank` and
/// backs the CI dominance gate (ci/run_report_gate.sh): per-bank must
/// match aggregate's victim p99/attainment at higher total bulk GB/s.
#include <cstdio>
#include <string>
#include <vector>

#include "common.hpp"
#include "workload/serving.hpp"

using namespace fgqos;
using namespace fgqos::bench;

namespace {

constexpr sim::TimePs kDurationPs = 20 * sim::kPsPerMs;
constexpr sim::TimePs kSloPs = 3 * sim::kPsPerUs;
constexpr std::size_t kBulkCount = 3;  ///< ports 0..2; tenant owns port 3
/// Regulation window for both schemes. Short on purpose: the tenant's
/// SLO is microseconds, so admission must be smooth at that scale —
/// a 10 us window would admit each bank's whole budget as one burst.
constexpr sim::TimePs kWindowPs = sim::kPsPerUs;

/// Aggregate scheme: the uniform per-port rate that restores the
/// tenant's SLO. The port knob cannot tell a harmless byte from a
/// harmful one, so every port — including the one whose traffic never
/// stalls the tenant — is clamped to the protective rate.
constexpr double kAggregateMbps = 200.0;
/// Per-bank scheme: uniform per-port budgets, set from what the
/// per-bank blame counters measure. Private banks carry the streamers
/// whose bus occupancy is what actually stalls the tenant, so they get
/// exactly the aggregate scheme's protective rate. The tenant's own
/// bank gets 4x that: its bulk traffic is deep row-miss thrash that the
/// controller's row-hit-first scheduler absorbs behind the tenant's
/// locality-rich requests, and the counters show it contributes no
/// victim stalls. That measured headroom is bandwidth the port-granular
/// knob can never reclaim.
constexpr double kTenantBankMbps = 800.0;
constexpr double kPrivateBankMbps = 200.0;

enum class BankScheme { kNone, kAggregate, kPerBank };

const char* scheme_name(BankScheme s) {
  switch (s) {
    case BankScheme::kNone: return "none";
    case BankScheme::kAggregate: return "aggregate";
    case BankScheme::kPerBank: return "perbank";
  }
  return "?";
}

struct Row {
  std::string scheme;
  double load_qps = 0;
  double offered_qps = 0;
  double completed_qps = 0;
  double p50_us = 0;
  double p99_us = 0;
  double p999_us = 0;
  std::string attainment_table;  ///< 2-decimal pct, or "n/a" (no samples)
  std::string attainment_csv;    ///< 4-decimal pct, or "n/a" (no samples)
  double bulk_gbps = 0;
  std::string note;
};

Row run_point(BankScheme scheme, double load_qps) {
  soc::SocConfig cfg;
  cfg.dram.mapping = dram::MappingPolicy::kBankPartitioned;
  soc::Soc chip(cfg);
  const std::uint64_t slice =
      cfg.dram.timing.capacity_bytes / cfg.dram.timing.banks;

  wl::ServingSpec spec;
  spec.seed = 7;
  spec.duration_ps = kDurationPs;
  wl::ServingTenantSpec t;
  t.name = "lc";
  t.port = 3;
  t.arrival = wl::ArrivalKind::kPoisson;
  t.rate_qps = load_qps;
  t.zipf_s = 0.99;
  t.key_count = 65536;
  t.value_bytes = 4096;
  t.read_fraction = 0.95;
  t.slo_ps = kSloPs;
  t.max_outstanding = 8;
  t.queue_capacity = 4096;
  t.base = 0;  // banks-partitioned slice 0: the tenant owns bank 0
  t.footprint_bytes = 64ull << 20;
  spec.tenants.push_back(t);
  chip.add_serving(spec, /*run_seed=*/1);
  wl::ServingTenant& lc = chip.serving_tenant(0);

  // Port 0 hosts the thrasher (random reads inside the tenant's bank);
  // ports 1..2 stream reads through private banks of their own. The
  // defenses below do not exploit this layout — each applies one uniform
  // policy to all three bulk ports.
  wl::TrafficGenConfig thrash;
  thrash.name = "thrash";
  thrash.pattern = wl::Pattern::kRandomRead;
  thrash.base = 64ull << 20;  // tenant footprint ends here; still bank 0
  thrash.footprint_bytes = 16ull << 20;
  thrash.seed = 60;
  // Single-line bursts: every access opens a fresh row (the default
  // 1 KiB burst would be 15/16 row hits), and a deep outstanding window
  // keeps the bank's row-miss pipeline saturated.
  thrash.burst_bytes = 64;
  thrash.max_outstanding = 48;
  chip.add_traffic_gen(0, thrash);
  for (std::size_t p = 1; p < kBulkCount; ++p) {
    wl::TrafficGenConfig stream;
    stream.name = "stream" + std::to_string(p);
    stream.pattern = wl::Pattern::kSeqRead;
    stream.base = static_cast<axi::Addr>(p) * slice;
    stream.footprint_bytes = slice;
    stream.seed = 80 + p;
    chip.add_traffic_gen(p, stream);
  }

  if (scheme == BankScheme::kAggregate) {
    for (std::size_t p = 0; p < kBulkCount; ++p) {
      qos::Regulator& reg = *chip.qos_block(1 + p).regulator;
      reg.set_window(kWindowPs);
      reg.set_rate(kAggregateMbps * 1e6);
      reg.set_enabled(true);
    }
  } else if (scheme == BankScheme::kPerBank) {
    for (std::size_t p = 0; p < kBulkCount; ++p) {
      qos::BankRegulatorConfig bc;
      bc.window_ps = kWindowPs;
      bc.budget_bytes.assign(
          cfg.dram.timing.banks,
          qos::budget_for_rate(kPrivateBankMbps * 1e6, kWindowPs));
      bc.budget_bytes[0] =
          qos::budget_for_rate(kTenantBankMbps * 1e6, kWindowPs);
      chip.add_bank_regulator(1 + p, std::move(bc));
    }
  }

  chip.run_until(kDurationPs);
  const sim::TimePs drain_deadline = chip.now() + 10 * sim::kPsPerMs;
  while (!lc.drained() && chip.now() < drain_deadline) {
    chip.run_for(100 * sim::kPsPerUs);
  }

  Row r;
  r.scheme = scheme_name(scheme);
  r.load_qps = load_qps;
  r.offered_qps = lc.offered_qps();
  r.completed_qps = lc.completed_qps();
  r.p50_us = static_cast<double>(lc.latency().p50()) / 1e6;
  r.p99_us = static_cast<double>(lc.latency().p99()) / 1e6;
  r.p999_us = static_cast<double>(lc.latency().p999()) / 1e6;
  r.attainment_table = wl::attainment_pct_cell(lc, 2);
  r.attainment_csv = wl::attainment_pct_cell(lc, 4);
  double bulk = 0;
  for (std::size_t p = 0; p < kBulkCount; ++p) {
    bulk += sim::bytes_per_second(
        chip.accel_port(p).stats().bytes_granted.value(), chip.now());
  }
  r.bulk_gbps = bulk / 1e9;
  if (scheme == BankScheme::kPerBank) {
    std::uint64_t throttled = 0;
    for (std::size_t p = 0; p < kBulkCount; ++p) {
      throttled += chip.bank_regulator(1 + p)->bank_stats(0).throttled_ps;
    }
    char buf[64];
    std::snprintf(buf, sizeof buf, "bank0 throttled %.1f ms",
                  static_cast<double>(throttled) / 1e9);
    r.note = buf;
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  std::printf(
      "EXP13: per-bank vs. aggregate regulation — bank-partitioned channel\n"
      "  KV tenant owns bank 0; %zu bulk ports (one in-bank thrasher, two "
      "private-bank\n  streamers), uniform policy per scheme. SLO %.1f us; "
      "aggregate %.0f MB/s/port\n  vs. per-bank %.0f MB/s on private banks, "
      "%.0f MB/s on the tenant's bank\n\n",
      kBulkCount, static_cast<double>(kSloPs) / 1e6, kAggregateMbps,
      kPrivateBankMbps, kTenantBankMbps);

  const std::vector<double> loads = {60e3, 100e3, 140e3};
  struct Point {
    BankScheme scheme;
    double load;
  };
  std::vector<Point> grid;
  for (const BankScheme s : {BankScheme::kNone, BankScheme::kAggregate,
                             BankScheme::kPerBank}) {
    for (const double l : loads) {
      grid.push_back({s, l});
    }
  }
  exec::ScenarioRunner runner(bench_exec_config(argc, argv));
  const std::vector<Row> rows =
      runner.map(grid.size(), [&](const exec::JobContext& ctx) {
        const Point& pt = grid[ctx.index];
        return run_point(pt.scheme, pt.load);
      });

  util::Table table({"scheme", "load_kqps", "completed_kqps", "p50_us",
                     "p99_us", "p99.9_us", "attain_%", "bulk_GB/s", "note"});
  for (const Row& r : rows) {
    table.add_row({r.scheme, util::format_fixed(r.load_qps / 1e3, 0),
                   util::format_fixed(r.completed_qps / 1e3, 1),
                   util::format_fixed(r.p50_us, 2),
                   util::format_fixed(r.p99_us, 2),
                   util::format_fixed(r.p999_us, 2), r.attainment_table,
                   util::format_fixed(r.bulk_gbps, 2), r.note});
  }
  table.print();

  util::Table csv({"scheme", "load_qps", "offered_qps", "completed_qps",
                   "p50_us", "p99_us", "p999_us", "attainment_pct",
                   "bulk_gbps"});
  for (const Row& r : rows) {
    csv.add_row({r.scheme, util::format_fixed(r.load_qps, 0),
                 util::format_fixed(r.offered_qps, 2),
                 util::format_fixed(r.completed_qps, 2),
                 util::format_fixed(r.p50_us, 3),
                 util::format_fixed(r.p99_us, 3),
                 util::format_fixed(r.p999_us, 3), r.attainment_csv,
                 util::format_fixed(r.bulk_gbps, 3)});
  }
  csv.save_csv("exp13_bank_regulation.csv");
  std::printf(
      "\nperbank should match aggregate's p99/attainment at every load while "
      "keeping\nstrictly more bulk throughput (the tenant-bank headroom the "
      "port knob\ncannot reclaim). CSV written to exp13_bank_regulation.csv\n");
  print_exec_summary(runner);
  return 0;
}
