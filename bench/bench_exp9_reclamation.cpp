/// \file bench_exp9_reclamation.cpp
/// \brief EXP9 — Table III reconstruction: dynamic slack reclamation.
///
/// A "camera DMA" with phased demand (2 ms active / 2 ms idle) holds a
/// 2 GB/s reservation; three best-effort DMAs are hungry throughout.
/// Compares three policies:
///  * static:      best-effort masters pinned to a conservative floor so
///                 the guarantee can never be violated;
///  * reclamation: the QosManager reads the monitors every 100 us and
///                 re-programs best-effort budgets with the slack the
///                 idle reservation leaves (CMRI-style reuse);
///  * unregulated: upper bound for best-effort, no guarantee.
/// Reported: camera rate achieved during its active phases, best-effort
/// aggregate bandwidth, and total bus utilisation.
#include <cstdio>

#include "common.hpp"
#include "qos/qos_manager.hpp"

using namespace fgqos;
using namespace fgqos::bench;

namespace {

struct Result {
  double camera_active_bps;  ///< achieved while the camera was active
  double best_effort_gbps;
  double bus_util;
};

Result run(bool regulated, bool reclaim) {
  soc::SocConfig cfg;
  soc::Soc chip(cfg);

  // Camera: phased reserved master on port 0.
  wl::TrafficGenConfig cam;
  cam.name = "camera";
  cam.target_bps = 2e9;
  cam.active_ps = 2 * sim::kPsPerMs;
  cam.idle_ps = 2 * sim::kPsPerMs;
  cam.seed = 1;
  chip.add_traffic_gen(0, cam);

  // Three hungry best-effort DMAs on ports 1..3.
  std::vector<wl::TrafficGen*> be;
  for (std::size_t i = 1; i < 4; ++i) {
    wl::TrafficGenConfig tg;
    tg.name = "be" + std::to_string(i);
    tg.base = 0x8000'0000 + (static_cast<axi::Addr>(i) << 26);
    tg.seed = 10 + i;
    be.push_back(&chip.add_traffic_gen(i, tg));
  }

  qos::QosManagerConfig mc;
  mc.capacity_bps = 11e9;  // measured platform peak under mixed traffic
  mc.reclaim_period_ps = 100 * sim::kPsPerUs;
  mc.best_effort_floor_bps = 500e6;
  qos::QosManager mgr(chip.sim(), mc);
  if (regulated) {
    for (std::size_t m = 1; m <= 4; ++m) {
      mgr.add_port("port" + std::to_string(m),
                   static_cast<axi::MasterId>(m), chip.regfile(m));
    }
    const bool ok = mgr.reserve(1, 2e9);  // the camera's guarantee
    if (!ok) {
      std::fprintf(stderr, "reservation unexpectedly rejected\n");
    }
    if (reclaim) {
      mgr.start_reclamation();
    }
  }

  const sim::TimePs horizon = 40 * sim::kPsPerMs;
  chip.run_for(horizon);

  Result r;
  // Camera active half the time: effective active-phase rate = 2x mean.
  r.camera_active_bps =
      2.0 * sim::bytes_per_second(
                chip.accel_port(0).stats().bytes_granted.value(), horizon);
  double total = 0;
  for (auto* g : be) {
    total += sim::bytes_per_second(g->port().stats().bytes_granted.value(),
                                   horizon);
  }
  r.best_effort_gbps = total / 1e9;
  r.bus_util = chip.dram().bus_utilization(horizon);
  return r;
}

}  // namespace

int main() {
  std::printf(
      "EXP9 (Table III): slack reclamation — phased 2 GB/s camera "
      "reservation vs. 3 hungry best-effort DMAs\n\n");
  util::Table table({"policy", "camera_active_rate", "best_effort_GB/s",
                     "bus_util_%"});
  const Result st = run(true, false);
  const Result rec = run(true, true);
  const Result un = run(false, false);
  auto add = [&](const char* name, const Result& r) {
    table.add_row({name, util::format_bandwidth(r.camera_active_bps),
                   util::format_fixed(r.best_effort_gbps, 2),
                   util::format_fixed(r.bus_util * 100, 1)});
  };
  add("static_floor", st);
  add("reclamation", rec);
  add("unregulated", un);
  table.print();
  table.save_csv("exp9_reclamation.csv");
  std::printf(
      "\nbest-effort gain from reclamation: %.2fx over static floor\n"
      "CSV written to exp9_reclamation.csv\n",
      rec.best_effort_gbps / st.best_effort_gbps);
  return 0;
}
