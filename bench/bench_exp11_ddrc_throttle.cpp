/// \file bench_exp11_ddrc_throttle.cpp
/// \brief EXP11 — ablation: regulating at the DDR controller (the
///        commercial coarse knob) vs. at the port edge (the paper).
///
/// Scenario: a well-behaved "victim" DMA entitled to 1.5 GB/s shares the
/// fabric with three saturating aggressors, while a latency-critical CPU
/// task runs. Three configurations:
///   * unregulated;
///   * DDRC global read throttle capping aggregate accelerator traffic
///     to the same total the per-port budgets allow (3 x 0.8 + 1.5 GB/s);
///   * per-port tightly-coupled regulators: victim 1.5 GB/s,
///     aggressors 0.8 GB/s each.
/// Expected shape: the global throttle caps the *sum* but the aggressors
/// still crowd the victim out of it; per-port regulation delivers the
/// victim its entitlement exactly. The CPU tail improves in both cases
/// but only edge regulation gives per-master isolation.
#include <cstdio>

#include "common.hpp"
#include "qos/ddrc_throttle.hpp"

using namespace fgqos;
using namespace fgqos::bench;

namespace {

struct Row {
  const char* config;
  double victim_gbps;
  double aggressor_gbps;
  double cpu_p99_us;
};

Row run_one(const char* label, bool ddrc, bool per_port) {
  ScenarioParams p;
  p.scheme = Scheme::kUnregulated;
  p.aggressor_count = 0;  // added manually below
  p.critical_iterations = 40;
  Scenario s = build_scenario(p);
  soc::Soc& chip = *s.chip;

  // Victim on port 0: paced to its 1.5 GB/s entitlement.
  wl::TrafficGenConfig victim;
  victim.name = "victim";
  victim.target_bps = 1.5e9;
  victim.seed = 1;
  wl::TrafficGen& v = chip.add_traffic_gen(0, victim);
  // Three saturating aggressors on ports 1..3.
  std::vector<wl::TrafficGen*> aggs;
  for (std::size_t i = 1; i < 4; ++i) {
    wl::TrafficGenConfig tg;
    tg.name = "agg" + std::to_string(i);
    tg.base = 0x8000'0000 + (static_cast<axi::Addr>(i) << 26);
    tg.seed = 10 + i;
    aggs.push_back(&chip.add_traffic_gen(i, tg));
  }

  const double total_allow = 1.5e9 + 3 * 0.8e9;
  if (ddrc) {
    qos::DdrcThrottleConfig tc;
    tc.read_bps = total_allow;
    chip.insert_ddrc_throttle(tc);
  }
  if (per_port) {
    chip.qos_block(1).regulator->set_rate(1.5e9);
    chip.qos_block(1).regulator->set_enabled(true);
    for (std::size_t m = 2; m <= 4; ++m) {
      chip.qos_block(m).regulator->set_rate(0.8e9);
      chip.qos_block(m).regulator->set_enabled(true);
    }
  }

  run_critical(s, 2000 * sim::kPsPerMs);
  Row r;
  r.config = label;
  r.victim_gbps = sim::bytes_per_second(
                      v.port().stats().bytes_granted.value(), chip.now()) /
                  1e9;
  double agg_total = 0;
  for (auto* g : aggs) {
    agg_total += sim::bytes_per_second(
        g->port().stats().bytes_granted.value(), chip.now());
  }
  r.aggressor_gbps = agg_total / 1e9;
  r.cpu_p99_us =
      static_cast<double>(chip.cpu_port().stats().read_latency.p99()) / 1e6;
  return r;
}

}  // namespace

int main() {
  std::printf(
      "EXP11 (ablation): DDRC global throttle vs. per-port edge "
      "regulation\n  victim entitled to 1.5 GB/s; aggregate allowance "
      "3.9 GB/s in both regulated configs\n\n");
  util::Table table({"config", "victim_GB/s", "aggressors_GB/s",
                     "cpu_read_p99_us"});
  const Row rows[] = {
      run_one("unregulated", false, false),
      run_one("ddrc_throttle", true, false),
      run_one("per_port_hw_qos", false, true),
  };
  for (const Row& r : rows) {
    table.add_row({r.config, util::format_fixed(r.victim_gbps, 2),
                   util::format_fixed(r.aggressor_gbps, 2),
                   util::format_fixed(r.cpu_p99_us, 2)});
  }
  table.print();
  table.save_csv("exp11_ddrc_throttle.csv");
  std::printf(
      "\nonly per-port regulation delivers the victim its entitlement;\n"
      "the global throttle lets the aggressors crowd it out.\n"
      "CSV written to exp11_ddrc_throttle.csv\n");
  return 0;
}
