/// \file bench_exp8_coupling_ablation.cpp
/// \brief EXP8 — Fig. 6 reconstruction: how tight does the coupling need
///        to be?
///
/// Ablates the single design choice the paper's title claims matters:
/// the regulator's observation latency. The same token-bucket policy is
/// enforced by a LaggedRegulator whose view of consumed bytes lags
/// reality by 0 (tightly-coupled) up to 100 us (a monitor polled across
/// the fabric / config bus). One saturating DMA is regulated to
/// 400 MB/s in 100 us windows; a latency-critical CPU task runs
/// alongside. Reported: per-window overshoot (bytes over budget), the
/// effective rate, and the critical task's p99.
#include <cstdio>

#include "common.hpp"
#include "qos/polling_monitor.hpp"

using namespace fgqos;
using namespace fgqos::bench;

int main() {
  std::printf(
      "EXP8 (Fig.6): coupling ablation — observation latency of the "
      "regulator (400 MB/s budget, 100 us window, 3 aggressors)\n\n");
  const sim::TimePs window = 100 * sim::kPsPerUs;
  const double budget_bps = 400e6;
  const std::uint64_t budget_bytes = qos::budget_for_rate(budget_bps, window);

  // Solo reference for the critical task.
  double solo_mean = 0;
  {
    ScenarioParams p;
    p.scheme = Scheme::kSolo;
    p.critical_iterations = 8;
    Scenario s = build_scenario(p);
    solo_mean = run_critical(s, 400 * sim::kPsPerMs);
  }

  util::Table table({"observation_lag", "overshoot/window", "overshoot_%",
                     "measured_rate", "crit_slowdown", "cpu_read_p99"});
  const std::vector<sim::TimePs> lags = {
      0,
      100 * sim::kPsPerNs,
      sim::kPsPerUs,
      10 * sim::kPsPerUs,
      50 * sim::kPsPerUs,
      100 * sim::kPsPerUs,
  };
  for (const sim::TimePs lag : lags) {
    ScenarioParams p;
    p.scheme = Scheme::kUnregulated;  // gates attached manually below
    p.aggressor_count = 3;
    p.critical_iterations = 8;
    Scenario s = build_scenario(p);
    std::vector<std::unique_ptr<qos::LaggedRegulator>> regs;
    for (std::size_t i = 0; i < 3; ++i) {
      qos::LaggedRegulatorConfig lc;
      lc.name = "lagged" + std::to_string(i);
      lc.budget_bytes = budget_bytes;
      lc.window_ps = window;
      lc.observation_latency_ps = lag;
      regs.push_back(
          std::make_unique<qos::LaggedRegulator>(s.chip->sim(), lc));
      s.chip->accel_port(i).add_gate(*regs.back());
    }
    const double mean = run_critical(s, 600 * sim::kPsPerMs);
    std::uint64_t overshoot = 0;
    for (const auto& r : regs) {
      overshoot = std::max(overshoot, r->max_overshoot_bytes());
    }
    const double measured = s.aggressor_bps() / 3.0;
    table.add_row(
        {lag == 0 ? std::string("0 (tight)") : util::format_time_ps(lag),
         util::format_bytes(overshoot),
         util::format_fixed(
             static_cast<double>(overshoot) /
                 static_cast<double>(budget_bytes) * 100.0, 1),
         util::format_bandwidth(measured),
         util::format_fixed(mean / solo_mean, 2) + "x",
         util::format_time_ps(
             s.chip->cpu_port().stats().read_latency.p99())});
  }
  table.print();
  table.save_csv("exp8_coupling_ablation.csv");
  std::printf("\nCSV written to exp8_coupling_ablation.csv\n");
  return 0;
}
