/// \file bench_exp14_certification.cpp
/// \brief EXP14 — adversarial worst-case search + certified envelope.
///
/// The robustness question the hand-written experiments cannot answer:
/// is the EXP1 aggressor mix anywhere near the *worst* contention the
/// platform admits? This bench runs the adversarial contention search
/// (src/search) over the full attack space — count x pattern x burst x
/// stride x outstanding x bank targeting x phasing — and reproduces two
/// headline claims:
///
///   1. The search finds an attack at least 1.5x worse (victim slowdown
///      vs. solo) than the hand-written EXP1 mix. Fixed operating points
///      understate worst-case interference; certification has to search.
///   2. Under the paper's per-port regulation the certified envelope
///      HOLDS: replaying the argmax attack under regulation at every
///      validation seed stays inside the envelope's cpu bounds (p99,
///      min bandwidth, slowdown). Regulation turns an adversarial
///      worst case into a bounded one.
///
/// `--quick` shrinks the search (CI smoke); `--jobs N` fans evaluation
/// batches out (the envelope is jobs-invariant by construction). CSV
/// `exp14_certification.csv` feeds plot_experiments.py; exit status is
/// non-zero when either headline claim fails, so CI can gate on it.
#include <cstdio>
#include <string>
#include <vector>

#include "common.hpp"
#include "search/search.hpp"

using namespace fgqos;
using namespace fgqos::bench;

namespace {

struct Claim {
  std::string name;
  bool pass = false;
  std::string detail;
};

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") {
      quick = true;
    }
  }

  search::SearchSpec spec;
  spec.optimizer = "both";
  spec.objective = search::Objective::kSlowdown;
  spec.seed = 14;
  spec.eval.victim_accesses = quick ? 64 : 256;
  spec.eval.victim_iterations = quick ? 2 : 3;
  spec.eval.deadline_ms = quick ? 50.0 : 400.0;
  spec.eval.regulated_budget_mbps = 400.0;
  spec.eval.window_us = 1.0;
  spec.budget_evals = quick ? 8 : 48;
  spec.restarts = 1;
  spec.mu = 4;
  spec.lambda = 8;
  spec.generations = quick ? 1 : 2;
  spec.validate_seeds = quick ? 3 : 10;

  std::printf(
      "EXP14: adversarial contention search + certified envelope%s\n"
      "  objective: victim slowdown vs. solo; budget %zu unique attack "
      "configs\n  (each evaluated unregulated AND regulated at %.0f MB/s "
      "per port),\n  then %zu-seed validation replay of the regulated "
      "argmax\n\n",
      quick ? " (--quick)" : "", spec.budget_evals,
      spec.eval.regulated_budget_mbps, spec.validate_seeds);

  exec::ScenarioRunner runner(bench_exec_config(argc, argv));
  const search::SearchOutcome outcome = search::run_search(
      spec, runner, /*journal_path=*/"", /*resume=*/false,
      [](const search::SearchProgress& p) {
        std::printf("  [%s] batch %zu: %zu config(s), best slowdown %.3f\n",
                    p.phase.c_str(), p.batch, p.evaluations,
                    p.best_objective);
      });
  if (outcome.interrupted) {
    std::fprintf(stderr, "search interrupted\n");
    return 130;
  }
  const qos::CertifiedEnvelope& env = outcome.envelope;

  std::printf("\n  EXP1 mix slowdown:   %.3f\n", env.exp1_mix_objective);
  std::printf("  argmax slowdown:     %.3f  (%s)\n", env.argmax_objective,
              env.argmax_config_json.c_str());
  const double ratio =
      env.exp1_mix_objective > 0 ? env.argmax_objective / env.exp1_mix_objective
                                 : 0.0;
  std::printf("  search vs. EXP1:     %.2fx\n", ratio);
  std::printf("  regulated argmax:    slowdown %.3f, victim %.2f MB/s\n",
              env.regulated.iter_mean_ps / env.solo_iter_mean_ps,
              env.regulated.victim_bw_bps / 1e6);

  // --- validation replay: does the regulated envelope hold? ---------------
  const qos::MasterBound* cpu = env.bound_for("cpu");
  util::Table table(
      {"seed", "slowdown", "read_p99_us", "victim_MB/s", "within"});
  util::Table csv({"label", "seed", "slowdown", "read_p99_ps",
                   "victim_bw_bps", "aggressor_bps", "within_envelope"});
  const auto csv_eval = [&](const std::string& label, std::uint64_t seed,
                            const search::EvalResult& r, const char* within) {
    csv.add_row({label, std::to_string(seed),
                 util::format_fixed(r.iter_mean_ps / env.solo_iter_mean_ps, 4),
                 util::format_fixed(r.read_p99_ps, 0),
                 util::format_fixed(r.victim_bw_bps, 0),
                 util::format_fixed(r.aggressor_bps, 0), within});
  };

  const std::vector<search::EvalResult> replays = runner.map(
      env.validate_seeds.size(), [&](const exec::JobContext& ctx) {
        return search::replay_envelope(env, env.validate_seeds[ctx.index],
                                       /*regulated=*/true, nullptr);
      });
  std::size_t excursions = 0;
  for (std::size_t i = 0; i < replays.size(); ++i) {
    const search::EvalResult& r = replays[i];
    const double slowdown = r.iter_mean_ps / env.solo_iter_mean_ps;
    const bool ok = cpu != nullptr && r.read_p99_ps <= cpu->max_p99_ps &&
                    r.victim_bw_bps >= cpu->min_bandwidth_bps &&
                    slowdown <= cpu->max_slowdown;
    if (!ok) {
      ++excursions;
    }
    table.add_row({std::to_string(env.validate_seeds[i]),
                   util::format_fixed(slowdown, 3),
                   util::format_fixed(r.read_p99_ps / 1e6, 2),
                   util::format_fixed(r.victim_bw_bps / 1e6, 1),
                   ok ? "yes" : "NO"});
    csv_eval("validate", env.validate_seeds[i], r, ok ? "yes" : "no");
  }
  std::printf("\nregulated argmax replay vs. certified cpu bounds "
              "(p99 <= %.2f us, bw >= %.1f MB/s, slowdown <= %.3f):\n",
              cpu != nullptr ? cpu->max_p99_ps / 1e6 : 0.0,
              cpu != nullptr ? cpu->min_bandwidth_bps / 1e6 : 0.0,
              cpu != nullptr ? cpu->max_slowdown : 0.0);
  table.print();

  csv_eval("exp1_mix", spec.seed,
           search::EvalResult{env.solo_iter_mean_ps * env.exp1_mix_objective,
                              0, 0, 0, 0, 0, false},
           "n/a");
  csv_eval("argmax_unregulated", spec.seed,
           search::EvalResult{env.unregulated.iter_mean_ps,
                              env.unregulated.iter_p99_ps,
                              env.unregulated.read_p99_ps,
                              env.unregulated.victim_bw_bps,
                              env.unregulated.aggressor_bps,
                              env.unregulated.slo_miss_frac, false},
           "n/a");
  csv.save_csv("exp14_certification.csv");

  // --- headline claims ----------------------------------------------------
  std::vector<Claim> claims;
  {
    Claim c;
    c.name = "search beats hand-written EXP1 mix by >= 1.5x";
    c.pass = ratio >= 1.5;
    char buf[64];
    std::snprintf(buf, sizeof buf, "measured %.2fx", ratio);
    c.detail = buf;
    claims.push_back(c);
  }
  {
    Claim c;
    c.name = "regulated envelope holds across validation seeds";
    c.pass = excursions == 0;
    c.detail = std::to_string(excursions) + " excursion(s) in " +
               std::to_string(replays.size()) + " replay(s)";
    claims.push_back(c);
  }

  bool all_pass = true;
  std::printf("\n");
  for (const Claim& c : claims) {
    std::printf("  [%s] %s (%s)\n", c.pass ? "PASS" : "FAIL", c.name.c_str(),
                c.detail.c_str());
    all_pass = all_pass && c.pass;
  }
  std::printf("\nCSV written to exp14_certification.csv\n");
  print_exec_summary(runner);
  if (quick && !all_pass) {
    // The shrunken smoke search is not expected to reach the full-search
    // ratio; report but do not gate.
    std::printf("(quick mode: FAIL above is informational)\n");
    return 0;
  }
  return all_pass ? 0 : 1;
}
