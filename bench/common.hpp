/// \file common.hpp
/// \brief Shared scenario builders for the experiment benches.
///
/// Every bench binary reconstructs one table or figure of the paper's
/// evaluation (see DESIGN.md section 4). The helpers here assemble the
/// recurring scenario: one latency-critical CPU task plus N accelerator
/// aggressors, under one of the regulation schemes being compared.
#pragma once

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "exec/scenario_runner.hpp"
#include "qos/cmri.hpp"
#include "qos/prem_arbiter.hpp"
#include "qos/regfile.hpp"
#include "qos/soft_memguard.hpp"
#include "soc/soc.hpp"
#include "util/csv.hpp"
#include "util/string_util.hpp"
#include "workload/cpu_workloads.hpp"
#include "workload/traffic_gen.hpp"

namespace fgqos::bench {

/// Regulation schemes compared across the experiments.
enum class Scheme {
  kSolo,          ///< no aggressors at all (baseline)
  kUnregulated,   ///< aggressors on, no QoS
  kSoftMemguard,  ///< software MemGuard (1 ms timer + overflow IRQ)
  kHwQos,         ///< tightly-coupled hardware regulators (the paper)
  kPremStrict,    ///< strict mutual exclusion: accelerators fully blocked
                  ///< while the critical task runs (canonical PREM point)
  kPrem,          ///< PREM TDMA (CPU-exclusive / FPGA-shared slots)
  kPremCmri,      ///< PREM TDMA + controlled injection
};

inline const char* scheme_name(Scheme s) {
  switch (s) {
    case Scheme::kSolo: return "solo";
    case Scheme::kUnregulated: return "unregulated";
    case Scheme::kSoftMemguard: return "memguard_sw";
    case Scheme::kHwQos: return "hw_qos";
    case Scheme::kPremStrict: return "prem_strict";
    case Scheme::kPrem: return "prem_tdma";
    case Scheme::kPremCmri: return "prem_cmri";
  }
  return "?";
}

/// Gate that blocks every line while an external flag is true — models
/// strict PREM mutual exclusion driven by the critical task's activity.
class BlockWhileGate final : public axi::TxnGate {
 public:
  explicit BlockWhileGate(const bool* blocked) : blocked_(blocked) {}
  [[nodiscard]] bool allow(const axi::LineRequest&,
                           sim::TimePs) const override {
    return !*blocked_;
  }
  void on_grant(const axi::LineRequest&, sim::TimePs) override {}

 private:
  const bool* blocked_;
};

/// One assembled scenario. Keeps ownership of the QoS scheme objects that
/// are not owned by the Soc.
struct Scenario {
  std::unique_ptr<soc::Soc> chip;
  cpu::CpuCore* critical = nullptr;          ///< nullptr if none added
  std::vector<wl::TrafficGen*> aggressors;
  std::unique_ptr<qos::SoftMemguard> memguard;
  std::unique_ptr<qos::PremArbiter> prem;
  std::unique_ptr<qos::CmriInjector> cmri;
  std::unique_ptr<BlockWhileGate> strict_gate;
  std::unique_ptr<bool> strict_blocked;

  /// Aggregate aggressor bandwidth over the whole run (bytes/second).
  [[nodiscard]] double aggressor_bps() const {
    double total = 0;
    for (const auto* g : aggressors) {
      total += sim::bytes_per_second(
          const_cast<wl::TrafficGen*>(g)->port().stats().bytes_granted.value(),
          chip->now());
    }
    return total;
  }
};

/// Parameters of the standard scenario.
struct ScenarioParams {
  Scheme scheme = Scheme::kUnregulated;
  std::size_t aggressor_count = 4;
  wl::Pattern aggressor_pattern = wl::Pattern::kSeqRead;
  /// Iterations of the critical kernel (0 = no critical core).
  std::uint64_t critical_iterations = 10;
  /// Critical kernel factory; default pointer chase.
  std::function<std::unique_ptr<cpu::Kernel>()> critical_kernel;
  /// Per-aggressor budget for kHwQos / kSoftMemguard (bytes/second).
  double per_aggressor_budget_bps = 400e6;
  /// HW regulation window.
  sim::TimePs hw_window_ps = sim::kPsPerUs;
  /// SW MemGuard period and ISR latency.
  sim::TimePs sw_period_ps = sim::kPsPerMs;
  sim::TimePs sw_isr_latency_ps = 3 * sim::kPsPerUs;
  /// PREM slot length; the frame is {CPU-exclusive, FPGA-shared}.
  sim::TimePs prem_slot_ps = 10 * sim::kPsPerUs;
  /// CMRI: bytes each non-owner may inject per slot.
  std::uint64_t cmri_injection_bytes = 2048;
  /// Phased aggressor activity (both zero = always on).
  sim::TimePs aggressor_active_ps = 0;
  sim::TimePs aggressor_idle_ps = 0;
  /// Override the platform configuration before building.
  std::function<void(soc::SocConfig&)> tweak_config;
};

/// Opt-in bench tracing: when FGQOS_TRACE=<path> is set in the
/// environment, every scenario built by build_scenario() writes a Chrome
/// trace there (a .1, .2, ... suffix keeps repeated builds apart).
/// FGQOS_TRACE_FILTER selects categories.
inline void maybe_open_env_trace(soc::Soc& chip) {
  const char* path = std::getenv("FGQOS_TRACE");
  if (path == nullptr || *path == '\0') {
    return;
  }
  const char* filter_env = std::getenv("FGQOS_TRACE_FILTER");
  static std::atomic<int> scenario_seq{0};
  const int seq = scenario_seq.fetch_add(1);
  std::string out = path;
  if (seq > 0) {
    out += '.';
    out += std::to_string(seq);
  }
  chip.open_trace(out, filter_env != nullptr ? filter_env : "");
}

/// Opt-in bench interference attribution: when FGQOS_BLAME=<path> is set
/// in the environment, every scenario built by build_scenario() runs with
/// the attribution engine on (window FGQOS_BLAME_WINDOW_US, default 100)
/// and run_critical() writes the blame matrices there as CSV (a .1, .2,
/// ... suffix keeps repeated scenarios apart).
inline const char* env_blame_path() {
  const char* path = std::getenv("FGQOS_BLAME");
  return (path != nullptr && *path != '\0') ? path : nullptr;
}

inline void maybe_enable_env_blame(soc::Soc& chip) {
  if (env_blame_path() == nullptr) {
    return;
  }
  double window_us = 100;
  if (const char* w = std::getenv("FGQOS_BLAME_WINDOW_US")) {
    window_us = std::atof(w);
  }
  chip.enable_attribution(static_cast<sim::TimePs>(window_us * 1e6));
}

inline void maybe_dump_env_blame(soc::Soc& chip) {
  const char* path = env_blame_path();
  if (path == nullptr || chip.attribution() == nullptr) {
    return;
  }
  static std::atomic<int> blame_seq{0};
  const int seq = blame_seq.fetch_add(1);
  std::string out = path;
  if (seq > 0) {
    out += '.';
    out += std::to_string(seq);
  }
  chip.attribution()->finish(chip.now());
  chip.attribution()->save_csv(out);
}

/// Shared `--jobs N` handling for the bench binaries: the flag (0 = one
/// worker per hardware thread) overrides the FGQOS_JOBS environment
/// variable; the default is serial. Scenario points submitted through the
/// returned runner merge in submission order, so every bench's table and
/// CSV are byte-identical whatever the job count.
inline exec::ExecConfig bench_exec_config(int argc, char** argv) {
  exec::ExecConfig cfg;
  cfg.jobs = exec::jobs_from_env(1);
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--jobs=", 0) == 0) {
      cfg.jobs = static_cast<std::size_t>(std::stoul(a.substr(7)));
    } else if (a == "--jobs" && i + 1 < argc) {
      cfg.jobs = static_cast<std::size_t>(std::stoul(argv[++i]));
    }
  }
  return cfg;
}

/// Prints the runner's wall-clock summary when it actually ran parallel.
inline void print_exec_summary(const exec::ScenarioRunner& runner) {
  if (runner.worker_count() > 1) {
    std::printf("\n%s\n", runner.summary().c_str());
  }
}

/// Builds the scenario: platform + critical core + aggressors + scheme.
inline Scenario build_scenario(const ScenarioParams& p) {
  Scenario s;
  soc::SocConfig cfg;
  if (p.tweak_config) {
    p.tweak_config(cfg);
  }
  s.chip = std::make_unique<soc::Soc>(cfg);
  soc::Soc& chip = *s.chip;
  maybe_open_env_trace(chip);
  maybe_enable_env_blame(chip);

  if (p.critical_iterations > 0) {
    cpu::CoreConfig cc;
    cc.name = "critical";
    cc.max_iterations = p.critical_iterations;
    std::unique_ptr<cpu::Kernel> k;
    if (p.critical_kernel) {
      k = p.critical_kernel();
    } else {
      wl::PointerChaseConfig pc;
      pc.accesses_per_iteration = 1024;
      k = wl::make_pointer_chase(pc);
    }
    s.critical = &chip.add_core(cc, std::move(k));
  }

  const std::size_t n = p.scheme == Scheme::kSolo ? 0 : p.aggressor_count;
  for (std::size_t i = 0; i < n; ++i) {
    wl::TrafficGenConfig tg;
    tg.name = "agg" + std::to_string(i);
    tg.pattern = p.aggressor_pattern;
    tg.base = 0x8000'0000 + (static_cast<axi::Addr>(i) << 26);
    tg.seed = 100 + i;
    tg.active_ps = p.aggressor_active_ps;
    tg.idle_ps = p.aggressor_idle_ps;
    s.aggressors.push_back(&chip.add_traffic_gen(i % cfg.accel_ports, tg));
  }

  switch (p.scheme) {
    case Scheme::kSolo:
    case Scheme::kUnregulated:
      break;
    case Scheme::kPremStrict:
      // Accelerators are blocked for as long as the scenario runs (the
      // critical task is memory-active throughout): the canonical
      // mutual-exclusion point — perfect isolation, zero best-effort
      // bandwidth.
      s.strict_blocked = std::make_unique<bool>(true);
      s.strict_gate = std::make_unique<BlockWhileGate>(s.strict_blocked.get());
      for (std::size_t i = 0; i < cfg.accel_ports; ++i) {
        chip.accel_port(i).add_gate(*s.strict_gate);
      }
      break;
    case Scheme::kHwQos:
      for (std::size_t i = 0; i < n; ++i) {
        qos::Regulator& reg =
            *chip.qos_block(1 + (i % cfg.accel_ports)).regulator;
        reg.set_window(p.hw_window_ps);
        reg.set_rate(p.per_aggressor_budget_bps);
        reg.set_enabled(true);
      }
      break;
    case Scheme::kSoftMemguard: {
      qos::SoftMemguardConfig mc;
      mc.period_ps = p.sw_period_ps;
      mc.isr_latency_ps = p.sw_isr_latency_ps;
      s.memguard = std::make_unique<qos::SoftMemguard>(chip.sim(), mc);
      for (std::size_t i = 0; i < n && i < cfg.accel_ports; ++i) {
        axi::MasterPort& port = chip.accel_port(i);
        s.memguard->set_rate(port.id(), p.per_aggressor_budget_bps);
        port.add_gate(*s.memguard);
      }
      break;
    }
    case Scheme::kPrem:
    case Scheme::kPremCmri: {
      // Frame = {CPU exclusive, FPGA shared}: during the CPU slot all
      // accelerators are gated; during the FPGA slot they are free.
      qos::PremConfig pc;
      pc.schedule = {chip.cpu_port().id(), qos::kAllMasters};
      pc.slot_ps = p.prem_slot_ps;
      s.prem = std::make_unique<qos::PremArbiter>(chip.sim(), pc);
      axi::TxnGate* gate = s.prem.get();
      if (p.scheme == Scheme::kPremCmri) {
        qos::CmriConfig cc;
        cc.injection_budget_bytes = p.cmri_injection_bytes;
        s.cmri = std::make_unique<qos::CmriInjector>(*s.prem, cc);
        gate = s.cmri.get();
      }
      for (std::size_t i = 0; i < cfg.accel_ports; ++i) {
        // Gates see their own grants through on_grant; no observer needed.
        chip.accel_port(i).add_gate(*gate);
      }
      break;
    }
  }
  return s;
}

/// Runs the scenario until the critical core halts (or the deadline).
/// Returns the critical iteration mean in ps (0 when no critical core).
inline double run_critical(Scenario& s, sim::TimePs deadline) {
  if (s.critical == nullptr) {
    s.chip->run_for(deadline);
    maybe_dump_env_blame(*s.chip);
    return 0.0;
  }
  const bool ok = s.chip->run_until_cores_finished(deadline);
  if (!ok) {
    std::fprintf(stderr,
                 "WARN: critical task missed the simulation deadline\n");
  }
  maybe_dump_env_blame(*s.chip);
  return s.critical->stats().iteration_ps.mean();
}

}  // namespace fgqos::bench
