/// \file bench_exp12_adaptive.cpp
/// \brief EXP12 — extension: closed-loop latency-target control vs.
///        static budgets under a time-varying critical workload.
///
/// The critical CPU task alternates memory-heavy phases (dependent random
/// loads) with compute phases (L1-resident). A static best-effort budget
/// must be provisioned for the heavy phase and therefore wastes bandwidth
/// during compute phases; a loose static budget recovers the bandwidth
/// but breaks the heavy-phase latency. The AdaptiveQosController tracks
/// the phase changes automatically through the tightly-coupled latency
/// monitor: back-off when the critical window-max exceeds the target,
/// additive growth otherwise.
///
/// Reported per policy: critical read p99/p999, best-effort bandwidth,
/// and the controller's rate trajectory summary.
#include <cstdio>

#include "common.hpp"
#include "qos/adaptive_controller.hpp"
#include "qos/latency_monitor.hpp"

using namespace fgqos;
using namespace fgqos::bench;

namespace {

/// Alternates K iterations of a heavy kernel with K of a light kernel.
class AlternatingKernel final : public cpu::Kernel {
 public:
  AlternatingKernel(std::unique_ptr<cpu::Kernel> heavy,
                    std::unique_ptr<cpu::Kernel> light,
                    std::uint64_t iters_per_phase)
      : heavy_(std::move(heavy)),
        light_(std::move(light)),
        per_phase_(iters_per_phase) {}

  cpu::KernelStep next(sim::Xoshiro256& rng) override {
    cpu::Kernel& k = heavy_phase_ ? *heavy_ : *light_;
    cpu::KernelStep s = k.next(rng);
    if (s.end_of_iteration) {
      ++done_;
      if (done_ >= per_phase_) {
        done_ = 0;
        heavy_phase_ = !heavy_phase_;
      }
    }
    return s;
  }

  void reset() override {
    heavy_->reset();
    light_->reset();
    heavy_phase_ = true;
    done_ = 0;
  }
  [[nodiscard]] const std::string& name() const override { return name_; }

 private:
  std::string name_ = "alternating";
  std::unique_ptr<cpu::Kernel> heavy_;
  std::unique_ptr<cpu::Kernel> light_;
  std::uint64_t per_phase_;
  bool heavy_phase_ = true;
  std::uint64_t done_ = 0;
};

struct Row {
  std::string policy;
  double p99_ns;
  double p999_ns;
  double be_gbps;
  std::string note;
};

enum class Policy { kStaticTight, kStaticLoose, kAdaptive };

Row run(Policy policy) {
  soc::SocConfig cfg;
  soc::Soc chip(cfg);

  // Critical: alternating heavy/light phases.
  wl::PointerChaseConfig heavy;
  heavy.accesses_per_iteration = 2048;
  wl::ComputeBoundConfig light;
  light.accesses_per_iteration = 2048;
  light.compute_cycles_per_access = 48;
  cpu::CoreConfig cc;
  cc.name = "critical";
  chip.add_core(cc, std::make_unique<AlternatingKernel>(
                        wl::make_pointer_chase(heavy),
                        wl::make_compute_bound(light), 8));

  qos::LatencyMonitorConfig lc;
  lc.window_ps = 100 * sim::kPsPerUs;
  qos::LatencyMonitor mon(chip.sim(), lc);
  chip.cpu_port().add_observer(mon);

  std::vector<qos::Regulator*> regs;
  for (std::size_t i = 0; i < 3; ++i) {
    wl::TrafficGenConfig tg;
    tg.name = "agg" + std::to_string(i);
    tg.base = 0x8000'0000 + (static_cast<axi::Addr>(i) << 26);
    tg.seed = 60 + i;
    chip.add_traffic_gen(i, tg);
    regs.push_back(chip.qos_block(1 + i).regulator.get());
  }

  std::unique_ptr<qos::AdaptiveQosController> ctrl;
  Row r;
  switch (policy) {
    case Policy::kStaticTight:
      r.policy = "static_tight";
      r.note = "400 MB/s/master";
      for (auto* reg : regs) {
        reg->set_rate(400e6);
        reg->set_enabled(true);
      }
      break;
    case Policy::kStaticLoose:
      r.policy = "static_loose";
      r.note = "1.6 GB/s/master";
      for (auto* reg : regs) {
        reg->set_rate(1.6e9);
        reg->set_enabled(true);
      }
      break;
    case Policy::kAdaptive: {
      r.policy = "adaptive";
      qos::AdaptiveControllerConfig ac;
      ac.latency_target_ps = 650 * sim::kPsPerNs;
      ac.period_ps = lc.window_ps;
      ac.increase_bps = 300e6;
      ctrl = std::make_unique<qos::AdaptiveQosController>(chip.sim(), ac,
                                                          mon, regs);
      ctrl->start();
      break;
    }
  }

  chip.run_for(80 * sim::kPsPerMs);
  const auto& lat = chip.cpu_port().stats().read_latency;
  r.p99_ns = static_cast<double>(lat.p99()) / 1e3;
  r.p999_ns = static_cast<double>(lat.p999()) / 1e3;
  double be = 0;
  for (std::size_t i = 0; i < 3; ++i) {
    be += sim::bytes_per_second(
        chip.accel_port(i).stats().bytes_granted.value(), chip.now());
  }
  r.be_gbps = be / 1e9;
  if (ctrl) {
    char buf[96];
    std::snprintf(buf, sizeof buf, "%llu dec / %llu inc, final %s",
                  static_cast<unsigned long long>(ctrl->stats().decreases),
                  static_cast<unsigned long long>(ctrl->stats().increases),
                  util::format_bandwidth(ctrl->stats().current_bps).c_str());
    r.note = buf;
  }
  return r;
}

}  // namespace

int main() {
  std::printf(
      "EXP12 (extension): latency-target adaptive control vs. static "
      "budgets\n  critical task alternates memory-heavy and compute "
      "phases; 3 hungry aggressors\n\n");
  util::Table table(
      {"policy", "read_p99_ns", "read_p99.9_ns", "best_effort_GB/s", "note"});
  for (const Policy p :
       {Policy::kStaticTight, Policy::kStaticLoose, Policy::kAdaptive}) {
    const Row r = run(p);
    table.add_row({r.policy, util::format_fixed(r.p99_ns, 0),
                   util::format_fixed(r.p999_ns, 0),
                   util::format_fixed(r.be_gbps, 2), r.note});
  }
  table.print();
  table.save_csv("exp12_adaptive.csv");
  std::printf(
      "\nadaptive control should match static_tight's tail latency while "
      "recovering\nmost of static_loose's best-effort bandwidth.\n"
      "CSV written to exp12_adaptive.csv\n");
  return 0;
}
