/// \file fgqos_sweep.cpp
/// \brief Parameter-sweep driver: vary one knob, collect the outcome CSV.
///
/// Sweeps one of {budget, window, aggressors, isr} for a fixed scenario
/// (latency-critical CPU task + N regulated aggressors) and writes one
/// CSV row per point: knob value, critical mean/p99 iteration time,
/// critical read p99 and aggregate aggressor bandwidth. The building
/// block for custom plots beyond the canned bench_exp* binaries.
///
/// Points are independent simulations, so the sweep fans out over the
/// exec::ScenarioRunner: `--jobs N` (or FGQOS_JOBS) runs N points
/// concurrently, `--jobs 0` uses every hardware thread. Each point's RNG
/// seeds derive only from `--seed` and the point's position, and rows
/// are merged in submission order, so the CSV and the per-point metrics
/// snapshots are byte-identical whatever the job count (the wall-clock
/// `exec.*` metrics are the one place host timing shows up).
///
/// Examples:
///   fgqos_sweep --knob budget --values 100,200,400,800,1600 --csv b.csv
///   fgqos_sweep --knob window --values 0.2,1,10,100,1000 --scheme hw
///   fgqos_sweep --knob aggressors --values 0,1,2,3,4 --scheme none
///   fgqos_sweep --knob isr --values 1,3,10,50 --scheme sw --jobs 4
#include <algorithm>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <sstream>

#include <map>

#include "dram/address_mapper.hpp"
#include "fault/fault_plan.hpp"
#include "fault/injector.hpp"
#include "fgqos.hpp"
#include "qos/bank_regulator.hpp"
#include "qos/envelope.hpp"
#include "qos/qos_manager.hpp"
#include "telemetry/manifest.hpp"
#include "util/cli.hpp"
#include "util/config_error.hpp"
#include "util/csv.hpp"
#include "util/string_util.hpp"
#include "workload/serving.hpp"

using namespace fgqos;

namespace {

/// Signal handler target: request_stop() is one atomic store, so running
/// jobs wind down cooperatively and unclaimed points are skipped; the
/// merged CSV is still written from whatever completed.
exec::ScenarioRunner* g_runner = nullptr;

extern "C" void on_signal(int) {
  if (g_runner != nullptr) {
    g_runner->request_stop();
  }
}

struct Outcome {
  double iter_mean_us = 0;
  double iter_p99_us = 0;
  double read_p99_ns = 0;
  double aggr_gbps = 0;
  /// Pre-rendered blame-matrix CSV rows ("<point>,scope,..."), empty when
  /// attribution is off. Merged in submission order by main(), so the
  /// combined file is byte-identical for any job count.
  std::string blame_rows;
  /// Pre-rendered time-series CSV rows ("<point>,series,..."), merged the
  /// same way.
  std::string timeseries_rows;
  /// Pre-rendered per-tenant serving CSV rows ("<point>,tenant,..."),
  /// merged the same way.
  std::string serving_rows;
  /// Reservations refused by certified-envelope admission control in this
  /// point (jobs never print; main() warns after the deterministic merge).
  std::size_t admission_rejections = 0;
  /// Per-series whole-run histograms, for the sweep-level merged summary
  /// (folded in submission order, so the summary is deterministic for any
  /// job count).
  std::vector<std::pair<std::string, sim::Histogram>> series_summaries;
  /// Host-profile snapshot of this point (--profile); merged in submission
  /// order by main() into one sweep-level profile, so the merged export is
  /// identical for any job count.
  telemetry::ProfileSnapshot profile;
  bool has_profile = false;
};

struct SweepPoint {
  std::string scheme = "hw";
  std::size_t aggressors = 3;
  double budget_mbps = 400;
  double window_us = 1;
  double isr_us = 3;
  std::uint64_t iterations = 20;
  /// Per-point base for the aggressor RNG streams; filled from the job
  /// context so it depends only on --seed and the point index.
  std::uint64_t seed = 0;
  /// Per-point telemetry outputs (empty = off); already suffixed with the
  /// knob value so sweep points do not overwrite each other.
  std::string trace_path;
  std::string trace_filter;
  std::string metrics_json;
  std::string metrics_csv;
  /// Interference attribution (off unless requested).
  bool blame = false;
  double blame_window_us = 100;
  std::string blame_json;   ///< per-point file, already suffixed
  std::string point_label;  ///< knob value, used as the blame-row prefix
  /// Windowed time-series capture (off unless requested).
  bool timeseries = false;
  bool merge_timeseries_csv = false;  ///< render rows for the merged CSV
  std::string timeseries_json;        ///< per-point file, already suffixed
  std::string timeseries_filter;
  double timeseries_window_us = 100;
  /// Per-point decision-journal JSONL (empty = off), already suffixed.
  std::string journal_path;
  /// Sweep knob name, recorded in the per-point manifest scenario.
  std::string knob;
  /// Shared fault plan (nullptr = no faults). Each point arms its own
  /// injector from its derived seed, so fault streams are reproducible
  /// per point and independent of the job count.
  const fault::FaultPlan* faults = nullptr;
  /// Shared serving scenario (nullptr = none). Each point instantiates
  /// its tenants with serving_tenant_seed(spec.seed, point seed, index),
  /// so op buffers are byte-identical for any job count.
  const wl::ServingSpec* serving = nullptr;
  bool merge_serving_csv = false;  ///< render rows for the merged CSV
  /// DRAM mapping-policy override ("" = platform default).
  std::string mapping;
  /// Publish per-bank telemetry (dram.bank.*, blame bank dimension).
  bool bank_telemetry = false;
  /// Aggressor working-set size per generator.
  std::uint64_t aggressor_footprint_bytes = 16ull << 20;
  /// Shared per-bank budget plan (nullptr = no per-bank regulation).
  /// Points only read it, so one parsed spec serves every job.
  const qos::BankBudgetSpec* bank_budgets = nullptr;
  /// Shared certified envelope (nullptr = direct regulator programming).
  /// When set, hw-scheme budgets are admitted through a QosManager that
  /// enforces the certified bounds; rejected ports run best-effort.
  const qos::CertifiedEnvelope* envelope = nullptr;
  /// Attach the host profiler to this point's platform.
  bool profile = false;
};

/// "out.json" + budget=400 -> "out.budget400.json".
std::string point_path(const std::string& path, const std::string& knob,
                       const std::string& value) {
  if (path.empty()) {
    return path;
  }
  const std::string tag = "." + knob + value;
  const std::size_t dot = path.rfind('.');
  if (dot == std::string::npos || dot == 0) {
    return path + tag;
  }
  return path.substr(0, dot) + tag + path.substr(dot);
}

Outcome run_point(const SweepPoint& p) {
  soc::SocConfig cfg;
  // Must land before the Soc exists: the controller's address mapper and
  // the telemetry gating are fixed at construction.
  if (!p.mapping.empty()) {
    cfg.dram.mapping = dram::mapping_policy_from_name(p.mapping);
  }
  if (p.bank_telemetry) {
    cfg.bank_telemetry = true;
  }
  cfg.profile = p.profile;
  soc::Soc chip(cfg);
  cpu::CoreConfig cc;
  cc.name = "critical";
  cc.max_iterations = p.iterations;
  wl::PointerChaseConfig pc;
  chip.add_core(cc, wl::make_pointer_chase(pc));
  std::unique_ptr<qos::SoftMemguard> mg;
  if (p.scheme == "sw") {
    qos::SoftMemguardConfig mc;
    mc.isr_latency_ps = static_cast<sim::TimePs>(p.isr_us * 1e6);
    mg = std::make_unique<qos::SoftMemguard>(chip.sim(), mc);
  }
  std::vector<std::size_t> managed_ports;
  for (std::size_t i = 0; i < p.aggressors; ++i) {
    wl::TrafficGenConfig tg;
    tg.name = "agg" + std::to_string(i);
    tg.base = 0x8000'0000 + (static_cast<axi::Addr>(i) << 26);
    tg.footprint_bytes = p.aggressor_footprint_bytes;
    tg.seed = p.seed + i;
    const std::size_t port = i % cfg.accel_ports;
    chip.add_traffic_gen(port, tg);
    if (p.scheme == "hw") {
      qos::Regulator& reg = *chip.qos_block(1 + port).regulator;
      reg.set_window(static_cast<sim::TimePs>(p.window_us * 1e6));
      if (p.envelope != nullptr) {
        // Budgets go through certified admission below; rate programming
        // lands on exactly the same registers, so an all-accepted sweep
        // is byte-identical to the direct path.
        if (std::find(managed_ports.begin(), managed_ports.end(), port) ==
            managed_ports.end()) {
          managed_ports.push_back(port);
        }
      } else {
        reg.set_rate(p.budget_mbps * 1e6);
        reg.set_enabled(true);
      }
    } else if (p.scheme == "sw") {
      axi::MasterPort& mp = chip.accel_port(port);
      mg->set_rate(mp.id(), p.budget_mbps * 1e6);
      mp.add_gate(*mg);
    }
  }
  if (p.bank_budgets != nullptr) {
    chip.apply_bank_budgets(*p.bank_budgets);
  }
  if (p.serving != nullptr) {
    chip.add_serving(*p.serving, p.seed);
  }
  if (p.faults != nullptr) {
    fault::FaultInjector& inj = chip.arm_faults(*p.faults, p.seed);
    if (mg != nullptr) {
      inj.wire_memguard(*mg);
    }
  }
  if (!p.trace_path.empty()) {
    chip.open_trace(p.trace_path, p.trace_filter);
    if (mg != nullptr) {
      mg->set_trace(chip.telemetry().trace());
    }
  } else if (!p.metrics_json.empty() || !p.metrics_csv.empty()) {
    chip.enable_lifecycle_metrics();
  }
  if (p.blame) {
    chip.enable_attribution(
        static_cast<sim::TimePs>(p.blame_window_us * 1e6));
  }
  if (p.timeseries) {
    telemetry::TimeSeriesConfig tc;
    tc.window_ps = static_cast<sim::TimePs>(p.timeseries_window_us * 1e6);
    tc.filter = p.timeseries_filter;
    chip.enable_timeseries(std::move(tc));
  }
  if (!p.journal_path.empty()) {
    telemetry::DecisionJournal& journal = chip.enable_journal();
    if (mg != nullptr) {
      mg->set_journal(&journal);
    }
  }
  std::size_t admission_rejections = 0;
  std::unique_ptr<qos::QosManager> manager;
  if (p.envelope != nullptr && p.scheme == "hw") {
    qos::QosManagerConfig mc;
    mc.capacity_bps = p.envelope->capacity_bps;
    mc.max_reservable_frac = p.envelope->max_reservable_frac;
    manager = std::make_unique<qos::QosManager>(chip.sim(), mc);
    manager->set_envelope(p.envelope);
    manager->set_metrics(&chip.telemetry().metrics());
    if (telemetry::DecisionJournal* j = chip.journal()) {
      manager->set_journal(j);
    }
    for (const std::size_t port : managed_ports) {
      axi::MasterPort& mp = chip.accel_port(port);
      manager->add_port(mp.name(), mp.id(), chip.regfile(1 + port));
      if (!manager->reserve(mp.id(), p.budget_mbps * 1e6)) {
        ++admission_rejections;
      }
    }
  }
  // Per-point provenance: depends only on the scenario and the derived
  // seed, never on job fan-out, so exports stay byte-identical across
  // --jobs.
  telemetry::RunManifest manifest;
  manifest.tool = "fgqos_sweep";
  manifest.seed = p.seed;
  manifest.build = telemetry::RunManifest::build_flavor();
  if (p.profile) {
    manifest.profile_tag_table_version = telemetry::kProfilerTagTableVersion;
  }
  {
    std::ostringstream sc;
    sc << "knob=" << p.knob << " value=" << p.point_label
       << " scheme=" << p.scheme << " aggressors=" << p.aggressors
       << " budget_mbps=" << p.budget_mbps << " window_us=" << p.window_us
       << " isr_us=" << p.isr_us << " iterations=" << p.iterations;
    // Conditional tokens keep manifests of pre-existing scenarios
    // byte-identical (golden compatibility).
    if (!p.mapping.empty()) {
      sc << " mapping=" << p.mapping;
    }
    if (p.bank_telemetry) {
      sc << " bank_telemetry=1";
    }
    if (p.aggressor_footprint_bytes != (16ull << 20)) {
      sc << " aggressor_footprint_bytes=" << p.aggressor_footprint_bytes;
    }
    manifest.scenario = sc.str();
  }
  if (p.bank_budgets != nullptr) {
    manifest.scenario +=
        " bank_budgets=" + telemetry::fnv1a_hex(p.bank_budgets->to_json());
  }
  if (p.faults != nullptr) {
    manifest.fault_spec_hash = telemetry::fnv1a_hex(p.faults->to_json());
  }
  if (p.serving != nullptr) {
    manifest.scenario +=
        " serving=" + telemetry::fnv1a_hex(p.serving->to_json());
  }
  if (p.envelope != nullptr) {
    manifest.scenario +=
        " envelope=" + telemetry::fnv1a_hex(p.envelope->to_json());
  }
  chip.run_until_cores_finished(2000 * sim::kPsPerMs);
  if (p.serving != nullptr) {
    // Cover the whole arrival horizon, then give in-flight requests a
    // bounded drain (sim-time based, so deterministic for any --jobs).
    if (chip.now() < p.serving->duration_ps) {
      chip.run_until(p.serving->duration_ps);
    }
    const sim::TimePs drain_deadline = chip.now() + 10 * sim::kPsPerMs;
    while (chip.now() < drain_deadline) {
      bool all_drained = true;
      for (std::size_t i = 0; i < chip.serving_tenant_count(); ++i) {
        all_drained = all_drained && chip.serving_tenant(i).drained();
      }
      if (all_drained) {
        break;
      }
      chip.run_for(100 * sim::kPsPerUs);
    }
  }
  if (mg != nullptr) {
    mg->flush_trace(chip.now());
  }
  chip.finish_telemetry();
  if (!p.metrics_json.empty() || !p.metrics_csv.empty()) {
    telemetry::MetricsRegistry& reg = chip.collect_metrics();
    // Host wall-clock self-profiling would make otherwise identical
    // points differ between runs; drop it so snapshots stay reproducible.
    // The profile namespace is host cycles too: the profile JSON/folded
    // exports carry that data instead.
    reg.erase_prefix("sim.wall");
    reg.erase_prefix("profile.");
    if (!p.metrics_json.empty()) {
      reg.save_json(p.metrics_json, chip.now(), &manifest);
    }
    if (!p.metrics_csv.empty()) {
      reg.save_csv(p.metrics_csv, &manifest);
    }
  }
  Outcome o;
  o.admission_rejections = admission_rejections;
  if (p.profile) {
    // collect_metrics samples the slab arenas into the profiler before
    // the snapshot is taken.
    chip.collect_metrics();
    o.profile = chip.profiler()->snapshot();
    o.has_profile = true;
  }
  if (p.timeseries) {
    telemetry::TimeSeriesRecorder* ts = chip.timeseries();
    if (!p.timeseries_json.empty()) {
      ts->save_json(p.timeseries_json, &manifest);
    }
    if (p.merge_timeseries_csv) {
      std::ostringstream rows;
      ts->write_csv(rows, /*header=*/false,
                    /*row_prefix=*/p.point_label + ",");
      o.timeseries_rows = rows.str();
    }
    for (std::size_t i = 0; i < ts->series_count(); ++i) {
      o.series_summaries.emplace_back(ts->series_names()[i], ts->summary(i));
    }
  }
  if (!p.journal_path.empty()) {
    chip.journal()->save_jsonl(p.journal_path, &manifest);
  }
  if (p.blame) {
    telemetry::AttributionEngine* attr = chip.attribution();
    if (!p.blame_json.empty()) {
      attr->save_json(p.blame_json);
    }
    std::ostringstream rows;
    attr->write_csv(rows, /*header=*/false, /*row_prefix=*/p.point_label + ",");
    o.blame_rows = rows.str();
  }
  if (p.serving != nullptr && p.merge_serving_csv) {
    // Integer counts and integer ps-percentiles; the two rates and the
    // attainment are fixed-point renders of deterministic doubles — the
    // merged CSV must stay byte-identical across --jobs.
    std::ostringstream rows;
    for (std::size_t i = 0; i < chip.serving_tenant_count(); ++i) {
      wl::ServingTenant& t = chip.serving_tenant(i);
      const auto& ss = t.stats();
      rows << p.point_label << ',' << t.spec().name << ','
           << wl::arrival_kind_name(t.spec().arrival) << ',' << ss.generated
           << ',' << ss.completed << ',' << ss.dropped << ',' << ss.slo_met
           << ',' << util::format_fixed(t.offered_qps(), 2) << ','
           << util::format_fixed(t.completed_qps(), 2) << ','
           << t.latency().p50() << ',' << t.latency().p99() << ','
           << t.latency().p999() << ','
           << wl::attainment_pct_cell(t, 4) << '\n';
    }
    o.serving_rows = rows.str();
  }
  const auto& h = chip.cluster().core(0).stats().iteration_ps;
  o.iter_mean_us = h.mean() / 1e6;
  o.iter_p99_us = static_cast<double>(h.p99()) / 1e6;
  o.read_p99_ns =
      static_cast<double>(chip.cpu_port().stats().read_latency.p99()) / 1e3;
  double aggr = 0;
  for (std::size_t i = 0; i < std::min(p.aggressors, cfg.accel_ports); ++i) {
    aggr += sim::bytes_per_second(
        chip.accel_port(i).stats().bytes_granted.value(), chip.now());
  }
  o.aggr_gbps = aggr / 1e9;
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    util::ArgParser args(argc, argv);
    if (args.has("help")) {
      std::printf(
          "fgqos_sweep --knob budget|window|aggressors|isr "
          "--values v1,v2,... [--scheme hw|sw|none] [--aggressors N]\n"
          "            [--budget-mbps B] [--window-us W] [--isr-us I]\n"
          "            [--iterations N] [--csv FILE] [--jobs N] [--seed S]\n"
          "            [--trace FILE] [--trace-filter CATS] "
          "[--metrics-json FILE] [--metrics-csv FILE]\n"
          "            [--exec-metrics-json FILE]\n"
          "            [--blame-csv FILE] [--blame-json FILE] "
          "[--blame-window-us W]\n"
          "            [--timeseries-csv FILE] [--timeseries-json FILE]\n"
          "            [--timeseries-filter GLOBS] "
          "[--timeseries-window-us W]\n"
          "            [--journal FILE]\n"
          "            [--fault-spec FILE] [--job-timeout-s T] "
          "[--job-retries N]\n"
          "            [--serving-spec FILE] [--serving-csv FILE]\n"
          "            [--mapping row_bank_col|bank_interleaved|"
          "bank_partitioned]\n"
          "            [--bank-budget-spec FILE] [--bank-telemetry]\n"
          "            [--envelope-spec FILE]\n"
          "            [--aggressor-footprint-mb MB]\n"
          "            [--profile] [--profile-json FILE] "
          "[--profile-folded FILE]\n"
          "--serving-spec instantiates the same JSON request-serving\n"
          "scenario (docs/SERVING.md) in every point, tenant op buffers\n"
          "seeded per point; --serving-csv writes ONE merged per-tenant\n"
          "CSV with a leading `point` column, byte-identical for any job\n"
          "count.\n"
          "--fault-spec arms the same JSON fault plan (docs/FAULTS.md) in\n"
          "every point, seeded per point, so faulty sweeps stay\n"
          "deterministic for any job count. --job-timeout-s bounds each\n"
          "point's wall-clock time; timed-out or crashed points are\n"
          "retried --job-retries times with fresh seeds, and the CSV is\n"
          "still written from the points that succeeded (failed indices\n"
          "are reported). SIGINT/SIGTERM skip remaining points and flush\n"
          "partial results.\n"
          "--envelope-spec admits every point's hw-scheme budgets through a\n"
          "QosManager backed by the certified worst-case envelope\n"
          "(docs/CERTIFICATION.md); rejected reservations leave that port\n"
          "best-effort and are warned about after the merge. A sweep where\n"
          "every reservation is accepted is byte-identical to the direct\n"
          "programming path (requires --scheme hw).\n"
          "--bank-budget-spec arms per-bank token-bucket regulators from a\n"
          "JSON budget plan in every point; --mapping overrides the DRAM\n"
          "address-mapping policy, --bank-telemetry publishes dram.bank.*\n"
          "metrics/series and the blame bank dimension, and\n"
          "--aggressor-footprint-mb sizes each aggressor's working set\n"
          "(default 16).\n"
          "--blame-csv writes ONE merged interference-attribution CSV with a\n"
          "leading `point` column (the knob value); --blame-json writes one\n"
          "JSON file per point (suffixed like the other telemetry files).\n"
          "--timeseries-csv writes ONE merged windowed time-series CSV with\n"
          "a leading `point` column; --timeseries-json and --journal write\n"
          "one file per point (suffixed). A merged percentile summary per\n"
          "series (per-point histograms folded in point order) is printed\n"
          "after the sweep.\n"
          "--profile attaches the host-side hot-path profiler to every\n"
          "point; per-point snapshots are merged in submission order, so\n"
          "the ONE merged profile (--profile-json / --profile-folded) is\n"
          "identical for any job count (cycle values still vary run to\n"
          "run — they are host time).\n"
          "--jobs N runs N sweep points concurrently (0 = all hardware\n"
          "threads; FGQOS_JOBS sets the default); outcomes are merged in\n"
          "point order, so CSV and metrics files are byte-identical for\n"
          "any job count.\n"
          "Telemetry files get a per-point suffix: out.json -> "
          "out.budget400.json\n");
      return 0;
    }
    const std::string knob = args.get("knob", "budget");
    const std::string values_arg = args.get("values", "100,200,400,800,1600");
    SweepPoint base;
    base.scheme = args.get("scheme", "hw");
    base.aggressors =
        static_cast<std::size_t>(args.get_int("aggressors", 3));
    base.budget_mbps = args.get_double("budget-mbps", 400);
    base.window_us = args.get_double("window-us", 1);
    base.isr_us = args.get_double("isr-us", 3);
    base.iterations =
        static_cast<std::uint64_t>(args.get_int("iterations", 20));
    const std::string csv = args.get("csv", "");
    const std::string trace_path = args.get("trace", "");
    const std::string trace_filter = args.get("trace-filter", "");
    const std::string metrics_json = args.get("metrics-json", "");
    const std::string metrics_csv = args.get("metrics-csv", "");
    const std::string exec_metrics_json = args.get("exec-metrics-json", "");
    const std::string blame_csv = args.get("blame-csv", "");
    const std::string blame_json = args.get("blame-json", "");
    const double blame_window_us = args.get_double("blame-window-us", 100);
    const std::string timeseries_csv = args.get("timeseries-csv", "");
    const std::string timeseries_json = args.get("timeseries-json", "");
    const std::string timeseries_filter = args.get("timeseries-filter", "");
    const double timeseries_window_us =
        args.get_double("timeseries-window-us", 100);
    const std::string journal_path = args.get("journal", "");
    const std::string profile_json = args.get("profile-json", "");
    const std::string profile_folded = args.get("profile-folded", "");
    const bool profile_on = args.has("profile") || !profile_json.empty() ||
                            !profile_folded.empty();
    const bool want_timeseries =
        !timeseries_csv.empty() || !timeseries_json.empty();
    const std::string fault_spec = args.get("fault-spec", "");
    const std::string serving_spec_path = args.get("serving-spec", "");
    const std::string serving_csv = args.get("serving-csv", "");
    const std::string mapping = args.get("mapping", "");
    const std::string bank_spec_path = args.get("bank-budget-spec", "");
    const std::string envelope_spec_path = args.get("envelope-spec", "");
    const bool bank_telemetry = args.has("bank-telemetry");
    const double aggressor_footprint_mb =
        args.get_double("aggressor-footprint-mb", 16);
    if (aggressor_footprint_mb <= 0) {
      throw ConfigError("--aggressor-footprint-mb must be positive");
    }
    if (!mapping.empty()) {
      // Fail fast on a bad name here, before the job fan-out.
      static_cast<void>(dram::mapping_policy_from_name(mapping));
    }
    exec::ExecConfig ec;
    ec.jobs = static_cast<std::size_t>(args.get_int(
        "jobs", static_cast<std::int64_t>(exec::jobs_from_env(1))));
    ec.base_seed = static_cast<std::uint64_t>(args.get_int("seed", 100));
    ec.job_timeout_s = args.get_double("job-timeout-s", 0);
    ec.max_retries =
        static_cast<std::uint32_t>(args.get_int("job-retries", 0));
    if (trace_path.empty() && !trace_filter.empty()) {
      throw ConfigError("--trace-filter requires --trace");
    }
    if (!want_timeseries &&
        (!timeseries_filter.empty() || args.has("timeseries-window-us"))) {
      throw ConfigError(
          "--timeseries-filter/--timeseries-window-us require "
          "--timeseries-csv or --timeseries-json");
    }
    if (!serving_csv.empty() && serving_spec_path.empty()) {
      throw ConfigError("--serving-csv requires --serving-spec");
    }
    if (!envelope_spec_path.empty() && base.scheme != "hw") {
      throw ConfigError("--envelope-spec requires --scheme hw");
    }
    for (const auto& k : args.unused_keys()) {
      throw ConfigError("unknown option --" + k + " (see --help)");
    }

    fault::FaultPlan fault_plan;
    if (!fault_spec.empty()) {
      fault_plan = fault::FaultPlan::from_file(fault_spec);
    }
    wl::ServingSpec serving_spec;
    if (!serving_spec_path.empty()) {
      serving_spec = wl::ServingSpec::from_file(serving_spec_path);
    }
    qos::BankBudgetSpec bank_budget_spec;
    if (!bank_spec_path.empty()) {
      bank_budget_spec = qos::BankBudgetSpec::load(bank_spec_path);
    }
    qos::CertifiedEnvelope envelope_spec;
    if (!envelope_spec_path.empty()) {
      envelope_spec = qos::CertifiedEnvelope::from_file(envelope_spec_path);
    }
    base.mapping = mapping;
    base.bank_telemetry = bank_telemetry;
    base.aggressor_footprint_bytes =
        static_cast<std::uint64_t>(aggressor_footprint_mb * (1 << 20));

    // Materialise every point first; jobs read only their own point.
    std::vector<std::string> values = util::split(values_arg, ',');
    std::vector<SweepPoint> points;
    points.reserve(values.size());
    for (const std::string& v : values) {
      SweepPoint p = base;
      const double value = std::stod(v);
      if (knob == "budget") {
        p.budget_mbps = value;
      } else if (knob == "window") {
        p.window_us = value;
      } else if (knob == "aggressors") {
        p.aggressors = static_cast<std::size_t>(value);
      } else if (knob == "isr") {
        p.isr_us = value;
      } else {
        throw ConfigError("unknown knob '" + knob + "'");
      }
      p.trace_path = point_path(trace_path, knob, v);
      p.trace_filter = trace_filter;
      p.metrics_json = point_path(metrics_json, knob, v);
      p.metrics_csv = point_path(metrics_csv, knob, v);
      p.blame = !blame_csv.empty() || !blame_json.empty();
      p.blame_window_us = blame_window_us;
      p.blame_json = point_path(blame_json, knob, v);
      p.point_label = v;
      p.timeseries = want_timeseries;
      p.merge_timeseries_csv = !timeseries_csv.empty();
      p.timeseries_json = point_path(timeseries_json, knob, v);
      p.timeseries_filter = timeseries_filter;
      p.timeseries_window_us = timeseries_window_us;
      p.journal_path = point_path(journal_path, knob, v);
      p.knob = knob;
      p.faults = fault_spec.empty() ? nullptr : &fault_plan;
      p.serving = serving_spec_path.empty() ? nullptr : &serving_spec;
      p.merge_serving_csv = !serving_csv.empty();
      p.bank_budgets = bank_spec_path.empty() ? nullptr : &bank_budget_spec;
      p.envelope = envelope_spec_path.empty() ? nullptr : &envelope_spec;
      p.profile = profile_on;
      points.push_back(std::move(p));
    }

    exec::ScenarioRunner runner(ec);
    g_runner = &runner;
    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);
    std::vector<Outcome> outcomes(points.size());
    std::vector<exec::ScenarioRunner::JobFn> batch;
    batch.reserve(points.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
      batch.push_back([&outcomes, &points, &values,
                       &knob](const exec::JobContext& ctx) {
        SweepPoint p = points[ctx.index];
        p.seed = ctx.seed;
        outcomes[ctx.index] = run_point(p);
        std::printf("%s=%s done\n", knob.c_str(),
                    values[ctx.index].c_str());
      });
    }
    const exec::RunReport report = runner.run_report(std::move(batch));
    g_runner = nullptr;

    util::Table table({knob, "iter_mean_us", "iter_p99_us", "read_p99_ns",
                       "aggressor_GB/s"});
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
      if (report.jobs[i].status != exec::JobStatus::kOk) {
        continue;  // partial results: only completed points become rows
      }
      const Outcome& o = outcomes[i];
      table.add_row({values[i], util::format_fixed(o.iter_mean_us, 1),
                     util::format_fixed(o.iter_p99_us, 1),
                     util::format_fixed(o.read_p99_ns, 0),
                     util::format_fixed(o.aggr_gbps, 2)});
    }
    std::printf("\n");
    table.print();
    if (!csv.empty()) {
      table.save_csv(csv);
      std::printf("\nCSV written to %s\n", csv.c_str());
    }
    if (!envelope_spec_path.empty()) {
      std::size_t rejected = 0;
      for (std::size_t i = 0; i < outcomes.size(); ++i) {
        if (report.jobs[i].status == exec::JobStatus::kOk) {
          rejected += outcomes[i].admission_rejections;
        }
      }
      if (rejected > 0) {
        std::printf("\nWARNING: %zu reservation(s) rejected against the "
                    "certified envelope; those ports ran best-effort\n",
                    rejected);
      }
    }
    if (!blame_csv.empty()) {
      std::ofstream blame(blame_csv);
      if (!blame) {
        throw ConfigError("cannot open blame CSV '" + blame_csv + "'");
      }
      blame << "point,scope,window_start_ps,window_end_ps,victim,aggressor,"
               "cause,stall_ps,bytes\n";
      for (const Outcome& o : outcomes) {
        blame << o.blame_rows;
      }
      std::printf("blame CSV written to %s\n", blame_csv.c_str());
    }
    if (!timeseries_csv.empty()) {
      std::ofstream ts(timeseries_csv);
      if (!ts) {
        throw ConfigError("cannot open time-series CSV '" + timeseries_csv +
                          "'");
      }
      // Sweep-level manifest: the knob and its values ARE the scenario;
      // independent of --jobs, so the merged file stays byte-identical.
      telemetry::RunManifest manifest;
      manifest.tool = "fgqos_sweep";
      manifest.seed = ec.base_seed;
      manifest.build = telemetry::RunManifest::build_flavor();
      manifest.scenario = "knob=" + knob + " values=" + values_arg +
                          " scheme=" + base.scheme;
      if (!mapping.empty()) {
        manifest.scenario += " mapping=" + mapping;
      }
      if (!bank_spec_path.empty()) {
        manifest.scenario += " bank_budgets=" +
                             telemetry::fnv1a_hex(bank_budget_spec.to_json());
      }
      if (!fault_spec.empty()) {
        manifest.fault_spec_hash = telemetry::fnv1a_hex(fault_plan.to_json());
      }
      ts << manifest.to_csv_comment();
      ts << "point,series,window,start_ps,end_ps,value\n";
      for (const Outcome& o : outcomes) {
        ts << o.timeseries_rows;
      }
      std::printf("time-series CSV written to %s\n", timeseries_csv.c_str());
    }
    if (!serving_csv.empty()) {
      std::ofstream sv(serving_csv);
      if (!sv) {
        throw ConfigError("cannot open serving CSV '" + serving_csv + "'");
      }
      telemetry::RunManifest manifest;
      manifest.tool = "fgqos_sweep";
      manifest.seed = ec.base_seed;
      manifest.build = telemetry::RunManifest::build_flavor();
      manifest.scenario = "knob=" + knob + " values=" + values_arg +
                          " scheme=" + base.scheme + " serving=" +
                          telemetry::fnv1a_hex(serving_spec.to_json());
      if (!mapping.empty()) {
        manifest.scenario += " mapping=" + mapping;
      }
      if (!bank_spec_path.empty()) {
        manifest.scenario += " bank_budgets=" +
                             telemetry::fnv1a_hex(bank_budget_spec.to_json());
      }
      // An empty plan is contractually a perfect no-op, so it must not
      // perturb this file either: hash only plans that inject something.
      if (!fault_spec.empty() && !fault_plan.faults.empty()) {
        manifest.fault_spec_hash = telemetry::fnv1a_hex(fault_plan.to_json());
      }
      sv << manifest.to_csv_comment();
      sv << "point,tenant,arrival,generated,completed,dropped,slo_met,"
            "offered_qps,completed_qps,p50_ps,p99_ps,p999_ps,"
            "attainment_pct\n";
      for (const Outcome& o : outcomes) {
        sv << o.serving_rows;
      }
      std::printf("serving CSV written to %s\n", serving_csv.c_str());
    }
    if (want_timeseries) {
      // Sweep-level percentile summary: per-point whole-run histograms
      // folded with Histogram::merge in submission order — associative
      // bucket adds, so the table is identical for any job count.
      std::vector<std::string> order;
      std::map<std::string, sim::Histogram> merged;
      for (const Outcome& o : outcomes) {
        for (const auto& [name, h] : o.series_summaries) {
          auto [it, inserted] = merged.try_emplace(name);
          if (inserted) {
            order.push_back(name);
          }
          it->second.merge(h);
        }
      }
      util::Table summary({"series", "windows", "p50", "p99", "p999", "max"});
      for (const std::string& name : order) {
        const sim::Histogram& h = merged[name];
        summary.add_row({name, std::to_string(h.count()),
                         std::to_string(h.p50()), std::to_string(h.p99()),
                         std::to_string(h.p999()), std::to_string(h.max())});
      }
      std::printf("\nmerged time-series summary (all points):\n");
      summary.print();
    }
    if (profile_on) {
      // One sweep-level profile: per-point snapshots folded in submission
      // order (merge is commutative, so any fold order would agree — the
      // fixed order keeps the bytes identical for any job count).
      telemetry::ProfileSnapshot merged;
      for (std::size_t i = 0; i < outcomes.size(); ++i) {
        if (report.jobs[i].status == exec::JobStatus::kOk &&
            outcomes[i].has_profile) {
          merged.merge(outcomes[i].profile);
        }
      }
      std::printf("\nhost profile: %llu events across %zu point(s), "
                  "coverage %.1f%%\n",
                  static_cast<unsigned long long>(merged.events_dispatched),
                  outcomes.size(), merged.coverage() * 100.0);
      telemetry::RunManifest manifest;
      manifest.tool = "fgqos_sweep";
      manifest.seed = ec.base_seed;
      manifest.build = telemetry::RunManifest::build_flavor();
      manifest.scenario = "knob=" + knob + " values=" + values_arg +
                          " scheme=" + base.scheme;
      manifest.profile_tag_table_version =
          telemetry::kProfilerTagTableVersion;
      if (!profile_json.empty()) {
        merged.save_json(profile_json, &manifest);
        std::printf("profile JSON written to %s\n", profile_json.c_str());
      }
      if (!profile_folded.empty()) {
        merged.save_folded(profile_folded);
        std::printf("folded stacks written to %s\n", profile_folded.c_str());
      }
    }
    if (runner.worker_count() > 1 || !report.all_ok()) {
      std::printf("\n%s\n", runner.summary().c_str());
    }
    if (!exec_metrics_json.empty()) {
      runner.metrics().save_json(exec_metrics_json, 0);
      std::printf("exec metrics written to %s\n", exec_metrics_json.c_str());
    }
    if (!report.all_ok()) {
      std::printf("%s\n", report.describe().c_str());
      for (const std::size_t i : report.failed_indices()) {
        std::fprintf(stderr, "point %s=%s %s after %u attempt(s): %s\n",
                     knob.c_str(), values[i].c_str(),
                     exec::job_status_name(report.jobs[i].status),
                     report.jobs[i].attempts,
                     report.jobs[i].error.c_str());
      }
      return runner.stop_requested() ? 130 : 1;
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
