/// \file fgqos_sim.cpp
/// \brief Command-line scenario driver: build a platform, load it, apply a
///        regulation scheme and print the full statistics dump.
///
/// Examples:
///   fgqos_sim --preset zcu102 --aggressors 4 --pattern seq_rd
///             --scheme hw --budget-mbps 400 --window-us 1 --duration-ms 20
///   fgqos_sim --preset ultra96 --critical stream --scheme sw
///             --budget-mbps 200 --csv out.csv
///   fgqos_sim --list-presets
#include <algorithm>
#include <csignal>
#include <cstdio>
#include <iostream>
#include <sstream>

#include "dram/address_mapper.hpp"
#include "fault/fault_plan.hpp"
#include "fault/injector.hpp"
#include "qos/bank_regulator.hpp"
#include "qos/envelope.hpp"
#include "qos/qos_manager.hpp"
#include "qos/sla_watchdog.hpp"
#include "qos/soft_memguard.hpp"
#include "qos/window.hpp"
#include "soc/presets.hpp"
#include "soc/soc.hpp"
#include "telemetry/manifest.hpp"
#include "util/cli.hpp"
#include "util/config_error.hpp"
#include "util/csv.hpp"
#include "util/string_util.hpp"
#include "workload/cpu_workloads.hpp"
#include "workload/serving.hpp"
#include "workload/traffic_gen.hpp"

using namespace fgqos;

namespace {

volatile std::sig_atomic_t g_stop = 0;

extern "C" void on_signal(int) { g_stop = 1; }

void usage() {
  std::printf(
      "fgqos_sim — scenario driver for the fgqos platform simulator\n\n"
      "options:\n"
      "  --preset NAME       platform preset (default zcu102)\n"
      "  --list-presets      print preset names and exit\n"
      "  --critical KIND     latency | stream | none (default latency)\n"
      "  --aggressors N      DMA aggressor count (default 4)\n"
      "  --pattern P         seq_rd seq_wr copy rnd_rd rnd_wr strided\n"
      "  --scheme S          none | hw | sw (default none)\n"
      "  --budget-mbps B     per-aggressor budget (default 400)\n"
      "  --window-us W       HW regulation window (default 1)\n"
      "  --mapping M         DRAM mapping: row_bank_col | bank_interleaved |\n"
      "                      bank_partitioned (default: preset policy)\n"
      "  --bank-budget-spec FILE\n"
      "                      JSON per-bank budget plan: per-bank token-bucket\n"
      "                      regulators on the listed HP ports\n"
      "  --bank-telemetry    publish per-bank metrics/series (dram.bank.*)\n"
      "                      and the blame-matrix bank dimension\n"
      "  --aggressor-footprint-mb MB\n"
      "                      aggressor working-set size (default 16)\n"
      "  --aggressor-stride-mb MB\n"
      "                      spacing between aggressor base addresses\n"
      "                      (default 64; one bank slice apart under\n"
      "                      bank_partitioned needs capacity/banks MB)\n"
      "  --thrash-aggressors K\n"
      "                      make the first K aggressors single-line\n"
      "                      row-miss thrashers (random 64 B reads, deep\n"
      "                      outstanding window) regardless of --pattern\n"
      "  --duration-ms D     simulated time (default 20)\n"
      "  --seed N            base RNG seed (default 100)\n"
      "  --csv FILE          also write the stats table as CSV\n"
      "  --trace FILE        write a Chrome trace_event JSON timeline\n"
      "  --trace-filter C    categories: port,dram,qos,workload,kernel\n"
      "  --metrics-json FILE metrics snapshot (per-hop histograms) as JSON\n"
      "  --metrics-csv FILE  metrics snapshot as CSV\n"
      "  --blame-csv FILE    interference-attribution blame matrices as CSV\n"
      "  --blame-json FILE   blame matrices as JSON\n"
      "  --blame-window-us W blame accounting window (default 100)\n"
      "  --sla-min-mbps B    SLA watchdog: min CPU-port bandwidth per window\n"
      "  --sla-p99-us L      SLA watchdog: max CPU read p99 per window\n"
      "  --sla-stall-frac F  SLA watchdog: max interference fraction [0,1]\n"
      "  --fault-spec FILE   JSON fault plan to inject (see docs/FAULTS.md)\n"
      "  --envelope-spec FILE\n"
      "                      certified worst-case envelope (fgqos_certify):\n"
      "                      regulated ports are admitted through a\n"
      "                      QosManager whose reserve() checks the certified\n"
      "                      bounds; the SLA watchdog (when active)\n"
      "                      cross-checks observed p99 against the envelope\n"
      "                      (requires --scheme hw; see docs/CERTIFICATION.md)\n"
      "  --serving-spec FILE JSON request-serving scenario: key-value\n"
      "                      tenants on HP ports (see docs/SERVING.md)\n"
      "  --timeseries-csv FILE   windowed time series as long-format CSV\n"
      "  --timeseries-json FILE  windowed time series (+summaries) as JSON\n"
      "  --timeseries-filter G   comma-separated series globs (qos.*,dram.*)\n"
      "  --timeseries-window-us W  sampling window (default 100)\n"
      "  --journal FILE      QoS decision journal as JSON-lines\n"
      "  --profile           host-side hot-path profiler: per-component\n"
      "                      CPU attribution + kernel micro-telemetry\n"
      "  --profile-json FILE profile snapshot as JSON (implies --profile)\n"
      "  --profile-folded FILE\n"
      "                      folded-stack text for flamegraph tooling\n"
      "                      (implies --profile)\n"
      "  --watchdog-fallback-mbps B\n"
      "                      degraded-mode watchdog on each regulated port:\n"
      "                      fall back to B MB/s when the monitor feed goes\n"
      "                      stale or saturates (requires --scheme hw)\n"
      "\nSIGINT/SIGTERM stop the simulation early; all requested outputs\n"
      "are still written from the partial run.\n");
}

wl::Pattern pattern_from(const std::string& s) {
  if (s == "seq_rd") return wl::Pattern::kSeqRead;
  if (s == "seq_wr") return wl::Pattern::kSeqWrite;
  if (s == "copy") return wl::Pattern::kCopy;
  if (s == "rnd_rd") return wl::Pattern::kRandomRead;
  if (s == "rnd_wr") return wl::Pattern::kRandomWrite;
  if (s == "strided") return wl::Pattern::kStrided;
  throw ConfigError("unknown pattern '" + s + "'");
}

}  // namespace

int main(int argc, char** argv) {
  try {
    util::ArgParser args(argc, argv);
    if (args.has("help")) {
      usage();
      return 0;
    }
    if (args.has("list-presets")) {
      for (const auto& n : soc::preset_names()) {
        std::printf("%s\n", n.c_str());
      }
      return 0;
    }

    const std::string preset = args.get("preset", "zcu102");
    const std::string critical = args.get("critical", "latency");
    const auto aggressors =
        static_cast<std::size_t>(args.get_int("aggressors", 4));
    const wl::Pattern pattern = pattern_from(args.get("pattern", "seq_rd"));
    const std::string scheme = args.get("scheme", "none");
    const double budget_bps = args.get_double("budget-mbps", 400) * 1e6;
    const double window_us = args.get_double("window-us", 1);
    const double duration_ms = args.get_double("duration-ms", 20);
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 100));
    const std::string csv = args.get("csv", "");
    const std::string trace_path = args.get("trace", "");
    const std::string trace_filter = args.get("trace-filter", "");
    const std::string metrics_json = args.get("metrics-json", "");
    const std::string metrics_csv = args.get("metrics-csv", "");
    const std::string blame_csv = args.get("blame-csv", "");
    const std::string blame_json = args.get("blame-json", "");
    const double blame_window_us = args.get_double("blame-window-us", 100);
    const double sla_min_mbps = args.get_double("sla-min-mbps", 0);
    const double sla_p99_us = args.get_double("sla-p99-us", 0);
    const double sla_stall_frac = args.get_double("sla-stall-frac", 0);
    const std::string fault_spec = args.get("fault-spec", "");
    const std::string envelope_spec_path = args.get("envelope-spec", "");
    const std::string serving_spec_path = args.get("serving-spec", "");
    const std::string mapping = args.get("mapping", "");
    const std::string bank_spec_path = args.get("bank-budget-spec", "");
    const bool bank_telemetry = args.has("bank-telemetry");
    const double aggressor_footprint_mb =
        args.get_double("aggressor-footprint-mb", 16);
    if (aggressor_footprint_mb <= 0) {
      throw ConfigError("--aggressor-footprint-mb must be positive");
    }
    const double aggressor_stride_mb =
        args.get_double("aggressor-stride-mb", 64);
    if (aggressor_stride_mb <= 0) {
      throw ConfigError("--aggressor-stride-mb must be positive");
    }
    const auto thrash_aggressors =
        static_cast<std::size_t>(args.get_int("thrash-aggressors", 0));
    if (thrash_aggressors > aggressors) {
      throw ConfigError("--thrash-aggressors exceeds --aggressors");
    }
    const double wd_fallback_mbps =
        args.get_double("watchdog-fallback-mbps", 0);
    const std::string timeseries_csv = args.get("timeseries-csv", "");
    const std::string timeseries_json = args.get("timeseries-json", "");
    const std::string timeseries_filter = args.get("timeseries-filter", "");
    const double timeseries_window_us =
        args.get_double("timeseries-window-us", 100);
    const std::string journal_path = args.get("journal", "");
    const std::string profile_json = args.get("profile-json", "");
    const std::string profile_folded = args.get("profile-folded", "");
    const bool profile_on =
        args.has("profile") || !profile_json.empty() || !profile_folded.empty();
    const bool want_timeseries =
        !timeseries_csv.empty() || !timeseries_json.empty();
    if (trace_path.empty() && !trace_filter.empty()) {
      throw ConfigError("--trace-filter requires --trace");
    }
    if (!want_timeseries &&
        (!timeseries_filter.empty() || args.has("timeseries-window-us"))) {
      throw ConfigError(
          "--timeseries-filter/--timeseries-window-us require "
          "--timeseries-csv or --timeseries-json");
    }
    const bool want_sla =
        sla_min_mbps > 0 || sla_p99_us > 0 || sla_stall_frac > 0;
    const bool want_blame =
        !blame_csv.empty() || !blame_json.empty() || want_sla;
    if (wd_fallback_mbps > 0 && scheme != "hw") {
      throw ConfigError("--watchdog-fallback-mbps requires --scheme hw");
    }
    if (!envelope_spec_path.empty() && scheme != "hw") {
      throw ConfigError("--envelope-spec requires --scheme hw");
    }
    for (const auto& k : args.unused_keys()) {
      throw ConfigError("unknown option --" + k + " (see --help)");
    }

    soc::SocConfig cfg = soc::preset_by_name(preset);
    // Config knobs must land before the Soc exists: the controller's
    // address mapper and the telemetry gating are fixed at construction.
    if (!mapping.empty()) {
      cfg.dram.mapping = dram::mapping_policy_from_name(mapping);
    }
    if (bank_telemetry) {
      cfg.bank_telemetry = true;
    }
    cfg.profile = profile_on;
    soc::Soc chip(cfg);

    // Provenance embedded in every export: semantic inputs only, so two
    // runs of the same scenario carry byte-identical manifests.
    telemetry::RunManifest manifest;
    manifest.tool = "fgqos_sim";
    manifest.seed = seed;
    manifest.build = telemetry::RunManifest::build_flavor();
    if (profile_on) {
      manifest.profile_tag_table_version = telemetry::kProfilerTagTableVersion;
    }
    {
      std::ostringstream sc;
      sc << "preset=" << preset << " critical=" << critical
         << " aggressors=" << aggressors << " pattern="
         << args.get("pattern", "seq_rd") << " scheme=" << scheme
         << " budget_mbps=" << budget_bps / 1e6 << " window_us=" << window_us
         << " duration_ms=" << duration_ms;
      // Conditional tokens keep manifests of pre-existing scenarios
      // byte-identical (golden compatibility).
      if (!mapping.empty()) {
        sc << " mapping=" << mapping;
      }
      if (bank_telemetry) {
        sc << " bank_telemetry=1";
      }
      if (args.has("aggressor-footprint-mb")) {
        sc << " aggressor_footprint_mb=" << aggressor_footprint_mb;
      }
      if (args.has("aggressor-stride-mb")) {
        sc << " aggressor_stride_mb=" << aggressor_stride_mb;
      }
      if (thrash_aggressors > 0) {
        sc << " thrash_aggressors=" << thrash_aggressors;
      }
      manifest.scenario = sc.str();
    }

    if (critical == "latency") {
      cpu::CoreConfig cc;
      cc.name = "critical";
      chip.add_core(cc, wl::make_pointer_chase({}));
    } else if (critical == "stream") {
      cpu::CoreConfig cc;
      cc.name = "critical";
      chip.add_core(cc, wl::make_stream({}));
    } else if (critical != "none") {
      throw ConfigError("unknown critical workload '" + critical + "'");
    }

    std::unique_ptr<qos::SoftMemguard> memguard;
    if (scheme == "sw") {
      memguard = std::make_unique<qos::SoftMemguard>(
          chip.sim(), qos::SoftMemguardConfig{});
    } else if (scheme != "none" && scheme != "hw") {
      throw ConfigError("unknown scheme '" + scheme + "'");
    }

    if (!journal_path.empty()) {
      telemetry::DecisionJournal& journal = chip.enable_journal();
      if (memguard != nullptr) {
        memguard->set_journal(&journal);
      }
    }

    // Certified-envelope admission: regulated ports are programmed through
    // a QosManager sized from the envelope's certification run, so the
    // per-port budgets pass (or fail) real admission control.
    std::unique_ptr<qos::CertifiedEnvelope> envelope;
    std::unique_ptr<qos::QosManager> manager;
    if (!envelope_spec_path.empty()) {
      envelope = std::make_unique<qos::CertifiedEnvelope>(
          qos::CertifiedEnvelope::from_file(envelope_spec_path));
      manifest.scenario +=
          " envelope=" + telemetry::fnv1a_hex(envelope->to_json());
      qos::QosManagerConfig mc;
      mc.capacity_bps = envelope->capacity_bps;
      mc.max_reservable_frac = envelope->max_reservable_frac;
      manager = std::make_unique<qos::QosManager>(chip.sim(), mc);
      manager->set_envelope(envelope.get());
      manager->set_metrics(&chip.telemetry().metrics());
      if (telemetry::DecisionJournal* j = chip.journal()) {
        manager->set_journal(j);
      }
    }

    std::vector<std::size_t> managed_ports;
    for (std::size_t i = 0; i < aggressors; ++i) {
      wl::TrafficGenConfig tg;
      tg.name = "agg" + std::to_string(i);
      tg.pattern = pattern;
      tg.base = 0x8000'0000 +
                static_cast<axi::Addr>(i) *
                    static_cast<axi::Addr>(aggressor_stride_mb * (1 << 20));
      tg.footprint_bytes =
          static_cast<std::uint64_t>(aggressor_footprint_mb * (1 << 20));
      tg.seed = seed + i;
      if (i < thrash_aggressors) {
        // Single-line bursts open a fresh row on every access; the deep
        // outstanding window keeps the target bank's miss pipeline full.
        tg.pattern = wl::Pattern::kRandomRead;
        tg.burst_bytes = 64;
        tg.max_outstanding = 48;
      }
      const std::size_t port = i % cfg.accel_ports;
      chip.add_traffic_gen(port, tg);
      if (scheme == "hw") {
        qos::Regulator& reg = *chip.qos_block(1 + port).regulator;
        reg.set_window(static_cast<sim::TimePs>(window_us * 1e6));
        if (manager != nullptr) {
          // The manager owns rate programming: this port's budget goes
          // through reserve() below instead of being forced on directly.
          if (std::find(managed_ports.begin(), managed_ports.end(), port) ==
              managed_ports.end()) {
            managed_ports.push_back(port);
          }
        } else {
          reg.set_rate(budget_bps);
          reg.set_enabled(true);
        }
      } else if (scheme == "sw") {
        axi::MasterPort& mp = chip.accel_port(port);
        memguard->set_rate(mp.id(), budget_bps);
        mp.add_gate(*memguard);
      }
    }

    if (manager != nullptr) {
      std::size_t rejected = 0;
      for (const std::size_t port : managed_ports) {
        axi::MasterPort& mp = chip.accel_port(port);
        manager->add_port(mp.name(), mp.id(), chip.regfile(1 + port));
        const bool admitted = manager->reserve(mp.id(), budget_bps);
        std::printf("admission: %s reserve %.0f MB/s -> %s\n",
                    mp.name().c_str(), budget_bps / 1e6,
                    admitted ? "accepted" : "REJECTED");
        if (!admitted) {
          ++rejected;
        }
      }
      if (rejected > 0) {
        std::printf("admission: %zu reservation(s) rejected against the "
                    "certified envelope; rejected ports run best-effort\n",
                    rejected);
      }
    }

    if (!bank_spec_path.empty()) {
      const qos::BankBudgetSpec bspec = qos::BankBudgetSpec::load(bank_spec_path);
      manifest.scenario +=
          " bank_budgets=" + telemetry::fnv1a_hex(bspec.to_json());
      const std::size_t regs = chip.apply_bank_budgets(bspec);
      std::printf("per-bank regulation: %zu port regulator(s) armed\n", regs);
    }

    if (!serving_spec_path.empty()) {
      const wl::ServingSpec sspec =
          wl::ServingSpec::from_file(serving_spec_path);
      // Fold the scenario into the manifest so exports from different
      // serving specs are distinguishable (semantic input, not a path).
      manifest.scenario +=
          " serving=" + telemetry::fnv1a_hex(sspec.to_json());
      chip.add_serving(sspec, seed);
    }

    if (!fault_spec.empty()) {
      fault::FaultPlan plan = fault::FaultPlan::from_file(fault_spec);
      manifest.fault_spec_hash = telemetry::fnv1a_hex(plan.to_json());
      fault::FaultInjector& inj = chip.arm_faults(std::move(plan), seed);
      if (memguard != nullptr) {
        inj.wire_memguard(*memguard);
      }
    }
    if (wd_fallback_mbps > 0) {
      const auto window_ps = static_cast<sim::TimePs>(window_us * 1e6);
      for (std::size_t port = 0;
           port < std::min(aggressors, cfg.accel_ports); ++port) {
        qos::RegulatorWatchdogConfig wc;
        wc.name = "wd" + std::to_string(port);
        wc.check_period_ps = 4 * window_ps;
        wc.fallback_budget_bytes =
            qos::budget_for_rate(wd_fallback_mbps * 1e6, window_ps);
        chip.add_regulator_watchdog(1 + port, wc);
      }
    }

    if (!trace_path.empty()) {
      chip.open_trace(trace_path, trace_filter);
      if (memguard != nullptr) {
        memguard->set_trace(chip.telemetry().trace());
      }
    } else if (!metrics_json.empty() || !metrics_csv.empty()) {
      chip.enable_lifecycle_metrics();  // per-hop histograms without a trace
    }

    std::unique_ptr<qos::SlaWatchdog> watchdog;
    if (want_blame) {
      telemetry::AttributionEngine& engine = chip.enable_attribution(
          static_cast<sim::TimePs>(blame_window_us * 1e6));
      if (want_sla) {
        qos::SlaSpec spec;
        spec.min_bandwidth_mbps = sla_min_mbps;
        spec.max_p99_latency_ps = static_cast<sim::TimePs>(sla_p99_us * 1e6);
        spec.max_interference_fraction = sla_stall_frac;
        watchdog = std::make_unique<qos::SlaWatchdog>(
            engine, chip.telemetry().metrics());
        watchdog->watch(chip.cpu_port(), spec);
        if (chip.telemetry().tracing()) {
          watchdog->set_trace(chip.telemetry().trace());
        }
        if (fault::FaultInjector* inj = chip.faults()) {
          // Violation reports name whichever fault was live at the time.
          watchdog->set_fault_probe([inj](sim::TimePs t) {
            return inj->active_faults(t);
          });
        }
        if (telemetry::DecisionJournal* j = chip.journal()) {
          watchdog->set_journal(j);
        }
        if (envelope != nullptr) {
          watchdog->set_envelope(envelope.get(), manager.get());
        }
      }
    }

    if (want_timeseries) {
      // After workload setup and attribution so every standard series
      // (including attr.* stall time) is there to be probed.
      telemetry::TimeSeriesConfig tc;
      tc.window_ps = static_cast<sim::TimePs>(timeseries_window_us * 1e6);
      tc.filter = timeseries_filter;
      chip.enable_timeseries(std::move(tc));
    }

    // Run in slices so SIGINT/SIGTERM can stop the simulation early while
    // still flushing every requested output from the partial run.
    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);
    const auto duration_ps = static_cast<sim::TimePs>(duration_ms * 1e9);
    const sim::TimePs slice =
        std::max<sim::TimePs>(sim::kPsPerMs, duration_ps / 100);
    while (chip.now() < duration_ps && g_stop == 0) {
      chip.run_for(std::min<sim::TimePs>(slice, duration_ps - chip.now()));
    }
    if (g_stop != 0) {
      std::printf("interrupted at %s — writing partial results\n",
                  util::format_time_ps(chip.now()).c_str());
    }

    if (memguard != nullptr) {
      memguard->flush_trace(chip.now());
    }
    chip.finish_telemetry();

    sim::StatsRegistry stats;
    chip.collect_stats(stats);
    util::Table table({"stat", "value"});
    for (const auto& [name, value] : stats.all()) {
      table.add_row({name, value});
    }
    std::printf("scenario: preset=%s critical=%s aggressors=%zu pattern=%s "
                "scheme=%s\n",
                preset.c_str(), critical.c_str(), aggressors,
                args.get("pattern", "seq_rd").c_str(), scheme.c_str());
    std::printf("simulated %s, DRAM bandwidth %s, bus utilisation %.1f%%\n\n",
                util::format_time_ps(chip.now()).c_str(),
                util::format_bandwidth(chip.dram_bandwidth_bps()).c_str(),
                stats.get("dram.bus_utilization") * 100);
    table.print();
    if (!csv.empty()) {
      table.save_csv(csv);
      std::printf("\nCSV written to %s\n", csv.c_str());
    }
    if (!metrics_json.empty()) {
      chip.collect_metrics().save_json(metrics_json, chip.now(), &manifest);
      std::printf("\nmetrics JSON written to %s\n", metrics_json.c_str());
    }
    if (!metrics_csv.empty()) {
      chip.collect_metrics().save_csv(metrics_csv, &manifest);
      std::printf("\nmetrics CSV written to %s\n", metrics_csv.c_str());
    }
    if (!timeseries_csv.empty()) {
      chip.timeseries()->save_csv(timeseries_csv, &manifest);
      std::printf("\ntime-series CSV written to %s (%llu windows)\n",
                  timeseries_csv.c_str(),
                  static_cast<unsigned long long>(
                      chip.timeseries()->windows_sampled()));
    }
    if (!timeseries_json.empty()) {
      chip.timeseries()->save_json(timeseries_json, &manifest);
      std::printf("\ntime-series JSON written to %s\n",
                  timeseries_json.c_str());
    }
    if (!journal_path.empty()) {
      chip.journal()->save_jsonl(journal_path, &manifest);
      std::printf("\ndecision journal written to %s (%zu entries)\n",
                  journal_path.c_str(), chip.journal()->size());
    }
    if (profile_on) {
      const telemetry::ProfileSnapshot prof = chip.profiler()->snapshot();
      std::printf("\nhost profile: %llu events, %llu ticks, coverage %.1f%%\n",
                  static_cast<unsigned long long>(prof.events_dispatched),
                  static_cast<unsigned long long>(prof.ticks_dispatched),
                  prof.coverage() * 100.0);
      std::vector<telemetry::ProfileTagEntry> top = prof.tags;
      std::sort(top.begin(), top.end(),
                [](const auto& a, const auto& b) { return a.cycles > b.cycles; });
      const std::size_t n = std::min<std::size_t>(top.size(), 8);
      for (std::size_t i = 0; i < n; ++i) {
        const double share =
            prof.total_cycles == 0
                ? 0.0
                : static_cast<double>(top[i].cycles) /
                      static_cast<double>(prof.total_cycles);
        std::printf("  %-28s %6.2f%%  %12llu cycles  %10llu hits\n",
                    top[i].name.c_str(), share * 100.0,
                    static_cast<unsigned long long>(top[i].cycles),
                    static_cast<unsigned long long>(top[i].count));
      }
      if (!profile_json.empty()) {
        prof.save_json(profile_json, &manifest);
        std::printf("profile JSON written to %s\n", profile_json.c_str());
      }
      if (!profile_folded.empty()) {
        prof.save_folded(profile_folded);
        std::printf("folded stacks written to %s\n", profile_folded.c_str());
      }
    }
    if (!blame_csv.empty()) {
      chip.attribution()->save_csv(blame_csv);
      std::printf("\nblame CSV written to %s\n", blame_csv.c_str());
    }
    if (!blame_json.empty()) {
      chip.attribution()->save_json(blame_json);
      std::printf("\nblame JSON written to %s\n", blame_json.c_str());
    }
    if (fault::FaultInjector* inj = chip.faults()) {
      std::printf("\nfaults injected: %llu total\n",
                  static_cast<unsigned long long>(inj->injected_total()));
      for (std::size_t k = 0; k < fault::kFaultKindCount; ++k) {
        const auto kind = static_cast<fault::FaultKind>(k);
        if (inj->injected(kind) > 0) {
          std::printf("  %-18s %llu\n", fault::fault_kind_name(kind),
                      static_cast<unsigned long long>(inj->injected(kind)));
        }
      }
    }
    if (chip.serving_tenant_count() > 0) {
      std::printf("\nserving tenants:\n");
      std::printf("  %-12s %-8s %12s %12s %9s %9s %9s %9s %10s\n", "tenant",
                  "arrival", "offered_qps", "completed_qps", "dropped",
                  "p50_us", "p99_us", "p999_us", "attain_pct");
      for (std::size_t i = 0; i < chip.serving_tenant_count(); ++i) {
        wl::ServingTenant& t = chip.serving_tenant(i);
        std::printf("  %-12s %-8s %12.0f %12.0f %9llu %9.2f %9.2f %9.2f "
                    "%10s\n",
                    t.spec().name.c_str(),
                    wl::arrival_kind_name(t.spec().arrival), t.offered_qps(),
                    t.completed_qps(),
                    static_cast<unsigned long long>(t.stats().dropped),
                    static_cast<double>(t.latency().p50()) / 1e6,
                    static_cast<double>(t.latency().p99()) / 1e6,
                    static_cast<double>(t.latency().p999()) / 1e6,
                    wl::attainment_pct_cell(t, 2).c_str());
      }
    }
    if (watchdog != nullptr) {
      std::ostringstream report;
      watchdog->write_report(report);
      std::printf("\n%s", report.str().c_str());
    }
    if (manager != nullptr && manager->envelope_fallback()) {
      std::printf("\nWARNING: certified envelope violated during the run — "
                  "manager degraded to conservative fallback budgets\n");
    }
    if (!trace_path.empty()) {
      std::printf("\ntrace written to %s (%zu events)\n", trace_path.c_str(),
                  chip.telemetry().trace()->events_written());
    }
    return 0;
  } catch (const ConfigError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
