/// \file fgqos_report.cpp
/// \brief Run-comparison / regression analyzer over exported artifacts.
///
/// Three modes:
///   compare   — two runs' artifacts (metrics JSON required, blame CSV /
///               journal JSONL / time-series JSON optional): per-tenant
///               p50/p99/p999 and bandwidth deltas, blame-matrix diffs,
///               decision-timeline summaries, PASS/FAIL verdicts against
///               the regression thresholds.
///   summary   — one run's artifacts (only --a-* given): digest without
///               deltas.
///   bench     — two BENCH_micro.json kernel-throughput records
///               (--bench + --bench-baseline): events/sec drop gate.
///   profile   — two host-profile artifacts (--profile-a + --profile-b,
///               JSON or folded): per-tag cycle-share regression gate.
///   envelope  — bounds-vs-measured certification gate (--envelope +
///               --measured f1.json,f2.json,...): every measured run is
///               checked against the certified per-master worst-case
///               bounds; any excursion fails the gate.
///
/// Exit codes: 0 = pass, 1 = usage/parse error, 2 = regression detected.
///
/// Examples:
///   fgqos_report --a-metrics base.json --b-metrics new.json
///                --a-blame base_blame.csv --b-blame new_blame.csv
///                --a-journal base.jsonl --b-journal new.jsonl
///   fgqos_report --bench BENCH_micro.json
///                --bench-baseline ci/bench_baseline.json --max-drop-pct 10
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

#include "qos/envelope.hpp"
#include "qos/envelope_check.hpp"
#include "telemetry/report.hpp"
#include "util/cli.hpp"
#include "util/config_error.hpp"

using namespace fgqos;

namespace {

void usage() {
  std::printf(
      "fgqos_report — compare runs of the fgqos platform simulator\n\n"
      "compare / summary mode:\n"
      "  --a-metrics FILE     run A metrics JSON (required)\n"
      "  --b-metrics FILE     run B metrics JSON (omit for a summary of A)\n"
      "  --a-blame FILE       run A blame-matrix CSV\n"
      "  --b-blame FILE       run B blame-matrix CSV\n"
      "  --a-journal FILE     run A decision-journal JSONL\n"
      "  --b-journal FILE     run B decision-journal JSONL\n"
      "  --a-timeseries FILE  run A time-series JSON\n"
      "  --b-timeseries FILE  run B time-series JSON\n"
      "  --max-p99-regress-pct N  tolerated p99/p999 growth (default 10)\n"
      "  --max-bw-drop-pct N      tolerated bandwidth drop (default 10)\n"
      "  --force              compare even when manifests disagree\n"
      "bench mode:\n"
      "  --bench FILE             fresh BENCH_micro.json\n"
      "  --bench-baseline FILE    committed baseline record\n"
      "  --max-drop-pct N         tolerated events/sec drop (default 10)\n"
      "profile mode:\n"
      "  --profile-a FILE         baseline host profile (JSON or folded)\n"
      "  --profile-b FILE         fresh host profile (JSON or folded)\n"
      "  --max-share-regress-pp N tolerated per-tag cycle-share growth in\n"
      "                           percentage points (default 2)\n"
      "  --force                  compare across tag-table versions\n"
      "envelope mode:\n"
      "  --envelope FILE          certified envelope JSON (fgqos_certify)\n"
      "  --measured F1,F2,...     measured metrics JSON export(s)\n"
      "  --force                  check across export schema versions\n"
      "common:\n"
      "  --json               emit the report as JSON instead of text\n"
      "  --out FILE           write the report there instead of stdout\n"
      "\nexit codes: 0 pass, 1 error, 2 regression\n");
}

std::string slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is.good()) {
    throw ConfigError("cannot read '" + path + "'");
  }
  std::ostringstream ss;
  ss << is.rdbuf();
  return ss.str();
}

void load_side(telemetry::RunData& run, const util::ArgParser& args,
               const std::string& prefix) {
  const std::string metrics = args.get(prefix + "-metrics", "");
  if (!metrics.empty()) {
    run.load_metrics_json(metrics);
  }
  const std::string blame = args.get(prefix + "-blame", "");
  if (!blame.empty()) {
    run.load_blame_csv(blame);
  }
  const std::string journal = args.get(prefix + "-journal", "");
  if (!journal.empty()) {
    run.load_journal_jsonl(journal);
  }
  const std::string ts = args.get(prefix + "-timeseries", "");
  if (!ts.empty()) {
    run.load_timeseries_json(ts);
  }
}

int emit(const std::string& text, const std::string& out) {
  if (out.empty()) {
    std::fputs(text.c_str(), stdout);
    return 0;
  }
  std::ofstream os(out);
  if (!os.good()) {
    throw ConfigError("cannot write '" + out + "'");
  }
  os << text;
  if (!os.good()) {
    throw ConfigError("error writing '" + out + "'");
  }
  std::printf("report written to %s\n", out.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    util::ArgParser args(argc, argv);
    if (args.has("help")) {
      usage();
      return 0;
    }
    const bool as_json = args.get_bool("json", false);
    const std::string out = args.get("out", "");

    // --- envelope (bounds-vs-measured) mode ------------------------------
    const std::string envelope_path = args.get("envelope", "");
    const std::string measured_list = args.get("measured", "");
    if (!envelope_path.empty() || !measured_list.empty()) {
      if (envelope_path.empty() || measured_list.empty()) {
        throw ConfigError("--envelope and --measured go together");
      }
      const bool env_force = args.get_bool("force", false);
      for (const auto& k : args.unused_keys()) {
        throw ConfigError("unknown option --" + k + " (see --help)");
      }
      const qos::CertifiedEnvelope env =
          qos::CertifiedEnvelope::from_file(envelope_path);
      std::vector<telemetry::RunData> runs;
      std::istringstream paths(measured_list);
      std::string path;
      while (std::getline(paths, path, ',')) {
        if (path.empty()) {
          continue;
        }
        telemetry::RunData run;
        run.label = path;
        run.load_metrics_json(path);
        runs.push_back(std::move(run));
      }
      if (runs.empty()) {
        throw ConfigError("--measured lists no files");
      }
      const qos::EnvelopeReport rep = qos::check_envelope(env, runs, env_force);
      std::ostringstream ss;
      if (as_json) {
        rep.write_json(ss);
      } else {
        rep.write_text(ss);
      }
      emit(ss.str(), out);
      return rep.pass() ? 0 : 2;
    }

    // --- bench mode ------------------------------------------------------
    const std::string bench = args.get("bench", "");
    const std::string bench_baseline = args.get("bench-baseline", "");
    if (!bench.empty() || !bench_baseline.empty()) {
      if (bench.empty() || bench_baseline.empty()) {
        throw ConfigError("--bench and --bench-baseline go together");
      }
      const double max_drop = args.get_double("max-drop-pct", 10.0);
      for (const auto& k : args.unused_keys()) {
        throw ConfigError("unknown option --" + k + " (see --help)");
      }
      const telemetry::BenchComparison c = telemetry::compare_bench(
          slurp(bench_baseline), slurp(bench), max_drop);
      std::ostringstream ss;
      if (as_json) {
        c.write_json(ss);
      } else {
        c.write_text(ss);
      }
      emit(ss.str(), out);
      return c.pass() ? 0 : 2;
    }

    // --- profile mode -----------------------------------------------------
    const std::string profile_a = args.get("profile-a", "");
    const std::string profile_b = args.get("profile-b", "");
    if (!profile_a.empty() || !profile_b.empty()) {
      if (profile_a.empty() || profile_b.empty()) {
        throw ConfigError("--profile-a and --profile-b go together");
      }
      const double max_pp = args.get_double("max-share-regress-pp", 2.0);
      const bool profile_force = args.get_bool("force", false);
      for (const auto& k : args.unused_keys()) {
        throw ConfigError("unknown option --" + k + " (see --help)");
      }
      const telemetry::ProfileComparison c = telemetry::compare_profiles(
          telemetry::ProfileData::load(profile_a),
          telemetry::ProfileData::load(profile_b), max_pp, profile_force);
      std::ostringstream ss;
      if (as_json) {
        c.write_json(ss);
      } else {
        c.write_text(ss);
      }
      emit(ss.str(), out);
      return c.pass() ? 0 : 2;
    }

    // --- compare / summary mode ------------------------------------------
    if (args.get("a-metrics", "").empty()) {
      usage();
      throw ConfigError("--a-metrics is required (or use bench mode)");
    }
    telemetry::ReportThresholds t;
    t.max_p99_regress_pct =
        args.get_double("max-p99-regress-pct", t.max_p99_regress_pct);
    t.max_bw_drop_pct = args.get_double("max-bw-drop-pct", t.max_bw_drop_pct);
    const bool force = args.get_bool("force", false);
    const bool have_b = !args.get("b-metrics", "").empty();

    telemetry::RunData a;
    a.label = "A";
    load_side(a, args, "a");
    telemetry::RunData b;
    b.label = "B";
    if (have_b) {
      load_side(b, args, "b");
    } else if (!args.get("b-blame", "").empty() ||
               !args.get("b-journal", "").empty() ||
               !args.get("b-timeseries", "").empty()) {
      throw ConfigError("--b-* artifacts need --b-metrics");
    }
    for (const auto& k : args.unused_keys()) {
      throw ConfigError("unknown option --" + k + " (see --help)");
    }

    const telemetry::RunReport rep =
        have_b ? telemetry::compare_runs(a, b, t, force)
               : telemetry::summarize_run(a);
    std::ostringstream ss;
    if (as_json) {
      rep.write_json(ss);
    } else {
      rep.write_text(ss);
    }
    emit(ss.str(), out);
    return rep.pass() ? 0 : 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
