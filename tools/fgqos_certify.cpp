/// \file fgqos_certify.cpp
/// \brief Adversarial worst-case contention search + certified envelope.
///
/// Search mode (default): drives the pluggable optimizer stack
/// (coordinate descent with random restarts and/or a (mu,lambda)
/// evolution strategy) over the aggressor configuration space, evaluating
/// every visited attack in both unregulated and regulated modes through
/// the exec::ScenarioRunner, then emits a versioned, manifest-stamped
/// certified-envelope JSON: per-master worst-case bounds, the argmax
/// attack config, and full search provenance. The result is a
/// deterministic function of (spec, --seed) — independent of --jobs —
/// and resumable: with --journal every completed evaluation is appended
/// as one JSONL line, and --resume replays the optimizer against the
/// journal at full speed before continuing where an interrupted search
/// stopped.
///
/// Replay mode (--replay): re-runs the envelope's argmax attack at a
/// chosen seed, printing the measured quantities next to the certified
/// bounds; --metrics-json exports the measured snapshot for
/// `fgqos_report --envelope --measured` (the CI bounds-vs-measured gate).
///
/// Examples:
///   fgqos_certify --out envelope.json --seed 7 --jobs 0
///                 --journal search.jsonl
///   fgqos_certify --resume --journal search.jsonl --out envelope.json
///   fgqos_certify --replay envelope.json --replay-seed 8
///                 --metrics-json measured.json
#include <csignal>
#include <cstdio>

#include "fault/fault_plan.hpp"
#include "search/search.hpp"
#include "telemetry/manifest.hpp"
#include "util/cli.hpp"
#include "util/config_error.hpp"

using namespace fgqos;

namespace {

exec::ScenarioRunner* g_runner = nullptr;

extern "C" void on_signal(int) {
  if (g_runner != nullptr) {
    g_runner->request_stop();
  }
}

void usage() {
  std::printf(
      "fgqos_certify — adversarial contention search and certified "
      "worst-case envelopes\n\n"
      "search mode:\n"
      "  --out FILE            envelope JSON output (required)\n"
      "  --seed N              search seed (default 1); the envelope is a\n"
      "                        deterministic function of (spec, seed)\n"
      "  --jobs N              parallel evaluations (0 = all hardware\n"
      "                        threads; result is identical for any N)\n"
      "  --optimizer O         coord | es | both (default both)\n"
      "  --objective O         slowdown | p99 | slo_miss (default slowdown)\n"
      "  --budget-evals N      max unique attack configs (default 64; each\n"
      "                        costs an unregulated + a regulated sim)\n"
      "  --restarts N          coordinate-descent restarts (default 2)\n"
      "  --mu N --lambda N     ES parents / offspring (default 4 / 8)\n"
      "  --generations N       ES generations (default 4)\n"
      "  --victim-accesses N   pointer-chase loads per iteration (256)\n"
      "  --victim-iterations N victim iterations per sim (4)\n"
      "  --deadline-ms D       per-sim simulated-time deadline (400)\n"
      "  --slo-iter-us U       victim iteration SLO (0 = 2x solo mean)\n"
      "  --regulated-budget-mbps B  per-HP-port budget when regulated (400)\n"
      "  --window-us W         regulation window (1)\n"
      "  --capacity-gbps C     admission capacity (16)\n"
      "  --max-reservable-frac F    reservable fraction of capacity (0.85)\n"
      "  --margin M            safety margin on every bound (0.10)\n"
      "  --validate-seeds N    regulated argmax replays folded into the\n"
      "                        bounds, at seeds seed+1..seed+N (10)\n"
      "  --fault-spec FILE     compose a JSON fault plan into every\n"
      "                        evaluation (see docs/FAULTS.md)\n"
      "  --journal FILE        append one JSONL line per completed\n"
      "                        evaluation (enables --resume)\n"
      "  --resume              pre-fill the cache from --journal and\n"
      "                        continue an interrupted search\n"
      "replay mode:\n"
      "  --replay ENV          envelope JSON to replay\n"
      "  --replay-seed S       platform seed for the replay (default:\n"
      "                        envelope seed + 1)\n"
      "  --unregulated         replay without regulation (default: with)\n"
      "  --metrics-json FILE   export the measured snapshot for\n"
      "                        fgqos_report --envelope --measured\n"
      "  --fault-spec FILE     same plan the certification composed\n"
      "\nSIGINT/SIGTERM stop the search cooperatively (exit 130); every\n"
      "completed evaluation is already in the journal, so --resume\n"
      "continues without repeating work.\n");
}

void print_envelope_summary(const qos::CertifiedEnvelope& env) {
  std::printf("certified envelope: %zu unique configs evaluated\n",
              static_cast<std::size_t>(env.evaluations));
  std::printf("  argmax %s = %s (EXP1 hand-written mix: %s, ratio %.2fx)\n",
              env.objective.c_str(),
              qos::envelope_double(env.argmax_objective).c_str(),
              qos::envelope_double(env.exp1_mix_objective).c_str(),
              env.exp1_mix_objective > 0
                  ? env.argmax_objective / env.exp1_mix_objective
                  : 0.0);
  std::printf("  argmax config: %s\n", env.argmax_config_json.c_str());
  std::printf("  unregulated worst case: iter_mean %s ps, read_p99 %s ps\n",
              qos::envelope_double(env.unregulated.iter_mean_ps).c_str(),
              qos::envelope_double(env.unregulated.read_p99_ps).c_str());
  std::printf("  regulated worst case:   iter_mean %s ps, read_p99 %s ps\n",
              qos::envelope_double(env.regulated.iter_mean_ps).c_str(),
              qos::envelope_double(env.regulated.read_p99_ps).c_str());
  for (const auto& [name, b] : env.masters) {
    std::printf("  bound %-4s:", name.c_str());
    if (b.max_p99_ps > 0) {
      std::printf(" p99<=%s ps", qos::envelope_double(b.max_p99_ps).c_str());
    }
    if (b.min_bandwidth_bps > 0) {
      std::printf(" bw>=%s B/s",
                  qos::envelope_double(b.min_bandwidth_bps).c_str());
    }
    if (b.max_bandwidth_bps > 0) {
      std::printf(" bw<=%s B/s",
                  qos::envelope_double(b.max_bandwidth_bps).c_str());
    }
    if (b.max_reserved_bps > 0) {
      std::printf(" reservable<=%s B/s",
                  qos::envelope_double(b.max_reserved_bps).c_str());
    }
    std::printf("\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  try {
    util::ArgParser args(argc, argv);
    if (args.has("help")) {
      usage();
      return 0;
    }

    const std::string fault_spec = args.get("fault-spec", "");
    fault::FaultPlan fault_plan;
    if (!fault_spec.empty()) {
      fault_plan = fault::FaultPlan::from_file(fault_spec);
    }

    // --- replay mode -----------------------------------------------------
    const std::string replay_path = args.get("replay", "");
    if (!replay_path.empty()) {
      const qos::CertifiedEnvelope env =
          qos::CertifiedEnvelope::from_file(replay_path);
      const auto replay_seed = static_cast<std::uint64_t>(args.get_int(
          "replay-seed", static_cast<std::int64_t>(env.seed + 1)));
      const bool regulated = !args.get_bool("unregulated", false);
      const std::string metrics_json = args.get("metrics-json", "");
      for (const auto& k : args.unused_keys()) {
        throw ConfigError("unknown option --" + k + " (see --help)");
      }
      const search::EvalResult r = search::replay_envelope(
          env, replay_seed, regulated,
          fault_spec.empty() ? nullptr : &fault_plan, metrics_json);
      std::printf("replay of %s (seed %llu, %s):\n", replay_path.c_str(),
                  static_cast<unsigned long long>(replay_seed),
                  regulated ? "regulated" : "unregulated");
      std::printf("  iter_mean_ps  %s\n",
                  qos::envelope_double(r.iter_mean_ps).c_str());
      std::printf("  iter_p99_ps   %s\n",
                  qos::envelope_double(r.iter_p99_ps).c_str());
      std::printf("  read_p99_ps   %s  (certified max %s)\n",
                  qos::envelope_double(r.read_p99_ps).c_str(),
                  qos::envelope_double(
                      env.bound_for("cpu") != nullptr
                          ? env.bound_for("cpu")->max_p99_ps
                          : 0.0)
                      .c_str());
      std::printf("  victim_bw_bps %s\n",
                  qos::envelope_double(r.victim_bw_bps).c_str());
      std::printf("  aggressor_bps %s\n",
                  qos::envelope_double(r.aggressor_bps).c_str());
      std::printf("  slo_miss_frac %s\n",
                  qos::envelope_double(r.slo_miss_frac).c_str());
      if (!metrics_json.empty()) {
        std::printf("measured snapshot written to %s\n", metrics_json.c_str());
      }
      return 0;
    }

    // --- search mode -----------------------------------------------------
    const std::string out = args.get("out", "");
    if (out.empty()) {
      usage();
      throw ConfigError("--out is required (or use --replay)");
    }
    search::SearchSpec spec;
    spec.optimizer = args.get("optimizer", "both");
    spec.objective =
        search::objective_from_name(args.get("objective", "slowdown"));
    spec.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
    spec.budget_evals =
        static_cast<std::size_t>(args.get_int("budget-evals", 64));
    spec.restarts = static_cast<std::size_t>(args.get_int("restarts", 2));
    spec.mu = static_cast<std::size_t>(args.get_int("mu", 4));
    spec.lambda = static_cast<std::size_t>(args.get_int("lambda", 8));
    spec.generations =
        static_cast<std::size_t>(args.get_int("generations", 4));
    spec.eval.victim_accesses =
        static_cast<std::uint64_t>(args.get_int("victim-accesses", 256));
    spec.eval.victim_iterations =
        static_cast<std::uint64_t>(args.get_int("victim-iterations", 4));
    spec.eval.deadline_ms = args.get_double("deadline-ms", 400);
    spec.eval.slo_iter_us = args.get_double("slo-iter-us", 0);
    spec.eval.regulated_budget_mbps =
        args.get_double("regulated-budget-mbps", 400);
    spec.eval.window_us = args.get_double("window-us", 1);
    spec.capacity_bps = args.get_double("capacity-gbps", 16) * 1e9;
    spec.max_reservable_frac = args.get_double("max-reservable-frac", 0.85);
    spec.margin = args.get_double("margin", 0.10);
    spec.validate_seeds =
        static_cast<std::size_t>(args.get_int("validate-seeds", 10));
    if (!fault_spec.empty()) {
      spec.eval.faults = &fault_plan;
      spec.fault_spec_json = fault_plan.to_json();
    }
    const std::string journal = args.get("journal", "");
    const bool resume = args.get_bool("resume", false);
    if (resume && journal.empty()) {
      throw ConfigError("--resume requires --journal");
    }
    exec::ExecConfig ec;
    ec.jobs = static_cast<std::size_t>(args.get_int(
        "jobs", static_cast<std::int64_t>(exec::jobs_from_env(1))));
    ec.base_seed = spec.seed;
    for (const auto& k : args.unused_keys()) {
      throw ConfigError("unknown option --" + k + " (see --help)");
    }

    exec::ScenarioRunner runner(ec);
    g_runner = &runner;
    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);

    std::printf("contention search: optimizer=%s objective=%s seed=%llu "
                "budget=%zu evals\n",
                spec.optimizer.c_str(),
                search::objective_name(spec.objective),
                static_cast<unsigned long long>(spec.seed),
                spec.budget_evals);
    const search::SearchOutcome outcome = search::run_search(
        spec, runner, journal, resume,
        [](const search::SearchProgress& p) {
          std::printf("  [%s] batch %zu: %zu config(s) evaluated, best %s "
                      "= %.6g\n",
                      p.phase.c_str(), p.batch, p.evaluations,
                      p.best_config_json.empty() ? "(none)"
                                                 : p.best_config_json.c_str(),
                      p.best_objective);
        });
    g_runner = nullptr;
    if (outcome.interrupted) {
      std::printf("search interrupted — %s\n",
                  journal.empty()
                      ? "no journal was kept, progress is lost"
                      : ("resume with --resume --journal " + journal).c_str());
      return 130;
    }
    outcome.envelope.save(out);
    print_envelope_summary(outcome.envelope);
    std::printf("envelope written to %s\n", out.c_str());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
