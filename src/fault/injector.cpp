#include "fault/injector.hpp"

#include <algorithm>
#include <memory>
#include <string>
#include <utility>

#include "telemetry/journal.hpp"

namespace fgqos::fault {

namespace {

/// SplitMix64 finalizer — the same mixer the exec layer uses for job
/// seeds; repeated here so fault never depends on exec.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

FaultInjector::FaultInjector(sim::Simulator& sim, FaultPlan plan,
                             std::uint64_t run_seed,
                             telemetry::MetricsRegistry* metrics)
    : sim_(sim),
      plan_(std::move(plan)),
      mix_seed_(mix64(plan_.seed ^ mix64(run_seed))),
      metrics_(metrics) {
  prof_tag_ = sim_.profile_tag("fault.injector");
}

FaultInjector::Site* FaultInjector::make_site(const FaultSpec& spec) {
  sites_.emplace_back(&spec, mix64(mix_seed_ + ++site_count_));
  return &sites_.back();
}

bool FaultInjector::roll(Site& site, sim::TimePs now) {
  const FaultSpec& s = *site.spec;
  if (!s.active_at(now)) {
    return false;
  }
  if (s.probability >= 1.0) {
    return true;
  }
  if (s.probability <= 0.0) {
    return false;
  }
  return site.rng.next_double() < s.probability;
}

void FaultInjector::record(Site& site, sim::TimePs now) {
  ++site.fired;
  const auto kind = static_cast<std::size_t>(site.spec->kind);
  ++injected_[kind];
  if (metrics_ != nullptr) {
    // Lazy creation: a plan that never fires leaves the registry (and the
    // golden metrics snapshots) untouched.
    metrics_
        ->counter(std::string("fault.") + fault_kind_name(site.spec->kind) +
                  ".injected")
        .add();
    metrics_->counter("fault.injected_total").add();
  }
  if (trace_ != nullptr) {
    trace_->instant(track_, fault_kind_name(site.spec->kind), now);
  }
  if (journal_ != nullptr && site.fired == 1) {
    // Activation edge only: the per-injection record would swamp the
    // journal for high-frequency faults; counts live in the metrics.
    journal_->record(now, "fault", fault_kind_name(site.spec->kind), 0.0, 1.0,
                     "fault_plan",
                     "target=" + std::to_string(site.spec->target));
  }
}

std::uint64_t FaultInjector::injected_total() const {
  std::uint64_t total = 0;
  for (const std::uint64_t n : injected_) {
    total += n;
  }
  return total;
}

std::string FaultInjector::active_faults(sim::TimePs now) const {
  std::string out;
  for (const FaultSpec& s : plan_.faults) {
    if (!s.active_at(now)) {
      continue;
    }
    const char* name = fault_kind_name(s.kind);
    // De-duplicate repeated kinds (several specs of one kind read as one).
    if (out.find(name) != std::string::npos) {
      continue;
    }
    if (!out.empty()) {
      out += ',';
    }
    out += name;
  }
  return out;
}

void FaultInjector::set_trace(telemetry::TraceWriter* writer) {
  trace_ = writer;
  track_ = telemetry::TrackId{};
  if (trace_ != nullptr) {
    track_ = trace_->track(telemetry::Cat::kQos, "faults");
    if (!track_.valid()) {
      trace_ = nullptr;  // qos category filtered out
    }
  }
}

void FaultInjector::wire_interconnect(axi::Interconnect& xbar) {
  std::vector<std::pair<Site*, axi::Resp>> sites;
  for (const FaultSpec& s : plan_.faults) {
    if (s.kind == FaultKind::kAxiSlverr) {
      sites.emplace_back(make_site(s), axi::Resp::kSlverr);
    } else if (s.kind == FaultKind::kAxiDecerr) {
      sites.emplace_back(make_site(s), axi::Resp::kDecerr);
    }
  }
  if (sites.empty()) {
    return;
  }
  xbar.set_response_fault(
      [this, sites](const axi::LineRequest& line, sim::TimePs now) {
        axi::Resp worst = axi::Resp::kOkay;
        for (const auto& [site, resp] : sites) {
          if (!matches_target(*site->spec, line.txn->master)) {
            continue;
          }
          if (roll(*site, now)) {
            record(*site, now);
            worst = std::max(worst, resp);
          }
        }
        return worst;
      });
}

void FaultInjector::schedule_port_stall(Site* site, axi::MasterPort* port,
                                        sim::TimePs at) {
  sim_.schedule_at(
      at,
      [this, site, port]() {
        const sim::TimePs now = sim_.now();
        const FaultSpec& s = *site->spec;
        if (now >= s.end_ps) {
          return;  // fault window over; stop the event chain
        }
        if (roll(*site, now)) {
          record(*site, now);
          port->inject_stall(s.duration_ps);
        }
        schedule_port_stall(site, port, now + s.period_ps);
      },
      prof_tag_);
}

void FaultInjector::wire_port(axi::MasterPort& port) {
  for (const FaultSpec& s : plan_.faults) {
    if (s.kind != FaultKind::kPortStall ||
        !matches_target(s, port.id())) {
      continue;
    }
    Site* site = make_site(s);
    const sim::TimePs first = std::max(s.start_ps, sim_.now()) + s.period_ps;
    schedule_port_stall(site, &port, first);
  }
}

void FaultInjector::wire_regulator(std::size_t master_index,
                                   qos::Regulator& reg) {
  std::vector<std::pair<Site*, bool>> sites;  // bool: true = drop
  for (const FaultSpec& s : plan_.faults) {
    if (!matches_target(s, master_index)) {
      continue;
    }
    if (s.kind == FaultKind::kRegIrqDrop) {
      sites.emplace_back(make_site(s), true);
    } else if (s.kind == FaultKind::kRegIrqDelay) {
      sites.emplace_back(make_site(s), false);
    }
  }
  if (sites.empty()) {
    return;
  }
  reg.set_irq_fault([this, sites](sim::TimePs now) -> sim::TimePs {
    for (const auto& [site, drop] : sites) {
      if (roll(*site, now)) {
        record(*site, now);
        return drop ? sim::kTimeNever : site->spec->delay_ps;
      }
    }
    return 0;
  });
}

void FaultInjector::wire_monitor(std::size_t master_index,
                                 qos::BandwidthMonitor& mon) {
  std::vector<Site*> freeze;
  std::vector<Site*> saturate;
  for (const FaultSpec& s : plan_.faults) {
    if (!matches_target(s, master_index)) {
      continue;
    }
    if (s.kind == FaultKind::kMonitorFreeze) {
      freeze.push_back(make_site(s));
    } else if (s.kind == FaultKind::kMonitorSaturate) {
      saturate.push_back(make_site(s));
    }
  }
  if (!freeze.empty()) {
    mon.set_freeze_fault([this, freeze](sim::TimePs now) {
      for (Site* site : freeze) {
        if (roll(*site, now)) {
          record(*site, now);
          return true;
        }
      }
      return false;
    });
  }
  if (!saturate.empty()) {
    mon.set_saturation_fault([this, saturate](sim::TimePs now) -> std::uint64_t {
      for (Site* site : saturate) {
        if (site->spec->active_at(now)) {
          if (site->fired == 0) {
            record(*site, now);  // book the activation once
          }
          return site->spec->cap_bytes;
        }
      }
      return 0;
    });
  }
}

void FaultInjector::wire_memguard(qos::SoftMemguard& mg) {
  std::vector<std::pair<Site*, bool>> sites;  // bool: true = drop
  for (const FaultSpec& s : plan_.faults) {
    if (s.kind == FaultKind::kMemguardIrqDrop) {
      sites.emplace_back(make_site(s), true);
    } else if (s.kind == FaultKind::kMemguardIrqDelay) {
      sites.emplace_back(make_site(s), false);
    }
  }
  if (sites.empty()) {
    return;
  }
  mg.set_irq_fault([this, sites](sim::TimePs now) -> sim::TimePs {
    for (const auto& [site, drop] : sites) {
      if (roll(*site, now)) {
        record(*site, now);
        return drop ? sim::kTimeNever : site->spec->delay_ps;
      }
    }
    return 0;
  });
}

void FaultInjector::wire_dram(dram::Controller& dram) {
  // Storms may overlap, so no event may own the divisor outright: each
  // start/end edge updates the set of in-window factors and re-applies
  // the strongest one (1 when the set drains), instead of a blind reset
  // that would cancel a storm still active. One shared state per
  // controller, co-owned by every edge event.
  struct StormState {
    dram::Controller* target;
    std::vector<std::uint32_t> active;

    void apply() const {
      std::uint32_t factor = 1;
      for (const std::uint32_t f : active) {
        factor = std::max(factor, f);
      }
      target->set_refresh_interval_divisor(factor);
    }
  };
  auto storms = std::make_shared<StormState>();
  storms->target = &dram;
  for (const FaultSpec& s : plan_.faults) {
    if (s.kind != FaultKind::kRefreshStorm) {
      continue;
    }
    Site* site = make_site(s);
    sim_.schedule_at(
        std::max(s.start_ps, sim_.now()),
        [this, site, storms]() {
          record(*site, sim_.now());
          storms->active.push_back(site->spec->factor);
          storms->apply();
        },
        prof_tag_);
    if (s.end_ps != sim::kTimeNever) {
      sim_.schedule_at(
          s.end_ps,
          [site, storms]() {
            auto& active = storms->active;
            const auto it =
                std::find(active.begin(), active.end(), site->spec->factor);
            if (it != active.end()) {
              active.erase(it);
            }
            storms->apply();
          },
          prof_tag_);
    }
  }
}

}  // namespace fgqos::fault
