/// \file fault_plan.hpp
/// \brief Declarative description of the faults to inject into one run.
///
/// A FaultPlan is a seeded list of fault specifications, parsed from the
/// JSON document given to the tools via --fault-spec. Each spec names a
/// fault kind (one of the well-defined injection seams across the AXI,
/// QoS and DRAM layers), an optional target master, an activity window,
/// and either a per-occurrence probability (for discrete seams such as
/// response corruption or IRQ delivery) or schedule parameters (for
/// continuous seams such as port stalls and refresh storms). The plan is
/// pure data; fault::FaultInjector turns it into wired hooks and events.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace fgqos::fault {

/// Every injection seam the simulator exposes.
enum class FaultKind : std::uint8_t {
  kAxiSlverr = 0,     ///< SLVERR on line delivery (response path)
  kAxiDecerr,         ///< DECERR on line delivery
  kPortStall,         ///< transient stall of a master port's data path
  kRegIrqDrop,        ///< regulator replenish IRQ lost
  kRegIrqDelay,       ///< regulator replenish IRQ delayed
  kMonitorFreeze,     ///< monitor sample register frozen (stale windows)
  kMonitorSaturate,   ///< monitor window counter saturates at a cap
  kMemguardIrqDrop,   ///< SoftMemguard overflow IRQ lost
  kMemguardIrqDelay,  ///< SoftMemguard overflow IRQ delayed
  kRefreshStorm,      ///< DRAM tREFI divided (refresh storm)
};

inline constexpr std::size_t kFaultKindCount = 10;

/// Short stable name ("axi_slverr", ...) used in JSON, metrics and traces.
[[nodiscard]] const char* fault_kind_name(FaultKind k);
/// Inverse of fault_kind_name; throws util::ConfigError on unknown names.
[[nodiscard]] FaultKind fault_kind_from_name(const std::string& name);

/// One fault to inject. Which fields are meaningful depends on the kind;
/// FaultPlan::from_json validates the combinations.
struct FaultSpec {
  FaultKind kind = FaultKind::kAxiSlverr;
  /// Crossbar master index the fault applies to; -1 = every master.
  /// Ignored by kMemguardIrq* (the SoftMemguard IRQ path is shared) and
  /// kRefreshStorm (the controller serves all masters).
  int target = -1;
  /// Per-occurrence Bernoulli probability for discrete seams (response
  /// corruption, IRQ delivery, port-stall occurrences, frozen
  /// boundaries). Ignored by kMonitorSaturate and kRefreshStorm, which
  /// are continuous while active.
  double probability = 1.0;
  /// Activity window [start_ps, end_ps).
  sim::TimePs start_ps = 0;
  sim::TimePs end_ps = sim::kTimeNever;
  /// Extra delivery delay for the *IrqDelay kinds.
  sim::TimePs delay_ps = 0;
  /// kPortStall: one stall opportunity every period_ps...
  sim::TimePs period_ps = 0;
  /// ...holding the port for duration_ps when it fires.
  sim::TimePs duration_ps = 0;
  /// kMonitorSaturate: the counter pegs at this many bytes per window.
  std::uint64_t cap_bytes = 0;
  /// kRefreshStorm: tREFI divisor while active.
  std::uint32_t factor = 4;

  [[nodiscard]] bool active_at(sim::TimePs now) const {
    return now >= start_ps && now < end_ps;
  }
};

/// The whole plan: a seed (mixed with the per-job seed so sweep points get
/// independent yet reproducible fault streams) plus the fault list.
struct FaultPlan {
  std::uint64_t seed = 1;
  std::vector<FaultSpec> faults;

  [[nodiscard]] bool empty() const { return faults.empty(); }

  /// Parses and validates the --fault-spec JSON schema (see docs/FAULTS.md).
  /// Throws util::ConfigError with a descriptive message on any problem,
  /// including unknown keys (typo protection).
  static FaultPlan from_json(const std::string& text);
  /// from_json over the contents of \p path.
  static FaultPlan from_file(const std::string& path);

  /// Serializes back to the schema from_json accepts (round-trip tested).
  [[nodiscard]] std::string to_json() const;
};

}  // namespace fgqos::fault
