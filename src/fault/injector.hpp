/// \file injector.hpp
/// \brief Turns a FaultPlan into wired fault hooks and scheduled events.
///
/// The injector owns one deterministic RNG stream per (spec, component)
/// wiring site, seeded from plan.seed mixed with the run seed, so a given
/// plan replays identically across repeated runs and across --jobs fan-out
/// (each sweep job builds its own Soc + injector from its derived seed).
/// Every injected fault increments fault.<kind>.injected and
/// fault.injected_total in the metrics registry (counters are created
/// lazily on first injection, so an empty or never-firing plan leaves the
/// metrics snapshot — and thus the golden CSVs — byte-identical) and, when
/// tracing, emits an instant on a "faults" track.
///
/// Wiring is done per component seam (Soc::arm_faults calls these for the
/// pieces it owns; tests and tools wire extra components such as a
/// SoftMemguard explicitly). The injector must outlive the simulation run.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "axi/interconnect.hpp"
#include "dram/controller.hpp"
#include "fault/fault_plan.hpp"
#include "qos/bandwidth_monitor.hpp"
#include "qos/regulator.hpp"
#include "qos/soft_memguard.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace fgqos::telemetry {
class DecisionJournal;
}

namespace fgqos::fault {

class FaultInjector {
 public:
  /// \p run_seed is the per-job seed (exec::derive_seed output); it is
  /// mixed with plan.seed for the per-site RNG streams. \p metrics may be
  /// null (no fault counters are published then).
  FaultInjector(sim::Simulator& sim, FaultPlan plan, std::uint64_t run_seed,
                telemetry::MetricsRegistry* metrics);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Wires kAxiSlverr / kAxiDecerr onto the crossbar's response path.
  void wire_interconnect(axi::Interconnect& xbar);
  /// Schedules kPortStall events against \p port (matched by port id).
  void wire_port(axi::MasterPort& port);
  /// Wires kRegIrqDrop / kRegIrqDelay onto \p reg, which supervises
  /// crossbar master \p master_index.
  void wire_regulator(std::size_t master_index, qos::Regulator& reg);
  /// Wires kMonitorFreeze / kMonitorSaturate onto \p mon (same indexing).
  void wire_monitor(std::size_t master_index, qos::BandwidthMonitor& mon);
  /// Wires kMemguardIrqDrop / kMemguardIrqDelay (target is ignored: the
  /// SoftMemguard IRQ path is shared by all its masters).
  void wire_memguard(qos::SoftMemguard& mg);
  /// Schedules kRefreshStorm windows against \p dram.
  void wire_dram(dram::Controller& dram);

  /// Attaches the Chrome-trace sink (nullptr detaches): every injection
  /// becomes an instant on a "faults" track (category "qos").
  void set_trace(telemetry::TraceWriter* writer);

  /// Attaches the decision journal (nullptr detaches): the FIRST injection
  /// of each (spec, component) site is recorded — the activation edge the
  /// timeline reader wants — rather than every repeat of a
  /// high-frequency fault.
  void set_journal(telemetry::DecisionJournal* journal) { journal_ = journal; }

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }
  /// Injections of one kind so far.
  [[nodiscard]] std::uint64_t injected(FaultKind k) const {
    return injected_[static_cast<std::size_t>(k)];
  }
  [[nodiscard]] std::uint64_t injected_total() const;
  /// Comma-separated kind names of the specs whose activity window
  /// contains \p now (empty string when none) — the SLA watchdog's fault
  /// probe, answering "which fault was live when this window tripped?".
  [[nodiscard]] std::string active_faults(sim::TimePs now) const;

 private:
  /// One (spec, component) wiring with its private RNG stream. Stored in
  /// a deque so pointers handed to closures stay stable.
  struct Site {
    const FaultSpec* spec = nullptr;
    sim::Xoshiro256 rng;
    std::uint64_t fired = 0;

    Site(const FaultSpec* s, std::uint64_t seed) : spec(s), rng(seed) {}
  };

  Site* make_site(const FaultSpec& spec);
  /// Activity window + Bernoulli draw (the RNG is only consulted for
  /// probabilities strictly inside (0, 1), keeping streams stable).
  [[nodiscard]] bool roll(Site& site, sim::TimePs now);
  /// Books one injection: per-kind tally, metrics counters, trace instant.
  void record(Site& site, sim::TimePs now);
  void schedule_port_stall(Site* site, axi::MasterPort* port, sim::TimePs at);
  [[nodiscard]] bool matches_target(const FaultSpec& spec,
                                    std::size_t master_index) const {
    return spec.target < 0 ||
           static_cast<std::size_t>(spec.target) == master_index;
  }

  sim::Simulator& sim_;
  std::uint32_t prof_tag_ = 0;  ///< host-profiler tag, fault.injector
  FaultPlan plan_;
  std::uint64_t mix_seed_;
  std::uint64_t site_count_ = 0;
  telemetry::MetricsRegistry* metrics_;
  std::deque<Site> sites_;
  std::uint64_t injected_[kFaultKindCount] = {};
  telemetry::TraceWriter* trace_ = nullptr;
  telemetry::TrackId track_;
  telemetry::DecisionJournal* journal_ = nullptr;
};

}  // namespace fgqos::fault
