#include "fault/fault_plan.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/config_error.hpp"
#include "util/json.hpp"

namespace fgqos::fault {

namespace {

constexpr const char* kKindNames[kFaultKindCount] = {
    "axi_slverr",    "axi_decerr",      "port_stall",
    "reg_irq_drop",  "reg_irq_delay",   "monitor_freeze",
    "monitor_saturate", "mg_irq_drop",  "mg_irq_delay",
    "refresh_storm",
};

/// Converts a JSON microsecond value into picoseconds.
sim::TimePs us_to_ps(double us, const std::string& key) {
  config_check(std::isfinite(us) && us >= 0,
               "FaultPlan: '" + key + "' must be a finite value >= 0");
  config_check(us < 1e12, "FaultPlan: '" + key + "' is implausibly large");
  return static_cast<sim::TimePs>(
      std::llround(us * static_cast<double>(sim::kPsPerUs)));
}

std::uint64_t as_u64(const util::JsonValue& v, const std::string& key) {
  // Plain integer literals keep their exact 64-bit value (the double path
  // below rounds above 2^53, which would corrupt round-tripped seeds).
  if (v.is_uint64()) {
    return v.as_uint64();
  }
  const double d = v.as_number();
  config_check(std::isfinite(d) && d >= 0 && d <= 1.8e19 &&
                   d == std::floor(d),
               "FaultPlan: '" + key + "' must be a non-negative integer");
  return static_cast<std::uint64_t>(d);
}

void append_number(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

/// Integer path for uint64 fields: %.17g would route them through double
/// and silently corrupt values above 2^53, breaking the round-trip
/// guarantee (from_json accepts integers up to 1.8e19).
void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(v));
  out += buf;
}

}  // namespace

const char* fault_kind_name(FaultKind k) {
  const auto i = static_cast<std::size_t>(k);
  return i < kFaultKindCount ? kKindNames[i] : "?";
}

FaultKind fault_kind_from_name(const std::string& name) {
  for (std::size_t i = 0; i < kFaultKindCount; ++i) {
    if (name == kKindNames[i]) {
      return static_cast<FaultKind>(i);
    }
  }
  throw ConfigError("FaultPlan: unknown fault kind '" + name + "'");
}

FaultPlan FaultPlan::from_json(const std::string& text) {
  const util::JsonValue doc = util::JsonValue::parse(text);
  config_check(doc.is_object(), "FaultPlan: top level must be an object");
  for (const auto& [key, value] : doc.as_object()) {
    (void)value;
    config_check(key == "seed" || key == "faults",
                 "FaultPlan: unknown top-level key '" + key + "'");
  }
  FaultPlan plan;
  if (doc.contains("seed")) {
    plan.seed = as_u64(doc.at("seed"), "seed");
  }
  if (!doc.contains("faults")) {
    return plan;
  }
  config_check(doc.at("faults").is_array(),
               "FaultPlan: 'faults' must be an array");
  for (const util::JsonValue& f : doc.at("faults").as_array()) {
    config_check(f.is_object(), "FaultPlan: each fault must be an object");
    for (const auto& [key, value] : f.as_object()) {
      (void)value;
      config_check(key == "kind" || key == "target" || key == "prob" ||
                       key == "start_us" || key == "end_us" ||
                       key == "delay_us" || key == "period_us" ||
                       key == "duration_us" || key == "cap_bytes" ||
                       key == "factor",
                   "FaultPlan: unknown fault key '" + key + "'");
    }
    config_check(f.contains("kind"), "FaultPlan: fault without 'kind'");
    FaultSpec s;
    s.kind = fault_kind_from_name(f.at("kind").as_string());
    if (f.contains("target")) {
      const double t = f.at("target").as_number();
      config_check(t == std::floor(t) && t >= -1 && t < 65535,
                   "FaultPlan: 'target' must be an integer >= -1");
      s.target = static_cast<int>(t);
    }
    if (f.contains("prob")) {
      s.probability = f.at("prob").as_number();
      config_check(s.probability >= 0.0 && s.probability <= 1.0,
                   "FaultPlan: 'prob' must be in [0, 1]");
    }
    if (f.contains("start_us")) {
      s.start_ps = us_to_ps(f.at("start_us").as_number(), "start_us");
    }
    if (f.contains("end_us")) {
      s.end_ps = us_to_ps(f.at("end_us").as_number(), "end_us");
      config_check(s.end_ps > s.start_ps,
                   "FaultPlan: 'end_us' must be after 'start_us'");
    }
    if (f.contains("delay_us")) {
      s.delay_ps = us_to_ps(f.at("delay_us").as_number(), "delay_us");
    }
    if (f.contains("period_us")) {
      s.period_ps = us_to_ps(f.at("period_us").as_number(), "period_us");
    }
    if (f.contains("duration_us")) {
      s.duration_ps = us_to_ps(f.at("duration_us").as_number(), "duration_us");
    }
    if (f.contains("cap_bytes")) {
      s.cap_bytes = as_u64(f.at("cap_bytes"), "cap_bytes");
    }
    if (f.contains("factor")) {
      const std::uint64_t factor = as_u64(f.at("factor"), "factor");
      config_check(factor >= 1 && factor <= 1024,
                   "FaultPlan: 'factor' must be in [1, 1024]");
      s.factor = static_cast<std::uint32_t>(factor);
    }
    // Per-kind requirements.
    switch (s.kind) {
      case FaultKind::kPortStall:
        config_check(s.period_ps > 0 && s.duration_ps > 0,
                     "FaultPlan: port_stall needs 'period_us' and "
                     "'duration_us' > 0");
        break;
      case FaultKind::kRegIrqDelay:
      case FaultKind::kMemguardIrqDelay:
        config_check(s.delay_ps > 0,
                     "FaultPlan: *_irq_delay needs 'delay_us' > 0");
        break;
      case FaultKind::kMonitorSaturate:
        config_check(s.cap_bytes > 0,
                     "FaultPlan: monitor_saturate needs 'cap_bytes' > 0");
        break;
      default:
        break;
    }
    plan.faults.push_back(s);
  }
  return plan;
}

FaultPlan FaultPlan::from_file(const std::string& path) {
  std::ifstream in(path);
  config_check(static_cast<bool>(in),
               "FaultPlan: cannot open '" + path + "'");
  std::ostringstream text;
  text << in.rdbuf();
  return from_json(text.str());
}

std::string FaultPlan::to_json() const {
  std::string out = "{\"seed\": ";
  append_u64(out, seed);
  out += ", \"faults\": [";
  bool first = true;
  for (const FaultSpec& s : faults) {
    if (!first) {
      out += ", ";
    }
    first = false;
    out += "{\"kind\": \"";
    out += fault_kind_name(s.kind);
    out += '"';
    if (s.target >= 0) {
      out += ", \"target\": ";
      out += std::to_string(s.target);
    }
    if (s.probability != 1.0) {
      out += ", \"prob\": ";
      append_number(out, s.probability);
    }
    const auto us = [](sim::TimePs ps) {
      return static_cast<double>(ps) / static_cast<double>(sim::kPsPerUs);
    };
    if (s.start_ps > 0) {
      out += ", \"start_us\": ";
      append_number(out, us(s.start_ps));
    }
    if (s.end_ps != sim::kTimeNever) {
      out += ", \"end_us\": ";
      append_number(out, us(s.end_ps));
    }
    if (s.delay_ps > 0) {
      out += ", \"delay_us\": ";
      append_number(out, us(s.delay_ps));
    }
    if (s.period_ps > 0) {
      out += ", \"period_us\": ";
      append_number(out, us(s.period_ps));
    }
    if (s.duration_ps > 0) {
      out += ", \"duration_us\": ";
      append_number(out, us(s.duration_ps));
    }
    if (s.cap_bytes > 0) {
      out += ", \"cap_bytes\": ";
      append_u64(out, s.cap_bytes);
    }
    if (s.kind == FaultKind::kRefreshStorm) {
      out += ", \"factor\": ";
      append_u64(out, s.factor);
    }
    out += '}';
  }
  out += "]}";
  return out;
}

}  // namespace fgqos::fault
