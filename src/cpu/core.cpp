#include "cpu/core.hpp"

#include "util/assert.hpp"
#include "util/config_error.hpp"

namespace fgqos::cpu {

// ---------------------------------------------------------------------------
// CpuCore
// ---------------------------------------------------------------------------

CpuCore::CpuCore(CpuCluster& cluster, CoreConfig cfg,
                 std::unique_ptr<Kernel> kernel)
    : sim::Clocked(cluster.simulator(), cluster.clock(), cfg.name),
      cluster_(cluster),
      cfg_(std::move(cfg)),
      kernel_(std::move(kernel)),
      rng_(cfg_.rng_seed),
      l1_(cfg_.l1) {
  config_check(kernel_ != nullptr, "CpuCore: kernel required");
}

void CpuCore::set_kernel(std::unique_ptr<Kernel> kernel) {
  config_check(kernel != nullptr, "CpuCore: kernel required");
  kernel_ = std::move(kernel);
  state_ = State::kNeedStep;
  tasks_.clear();
  compute_left_ = 0;
  finished_ = false;
  iteration_open_ = false;
  wake();
}

void CpuCore::restart_measurement(std::uint64_t max_iterations) {
  cfg_.max_iterations = max_iterations;
  stats_.iterations = 0;
  stats_.iteration_ps.reset();
  stats_.finished_at = sim::kTimeNever;
  finished_ = false;
  iteration_open_ = false;
  if (state_ == State::kFinished) {
    state_ = State::kNeedStep;
  }
  wake();
}

void CpuCore::begin_step(const KernelStep& step) {
  if (!iteration_open_) {
    iteration_open_ = true;
    iteration_start_ = simulator().now();
  }
  compute_left_ = step.compute_cycles;
  step_ends_iteration_ = step.end_of_iteration;
  tasks_.clear();
  if (step.op.has_value()) {
    const MemOp& op = *step.op;
    if (op.is_write) {
      ++stats_.stores;
    } else {
      ++stats_.loads;
    }
    const axi::Addr line_mask = ~static_cast<axi::Addr>(cfg_.l1.line_bytes - 1);
    const axi::Addr line = op.addr & line_mask;
    const mem::CacheAccessResult l1r = l1_.access(op.addr, op.is_write);
    if (l1r.hit) {
      compute_left_ += cfg_.l1_hit_cycles;
    } else {
      if (l1r.writeback_addr.has_value()) {
        tasks_.push_back(Task{*l1r.writeback_addr, true, true, false});
      }
      // Blocking semantics apply to loads; stores retire through the
      // write buffer without stalling the core.
      tasks_.push_back(Task{line, false, op.is_write,
                            op.blocking && !op.is_write});
    }
  }
  state_ = State::kTasks;
}

void CpuCore::finish_step() {
  ++stats_.steps_done;
  if (step_ends_iteration_) {
    ++stats_.iterations;
    stats_.iteration_ps.record(simulator().now() - iteration_start_);
    iteration_open_ = false;
    if (cfg_.max_iterations != 0 && stats_.iterations >= cfg_.max_iterations) {
      finished_ = true;
      stats_.finished_at = simulator().now();
      state_ = State::kFinished;
      return;
    }
  }
  state_ = State::kNeedStep;
}

bool CpuCore::process_task(sim::TimePs /*now*/) {
  FGQOS_ASSERT(!tasks_.empty(), "process_task: no task");
  Task& t = tasks_.front();
  if (t.is_victim_wb) {
    if (!cluster_.writeback_victim(t.line_addr)) {
      ++stats_.stall_resource_cycles;
      return false;
    }
    tasks_.pop_front();
    return true;
  }
  // Demand access task.
  const auto r = cluster_.l2_access(t.line_addr, t.is_write);
  switch (r) {
    case CpuCluster::L2Result::kHit:
      compute_left_ += cfg_.l2_hit_cycles;
      tasks_.pop_front();
      return true;
    case CpuCluster::L2Result::kMiss:
      if (t.blocking) {
        wait_line_ = t.line_addr;
        cluster_.wait_on(t.line_addr, *this);
        state_ = State::kWaitFill;
      }
      tasks_.pop_front();
      return true;
    case CpuCluster::L2Result::kStall:
      ++stats_.stall_resource_cycles;
      return false;
  }
  return false;
}

bool CpuCore::tick(sim::Cycles /*cycle*/) {
  const sim::TimePs now = simulator().now();
  if (state_ == State::kFinished) {
    return false;
  }
  if (compute_left_ > 0) {
    // Fast-forward the whole compute phase in one wake-up.
    const sim::TimePs resume = now + compute_left_ * clock().period_ps();
    compute_left_ = 0;
    wake_at(resume);
    return false;
  }
  switch (state_) {
    case State::kNeedStep: {
      const KernelStep step = kernel_->next(rng_);
      begin_step(step);
      // Compute phase (if any) runs before the memory op issues.
      return true;
    }
    case State::kTasks: {
      if (tasks_.empty()) {
        finish_step();
        return state_ != State::kFinished;
      }
      process_task(now);
      if (state_ == State::kWaitFill) {
        return false;  // sleep until on_line_filled
      }
      return true;
    }
    case State::kWaitFill:
      // Spurious tick while blocked; stay asleep.
      return false;
    case State::kFinished:
      return false;
  }
  return false;
}

void CpuCore::on_line_filled(axi::Addr line_addr) {
  if (state_ != State::kWaitFill || line_addr != wait_line_) {
    return;
  }
  state_ = State::kTasks;
  wake();
}

// ---------------------------------------------------------------------------
// CpuCluster
// ---------------------------------------------------------------------------

CpuCluster::CpuCluster(sim::Simulator& sim, const sim::ClockDomain& clk,
                       ClusterConfig cfg, axi::MasterPort& port)
    : sim::Clocked(sim, clk, cfg.name),
      cfg_(std::move(cfg)),
      port_(&port),
      l2_(cfg_.l2),
      mshr_(cfg_.mshr_entries) {
  config_check(cfg_.writeback_queue > 0,
               "CpuCluster: writeback_queue must be > 0");
  port_->set_completion_handler(
      [this](const axi::Transaction& txn) { on_port_completion(txn); });
}

CpuCore& CpuCluster::add_core(CoreConfig cfg, std::unique_ptr<Kernel> kernel) {
  cores_.push_back(
      std::make_unique<CpuCore>(*this, std::move(cfg), std::move(kernel)));
  return *cores_.back();
}

bool CpuCluster::all_finished() const {
  bool any_bounded = false;
  for (const auto& c : cores_) {
    if (c->config().max_iterations != 0) {
      any_bounded = true;
      if (!c->finished()) {
        return false;
      }
    }
  }
  return any_bounded;
}

CpuCluster::L2Result CpuCluster::l2_access(axi::Addr line_addr,
                                           bool is_write) {
  // A line already being fetched: merge into the outstanding miss.
  if (mshr_.present(line_addr)) {
    mshr_.allocate(line_addr);
    return L2Result::kMiss;
  }
  if (l2_.probe(line_addr)) {
    l2_.access(line_addr, is_write);
    return L2Result::kHit;
  }
  // Miss: reserve resources before mutating any state.
  if (mshr_.full() || !port_->can_issue(axi::Dir::kRead) ||
      writeback_q_.size() >= cfg_.writeback_queue) {
    return L2Result::kStall;
  }
  const mem::CacheAccessResult r = l2_.access(line_addr, is_write);
  FGQOS_ASSERT(!r.hit, "probe said miss but access hit");
  if (r.writeback_addr.has_value()) {
    const bool ok = enqueue_writeback(*r.writeback_addr);
    FGQOS_ASSERT(ok, "writeback queue overflow after reservation");
  }
  mshr_.allocate(line_addr);
  const bool issued = port_->issue(axi::Dir::kRead, line_addr,
                                   cfg_.l2.line_bytes, /*user=*/line_addr);
  FGQOS_ASSERT(issued, "port rejected read after can_issue check");
  if (cfg_.prefetch_degree > 0) {
    issue_prefetches(line_addr);
  }
  return L2Result::kMiss;
}

void CpuCluster::issue_prefetches(axi::Addr demand_line) {
  // Next-line prefetcher: fetch the following N lines, best-effort — stop
  // at the first resource limit so demand traffic always has priority.
  for (std::uint32_t k = 1; k <= cfg_.prefetch_degree; ++k) {
    const axi::Addr line =
        demand_line + static_cast<axi::Addr>(k) * cfg_.l2.line_bytes;
    if (mshr_.present(line) || l2_.probe(line)) {
      continue;
    }
    if (mshr_.full() || !port_->can_issue(axi::Dir::kRead) ||
        writeback_q_.size() >= cfg_.writeback_queue) {
      return;
    }
    const mem::CacheAccessResult r = l2_.access(line, /*is_write=*/false);
    FGQOS_ASSERT(!r.hit, "prefetch probe said miss but access hit");
    if (r.writeback_addr.has_value()) {
      const bool ok = enqueue_writeback(*r.writeback_addr);
      FGQOS_ASSERT(ok, "writeback queue overflow after reservation");
    }
    mshr_.allocate(line);
    const bool ok =
        port_->issue(axi::Dir::kRead, line, cfg_.l2.line_bytes, line);
    FGQOS_ASSERT(ok, "port rejected prefetch after can_issue check");
    ++prefetches_issued_;
  }
}

bool CpuCluster::writeback_victim(axi::Addr line_addr) {
  if (l2_.probe(line_addr)) {
    l2_.access(line_addr, true);  // mark dirty; retires on L2 eviction
    return true;
  }
  return enqueue_writeback(line_addr);
}

bool CpuCluster::enqueue_writeback(axi::Addr line_addr) {
  if (writeback_q_.size() >= cfg_.writeback_queue) {
    return false;
  }
  writeback_q_.push_back(line_addr);
  wake();
  return true;
}

void CpuCluster::wait_on(axi::Addr line_addr, CpuCore& core) {
  waiters_[line_addr].push_back(&core);
}

bool CpuCluster::tick(sim::Cycles /*cycle*/) {
  // Writeback pump: drain one line per cycle when the port has room.
  if (writeback_q_.empty()) {
    return false;
  }
  if (port_->can_issue(axi::Dir::kWrite)) {
    const axi::Addr line = writeback_q_.front();
    writeback_q_.pop_front();
    const bool issued =
        port_->issue(axi::Dir::kWrite, line, cfg_.l2.line_bytes);
    FGQOS_ASSERT(issued, "port rejected write after can_issue check");
  }
  return !writeback_q_.empty();
}

void CpuCluster::on_port_completion(const axi::Transaction& txn) {
  if (txn.dir == axi::Dir::kWrite) {
    return;  // writeback retired; nothing waits on it
  }
  const axi::Addr line = txn.addr;
  mshr_.complete(line);
  auto it = waiters_.find(line);
  if (it == waiters_.end()) {
    return;
  }
  // Move out first: on_line_filled may wake cores that immediately issue
  // new accesses and call wait_on again.
  std::vector<CpuCore*> ws = std::move(it->second);
  waiters_.erase(it);
  for (CpuCore* c : ws) {
    c->on_line_filled(line);
  }
}

}  // namespace fgqos::cpu
