/// \file kernel.hpp
/// \brief Abstract synthetic-kernel interface executed by CPU cores.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "axi/types.hpp"
#include "sim/random.hpp"

namespace fgqos::cpu {

/// One memory operation of a kernel step.
struct MemOp {
  axi::Addr addr = 0;
  bool is_write = false;
  /// Blocking ops (dependent loads) stall the core until the data returns;
  /// non-blocking ops (independent streaming loads, stores) only stall on
  /// resource exhaustion (MSHRs, port, write buffer).
  bool blocking = true;
};

/// One step: compute phase followed by an optional memory operation.
struct KernelStep {
  std::uint32_t compute_cycles = 0;
  std::optional<MemOp> op;
  /// True when this step closes one kernel iteration (used for iteration
  /// timing and max-iteration termination).
  bool end_of_iteration = false;
};

/// A synthetic workload. Kernels are infinite generators; the executing
/// core counts iterations via end_of_iteration markers.
class Kernel {
 public:
  virtual ~Kernel() = default;
  /// Produces the next step. \p rng is the executing core's private,
  /// seeded generator (determinism).
  virtual KernelStep next(sim::Xoshiro256& rng) = 0;
  /// Restarts iteration-local state (address cursors etc.).
  virtual void reset() = 0;
  [[nodiscard]] virtual const std::string& name() const = 0;
};

}  // namespace fgqos::cpu
