/// \file core.hpp
/// \brief In-order CPU cores with private L1s behind a shared L2 and one
///        AXI master port (the application-processor cluster of the SoC).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "axi/interconnect.hpp"
#include "cpu/kernel.hpp"
#include "mem/cache.hpp"
#include "mem/mshr.hpp"
#include "sim/histogram.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"

namespace fgqos::cpu {

class CpuCluster;

/// Per-core configuration.
struct CoreConfig {
  std::string name = "core";
  mem::CacheConfig l1{"l1", 32 * 1024, 64, 4};
  std::uint32_t l1_hit_cycles = 2;
  std::uint32_t l2_hit_cycles = 14;
  /// 0 = run forever; otherwise the core halts after this many kernel
  /// iterations.
  std::uint64_t max_iterations = 0;
  std::uint64_t rng_seed = 1;
};

/// Per-core statistics.
struct CoreStats {
  std::uint64_t steps_done = 0;
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
  std::uint64_t iterations = 0;
  std::uint64_t stall_resource_cycles = 0;  ///< cycles blocked on MSHR/port
  sim::Histogram iteration_ps;              ///< per-iteration wall time
  sim::TimePs finished_at = sim::kTimeNever;
};

/// One in-order core executing a Kernel.
class CpuCore final : public sim::Clocked {
 public:
  CpuCore(CpuCluster& cluster, CoreConfig cfg, std::unique_ptr<Kernel> kernel);

  [[nodiscard]] const CoreConfig& config() const { return cfg_; }
  [[nodiscard]] const CoreStats& stats() const { return stats_; }
  [[nodiscard]] const mem::Cache& l1() const { return l1_; }
  [[nodiscard]] bool finished() const { return finished_; }
  [[nodiscard]] Kernel& kernel() { return *kernel_; }

  /// Replaces the kernel and restarts execution (counters keep running).
  void set_kernel(std::unique_ptr<Kernel> kernel);

  /// Restarts iteration counting (e.g. after a warm-up phase): clears
  /// iteration stats, keeps the caches warm.
  void restart_measurement(std::uint64_t max_iterations);

  bool tick(sim::Cycles cycle) override;

  /// Called by the cluster when a line this core blocks on has arrived.
  void on_line_filled(axi::Addr line_addr);

 private:
  enum class State : std::uint8_t {
    kNeedStep,   ///< fetch the next kernel step
    kTasks,      ///< issuing L2/memory tasks of the current step
    kWaitFill,   ///< blocked on a line fill
    kFinished,
  };
  struct Task {
    axi::Addr line_addr = 0;
    bool is_victim_wb = false;  ///< dirty L1 victim heading to L2/memory
    bool is_write = false;      ///< demand direction (dirty-fill for L2)
    bool blocking = false;      ///< wait for fill completion
  };

  void begin_step(const KernelStep& step);
  void finish_step();
  bool process_task(sim::TimePs now);

  CpuCluster& cluster_;
  CoreConfig cfg_;
  std::unique_ptr<Kernel> kernel_;
  sim::Xoshiro256 rng_;
  mem::Cache l1_;
  CoreStats stats_;

  State state_ = State::kNeedStep;
  std::uint32_t compute_left_ = 0;
  std::deque<Task> tasks_;
  bool step_ends_iteration_ = false;
  axi::Addr wait_line_ = 0;
  bool finished_ = false;
  sim::TimePs iteration_start_ = 0;
  bool iteration_open_ = false;
};

/// Cluster-level configuration.
struct ClusterConfig {
  std::string name = "apu";
  mem::CacheConfig l2{"l2", 1024 * 1024, 64, 16};
  std::size_t mshr_entries = 16;
  std::size_t writeback_queue = 16;
  /// Next-line prefetch degree on L2 demand misses (0 = off). Prefetches
  /// use spare MSHRs/port slots and never block a demand access.
  std::uint32_t prefetch_degree = 0;
};

/// The cluster: shared L2, shared MSHRs, one AXI master port, a writeback
/// pump, and any number of cores.
class CpuCluster final : public sim::Clocked {
 public:
  /// \param port the cluster's AXI master port (created by the caller on
  ///        the interconnect; must outlive the cluster).
  CpuCluster(sim::Simulator& sim, const sim::ClockDomain& clk,
             ClusterConfig cfg, axi::MasterPort& port);

  /// Adds a core executing \p kernel. Returns a stable reference.
  CpuCore& add_core(CoreConfig cfg, std::unique_ptr<Kernel> kernel);

  [[nodiscard]] std::size_t core_count() const { return cores_.size(); }
  [[nodiscard]] CpuCore& core(std::size_t i) { return *cores_.at(i); }
  [[nodiscard]] const mem::Cache& l2() const { return l2_; }
  [[nodiscard]] axi::MasterPort& port() { return *port_; }
  [[nodiscard]] const ClusterConfig& config() const { return cfg_; }
  [[nodiscard]] const mem::MshrFile& mshr() const { return mshr_; }
  /// Prefetches issued so far (only counts lines actually fetched).
  [[nodiscard]] std::uint64_t prefetches_issued() const {
    return prefetches_issued_;
  }

  /// True when every core with a bounded iteration budget has halted.
  [[nodiscard]] bool all_finished() const;

  // --- core-facing interface ----------------------------------------------

  /// Outcome of an L2-side access attempt.
  enum class L2Result : std::uint8_t {
    kHit,    ///< serviced by the L2 (cost: l2_hit_cycles)
    kMiss,   ///< memory read issued or merged; completion will follow
    kStall,  ///< out of MSHRs / port slots / writeback space; retry
  };
  L2Result l2_access(axi::Addr line_addr, bool is_write);

  /// Retires a dirty L1 victim: marks the L2 copy dirty on hit, otherwise
  /// sends the line straight to the memory writeback queue (no allocate).
  /// Returns false when the writeback queue is full (retry).
  bool writeback_victim(axi::Addr line_addr);

  /// Queues a line writeback straight to memory (L1 victim that missed L2
  /// or dirty L2 victim). False when the queue is full.
  bool enqueue_writeback(axi::Addr line_addr);

  /// Registers \p core to be woken when \p line_addr arrives.
  void wait_on(axi::Addr line_addr, CpuCore& core);

  bool tick(sim::Cycles cycle) override;

 private:
  void on_port_completion(const axi::Transaction& txn);
  void issue_prefetches(axi::Addr demand_line);

  std::uint64_t prefetches_issued_ = 0;
  ClusterConfig cfg_;
  axi::MasterPort* port_;
  mem::Cache l2_;
  mem::MshrFile mshr_;
  std::deque<axi::Addr> writeback_q_;
  std::unordered_map<axi::Addr, std::vector<CpuCore*>> waiters_;
  std::vector<std::unique_ptr<CpuCore>> cores_;
};

}  // namespace fgqos::cpu
