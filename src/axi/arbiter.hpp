/// \file arbiter.hpp
/// \brief Grant arbiters for the interconnect: RR, priority, weighted RR.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/time.hpp"

namespace fgqos::axi {

/// Chooses which eligible master is granted in a given cycle.
class Arbiter {
 public:
  virtual ~Arbiter() = default;
  /// \param eligible one flag per master id; true = has a grantable line.
  /// \return the chosen master id, or -1 when none is eligible.
  virtual int pick(const std::vector<bool>& eligible, sim::TimePs now) = 0;
  /// Human-readable policy name for reports.
  [[nodiscard]] virtual const char* policy_name() const = 0;
};

/// Classic rotating-priority round robin: fair at line granularity.
class RoundRobinArbiter final : public Arbiter {
 public:
  int pick(const std::vector<bool>& eligible, sim::TimePs now) override;
  [[nodiscard]] const char* policy_name() const override { return "rr"; }

 private:
  std::size_t next_ = 0;
};

/// Strict priority by a static per-master level (higher wins); equal
/// levels fall back to round robin. Models AXI QoS-aware fabric arbitration.
class FixedPriorityArbiter final : public Arbiter {
 public:
  /// \param priority one level per master id.
  explicit FixedPriorityArbiter(std::vector<int> priority);
  int pick(const std::vector<bool>& eligible, sim::TimePs now) override;
  [[nodiscard]] const char* policy_name() const override { return "priority"; }

 private:
  std::vector<int> priority_;
  std::size_t rr_next_ = 0;
};

/// Deficit-weighted round robin: long-run grant shares proportional to
/// weights while staying work-conserving.
class WeightedRRArbiter final : public Arbiter {
 public:
  /// \param weights one positive weight per master id.
  explicit WeightedRRArbiter(std::vector<std::uint32_t> weights);
  int pick(const std::vector<bool>& eligible, sim::TimePs now) override;
  [[nodiscard]] const char* policy_name() const override { return "wrr"; }

 private:
  std::vector<std::uint32_t> weights_;
  std::vector<std::int64_t> credit_;
  std::size_t rr_next_ = 0;
};

}  // namespace fgqos::axi
