/// \file types.hpp
/// \brief Basic identifiers and enums of the AXI-like fabric model.
#pragma once

#include <cstdint>

namespace fgqos::axi {

/// Index of a master port within one interconnect (dense, 0-based).
using MasterId = std::uint16_t;

/// Globally unique transaction id (monotonic per interconnect).
using TxnId = std::uint64_t;

/// Physical byte address.
using Addr = std::uint64_t;

/// Transfer direction, AXI read or write channel.
enum class Dir : std::uint8_t { kRead = 0, kWrite = 1 };

/// AXI AxQOS-style 4-bit priority; larger is more important.
using QosValue = std::uint8_t;
inline constexpr QosValue kQosBestEffort = 0;
inline constexpr QosValue kQosCritical = 15;

/// Returns "R" or "W" for logs and stats names.
constexpr const char* dir_name(Dir d) {
  return d == Dir::kRead ? "R" : "W";
}

}  // namespace fgqos::axi
