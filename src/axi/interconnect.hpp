/// \file interconnect.hpp
/// \brief Crossbar connecting master ports to the memory controller.
///
/// Each cycle of its clock domain the interconnect arbitrates among master
/// ports with grantable lines and forwards up to issue_width lines to the
/// downstream slave (the DRAM controller). It also implements the response
/// path: when the controller reports the last line of a burst done, the
/// interconnect delivers the completion to the issuing port after that
/// port's response latency.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "axi/arbiter.hpp"
#include "axi/port.hpp"
#include "axi/transaction.hpp"
#include "sim/pool.hpp"
#include "sim/simulator.hpp"

namespace fgqos::axi {

/// Downstream request consumer (implemented by dram::Controller).
class SlaveIf {
 public:
  virtual ~SlaveIf() = default;
  /// May a line be enqueued this cycle? Must be side-effect free.
  [[nodiscard]] virtual bool can_accept(const LineRequest& line,
                                        sim::TimePs now) const = 0;
  /// Enqueues the line. Pre: can_accept() returned true this cycle.
  virtual void accept(LineRequest line, sim::TimePs now) = 0;
};

/// At what granularity the crossbar switches between masters.
enum class ArbGranularity : std::uint8_t {
  /// Re-arbitrate every line: fine interleaving (ideal crossbar).
  kLine,
  /// Stick with a master until its whole burst has been forwarded; while
  /// the burst is head-of-line blocked at the slave, other masters wait
  /// (store-and-forward bridge behaviour — long DMA bursts then delay the
  /// CPU considerably more, an interference amplifier real fabrics show).
  kTransaction,
};

/// Interconnect configuration.
struct InterconnectConfig {
  std::string name = "xbar";
  /// Lines forwarded per interconnect cycle (crossbar issue width).
  std::size_t issue_width = 2;
  ArbGranularity granularity = ArbGranularity::kLine;
};

/// The crossbar. Owns its master ports; the slave is wired externally.
class Interconnect final : public sim::Clocked, public ResponseSink {
 public:
  Interconnect(sim::Simulator& sim, const sim::ClockDomain& clk,
               InterconnectConfig cfg);

  /// Creates a new master port. Must be called before the simulation runs.
  MasterPort& add_master(MasterPortConfig cfg);

  /// Wires the downstream slave (exactly one; required before running).
  void set_slave(SlaveIf& slave) { slave_ = &slave; }

  /// Replaces the arbitration policy (default: round robin).
  void set_arbiter(std::unique_ptr<Arbiter> arb);

  /// Wires the interference-attribution engine into the crossbar and all
  /// its ports (nullptr disables; the default). When enabled, every
  /// crossbar cycle classifies why each waiting head could not be granted
  /// and charges the elapsed slice to the responsible master.
  void set_attribution(telemetry::AttributionEngine* engine);

  /// Fault seam on the response path: consulted once per finished line in
  /// line_done(); a non-kOkay verdict corrupts that line's response and
  /// the transaction carries the worst per-line response back to the
  /// master. Empty function (the default) means a perfect memory path.
  using ResponseFaultFn = std::function<Resp(const LineRequest&, sim::TimePs)>;
  void set_response_fault(ResponseFaultFn fn) {
    response_fault_ = std::move(fn);
  }

  [[nodiscard]] std::size_t master_count() const { return ports_.size(); }
  [[nodiscard]] MasterPort& master(std::size_t i) { return *ports_.at(i); }
  [[nodiscard]] const MasterPort& master(std::size_t i) const {
    return *ports_.at(i);
  }
  [[nodiscard]] const InterconnectConfig& config() const { return cfg_; }

  /// Total bytes granted across all ports.
  [[nodiscard]] std::uint64_t total_bytes_granted() const;

  // --- internal wiring ----------------------------------------------------

  /// Called by ports when new work arrives; wakes the crossbar.
  void notify_work(sim::TimePs ready_at);

  /// Next transaction id (unique per interconnect).
  TxnId next_txn_id() { return ++txn_seq_; }

  /// Arena for in-flight transactions: ports create() on issue and
  /// destroy() on completion, so the per-burst hot path never touches the
  /// global allocator.
  [[nodiscard]] sim::ObjectPool<Transaction>& txn_pool() { return txn_pool_; }

  bool tick(sim::Cycles cycle) override;
  void line_done(const LineRequest& line, sim::TimePs now) override;

 private:
  /// Per-cycle blame pass: charges every port whose head waited this
  /// cycle. \p first_granted is the first master granted this tick (-1
  /// when none) — the one that actually beat the waiters to the fabric.
  void attribution_pass(sim::TimePs now, int first_granted);

  InterconnectConfig cfg_;
  std::vector<std::unique_ptr<MasterPort>> ports_;
  std::unique_ptr<Arbiter> arbiter_;
  sim::ObjectPool<Transaction> txn_pool_;
  std::uint32_t prof_tag_deliver_ = 0;  ///< host-profiler tag, axi.deliver
  SlaveIf* slave_ = nullptr;
  TxnId txn_seq_ = 0;
  std::vector<bool> eligible_;  ///< scratch, sized to master count
  int locked_master_ = -1;      ///< kTransaction: burst in progress
  telemetry::AttributionEngine* attr_ = nullptr;
  ResponseFaultFn response_fault_;
  /// Master whose line most recently entered the slave; the default blame
  /// target when a grantable head stalls with no grant this cycle.
  MasterId last_accepted_master_ = telemetry::kNoOwner;
};

}  // namespace fgqos::axi
