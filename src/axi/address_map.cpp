#include "axi/address_map.hpp"

#include <algorithm>

#include "util/config_error.hpp"

namespace fgqos::axi {

void AddressMap::add_region(std::string name, Addr base, std::uint64_t size,
                            std::size_t slave_index) {
  config_check(size > 0, "AddressMap: region '" + name + "' has zero size");
  config_check(base + size > base,
               "AddressMap: region '" + name + "' wraps the address space");
  for (const auto& r : regions_) {
    const bool disjoint = base + size <= r.base || r.base + r.size <= base;
    config_check(disjoint, "AddressMap: region '" + name + "' overlaps '" +
                               r.name + "'");
  }
  Region reg{std::move(name), base, size, slave_index};
  auto it = std::lower_bound(
      regions_.begin(), regions_.end(), reg,
      [](const Region& a, const Region& b) { return a.base < b.base; });
  regions_.insert(it, std::move(reg));
}

std::optional<Region> AddressMap::lookup(Addr a) const {
  auto it = std::upper_bound(
      regions_.begin(), regions_.end(), a,
      [](Addr addr, const Region& r) { return addr < r.base; });
  if (it == regions_.begin()) {
    return std::nullopt;
  }
  --it;
  if (it->contains(a)) {
    return *it;
  }
  return std::nullopt;
}

std::optional<Region> AddressMap::lookup_range(Addr a,
                                               std::uint64_t bytes) const {
  if (bytes == 0) {
    return std::nullopt;
  }
  auto r = lookup(a);
  if (!r || !r->contains(a + bytes - 1)) {
    return std::nullopt;
  }
  return r;
}

}  // namespace fgqos::axi
