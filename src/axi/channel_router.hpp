/// \file channel_router.hpp
/// \brief Address-interleaved routing to multiple memory channels.
///
/// Larger devices of the family (Versal, MPSoC with PL-DDR) expose more
/// than one DRAM channel; lines are interleaved across channels on a
/// configurable granularity. The router implements SlaveIf towards the
/// crossbar and fans out to one Controller per channel; responses flow
/// back through the shared ResponseSink unchanged (the LineRequest keeps
/// its transaction pointer).
#pragma once

#include <cstdint>
#include <vector>

#include "axi/interconnect.hpp"
#include "axi/transaction.hpp"

namespace fgqos::axi {

/// The router. Channels are wired at construction and must outlive it.
class ChannelRouter final : public SlaveIf {
 public:
  /// \param channels    one SlaveIf per channel (>= 1)
  /// \param stride_bytes interleave granularity; must be a power of two
  ///        and at least the line size in use.
  ChannelRouter(std::vector<SlaveIf*> channels, std::uint64_t stride_bytes);

  [[nodiscard]] std::size_t channel_count() const { return channels_.size(); }
  [[nodiscard]] std::uint64_t stride_bytes() const { return stride_; }

  /// Channel index for an address (exposed for tests and stats).
  [[nodiscard]] std::size_t route(Addr addr) const {
    return (addr / stride_) % channels_.size();
  }

  /// Lines routed per channel so far.
  [[nodiscard]] std::uint64_t routed(std::size_t channel) const {
    return counts_.at(channel);
  }

  // SlaveIf
  [[nodiscard]] bool can_accept(const LineRequest& line,
                                sim::TimePs now) const override;
  void accept(LineRequest line, sim::TimePs now) override;

 private:
  std::vector<SlaveIf*> channels_;
  std::uint64_t stride_;
  std::vector<std::uint64_t> counts_;
};

}  // namespace fgqos::axi
