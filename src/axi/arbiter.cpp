#include "axi/arbiter.hpp"

#include <algorithm>

#include "util/config_error.hpp"

namespace fgqos::axi {

int RoundRobinArbiter::pick(const std::vector<bool>& eligible,
                            sim::TimePs /*now*/) {
  const std::size_t n = eligible.size();
  if (n == 0) {
    return -1;
  }
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t i = (next_ + k) % n;
    if (eligible[i]) {
      next_ = (i + 1) % n;
      return static_cast<int>(i);
    }
  }
  return -1;
}

FixedPriorityArbiter::FixedPriorityArbiter(std::vector<int> priority)
    : priority_(std::move(priority)) {
  config_check(!priority_.empty(), "FixedPriorityArbiter: empty priority set");
}

int FixedPriorityArbiter::pick(const std::vector<bool>& eligible,
                               sim::TimePs /*now*/) {
  config_check(eligible.size() == priority_.size(),
               "FixedPriorityArbiter: master count mismatch");
  const std::size_t n = eligible.size();
  int best_level = INT32_MIN;
  int best = -1;
  // Scan in rotating order so equal-priority masters share fairly.
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t i = (rr_next_ + k) % n;
    if (eligible[i] && priority_[i] > best_level) {
      best_level = priority_[i];
      best = static_cast<int>(i);
    }
  }
  if (best >= 0) {
    rr_next_ = (static_cast<std::size_t>(best) + 1) % n;
  }
  return best;
}

WeightedRRArbiter::WeightedRRArbiter(std::vector<std::uint32_t> weights)
    : weights_(std::move(weights)), credit_(weights_.size(), 0) {
  config_check(!weights_.empty(), "WeightedRRArbiter: empty weight set");
  for (auto w : weights_) {
    config_check(w > 0, "WeightedRRArbiter: weights must be positive");
  }
}

int WeightedRRArbiter::pick(const std::vector<bool>& eligible,
                            sim::TimePs /*now*/) {
  config_check(eligible.size() == weights_.size(),
               "WeightedRRArbiter: master count mismatch");
  const std::size_t n = eligible.size();
  bool any = false;
  for (std::size_t i = 0; i < n; ++i) {
    any = any || eligible[i];
  }
  if (!any) {
    return -1;
  }
  // Deficit scheme: every arbitration adds each eligible master its
  // weight; the winner pays back exactly the credit added this round, so
  // the books balance and long-run grant shares follow the weight ratios
  // of whatever subset is competing.
  std::int64_t best_credit = INT64_MIN;
  std::int64_t round_sum = 0;
  int best = -1;
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t i = (rr_next_ + k) % n;
    if (!eligible[i]) {
      continue;
    }
    credit_[i] += weights_[i];
    round_sum += weights_[i];
    if (credit_[i] > best_credit) {
      best_credit = credit_[i];
      best = static_cast<int>(i);
    }
  }
  if (best >= 0) {
    credit_[static_cast<std::size_t>(best)] -= round_sum;
    rr_next_ = (static_cast<std::size_t>(best) + 1) % n;
  }
  return best;
}

}  // namespace fgqos::axi
