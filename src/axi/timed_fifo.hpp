/// \file timed_fifo.hpp
/// \brief Bounded FIFO whose entries become visible after a latency.
///
/// Models a pipelined channel: an item pushed at time T with latency L can
/// be popped at or after T+L. Capacity gives natural backpressure.
#pragma once

#include <deque>
#include <optional>

#include "sim/time.hpp"
#include "util/assert.hpp"

namespace fgqos::axi {

template <typename T>
class TimedFifo {
 public:
  /// \param capacity   maximum occupancy (visible + in-flight)
  /// \param latency_ps delay before a pushed item becomes poppable
  TimedFifo(std::size_t capacity, sim::TimePs latency_ps)
      : capacity_(capacity), latency_ps_(latency_ps) {
    FGQOS_ASSERT(capacity_ > 0, "TimedFifo: capacity must be > 0");
  }

  [[nodiscard]] bool full() const { return items_.size() >= capacity_; }
  [[nodiscard]] bool empty() const { return items_.empty(); }
  [[nodiscard]] std::size_t size() const { return items_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] sim::TimePs latency_ps() const { return latency_ps_; }

  /// Pushes \p item at time \p now. Pre: !full().
  void push(T item, sim::TimePs now) {
    FGQOS_ASSERT(!full(), "TimedFifo: push on full fifo");
    items_.push_back(Slot{now + latency_ps_, std::move(item)});
  }

  /// True when the head item is visible at \p now.
  [[nodiscard]] bool can_pop(sim::TimePs now) const {
    return !items_.empty() && items_.front().ready_at <= now;
  }

  /// Time the head item becomes visible; kTimeNever when empty.
  [[nodiscard]] sim::TimePs head_ready_at() const {
    return items_.empty() ? sim::kTimeNever : items_.front().ready_at;
  }

  /// Read-only view of the head. Pre: can_pop(now).
  [[nodiscard]] const T& front(sim::TimePs now) const {
    FGQOS_ASSERT(can_pop(now), "TimedFifo: front not ready");
    return items_.front().item;
  }

  /// Removes and returns the head. Pre: can_pop(now).
  T pop(sim::TimePs now) {
    FGQOS_ASSERT(can_pop(now), "TimedFifo: pop not ready");
    T item = std::move(items_.front().item);
    items_.pop_front();
    return item;
  }

 private:
  struct Slot {
    sim::TimePs ready_at;
    T item;
  };
  std::size_t capacity_;
  sim::TimePs latency_ps_;
  std::deque<Slot> items_;
};

}  // namespace fgqos::axi
