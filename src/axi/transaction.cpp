#include "axi/transaction.hpp"

// Transaction and LineRequest are plain data; this TU anchors the module.
namespace fgqos::axi {}
