/// \file address_map.hpp
/// \brief Physical address decoding into named slave regions.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "axi/types.hpp"

namespace fgqos::axi {

/// One decoded target region.
struct Region {
  std::string name;
  Addr base = 0;
  std::uint64_t size = 0;
  std::size_t slave_index = 0;

  [[nodiscard]] bool contains(Addr a) const {
    return a >= base && a - base < size;
  }
  [[nodiscard]] Addr end() const { return base + size; }
};

/// Ordered, non-overlapping set of regions with O(log n) lookup.
class AddressMap {
 public:
  /// Adds a region. Throws ConfigError on zero size or overlap with an
  /// existing region.
  void add_region(std::string name, Addr base, std::uint64_t size,
                  std::size_t slave_index);

  /// Region containing \p a, or nullopt when unmapped.
  [[nodiscard]] std::optional<Region> lookup(Addr a) const;

  /// Region containing the whole range [a, a+bytes), or nullopt when the
  /// range is unmapped or straddles a region boundary.
  [[nodiscard]] std::optional<Region> lookup_range(Addr a,
                                                   std::uint64_t bytes) const;

  [[nodiscard]] const std::vector<Region>& regions() const { return regions_; }

 private:
  std::vector<Region> regions_;  ///< kept sorted by base
};

}  // namespace fgqos::axi
