/// \file transaction.hpp
/// \brief Burst transaction and the line-sized requests it splits into.
#pragma once

#include <cstdint>
#include <functional>

#include "axi/types.hpp"
#include "sim/time.hpp"

namespace fgqos::axi {

/// AXI response code carried back to the issuing master. Ordered by
/// severity so the worst per-line response wins for the whole burst.
enum class Resp : std::uint8_t {
  kOkay = 0,   ///< normal completion
  kSlverr = 1, ///< slave error (the target signalled a fault)
  kDecerr = 2, ///< decode error (no slave claimed the address)
};

[[nodiscard]] constexpr const char* resp_name(Resp r) {
  switch (r) {
    case Resp::kOkay:
      return "okay";
    case Resp::kSlverr:
      return "slverr";
    case Resp::kDecerr:
      return "decerr";
  }
  return "?";
}

/// One AXI burst as issued by a master. The interconnect splits it into
/// line-sized LineRequests for the memory controller; the transaction
/// completes when the last line completes (plus response latency).
struct Transaction {
  TxnId id = 0;
  MasterId master = 0;
  Dir dir = Dir::kRead;
  Addr addr = 0;
  std::uint32_t bytes = 0;        ///< total payload of the burst
  QosValue qos = kQosBestEffort;
  std::uint64_t user = 0;         ///< opaque tag for the issuing client
  Resp resp = Resp::kOkay;        ///< worst per-line response of the burst

  sim::TimePs created = 0;        ///< time the master issued it
  sim::TimePs granted = 0;        ///< time the interconnect first serviced it
  sim::TimePs completed = 0;      ///< time the response reached the master

  // Memory-system lifecycle stamps (telemetry): filled by the DRAM
  // controller as the transaction's lines move through it. 0 = not yet
  // reached (time-0 arrivals are indistinguishable, which is harmless for
  // latency attribution).
  sim::TimePs dram_enqueued = 0;      ///< first line arrived at a controller
  sim::TimePs dram_service_start = 0; ///< first CAS data burst began
  sim::TimePs dram_service_end = 0;   ///< last CAS data burst finished

  std::uint32_t lines_total = 0;  ///< line requests this burst splits into
  std::uint32_t lines_left = 0;   ///< still outstanding in the memory system

  // Interference-attribution conservation ledger (telemetry): the wait
  // time the hooks measured from lifecycle stamps vs. the picoseconds the
  // AttributionEngine actually charged to blame-matrix cells. Equal at
  // completion when the bookkeeping is sound (FGQOS_DEBUG_ASSERT); any
  // difference feeds the telemetry.attribution.residual_ps gauge.
  sim::TimePs attr_measured_ps = 0;
  sim::TimePs attr_charged_ps = 0;

  /// End-to-end latency; valid once completed.
  [[nodiscard]] sim::TimePs latency() const { return completed - created; }
};

/// Completion callback type delivered to the issuing client.
using CompletionFn = std::function<void(const Transaction&)>;

/// Line-granular request as seen by the memory controller.
struct LineRequest {
  Transaction* txn = nullptr;
  Addr addr = 0;
  std::uint32_t bytes = 0;
  bool is_write = false;
  bool last_of_txn = false;
  sim::TimePs enqueued = 0;       ///< arrival time at the controller
};

/// Sink through which the memory controller reports finished lines.
class ResponseSink {
 public:
  virtual ~ResponseSink() = default;
  /// Called exactly once per LineRequest, at data-burst completion time.
  virtual void line_done(const LineRequest& line, sim::TimePs now) = 0;
};

}  // namespace fgqos::axi
