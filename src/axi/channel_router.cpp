#include "axi/channel_router.hpp"

#include "util/config_error.hpp"

namespace fgqos::axi {

ChannelRouter::ChannelRouter(std::vector<SlaveIf*> channels,
                             std::uint64_t stride_bytes)
    : channels_(std::move(channels)), stride_(stride_bytes) {
  config_check(!channels_.empty(), "ChannelRouter: needs >= 1 channel");
  for (const auto* c : channels_) {
    config_check(c != nullptr, "ChannelRouter: null channel");
  }
  config_check(stride_ > 0 && (stride_ & (stride_ - 1)) == 0,
               "ChannelRouter: stride must be a power of two");
  counts_.assign(channels_.size(), 0);
}

bool ChannelRouter::can_accept(const LineRequest& line,
                               sim::TimePs now) const {
  return channels_[route(line.addr)]->can_accept(line, now);
}

void ChannelRouter::accept(LineRequest line, sim::TimePs now) {
  const std::size_t ch = route(line.addr);
  ++counts_[ch];
  channels_[ch]->accept(line, now);
}

}  // namespace fgqos::axi
