#include "axi/port.hpp"

#include <algorithm>

#include "axi/interconnect.hpp"
#include "util/assert.hpp"
#include "util/config_error.hpp"

namespace fgqos::axi {

MasterPort::MasterPort(Interconnect& owner, MasterId id, MasterPortConfig cfg)
    : owner_(owner),
      id_(id),
      cfg_(std::move(cfg)),
      queue_(cfg_.request_queue_depth, cfg_.request_latency_ps),
      ps_per_byte_(1e12 / cfg_.port_bandwidth_bps) {
  config_check(cfg_.port_bandwidth_bps > 0,
               "MasterPort '" + cfg_.name + "': bandwidth must be > 0");
  config_check(cfg_.line_bytes > 0 && (cfg_.line_bytes & (cfg_.line_bytes - 1)) == 0,
               "MasterPort '" + cfg_.name + "': line_bytes must be a power of two");
  config_check(cfg_.max_outstanding_reads > 0 && cfg_.max_outstanding_writes > 0,
               "MasterPort '" + cfg_.name + "': outstanding limits must be > 0");
}

bool MasterPort::can_issue(Dir dir) const {
  if (queue_.full()) {
    return false;
  }
  if (dir == Dir::kRead) {
    return out_reads_ < cfg_.max_outstanding_reads;
  }
  return out_writes_ < cfg_.max_outstanding_writes;
}

bool MasterPort::issue(Dir dir, Addr addr, std::uint32_t bytes,
                       std::uint64_t user) {
  FGQOS_ASSERT(bytes > 0, "MasterPort::issue: empty transaction");
  if (!can_issue(dir)) {
    stats_.issue_rejected.add();
    return false;
  }
  const sim::TimePs now = owner_.simulator().now();
  Transaction* txn = owner_.txn_pool().create();
  txn->id = owner_.next_txn_id();
  txn->master = id_;
  txn->dir = dir;
  txn->addr = addr;
  txn->bytes = bytes;
  txn->qos = cfg_.qos;
  txn->user = user;
  txn->created = now;
  // Line split: [addr, addr+bytes) cut on line_bytes boundaries.
  const Addr first_line = addr & ~static_cast<Addr>(cfg_.line_bytes - 1);
  const Addr last_line =
      (addr + bytes - 1) & ~static_cast<Addr>(cfg_.line_bytes - 1);
  txn->lines_total =
      static_cast<std::uint32_t>((last_line - first_line) / cfg_.line_bytes + 1);
  txn->lines_left = txn->lines_total;

  ++in_flight_;
  if (dir == Dir::kRead) {
    ++out_reads_;
  } else {
    ++out_writes_;
  }
  stats_.txns_issued.add();
  for (auto* obs : observers_) {
    obs->on_issue(*txn, now);
  }
  const bool becomes_head = queue_.empty();
  queue_.push(txn, now);
  if (attr_ != nullptr && becomes_head) {
    // Fresh head: its head-of-line wait starts the instant it turns
    // visible (now + request latency). Charged by the interconnect's
    // per-cycle attribution pass, closed in commit_grant().
    attr_->begin_wait(attr_wait_, queue_.head_ready_at());
  }
  owner_.notify_work(queue_.head_ready_at());
  return true;
}

std::uint32_t MasterPort::head_line_bytes(const Transaction& txn) const {
  // Bytes of the current line actually covered by the burst (first and last
  // lines may be partial).
  const Addr line_base =
      (txn.addr + head_offset_) & ~static_cast<Addr>(cfg_.line_bytes - 1);
  const Addr cur = txn.addr + head_offset_;
  const Addr line_end = line_base + cfg_.line_bytes;
  const Addr burst_end = txn.addr + txn.bytes;
  return static_cast<std::uint32_t>(std::min<Addr>(line_end, burst_end) - cur);
}

bool MasterPort::has_grantable_line(sim::TimePs now) const {
  return grant_block_reason(now) == BlockReason::kNone;
}

MasterPort::BlockReason MasterPort::grant_block_reason(
    sim::TimePs now) const {
  if (!queue_.can_pop(now)) {
    return BlockReason::kEmpty;
  }
  if (data_free_at_ > now) {
    return BlockReason::kRateLimit;
  }
  const LineRequest line = peek_line(now);
  for (const auto* gate : gates_) {
    if (!gate->allow(line, now)) {
      return BlockReason::kGate;
    }
  }
  return BlockReason::kNone;
}

bool MasterPort::has_pending_work() const {
  return !queue_.empty() || in_flight_ != 0;
}

LineRequest MasterPort::peek_line(sim::TimePs now) const {
  Transaction* txn = queue_.front(now);
  LineRequest line;
  line.txn = txn;
  line.addr = (txn->addr + head_offset_) & ~static_cast<Addr>(cfg_.line_bytes - 1);
  line.bytes = head_line_bytes(*txn);
  line.is_write = txn->dir == Dir::kWrite;
  line.last_of_txn = (head_offset_ + line.bytes >= txn->bytes);
  line.enqueued = now;
  return line;
}

LineRequest MasterPort::commit_grant(sim::TimePs now) {
  LineRequest line = peek_line(now);
  Transaction* txn = line.txn;
  if (head_offset_ == 0) {
    txn->granted = now;
  }
  if (attr_ != nullptr && attr_wait_.open) {
    if (line.last_of_txn) {
      // The burst leaves the fabric stage: close its head-of-line wait
      // (final slice goes to the last observed blocker) and record the
      // independently measured wait for the conservation check.
      attr_->end_wait(attr_wait_, id_, txn->bytes, now, txn);
      txn->attr_measured_ps += now - (txn->created + cfg_.request_latency_ps);
    } else {
      // Intermediate line: settle the slice up to this grant against the
      // last observed blocker; the wait stays open for the next line.
      attr_->charge(attr_wait_, id_, attr_wait_.last_aggressor,
                    attr_wait_.last_cause, now, txn);
    }
  }
  head_offset_ += line.bytes;
  if (line.last_of_txn) {
    FGQOS_ASSERT(head_offset_ == txn->bytes, "line split accounting broken");
    queue_.pop(now);
    head_offset_ = 0;
    if (attr_ != nullptr && !queue_.empty()) {
      // Successor becomes head. Any time it already spent visible behind
      // this burst is the victim's own queueing: charge it wholesale.
      const sim::TimePs visible = queue_.head_ready_at();
      if (visible < now) {
        attr_->charge_span(id_, id_, telemetry::Cause::kSelf, visible, now,
                           queue_.front(now));
      }
      attr_->begin_wait(attr_wait_, std::max(visible, now));
    }
  }
  // Port data-path occupancy: a granted line occupies the physical port for
  // bytes * ps_per_byte.
  const auto occupancy =
      static_cast<sim::TimePs>(static_cast<double>(line.bytes) * ps_per_byte_);
  data_free_at_ = now + occupancy;
  stats_.lines_granted.add();
  stats_.bytes_granted.add(line.bytes);
  if (line.is_write) {
    stats_.write_bytes.add(line.bytes);
  } else {
    stats_.read_bytes.add(line.bytes);
  }
  for (auto* gate : gates_) {
    gate->on_grant(line, now);
  }
  for (auto* obs : observers_) {
    obs->on_grant(line, now);
  }
  return line;
}

void MasterPort::complete_txn(Transaction& txn, sim::TimePs now) {
  txn.completed = now;
  if (txn.dir == Dir::kRead) {
    FGQOS_ASSERT(out_reads_ > 0, "read outstanding underflow");
    --out_reads_;
    stats_.read_latency.record(txn.latency());
  } else {
    FGQOS_ASSERT(out_writes_ > 0, "write outstanding underflow");
    --out_writes_;
    stats_.write_latency.record(txn.latency());
  }
  stats_.txns_completed.add();
  for (auto* obs : observers_) {
    obs->on_complete(txn, now);
  }
  if (attr_ != nullptr) {
    // Conservation bugcheck: every measured waited picosecond must have
    // been charged to exactly one blame cell (and nothing else).
    FGQOS_DEBUG_ASSERT(txn.attr_measured_ps == txn.attr_charged_ps,
                       "attribution conservation violated");
    const sim::TimePs d = txn.attr_measured_ps > txn.attr_charged_ps
                              ? txn.attr_measured_ps - txn.attr_charged_ps
                              : txn.attr_charged_ps - txn.attr_measured_ps;
    if (d != 0) [[unlikely]] {
      attr_->note_residual(d);
    }
  }
  // Deliver to the client last: it may immediately issue a new transaction
  // into the slot just released.
  const CompletionFn& fn = on_complete_;
  // Copy the transaction out before recycling so the callback sees stable
  // data (the pool may hand the slot to a transaction issued from fn).
  const Transaction snapshot = txn;
  FGQOS_ASSERT(in_flight_ > 0, "complete_txn without in-flight transaction");
  --in_flight_;
  owner_.txn_pool().destroy(&txn);
  if (fn) {
    fn(snapshot);
  }
}

void MasterPort::inject_stall(sim::TimePs duration) {
  const sim::TimePs now = owner_.simulator().now();
  data_free_at_ = std::max(data_free_at_, now + duration);
  stats_.fault_stalls.add();
  // Make sure the crossbar re-evaluates this port when the stall lifts.
  owner_.notify_work(data_free_at_);
}

void MasterPort::set_attribution(telemetry::AttributionEngine* engine) {
  FGQOS_ASSERT(engine == nullptr || queue_.empty(),
               "MasterPort::set_attribution: enable before issuing");
  attr_ = engine;
  attr_wait_ = telemetry::WaitState{};
}

}  // namespace fgqos::axi
