#include "axi/interconnect.hpp"

#include "util/assert.hpp"
#include "util/config_error.hpp"

namespace fgqos::axi {

Interconnect::Interconnect(sim::Simulator& sim, const sim::ClockDomain& clk,
                           InterconnectConfig cfg)
    : sim::Clocked(sim, clk, cfg.name),
      cfg_(std::move(cfg)),
      arbiter_(std::make_unique<RoundRobinArbiter>()) {
  config_check(cfg_.issue_width > 0, "Interconnect: issue_width must be > 0");
  prof_tag_deliver_ = sim.profile_tag("axi.deliver");
}

MasterPort& Interconnect::add_master(MasterPortConfig cfg) {
  const auto id = static_cast<MasterId>(ports_.size());
  ports_.push_back(std::make_unique<MasterPort>(*this, id, std::move(cfg)));
  eligible_.resize(ports_.size());
  return *ports_.back();
}

void Interconnect::set_arbiter(std::unique_ptr<Arbiter> arb) {
  FGQOS_ASSERT(arb != nullptr, "Interconnect: null arbiter");
  arbiter_ = std::move(arb);
}

std::uint64_t Interconnect::total_bytes_granted() const {
  std::uint64_t total = 0;
  for (const auto& p : ports_) {
    total += p->stats().bytes_granted.value();
  }
  return total;
}

void Interconnect::set_attribution(telemetry::AttributionEngine* engine) {
  attr_ = engine;
  last_accepted_master_ = telemetry::kNoOwner;
  for (const auto& p : ports_) {
    p->set_attribution(engine);
  }
}

void Interconnect::notify_work(sim::TimePs ready_at) { wake_at(ready_at); }

bool Interconnect::tick(sim::Cycles /*cycle*/) {
  FGQOS_ASSERT(slave_ != nullptr, "Interconnect: slave not wired");
  const sim::TimePs now = simulator().now();
  // Single exit: the grant loop only ever breaks (never returns) so the
  // end-of-tick attribution pass runs on every tick, including the
  // locked-burst stall paths.
  int first_granted = -1;
  bool hold = false;
  for (std::size_t grant = 0; grant < cfg_.issue_width && !hold; ++grant) {
    int pick = -1;
    if (locked_master_ >= 0) {
      // kTransaction: the burst in progress keeps the crossbar.
      MasterPort& p = *ports_[static_cast<std::size_t>(locked_master_)];
      switch (p.grant_block_reason(now)) {
        case MasterPort::BlockReason::kNone:
          if (!slave_->can_accept(p.peek_line(now), now)) {
            // Head-of-line blocked at the slave: hold everyone.
            hold = true;
          } else {
            pick = locked_master_;
          }
          break;
        case MasterPort::BlockReason::kRateLimit:
          // Transient pace gap within the burst: keep the lock, stall.
          hold = true;
          break;
        case MasterPort::BlockReason::kGate:
        case MasterPort::BlockReason::kEmpty:
          // The port withdrew (QoS gate shut the handshake): release so
          // a throttled burst cannot stall unrelated masters.
          locked_master_ = -1;
          break;
      }
      if (hold) {
        break;
      }
    }
    if (pick < 0) {
      bool any = false;
      for (std::size_t i = 0; i < ports_.size(); ++i) {
        bool ok = ports_[i]->has_grantable_line(now);
        if (ok) {
          // The slave must also have room for this specific line.
          ok = slave_->can_accept(ports_[i]->peek_line(now), now);
        }
        eligible_[i] = ok;
        any = any || ok;
      }
      if (!any) {
        break;
      }
      pick = arbiter_->pick(eligible_, now);
      if (pick < 0) {
        break;
      }
    }
    LineRequest line =
        ports_[static_cast<std::size_t>(pick)]->commit_grant(now);
    slave_->accept(line, now);
    if (attr_ != nullptr) {
      if (first_granted < 0) {
        first_granted = pick;
      }
      last_accepted_master_ = line.txn->master;
    }
    if (cfg_.granularity == ArbGranularity::kTransaction) {
      locked_master_ = line.last_of_txn ? -1 : pick;
    }
  }
  if (attr_ != nullptr) {
    attribution_pass(now, first_granted);
  }
  if (hold) {
    return true;
  }
  // Keep ticking while any port has queued or in-flight work; requests that
  // are currently gate-blocked still need periodic re-evaluation.
  for (const auto& p : ports_) {
    if (p->has_pending_work()) {
      return true;
    }
  }
  return false;
}

void Interconnect::attribution_pass(sim::TimePs now, int first_granted) {
  for (std::size_t i = 0; i < ports_.size(); ++i) {
    MasterPort& p = *ports_[i];
    telemetry::WaitState& w = p.attr_wait();
    if (!w.open || w.last > now) {
      continue;  // no head, or the head is not visible yet
    }
    const auto victim = static_cast<MasterId>(i);
    switch (p.grant_block_reason(now)) {
      case MasterPort::BlockReason::kEmpty:
        break;  // unreachable while the wait is open and started
      case MasterPort::BlockReason::kRateLimit:
      case MasterPort::BlockReason::kGate:
        // The port's own data-path pacing or its own QoS gate: self.
        attr_->charge(w, victim, victim, telemetry::Cause::kSelf, now,
                      p.attr_head(now));
        break;
      case MasterPort::BlockReason::kNone: {
        // Grantable but not granted: lost arbitration / issue width /
        // downstream backpressure. Blame whoever got the fabric instead.
        const MasterId aggressor =
            first_granted >= 0 ? static_cast<MasterId>(first_granted)
                               : last_accepted_master_;
        attr_->charge(w, victim, aggressor, telemetry::Cause::kFabricArb, now,
                      p.attr_head(now));
        break;
      }
    }
  }
}

void Interconnect::line_done(const LineRequest& line, sim::TimePs now) {
  Transaction* txn = line.txn;
  FGQOS_ASSERT(txn != nullptr && txn->lines_left > 0,
               "line_done: bad transaction state");
  if (response_fault_) {
    const Resp r = response_fault_(line, now);
    if (r > txn->resp) {
      txn->resp = r;
    }
  }
  --txn->lines_left;
  if (txn->lines_left > 0) {
    return;
  }
  MasterPort& port = *ports_.at(txn->master);
  const sim::TimePs deliver = now + port.config().response_latency_ps;
  simulator().schedule_at(
      deliver, [&port, txn, deliver]() { port.complete_txn(*txn, deliver); },
      prof_tag_deliver_);
}

}  // namespace fgqos::axi
