#include "axi/interconnect.hpp"

#include "util/assert.hpp"
#include "util/config_error.hpp"

namespace fgqos::axi {

Interconnect::Interconnect(sim::Simulator& sim, const sim::ClockDomain& clk,
                           InterconnectConfig cfg)
    : sim::Clocked(sim, clk, cfg.name),
      cfg_(std::move(cfg)),
      arbiter_(std::make_unique<RoundRobinArbiter>()) {
  config_check(cfg_.issue_width > 0, "Interconnect: issue_width must be > 0");
}

MasterPort& Interconnect::add_master(MasterPortConfig cfg) {
  const auto id = static_cast<MasterId>(ports_.size());
  ports_.push_back(std::make_unique<MasterPort>(*this, id, std::move(cfg)));
  eligible_.resize(ports_.size());
  return *ports_.back();
}

void Interconnect::set_arbiter(std::unique_ptr<Arbiter> arb) {
  FGQOS_ASSERT(arb != nullptr, "Interconnect: null arbiter");
  arbiter_ = std::move(arb);
}

std::uint64_t Interconnect::total_bytes_granted() const {
  std::uint64_t total = 0;
  for (const auto& p : ports_) {
    total += p->stats().bytes_granted.value();
  }
  return total;
}

void Interconnect::notify_work(sim::TimePs ready_at) { wake_at(ready_at); }

bool Interconnect::tick(sim::Cycles /*cycle*/) {
  FGQOS_ASSERT(slave_ != nullptr, "Interconnect: slave not wired");
  const sim::TimePs now = simulator().now();
  for (std::size_t grant = 0; grant < cfg_.issue_width; ++grant) {
    int pick = -1;
    if (locked_master_ >= 0) {
      // kTransaction: the burst in progress keeps the crossbar.
      MasterPort& p = *ports_[static_cast<std::size_t>(locked_master_)];
      switch (p.grant_block_reason(now)) {
        case MasterPort::BlockReason::kNone:
          if (!slave_->can_accept(p.peek_line(now), now)) {
            // Head-of-line blocked at the slave: hold everyone.
            return true;
          }
          pick = locked_master_;
          break;
        case MasterPort::BlockReason::kRateLimit:
          // Transient pace gap within the burst: keep the lock, stall.
          return true;
        case MasterPort::BlockReason::kGate:
        case MasterPort::BlockReason::kEmpty:
          // The port withdrew (QoS gate shut the handshake): release so
          // a throttled burst cannot stall unrelated masters.
          locked_master_ = -1;
          break;
      }
    }
    if (pick < 0) {
      bool any = false;
      for (std::size_t i = 0; i < ports_.size(); ++i) {
        bool ok = ports_[i]->has_grantable_line(now);
        if (ok) {
          // The slave must also have room for this specific line.
          ok = slave_->can_accept(ports_[i]->peek_line(now), now);
        }
        eligible_[i] = ok;
        any = any || ok;
      }
      if (!any) {
        break;
      }
      pick = arbiter_->pick(eligible_, now);
      if (pick < 0) {
        break;
      }
    }
    LineRequest line =
        ports_[static_cast<std::size_t>(pick)]->commit_grant(now);
    slave_->accept(line, now);
    if (cfg_.granularity == ArbGranularity::kTransaction) {
      locked_master_ = line.last_of_txn ? -1 : pick;
    }
  }
  // Keep ticking while any port has queued or in-flight work; requests that
  // are currently gate-blocked still need periodic re-evaluation.
  for (const auto& p : ports_) {
    if (p->has_pending_work()) {
      return true;
    }
  }
  return false;
}

void Interconnect::line_done(const LineRequest& line, sim::TimePs now) {
  Transaction* txn = line.txn;
  FGQOS_ASSERT(txn != nullptr && txn->lines_left > 0,
               "line_done: bad transaction state");
  --txn->lines_left;
  if (txn->lines_left > 0) {
    return;
  }
  MasterPort& port = *ports_.at(txn->master);
  const sim::TimePs deliver = now + port.config().response_latency_ps;
  simulator().schedule_at(deliver, [&port, txn, deliver]() {
    port.complete_txn(*txn, deliver);
  });
}

}  // namespace fgqos::axi
