/// \file port.hpp
/// \brief AXI master port: request queue, outstanding limits, QoS hooks.
///
/// A MasterPort is the attachment point for the paper's tightly-coupled QoS
/// blocks: TxnGate implementations (regulators, PREM arbitration) can stall
/// the port's handshake in the same cycle a grant would occur, and
/// TxnObserver implementations (bandwidth monitors) see every issue, grant
/// and completion with exact timestamps.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "axi/timed_fifo.hpp"
#include "axi/transaction.hpp"
#include "axi/types.hpp"
#include "sim/histogram.hpp"
#include "sim/stats.hpp"
#include "sim/time.hpp"
#include "telemetry/attribution.hpp"

namespace fgqos::axi {

class Interconnect;

/// Combinational gate consulted before each line grant. Implementations
/// must keep allow() free of side effects; state updates happen in
/// on_grant(), which is called in the same cycle as the grant (this is the
/// "tightly-coupled" property).
class TxnGate {
 public:
  virtual ~TxnGate() = default;
  /// May the next line of this port be granted at \p now?
  [[nodiscard]] virtual bool allow(const LineRequest& line,
                                   sim::TimePs now) const = 0;
  /// A line was granted at \p now; account for it.
  virtual void on_grant(const LineRequest& line, sim::TimePs now) = 0;
};

/// Passive observer of port activity (monitors, tracers).
class TxnObserver {
 public:
  virtual ~TxnObserver() = default;
  virtual void on_issue(const Transaction& txn, sim::TimePs now) = 0;
  virtual void on_grant(const LineRequest& line, sim::TimePs now) = 0;
  virtual void on_complete(const Transaction& txn, sim::TimePs now) = 0;
};

/// Static configuration of one master port.
struct MasterPortConfig {
  std::string name = "master";
  std::size_t max_outstanding_reads = 8;
  std::size_t max_outstanding_writes = 8;
  std::size_t request_queue_depth = 8;
  /// Peak data rate of the physical port (e.g. 128-bit @ 300 MHz
  /// = 4.8e9). Limits how fast lines can be granted on this port.
  double port_bandwidth_bps = 4.8e9;
  /// Master -> interconnect request path latency.
  sim::TimePs request_latency_ps = 10'000;   // 10 ns
  /// Memory-system completion -> master response path latency.
  sim::TimePs response_latency_ps = 10'000;  // 10 ns
  /// Line size used to split bursts for the memory controller.
  std::uint32_t line_bytes = 64;
  QosValue qos = kQosBestEffort;
  /// Marks the latency-critical port in reports.
  bool critical = false;
};

/// Aggregate statistics of one port.
struct PortStats {
  sim::Counter txns_issued;
  sim::Counter txns_completed;
  sim::Counter lines_granted;
  sim::Counter bytes_granted;
  sim::Counter read_bytes;
  sim::Counter write_bytes;
  sim::Counter issue_rejected;  ///< issue() calls refused (queue/OT full)
  sim::Counter fault_stalls;    ///< transient stalls injected by faults
  sim::Histogram read_latency;  ///< end-to-end read latency, ps
  sim::Histogram write_latency;
};

/// One AXI-like master port attached to an Interconnect. Created via
/// Interconnect::add_master(); not movable (stable identity).
class MasterPort {
 public:
  MasterPort(Interconnect& owner, MasterId id, MasterPortConfig cfg);

  MasterPort(const MasterPort&) = delete;
  MasterPort& operator=(const MasterPort&) = delete;

  [[nodiscard]] MasterId id() const { return id_; }
  [[nodiscard]] const std::string& name() const { return cfg_.name; }
  [[nodiscard]] const MasterPortConfig& config() const { return cfg_; }

  /// True when a new transaction can be issued right now.
  [[nodiscard]] bool can_issue(Dir dir) const;

  /// Issues a burst. Returns false (and counts a rejection) when the
  /// request queue or the outstanding limit is full. \p bytes must be > 0.
  bool issue(Dir dir, Addr addr, std::uint32_t bytes, std::uint64_t user = 0);

  /// Sets the callback invoked when any transaction of this port completes.
  void set_completion_handler(CompletionFn fn) { on_complete_ = std::move(fn); }

  /// Attaches a gate (evaluated in attachment order; all must allow).
  void add_gate(TxnGate& gate) { gates_.push_back(&gate); }
  /// Attaches an observer.
  void add_observer(TxnObserver& obs) { observers_.push_back(&obs); }

  [[nodiscard]] std::size_t outstanding_reads() const { return out_reads_; }
  [[nodiscard]] std::size_t outstanding_writes() const { return out_writes_; }
  [[nodiscard]] const PortStats& stats() const { return stats_; }
  PortStats& stats() { return stats_; }

  // --- Interconnect-facing interface -------------------------------------

  /// True when the head line exists, is visible, passes the port rate
  /// limit and all gates.
  [[nodiscard]] bool has_grantable_line(sim::TimePs now) const;

  /// Why the head line cannot be granted right now.
  enum class BlockReason : std::uint8_t {
    kNone,       ///< grantable
    kEmpty,      ///< no visible request queued
    kRateLimit,  ///< port data path busy (transient, holds a burst lock)
    kGate,       ///< a QoS gate refuses (possibly for a long time)
  };
  [[nodiscard]] BlockReason grant_block_reason(sim::TimePs now) const;

  /// True when requests are queued, granted-in-progress, or in flight.
  [[nodiscard]] bool has_pending_work() const;

  /// The line that would be granted next. Pre: head visible.
  [[nodiscard]] LineRequest peek_line(sim::TimePs now) const;

  /// Commits the grant of peek_line(): updates gates, observers, stats and
  /// the port rate limiter, and advances/pops the head transaction.
  LineRequest commit_grant(sim::TimePs now);

  /// Called (via the interconnect) when the last line of \p txn finished
  /// and the response latency elapsed.
  void complete_txn(Transaction& txn, sim::TimePs now);

  /// Fault seam: holds the port's data path busy for \p duration from now
  /// (extends, never shortens, the rate-limiter deadline), modelling a
  /// transient physical-port stall. Grants resume automatically.
  void inject_stall(sim::TimePs duration);

  /// Wires the interference-attribution engine (nullptr disables; the
  /// default). Must be set before the first issue() so the head-of-line
  /// wait accounting starts from a clean queue.
  void set_attribution(telemetry::AttributionEngine* engine);

  /// Head-of-line wait bookkeeping, charged by the interconnect's
  /// per-cycle attribution pass.
  [[nodiscard]] telemetry::WaitState& attr_wait() { return attr_wait_; }
  /// The transaction currently waiting at the head. Pre: head visible.
  [[nodiscard]] Transaction* attr_head(sim::TimePs now) const {
    return queue_.front(now);
  }

 private:
  [[nodiscard]] std::uint32_t head_line_bytes(const Transaction& txn) const;

  Interconnect& owner_;
  MasterId id_;
  MasterPortConfig cfg_;
  TimedFifo<Transaction*> queue_;
  std::size_t in_flight_ = 0;  ///< issued, not yet completed (pool-owned)
  std::vector<TxnGate*> gates_;
  std::vector<TxnObserver*> observers_;
  CompletionFn on_complete_;
  std::size_t out_reads_ = 0;
  std::size_t out_writes_ = 0;
  std::uint32_t head_offset_ = 0;    ///< bytes of head txn already granted
  sim::TimePs data_free_at_ = 0;     ///< port rate limiter
  double ps_per_byte_;
  PortStats stats_;
  telemetry::AttributionEngine* attr_ = nullptr;
  telemetry::WaitState attr_wait_;   ///< current head's head-of-line wait
};

}  // namespace fgqos::axi
