/// \file search.hpp
/// \brief The contention-search driver: optimizer loop, evaluation cache,
///        resumable journal, envelope construction.
///
/// run_search() owns the propose → evaluate → observe loop. Evaluations
/// fan out through an exec::ScenarioRunner (so --jobs parallelism applies)
/// and land in a cache keyed by the canonical config JSON; the optimizer
/// only ever sees scores read back from that cache, which makes the whole
/// search a deterministic function of (spec, seed) — independent of
/// worker count and resumable: a journal line is appended per completed
/// evaluation, and a resumed search pre-fills the cache from the journal,
/// replays the optimizer against the cached scores at full speed, and
/// continues exactly where the interrupted run stopped.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "exec/scenario_runner.hpp"
#include "qos/envelope.hpp"
#include "search/objective.hpp"

namespace fgqos::search {

/// Everything that shapes a certification search. All fields are
/// *semantic* (they feed spec_hash and the envelope manifest) except
/// none — execution mechanics (jobs, journal path) live outside.
struct SearchSpec {
  std::string optimizer = "both";  ///< "coord" | "es" | "both"
  Objective objective = Objective::kSlowdown;
  std::uint64_t seed = 1;
  /// Unique attack configs to evaluate at most (each costs two sims:
  /// unregulated + regulated). The budget is checked at batch boundaries,
  /// so the last batch may overshoot slightly — deterministically.
  std::size_t budget_evals = 64;
  std::size_t restarts = 2;       ///< coordinate-descent restarts
  std::size_t mu = 4;             ///< ES parents
  std::size_t lambda = 8;         ///< ES offspring per generation
  std::size_t generations = 4;    ///< ES generations
  EvalSpec eval;
  double capacity_bps = 16e9;
  double max_reservable_frac = 0.85;
  /// Safety margin folded into every certified bound (0.10 = bounds are
  /// 10% beyond the worst measurement).
  double margin = 0.10;
  /// Validation replays of the regulated argmax at seeds
  /// seed+1 .. seed+validate_seeds; their measurements fold into the
  /// bounds, so a bounds-vs-measured replay at any of these seeds passes
  /// by construction.
  std::size_t validate_seeds = 10;
  /// Canonical JSON of the composed fault plan ("" = none); informational
  /// next to eval.faults, feeds spec/fault hashes.
  std::string fault_spec_json;

  /// Canonical one-line rendering of every semantic field (the manifest
  /// scenario string; its FNV-1a is the journal/envelope spec_hash).
  [[nodiscard]] std::string canonical() const;
  [[nodiscard]] std::string spec_hash() const;
};

/// Progress callback payload, invoked after every observed batch and
/// after validation. Tests use the hook to request_stop() at a
/// deterministic point mid-search.
struct SearchProgress {
  std::string phase;        ///< "coord", "es" or "validate"
  std::size_t batch = 0;    ///< batches observed so far
  std::size_t evaluations = 0;  ///< unique configs evaluated
  double best_objective = 0.0;
  std::string best_config_json;
};
using ProgressFn = std::function<void(const SearchProgress&)>;

/// Search result.
struct SearchOutcome {
  qos::CertifiedEnvelope envelope;
  /// True when the runner was stopped mid-search: the journal holds every
  /// completed evaluation and the envelope is NOT valid (partial).
  bool interrupted = false;
};

/// Runs the whole certification search. \p journal_path "" disables
/// journaling (the search is then not resumable); \p resume pre-fills
/// the cache from an existing journal (spec/space hashes must match) and
/// appends to it. Throws ConfigError on spec errors, journal mismatches,
/// or failed evaluation jobs.
[[nodiscard]] SearchOutcome run_search(const SearchSpec& spec,
                                       exec::ScenarioRunner& runner,
                                       const std::string& journal_path,
                                       bool resume,
                                       const ProgressFn& progress = nullptr);

/// Re-evaluates \p env's argmax attack at \p sim_seed, reconstructing the
/// evaluation scenario from the envelope's provenance (used by
/// `fgqos_certify --replay` and the CI bounds-vs-measured gate).
/// \p faults must be the same plan the certification composed (nullptr
/// when fault_spec_hash is empty). A non-empty \p metrics_json_path
/// exports the replay's metrics snapshot, manifest-stamped from the
/// envelope, ready for `fgqos_report --envelope --measured`.
[[nodiscard]] EvalResult replay_envelope(
    const qos::CertifiedEnvelope& env, std::uint64_t sim_seed, bool regulated,
    const fault::FaultPlan* faults,
    const std::string& metrics_json_path = "");

}  // namespace fgqos::search
