#include "search/attack_space.hpp"

#include <algorithm>
#include <sstream>

#include "telemetry/manifest.hpp"
#include "util/config_error.hpp"
#include "util/json.hpp"

namespace fgqos::search {
namespace {

template <typename Catalog, typename V>
std::uint8_t index_of(const Catalog& cat, const V& v, const char* dim) {
  auto it = std::find(cat.begin(), cat.end(), v);
  if (it == cat.end()) {
    throw ConfigError(std::string("attack config: value out of catalog for ") +
                            dim);
  }
  return static_cast<std::uint8_t>(it - cat.begin());
}

}  // namespace

std::size_t AttackSpace::dim_size(std::size_t d) {
  switch (d) {
    case kDimCount: return kCounts.size();
    case kDimPattern: return kPatterns.size();
    case kDimBurst: return kBursts.size();
    case kDimStride: return kStrides.size();
    case kDimOutstanding: return kOutstanding.size();
    case kDimBankFocus: return kBankFocus.size();
    case kDimPhase: return kPhases.size();
    default: return 0;
  }
}

AttackConfig AttackSpace::normalize(AttackConfig c) {
  for (std::size_t d = 0; d < kNumDims; ++d) {
    c.choice[d] = static_cast<std::uint8_t>(c.choice[d] % dim_size(d));
  }
  if (kPatterns[c.choice[kDimPattern]] != wl::Pattern::kStrided) {
    c.choice[kDimStride] = 0;
  }
  return c;
}

AttackConfig AttackSpace::exp1_mix() {
  AttackConfig c;
  c.choice[kDimCount] = index_of(kCounts, 4, "count");
  c.choice[kDimPattern] = index_of(kPatterns, wl::Pattern::kSeqRead, "pattern");
  c.choice[kDimBurst] = index_of(kBursts, std::uint32_t{1024}, "burst");
  c.choice[kDimStride] = 0;
  c.choice[kDimOutstanding] = index_of(kOutstanding, std::size_t{4}, "outstanding");
  c.choice[kDimBankFocus] = 0;
  c.choice[kDimPhase] = 0;
  return normalize(c);
}

std::string AttackSpace::to_json(const AttackConfig& cfg) {
  const AttackConfig c = normalize(cfg);
  const wl::Pattern pat = kPatterns[c.choice[kDimPattern]];
  const bool strided = pat == wl::Pattern::kStrided;
  const auto& phase = kPhases[c.choice[kDimPhase]];
  std::ostringstream os;
  os << "{\"bank_focus\":" << kBankFocus[c.choice[kDimBankFocus]]
     << ",\"burst_bytes\":" << kBursts[c.choice[kDimBurst]]
     << ",\"count\":" << kCounts[c.choice[kDimCount]]
     << ",\"outstanding\":" << kOutstanding[c.choice[kDimOutstanding]]
     << ",\"pattern\":\"" << wl::pattern_name(pat) << "\""
     << ",\"phase_us\":[" << phase[0] << ',' << phase[1] << ']'
     << ",\"stride_bytes\":" << (strided ? kStrides[c.choice[kDimStride]] : 0)
     << '}';
  return os.str();
}

AttackConfig AttackSpace::from_json(const util::JsonValue& v) {
  AttackConfig c;
  c.choice[kDimCount] =
      index_of(kCounts, static_cast<int>(v.at("count").as_number()), "count");
  const std::string& pat_name = v.at("pattern").as_string();
  std::uint8_t pat_idx = 255;
  for (std::size_t i = 0; i < kPatterns.size(); ++i) {
    if (pat_name == wl::pattern_name(kPatterns[i])) {
      pat_idx = static_cast<std::uint8_t>(i);
      break;
    }
  }
  if (pat_idx == 255) {
    throw ConfigError("attack config: unknown pattern \"" + pat_name + "\"");
  }
  c.choice[kDimPattern] = pat_idx;
  c.choice[kDimBurst] = index_of(
      kBursts, static_cast<std::uint32_t>(v.at("burst_bytes").as_number()),
      "burst_bytes");
  const auto stride = static_cast<std::uint64_t>(v.at("stride_bytes").as_number());
  c.choice[kDimStride] =
      stride == 0 ? std::uint8_t{0} : index_of(kStrides, stride, "stride_bytes");
  c.choice[kDimOutstanding] = index_of(
      kOutstanding, static_cast<std::size_t>(v.at("outstanding").as_number()),
      "outstanding");
  c.choice[kDimBankFocus] = index_of(
      kBankFocus, static_cast<int>(v.at("bank_focus").as_number()), "bank_focus");
  const auto& phase = v.at("phase_us").as_array();
  if (phase.size() != 2) {
    throw ConfigError("attack config: phase_us must be [active,idle]");
  }
  const std::array<std::uint32_t, 2> ph = {
      static_cast<std::uint32_t>(phase[0].as_number()),
      static_cast<std::uint32_t>(phase[1].as_number())};
  c.choice[kDimPhase] = index_of(kPhases, ph, "phase_us");
  return normalize(c);
}

std::vector<wl::TrafficGenConfig> AttackSpace::to_traffic_gens(
    const AttackConfig& cfg, std::uint64_t seed) {
  const AttackConfig c = normalize(cfg);
  const int count = kCounts[c.choice[kDimCount]];
  const bool focus = kBankFocus[c.choice[kDimBankFocus]] != 0;
  const auto& phase = kPhases[c.choice[kDimPhase]];
  std::vector<wl::TrafficGenConfig> gens;
  gens.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    wl::TrafficGenConfig tg;
    tg.name = "atk" + std::to_string(i);
    tg.pattern = kPatterns[c.choice[kDimPattern]];
    tg.burst_bytes = kBursts[c.choice[kDimBurst]];
    tg.stride_bytes = kStrides[c.choice[kDimStride]];
    tg.max_outstanding = kOutstanding[c.choice[kDimOutstanding]];
    if (focus) {
      // Every generator hammers the same 4 MiB region: maximal row-buffer
      // and bank conflicts with the victim's neighbourhood.
      tg.base = 0x8000'0000;
      tg.footprint_bytes = 4ull << 20;
    } else {
      tg.base = 0x8000'0000 + (static_cast<axi::Addr>(i) << 26);
      tg.footprint_bytes = 16ull << 20;
    }
    tg.active_ps = static_cast<sim::TimePs>(phase[0]) * 1'000'000;
    tg.idle_ps = static_cast<sim::TimePs>(phase[1]) * 1'000'000;
    tg.seed = seed + static_cast<std::uint64_t>(i);
    gens.push_back(tg);
  }
  return gens;
}

std::string AttackSpace::space_hash() {
  std::ostringstream os;
  os << "counts:";
  for (int v : kCounts) os << v << ',';
  os << "patterns:";
  for (auto p : kPatterns) os << wl::pattern_name(p) << ',';
  os << "bursts:";
  for (auto v : kBursts) os << v << ',';
  os << "strides:";
  for (auto v : kStrides) os << v << ',';
  os << "outstanding:";
  for (auto v : kOutstanding) os << v << ',';
  os << "bank_focus:";
  for (int v : kBankFocus) os << v << ',';
  os << "phases:";
  for (const auto& ph : kPhases) os << ph[0] << '/' << ph[1] << ',';
  return telemetry::fnv1a_hex(os.str());
}

}  // namespace fgqos::search
