#include "search/optimizer.hpp"

#include <algorithm>
#include <numeric>

#include "util/config_error.hpp"

namespace fgqos::search {
namespace {

/// Domain-separation constants mixed into the optimizer RNG seeds so the
/// two optimizers (and the evaluator's sim seeds) draw from unrelated
/// streams even for equal user seeds.
constexpr std::uint64_t kCoordSeedSalt = 0x636f6f7264'5345ULL;  // "coord"
constexpr std::uint64_t kEsSeedSalt = 0x65732d6d75'6cULL;       // "es-mul"

}  // namespace

// --- CoordinateDescent -----------------------------------------------------

CoordinateDescent::CoordinateDescent(std::uint64_t seed, std::size_t restarts)
    : rng_(seed ^ kCoordSeedSalt), restarts_(std::max<std::size_t>(1, restarts)) {
  start_restart();
}

AttackConfig CoordinateDescent::random_config() {
  AttackConfig c;
  for (std::size_t d = 0; d < kNumDims; ++d) {
    c.choice[d] =
        static_cast<std::uint8_t>(rng_.next_below(AttackSpace::dim_size(d)));
  }
  return AttackSpace::normalize(c);
}

void CoordinateDescent::start_restart() {
  // Restart 0 starts from the hand-written EXP1 mix: the search is then
  // guaranteed to have measured the paper's baseline (the envelope's
  // exp1_mix_objective) and can only improve on it.
  current_ = restart_ == 0 ? AttackSpace::exp1_mix() : random_config();
  need_init_ = true;
}

std::vector<AttackConfig> CoordinateDescent::propose() {
  if (done_) return {};
  if (need_init_) {
    batch_ = {current_};
    return batch_;
  }
  // One full pass: every single-dimension neighbour of the incumbent.
  batch_.clear();
  for (std::size_t d = 0; d < kNumDims; ++d) {
    for (std::size_t v = 0; v < AttackSpace::dim_size(d); ++v) {
      if (v == current_.choice[d]) continue;
      AttackConfig n = current_;
      n.choice[d] = static_cast<std::uint8_t>(v);
      n = AttackSpace::normalize(n);
      if (n == current_) continue;  // normalization collapsed the move
      if (std::find(batch_.begin(), batch_.end(), n) != batch_.end()) continue;
      batch_.push_back(n);
    }
  }
  return batch_;
}

void CoordinateDescent::observe(const std::vector<double>& scores) {
  if (done_ || scores.size() != batch_.size()) return;
  auto track_best = [this](const AttackConfig& c, double s) {
    if (s > best_score_) {
      best_score_ = s;
      best_ = c;
    }
  };
  if (need_init_) {
    need_init_ = false;
    current_score_ = scores.at(0);
    track_best(current_, current_score_);
    return;
  }
  std::size_t best_i = batch_.size();
  double best_s = current_score_;
  for (std::size_t i = 0; i < batch_.size(); ++i) {
    track_best(batch_[i], scores[i]);
    if (scores[i] > best_s) {
      best_s = scores[i];
      best_i = i;
    }
  }
  if (best_i < batch_.size()) {
    current_ = batch_[best_i];
    current_score_ = best_s;
    return;  // improved: another neighbour pass around the new incumbent
  }
  // Converged for this restart.
  ++restart_;
  if (restart_ >= restarts_) {
    done_ = true;
  } else {
    start_restart();
  }
}

// --- MuLambdaES ------------------------------------------------------------

MuLambdaES::MuLambdaES(std::uint64_t seed, std::size_t mu, std::size_t lambda,
                       std::size_t generations)
    : rng_(seed ^ kEsSeedSalt),
      mu_(std::max<std::size_t>(1, mu)),
      lambda_(std::max(lambda, mu_)),
      generations_(generations) {}

void MuLambdaES::seed_parents(const std::vector<AttackConfig>& elites) {
  parents_.clear();
  for (const auto& c : elites) {
    if (parents_.size() >= mu_) break;
    parents_.push_back(AttackSpace::normalize(c));
  }
}

AttackConfig MuLambdaES::random_config() {
  AttackConfig c;
  for (std::size_t d = 0; d < kNumDims; ++d) {
    c.choice[d] =
        static_cast<std::uint8_t>(rng_.next_below(AttackSpace::dim_size(d)));
  }
  return AttackSpace::normalize(c);
}

AttackConfig MuLambdaES::mutate(const AttackConfig& parent) {
  AttackConfig c = parent;
  bool changed = false;
  for (std::size_t d = 0; d < kNumDims; ++d) {
    if (!rng_.next_bool(1.0 / static_cast<double>(kNumDims))) continue;
    const auto nv = rng_.next_below(AttackSpace::dim_size(d));
    changed = changed || nv != c.choice[d];
    c.choice[d] = static_cast<std::uint8_t>(nv);
  }
  if (!changed) {
    // Force at least one move so offspring never silently equal their
    // parent (a wasted evaluation slot).
    const auto d = static_cast<std::size_t>(rng_.next_below(kNumDims));
    const auto size = AttackSpace::dim_size(d);
    c.choice[d] = static_cast<std::uint8_t>(
        (c.choice[d] + 1 + rng_.next_below(size - 1)) % size);
  }
  return AttackSpace::normalize(c);
}

std::vector<AttackConfig> MuLambdaES::propose() {
  if (generation_ >= generations_) return {};
  batch_.clear();
  batch_.reserve(lambda_);
  for (std::size_t i = 0; i < lambda_; ++i) {
    if (parents_.empty()) {
      batch_.push_back(random_config());
    } else {
      const auto& parent = parents_[rng_.next_below(parents_.size())];
      batch_.push_back(mutate(parent));
    }
  }
  return batch_;
}

void MuLambdaES::observe(const std::vector<double>& scores) {
  if (scores.size() != batch_.size()) return;
  std::vector<std::size_t> order(batch_.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&scores](auto a, auto b) {
    return scores[a] > scores[b];
  });
  parents_.clear();
  for (std::size_t i = 0; i < order.size() && parents_.size() < mu_; ++i) {
    parents_.push_back(batch_[order[i]]);
  }
  if (!order.empty() && scores[order[0]] > best_score_) {
    best_score_ = scores[order[0]];
    best_ = batch_[order[0]];
  }
  ++generation_;
}

// --- factory ---------------------------------------------------------------

std::unique_ptr<Optimizer> make_optimizer(const std::string& name,
                                          std::uint64_t seed,
                                          std::size_t restarts, std::size_t mu,
                                          std::size_t lambda,
                                          std::size_t generations) {
  if (name == "coord") {
    return std::make_unique<CoordinateDescent>(seed, restarts);
  }
  if (name == "es") {
    return std::make_unique<MuLambdaES>(seed, mu, lambda, generations);
  }
  throw ConfigError("unknown optimizer \"" + name +
                          "\" (want coord | es | both)");
}

}  // namespace fgqos::search
