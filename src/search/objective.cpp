#include "search/objective.hpp"

#include <string>

#include "soc/soc.hpp"
#include "telemetry/manifest.hpp"
#include "util/config_error.hpp"
#include "workload/cpu_workloads.hpp"

namespace fgqos::search {

Objective objective_from_name(const std::string& name) {
  if (name == "slowdown") return Objective::kSlowdown;
  if (name == "p99") return Objective::kP99;
  if (name == "slo_miss") return Objective::kSloMiss;
  throw ConfigError("unknown objective \"" + name +
                          "\" (want slowdown | p99 | slo_miss)");
}

const char* objective_name(Objective o) {
  switch (o) {
    case Objective::kSlowdown: return "slowdown";
    case Objective::kP99: return "p99";
    case Objective::kSloMiss: return "slo_miss";
  }
  return "?";
}

EvalResult evaluate_attack(const AttackConfig* config, const EvalSpec& spec,
                           std::uint64_t sim_seed, bool regulated,
                           sim::TimePs slo_iter_ps,
                           const std::string& metrics_json_path,
                           const telemetry::RunManifest* manifest) {
  soc::SocConfig scfg;
  soc::Soc soc(scfg);

  wl::PointerChaseConfig chase;
  chase.name = "victim";
  chase.accesses_per_iteration = spec.victim_accesses;
  cpu::CoreConfig core_cfg;
  core_cfg.name = "victim";
  core_cfg.max_iterations = spec.victim_iterations;
  core_cfg.rng_seed = sim_seed;
  auto& core = soc.add_core(core_cfg, wl::make_pointer_chase(chase));

  if (config != nullptr) {
    const auto gens = AttackSpace::to_traffic_gens(*config, sim_seed);
    for (std::size_t i = 0; i < gens.size(); ++i) {
      soc.add_traffic_gen(i % soc.accel_port_count(), gens[i]);
    }
  }

  if (regulated) {
    const auto window_ps =
        static_cast<sim::TimePs>(spec.window_us * sim::kPsPerUs);
    for (std::size_t p = 0; p < soc.accel_port_count(); ++p) {
      auto& reg = *soc.qos_block(1 + p).regulator;
      reg.set_window(window_ps);
      reg.set_rate(spec.regulated_budget_mbps * 1e6);
      reg.set_enabled(true);
    }
  }

  if (spec.faults != nullptr && !spec.faults->empty()) {
    soc.arm_faults(*spec.faults, sim_seed);
  }

  const auto deadline =
      static_cast<sim::TimePs>(spec.deadline_ms * sim::kPsPerMs);
  const bool finished = soc.run_until_cores_finished(deadline);

  EvalResult r;
  r.deadline_missed = !finished;
  const auto& iters = core.stats().iteration_ps;
  r.iter_mean_ps = iters.mean();
  r.iter_p99_ps = static_cast<double>(iters.p99());
  r.read_p99_ps = static_cast<double>(soc.cpu_port().stats().read_latency.p99());
  const sim::TimePs now = soc.now();
  r.victim_bw_bps = sim::bytes_per_second(
      soc.cpu_port().stats().bytes_granted.value(), now);
  std::uint64_t agg_bytes = 0;
  for (std::size_t p = 0; p < soc.accel_port_count(); ++p) {
    agg_bytes += soc.accel_port(p).stats().bytes_granted.value();
  }
  r.aggressor_bps = sim::bytes_per_second(agg_bytes, now);
  if (iters.count() > 0 && slo_iter_ps > 0) {
    std::uint64_t within = 0;
    for (const auto& pt : iters.cdf()) {
      if (pt.value <= slo_iter_ps) {
        within = pt.cumulative;
      } else {
        break;
      }
    }
    r.slo_miss_frac =
        1.0 - static_cast<double>(within) / static_cast<double>(iters.count());
  } else if (iters.count() == 0) {
    // The victim never completed an iteration inside the deadline: the
    // worst possible outcome for every objective.
    r.slo_miss_frac = 1.0;
  }
  if (!metrics_json_path.empty()) {
    soc.collect_metrics().save_json(metrics_json_path, soc.now(), manifest);
  }
  return r;
}

double objective_value(Objective o, const EvalResult& r,
                       double solo_iter_mean_ps) {
  switch (o) {
    case Objective::kSlowdown:
      return solo_iter_mean_ps > 0 ? r.iter_mean_ps / solo_iter_mean_ps : 0.0;
    case Objective::kP99:
      return r.read_p99_ps;
    case Objective::kSloMiss:
      return r.slo_miss_frac;
  }
  return 0.0;
}

}  // namespace fgqos::search
