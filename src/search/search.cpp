#include "search/search.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <sstream>
#include <utility>
#include <vector>

#include "exec/job.hpp"
#include "search/optimizer.hpp"
#include "telemetry/manifest.hpp"
#include "util/config_error.hpp"
#include "util/json.hpp"

namespace fgqos::search {
namespace {

constexpr int kJournalSchemaVersion = 1;

std::uint64_t fnv1a64(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

std::string num(double d) { return qos::envelope_double(d); }

/// Cache key of one evaluation: canonical config JSON (or "solo") plus
/// the regulation mode.
std::string eval_key(const std::string& config_json, bool regulated) {
  return config_json + (regulated ? "|reg" : "|unreg");
}

/// The deterministic per-evaluation simulation seed: a pure function of
/// the search seed and the evaluation's identity, so neither batch
/// composition nor --jobs can shift any evaluation's RNG stream.
std::uint64_t eval_sim_seed(std::uint64_t search_seed, const std::string& key) {
  return exec::splitmix64(search_seed ^ fnv1a64(key));
}

std::string result_json(const EvalResult& r) {
  std::ostringstream os;
  os << "{\"aggressor_bps\":" << num(r.aggressor_bps)
     << ",\"deadline_missed\":" << (r.deadline_missed ? "true" : "false")
     << ",\"iter_mean_ps\":" << num(r.iter_mean_ps)
     << ",\"iter_p99_ps\":" << num(r.iter_p99_ps)
     << ",\"read_p99_ps\":" << num(r.read_p99_ps)
     << ",\"slo_miss_frac\":" << num(r.slo_miss_frac)
     << ",\"victim_bw_bps\":" << num(r.victim_bw_bps) << '}';
  return os.str();
}

EvalResult result_from_json(const util::JsonValue& v) {
  EvalResult r;
  r.aggressor_bps = v.at("aggressor_bps").as_number();
  r.deadline_missed = v.at("deadline_missed").as_bool();
  r.iter_mean_ps = v.at("iter_mean_ps").as_number();
  r.iter_p99_ps = v.at("iter_p99_ps").as_number();
  r.read_p99_ps = v.at("read_p99_ps").as_number();
  r.slo_miss_frac = v.at("slo_miss_frac").as_number();
  r.victim_bw_bps = v.at("victim_bw_bps").as_number();
  return r;
}

/// One pending evaluation of a driver batch.
struct PendingEval {
  std::string key;          ///< cache key
  std::string config_json;  ///< "" for solo
  bool regulated = false;
  std::uint64_t sim_seed = 0;
  bool is_validation = false;  ///< validation replay (seed differs)
};

/// The driver state shared by the optimizer phases.
struct Driver {
  const SearchSpec& spec;
  exec::ScenarioRunner& runner;
  std::map<std::string, EvalResult> cache;  ///< key -> result
  std::ofstream journal;
  sim::TimePs slo_iter_ps = 0;
  double solo_iter_mean_ps = 0.0;
  std::size_t batches = 0;
  bool interrupted = false;

  Driver(const SearchSpec& s, exec::ScenarioRunner& r) : spec(s), runner(r) {}

  [[nodiscard]] bool has(const std::string& key) const {
    return cache.count(key) != 0;
  }

  /// Unique attack configs fully evaluated (both modes present).
  [[nodiscard]] std::size_t unique_configs() const {
    std::size_t n = 0;
    for (const auto& [k, r] : cache) {
      (void)r;
      if (k.size() > 6 && k.compare(k.size() - 6, 6, "|unreg") == 0 &&
          k.rfind("solo|", 0) != 0) {
        const std::string reg_key = k.substr(0, k.size() - 6) + "|reg";
        if (cache.count(reg_key) != 0) ++n;
      }
    }
    return n;
  }

  /// Evaluates every not-yet-cached entry of \p evals through the runner
  /// and journals completions. Returns false when the runner was stopped
  /// before the batch finished (partial results are cached + journaled).
  bool evaluate(const std::vector<PendingEval>& evals) {
    std::vector<const PendingEval*> todo;
    for (const auto& e : evals) {
      if (!has(e.key)) todo.push_back(&e);
    }
    // Dedup within the batch (propose() may repeat a config across
    // optimizer phases in the same driver batch).
    std::vector<const PendingEval*> uniq;
    for (const auto* e : todo) {
      const bool seen = std::any_of(uniq.begin(), uniq.end(), [e](auto* u) {
        return u->key == e->key;
      });
      if (!seen) uniq.push_back(e);
    }
    if (uniq.empty()) return !runner.stop_requested();

    std::vector<EvalResult> results(uniq.size());
    std::vector<exec::ScenarioRunner::JobFn> jobs;
    jobs.reserve(uniq.size());
    for (std::size_t i = 0; i < uniq.size(); ++i) {
      const PendingEval* e = uniq[i];
      jobs.push_back([this, e, i, &results](const exec::JobContext& ctx) {
        (void)ctx;
        AttackConfig cfg;
        const bool solo = e->config_json.empty();
        if (!solo) {
          cfg = AttackSpace::from_json(util::JsonValue::parse(e->config_json));
        }
        results[i] = evaluate_attack(solo ? nullptr : &cfg, spec.eval,
                                     e->sim_seed, e->regulated, slo_iter_ps);
      });
    }
    const auto report = runner.run_report(std::move(jobs));
    for (std::size_t i = 0; i < uniq.size(); ++i) {
      if (report.jobs[i].status != exec::JobStatus::kOk) continue;
      cache.emplace(uniq[i]->key, results[i]);
      if (journal.is_open()) {
        journal << "{\"key\":\"" << util::json_escape(uniq[i]->key)
                << "\",\"result\":" << result_json(results[i]) << "}\n";
        journal.flush();
      }
    }
    if (runner.stop_requested()) {
      interrupted = true;
      return false;
    }
    for (std::size_t i = 0; i < uniq.size(); ++i) {
      if (report.jobs[i].status != exec::JobStatus::kOk) {
        throw ConfigError("search: evaluation failed (" +
                                report.describe() + "): " +
                                report.jobs[i].error);
      }
    }
    return true;
  }

  [[nodiscard]] PendingEval pending(const std::string& config_json,
                                    bool regulated) const {
    PendingEval e;
    e.config_json = config_json;
    e.regulated = regulated;
    e.key = eval_key(config_json.empty() ? "solo" : config_json, regulated);
    e.sim_seed = eval_sim_seed(spec.seed, e.key);
    return e;
  }

  /// Current argmax over all cached unregulated attack evaluations:
  /// highest objective, ties broken by ascending config JSON (std::map
  /// iteration order), so the winner is schedule-independent.
  [[nodiscard]] std::pair<std::string, double> argmax() const {
    std::string best_cfg;
    double best = -1.0;
    for (const auto& [k, r] : cache) {
      if (k.size() <= 6 || k.compare(k.size() - 6, 6, "|unreg") != 0) continue;
      if (k.rfind("solo|", 0) == 0) continue;
      const double score =
          objective_value(spec.objective, r, solo_iter_mean_ps);
      if (score > best) {
        best = score;
        best_cfg = k.substr(0, k.size() - 6);
      }
    }
    return {best_cfg, best};
  }

  /// Top-\p n cached configs by unregulated objective (score desc, config
  /// JSON asc) — the warm start handed from coord to the ES phase.
  [[nodiscard]] std::vector<AttackConfig> top_configs(std::size_t n) const {
    std::vector<std::pair<double, std::string>> scored;
    for (const auto& [k, r] : cache) {
      if (k.size() <= 6 || k.compare(k.size() - 6, 6, "|unreg") != 0) continue;
      if (k.rfind("solo|", 0) == 0) continue;
      scored.emplace_back(objective_value(spec.objective, r, solo_iter_mean_ps),
                          k.substr(0, k.size() - 6));
    }
    std::sort(scored.begin(), scored.end(), [](const auto& a, const auto& b) {
      if (a.first != b.first) return a.first > b.first;
      return a.second < b.second;
    });
    std::vector<AttackConfig> out;
    for (const auto& [score, cfg] : scored) {
      (void)score;
      if (out.size() >= n) break;
      out.push_back(AttackSpace::from_json(util::JsonValue::parse(cfg)));
    }
    return out;
  }

  /// Runs \p opt's propose/observe loop until done, budget or stop.
  /// Returns false on interruption.
  bool run_optimizer(Optimizer& opt, const ProgressFn& progress) {
    while (true) {
      const auto batch = opt.propose();
      if (batch.empty()) return true;
      std::vector<PendingEval> evals;
      std::vector<std::string> cfg_jsons;
      cfg_jsons.reserve(batch.size());
      for (const auto& c : batch) {
        const std::string j = AttackSpace::to_json(c);
        cfg_jsons.push_back(j);
        evals.push_back(pending(j, false));
        evals.push_back(pending(j, true));
      }
      if (!evaluate(evals)) return false;
      std::vector<double> scores;
      scores.reserve(batch.size());
      for (const auto& j : cfg_jsons) {
        scores.push_back(objective_value(spec.objective,
                                         cache.at(eval_key(j, false)),
                                         solo_iter_mean_ps));
      }
      opt.observe(scores);
      ++batches;
      if (progress) {
        const auto [best_cfg, best] = argmax();
        SearchProgress p;
        p.phase = opt.name();
        p.batch = batches;
        p.evaluations = unique_configs();
        p.best_objective = best;
        p.best_config_json = best_cfg;
        progress(p);
        if (runner.stop_requested()) {
          interrupted = true;
          return false;
        }
      }
      if (unique_configs() >= spec.budget_evals) return true;
    }
  }
};

EvalSpec eval_spec_from_envelope(const qos::CertifiedEnvelope& env,
                                 const fault::FaultPlan* faults) {
  EvalSpec e;
  e.victim_accesses = env.victim_accesses;
  e.victim_iterations = env.victim_iterations;
  e.deadline_ms = env.deadline_ms;
  e.slo_iter_us = env.slo_iter_us;
  e.regulated_budget_mbps = env.regulated_budget_mbps;
  e.window_us = env.window_us;
  e.faults = faults;
  return e;
}

sim::TimePs resolve_slo_ps(double slo_iter_us, double solo_iter_mean_ps) {
  if (slo_iter_us > 0) {
    return static_cast<sim::TimePs>(slo_iter_us * sim::kPsPerUs);
  }
  return static_cast<sim::TimePs>(2.0 * solo_iter_mean_ps);
}

}  // namespace

std::string SearchSpec::canonical() const {
  std::ostringstream os;
  os << "optimizer=" << optimizer << " objective=" << objective_name(objective)
     << " seed=" << seed << " budget_evals=" << budget_evals
     << " restarts=" << restarts << " mu=" << mu << " lambda=" << lambda
     << " generations=" << generations
     << " victim_accesses=" << eval.victim_accesses
     << " victim_iterations=" << eval.victim_iterations
     << " deadline_ms=" << num(eval.deadline_ms)
     << " slo_iter_us=" << num(eval.slo_iter_us)
     << " budget_mbps=" << num(eval.regulated_budget_mbps)
     << " window_us=" << num(eval.window_us)
     << " capacity_bps=" << num(capacity_bps)
     << " max_reservable_frac=" << num(max_reservable_frac)
     << " margin=" << num(margin) << " validate_seeds=" << validate_seeds
     << " space=" << AttackSpace::space_hash();
  if (!fault_spec_json.empty()) {
    os << " fault_spec=" << telemetry::fnv1a_hex(fault_spec_json);
  }
  return os.str();
}

std::string SearchSpec::spec_hash() const {
  return telemetry::fnv1a_hex(canonical());
}

SearchOutcome run_search(const SearchSpec& spec, exec::ScenarioRunner& runner,
                         const std::string& journal_path, bool resume,
                         const ProgressFn& progress) {
  if (spec.optimizer != "coord" && spec.optimizer != "es" &&
      spec.optimizer != "both") {
    throw ConfigError("unknown optimizer \"" + spec.optimizer +
                            "\" (want coord | es | both)");
  }
  if (spec.budget_evals == 0) {
    throw ConfigError("search: budget_evals must be > 0");
  }

  Driver d(spec, runner);

  // --- journal open / resume ----------------------------------------------
  if (!journal_path.empty() && resume) {
    std::ifstream in(journal_path);
    if (!in) {
      throw ConfigError("search: cannot open journal for resume: " +
                              journal_path);
    }
    std::string line;
    bool header_seen = false;
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      const auto v = util::JsonValue::parse(line);
      if (!header_seen) {
        if (!v.contains("fgqos_search_journal") ||
            static_cast<int>(v.at("fgqos_search_journal").as_number()) !=
                kJournalSchemaVersion) {
          throw ConfigError("search: not a search journal: " +
                                  journal_path);
        }
        if (v.at("spec_hash").as_string() != spec.spec_hash()) {
          throw ConfigError(
              "search: journal was written by a different spec (hash " +
              v.at("spec_hash").as_string() + " != " + spec.spec_hash() +
              ") — refusing to resume");
        }
        header_seen = true;
        continue;
      }
      d.cache.emplace(v.at("key").as_string(),
                      result_from_json(v.at("result")));
    }
    if (!header_seen) {
      throw ConfigError("search: journal has no header: " +
                              journal_path);
    }
  }
  if (!journal_path.empty()) {
    d.journal.open(journal_path, resume ? std::ios::app : std::ios::trunc);
    if (!d.journal) {
      throw ConfigError("search: cannot write journal: " + journal_path);
    }
    if (!resume) {
      d.journal << "{\"fgqos_search_journal\":" << kJournalSchemaVersion
                << ",\"spec_hash\":\"" << spec.spec_hash()
                << "\",\"space_hash\":\"" << AttackSpace::space_hash()
                << "\"}\n";
      d.journal.flush();
    }
  }

  SearchOutcome out;
  auto finish_interrupted = [&out]() {
    out.interrupted = true;
    return out;
  };

  // --- solo baseline + EXP1 mix -------------------------------------------
  // The solo run anchors the slowdown objective and (when slo_iter_us is
  // 0) derives the SLO threshold, so it must complete before any scored
  // evaluation. The EXP1 mix is always measured: it is the paper baseline
  // the headline ratio compares against, whatever the optimizer.
  if (!d.evaluate({d.pending("", false)})) return finish_interrupted();
  d.solo_iter_mean_ps = d.cache.at(eval_key("solo", false)).iter_mean_ps;
  d.slo_iter_ps = resolve_slo_ps(spec.eval.slo_iter_us, d.solo_iter_mean_ps);

  const std::string exp1_json = AttackSpace::to_json(AttackSpace::exp1_mix());
  if (!d.evaluate({d.pending(exp1_json, false), d.pending(exp1_json, true)})) {
    return finish_interrupted();
  }

  // --- optimizer phases ----------------------------------------------------
  if (spec.optimizer == "coord" || spec.optimizer == "both") {
    CoordinateDescent coord(spec.seed, spec.restarts);
    if (!d.run_optimizer(coord, progress)) return finish_interrupted();
  }
  if ((spec.optimizer == "es" || spec.optimizer == "both") &&
      d.unique_configs() < spec.budget_evals) {
    MuLambdaES es(spec.seed, spec.mu, spec.lambda, spec.generations);
    if (spec.optimizer == "both") {
      es.seed_parents(d.top_configs(spec.mu));
    }
    if (!d.run_optimizer(es, progress)) return finish_interrupted();
  }

  // --- validation replays ---------------------------------------------------
  const auto [best_cfg, best_score] = d.argmax();
  if (best_cfg.empty()) {
    throw ConfigError("search: no attack configuration was evaluated");
  }
  std::vector<PendingEval> validation;
  for (std::size_t i = 0; i < spec.validate_seeds; ++i) {
    PendingEval e;
    e.config_json = best_cfg;
    e.regulated = true;
    e.sim_seed = spec.seed + 1 + i;
    e.key = "validate|" + std::to_string(e.sim_seed) + "|" + best_cfg;
    e.is_validation = true;
    validation.push_back(e);
  }
  if (!d.evaluate(validation)) return finish_interrupted();
  if (progress) {
    SearchProgress p;
    p.phase = "validate";
    p.batch = d.batches;
    p.evaluations = d.unique_configs();
    p.best_objective = best_score;
    p.best_config_json = best_cfg;
    progress(p);
  }

  // --- envelope -------------------------------------------------------------
  qos::CertifiedEnvelope env;
  env.manifest.tool = "fgqos_certify";
  env.manifest.scenario = spec.canonical();
  env.manifest.seed = spec.seed;
  env.manifest.build = telemetry::RunManifest::build_flavor();
  env.manifest.fault_spec_hash =
      spec.fault_spec_json.empty() ? ""
                                   : telemetry::fnv1a_hex(spec.fault_spec_json);
  env.optimizer = spec.optimizer;
  env.objective = objective_name(spec.objective);
  env.seed = spec.seed;
  env.evaluations = d.unique_configs();
  env.space_hash = AttackSpace::space_hash();
  env.spec_hash = spec.spec_hash();
  env.fault_spec_hash = env.manifest.fault_spec_hash;
  env.victim_accesses = spec.eval.victim_accesses;
  env.victim_iterations = spec.eval.victim_iterations;
  env.deadline_ms = spec.eval.deadline_ms;
  env.slo_iter_us = spec.eval.slo_iter_us;
  env.regulated_budget_mbps = spec.eval.regulated_budget_mbps;
  env.window_us = spec.eval.window_us;
  env.margin = spec.margin;
  for (std::size_t i = 0; i < spec.validate_seeds; ++i) {
    env.validate_seeds.push_back(spec.seed + 1 + i);
  }
  env.solo_iter_mean_ps = d.solo_iter_mean_ps;
  env.exp1_mix_objective =
      objective_value(spec.objective, d.cache.at(eval_key(exp1_json, false)),
                      d.solo_iter_mean_ps);
  env.argmax_config_json = best_cfg;
  env.argmax_objective = best_score;

  auto fill_stats = [&](const EvalResult& r) {
    qos::EnvelopeEvalStats s;
    s.iter_mean_ps = r.iter_mean_ps;
    s.iter_p99_ps = r.iter_p99_ps;
    s.read_p99_ps = r.read_p99_ps;
    s.victim_bw_bps = r.victim_bw_bps;
    s.aggressor_bps = r.aggressor_bps;
    s.slo_miss_frac = r.slo_miss_frac;
    return s;
  };
  env.unregulated = fill_stats(d.cache.at(eval_key(best_cfg, false)));
  env.regulated = fill_stats(d.cache.at(eval_key(best_cfg, true)));

  env.capacity_bps = spec.capacity_bps;
  env.max_reservable_frac = spec.max_reservable_frac;

  // Fold the victim bound over every regulated measurement the search
  // made — every visited config's regulated run plus every validation
  // replay — then widen by the margin.
  double worst_p99 = 0.0;
  double worst_bw = -1.0;
  double worst_slowdown = 0.0;
  for (const auto& [k, r] : d.cache) {
    const bool reg_eval =
        k.size() > 4 && k.compare(k.size() - 4, 4, "|reg") == 0;
    const bool validation_eval = k.rfind("validate|", 0) == 0;
    if (!reg_eval && !validation_eval) continue;
    worst_p99 = std::max(worst_p99, r.read_p99_ps);
    worst_bw = worst_bw < 0 ? r.victim_bw_bps : std::min(worst_bw, r.victim_bw_bps);
    if (d.solo_iter_mean_ps > 0) {
      worst_slowdown =
          std::max(worst_slowdown, r.iter_mean_ps / d.solo_iter_mean_ps);
    }
  }
  qos::MasterBound cpu;
  cpu.max_p99_ps = worst_p99 * (1.0 + spec.margin);
  cpu.min_bandwidth_bps = worst_bw > 0 ? worst_bw * (1.0 - spec.margin) : 0.0;
  cpu.max_slowdown = worst_slowdown * (1.0 + spec.margin);
  env.masters.emplace("cpu", cpu);

  const double budget_bps = spec.eval.regulated_budget_mbps * 1e6;
  constexpr std::size_t kAccelPorts = 4;  // SocConfig default topology
  for (std::size_t p = 0; p < kAccelPorts; ++p) {
    qos::MasterBound hp;
    hp.max_reserved_bps = budget_bps;
    hp.max_bandwidth_bps = budget_bps * (1.0 + spec.margin);
    env.masters.emplace("hp" + std::to_string(p), hp);
  }
  env.certified_total_bps =
      std::min(spec.capacity_bps * spec.max_reservable_frac,
               budget_bps * static_cast<double>(kAccelPorts));

  out.envelope = std::move(env);
  return out;
}

EvalResult replay_envelope(const qos::CertifiedEnvelope& env,
                           std::uint64_t sim_seed, bool regulated,
                           const fault::FaultPlan* faults,
                           const std::string& metrics_json_path) {
  const std::string expect =
      env.fault_spec_hash.empty()
          ? ""
          : env.fault_spec_hash;
  if (expect.empty() && faults != nullptr && !faults->empty()) {
    throw ConfigError(
        "replay: envelope was certified without faults but a fault plan was "
        "given");
  }
  if (!expect.empty() && (faults == nullptr || faults->empty())) {
    throw ConfigError(
        "replay: envelope was certified with fault plan " + expect +
        " — pass the same --fault-spec");
  }
  const AttackConfig cfg =
      AttackSpace::from_json(util::JsonValue::parse(env.argmax_config_json));
  EvalSpec spec = eval_spec_from_envelope(env, faults);
  const sim::TimePs slo_ps =
      resolve_slo_ps(env.slo_iter_us, env.solo_iter_mean_ps);
  // The replay's provenance is the envelope's, plus what distinguishes
  // this replay from any other (seed and regulation mode).
  telemetry::RunManifest manifest = env.manifest;
  manifest.seed = sim_seed;
  manifest.scenario +=
      std::string(" replay=1 regulated=") + (regulated ? "1" : "0");
  return evaluate_attack(&cfg, spec, sim_seed, regulated, slo_ps,
                         metrics_json_path, &manifest);
}

}  // namespace fgqos::search
