/// \file attack_space.hpp
/// \brief The discrete aggressor-configuration space the contention
///        search optimizes over.
///
/// An AttackConfig is a point in a small categorical product space:
/// aggressor count × address pattern (R/W mix) × burst length × stride ×
/// outstanding depth × bank targeting × arrival phasing. Each dimension
/// is a fixed catalog of values; a config stores per-dimension *choice
/// indices*, which keeps optimizer moves (flip one dimension, mutate with
/// probability 1/d) trivial and makes every config canonically
/// serializable for caching and journaling.
///
/// The catalogs deliberately contain the hand-written EXP1 aggressor mix
/// (4 × seq_rd / 1 KiB bursts / 4 outstanding / spread banks / always-on)
/// and the PR-8 "thrash" point (rnd_rd / 64 B / 48 outstanding), so the
/// search space provably includes both the paper's baseline and a known
/// nasty configuration.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "workload/traffic_gen.hpp"

namespace fgqos::util {
class JsonValue;
}

namespace fgqos::search {

/// Dimension indices into AttackConfig::choice.
enum Dim : std::size_t {
  kDimCount = 0,        ///< number of aggressor generators
  kDimPattern = 1,      ///< address pattern / R/W mix
  kDimBurst = 2,        ///< burst length (bytes per transaction)
  kDimStride = 3,       ///< stride (kStrided pattern only)
  kDimOutstanding = 4,  ///< per-generator outstanding cap
  kDimBankFocus = 5,    ///< 0 = spread footprints, 1 = all on one region
  kDimPhase = 6,        ///< arrival pattern: always-on or on/off phased
  kNumDims = 7,
};

/// One point in the attack space: a choice index per dimension.
struct AttackConfig {
  std::array<std::uint8_t, kNumDims> choice{};

  friend bool operator==(const AttackConfig& a, const AttackConfig& b) {
    return a.choice == b.choice;
  }
};

/// The catalog of the space plus the decode to simulator objects.
class AttackSpace {
 public:
  static constexpr std::array<int, 6> kCounts = {1, 2, 3, 4, 6, 8};
  static constexpr std::array<wl::Pattern, 6> kPatterns = {
      wl::Pattern::kSeqRead,   wl::Pattern::kSeqWrite, wl::Pattern::kRandomRead,
      wl::Pattern::kRandomWrite, wl::Pattern::kCopy,   wl::Pattern::kStrided};
  static constexpr std::array<std::uint32_t, 4> kBursts = {64, 256, 1024, 4096};
  static constexpr std::array<std::uint64_t, 3> kStrides = {256, 4096, 65536};
  static constexpr std::array<std::size_t, 4> kOutstanding = {4, 8, 16, 48};
  static constexpr std::array<int, 2> kBankFocus = {0, 1};
  /// {active_us, idle_us}; {0,0} = always on.
  static constexpr std::array<std::array<std::uint32_t, 2>, 3> kPhases = {
      {{0, 0}, {10, 10}, {100, 100}}};

  /// Number of choices along dimension \p d.
  [[nodiscard]] static std::size_t dim_size(std::size_t d);

  /// Canonicalizes \p c: the stride dimension collapses to index 0 for
  /// non-strided patterns (it is then meaningless, and two configs that
  /// differ only there must compare, cache, and serialize identically).
  [[nodiscard]] static AttackConfig normalize(AttackConfig c);

  /// The hand-written EXP1 aggressor mix as a point in this space.
  [[nodiscard]] static AttackConfig exp1_mix();

  /// Canonical JSON object (alphabetical keys, decoded values), e.g.
  /// {"bank_focus":0,"burst_bytes":1024,"count":4,"outstanding":4,
  ///  "pattern":"seq_rd","phase_us":[0,0],"stride_bytes":0}.
  [[nodiscard]] static std::string to_json(const AttackConfig& c);

  /// Inverse of to_json(); throws ConfigError on out-of-catalog values.
  [[nodiscard]] static AttackConfig from_json(const util::JsonValue& v);

  /// Decodes \p c into per-generator configs. Generator i is named
  /// "atk<i>", seeded \p seed + i, and targets accelerator port
  /// i % \p accel_ports. With bank focusing all generators hammer one
  /// shared 4 MiB region; spread mode gives each a private 16 MiB slab.
  [[nodiscard]] static std::vector<wl::TrafficGenConfig> to_traffic_gens(
      const AttackConfig& c, std::uint64_t seed);

  /// FNV-1a hash over the full catalog rendering — stamps envelopes so a
  /// catalog change invalidates cached searches and committed goldens.
  [[nodiscard]] static std::string space_hash();
};

}  // namespace fgqos::search
