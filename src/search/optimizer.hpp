/// \file optimizer.hpp
/// \brief Pluggable batch optimizers over the attack space.
///
/// The search driver runs a propose/observe loop: the optimizer proposes
/// a batch of configs, the driver evaluates them (through the
/// ScenarioRunner, with caching), and hands every score back via
/// observe(). Optimizers are strictly deterministic functions of their
/// seed and the observed scores — never of wall-clock, evaluation order
/// within a batch, or --jobs — which is what makes searches
/// jobs-invariant and resumable.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "search/attack_space.hpp"
#include "sim/random.hpp"

namespace fgqos::search {

/// The propose/observe interface.
class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// Next batch of candidate configs (normalized, possibly already seen
  /// by the driver's cache). Empty = the optimizer is done.
  [[nodiscard]] virtual std::vector<AttackConfig> propose() = 0;

  /// Scores for the exact batch the last propose() returned (same order;
  /// higher is worse-for-the-victim, i.e. better for the search).
  virtual void observe(const std::vector<double>& scores) = 0;

  [[nodiscard]] virtual const char* name() const = 0;
};

/// Random-restart greedy coordinate descent: from each start point (the
/// hand-written EXP1 mix first, then random restarts), repeatedly
/// proposes every single-dimension neighbour of the incumbent and moves
/// to the best strictly-improving one until a whole pass yields no
/// improvement.
class CoordinateDescent final : public Optimizer {
 public:
  CoordinateDescent(std::uint64_t seed, std::size_t restarts);

  [[nodiscard]] std::vector<AttackConfig> propose() override;
  void observe(const std::vector<double>& scores) override;
  [[nodiscard]] const char* name() const override { return "coord"; }

  [[nodiscard]] AttackConfig best_config() const { return best_; }
  [[nodiscard]] double best_score() const { return best_score_; }

 private:
  [[nodiscard]] AttackConfig random_config();
  void start_restart();

  sim::Xoshiro256 rng_;
  std::size_t restarts_;
  std::size_t restart_ = 0;
  bool need_init_ = true;      ///< pending propose of the incumbent itself
  AttackConfig current_{};
  double current_score_ = 0.0;
  std::vector<AttackConfig> batch_;
  AttackConfig best_{};
  double best_score_ = -1.0;
  bool done_ = false;
};

/// (mu, lambda) evolution strategy over the categorical space: lambda
/// offspring per generation, each a per-dimension mutation of a uniformly
/// chosen parent; the mu best offspring of the generation become the next
/// parents (comma selection; elitism comes from the driver-side cache
/// keeping the global best).
class MuLambdaES final : public Optimizer {
 public:
  MuLambdaES(std::uint64_t seed, std::size_t mu, std::size_t lambda,
             std::size_t generations);

  /// Optional warm start: installs up to mu elite configs as the initial
  /// parent pool (used by the "both" pipeline to hand the coordinate
  /// phase's top results to the ES). Call before the first propose().
  void seed_parents(const std::vector<AttackConfig>& elites);

  [[nodiscard]] std::vector<AttackConfig> propose() override;
  void observe(const std::vector<double>& scores) override;
  [[nodiscard]] const char* name() const override { return "es"; }

  [[nodiscard]] AttackConfig best_config() const { return best_; }
  [[nodiscard]] double best_score() const { return best_score_; }

 private:
  [[nodiscard]] AttackConfig random_config();
  [[nodiscard]] AttackConfig mutate(const AttackConfig& parent);

  sim::Xoshiro256 rng_;
  std::size_t mu_;
  std::size_t lambda_;
  std::size_t generations_;
  std::size_t generation_ = 0;
  std::vector<AttackConfig> parents_;
  std::vector<AttackConfig> batch_;
  AttackConfig best_{};
  double best_score_ = -1.0;
};

/// Builds the named optimizer ("coord" | "es"); the "both" pipeline is
/// assembled by the search driver. Throws ConfigError on unknown names.
[[nodiscard]] std::unique_ptr<Optimizer> make_optimizer(
    const std::string& name, std::uint64_t seed, std::size_t restarts,
    std::size_t mu, std::size_t lambda, std::size_t generations);

}  // namespace fgqos::search
