/// \file objective.hpp
/// \brief Victim objective evaluation for the contention search.
///
/// One evaluation = one deterministic simulation: a pointer-chase victim
/// on the CPU port, the decoded AttackConfig's generators on the HP
/// ports, optionally regulated (per-port token buckets at the certified
/// budget) and optionally composed with a fault plan so certification
/// covers degraded modes. The returned EvalResult carries every quantity
/// any of the three objectives (slowdown vs. solo, read p99, SLO-miss
/// fraction) or the envelope bounds need, so a cached evaluation never
/// has to be re-run when the consumer changes.
#pragma once

#include <cstdint>
#include <string>

#include "fault/fault_plan.hpp"
#include "search/attack_space.hpp"
#include "sim/time.hpp"

namespace fgqos::telemetry {
struct RunManifest;
}

namespace fgqos::search {

/// Which victim quantity the search maximizes.
enum class Objective : std::uint8_t {
  kSlowdown,  ///< victim mean iteration time / solo mean iteration time
  kP99,       ///< victim port read p99 latency (ps)
  kSloMiss,   ///< fraction of victim iterations exceeding slo_iter_us
};

/// Parses "slowdown" | "p99" | "slo_miss"; throws ConfigError otherwise.
[[nodiscard]] Objective objective_from_name(const std::string& name);
[[nodiscard]] const char* objective_name(Objective o);

/// Scenario parameters shared by every evaluation of one search.
struct EvalSpec {
  std::uint64_t victim_accesses = 256;   ///< pointer-chase loads / iteration
  std::uint64_t victim_iterations = 4;   ///< bounded victim run length
  double deadline_ms = 400.0;            ///< wall deadline for the sim run
  double slo_iter_us = 0.0;              ///< 0 = derive 2x solo mean
  double regulated_budget_mbps = 400.0;  ///< per-HP-port budget when regulated
  double window_us = 1.0;                ///< regulation window
  /// Optional fault plan armed in every evaluation (nullptr = none);
  /// borrowed, must outlive the spec.
  const fault::FaultPlan* faults = nullptr;
};

/// Everything one simulation measured about the victim.
struct EvalResult {
  double iter_mean_ps = 0.0;
  double iter_p99_ps = 0.0;
  double read_p99_ps = 0.0;
  double victim_bw_bps = 0.0;
  double aggressor_bps = 0.0;   ///< aggregate HP-port granted bandwidth
  double slo_miss_frac = 0.0;
  bool deadline_missed = false;
};

/// Runs one simulation of \p config (nullptr = solo victim, no
/// aggressors) with the given spec. \p sim_seed seeds the platform
/// (victim RNG, generator RNGs, fault streams); equal
/// (config, spec, sim_seed, regulated) is bit-reproducible.
/// \p slo_iter_ps resolves the SLO threshold (pass the derived value so
/// solo and attack runs agree). A non-empty \p metrics_json_path saves
/// the platform's metrics snapshot (port.* gauges/counters, stamped with
/// \p manifest) — the measured side of a bounds-vs-measured check.
[[nodiscard]] EvalResult evaluate_attack(
    const AttackConfig* config, const EvalSpec& spec, std::uint64_t sim_seed,
    bool regulated, sim::TimePs slo_iter_ps,
    const std::string& metrics_json_path = "",
    const telemetry::RunManifest* manifest = nullptr);

/// Extracts the objective value from \p r (slowdown needs the solo mean).
[[nodiscard]] double objective_value(Objective o, const EvalResult& r,
                                     double solo_iter_mean_ps);

}  // namespace fgqos::search
