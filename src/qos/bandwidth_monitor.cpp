#include "qos/bandwidth_monitor.hpp"

#include "util/config_error.hpp"

namespace fgqos::qos {

BandwidthMonitor::BandwidthMonitor(sim::Simulator& sim, MonitorConfig cfg)
    : sim_(sim), cfg_(std::move(cfg)) {
  config_check(cfg_.window_ps > 0, "BandwidthMonitor: window must be > 0");
  config_check(cfg_.count_reads || cfg_.count_writes,
               "BandwidthMonitor: must count at least one direction");
  window_start_ = sim_.now();
  boundary_event_ = sim_.make_recurring_event(
      [this](std::uint64_t epoch) { on_boundary(epoch); },
      sim_.profile_tag("qos.monitor"));
  schedule_boundary();
}

void BandwidthMonitor::schedule_boundary() {
  sim_.schedule_recurring(boundary_event_, window_start_ + cfg_.window_ps,
                          epoch_);
}

void BandwidthMonitor::close_window(sim::TimePs now) {
  last_window_bytes_ = window_bytes_;
  if (cfg_.keep_window_trace) {
    trace_.push_back(window_bytes_);
  }
  window_bytes_ = 0;
  threshold_fired_ = false;
  ++windows_closed_;
  window_start_ = now;
  if (trace_writer_ != nullptr) {
    trace_writer_->counter(track_, "window_bytes", now,
                           static_cast<double>(last_window_bytes_));
  }
}

void BandwidthMonitor::on_boundary(std::uint64_t epoch) {
  if (epoch != epoch_) {
    return;  // stale event from before a set_window() reconfiguration
  }
  if (freeze_fault_ && freeze_fault_(sim_.now())) {
    // Frozen sample register: the boundary passes without publishing.
    // The cadence continues so the fault can thaw at a later boundary.
    ++frozen_boundaries_;
    window_start_ = sim_.now();
    schedule_boundary();
    return;
  }
  close_window(sim_.now());
  schedule_boundary();
}

void BandwidthMonitor::set_threshold(std::uint64_t bytes, ThresholdFn fn) {
  threshold_ = bytes;
  threshold_fn_ = std::move(fn);
  threshold_fired_ = false;
}

void BandwidthMonitor::set_window(sim::TimePs window_ps) {
  config_check(window_ps > 0, "BandwidthMonitor: window must be > 0");
  cfg_.window_ps = window_ps;
  ++epoch_;
  // Bytes counted in the partially-elapsed window must not silently
  // vanish: close the partial window (fold it into last_window_bytes_,
  // the trace and the counter series) rather than zeroing the count.
  if (window_bytes_ > 0) {
    close_window(sim_.now());
  } else {
    window_start_ = sim_.now();
    threshold_fired_ = false;
  }
  schedule_boundary();
}

double BandwidthMonitor::mean_bandwidth_bps(sim::TimePs since_ps) const {
  const sim::TimePs now = sim_.now();
  if (now <= since_ps) {
    return 0.0;
  }
  return sim::bytes_per_second(total_bytes_, now - since_ps);
}

void BandwidthMonitor::reset_totals() {
  total_bytes_ = 0;
  trace_.clear();
  windows_closed_ = 0;
}

void BandwidthMonitor::set_trace(telemetry::TraceWriter* writer) {
  trace_writer_ = writer;
  track_ = telemetry::TrackId{};
  if (trace_writer_ != nullptr) {
    track_ = trace_writer_->track(telemetry::Cat::kQos, cfg_.name);
    if (!track_.valid()) {
      trace_writer_ = nullptr;  // qos category filtered out
    }
  }
}

void BandwidthMonitor::on_issue(const axi::Transaction&, sim::TimePs) {}

void BandwidthMonitor::on_grant(const axi::LineRequest& line,
                                sim::TimePs now) {
  if (line.is_write ? !cfg_.count_writes : !cfg_.count_reads) {
    return;
  }
  total_bytes_ += line.bytes;
  window_bytes_ += line.bytes;
  if (saturation_fault_) {
    const std::uint64_t cap = saturation_fault_(now);
    if (cap > 0 && window_bytes_ > cap) {
      // Saturated hardware counter: the window count pegs at the cap
      // (totals stay exact — only the sampled register is faulty).
      window_bytes_ = cap;
      ++saturated_grants_;
    }
  }
  if (threshold_ > 0 && !threshold_fired_ && window_bytes_ >= threshold_ &&
      threshold_fn_) {
    threshold_fired_ = true;
    if (trace_writer_ != nullptr) {
      trace_writer_->instant(track_, "threshold", now);
    }
    // Same-cycle delivery: this is the tightly-coupled observation path.
    threshold_fn_(now, window_bytes_);
  }
}

void BandwidthMonitor::on_complete(const axi::Transaction&, sim::TimePs) {}

}  // namespace fgqos::qos
