#include "qos/polling_monitor.hpp"

#include "util/config_error.hpp"

namespace fgqos::qos {

LaggedRegulator::LaggedRegulator(sim::Simulator& sim,
                                 LaggedRegulatorConfig cfg)
    : sim_(sim), cfg_(std::move(cfg)) {
  config_check(cfg_.window_ps > 0, "LaggedRegulator: window must be > 0");
  prof_tag_ = sim_.profile_tag("qos.lagged_regulator");
  window_event_ = sim_.make_recurring_event(
      [this](std::uint64_t) { on_window(); }, prof_tag_);
  sim_.schedule_recurring(window_event_, sim_.now() + cfg_.window_ps);
}

void LaggedRegulator::on_window() {
  if (true_bytes_ > cfg_.budget_bytes) {
    const std::uint64_t overshoot = true_bytes_ - cfg_.budget_bytes;
    if (overshoot > max_overshoot_) {
      max_overshoot_ = overshoot;
    }
  }
  true_bytes_ = 0;
  observed_bytes_ = 0;
  ++epoch_;  // pending observations from the old window are dropped
  sim_.schedule_recurring(window_event_, sim_.now() + cfg_.window_ps);
}

void LaggedRegulator::on_observe(std::uint64_t bytes, std::uint64_t epoch) {
  if (epoch != epoch_) {
    return;
  }
  observed_bytes_ += bytes;
}

bool LaggedRegulator::allow(const axi::LineRequest& /*line*/,
                            sim::TimePs) const {
  if (!cfg_.enabled) {
    return true;
  }
  // Decision on *observed* state only: the gate shuts when the stale view
  // crosses the budget.
  return observed_bytes_ < cfg_.budget_bytes;
}

void LaggedRegulator::on_grant(const axi::LineRequest& line,
                               sim::TimePs now) {
  if (!cfg_.enabled) {
    return;
  }
  true_bytes_ += line.bytes;
  const std::uint64_t bytes = line.bytes;
  const std::uint64_t epoch = epoch_;
  if (cfg_.observation_latency_ps == 0) {
    on_observe(bytes, epoch);
    return;
  }
  sim_.schedule_at(now + cfg_.observation_latency_ps,
                   [this, bytes, epoch]() { on_observe(bytes, epoch); },
                   prof_tag_);
}

}  // namespace fgqos::qos
