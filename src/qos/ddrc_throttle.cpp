#include "qos/ddrc_throttle.hpp"

#include "util/config_error.hpp"

namespace fgqos::qos {

DdrcThrottle::DdrcThrottle(sim::Simulator& sim, DdrcThrottleConfig cfg,
                           axi::SlaveIf& inner)
    : sim_(sim),
      cfg_(std::move(cfg)),
      inner_(&inner),
      read_bucket_(budget_for_rate(cfg_.read_bps, cfg_.window_ps),
                   ReplenishKind::kFixedWindow),
      write_bucket_(budget_for_rate(cfg_.write_bps, cfg_.window_ps),
                    ReplenishKind::kFixedWindow) {
  config_check(cfg_.window_ps > 0, "DdrcThrottle: window must be > 0");
  window_event_ = sim_.make_recurring_event(
      [this](std::uint64_t) { on_window(); },
      sim_.profile_tag("qos.ddrc_throttle"));
  sim_.schedule_recurring(window_event_, sim_.now() + cfg_.window_ps);
}

void DdrcThrottle::on_window() {
  read_bucket_.replenish();
  write_bucket_.replenish();
  sim_.schedule_recurring(window_event_, sim_.now() + cfg_.window_ps);
}

void DdrcThrottle::set_rates(double read_bps, double write_bps) {
  cfg_.read_bps = read_bps;
  cfg_.write_bps = write_bps;
  read_bucket_.set_budget(budget_for_rate(read_bps, cfg_.window_ps));
  write_bucket_.set_budget(budget_for_rate(write_bps, cfg_.window_ps));
}

bool DdrcThrottle::can_accept(const axi::LineRequest& line,
                              sim::TimePs now) const {
  const bool throttled = line.is_write ? cfg_.write_bps > 0 : cfg_.read_bps > 0;
  if (throttled) {
    const TokenBucket& bucket = line.is_write ? write_bucket_ : read_bucket_;
    if (!bucket.can_spend()) {
      ++rejections_;
      return false;
    }
  }
  return inner_->can_accept(line, now);
}

void DdrcThrottle::accept(axi::LineRequest line, sim::TimePs now) {
  const bool throttled = line.is_write ? cfg_.write_bps > 0 : cfg_.read_bps > 0;
  if (throttled) {
    TokenBucket& bucket = line.is_write ? write_bucket_ : read_bucket_;
    bucket.spend(line.bytes);
  }
  inner_->accept(line, now);
}

}  // namespace fgqos::qos
