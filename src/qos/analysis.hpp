/// \file analysis.hpp
/// \brief Analytical worst-case latency bounds under regulated
///        interference.
///
/// The point of bandwidth regulation in real-time systems is not the
/// average: it is that a *bound* on interfering traffic yields a bound on
/// the critical request's latency. This module derives a conservative
/// closed-form bound for one critical read line on the modelled platform,
/// in the tradition of the MemGuard/PREM schedulability analyses:
///
///   L_wc = path + (K + 1) * S_wc + R + D
///
/// where
///   * path — request/response wiring latency (port + controller
///     front-end + response path);
///   * S_wc — worst-case DRAM service time of one line (row conflict:
///     PRE + ACT + CAS + data, plus a FAW stall);
///   * K    — interfering lines that can be ahead of the critical one,
///     bounded by BOTH the read-queue capacity and the regulated
///     injection: over any window the aggressors can inject at most
///     their aggregate budget plus one in-flight line each (the credit
///     overdraft);
///   * R    — one refresh (tRFC) that may be in progress on arrival;
///   * D    — one write-drain batch (high - low watermark lines) that
///     may have priority when the read arrives, bounded additionally by
///     the controller's read-aging threshold.
///
/// The bound is validated against simulation in the test suite
/// (AnalysisBound.*: observed max <= bound across scenarios).
#pragma once

#include <cstddef>
#include <cstdint>

#include "dram/controller.hpp"
#include "sim/time.hpp"

namespace fgqos::qos {

/// Inputs of the bound.
struct BoundInputs {
  dram::ControllerConfig dram{};
  /// Sum of request-path latencies on the critical route:
  /// port request + controller front-end + response path.
  sim::TimePs path_latency_ps = 0;
  /// Line size of the critical request.
  std::uint32_t line_bytes = 64;
  /// Aggregate regulated aggressor rate (bytes/second).
  double aggressor_total_bps = 0;
  /// Regulation window of the aggressor regulators.
  sim::TimePs regulation_window_ps = sim::kPsPerUs;
  /// Number of regulated aggressor masters (credit overdraft allowance).
  std::size_t aggressor_count = 0;
};

/// The bound plus its breakdown (all in picoseconds).
struct LatencyBound {
  sim::TimePs total_ps = 0;
  sim::TimePs path_ps = 0;
  sim::TimePs service_ps = 0;      ///< (K+1) * S_wc
  sim::TimePs refresh_ps = 0;      ///< R
  sim::TimePs write_drain_ps = 0;  ///< D
  std::uint64_t interfering_lines = 0;  ///< K
  sim::TimePs per_line_service_ps = 0;  ///< S_wc
};

/// Computes the conservative worst-case latency of one critical read
/// line. Throws ConfigError on inconsistent inputs.
LatencyBound worst_case_read_latency(const BoundInputs& in);

}  // namespace fgqos::qos
