#include "qos/regfile.hpp"

#include "util/config_error.hpp"

namespace fgqos::qos {

QosRegFile::QosRegFile(Regulator* regulator, BandwidthMonitor* monitor)
    : regulator_(regulator), monitor_(monitor) {
  config_check(regulator_ != nullptr || monitor_ != nullptr,
               "QosRegFile: needs at least one of regulator/monitor");
}

std::uint32_t QosRegFile::read(Reg reg) const {
  switch (reg) {
    case Reg::kCtrl:
      return regulator_ != nullptr && regulator_->enabled() ? 1u : 0u;
    case Reg::kBudget:
      return regulator_ != nullptr
                 ? static_cast<std::uint32_t>(regulator_->config().budget_bytes)
                 : 0u;
    case Reg::kWindowNs:
      return regulator_ != nullptr
                 ? static_cast<std::uint32_t>(regulator_->config().window_ps /
                                              sim::kPsPerNs)
                 : 0u;
    case Reg::kStatus:
      return regulator_ != nullptr && regulator_->exhausted() ? 1u : 0u;
    case Reg::kMonTotalLo:
      return monitor_ != nullptr
                 ? static_cast<std::uint32_t>(monitor_->total_bytes())
                 : 0u;
    case Reg::kMonTotalHi:
      return monitor_ != nullptr
                 ? static_cast<std::uint32_t>(monitor_->total_bytes() >> 32)
                 : 0u;
    case Reg::kMonLastWindow:
      return monitor_ != nullptr
                 ? static_cast<std::uint32_t>(monitor_->last_window_bytes())
                 : 0u;
    case Reg::kIrqThreshold:
      return irq_threshold_;
    case Reg::kBurstWindows:
      return regulator_ != nullptr
                 ? static_cast<std::uint32_t>(
                       regulator_->config().max_accumulation_windows)
                 : 0u;
    case Reg::kExhaustCount:
      return regulator_ != nullptr
                 ? static_cast<std::uint32_t>(
                       regulator_->stats().exhausted_windows)
                 : 0u;
  }
  return 0;
}

void QosRegFile::write(Reg reg, std::uint32_t value) {
  switch (reg) {
    case Reg::kCtrl:
      if (regulator_ != nullptr) {
        regulator_->set_enabled((value & 1u) != 0);
        if ((value & 2u) != 0) {
          // Self-clearing restart command: reload credit from BUDGET and
          // restart the replenish window (reads back as 0).
          regulator_->restart_window();
        }
      }
      return;
    case Reg::kBudget:
      if (regulator_ != nullptr) {
        regulator_->set_budget(value);
      }
      return;
    case Reg::kWindowNs:
      if (regulator_ != nullptr && value > 0) {
        regulator_->set_window(static_cast<sim::TimePs>(value) *
                               sim::kPsPerNs);
      }
      return;
    case Reg::kIrqThreshold:
      irq_threshold_ = value;
      rearm_threshold();
      return;
    case Reg::kStatus:
    case Reg::kMonTotalLo:
    case Reg::kMonTotalHi:
    case Reg::kMonLastWindow:
    case Reg::kBurstWindows:
    case Reg::kExhaustCount:
      return;  // read-only
  }
}

void QosRegFile::set_irq_handler(ThresholdFn handler) {
  irq_handler_ = std::move(handler);
  rearm_threshold();
}

void QosRegFile::rearm_threshold() {
  if (monitor_ == nullptr) {
    return;
  }
  if (irq_threshold_ == 0 || !irq_handler_) {
    monitor_->set_threshold(0, nullptr);
    return;
  }
  monitor_->set_threshold(irq_threshold_, irq_handler_);
}

std::uint64_t QosRegFile::monitor_total_bytes() const {
  return (static_cast<std::uint64_t>(read(Reg::kMonTotalHi)) << 32) |
         read(Reg::kMonTotalLo);
}

}  // namespace fgqos::qos
