#include "qos/bank_regulator.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "telemetry/journal.hpp"
#include "util/config_error.hpp"
#include "util/json.hpp"

namespace fgqos::qos {

BankRegulator::BankRegulator(sim::Simulator& sim, BankRegulatorConfig cfg,
                             const dram::TimingConfig& timing,
                             dram::MappingPolicy mapping)
    : sim_(sim),
      cfg_(std::move(cfg)),
      mapper_(timing, mapping),
      banks_(timing.banks) {
  config_check(cfg_.window_ps > 0, "BankRegulator: window must be > 0");
  config_check(cfg_.gate_reads || cfg_.gate_writes,
               "BankRegulator: must gate at least one direction");
  config_check(cfg_.budget_bytes.size() <= banks_,
               "BankRegulator: more budgets than DRAM banks");
  cfg_.budget_bytes.resize(banks_, 0);
  buckets_.reserve(banks_);
  limited_.resize(banks_, 0);
  exhausted_.resize(banks_, 0);
  exhausted_since_.resize(banks_, 0);
  stats_.resize(banks_);
  for (std::uint32_t b = 0; b < banks_; ++b) {
    buckets_.emplace_back(cfg_.budget_bytes[b], cfg_.kind,
                          cfg_.max_accumulation_windows);
    limited_[b] = cfg_.budget_bytes[b] != 0 ? 1 : 0;
  }
  window_start_ = sim_.now();
  replenish_event_ = sim_.make_recurring_event(
      [this](std::uint64_t epoch) { on_replenish(epoch); },
      sim_.profile_tag("qos.bank_regulator"));
  schedule_replenish();
}

void BankRegulator::schedule_replenish() {
  sim_.schedule_recurring(replenish_event_, window_start_ + cfg_.window_ps,
                          epoch_);
}

void BankRegulator::on_replenish(std::uint64_t epoch) {
  if (epoch != epoch_) {
    return;  // stale: window was reconfigured
  }
  const sim::TimePs now = sim_.now();
  for (std::uint32_t b = 0; b < banks_; ++b) {
    if (exhausted_[b] != 0) {
      close_throttle(b, now);
    }
    buckets_[b].replenish();
  }
  window_start_ = now;
  schedule_replenish();
}

void BankRegulator::close_throttle(std::uint32_t bank, sim::TimePs now) {
  stats_[bank].throttled_ps += now - exhausted_since_[bank];
  exhausted_[bank] = 0;
}

void BankRegulator::reevaluate_bank(std::uint32_t bank) {
  // Same discipline as Regulator::reevaluate_exhaustion: a throttle
  // interval must not straddle a configuration change. Close the running
  // interval at the edge and start a fresh one only if the bank is still
  // shut under the new programming.
  const sim::TimePs now = sim_.now();
  const bool was_exhausted = exhausted_[bank] != 0;
  if (was_exhausted) {
    close_throttle(bank, now);
  }
  if (cfg_.enabled && limited_[bank] != 0 && !buckets_[bank].can_spend()) {
    exhausted_[bank] = 1;
    exhausted_since_[bank] = now;
    if (!was_exhausted) {
      ++stats_[bank].exhausted_windows;
    }
  }
}

void BankRegulator::set_enabled(bool enabled) {
  if (cfg_.enabled && !enabled) {
    const sim::TimePs now = sim_.now();
    for (std::uint32_t b = 0; b < banks_; ++b) {
      if (exhausted_[b] != 0) {
        close_throttle(b, now);
      }
    }
  }
  if (journal_ != nullptr && cfg_.enabled != enabled) {
    journal_->record(sim_.now(), cfg_.name, "set_enabled",
                     cfg_.enabled ? 1.0 : 0.0, enabled ? 1.0 : 0.0,
                     "host_write");
  }
  cfg_.enabled = enabled;
}

void BankRegulator::set_bank_budget(std::uint32_t bank,
                                    std::uint64_t budget_bytes) {
  config_check(bank < banks_, "BankRegulator: bank index out of range");
  if (journal_ != nullptr && cfg_.budget_bytes[bank] != budget_bytes) {
    journal_->record(sim_.now(), cfg_.name, "set_bank_budget",
                     static_cast<double>(cfg_.budget_bytes[bank]),
                     static_cast<double>(budget_bytes), "host_write",
                     "bank=" + std::to_string(bank));
  }
  buckets_[bank].set_budget(budget_bytes);
  cfg_.budget_bytes[bank] = budget_bytes;
  limited_[bank] = budget_bytes != 0 ? 1 : 0;
  reevaluate_bank(bank);
}

void BankRegulator::set_bank_rate(std::uint32_t bank,
                                  double bytes_per_second) {
  set_bank_budget(bank, budget_for_rate(bytes_per_second, cfg_.window_ps));
}

void BankRegulator::set_window(sim::TimePs window_ps) {
  config_check(window_ps > 0, "BankRegulator: window must be > 0");
  if (journal_ != nullptr && cfg_.window_ps != window_ps) {
    journal_->record(sim_.now(), cfg_.name, "set_window",
                     static_cast<double>(cfg_.window_ps),
                     static_cast<double>(window_ps), "host_write");
  }
  cfg_.window_ps = window_ps;
  ++epoch_;
  window_start_ = sim_.now();
  schedule_replenish();
  for (std::uint32_t b = 0; b < banks_; ++b) {
    reevaluate_bank(b);
  }
}

std::uint64_t BankRegulator::total_exhausted_windows() const {
  std::uint64_t n = 0;
  for (const BankRegBankStats& s : stats_) {
    n += s.exhausted_windows;
  }
  return n;
}

sim::TimePs BankRegulator::total_throttled_ps() const {
  sim::TimePs ps = 0;
  for (const BankRegBankStats& s : stats_) {
    ps += s.throttled_ps;
  }
  return ps;
}

std::uint64_t BankRegulator::regulated_bytes() const {
  std::uint64_t n = 0;
  for (const BankRegBankStats& s : stats_) {
    n += s.regulated_bytes;
  }
  return n;
}

bool BankRegulator::allow(const axi::LineRequest& line, sim::TimePs) const {
  if (!cfg_.enabled || !gates_dir(line.is_write)) {
    return true;
  }
  const std::uint32_t bank = mapper_.decode(line.addr).bank;
  if (limited_[bank] == 0) {
    return true;
  }
  return buckets_[bank].can_spend();
}

void BankRegulator::on_grant(const axi::LineRequest& line, sim::TimePs now) {
  if (!cfg_.enabled || !gates_dir(line.is_write)) {
    return;
  }
  const std::uint32_t bank = mapper_.decode(line.addr).bank;
  if (limited_[bank] == 0) {
    return;
  }
  buckets_[bank].spend(line.bytes);
  stats_[bank].regulated_bytes += line.bytes;
  if (exhausted_[bank] == 0 && !buckets_[bank].can_spend()) {
    exhausted_[bank] = 1;
    exhausted_since_[bank] = now;
    ++stats_[bank].exhausted_windows;
  }
}

// ---------------------------------------------------------------------------
// BankBudgetSpec
// ---------------------------------------------------------------------------

namespace {

sim::TimePs us_to_ps(double us, const std::string& key) {
  config_check(std::isfinite(us) && us > 0,
               "BankBudgetSpec: '" + key + "' must be a finite value > 0");
  config_check(us < 1e12,
               "BankBudgetSpec: '" + key + "' is implausibly large");
  return static_cast<sim::TimePs>(
      std::llround(us * static_cast<double>(sim::kPsPerUs)));
}

double as_mbps(const util::JsonValue& v, const std::string& key) {
  const double d = v.as_number();
  config_check(std::isfinite(d) && d >= 0,
               "BankBudgetSpec: '" + key + "' must be a finite rate >= 0");
  return d;
}

void append_number(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

}  // namespace

BankBudgetSpec BankBudgetSpec::from_json(const std::string& text) {
  const util::JsonValue doc = util::JsonValue::parse(text);
  config_check(doc.is_object(), "BankBudgetSpec: top level must be an object");
  for (const auto& [key, value] : doc.as_object()) {
    (void)value;
    config_check(key == "window_us" || key == "kind" ||
                     key == "max_accumulation_windows" || key == "ports",
                 "BankBudgetSpec: unknown top-level key '" + key + "'");
  }
  BankBudgetSpec spec;
  if (doc.contains("window_us")) {
    spec.window_ps = us_to_ps(doc.at("window_us").as_number(), "window_us");
  }
  if (doc.contains("kind")) {
    const std::string& k = doc.at("kind").as_string();
    if (k == "fixed_window") {
      spec.kind = ReplenishKind::kFixedWindow;
    } else if (k == "token_bucket") {
      spec.kind = ReplenishKind::kTokenBucket;
    } else {
      throw ConfigError("BankBudgetSpec: unknown kind '" + k +
                        "' (expected fixed_window or token_bucket)");
    }
  }
  if (doc.contains("max_accumulation_windows")) {
    const double d = doc.at("max_accumulation_windows").as_number();
    config_check(d == std::floor(d) && d >= 1 && d <= 1024,
                 "BankBudgetSpec: 'max_accumulation_windows' must be an "
                 "integer in [1, 1024]");
    spec.max_accumulation_windows = static_cast<std::uint64_t>(d);
  }
  config_check(doc.contains("ports"), "BankBudgetSpec: missing 'ports'");
  config_check(doc.at("ports").is_array(),
               "BankBudgetSpec: 'ports' must be an array");
  for (const util::JsonValue& p : doc.at("ports").as_array()) {
    config_check(p.is_object(),
                 "BankBudgetSpec: each port entry must be an object");
    for (const auto& [key, value] : p.as_object()) {
      (void)value;
      config_check(key == "port" || key == "default_mbps" || key == "banks",
                   "BankBudgetSpec: unknown port key '" + key + "'");
    }
    config_check(p.contains("port"),
                 "BankBudgetSpec: port entry without 'port'");
    PortBudget pb;
    const double port = p.at("port").as_number();
    config_check(port == std::floor(port) && port >= 0 && port < 64,
                 "BankBudgetSpec: 'port' must be an integer in [0, 64)");
    pb.port = static_cast<std::uint32_t>(port);
    for (const PortBudget& seen : spec.ports) {
      config_check(seen.port != pb.port,
                   "BankBudgetSpec: duplicate port " +
                       std::to_string(pb.port));
    }
    if (p.contains("default_mbps")) {
      pb.default_mbps = as_mbps(p.at("default_mbps"), "default_mbps");
    }
    if (p.contains("banks")) {
      config_check(p.at("banks").is_object(),
                   "BankBudgetSpec: 'banks' must be an object");
      for (const auto& [bank_key, rate] : p.at("banks").as_object()) {
        std::size_t pos = 0;
        unsigned long bank = 0;
        try {
          bank = std::stoul(bank_key, &pos);
        } catch (const std::exception&) {
          pos = 0;
        }
        config_check(pos == bank_key.size() && !bank_key.empty() &&
                         bank < 1024,
                     "BankBudgetSpec: bank key '" + bank_key +
                         "' must be a bank index");
        pb.bank_mbps[static_cast<std::uint32_t>(bank)] =
            as_mbps(rate, "banks." + bank_key);
      }
    }
    spec.ports.push_back(std::move(pb));
  }
  return spec;
}

BankBudgetSpec BankBudgetSpec::load(const std::string& path) {
  std::ifstream is(path);
  config_check(is.good(), "BankBudgetSpec: cannot read " + path);
  std::ostringstream ss;
  ss << is.rdbuf();
  return from_json(ss.str());
}

std::string BankBudgetSpec::to_json() const {
  std::string out = "{\"window_us\":";
  append_number(out, static_cast<double>(window_ps) /
                         static_cast<double>(sim::kPsPerUs));
  out += ",\"kind\":\"";
  out += kind == ReplenishKind::kFixedWindow ? "fixed_window"
                                             : "token_bucket";
  out += "\",\"max_accumulation_windows\":";
  out += std::to_string(max_accumulation_windows);
  out += ",\"ports\":[";
  for (std::size_t i = 0; i < ports.size(); ++i) {
    const PortBudget& pb = ports[i];
    if (i != 0) {
      out += ',';
    }
    out += "{\"port\":" + std::to_string(pb.port) + ",\"default_mbps\":";
    append_number(out, pb.default_mbps);
    out += ",\"banks\":{";
    bool first = true;
    for (const auto& [bank, mbps] : pb.bank_mbps) {
      if (!first) {
        out += ',';
      }
      first = false;
      out += "\"" + std::to_string(bank) + "\":";
      append_number(out, mbps);
    }
    out += "}}";
  }
  out += "]}";
  return out;
}

std::vector<std::uint64_t> BankBudgetSpec::budgets_for(
    const PortBudget& pb, std::uint32_t banks) const {
  std::vector<std::uint64_t> budgets(banks, 0);
  const std::uint64_t default_budget =
      pb.default_mbps > 0
          ? budget_for_rate(pb.default_mbps * 1e6, window_ps)
          : 0;
  for (std::uint32_t b = 0; b < banks; ++b) {
    budgets[b] = default_budget;
  }
  for (const auto& [bank, mbps] : pb.bank_mbps) {
    config_check(bank < banks,
                 "BankBudgetSpec: bank " + std::to_string(bank) +
                     " out of range for " + std::to_string(banks) +
                     "-bank DRAM");
    budgets[bank] = mbps > 0 ? budget_for_rate(mbps * 1e6, window_ps) : 0;
  }
  return budgets;
}

}  // namespace fgqos::qos
