/// \file sla_watchdog.hpp
/// \brief Per-window SLA checking on top of the attribution engine.
///
/// The watchdog subscribes to the AttributionEngine's window rollovers and
/// checks each watched master's service-level objectives over every blame
/// window: delivered bandwidth against a guarantee, completion-latency p99
/// against a bound, and the fraction of the window the master spent
/// stalled on other masters' traffic against a budget. Violations are
/// raised as structured events that name the attribution-dominant
/// (aggressor, cause) cell of the offending window — the debugging answer
/// "who do I regulate" — with hysteresis (N consecutive bad windows to
/// trip, M consecutive good windows to clear) so boundary-hugging loads do
/// not flap.
///
/// Counters land in the metrics registry (qos.sla.<port>.*); the full
/// event list is available for the end-of-run report (write_report) and
/// for tests.
#pragma once

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "axi/port.hpp"
#include "sim/histogram.hpp"
#include "telemetry/attribution.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace fgqos::telemetry {
class DecisionJournal;
}

namespace fgqos::qos {

struct CertifiedEnvelope;
class QosManager;

/// Service-level objectives for one master. A zero bound disables that
/// check.
struct SlaSpec {
  /// Minimum delivered bandwidth per window (payload bytes granted),
  /// MB/s (1e6 bytes/s).
  double min_bandwidth_mbps = 0.0;
  /// Maximum p99 end-to-end latency of transactions completed in the
  /// window.
  sim::TimePs max_p99_latency_ps = 0;
  /// Maximum fraction of the window charged to other masters (all causes
  /// except self), in [0,1].
  double max_interference_fraction = 0.0;
  /// Consecutive violating windows before a violation trips.
  std::uint32_t trip_windows = 2;
  /// Consecutive clean windows before a tripped violation clears.
  std::uint32_t clear_windows = 2;
};

/// Which objective a violation event refers to.
enum class ViolationKind : std::uint8_t {
  kBandwidth = 0,     ///< guarantee missed
  kLatencyP99,        ///< latency p99 over bound
  kInterference,      ///< stall fraction over budget
};

[[nodiscard]] const char* violation_kind_name(ViolationKind k);

/// One tripped SLA violation.
struct Violation {
  ViolationKind kind = ViolationKind::kBandwidth;
  axi::MasterId master = 0;
  sim::TimePs window_start = 0;  ///< window that tripped the hysteresis
  sim::TimePs window_end = 0;
  double measured = 0.0;  ///< MB/s, ps or fraction, per kind
  double bound = 0.0;
  /// Heaviest blame cell of the tripping window (kNoOwner when the victim
  /// has no charges there).
  axi::MasterId dominant_aggressor = telemetry::kNoOwner;
  telemetry::Cause dominant_cause = telemetry::Cause::kSelf;
  std::uint64_t dominant_stall_ps = 0;
  /// Injected fault(s) active in the tripping window (empty when none, or
  /// when no fault probe is wired).
  std::string active_fault;
};

/// The watchdog. One instance serves any number of watched ports.
class SlaWatchdog final : public axi::TxnObserver {
 public:
  SlaWatchdog(telemetry::AttributionEngine& engine,
              telemetry::MetricsRegistry& metrics);

  SlaWatchdog(const SlaWatchdog&) = delete;
  SlaWatchdog& operator=(const SlaWatchdog&) = delete;

  /// Starts watching \p port against \p spec (attaches the watchdog as a
  /// port observer). Call before running; one spec per port.
  void watch(axi::MasterPort& port, SlaSpec spec);

  /// Emits violation instants on a "sla" track (category "qos").
  void set_trace(telemetry::TraceWriter* writer);

  /// Attaches the decision journal (nullptr detaches): each tripped
  /// violation ("sla_trip", bound -> measured, with the dominant blame
  /// cell and any active fault in the detail) and each hysteresis clear
  /// ("sla_clear") is recorded.
  void set_journal(telemetry::DecisionJournal* journal) { journal_ = journal; }

  /// Cross-checks observed behaviour against a certified worst-case
  /// envelope (borrowed; nullptr detaches): whenever a watched master's
  /// windowed latency p99 exceeds its certified max_p99_ps bound, the
  /// watchdog records an "envelope_violated" journal entry (component
  /// "sla.<port>", cause "latency_p99"), bumps the
  /// qos.sla.<port>.envelope_excursions counter, and — when \p manager is
  /// given — drops it into conservative fallback via
  /// QosManager::on_envelope_violated(). Per-window bandwidth is
  /// deliberately NOT cross-checked: the certified min-bandwidth bound is
  /// a whole-run quantity and bursty-but-fine windows would false-trip it.
  void set_envelope(const CertifiedEnvelope* envelope, QosManager* manager);

  /// Wires a fault probe (typically fault::FaultInjector::active_faults):
  /// each tripped violation records the faults active at the end of its
  /// window, so reports can answer "was this SLA miss fault-induced?".
  using FaultProbeFn = std::function<std::string(sim::TimePs)>;
  void set_fault_probe(FaultProbeFn fn) { fault_probe_ = std::move(fn); }

  // axi::TxnObserver
  void on_issue(const axi::Transaction& txn, sim::TimePs now) override;
  void on_grant(const axi::LineRequest& line, sim::TimePs now) override;
  void on_complete(const axi::Transaction& txn, sim::TimePs now) override;

  /// Every violation tripped so far, in window order.
  [[nodiscard]] const std::vector<Violation>& violations() const {
    return violations_;
  }
  /// True while \p master has at least one objective tripped and not yet
  /// cleared.
  [[nodiscard]] bool in_violation(axi::MasterId master) const;

  /// Human-readable end-of-run report (one line per violation plus a
  /// summary header).
  void write_report(std::ostream& os) const;

 private:
  struct Objective {
    bool enabled = false;
    double bound = 0.0;
    std::uint32_t bad_streak = 0;
    std::uint32_t good_streak = 0;
    bool active = false;  ///< tripped and not yet cleared
  };

  struct Watch {
    axi::MasterId master = 0;
    std::string name;
    SlaSpec spec;
    std::uint64_t window_bytes = 0;    ///< granted this window
    sim::Histogram window_latency;     ///< completions this window
    Objective objectives[3];           ///< indexed by ViolationKind
    telemetry::Counter* violations_counter = nullptr;
    telemetry::Gauge* in_violation_gauge = nullptr;
  };

  void on_window(const telemetry::AttributionEngine::WindowRecord& rec);
  void check(Watch& w, ViolationKind kind, double measured,
             const telemetry::AttributionEngine::WindowRecord& rec);
  [[nodiscard]] Watch* find(axi::MasterId master);

  telemetry::AttributionEngine& engine_;
  telemetry::MetricsRegistry& metrics_;
  std::vector<Watch> watches_;
  std::vector<Violation> violations_;
  FaultProbeFn fault_probe_;
  telemetry::TraceWriter* trace_ = nullptr;
  telemetry::TrackId track_;
  telemetry::DecisionJournal* journal_ = nullptr;
  const CertifiedEnvelope* envelope_ = nullptr;
  QosManager* manager_ = nullptr;
};

}  // namespace fgqos::qos
