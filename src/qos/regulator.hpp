/// \file regulator.hpp
/// \brief Tightly-coupled hardware bandwidth regulator.
///
/// The regulator is a byte-token bucket gating the AXI AR/AW handshake of
/// one master port: a line is granted only when enough tokens remain, and
/// tokens are debited in the same cycle the grant occurs. Because the gate
/// is combinational (TxnGate::allow is evaluated at arbitration time), an
/// over-budget master is stalled with zero reaction latency — the defining
/// property of the paper's hardware QoS block, in contrast to the
/// interrupt-driven software baseline (SoftMemguard).
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "axi/port.hpp"
#include "qos/window.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"
#include "telemetry/trace.hpp"

namespace fgqos::telemetry {
class DecisionJournal;
}

namespace fgqos::qos {

/// Regulator configuration.
struct RegulatorConfig {
  std::string name = "regulator";
  /// Bytes that may be granted per window.
  std::uint64_t budget_bytes = 4096;
  /// Replenishment window (the regulation granularity).
  sim::TimePs window_ps = sim::kPsPerUs;
  /// Replenish semantics (reset vs. accumulate).
  ReplenishKind kind = ReplenishKind::kFixedWindow;
  /// Burst cap for kTokenBucket, in multiples of budget_bytes.
  std::uint64_t max_accumulation_windows = 1;
  /// Start enabled?
  bool enabled = true;
  /// Regulate reads, writes or both.
  bool gate_reads = true;
  bool gate_writes = true;
};

/// Regulator statistics.
struct RegulatorStats {
  /// Number of windows in which the budget was fully exhausted.
  std::uint64_t exhausted_windows = 0;
  /// Accumulated time the gate was shut (from exhaustion to replenish).
  sim::TimePs throttled_ps = 0;
  /// Bytes granted while enabled.
  std::uint64_t regulated_bytes = 0;
  /// Time of the most recent exhaustion event (kTimeNever if none).
  sim::TimePs last_exhausted_at = sim::kTimeNever;
  /// Replenish IRQs lost to an injected fault (window passed unreplenished).
  std::uint64_t replenish_irqs_dropped = 0;
  /// Replenish IRQs that landed late due to an injected fault.
  std::uint64_t replenish_irqs_delayed = 0;
};

/// The regulator. Attach with `port.add_gate(reg)` and, because gates do
/// not see grants they did not block, also `port.add_observer` is NOT
/// needed — on_grant of the gate interface is called on every grant.
class Regulator final : public axi::TxnGate {
 public:
  Regulator(sim::Simulator& sim, RegulatorConfig cfg);

  [[nodiscard]] const RegulatorConfig& config() const { return cfg_; }
  [[nodiscard]] const RegulatorStats& stats() const { return stats_; }
  /// Current byte credit (negative while in overdraft).
  [[nodiscard]] std::int64_t tokens() const { return bucket_.tokens(); }
  [[nodiscard]] bool enabled() const { return cfg_.enabled; }
  /// True when the budget is currently exhausted (gate shut).
  [[nodiscard]] bool exhausted() const { return exhausted_; }

  /// Enables/disables regulation at runtime (host CTRL register).
  void set_enabled(bool enabled);

  /// Reprograms the per-window budget (host BUDGET register).
  void set_budget(std::uint64_t budget_bytes);

  /// Reprograms the window length; restarts the replenish schedule.
  void set_window(sim::TimePs window_ps);

  /// Host CTRL restart command (self-clearing bit 1): reloads the credit
  /// counter to one full BUDGET and restarts the replenish window at the
  /// current time. This is the explicit handshake drivers use to make a
  /// freshly programmed budget take effect immediately instead of at the
  /// next window boundary — set_budget()/set_window() on their own never
  /// refill credit (pinned regulator semantics).
  void restart_window();

  /// Convenience: budget from a target rate for the current window.
  void set_rate(double bytes_per_second);

  /// Effective programmed rate in bytes/second.
  [[nodiscard]] double programmed_rate_bps() const;

  /// Attaches the decision journal (nullptr detaches): register writes
  /// (set_enabled/set_budget/set_window) that change the programmed value
  /// are recorded with cause "host_write", and replenish IRQs lost or
  /// delayed by an injected fault with cause "irq_fault".
  void set_journal(telemetry::DecisionJournal* journal) { journal_ = journal; }

  /// Attaches the Chrome-trace sink (nullptr detaches): throttle
  /// intervals become duration events and the token credit a counter
  /// track, both on a track named after this regulator.
  void set_trace(telemetry::TraceWriter* writer);

  /// Emits the trailing throttle span when the gate is still shut at the
  /// end of a run (call before TraceWriter::finish()).
  void flush_trace(sim::TimePs now);

  /// Fault seam on replenish-IRQ delivery, consulted at each window
  /// boundary. Return 0 to deliver normally, a positive delay (ps) to
  /// land the replenish late, or sim::kTimeNever to drop it entirely (the
  /// window passes unreplenished; an exhausted gate stays shut until the
  /// next surviving replenish). Empty function = perfect delivery.
  using IrqFaultFn = std::function<sim::TimePs(sim::TimePs)>;
  void set_irq_fault(IrqFaultFn fn) { irq_fault_ = std::move(fn); }

  // TxnGate
  [[nodiscard]] bool allow(const axi::LineRequest& line,
                           sim::TimePs now) const override;
  void on_grant(const axi::LineRequest& line, sim::TimePs now) override;

 private:
  void schedule_replenish();
  void on_replenish(std::uint64_t epoch);
  void apply_replenish();
  void reevaluate_exhaustion();
  [[nodiscard]] bool gates_dir(bool is_write) const {
    return is_write ? cfg_.gate_writes : cfg_.gate_reads;
  }

  void trace_throttle_end(sim::TimePs now);

  sim::Simulator& sim_;
  RegulatorConfig cfg_;
  TokenBucket bucket_;
  RegulatorStats stats_;
  bool exhausted_ = false;
  sim::TimePs exhausted_since_ = 0;
  std::uint64_t epoch_ = 0;
  sim::TimePs window_start_ = 0;
  sim::EventQueue::RecurringId replenish_event_ = 0;
  std::uint32_t prof_tag_ = 0;  ///< host-profiler attribution tag
  IrqFaultFn irq_fault_;
  telemetry::TraceWriter* trace_ = nullptr;
  telemetry::TrackId track_;
  telemetry::DecisionJournal* journal_ = nullptr;
};

}  // namespace fgqos::qos
