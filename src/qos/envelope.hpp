/// \file envelope.hpp
/// \brief Certified worst-case contention envelope.
///
/// A CertifiedEnvelope is the artifact the adversarial contention search
/// (src/search) emits: per-master worst-case bandwidth/latency bounds
/// measured under the *argmax* aggressor configuration the search found,
/// together with the argmax config itself and full search provenance.
/// The envelope is versioned and manifest-stamped so the admission path
/// and the report tooling can refuse stale or foreign envelopes.
///
/// The struct lives in qos/ (not search/) because its consumers are the
/// QosManager admission check and the SlaWatchdog cross-check — neither
/// may depend on the search subsystem. The search layer only *produces*
/// envelopes; this header is the contract between the two.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "telemetry/manifest.hpp"

namespace fgqos::util {
class JsonValue;
}

namespace fgqos::qos {

/// Certified bounds for one master port. A zero bound means "not
/// certified" and disables the corresponding check.
struct MasterBound {
  /// Upper bound on the master's read p99 latency under worst-case
  /// regulated contention (ps). Victim masters only.
  double max_p99_ps = 0.0;
  /// Lower bound on the master's delivered bandwidth under worst-case
  /// regulated contention (bytes/second). Victim masters only.
  double min_bandwidth_bps = 0.0;
  /// Upper bound on the master's delivered bandwidth (bytes/second);
  /// for regulated aggressor ports this is the certified budget plus
  /// margin. 0 = unchecked.
  double max_bandwidth_bps = 0.0;
  /// Worst-case slowdown vs. solo execution (informational; reproduced
  /// by bench_exp14_certification).
  double max_slowdown = 0.0;
  /// Admission cap: QosManager::reserve() rejects a reservation for this
  /// master above this rate (bytes/second). 0 = no per-master cap.
  double max_reserved_bps = 0.0;
};

/// Summary statistics of one evaluation folded into the envelope (the
/// argmax attack, evaluated with and without regulation).
struct EnvelopeEvalStats {
  double iter_mean_ps = 0.0;    ///< victim mean iteration time
  double iter_p99_ps = 0.0;     ///< victim p99 iteration time
  double read_p99_ps = 0.0;     ///< victim port read p99
  double victim_bw_bps = 0.0;   ///< victim delivered bandwidth
  double aggressor_bps = 0.0;   ///< aggregate aggressor bandwidth
  double slo_miss_frac = 0.0;   ///< fraction of iterations over the SLO
};

/// The certified envelope. Serialization is canonical: fixed key order,
/// `%.17g` doubles, sorted master map — two envelopes from the same
/// search are byte-identical whatever the --jobs fan-out (CI-enforced).
struct CertifiedEnvelope {
  /// Bump when the JSON shape changes incompatibly; loaders refuse
  /// foreign versions.
  static constexpr int kSchemaVersion = 1;

  int schema_version = kSchemaVersion;
  telemetry::RunManifest manifest;

  // --- search provenance -------------------------------------------------
  std::string optimizer;        ///< "coord" | "es" | "both"
  std::string objective;        ///< "slowdown" | "p99" | "slo_miss"
  std::uint64_t seed = 0;
  std::uint64_t evaluations = 0;  ///< unique attack configs evaluated
  std::string space_hash;         ///< FNV-1a of the attack-space catalog
  std::string spec_hash;          ///< FNV-1a of the full search spec
  std::string fault_spec_hash;    ///< faults composed into certification
  std::uint64_t victim_accesses = 0;
  std::uint64_t victim_iterations = 0;
  double deadline_ms = 0.0;
  double slo_iter_us = 0.0;
  double regulated_budget_mbps = 0.0;
  double window_us = 0.0;
  double margin = 0.0;
  std::vector<std::uint64_t> validate_seeds;
  double solo_iter_mean_ps = 0.0;
  /// Objective of the hand-written EXP1 aggressor mix (the search's
  /// seeded baseline); best_objective / exp1_mix_objective is the
  /// headline ratio bench_exp14 pins at >= 1.5.
  double exp1_mix_objective = 0.0;

  // --- the argmax attack -------------------------------------------------
  /// Canonical JSON of the argmax attack config (opaque here; the search
  /// layer parses it back for validation replay).
  std::string argmax_config_json;
  double argmax_objective = 0.0;   ///< unregulated objective at the argmax
  EnvelopeEvalStats unregulated;   ///< argmax evaluated without regulation
  EnvelopeEvalStats regulated;     ///< argmax evaluated under regulation

  // --- admission inputs --------------------------------------------------
  double capacity_bps = 0.0;
  double max_reservable_frac = 0.0;
  /// Total guaranteed bandwidth the certification covered; reserve()
  /// rejects when the reserved total would exceed it.
  double certified_total_bps = 0.0;
  /// Per-master bounds, keyed by port name ("cpu", "hp0", ...).
  std::map<std::string, MasterBound> masters;

  /// Canonical JSON (fixed key order, trailing newline).
  [[nodiscard]] std::string to_json() const;
  /// Parses an envelope; throws ConfigError on malformed input or a
  /// schema_version mismatch.
  [[nodiscard]] static CertifiedEnvelope from_json(const util::JsonValue& v);
  [[nodiscard]] static CertifiedEnvelope from_file(const std::string& path);
  void save(const std::string& path) const;

  /// The bound for \p master, or nullptr when none was certified.
  [[nodiscard]] const MasterBound* bound_for(const std::string& master) const;
};

/// Renders \p v back to canonical JSON text: object keys in map (sorted)
/// order, exact uint64 integers, `%.17g` doubles. Canonical-in implies
/// byte-identical-out, which is what lets envelopes round-trip through
/// parse/serialize without perturbing committed goldens.
[[nodiscard]] std::string to_canonical_json(const util::JsonValue& v);

/// Formats \p d the way every envelope emitter does: integral values
/// without a fraction, everything else with %.17g (round-trip exact).
[[nodiscard]] std::string envelope_double(double d);

}  // namespace fgqos::qos
