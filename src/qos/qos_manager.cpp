#include "qos/qos_manager.hpp"

#include <algorithm>
#include <sstream>

#include "qos/envelope.hpp"
#include "telemetry/journal.hpp"
#include "telemetry/metrics.hpp"
#include "util/config_error.hpp"

namespace fgqos::qos {

QosManager::QosManager(sim::Simulator& sim, QosManagerConfig cfg)
    : sim_(sim), cfg_(cfg) {
  config_check(cfg_.capacity_bps > 0, "QosManager: capacity must be > 0");
  config_check(cfg_.max_reservable_frac > 0 && cfg_.max_reservable_frac <= 1,
               "QosManager: max_reservable_frac must be in (0,1]");
  config_check(cfg_.idle_threshold >= 0 && cfg_.idle_threshold <= 1,
               "QosManager: idle_threshold must be in [0,1]");
}

void QosManager::add_port(std::string name, axi::MasterId master,
                          QosRegFile& regfile) {
  config_check(find(master) == nullptr,
               "QosManager: master already registered");
  config_check(regfile.regulator() != nullptr,
               "QosManager: port '" + name + "' has no regulator");
  ManagedPort p;
  p.name = std::move(name);
  p.master = master;
  p.regfile = &regfile;
  ports_.push_back(p);
  // Best-effort default: floor rate so an unmanaged port cannot flood.
  program_rate(ports_.back(), cfg_.best_effort_floor_bps);
}

ManagedPort* QosManager::find(axi::MasterId master) {
  for (auto& p : ports_) {
    if (p.master == master) {
      return &p;
    }
  }
  return nullptr;
}

void QosManager::program_rate(ManagedPort& port, double bps) {
  QosRegFile& rf = *port.regfile;
  const auto window_ns = rf.read(Reg::kWindowNs);
  const sim::TimePs window_ps =
      static_cast<sim::TimePs>(window_ns) * sim::kPsPerNs;
  const std::uint64_t budget = budget_for_rate(bps, window_ps);
  if (budget == rf.read(Reg::kBudget) && rf.read(Reg::kCtrl) == 1u) {
    return;  // already programmed: don't kick a fresh window for nothing
  }
  rf.write(Reg::kBudget, static_cast<std::uint32_t>(budget));
  // Enable + window-restart command: the new budget takes effect as a
  // fresh full window right now rather than at the next boundary, exactly
  // like a direct set_rate() on an untouched regulator. This is what makes
  // an all-accepted admission run byte-identical to unmanaged programming.
  rf.write(Reg::kCtrl, 1u | 2u);
}

void QosManager::journal_record(const std::string& action, double old_value,
                                double new_value, const std::string& cause,
                                const std::string& detail) {
  if (journal_ != nullptr) {
    journal_->record(sim_.now(), "qos.manager", action, old_value, new_value,
                     cause, detail);
  }
}

void QosManager::set_metrics(telemetry::MetricsRegistry* metrics) {
  metrics_ = metrics;
  update_reserved_gauge();
}

void QosManager::update_reserved_gauge() {
  if (metrics_ != nullptr) {
    metrics_->gauge("qos.admission.reserved_bps").set(reserved_total_bps());
  }
}

void QosManager::set_envelope(const CertifiedEnvelope* envelope) {
  envelope_ = envelope;
}

bool QosManager::reserve(axi::MasterId master, double bytes_per_second) {
  ManagedPort* p = find(master);
  config_check(p != nullptr, "QosManager: unknown master");
  config_check(bytes_per_second > 0, "QosManager: rate must be > 0");
  const double already = p->best_effort ? 0.0 : p->reserved_bps;
  const double total = reserved_total_bps() - already + bytes_per_second;

  auto reject = [&](const std::string& cause, double bound) {
    std::ostringstream detail;
    detail << "master=" << p->name
           << " rate_bps=" << static_cast<std::uint64_t>(bytes_per_second)
           << " total_bps=" << static_cast<std::uint64_t>(total);
    journal_record("reserve_reject", already, bytes_per_second, cause,
                   detail.str() + " bound_bps=" +
                       std::to_string(static_cast<std::uint64_t>(bound)));
    if (metrics_ != nullptr) {
      metrics_->counter("qos.admission.rejected").add();
    }
    return false;
  };

  if (envelope_fallback_) {
    return reject("envelope_fallback", 0.0);
  }
  if (envelope_ != nullptr) {
    // Same strict-inequality boundary convention as the capacity check:
    // a request landing exactly on a certified cap is admitted.
    if (const MasterBound* b = envelope_->bound_for(p->name);
        b != nullptr && b->max_reserved_bps > 0 &&
        bytes_per_second > b->max_reserved_bps) {
      return reject("envelope_master_bound", b->max_reserved_bps);
    }
    if (envelope_->certified_total_bps > 0 &&
        total > envelope_->certified_total_bps) {
      return reject("envelope_total_bound", envelope_->certified_total_bps);
    }
  }
  if (total > cfg_.capacity_bps * cfg_.max_reservable_frac) {
    return reject("capacity_frac",
                  cfg_.capacity_bps * cfg_.max_reservable_frac);
  }
  p->best_effort = false;
  p->reserved_bps = bytes_per_second;
  program_rate(*p, bytes_per_second);
  journal_record("reserve_accept", already, bytes_per_second, "admission",
                 "master=" + p->name + " total_bps=" +
                     std::to_string(static_cast<std::uint64_t>(total)));
  if (metrics_ != nullptr) {
    metrics_->counter("qos.admission.accepted").add();
  }
  update_reserved_gauge();
  return true;
}

void QosManager::release(axi::MasterId master) {
  ManagedPort* p = find(master);
  config_check(p != nullptr, "QosManager: unknown master");
  const double old_bps = p->best_effort ? 0.0 : p->reserved_bps;
  p->best_effort = true;
  p->reserved_bps = 0.0;
  program_rate(*p, cfg_.best_effort_floor_bps);
  journal_record("release", old_bps, 0.0, "host_release",
                 "master=" + p->name);
  if (metrics_ != nullptr) {
    metrics_->counter("qos.admission.released").add();
  }
  update_reserved_gauge();
}

void QosManager::on_envelope_violated(const std::string& source,
                                      const std::string& quantity,
                                      double bound, double measured) {
  if (metrics_ != nullptr) {
    metrics_->counter("qos.admission.envelope_violated").add();
  }
  if (envelope_fallback_) {
    return;  // already degraded; only count the further excursion
  }
  envelope_fallback_ = true;
  journal_record("envelope_violated", bound, measured, quantity,
                 "source=" + source);
  if (reclaiming_) {
    stop_reclamation();
  }
  // Conservative fallback budgets: best-effort ports drop to the floor,
  // reserved ports are clamped to their certified caps.
  for (auto& p : ports_) {
    if (p.best_effort) {
      program_rate(p, cfg_.best_effort_floor_bps);
      continue;
    }
    double capped = p.reserved_bps;
    if (envelope_ != nullptr) {
      if (const MasterBound* b = envelope_->bound_for(p.name);
          b != nullptr && b->max_reserved_bps > 0) {
        capped = std::min(capped, b->max_reserved_bps);
      }
    }
    if (capped != p.reserved_bps) {
      journal_record("fallback_clamp", p.reserved_bps, capped,
                     "envelope_fallback", "master=" + p.name);
      p.reserved_bps = capped;
    }
    program_rate(p, capped);
  }
  update_reserved_gauge();
}

double QosManager::reserved_total_bps() const {
  double total = 0.0;
  for (const auto& p : ports_) {
    if (!p.best_effort) {
      total += p.reserved_bps;
    }
  }
  return total;
}

double QosManager::available_bps() const {
  return cfg_.capacity_bps * cfg_.max_reservable_frac - reserved_total_bps();
}

void QosManager::start_reclamation() {
  config_check(cfg_.reclaim_period_ps > 0,
               "QosManager: reclamation disabled by configuration");
  if (reclaiming_) {
    return;
  }
  reclaiming_ = true;
  if (!reclaim_event_made_) {
    reclaim_event_made_ = true;
    reclaim_event_ = sim_.make_recurring_event(
        [this](std::uint64_t epoch) { reclaim_tick(epoch); },
        sim_.profile_tag("qos.manager"));
  }
  sim_.schedule_recurring(reclaim_event_, sim_.now() + cfg_.reclaim_period_ps,
                          ++reclaim_epoch_);
}

void QosManager::stop_reclamation() {
  reclaiming_ = false;
  ++reclaim_epoch_;
  // Restore static programming.
  for (auto& p : ports_) {
    program_rate(p, p.best_effort ? cfg_.best_effort_floor_bps
                                  : p.reserved_bps);
  }
}

void QosManager::reclaim_tick(std::uint64_t epoch) {
  if (!reclaiming_ || epoch != reclaim_epoch_) {
    return;
  }
  ++reclaim_iterations_;
  // 1. Measure each port's consumption over the last period from its
  //    monitor registers (as the real driver does).
  double slack_bps = std::max(0.0, cfg_.capacity_bps - reserved_total_bps());
  std::vector<ManagedPort*> best_effort;
  std::vector<double> demand;
  for (auto& p : ports_) {
    const std::uint64_t total = p.regfile->monitor_total_bytes();
    const std::uint64_t last = last_total_bytes_.count(p.master)
                                   ? last_total_bytes_[p.master]
                                   : 0;
    last_total_bytes_[p.master] = total;
    const double used_bps =
        sim::bytes_per_second(total - last, cfg_.reclaim_period_ps);
    if (p.best_effort) {
      best_effort.push_back(&p);
      demand.push_back(used_bps);
      continue;
    }
    if (used_bps < p.reserved_bps * cfg_.idle_threshold) {
      // Idle guarantee: its unused share becomes reclaimable. Keep the
      // measured usage plus headroom so a waking master ramps gracefully
      // until the next period restores its full guarantee.
      slack_bps += p.reserved_bps - used_bps;
    }
  }
  // 2. Redistribute slack across the best-effort ports.
  if (!best_effort.empty()) {
    const auto n = static_cast<double>(best_effort.size());
    double demand_total = 0;
    for (const double d : demand) {
      demand_total += d;
    }
    for (std::size_t i = 0; i < best_effort.size(); ++i) {
      double share = slack_bps / n;
      if (cfg_.reclaim_policy == ReclaimPolicy::kProportional &&
          demand_total > 0) {
        // A saturated port consumes exactly what it was programmed, so
        // last-period demand is a good proxy for appetite; hold back a
        // small even-split fraction so a newly-hungry port can ramp.
        share = 0.2 * slack_bps / n +
                0.8 * slack_bps * (demand[i] / demand_total);
      }
      program_rate(*best_effort[i],
                   std::max(cfg_.best_effort_floor_bps, share));
    }
  }
  // 3. Reserved ports always keep their full guarantee programmed.
  for (auto& p : ports_) {
    if (!p.best_effort) {
      program_rate(p, p.reserved_bps);
    }
  }
  sim_.schedule_recurring(reclaim_event_, sim_.now() + cfg_.reclaim_period_ps,
                          epoch);
}

}  // namespace fgqos::qos
