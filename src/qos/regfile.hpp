/// \file regfile.hpp
/// \brief Memory-mapped register model of one QoS block instance.
///
/// The hardware QoS IP exposes a small APB-style register file per
/// supervised port; the host runtime (QosManager, drivers) programs budgets
/// and windows and reads monitor counters exclusively through 32-bit
/// register accesses, as it would on the real FPGA design.
#pragma once

#include <cstdint>

#include "qos/bandwidth_monitor.hpp"
#include "qos/regulator.hpp"

namespace fgqos::qos {

/// Register offsets (byte addresses, 32-bit registers).
enum class Reg : std::uint32_t {
  kCtrl = 0x00,          ///< bit0: regulator enable; bit1: window restart
                         ///< command (self-clearing — reloads the credit
                         ///< counter from kBudget and restarts the window)
  kBudget = 0x04,        ///< bytes per window (RW)
  kWindowNs = 0x08,      ///< window length in ns (RW)
  kStatus = 0x0C,        ///< bit0: exhausted now (RO)
  kMonTotalLo = 0x10,    ///< monitor total bytes, low 32 (RO)
  kMonTotalHi = 0x14,    ///< monitor total bytes, high 32 (RO)
  kMonLastWindow = 0x18, ///< last closed monitor window, bytes (RO)
  kIrqThreshold = 0x1C,  ///< monitor threshold, bytes (RW; 0 = off)
  kBurstWindows = 0x20,  ///< token accumulation cap, windows (RO here)
  kExhaustCount = 0x24,  ///< exhausted-window count, low 32 (RO)
};

/// Binds one Regulator + one BandwidthMonitor behind a register interface.
class QosRegFile {
 public:
  /// Either pointer may be null when the block instantiates only a monitor
  /// or only a regulator.
  QosRegFile(Regulator* regulator, BandwidthMonitor* monitor);

  /// 32-bit register read. Unknown offsets read as 0.
  [[nodiscard]] std::uint32_t read(Reg reg) const;
  [[nodiscard]] std::uint32_t read(std::uint32_t offset) const {
    return read(static_cast<Reg>(offset));
  }

  /// 32-bit register write. Writes to read-only or unknown offsets are
  /// ignored (hardware-like behaviour).
  void write(Reg reg, std::uint32_t value);
  void write(std::uint32_t offset, std::uint32_t value) {
    write(static_cast<Reg>(offset), value);
  }

  /// Convenience 64-bit monitor total (two coherent 32-bit halves).
  [[nodiscard]] std::uint64_t monitor_total_bytes() const;

  /// Connects the block's IRQ line. The handler fires when the monitor's
  /// in-window byte count crosses the programmed kIrqThreshold (armed by
  /// writing a non-zero threshold; re-arming per window is automatic).
  void set_irq_handler(ThresholdFn handler);

  [[nodiscard]] Regulator* regulator() const { return regulator_; }
  [[nodiscard]] BandwidthMonitor* monitor() const { return monitor_; }

 private:
  void rearm_threshold();

  Regulator* regulator_;
  BandwidthMonitor* monitor_;
  std::uint32_t irq_threshold_ = 0;
  ThresholdFn irq_handler_;
};

}  // namespace fgqos::qos
