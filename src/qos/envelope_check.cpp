#include "qos/envelope_check.hpp"

#include <sstream>

#include "util/config_error.hpp"
#include "util/json.hpp"

namespace fgqos::qos {
namespace {

std::string num(double d) { return envelope_double(d); }

void add_row(EnvelopeReport& rep, EnvelopeCheckRow row) {
  if (!row.available) {
    // An uncaptured measurement cannot demonstrate an upper-bound
    // excursion; an uncaptured *minimum* is itself the failure.
    row.ok = row.upper;
  } else {
    row.ok = row.upper ? row.measured <= row.bound : row.measured >= row.bound;
  }
  if (!row.ok) {
    std::ostringstream os;
    os << row.scenario << ": " << row.master << " " << row.quantity << " ";
    if (!row.available) {
      os << "not measured (certified minimum " << num(row.bound) << ")";
    } else {
      os << num(row.measured) << (row.upper ? " > " : " < ") << num(row.bound)
         << " certified " << (row.upper ? "max" : "min");
    }
    rep.excursions.push_back(os.str());
  }
  rep.rows.push_back(std::move(row));
}

}  // namespace

EnvelopeReport check_envelope(const CertifiedEnvelope& env,
                              const std::vector<telemetry::RunData>& runs,
                              bool force) {
  EnvelopeReport rep;
  for (const auto& run : runs) {
    if (run.has_manifest &&
        run.manifest.schema_version != env.manifest.schema_version) {
      const std::string note =
          "export schema mismatch: envelope v" +
          std::to_string(env.manifest.schema_version) + " vs run '" +
          run.label + "' v" + std::to_string(run.manifest.schema_version);
      if (!force) {
        throw ConfigError("envelope check: " + note +
                                " (use --force to compare anyway)");
      }
      rep.manifest_note = note;
    }
    for (const auto& [master, bound] : env.masters) {
      if (bound.max_p99_ps > 0) {
        EnvelopeCheckRow row;
        row.scenario = run.label;
        row.master = master;
        row.quantity = "read_p99_ps";
        row.bound = bound.max_p99_ps;
        row.upper = true;
        const auto it = run.metrics.find("port." + master + ".read_p99_ps");
        row.available = it != run.metrics.end();
        if (row.available) row.measured = it->second.value;
        add_row(rep, std::move(row));
      }
      const auto bytes_it = run.metrics.find("port." + master + ".bytes");
      const bool have_bw = bytes_it != run.metrics.end() && run.time_ps > 0;
      const double bw =
          have_bw ? bytes_it->second.value * 1e12 /
                        static_cast<double>(run.time_ps)
                  : 0.0;
      if (bound.min_bandwidth_bps > 0) {
        EnvelopeCheckRow row;
        row.scenario = run.label;
        row.master = master;
        row.quantity = "bandwidth_bps";
        row.bound = bound.min_bandwidth_bps;
        row.upper = false;
        row.available = have_bw;
        row.measured = bw;
        add_row(rep, std::move(row));
      }
      if (bound.max_bandwidth_bps > 0) {
        EnvelopeCheckRow row;
        row.scenario = run.label;
        row.master = master;
        row.quantity = "bandwidth_bps";
        row.bound = bound.max_bandwidth_bps;
        row.upper = true;
        row.available = have_bw;
        row.measured = bw;
        add_row(rep, std::move(row));
      }
    }
  }
  return rep;
}

void EnvelopeReport::write_text(std::ostream& os) const {
  os << "bounds-vs-measured: " << rows.size() << " check(s), "
     << excursions.size() << " excursion(s)\n";
  if (!manifest_note.empty()) {
    os << "  note: " << manifest_note << '\n';
  }
  for (const auto& r : rows) {
    os << "  [" << (r.ok ? "PASS" : "FAIL") << "] " << r.scenario << " "
       << r.master << " " << r.quantity << ": ";
    if (!r.available) {
      os << "n/a";
    } else {
      os << num(r.measured);
    }
    os << (r.upper ? " <= " : " >= ") << num(r.bound) << '\n';
  }
  os << (pass() ? "PASS" : "FAIL") << '\n';
}

void EnvelopeReport::write_json(std::ostream& os) const {
  os << "{\"pass\":" << (pass() ? "true" : "false") << ",\"manifest_note\":\""
     << util::json_escape(manifest_note) << "\",\"rows\":[";
  bool first = true;
  for (const auto& r : rows) {
    if (!first) os << ',';
    first = false;
    os << "{\"scenario\":\"" << util::json_escape(r.scenario)
       << "\",\"master\":\"" << util::json_escape(r.master)
       << "\",\"quantity\":\"" << r.quantity << "\",\"measured\":"
       << (r.available ? num(r.measured) : "null")
       << ",\"bound\":" << num(r.bound)
       << ",\"direction\":\"" << (r.upper ? "max" : "min") << "\",\"ok\":"
       << (r.ok ? "true" : "false") << '}';
  }
  os << "]}\n";
}

}  // namespace fgqos::qos
