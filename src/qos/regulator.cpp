#include "qos/regulator.hpp"

#include "sim/logger.hpp"
#include "telemetry/journal.hpp"
#include "util/config_error.hpp"

namespace fgqos::qos {

Regulator::Regulator(sim::Simulator& sim, RegulatorConfig cfg)
    : sim_(sim),
      cfg_(std::move(cfg)),
      bucket_(cfg_.budget_bytes, cfg_.kind, cfg_.max_accumulation_windows) {
  config_check(cfg_.window_ps > 0, "Regulator: window must be > 0");
  config_check(cfg_.gate_reads || cfg_.gate_writes,
               "Regulator: must gate at least one direction");
  window_start_ = sim_.now();
  prof_tag_ = sim_.profile_tag("qos.regulator");
  replenish_event_ = sim_.make_recurring_event(
      [this](std::uint64_t epoch) { on_replenish(epoch); }, prof_tag_);
  schedule_replenish();
}

void Regulator::schedule_replenish() {
  sim_.schedule_recurring(replenish_event_, window_start_ + cfg_.window_ps,
                          epoch_);
}

void Regulator::on_replenish(std::uint64_t epoch) {
  if (epoch != epoch_) {
    return;  // stale: window was reconfigured
  }
  if (irq_fault_) {
    const sim::TimePs verdict = irq_fault_(sim_.now());
    if (verdict == sim::kTimeNever) {
      // IRQ lost: the boundary passes without refilling. The window
      // cadence keeps running (the periodic timer itself is fine; only
      // this delivery vanished), so an exhausted gate stays shut until
      // the next surviving replenish.
      ++stats_.replenish_irqs_dropped;
      if (journal_ != nullptr) {
        journal_->record(sim_.now(), cfg_.name, "replenish_drop",
                         static_cast<double>(bucket_.tokens()),
                         static_cast<double>(bucket_.tokens()), "irq_fault");
      }
      window_start_ = sim_.now();
      schedule_replenish();
      return;
    }
    if (verdict > 0) {
      // Late delivery: the refill lands after the boundary; the next
      // boundary keeps its nominal cadence.
      ++stats_.replenish_irqs_delayed;
      if (journal_ != nullptr) {
        journal_->record(sim_.now(), cfg_.name, "replenish_delay", 0.0,
                         static_cast<double>(verdict), "irq_fault",
                         "delay_ps=" + std::to_string(verdict));
      }
      const std::uint64_t guard = epoch_;
      sim_.schedule_after(
          verdict,
          [this, guard]() {
            if (guard == epoch_) {
              apply_replenish();
            }
          },
          prof_tag_);
      window_start_ = sim_.now();
      schedule_replenish();
      return;
    }
  }
  apply_replenish();
  window_start_ = sim_.now();
  schedule_replenish();
}

void Regulator::apply_replenish() {
  if (exhausted_) {
    stats_.throttled_ps += sim_.now() - exhausted_since_;
    trace_throttle_end(sim_.now());
    exhausted_ = false;
  }
  bucket_.replenish();
  if (trace_ != nullptr) {
    trace_->counter(track_, "tokens", sim_.now(),
                    static_cast<double>(bucket_.tokens()));
  }
}

void Regulator::set_enabled(bool enabled) {
  if (cfg_.enabled && !enabled && exhausted_) {
    stats_.throttled_ps += sim_.now() - exhausted_since_;
    trace_throttle_end(sim_.now());
    exhausted_ = false;
  }
  if (journal_ != nullptr && cfg_.enabled != enabled) {
    journal_->record(sim_.now(), cfg_.name, "set_enabled",
                     cfg_.enabled ? 1.0 : 0.0, enabled ? 1.0 : 0.0,
                     "host_write");
  }
  cfg_.enabled = enabled;
}

void Regulator::set_trace(telemetry::TraceWriter* writer) {
  trace_ = writer;
  track_ = telemetry::TrackId{};
  if (trace_ != nullptr) {
    track_ = trace_->track(telemetry::Cat::kQos, cfg_.name);
    if (!track_.valid()) {
      trace_ = nullptr;  // qos category filtered out
    }
  }
}

void Regulator::trace_throttle_end(sim::TimePs now) {
  if (trace_ != nullptr) {
    trace_->complete(track_, "throttled", exhausted_since_,
                     now - exhausted_since_);
    trace_->counter(track_, "tokens", now,
                    static_cast<double>(bucket_.tokens()));
  }
}

void Regulator::flush_trace(sim::TimePs now) {
  if (exhausted_) {
    trace_throttle_end(now);
  }
}

void Regulator::set_budget(std::uint64_t budget_bytes) {
  if (journal_ != nullptr && cfg_.budget_bytes != budget_bytes) {
    journal_->record(sim_.now(), cfg_.name, "set_budget",
                     static_cast<double>(cfg_.budget_bytes),
                     static_cast<double>(budget_bytes), "host_write");
  }
  bucket_.set_budget(budget_bytes);
  cfg_.budget_bytes = budget_bytes;
  reevaluate_exhaustion();
}

void Regulator::set_window(sim::TimePs window_ps) {
  config_check(window_ps > 0, "Regulator: window must be > 0");
  if (journal_ != nullptr && cfg_.window_ps != window_ps) {
    journal_->record(sim_.now(), cfg_.name, "set_window",
                     static_cast<double>(cfg_.window_ps),
                     static_cast<double>(window_ps), "host_write");
  }
  cfg_.window_ps = window_ps;
  ++epoch_;
  window_start_ = sim_.now();
  schedule_replenish();
  reevaluate_exhaustion();
}

void Regulator::restart_window() {
  if (journal_ != nullptr) {
    journal_->record(sim_.now(), cfg_.name, "window_restart",
                     static_cast<double>(bucket_.tokens()),
                     static_cast<double>(cfg_.budget_bytes), "host_write");
  }
  bucket_.load();
  ++epoch_;
  window_start_ = sim_.now();
  schedule_replenish();
  reevaluate_exhaustion();
  if (trace_ != nullptr) {
    trace_->counter(track_, "tokens", sim_.now(),
                    static_cast<double>(bucket_.tokens()));
  }
}

void Regulator::reevaluate_exhaustion() {
  // Reprogramming BUDGET/WINDOW while the gate is shut must not let the
  // open throttle interval straddle the configuration change: the time
  // throttled under the old configuration is accounted (and traced) now,
  // and if the gate is still shut under the new configuration a fresh
  // interval starts at the reconfiguration edge. Without this, a window
  // restart while exhausted extends the pending interval by a full new
  // window and attributes it to the wrong configuration.
  const sim::TimePs now = sim_.now();
  const bool was_exhausted = exhausted_;
  if (exhausted_) {
    stats_.throttled_ps += now - exhausted_since_;
    trace_throttle_end(now);
    exhausted_ = false;
  }
  if (cfg_.enabled && !bucket_.can_spend()) {
    exhausted_ = true;
    exhausted_since_ = now;
    stats_.last_exhausted_at = now;
    if (!was_exhausted) {
      // Newly shut by the reconfiguration itself (e.g. budget lowered
      // below the bytes already granted this window).
      ++stats_.exhausted_windows;
    }
  }
}

void Regulator::set_rate(double bytes_per_second) {
  set_budget(budget_for_rate(bytes_per_second, cfg_.window_ps));
}

double Regulator::programmed_rate_bps() const {
  return static_cast<double>(cfg_.budget_bytes) * 1e12 /
         static_cast<double>(cfg_.window_ps);
}

bool Regulator::allow(const axi::LineRequest& line, sim::TimePs) const {
  if (!cfg_.enabled || !gates_dir(line.is_write)) {
    return true;
  }
  return bucket_.can_spend();
}

void Regulator::on_grant(const axi::LineRequest& line, sim::TimePs now) {
  if (!cfg_.enabled || !gates_dir(line.is_write)) {
    return;
  }
  bucket_.spend(line.bytes);
  stats_.regulated_bytes += line.bytes;
  if (!exhausted_ && !bucket_.can_spend()) {
    // Credit gone: the gate is now shut until the next replenish.
    // Record the exhaustion edge (same cycle as the grant).
    exhausted_ = true;
    exhausted_since_ = now;
    ++stats_.exhausted_windows;
    stats_.last_exhausted_at = now;
    FGQOS_LOG_TRACE("%s: budget exhausted at %llu ps (credit %lld)",
                    cfg_.name.c_str(), static_cast<unsigned long long>(now),
                    static_cast<long long>(bucket_.tokens()));
    if (trace_ != nullptr) {
      trace_->counter(track_, "tokens", now,
                      static_cast<double>(bucket_.tokens()));
    }
  }
}

}  // namespace fgqos::qos
