/// \file qos_manager.hpp
/// \brief Host-side QoS runtime: reservations, admission control,
///        CMRI-style dynamic reclamation of unused guaranteed bandwidth.
///
/// This is the software half of the paper's contribution: a user-level
/// manager that programs the per-port hardware QoS blocks exclusively
/// through their register files (as a Linux driver would) and periodically
/// redistributes slack bandwidth from under-consuming guaranteed masters
/// to best-effort masters.
///
/// Admission can additionally be backed by a measured worst-case
/// CertifiedEnvelope (set_envelope): reserve() then also rejects requests
/// that exceed a master's certified cap or the certified total, and a
/// reported excursion beyond any certified bound (on_envelope_violated)
/// drops the manager into a conservative fallback mode — reclamation
/// stops, every port is clamped to its certified budget, and further
/// reservations are refused until the envelope is re-certified.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "axi/types.hpp"
#include "qos/regfile.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace fgqos::telemetry {
class DecisionJournal;
class MetricsRegistry;
}  // namespace fgqos::telemetry

namespace fgqos::qos {

struct CertifiedEnvelope;

/// How reclaimed slack is split across best-effort ports.
enum class ReclaimPolicy : std::uint8_t {
  kEven,          ///< equal share per best-effort port
  kProportional,  ///< proportional to each port's measured demand
};

/// Manager configuration.
struct QosManagerConfig {
  /// Platform memory bandwidth the manager may hand out (bytes/second);
  /// typically the measured (not theoretical) peak.
  double capacity_bps = 16e9;
  /// Fraction of capacity that may be promised as guarantees.
  double max_reservable_frac = 0.85;
  /// Reclamation loop period (0 disables reclamation).
  sim::TimePs reclaim_period_ps = 100 * sim::kPsPerUs;
  /// A reserved master using less than this fraction of its guarantee is
  /// considered idle and its slack becomes reclaimable.
  double idle_threshold = 0.5;
  /// Floor rate handed to best-effort ports when all slack is in use.
  double best_effort_floor_bps = 50e6;
  /// Slack distribution policy.
  ReclaimPolicy reclaim_policy = ReclaimPolicy::kEven;
};

/// One port under management.
struct ManagedPort {
  std::string name;
  axi::MasterId master = 0;
  QosRegFile* regfile = nullptr;
  bool best_effort = true;       ///< no guarantee; receives reclaimed slack
  double reserved_bps = 0.0;     ///< guaranteed rate (0 for best-effort)
};

/// The host runtime.
class QosManager {
 public:
  QosManager(sim::Simulator& sim, QosManagerConfig cfg);

  /// Registers a port (its register file must outlive the manager).
  void add_port(std::string name, axi::MasterId master, QosRegFile& regfile);

  /// Reserves \p bytes_per_second for \p master. Returns false (and leaves
  /// state unchanged) when admission control rejects the request.
  ///
  /// Boundary semantics (pinned by test): the capacity check rejects on
  /// `total > capacity_bps * max_reservable_frac` — strictly greater —
  /// so a request that lands *exactly* on the admissible boundary is
  /// accepted. The prospective total counts the requesting master at its
  /// new rate, not additionally at its old one, so re-reserving a master
  /// to a smaller rate can never be rejected. The envelope checks (when
  /// an envelope is attached) use the same strict-inequality convention.
  ///
  /// Every decision is recorded in the attached DecisionJournal with the
  /// binding constraint as its cause ("capacity_frac",
  /// "envelope_master_bound", "envelope_total_bound", or
  /// "envelope_fallback") and counted in qos.admission.{accepted,rejected}.
  [[nodiscard]] bool reserve(axi::MasterId master, double bytes_per_second);

  /// Drops the reservation; the port reverts to best-effort.
  void release(axi::MasterId master);

  /// Sum of currently admitted guarantees (bytes/second).
  [[nodiscard]] double reserved_total_bps() const;
  /// Remaining admissible guarantee capacity (bytes/second).
  [[nodiscard]] double available_bps() const;

  /// Starts the periodic reclamation loop (requires reclaim_period_ps > 0).
  void start_reclamation();
  /// Stops it.
  void stop_reclamation();
  [[nodiscard]] bool reclamation_active() const { return reclaiming_; }
  /// Number of reclamation iterations executed.
  [[nodiscard]] std::uint64_t reclaim_iterations() const {
    return reclaim_iterations_;
  }

  // --- observability -------------------------------------------------------

  /// Attaches the decision journal (nullptr detaches): every admission
  /// accept/reject/release and envelope event is recorded as component
  /// "qos.manager".
  void set_journal(telemetry::DecisionJournal* journal) { journal_ = journal; }
  /// Attaches the metrics registry (nullptr detaches): exports
  /// qos.admission.{accepted,rejected,released,envelope_violated} counters
  /// and the qos.admission.reserved_bps gauge.
  void set_metrics(telemetry::MetricsRegistry* metrics);

  // --- certified-envelope admission ---------------------------------------

  /// Backs admission with \p envelope (borrowed; must outlive the manager;
  /// nullptr detaches). reserve() then additionally enforces the
  /// per-master max_reserved_bps caps and certified_total_bps.
  void set_envelope(const CertifiedEnvelope* envelope);
  [[nodiscard]] const CertifiedEnvelope* envelope() const { return envelope_; }

  /// Reports a measured excursion beyond a certified bound (called by the
  /// SlaWatchdog cross-check, or by any external monitor). First call
  /// drops the manager into conservative fallback: a structured
  /// "envelope_violated" journal entry, reclamation stopped, best-effort
  /// ports floored, reserved ports clamped to their certified caps, and
  /// every later reserve() rejected with cause "envelope_fallback".
  /// Subsequent calls only bump the excursion counter.
  void on_envelope_violated(const std::string& source,
                            const std::string& quantity, double bound,
                            double measured);
  /// True once an excursion dropped the manager into fallback mode.
  [[nodiscard]] bool envelope_fallback() const { return envelope_fallback_; }

  [[nodiscard]] const QosManagerConfig& config() const { return cfg_; }
  [[nodiscard]] const std::vector<ManagedPort>& ports() const {
    return ports_;
  }

 private:
  ManagedPort* find(axi::MasterId master);
  void program_rate(ManagedPort& port, double bps);
  void reclaim_tick(std::uint64_t epoch);
  void journal_record(const std::string& action, double old_value,
                      double new_value, const std::string& cause,
                      const std::string& detail);
  void update_reserved_gauge();

  sim::Simulator& sim_;
  QosManagerConfig cfg_;
  std::vector<ManagedPort> ports_;
  std::map<axi::MasterId, std::uint64_t> last_total_bytes_;
  bool reclaiming_ = false;
  sim::EventQueue::RecurringId reclaim_event_ = 0;
  bool reclaim_event_made_ = false;
  std::uint64_t reclaim_epoch_ = 0;
  std::uint64_t reclaim_iterations_ = 0;
  telemetry::DecisionJournal* journal_ = nullptr;
  telemetry::MetricsRegistry* metrics_ = nullptr;
  const CertifiedEnvelope* envelope_ = nullptr;
  bool envelope_fallback_ = false;
};

}  // namespace fgqos::qos
