#include "qos/adaptive_controller.hpp"

#include <algorithm>
#include <string>

#include "telemetry/journal.hpp"
#include "util/config_error.hpp"

namespace fgqos::qos {

AdaptiveQosController::AdaptiveQosController(
    sim::Simulator& sim, AdaptiveControllerConfig cfg,
    LatencyMonitor& critical_latency, std::vector<Regulator*> best_effort)
    : sim_(sim),
      cfg_(std::move(cfg)),
      critical_(&critical_latency),
      best_effort_(std::move(best_effort)) {
  config_check(cfg_.period_ps > 0, "AdaptiveQosController: period must be > 0");
  config_check(cfg_.decrease_factor > 0 && cfg_.decrease_factor < 1,
               "AdaptiveQosController: decrease_factor must be in (0,1)");
  config_check(cfg_.min_bps > 0 && cfg_.min_bps <= cfg_.max_bps,
               "AdaptiveQosController: 0 < min_bps <= max_bps required");
  config_check(cfg_.initial_bps >= cfg_.min_bps &&
                   cfg_.initial_bps <= cfg_.max_bps,
               "AdaptiveQosController: initial rate outside [min, max]");
  config_check(!best_effort_.empty(),
               "AdaptiveQosController: needs at least one regulator");
  for (const auto* r : best_effort_) {
    config_check(r != nullptr, "AdaptiveQosController: null regulator");
  }
  stats_.current_bps = cfg_.initial_bps;
  tick_event_ = sim_.make_recurring_event(
      [this](std::uint64_t epoch) { control_tick(epoch); },
      sim_.profile_tag("qos.adaptive"));
}

void AdaptiveQosController::apply(double per_port_bps) {
  stats_.current_bps = per_port_bps;
  for (Regulator* r : best_effort_) {
    r->set_rate(per_port_bps);
    r->set_enabled(true);
  }
}

void AdaptiveQosController::start() {
  if (active_) {
    return;
  }
  active_ = true;
  if (journal_ != nullptr) {
    journal_->record(sim_.now(), cfg_.name, "start", 0.0, stats_.current_bps,
                     "host_write");
  }
  apply(stats_.current_bps);
  sim_.schedule_recurring(tick_event_, sim_.now() + cfg_.period_ps, ++epoch_);
}

void AdaptiveQosController::stop() {
  if (journal_ != nullptr && active_) {
    journal_->record(sim_.now(), cfg_.name, "stop", stats_.current_bps,
                     stats_.current_bps, "host_write");
  }
  active_ = false;
  ++epoch_;
}

void AdaptiveQosController::control_tick(std::uint64_t epoch) {
  if (!active_ || epoch != epoch_) {
    return;
  }
  ++stats_.periods;
  const sim::TimePs observed = critical_->last_window_max_ps();
  const double old_rate = stats_.current_bps;
  double rate = old_rate;
  const bool over_target = observed > cfg_.latency_target_ps;
  if (over_target) {
    rate *= cfg_.decrease_factor;
    ++stats_.decreases;
  } else {
    rate += cfg_.increase_bps /
            static_cast<double>(best_effort_.size());
    ++stats_.increases;
  }
  rate = std::clamp(rate, cfg_.min_bps, cfg_.max_bps);
  if (journal_ != nullptr) {
    // The input sample rides along so the journal shows not only what the
    // loop decided but what it saw when deciding.
    journal_->record(sim_.now(), cfg_.name,
                     over_target ? "decrease" : "increase", old_rate, rate,
                     over_target ? "latency_over_target" : "latency_headroom",
                     "observed_ps=" + std::to_string(observed) +
                         " target_ps=" + std::to_string(cfg_.latency_target_ps));
  }
  apply(rate);
  sim_.schedule_recurring(tick_event_, sim_.now() + cfg_.period_ps, epoch);
}

}  // namespace fgqos::qos
