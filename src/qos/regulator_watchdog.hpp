/// \file regulator_watchdog.hpp
/// \brief Degraded-mode fallback for regulators fed by a faulty monitor.
///
/// The paper's tightly-coupled control loop trusts the bandwidth monitor:
/// an adaptive host controller reads the monitor's per-window samples and
/// reprograms the regulator budget accordingly. If the monitor freezes
/// (stale sample register) or saturates (counter pegs below the real
/// traffic), that loop confidently steers the budget the wrong way and the
/// victim's guarantee evaporates. The watchdog closes this hole: it
/// periodically sanity-checks the monitor feed and, when the feed looks
/// wrong for a configurable number of checks, forces the regulator onto a
/// conservative static fallback budget ("degraded mode"), clamping any
/// further budget writes. Once samples look sane again for a hysteresis
/// streak, the pre-degradation budget is restored.
///
/// Health checks:
///  * stale   — windows_closed() did not advance between checks (the
///              check period must exceed the monitor window);
///  * saturated — last_window_bytes() pegged at/above a configured
///              ceiling (set it to the injected/HW counter cap).
///
/// State transitions are published as qos.degraded.<name>.* metrics and
/// trace instants.
#pragma once

#include <cstdint>
#include <string>

#include "qos/bandwidth_monitor.hpp"
#include "qos/regulator.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace fgqos::telemetry {
class DecisionJournal;
}

namespace fgqos::qos {

struct RegulatorWatchdogConfig {
  std::string name = "watchdog";
  /// Health-check cadence; must exceed the monitor window so an alive
  /// monitor always closes at least one window between checks.
  sim::TimePs check_period_ps = 4 * sim::kPsPerUs;
  /// Static budget forced while degraded (conservative: pick the victim's
  /// guaranteed share).
  std::uint64_t fallback_budget_bytes = 4096;
  /// Consecutive suspicious checks before entering degraded mode.
  std::uint32_t stale_checks_to_trip = 2;
  /// Consecutive healthy checks before re-arming (restoring the budget).
  std::uint32_t sane_checks_to_rearm = 3;
  /// Treat last_window_bytes() >= this as a saturated (lying) counter;
  /// 0 disables the saturation check. While degraded the effective ceiling
  /// drops to the fallback budget (scaled to the monitor window) when that
  /// is lower: samples pegged at the watchdog's own throttle are not
  /// evidence of health, so re-arm requires traffic to genuinely fall
  /// below the fallback.
  std::uint64_t saturation_bytes = 0;
};

struct RegulatorWatchdogStats {
  std::uint64_t checks = 0;
  std::uint64_t stale_checks = 0;      ///< windows_closed() did not advance
  std::uint64_t saturated_checks = 0;  ///< sample pegged at the ceiling
  std::uint64_t degraded_entries = 0;
  std::uint64_t rearms = 0;
  /// Budget writes made by others while degraded that were clamped back
  /// to the fallback.
  std::uint64_t clamped_writes = 0;
};

/// One watchdog supervises one regulator/monitor pair.
class RegulatorWatchdog {
 public:
  /// \p metrics may be null (no qos.degraded.* series is published then).
  RegulatorWatchdog(sim::Simulator& sim, Regulator& reg,
                    const BandwidthMonitor& mon, RegulatorWatchdogConfig cfg,
                    telemetry::MetricsRegistry* metrics = nullptr);

  RegulatorWatchdog(const RegulatorWatchdog&) = delete;
  RegulatorWatchdog& operator=(const RegulatorWatchdog&) = delete;

  [[nodiscard]] const RegulatorWatchdogConfig& config() const { return cfg_; }
  [[nodiscard]] const RegulatorWatchdogStats& stats() const { return stats_; }
  [[nodiscard]] bool degraded() const { return degraded_; }

  /// Attaches the Chrome-trace sink (nullptr detaches): degraded-mode
  /// entry/exit become instants on a track named after this watchdog.
  void set_trace(telemetry::TraceWriter* writer);

  /// Attaches the decision journal (nullptr detaches): degraded-mode
  /// entry (with the tripping cause, monitor_stale or monitor_saturated),
  /// re-arm, and every clamped foreign budget write are recorded.
  void set_journal(telemetry::DecisionJournal* journal) { journal_ = journal; }

 private:
  void on_check();
  void enter_degraded(const char* cause);
  void leave_degraded();

  sim::Simulator& sim_;
  Regulator& reg_;
  const BandwidthMonitor& mon_;
  RegulatorWatchdogConfig cfg_;
  RegulatorWatchdogStats stats_;
  std::uint64_t last_closed_;
  std::uint32_t stale_streak_ = 0;
  std::uint32_t sane_streak_ = 0;
  bool degraded_ = false;
  std::uint64_t saved_budget_ = 0;
  bool saved_enabled_ = true;
  sim::EventQueue::RecurringId check_event_ = 0;
  telemetry::MetricsRegistry* metrics_;
  telemetry::Counter* transitions_ = nullptr;
  telemetry::Counter* clamped_ = nullptr;
  telemetry::Gauge* active_ = nullptr;
  telemetry::TraceWriter* trace_ = nullptr;
  telemetry::TrackId track_;
  telemetry::DecisionJournal* journal_ = nullptr;
};

}  // namespace fgqos::qos
