/// \file polling_monitor.hpp
/// \brief Loosely-coupled regulator variant for the coupling ablation.
///
/// Same token-bucket policy as qos::Regulator, but the regulator's view of
/// consumed bytes lags reality by a configurable observation latency —
/// modelling a monitor that sits across the fabric (e.g. an AXI
/// Performance Monitor polled over the configuration bus) instead of on
/// the port itself. During the lag the gate stays open even though the
/// budget is already spent, so the master overshoots its allocation; the
/// overshoot grows with the observation latency, which is exactly the
/// effect EXP8 quantifies.
#pragma once

#include <cstdint>
#include <deque>
#include <string>

#include "axi/port.hpp"
#include "qos/window.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace fgqos::qos {

/// Configuration of the lagged regulator.
struct LaggedRegulatorConfig {
  std::string name = "lagged_regulator";
  std::uint64_t budget_bytes = 4096;
  sim::TimePs window_ps = sim::kPsPerUs;
  /// Delay between a grant happening and the regulator observing it.
  sim::TimePs observation_latency_ps = 10 * sim::kPsPerUs;
  bool enabled = true;
};

/// The loosely-coupled regulator.
class LaggedRegulator final : public axi::TxnGate {
 public:
  LaggedRegulator(sim::Simulator& sim, LaggedRegulatorConfig cfg);

  [[nodiscard]] const LaggedRegulatorConfig& config() const { return cfg_; }
  /// Bytes granted in the current window (ground truth).
  [[nodiscard]] std::uint64_t window_bytes_true() const { return true_bytes_; }
  /// Bytes the regulator has observed so far this window.
  [[nodiscard]] std::uint64_t window_bytes_observed() const {
    return observed_bytes_;
  }
  /// Largest single-window overshoot (true bytes - budget) seen so far.
  [[nodiscard]] std::uint64_t max_overshoot_bytes() const {
    return max_overshoot_;
  }

  // TxnGate
  [[nodiscard]] bool allow(const axi::LineRequest& line,
                           sim::TimePs now) const override;
  void on_grant(const axi::LineRequest& line, sim::TimePs now) override;

 private:
  void on_window();
  void on_observe(std::uint64_t bytes, std::uint64_t epoch);

  sim::Simulator& sim_;
  LaggedRegulatorConfig cfg_;
  sim::EventQueue::RecurringId window_event_ = 0;
  std::uint32_t prof_tag_ = 0;  ///< host-profiler attribution tag
  std::uint64_t true_bytes_ = 0;      ///< granted this window
  std::uint64_t observed_bytes_ = 0;  ///< what the regulator "knows"
  std::uint64_t max_overshoot_ = 0;
  std::uint64_t epoch_ = 0;
};

}  // namespace fgqos::qos
