/// \file latency_monitor.hpp
/// \brief Tightly-coupled per-port transaction-latency monitor.
///
/// Complements the bandwidth monitor: tracks each outstanding transaction
/// from issue to completion and maintains a windowed latency summary
/// (max and running mean per window, full histogram overall). A
/// programmable threshold fires in the same event that completes the
/// offending transaction — the hardware analogue is a comparator on the
/// in-flight timer. Used by the closed-loop AdaptiveQosController.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "axi/port.hpp"
#include "sim/histogram.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace fgqos::qos {

/// Latency monitor configuration.
struct LatencyMonitorConfig {
  std::string name = "lat_monitor";
  /// Summary window; per-window max/mean reset at each boundary.
  sim::TimePs window_ps = 100 * sim::kPsPerUs;
  /// Track reads, writes or both.
  bool track_reads = true;
  bool track_writes = false;
};

/// Fired when a completing transaction's latency crosses the threshold
/// (at most once per window). Arguments: completion time, latency.
using LatencyThresholdFn = std::function<void(sim::TimePs, sim::TimePs)>;

/// The monitor. Attach with `port.add_observer(monitor)`.
class LatencyMonitor final : public axi::TxnObserver {
 public:
  LatencyMonitor(sim::Simulator& sim, LatencyMonitorConfig cfg);

  [[nodiscard]] const LatencyMonitorConfig& config() const { return cfg_; }

  /// Arms the threshold; 0 disarms.
  void set_threshold(sim::TimePs latency_ps, LatencyThresholdFn fn);

  /// Latency histogram over the whole run (ps).
  [[nodiscard]] const sim::Histogram& histogram() const { return hist_; }
  /// Worst latency observed in the last closed window.
  [[nodiscard]] sim::TimePs last_window_max_ps() const {
    return last_window_max_;
  }
  /// Mean latency of the last closed window (0 when it was empty).
  [[nodiscard]] double last_window_mean_ps() const {
    return last_window_mean_;
  }
  /// Completions observed in the currently open window.
  [[nodiscard]] std::uint64_t window_count() const { return window_count_; }

  // TxnObserver
  void on_issue(const axi::Transaction&, sim::TimePs) override {}
  void on_grant(const axi::LineRequest&, sim::TimePs) override {}
  void on_complete(const axi::Transaction& txn, sim::TimePs now) override;

 private:
  void on_boundary(std::uint64_t epoch);
  void schedule_boundary();

  sim::Simulator& sim_;
  LatencyMonitorConfig cfg_;
  sim::EventQueue::RecurringId boundary_event_ = 0;
  sim::Histogram hist_;
  sim::TimePs window_max_ = 0;
  std::uint64_t window_count_ = 0;
  std::uint64_t window_sum_ = 0;
  sim::TimePs last_window_max_ = 0;
  double last_window_mean_ = 0.0;
  sim::TimePs threshold_ = 0;
  bool threshold_fired_ = false;
  LatencyThresholdFn threshold_fn_;
  std::uint64_t epoch_ = 0;
};

}  // namespace fgqos::qos
