#include "qos/soft_memguard.hpp"

#include <algorithm>
#include <cstdio>
#include <string>

#include "qos/window.hpp"
#include "telemetry/journal.hpp"
#include "util/assert.hpp"
#include "util/config_error.hpp"

namespace fgqos::qos {

namespace {

std::string master_detail(axi::MasterId m, std::uint32_t attempt) {
  return "master=" + std::to_string(m) +
         " attempt=" + std::to_string(attempt);
}

}  // namespace

SoftMemguard::SoftMemguard(sim::Simulator& sim, SoftMemguardConfig cfg)
    : sim_(sim), cfg_(std::move(cfg)) {
  config_check(cfg_.period_ps > 0, "SoftMemguard: period must be > 0");
  config_check(cfg_.isr_latency_ps < cfg_.period_ps,
               "SoftMemguard: ISR latency must be below the period");
  prof_tag_ = sim_.profile_tag("qos.memguard");
  period_event_ = sim_.make_recurring_event(
      [this](std::uint64_t) { on_period_tick(); }, prof_tag_);
  sim_.schedule_recurring(period_event_, sim_.now() + cfg_.period_ps);
}

void SoftMemguard::ensure(axi::MasterId master) {
  if (master >= masters_.size()) {
    masters_.resize(master + 1);
  }
}

void SoftMemguard::set_budget(axi::MasterId master, std::uint64_t budget_bytes) {
  ensure(master);
  MasterState& st = masters_[master];
  st.budget = budget_bytes;
  st.quota = budget_bytes;
  st.last_usage = budget_bytes;  // optimistic first period
  // Mid-period reprogramming must re-evaluate the throttle state against
  // the new quota. Leaving stalled/overflow_pending untouched either keeps
  // a master parked under a budget it no longer exceeds, or lets a
  // previously-scheduled deliver_stall land on a master whose overflow was
  // cancelled by the reconfiguration.
  const sim::TimePs now = sim_.now();
  if (budget_bytes == 0 || st.bytes <= st.quota) {
    st.overflow_pending = false;  // in-flight ISRs see this and back off
    if (st.stalled) {
      st.stats.throttled_ps += now - st.stalled_since;
      trace_stall_end(master, st, now);
      st.stalled = false;
    }
  } else if (!st.stalled && !st.overflow_pending) {
    // Budget lowered below the bytes already granted this period: raise
    // the overflow interrupt now. The overage itself was granted
    // legitimately under the old budget, so it is not a violation;
    // violation accounting starts with grants made while the IRQ is in
    // flight (handled in on_grant).
    st.overflow_pending = true;
    if (cfg_.use_overflow_irq) {
      const std::uint64_t period = period_index_;
      sim_.schedule_at(
          now + cfg_.isr_latency_ps,
          [this, master, period]() { deliver_stall(master, period, 0, true); },
          prof_tag_);
    }
  }
}

void SoftMemguard::set_rate(axi::MasterId master, double bytes_per_second) {
  set_budget(master, budget_for_rate(bytes_per_second, cfg_.period_ps));
}

const SoftMemguardMasterStats& SoftMemguard::master_stats(
    axi::MasterId master) const {
  static const SoftMemguardMasterStats kEmpty{};
  if (master >= masters_.size()) {
    return kEmpty;
  }
  return masters_[master].stats;
}

std::uint64_t SoftMemguard::period_bytes(axi::MasterId master) const {
  return master < masters_.size() ? masters_[master].bytes : 0;
}

bool SoftMemguard::stalled(axi::MasterId master) const {
  return master < masters_.size() && masters_[master].stalled;
}

void SoftMemguard::set_trace(telemetry::TraceWriter* writer) {
  trace_ = writer;
  track_ = telemetry::TrackId{};
  if (trace_ != nullptr) {
    track_ = trace_->track(telemetry::Cat::kQos, cfg_.name);
    if (!track_.valid()) {
      trace_ = nullptr;  // qos category filtered out
    }
  }
}

void SoftMemguard::trace_stall_end(axi::MasterId master,
                                   const MasterState& st, sim::TimePs now) {
  if (trace_ != nullptr) {
    char name[32];
    std::snprintf(name, sizeof(name), "stall m%u",
                  static_cast<unsigned>(master));
    trace_->complete(track_, name, st.stalled_since, now - st.stalled_since);
  }
}

void SoftMemguard::flush_trace(sim::TimePs now) {
  for (axi::MasterId m = 0; m < masters_.size(); ++m) {
    if (masters_[m].stalled) {
      trace_stall_end(m, masters_[m], now);
    }
  }
}

bool SoftMemguard::allow(const axi::LineRequest& line, sim::TimePs) const {
  const axi::MasterId m = line.txn->master;
  if (m >= masters_.size()) {
    return true;
  }
  return !masters_[m].stalled;
}

void SoftMemguard::on_grant(const axi::LineRequest& line, sim::TimePs now) {
  const axi::MasterId m = line.txn->master;
  if (m >= masters_.size()) {
    return;
  }
  MasterState& st = masters_[m];
  st.bytes += line.bytes;
  if (st.budget == 0) {
    return;
  }
  if (cfg_.reclaim_enabled && st.bytes > st.quota && pool_ > 0 &&
      !st.overflow_pending && !st.stalled) {
    // MemGuard reclaim: draw a chunk of donated budget before resorting
    // to the overflow interrupt.
    const std::uint64_t draw = std::min(cfg_.reclaim_chunk_bytes, pool_);
    pool_ -= draw;
    st.quota += draw;
    reclaimed_total_ += draw;
  }
  if (st.bytes > st.quota) {
    if (st.overflow_pending || st.stalled) {
      // Interrupt already in flight: everything granted from the overflow
      // until the stall lands is a guarantee violation.
      if (!st.stalled) {
        st.stats.violation_bytes += line.bytes;
      }
      return;
    }
    st.overflow_pending = true;
    st.stats.violation_bytes += st.bytes - st.quota;
    if (cfg_.use_overflow_irq) {
      const std::uint64_t period = period_index_;
      sim_.schedule_at(
          now + cfg_.isr_latency_ps,
          [this, m, period]() { deliver_stall(m, period, 0, true); },
          prof_tag_);
    }
    // Without the overflow IRQ the master keeps running until the period
    // boundary; every grant above budget counts as violation (handled by
    // the branch above on subsequent grants).
  }
}

void SoftMemguard::deliver_stall(axi::MasterId m, std::uint64_t period,
                                 std::uint32_t attempt, bool faultable) {
  MasterState& st = masters_[m];
  if (period != period_index_) {
    return;  // the period ended before the ISR landed; budget was reset
  }
  if (!st.overflow_pending) {
    return;  // overflow cancelled by a set_budget() while the ISR was in
             // flight
  }
  if (faultable && irq_fault_) {
    const sim::TimePs verdict = irq_fault_(sim_.now());
    if (verdict == sim::kTimeNever) {
      ++irq_stats_.irqs_dropped;
      if (cfg_.irq_retry && attempt < cfg_.irq_max_retries) {
        // IRQ-loss hardening: the software watchdog notices the missing
        // acknowledgement and re-sends with exponential backoff.
        ++irq_stats_.irqs_retried;
        const std::uint32_t shift = std::min<std::uint32_t>(attempt + 1, 6);
        const sim::TimePs backoff = cfg_.isr_latency_ps << shift;
        const std::uint64_t p = period;
        const std::uint32_t next = attempt + 1;
        if (journal_ != nullptr) {
          journal_->record(sim_.now(), cfg_.name, "irq_retry",
                           static_cast<double>(attempt),
                           static_cast<double>(next), "irq_fault",
                           master_detail(m, attempt) +
                               " backoff_ps=" + std::to_string(backoff));
        }
        sim_.schedule_after(
            backoff,
            [this, m, p, next]() { deliver_stall(m, p, next, true); },
            prof_tag_);
      } else {
        ++irq_stats_.irqs_lost;
        if (journal_ != nullptr) {
          journal_->record(sim_.now(), cfg_.name, "irq_lost", 0.0, 0.0,
                           "irq_fault", master_detail(m, attempt));
        }
      }
      return;
    }
    if (verdict > 0) {
      // Late delivery: the stall lands after the extra delay; the fault
      // is not re-consulted (the IRQ already left the faulty path).
      ++irq_stats_.irqs_delayed;
      const std::uint64_t p = period;
      const std::uint32_t a = attempt;
      if (journal_ != nullptr) {
        journal_->record(sim_.now(), cfg_.name, "irq_delay", 0.0,
                         static_cast<double>(verdict), "irq_fault",
                         master_detail(m, attempt));
      }
      sim_.schedule_after(
          verdict, [this, m, p, a]() { deliver_stall(m, p, a, false); },
          prof_tag_);
      return;
    }
  }
  st.overflow_pending = false;
  st.stalled = true;
  st.stalled_since = sim_.now();
  if (journal_ != nullptr) {
    journal_->record(sim_.now(), cfg_.name, "stall", 0.0, 1.0,
                     "overflow_irq",
                     master_detail(m, attempt) +
                         " period_bytes=" + std::to_string(st.bytes) +
                         " quota=" + std::to_string(st.quota));
  }
  if (trace_ != nullptr) {
    char name[32];
    std::snprintf(name, sizeof(name), "overflow_irq m%u",
                  static_cast<unsigned>(m));
    trace_->instant(track_, name, sim_.now());
  }
  if (st.period_of_last_stall != period_index_) {
    st.period_of_last_stall = period_index_;
    ++st.stats.periods_throttled;
  }
}

void SoftMemguard::on_period_tick() {
  const sim::TimePs now = sim_.now();
  pool_ = 0;
  for (axi::MasterId m = 0; m < masters_.size(); ++m) {
    MasterState& st = masters_[m];
    if (st.stalled) {
      st.stats.throttled_ps += now - st.stalled_since;
      trace_stall_end(m, st, now);
      st.stalled = false;
      if (journal_ != nullptr) {
        journal_->record(now, cfg_.name, "release", 1.0, 0.0, "period_tick",
                         "master=" + std::to_string(m) + " stalled_ps=" +
                             std::to_string(now - st.stalled_since));
      }
    }
    st.overflow_pending = false;
    st.last_usage = st.bytes;
    st.bytes = 0;
    if (cfg_.reclaim_enabled && st.budget > 0) {
      // Predictive donation: quota = min(budget, last usage + one chunk);
      // the difference seeds the shared pool.
      st.quota = std::min(st.budget,
                          st.last_usage + cfg_.reclaim_chunk_bytes);
      pool_ += st.budget - st.quota;
    } else {
      st.quota = st.budget;
    }
  }
  ++period_index_;
  sim_.schedule_recurring(period_event_, now + cfg_.period_ps);
}

}  // namespace fgqos::qos
