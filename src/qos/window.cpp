#include "qos/window.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"
#include "util/config_error.hpp"

namespace fgqos::qos {

TokenBucket::TokenBucket(std::uint64_t budget_bytes, ReplenishKind kind,
                         std::uint64_t max_accumulation_windows)
    : budget_(budget_bytes),
      kind_(kind),
      max_windows_(max_accumulation_windows),
      tokens_(static_cast<std::int64_t>(budget_bytes)) {
  config_check(max_windows_ >= 1,
               "TokenBucket: max_accumulation_windows must be >= 1");
}

void TokenBucket::spend(std::uint64_t bytes) {
  FGQOS_ASSERT(tokens_ > 0, "TokenBucket: spend without credit");
  tokens_ -= static_cast<std::int64_t>(bytes);
}

void TokenBucket::replenish() {
  const auto budget = static_cast<std::int64_t>(budget_);
  switch (kind_) {
    case ReplenishKind::kFixedWindow:
      // Debt carries over; surplus is discarded.
      tokens_ = budget + std::min<std::int64_t>(tokens_, 0);
      break;
    case ReplenishKind::kTokenBucket:
      tokens_ = std::min(tokens_ + budget, cap());
      break;
  }
}

void TokenBucket::set_budget(std::uint64_t budget_bytes) {
  budget_ = budget_bytes;
  tokens_ = std::min(tokens_, cap());
}

void TokenBucket::load() {
  tokens_ = static_cast<std::int64_t>(budget_);
}

std::uint64_t budget_for_rate(double bytes_per_second, sim::TimePs window_ps) {
  config_check(bytes_per_second >= 0, "budget_for_rate: negative rate");
  if (bytes_per_second == 0) {
    return 0;
  }
  const double bytes =
      bytes_per_second * static_cast<double>(window_ps) / 1e12;
  const double rounded = std::llround(bytes) > 0
                             ? static_cast<double>(std::llround(bytes))
                             : 1.0;
  return static_cast<std::uint64_t>(rounded);
}

}  // namespace fgqos::qos
