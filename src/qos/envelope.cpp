#include "qos/envelope.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/config_error.hpp"
#include "util/json.hpp"

namespace fgqos::qos {
namespace {

std::string num(double d) { return envelope_double(d); }

double get_num(const util::JsonValue& obj, const char* key, double dflt = 0.0) {
  if (!obj.contains(key)) return dflt;
  return obj.at(key).as_number();
}

std::uint64_t get_u64(const util::JsonValue& obj, const char* key,
                      std::uint64_t dflt = 0) {
  if (!obj.contains(key)) return dflt;
  const auto& v = obj.at(key);
  if (v.is_uint64()) return v.as_uint64();
  return static_cast<std::uint64_t>(v.as_number());
}

std::string get_str(const util::JsonValue& obj, const char* key) {
  if (!obj.contains(key)) return {};
  return obj.at(key).as_string();
}

void emit_stats(std::ostream& os, const EnvelopeEvalStats& s) {
  os << "{\"aggressor_bps\":" << num(s.aggressor_bps)
     << ",\"iter_mean_ps\":" << num(s.iter_mean_ps)
     << ",\"iter_p99_ps\":" << num(s.iter_p99_ps)
     << ",\"read_p99_ps\":" << num(s.read_p99_ps)
     << ",\"slo_miss_frac\":" << num(s.slo_miss_frac)
     << ",\"victim_bw_bps\":" << num(s.victim_bw_bps) << "}";
}

EnvelopeEvalStats parse_stats(const util::JsonValue& v) {
  EnvelopeEvalStats s;
  s.aggressor_bps = get_num(v, "aggressor_bps");
  s.iter_mean_ps = get_num(v, "iter_mean_ps");
  s.iter_p99_ps = get_num(v, "iter_p99_ps");
  s.read_p99_ps = get_num(v, "read_p99_ps");
  s.slo_miss_frac = get_num(v, "slo_miss_frac");
  s.victim_bw_bps = get_num(v, "victim_bw_bps");
  return s;
}

}  // namespace

std::string envelope_double(double d) {
  char buf[64];
  if (d == static_cast<double>(static_cast<long long>(d)) && d > -1e15 &&
      d < 1e15) {
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(d));
  } else {
    std::snprintf(buf, sizeof buf, "%.17g", d);
  }
  return buf;
}

std::string to_canonical_json(const util::JsonValue& v) {
  std::ostringstream os;
  switch (v.kind()) {
    case util::JsonValue::Kind::kNull:
      os << "null";
      break;
    case util::JsonValue::Kind::kBool:
      os << (v.as_bool() ? "true" : "false");
      break;
    case util::JsonValue::Kind::kNumber:
      if (v.is_uint64()) {
        os << v.as_uint64();
      } else {
        os << envelope_double(v.as_number());
      }
      break;
    case util::JsonValue::Kind::kString:
      os << '"' << util::json_escape(v.as_string()) << '"';
      break;
    case util::JsonValue::Kind::kArray: {
      os << '[';
      bool first = true;
      for (const auto& e : v.as_array()) {
        if (!first) os << ',';
        first = false;
        os << to_canonical_json(e);
      }
      os << ']';
      break;
    }
    case util::JsonValue::Kind::kObject: {
      os << '{';
      bool first = true;
      for (const auto& [k, e] : v.as_object()) {
        if (!first) os << ',';
        first = false;
        os << '"' << util::json_escape(k) << "\":" << to_canonical_json(e);
      }
      os << '}';
      break;
    }
  }
  return os.str();
}

std::string CertifiedEnvelope::to_json() const {
  std::ostringstream os;
  os << "{\"schema_version\":" << schema_version
     << ",\"manifest\":" << manifest.to_json_object() << ",\"provenance\":{"
     << "\"optimizer\":\"" << util::json_escape(optimizer) << "\""
     << ",\"objective\":\"" << util::json_escape(objective) << "\""
     << ",\"seed\":" << seed << ",\"evaluations\":" << evaluations
     << ",\"space_hash\":\"" << space_hash << "\""
     << ",\"spec_hash\":\"" << spec_hash << "\""
     << ",\"fault_spec_hash\":\"" << fault_spec_hash << "\""
     << ",\"victim_accesses\":" << victim_accesses
     << ",\"victim_iterations\":" << victim_iterations
     << ",\"deadline_ms\":" << num(deadline_ms)
     << ",\"slo_iter_us\":" << num(slo_iter_us)
     << ",\"regulated_budget_mbps\":" << num(regulated_budget_mbps)
     << ",\"window_us\":" << num(window_us) << ",\"margin\":" << num(margin)
     << ",\"validate_seeds\":[";
  for (std::size_t i = 0; i < validate_seeds.size(); ++i) {
    if (i != 0) os << ',';
    os << validate_seeds[i];
  }
  os << "],\"solo_iter_mean_ps\":" << num(solo_iter_mean_ps)
     << ",\"exp1_mix_objective\":" << num(exp1_mix_objective)
     << "},\"argmax\":{\"config\":" << argmax_config_json
     << ",\"objective\":" << num(argmax_objective) << ",\"unregulated\":";
  emit_stats(os, unregulated);
  os << ",\"regulated\":";
  emit_stats(os, regulated);
  os << "},\"capacity_bps\":" << num(capacity_bps)
     << ",\"max_reservable_frac\":" << num(max_reservable_frac)
     << ",\"certified_total_bps\":" << num(certified_total_bps)
     << ",\"masters\":{";
  bool first = true;
  for (const auto& [name, b] : masters) {
    if (!first) os << ',';
    first = false;
    os << '"' << util::json_escape(name) << "\":{"
       << "\"max_p99_ps\":" << num(b.max_p99_ps)
       << ",\"min_bandwidth_bps\":" << num(b.min_bandwidth_bps)
       << ",\"max_bandwidth_bps\":" << num(b.max_bandwidth_bps)
       << ",\"max_slowdown\":" << num(b.max_slowdown)
       << ",\"max_reserved_bps\":" << num(b.max_reserved_bps) << '}';
  }
  os << "}}\n";
  return os.str();
}

CertifiedEnvelope CertifiedEnvelope::from_json(const util::JsonValue& v) {
  if (!v.is_object()) {
    throw ConfigError("envelope: top-level JSON value must be an object");
  }
  CertifiedEnvelope e;
  e.schema_version = static_cast<int>(get_num(v, "schema_version", -1));
  if (e.schema_version != kSchemaVersion) {
    throw ConfigError("envelope: unsupported schema_version " +
                            std::to_string(e.schema_version) + " (expected " +
                            std::to_string(kSchemaVersion) + ")");
  }
  if (v.contains("manifest")) {
    e.manifest = telemetry::RunManifest::from_json(v.at("manifest"));
  }
  if (v.contains("provenance")) {
    const auto& p = v.at("provenance");
    e.optimizer = get_str(p, "optimizer");
    e.objective = get_str(p, "objective");
    e.seed = get_u64(p, "seed");
    e.evaluations = get_u64(p, "evaluations");
    e.space_hash = get_str(p, "space_hash");
    e.spec_hash = get_str(p, "spec_hash");
    e.fault_spec_hash = get_str(p, "fault_spec_hash");
    e.victim_accesses = get_u64(p, "victim_accesses");
    e.victim_iterations = get_u64(p, "victim_iterations");
    e.deadline_ms = get_num(p, "deadline_ms");
    e.slo_iter_us = get_num(p, "slo_iter_us");
    e.regulated_budget_mbps = get_num(p, "regulated_budget_mbps");
    e.window_us = get_num(p, "window_us");
    e.margin = get_num(p, "margin");
    if (p.contains("validate_seeds")) {
      for (const auto& s : p.at("validate_seeds").as_array()) {
        e.validate_seeds.push_back(s.as_uint64());
      }
    }
    e.solo_iter_mean_ps = get_num(p, "solo_iter_mean_ps");
    e.exp1_mix_objective = get_num(p, "exp1_mix_objective");
  }
  if (v.contains("argmax")) {
    const auto& a = v.at("argmax");
    if (a.contains("config")) {
      e.argmax_config_json = to_canonical_json(a.at("config"));
    }
    e.argmax_objective = get_num(a, "objective");
    if (a.contains("unregulated")) e.unregulated = parse_stats(a.at("unregulated"));
    if (a.contains("regulated")) e.regulated = parse_stats(a.at("regulated"));
  }
  e.capacity_bps = get_num(v, "capacity_bps");
  e.max_reservable_frac = get_num(v, "max_reservable_frac");
  e.certified_total_bps = get_num(v, "certified_total_bps");
  if (v.contains("masters")) {
    for (const auto& [name, b] : v.at("masters").as_object()) {
      MasterBound mb;
      mb.max_p99_ps = get_num(b, "max_p99_ps");
      mb.min_bandwidth_bps = get_num(b, "min_bandwidth_bps");
      mb.max_bandwidth_bps = get_num(b, "max_bandwidth_bps");
      mb.max_slowdown = get_num(b, "max_slowdown");
      mb.max_reserved_bps = get_num(b, "max_reserved_bps");
      e.masters.emplace(name, mb);
    }
  }
  return e;
}

CertifiedEnvelope CertifiedEnvelope::from_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw ConfigError("envelope: cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return from_json(util::JsonValue::parse(ss.str()));
}

void CertifiedEnvelope::save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw ConfigError("envelope: cannot write " + path);
  out << to_json();
}

const MasterBound* CertifiedEnvelope::bound_for(
    const std::string& master) const {
  auto it = masters.find(master);
  return it == masters.end() ? nullptr : &it->second;
}

}  // namespace fgqos::qos
