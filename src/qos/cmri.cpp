#include "qos/cmri.hpp"

#include <algorithm>

namespace fgqos::qos {

CmriInjector::CmriInjector(PremArbiter& prem, CmriConfig cfg)
    : prem_(prem), cfg_(cfg) {
  prem_.add_slot_listener([this](axi::MasterId, sim::TimePs) {
    std::fill(spent_.begin(), spent_.end(), 0);
  });
}

void CmriInjector::ensure(axi::MasterId m) const {
  if (m >= spent_.size()) {
    spent_.resize(m + 1, 0);
  }
}

std::uint64_t CmriInjector::remaining(axi::MasterId m) const {
  ensure(m);
  const std::uint64_t s = spent_[m];
  return s >= cfg_.injection_budget_bytes ? 0
                                          : cfg_.injection_budget_bytes - s;
}

void CmriInjector::set_injection_budget(std::uint64_t bytes) {
  cfg_.injection_budget_bytes = bytes;
}

bool CmriInjector::allow(const axi::LineRequest& line, sim::TimePs) const {
  const axi::MasterId m = line.txn->master;
  if (prem_.owner() == kAllMasters || m == prem_.owner()) {
    return true;
  }
  // Credit semantics: admit while any budget remains (overshoot bounded by
  // one line), so budgets need not be multiples of the line size.
  return remaining(m) > 0;
}

void CmriInjector::on_grant(const axi::LineRequest& line, sim::TimePs) {
  const axi::MasterId m = line.txn->master;
  if (prem_.owner() == kAllMasters || m == prem_.owner()) {
    return;
  }
  ensure(m);
  spent_[m] += line.bytes;
  injected_ += line.bytes;
}

}  // namespace fgqos::qos
