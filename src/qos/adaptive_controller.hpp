/// \file adaptive_controller.hpp
/// \brief Closed-loop QoS: latency-target control of best-effort budgets.
///
/// The static reservation model (QosManager) requires the integrator to
/// pick budgets offline. This controller instead drives the best-effort
/// regulators from a *latency target* on the critical port: every control
/// period it reads the critical LatencyMonitor and applies an AIMD
/// (additive-increase / multiplicative-decrease) step to the aggregate
/// best-effort rate —
///   * critical window-max latency below the target: best-effort budgets
///     grow by `increase_bps` (reclaim unused headroom);
///   * above the target: budgets are cut by `decrease_factor`
///     (fast back-off, the usual stability choice for AIMD loops).
/// The result tracks the highest best-effort throughput compatible with
/// the critical task's latency goal without any offline profiling — the
/// natural extension of the paper's fine-grained control loop, made
/// possible by the monitors being cheap enough to read every few
/// microseconds.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "qos/latency_monitor.hpp"
#include "qos/regulator.hpp"
#include "sim/simulator.hpp"

namespace fgqos::telemetry {
class DecisionJournal;
}

namespace fgqos::qos {

/// Controller configuration.
struct AdaptiveControllerConfig {
  std::string name = "adaptive_qos";
  /// Critical-port latency target (window max must stay below this).
  sim::TimePs latency_target_ps = 600 * sim::kPsPerNs;
  /// Control period (also the latency monitor's summary window).
  sim::TimePs period_ps = 100 * sim::kPsPerUs;
  /// Additive increase per period, spread across best-effort ports.
  double increase_bps = 100e6;
  /// Multiplicative decrease on target violation (in (0,1)).
  double decrease_factor = 0.5;
  /// Bounds on the per-port best-effort rate.
  double min_bps = 50e6;
  double max_bps = 5e9;
  /// Initial per-port rate.
  double initial_bps = 200e6;
};

/// Controller statistics.
struct AdaptiveControllerStats {
  std::uint64_t periods = 0;
  std::uint64_t increases = 0;
  std::uint64_t decreases = 0;
  double current_bps = 0;  ///< per-port rate currently programmed
};

/// The control loop. Owns no hardware; it reprograms the regulators it
/// was given (which must outlive it).
class AdaptiveQosController {
 public:
  /// \param critical_latency monitor on the critical port (observer must
  ///        already be attached)
  /// \param best_effort regulators of the best-effort ports
  AdaptiveQosController(sim::Simulator& sim, AdaptiveControllerConfig cfg,
                        LatencyMonitor& critical_latency,
                        std::vector<Regulator*> best_effort);

  [[nodiscard]] const AdaptiveControllerConfig& config() const { return cfg_; }
  [[nodiscard]] const AdaptiveControllerStats& stats() const { return stats_; }

  /// Attaches the decision journal (nullptr detaches): each AIMD step is
  /// recorded with the observed latency sample that triggered it, plus
  /// start/stop transitions.
  void set_journal(telemetry::DecisionJournal* journal) { journal_ = journal; }

  /// Starts the loop (programs initial budgets immediately).
  void start();
  /// Stops it (regulators keep their last programmed rate).
  void stop();
  [[nodiscard]] bool active() const { return active_; }

 private:
  void apply(double per_port_bps);
  void control_tick(std::uint64_t epoch);

  sim::Simulator& sim_;
  AdaptiveControllerConfig cfg_;
  sim::EventQueue::RecurringId tick_event_ = 0;
  LatencyMonitor* critical_;
  std::vector<Regulator*> best_effort_;
  AdaptiveControllerStats stats_;
  telemetry::DecisionJournal* journal_ = nullptr;
  bool active_ = false;
  std::uint64_t epoch_ = 0;
};

}  // namespace fgqos::qos
