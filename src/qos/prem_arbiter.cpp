#include "qos/prem_arbiter.hpp"

#include "util/config_error.hpp"

namespace fgqos::qos {

PremArbiter::PremArbiter(sim::Simulator& sim, PremConfig cfg)
    : sim_(sim), cfg_(std::move(cfg)) {
  config_check(!cfg_.schedule.empty(), "PremArbiter: empty schedule");
  config_check(cfg_.slot_ps > 0, "PremArbiter: slot length must be > 0");
  slot_event_ = sim_.make_recurring_event(
      [this](std::uint64_t) { on_slot_boundary(); },
      sim_.profile_tag("qos.prem_arbiter"));
  sim_.schedule_recurring(slot_event_, sim_.now() + cfg_.slot_ps);
}

void PremArbiter::add_slot_listener(SlotChangeFn fn) {
  listeners_.push_back(std::move(fn));
}

void PremArbiter::on_slot_boundary() {
  slot_ = (slot_ + 1) % cfg_.schedule.size();
  ++slots_elapsed_;
  const sim::TimePs now = sim_.now();
  for (const auto& fn : listeners_) {
    fn(owner(), now);
  }
  sim_.schedule_recurring(slot_event_, now + cfg_.slot_ps);
}

bool PremArbiter::allow(const axi::LineRequest& line, sim::TimePs) const {
  return owner() == kAllMasters || line.txn->master == owner();
}

void PremArbiter::on_grant(const axi::LineRequest&, sim::TimePs) {}

}  // namespace fgqos::qos
