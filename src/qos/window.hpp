/// \file window.hpp
/// \brief Budget-accounting primitives shared by regulators.
#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace fgqos::qos {

/// How a regulator replenishes its budget.
enum class ReplenishKind : std::uint8_t {
  /// Tokens reset to the window budget at each boundary (outstanding debt
  /// is carried over and repaid); unused surplus is lost — classic
  /// MemGuard window semantics.
  kFixedWindow,
  /// Tokens accumulate across boundaries up to a burst cap of
  /// max_accumulation_windows * budget (token-bucket semantics).
  kTokenBucket,
};

/// Signed byte-credit accounting with overdraft.
///
/// A grant is admitted whenever the credit is positive; the grant's full
/// cost is then debited and may drive the credit negative (bounded by one
/// grant size). Debt is repaid out of the next replenish. This
/// credit-based scheme is how beat-level hardware regulators avoid the
/// systematic undershoot of strict "enough tokens" checks when the window
/// budget is not a multiple of the transfer size: the long-run average
/// equals the programmed rate exactly, with per-window overshoot bounded
/// by one transfer.
class TokenBucket {
 public:
  /// \param budget_bytes tokens granted per window
  /// \param kind         reset or accumulate semantics
  /// \param max_accumulation_windows burst cap in window-budgets (>= 1)
  TokenBucket(std::uint64_t budget_bytes, ReplenishKind kind,
              std::uint64_t max_accumulation_windows = 1);

  /// True when a grant may be admitted right now (credit positive).
  [[nodiscard]] bool can_spend() const { return tokens_ > 0; }

  /// Debits \p bytes (may drive the credit negative). Pre: can_spend().
  void spend(std::uint64_t bytes);

  /// Window boundary: refill per the replenish kind.
  void replenish();

  /// Changes the per-window budget. An immediate clamp avoids stale
  /// oversized credit pools.
  void set_budget(std::uint64_t budget_bytes);

  /// Reloads the credit counter to one full window budget, discarding any
  /// partial spend or outstanding debt — the start-of-window state. Only
  /// an explicit host command (CTRL restart) uses this; set_budget()
  /// deliberately never refills.
  void load();

  /// Current credit (negative while in overdraft).
  [[nodiscard]] std::int64_t tokens() const { return tokens_; }
  [[nodiscard]] std::uint64_t budget() const { return budget_; }
  [[nodiscard]] ReplenishKind kind() const { return kind_; }
  [[nodiscard]] std::int64_t cap() const {
    return static_cast<std::int64_t>(budget_ * max_windows_);
  }

 private:
  std::uint64_t budget_;
  ReplenishKind kind_;
  std::uint64_t max_windows_;
  std::int64_t tokens_;
};

/// Converts a bytes/second rate into a per-window byte budget (rounded to
/// the nearest byte, minimum 1 when rate > 0).
std::uint64_t budget_for_rate(double bytes_per_second, sim::TimePs window_ps);

}  // namespace fgqos::qos
