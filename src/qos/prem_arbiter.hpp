/// \file prem_arbiter.hpp
/// \brief PREM-style mutually-exclusive memory-phase arbitration (TDMA).
///
/// The Predictable Execution Model baseline: time is divided into fixed
/// slots; during a slot only the slot's owner may access memory, all other
/// masters are gated. This gives the owner interference-free latency at
/// the cost of leaving the owner's unused bandwidth entirely on the floor
/// — the inefficiency CMRI and the paper's HW QoS recover.
///
/// Attach the same instance as a gate on every participating port.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "axi/port.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace fgqos::qos {

/// Wildcard owner: every master may access memory during such a slot
/// (used to model "FPGA slots" shared by all accelerators while the CPU
/// slot is exclusive).
inline constexpr axi::MasterId kAllMasters = 0xFFFF;

/// PREM TDMA configuration.
struct PremConfig {
  /// Slot owners in rotation order (master ids; repetition allowed to give
  /// a master multiple slots per frame; kAllMasters = shared slot).
  std::vector<axi::MasterId> schedule;
  /// Slot length.
  sim::TimePs slot_ps = 10 * sim::kPsPerUs;
};

/// Callback invoked at each slot boundary with (new owner, slot start).
using SlotChangeFn = std::function<void(axi::MasterId, sim::TimePs)>;

/// The TDMA gate.
class PremArbiter final : public axi::TxnGate {
 public:
  PremArbiter(sim::Simulator& sim, PremConfig cfg);

  /// Master currently entitled to access memory.
  [[nodiscard]] axi::MasterId owner() const { return cfg_.schedule[slot_]; }
  [[nodiscard]] const PremConfig& config() const { return cfg_; }
  /// Number of completed slots.
  [[nodiscard]] std::uint64_t slots_elapsed() const { return slots_elapsed_; }

  /// Registers a slot-boundary listener (e.g. CmriInjector).
  void add_slot_listener(SlotChangeFn fn);

  // TxnGate: only the owner passes.
  [[nodiscard]] bool allow(const axi::LineRequest& line,
                           sim::TimePs now) const override;
  void on_grant(const axi::LineRequest& line, sim::TimePs now) override;

 private:
  void on_slot_boundary();

  sim::Simulator& sim_;
  PremConfig cfg_;
  sim::EventQueue::RecurringId slot_event_ = 0;
  std::size_t slot_ = 0;
  std::uint64_t slots_elapsed_ = 0;
  std::vector<SlotChangeFn> listeners_;
};

}  // namespace fgqos::qos
