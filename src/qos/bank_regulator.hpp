/// \file bank_regulator.hpp
/// \brief Per-bank bandwidth regulator: one token bucket per DRAM bank.
///
/// The aggregate Regulator throttles a master's total DRAM traffic; the
/// BankRegulator throttles it per *bank*. Each gated line request is
/// decoded through the same AddressMapper geometry the controller uses and
/// charged against the bucket of its target bank, so a master can be
/// clamped hard on a victim's bank while running unthrottled everywhere
/// else — the related-work claim (arXiv 2603.26054) that per-bank
/// regulation dominates aggregate regulation on both predictability and
/// throughput. Budget reprogramming keeps the aggregate regulator's
/// mid-window semantics: a throttle interval never straddles a
/// configuration change.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "axi/port.hpp"
#include "dram/address_mapper.hpp"
#include "dram/timing.hpp"
#include "qos/window.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace fgqos::telemetry {
class DecisionJournal;
}

namespace fgqos::qos {

/// Per-bank regulator configuration for one master port.
struct BankRegulatorConfig {
  std::string name = "bankreg";
  /// Replenishment window shared by every bank bucket.
  sim::TimePs window_ps = sim::kPsPerUs;
  ReplenishKind kind = ReplenishKind::kFixedWindow;
  std::uint64_t max_accumulation_windows = 1;
  bool enabled = true;
  bool gate_reads = true;
  bool gate_writes = true;
  /// Per-bank byte budgets per window, indexed by bank. 0 (or an index
  /// beyond the vector) means the bank is unregulated. Sized up to the
  /// DRAM bank count at construction.
  std::vector<std::uint64_t> budget_bytes;
};

/// Per-bank accounting (one per bank).
struct BankRegBankStats {
  std::uint64_t exhausted_windows = 0;
  sim::TimePs throttled_ps = 0;
  std::uint64_t regulated_bytes = 0;
};

/// The per-bank regulator. Attach with `port.add_gate(reg)`, exactly like
/// the aggregate Regulator; both may gate the same port (AND semantics).
class BankRegulator final : public axi::TxnGate {
 public:
  /// \param timing  DRAM geometry used to decode line addresses
  /// \param mapping must match the controller's policy or the charged
  ///                bank diverges from the serviced bank
  BankRegulator(sim::Simulator& sim, BankRegulatorConfig cfg,
                const dram::TimingConfig& timing,
                dram::MappingPolicy mapping);

  [[nodiscard]] const BankRegulatorConfig& config() const { return cfg_; }
  [[nodiscard]] bool enabled() const { return cfg_.enabled; }
  [[nodiscard]] std::uint32_t banks() const { return banks_; }
  /// True when \p bank carries a nonzero budget (is being regulated).
  [[nodiscard]] bool bank_limited(std::uint32_t bank) const {
    return bank < banks_ && limited_[bank] != 0;
  }
  /// Current byte credit of \p bank (meaningless while unlimited).
  [[nodiscard]] std::int64_t tokens(std::uint32_t bank) const {
    return buckets_[bank].tokens();
  }
  [[nodiscard]] bool exhausted(std::uint32_t bank) const {
    return exhausted_[bank] != 0;
  }
  [[nodiscard]] const BankRegBankStats& bank_stats(std::uint32_t bank) const {
    return stats_[bank];
  }
  /// Sums over banks (diagnostics / metrics).
  [[nodiscard]] std::uint64_t total_exhausted_windows() const;
  [[nodiscard]] sim::TimePs total_throttled_ps() const;
  [[nodiscard]] std::uint64_t regulated_bytes() const;
  /// Bank a line request would be charged to (exposed for tests).
  [[nodiscard]] std::uint32_t decode_bank(axi::Addr addr) const {
    return mapper_.decode(addr).bank;
  }

  /// Enables/disables the whole gate at runtime (host CTRL register).
  void set_enabled(bool enabled);

  /// Reprograms one bank's per-window budget (host BUDGET[bank] register);
  /// 0 lifts regulation from the bank. Mid-window: the running throttle
  /// interval (if any) closes at the reconfiguration edge and a fresh one
  /// starts only if the bank is still exhausted under the new budget.
  void set_bank_budget(std::uint32_t bank, std::uint64_t budget_bytes);

  /// Convenience: budget from a target rate for the current window.
  void set_bank_rate(std::uint32_t bank, double bytes_per_second);

  /// Reprograms the shared window length; restarts the replenish schedule.
  void set_window(sim::TimePs window_ps);

  /// Attaches the decision journal (nullptr detaches).
  void set_journal(telemetry::DecisionJournal* journal) { journal_ = journal; }

  // TxnGate
  [[nodiscard]] bool allow(const axi::LineRequest& line,
                           sim::TimePs now) const override;
  void on_grant(const axi::LineRequest& line, sim::TimePs now) override;

 private:
  void schedule_replenish();
  void on_replenish(std::uint64_t epoch);
  void close_throttle(std::uint32_t bank, sim::TimePs now);
  void reevaluate_bank(std::uint32_t bank);
  [[nodiscard]] bool gates_dir(bool is_write) const {
    return is_write ? cfg_.gate_writes : cfg_.gate_reads;
  }

  sim::Simulator& sim_;
  BankRegulatorConfig cfg_;
  dram::AddressMapper mapper_;
  std::uint32_t banks_;
  std::vector<TokenBucket> buckets_;         ///< one per bank
  std::vector<std::uint8_t> limited_;        ///< nonzero budget per bank
  std::vector<std::uint8_t> exhausted_;      ///< gate shut per bank
  std::vector<sim::TimePs> exhausted_since_;
  std::vector<BankRegBankStats> stats_;
  std::uint64_t epoch_ = 0;
  sim::TimePs window_start_ = 0;
  sim::EventQueue::RecurringId replenish_event_ = 0;
  telemetry::DecisionJournal* journal_ = nullptr;
};

/// Host-programmable per-bank budget plan, parsed from `--bank-budget-spec`
/// JSON. Shape:
///
/// ```json
/// {
///   "window_us": 10,
///   "kind": "token_bucket",
///   "max_accumulation_windows": 4,
///   "ports": [
///     {"port": 0, "default_mbps": 0, "banks": {"1": 50, "2": 100}}
///   ]
/// }
/// ```
///
/// `port` indexes the SoC's accelerator (HP) ports. `default_mbps` applies
/// to every bank without an explicit override; 0 (the default) leaves a
/// bank unregulated. Parsing is strict: unknown keys are rejected so typos
/// fail loudly instead of silently deregulating a bank.
struct BankBudgetSpec {
  struct PortBudget {
    std::uint32_t port = 0;
    double default_mbps = 0.0;
    std::map<std::uint32_t, double> bank_mbps;
  };

  sim::TimePs window_ps = 10 * sim::kPsPerUs;
  ReplenishKind kind = ReplenishKind::kFixedWindow;
  std::uint64_t max_accumulation_windows = 1;
  std::vector<PortBudget> ports;

  static BankBudgetSpec from_json(const std::string& text);
  static BankBudgetSpec load(const std::string& path);
  /// Canonical re-serialisation (manifest provenance hashing).
  [[nodiscard]] std::string to_json() const;
  /// Per-window byte budgets for one port entry, sized to \p banks.
  [[nodiscard]] std::vector<std::uint64_t> budgets_for(
      const PortBudget& pb, std::uint32_t banks) const;
};

}  // namespace fgqos::qos
