#include "qos/analysis.hpp"

#include <algorithm>
#include <cmath>

#include "qos/window.hpp"
#include "util/config_error.hpp"

namespace fgqos::qos {

LatencyBound worst_case_read_latency(const BoundInputs& in) {
  in.dram.validate();
  config_check(in.line_bytes > 0, "analysis: line_bytes must be > 0");
  config_check(in.aggressor_total_bps >= 0,
               "analysis: negative aggressor rate");
  const dram::TimingConfig& t = in.dram.timing;
  const sim::TimePs cyc = t.period_ps();

  LatencyBound b;
  b.path_ps = in.path_latency_ps;

  // Worst-case single-line service: the target bank has a conflicting row
  // open whose precharge window has just been re-armed (tRAS from a fresh
  // ACT), then PRE + ACT + CAS + data; ACT may additionally stall on the
  // four-activate window.
  const std::uint64_t conflict_cycles =
      static_cast<std::uint64_t>(t.tRAS) + t.tRP + t.tRCD + t.tCL +
      t.burst_cycles();
  const std::uint64_t faw_stall = t.tFAW;  // one full window in the worst case
  b.per_line_service_ps = (conflict_cycles + faw_stall) * cyc;

  // One refresh may be in progress or become due while waiting.
  b.refresh_ps = static_cast<sim::TimePs>(t.tRFC) * cyc;

  // Interfering lines ahead of the critical one: limited by the read
  // queue capacity AND by what regulation admits over the waiting
  // interval. The waiting interval depends on the interference, so the
  // bound is the least fixed point of
  //   L = path + (K(L) + 1) * S + R + D
  //   K(L) = min(queue - 1, lines(budget * ceil(L / W)) + overdraft)
  // where the overdraft is one line per regulated master (credit
  // semantics). The iteration is monotone and capped by the queue term,
  // so it converges in a handful of steps.
  const std::uint64_t budget_bytes =
      budget_for_rate(in.aggressor_total_bps, in.regulation_window_ps);
  const std::uint64_t queue_lines = in.dram.read_queue_depth > 0
                                        ? in.dram.read_queue_depth - 1
                                        : 0;
  const auto lines_over = [&](sim::TimePs span) {
    if (in.aggressor_total_bps <= 0) {
      return queue_lines;
    }
    const std::uint64_t windows =
        (span + in.regulation_window_ps - 1) / in.regulation_window_ps;
    const std::uint64_t bytes = budget_bytes * std::max<std::uint64_t>(
                                                   windows, 1);
    const std::uint64_t lines =
        (bytes + in.line_bytes - 1) / in.line_bytes + in.aggressor_count;
    return std::min(lines, queue_lines);
  };

  std::uint64_t k = lines_over(b.per_line_service_ps);
  sim::TimePs total = 0;
  for (int iter = 0; iter < 64; ++iter) {
    total = b.path_ps + (k + 1) * b.per_line_service_ps + b.refresh_ps;
    const std::uint64_t k_next = lines_over(total);
    if (k_next == k) {
      break;
    }
    k = k_next;
  }
  b.interfering_lines = k;
  b.service_ps = (k + 1) * b.per_line_service_ps;

  // A write-drain batch may run first: the controller drains from the
  // high to the low watermark before reads resume, but the read-aging
  // guard re-admits reads after starvation_cycles regardless.
  const std::uint64_t drain_lines =
      in.dram.write_high_watermark - in.dram.write_low_watermark;
  const std::uint64_t drain_cycles_raw =
      drain_lines * (conflict_cycles + faw_stall);
  const std::uint64_t drain_cycles =
      std::min<std::uint64_t>(drain_cycles_raw,
                              in.dram.starvation_cycles + conflict_cycles);
  b.write_drain_ps = drain_cycles * cyc;

  b.total_ps = b.path_ps + b.service_ps + b.refresh_ps + b.write_drain_ps;
  return b;
}

}  // namespace fgqos::qos
