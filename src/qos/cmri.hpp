/// \file cmri.hpp
/// \brief Controlled Memory Request Injection on top of PREM.
///
/// CMRI (Brilli et al., 2022) relaxes PREM's mutual exclusion: masters that
/// do not own the current slot may still inject a bounded number of bytes
/// per slot, chosen small enough that the owner's slowdown stays below a
/// target (the prior work shows >40% of the otherwise-wasted bandwidth can
/// be recovered while keeping the owner's slowdown under 10%).
///
/// Use INSTEAD of attaching the PremArbiter gate directly: attach one
/// CmriInjector (sharing the PremArbiter for slot state) to every port.
#pragma once

#include <cstdint>
#include <vector>

#include "axi/port.hpp"
#include "qos/prem_arbiter.hpp"
#include "sim/time.hpp"

namespace fgqos::qos {

/// CMRI configuration.
struct CmriConfig {
  /// Bytes a non-owner master may inject per slot.
  std::uint64_t injection_budget_bytes = 2048;
};

/// The injection gate.
class CmriInjector final : public axi::TxnGate {
 public:
  /// \param prem supplies slot ownership; the injector registers itself as
  ///             a slot listener to refill injection budgets.
  CmriInjector(PremArbiter& prem, CmriConfig cfg);

  [[nodiscard]] const CmriConfig& config() const { return cfg_; }
  /// Remaining injection budget of \p master in the current slot.
  [[nodiscard]] std::uint64_t remaining(axi::MasterId master) const;
  /// Total bytes injected (non-owner grants) since construction.
  [[nodiscard]] std::uint64_t injected_bytes() const { return injected_; }
  /// Reprograms the per-slot injection budget (applies from now on).
  void set_injection_budget(std::uint64_t bytes);

  // TxnGate
  [[nodiscard]] bool allow(const axi::LineRequest& line,
                           sim::TimePs now) const override;
  void on_grant(const axi::LineRequest& line, sim::TimePs now) override;

 private:
  void ensure(axi::MasterId m) const;

  PremArbiter& prem_;
  CmriConfig cfg_;
  mutable std::vector<std::uint64_t> spent_;  ///< per master, this slot
  std::uint64_t injected_ = 0;
};

}  // namespace fgqos::qos
