/// \file soft_memguard.hpp
/// \brief Software bandwidth-regulation baseline (MemGuard-style).
///
/// Models the classic OS-level regulator the paper compares against:
///  * a periodic timer (default 1 ms) defines the regulation period;
///  * per-master byte budgets are charged from PMU-style counters;
///  * when a counter overflows its budget, an interrupt is raised and the
///    offending master is parked until the period ends — but only after the
///    interrupt delivery + ISR latency has elapsed, during which the master
///    keeps hammering memory (the "violation bytes" the paper's
///    tightly-coupled regulator eliminates);
///  * at each period boundary all masters are released and counters reset.
///
/// Attach to each regulated port with add_gate() only (gates observe their
/// own grants through TxnGate::on_grant).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "axi/port.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"
#include "telemetry/trace.hpp"

namespace fgqos::telemetry {
class DecisionJournal;
}

namespace fgqos::qos {

/// SoftMemguard configuration.
struct SoftMemguardConfig {
  std::string name = "memguard_sw";
  /// Regulation period (OS timer tick).
  sim::TimePs period_ps = sim::kPsPerMs;
  /// Interrupt delivery + ISR entry + throttle actuation latency.
  sim::TimePs isr_latency_ps = 3 * sim::kPsPerUs;
  /// When false, overflow interrupts are disabled and over-budget masters
  /// are only caught at the next period boundary (pure polling; even
  /// coarser behaviour).
  bool use_overflow_irq = true;
  /// MemGuard's predictive reclaim: masters predicted (from last period's
  /// usage) to under-consume donate the difference to a global pool; a
  /// master that hits its quota draws chunks from the pool before being
  /// stalled.
  bool reclaim_enabled = false;
  /// Pool draw granularity.
  std::uint64_t reclaim_chunk_bytes = 16 * 1024;
  /// IRQ-loss hardening: when an overflow IRQ is detected as lost (the
  /// fault seam dropped it), re-deliver with exponential backoff
  /// (isr_latency * 2^attempt, capped by irq_max_retries) instead of
  /// silently letting the master run unthrottled for the whole period.
  bool irq_retry = false;
  std::uint32_t irq_max_retries = 3;
};

/// Instance-wide IRQ-path fault/hardening statistics.
struct SoftMemguardIrqStats {
  std::uint64_t irqs_dropped = 0;  ///< deliveries lost to an injected fault
  std::uint64_t irqs_delayed = 0;  ///< deliveries that landed late
  std::uint64_t irqs_retried = 0;  ///< re-deliveries scheduled (hardening)
  std::uint64_t irqs_lost = 0;     ///< dropped with retries off/exhausted
};

/// Per-master software regulation state and statistics.
struct SoftMemguardMasterStats {
  std::uint64_t periods_throttled = 0;  ///< periods in which a stall occurred
  std::uint64_t violation_bytes = 0;    ///< bytes granted after overflow,
                                        ///< before the stall took effect
  sim::TimePs throttled_ps = 0;         ///< cumulative parked time
};

/// The software regulator. One instance supervises many masters.
class SoftMemguard final : public axi::TxnGate {
 public:
  SoftMemguard(sim::Simulator& sim, SoftMemguardConfig cfg);

  /// Registers a master with a per-period byte budget of \p budget_bytes.
  /// 0 means unregulated. Call before attaching to the port.
  void set_budget(axi::MasterId master, std::uint64_t budget_bytes);

  /// Budget from a target rate.
  void set_rate(axi::MasterId master, double bytes_per_second);

  [[nodiscard]] const SoftMemguardConfig& config() const { return cfg_; }
  [[nodiscard]] const SoftMemguardMasterStats& master_stats(
      axi::MasterId master) const;
  /// Bytes counted for \p master in the current period.
  [[nodiscard]] std::uint64_t period_bytes(axi::MasterId master) const;
  [[nodiscard]] bool stalled(axi::MasterId master) const;
  /// Bytes left in the reclaim pool this period.
  [[nodiscard]] std::uint64_t reclaim_pool_bytes() const { return pool_; }
  /// Total bytes served out of the reclaim pool since construction.
  [[nodiscard]] std::uint64_t reclaimed_total_bytes() const {
    return reclaimed_total_;
  }

  /// Attaches the decision journal (nullptr detaches): stall deliveries,
  /// period releases of parked masters, and IRQ drops/delays/retries/losses
  /// are recorded as control actions.
  void set_journal(telemetry::DecisionJournal* journal) { journal_ = journal; }

  /// Attaches the Chrome-trace sink (nullptr detaches): overflow IRQs
  /// become instant events and each park a "stall m<N>" duration event,
  /// on a track named after this instance.
  void set_trace(telemetry::TraceWriter* writer);

  /// Emits trailing stall spans for masters still parked at the end of a
  /// run (call before TraceWriter::finish()).
  void flush_trace(sim::TimePs now);

  /// Fault seam on overflow-IRQ delivery. Return 0 to deliver normally,
  /// a positive delay (ps) to land the stall late, or sim::kTimeNever to
  /// drop the IRQ (recovered only by the retry hardening, if enabled).
  using IrqFaultFn = std::function<sim::TimePs(sim::TimePs)>;
  void set_irq_fault(IrqFaultFn fn) { irq_fault_ = std::move(fn); }

  [[nodiscard]] const SoftMemguardIrqStats& irq_stats() const {
    return irq_stats_;
  }

  // TxnGate: a stalled master may not be granted.
  [[nodiscard]] bool allow(const axi::LineRequest& line,
                           sim::TimePs now) const override;
  void on_grant(const axi::LineRequest& line, sim::TimePs now) override;

 private:
  struct MasterState {
    std::uint64_t budget = 0;       ///< 0 = unregulated
    std::uint64_t quota = 0;        ///< this period's allowance (with
                                    ///< reclaim: budget +/- donations)
    std::uint64_t bytes = 0;        ///< counted this period
    std::uint64_t last_usage = 0;   ///< previous period (prediction)
    bool overflow_pending = false;  ///< IRQ in flight
    bool stalled = false;
    sim::TimePs stalled_since = 0;
    std::uint64_t period_of_last_stall = ~std::uint64_t{0};
    SoftMemguardMasterStats stats;
  };

  void ensure(axi::MasterId master);
  void on_period_tick();
  /// \p attempt counts re-deliveries (0 = the original IRQ); \p faultable
  /// is false for deliveries that already paid a fault-injected delay, so
  /// a 100%-probability delay fault cannot postpone a stall forever.
  void deliver_stall(axi::MasterId master, std::uint64_t period,
                     std::uint32_t attempt, bool faultable);
  void trace_stall_end(axi::MasterId master, const MasterState& st,
                       sim::TimePs now);

  sim::Simulator& sim_;
  SoftMemguardConfig cfg_;
  std::vector<MasterState> masters_;
  sim::EventQueue::RecurringId period_event_ = 0;
  std::uint32_t prof_tag_ = 0;  ///< host-profiler attribution tag
  std::uint64_t period_index_ = 0;
  std::uint64_t pool_ = 0;
  std::uint64_t reclaimed_total_ = 0;
  IrqFaultFn irq_fault_;
  SoftMemguardIrqStats irq_stats_;
  telemetry::TraceWriter* trace_ = nullptr;
  telemetry::TrackId track_;
  telemetry::DecisionJournal* journal_ = nullptr;
};

}  // namespace fgqos::qos
