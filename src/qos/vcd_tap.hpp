/// \file vcd_tap.hpp
/// \brief Exports live QoS state (ports, regulators, monitors) as VCD.
///
/// Instantiate one tap per dump file, attach the entities of interest,
/// run, then call finish() (or let the destructor do it). The resulting
/// waveform shows — per port — outstanding transactions and cumulative
/// granted bytes, and — per regulator — the token credit and the
/// exhausted flag, which is exactly the picture an RTL engineer would
/// probe on the real IP with an ILA.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "axi/port.hpp"
#include "qos/regulator.hpp"
#include "sim/simulator.hpp"
#include "sim/vcd.hpp"

namespace fgqos::qos {

/// The tap.
class QosVcdTap {
 public:
  /// \param sample_period_ps polling period for non-event state
  ///        (regulator tokens); port events are recorded exactly.
  QosVcdTap(sim::Simulator& sim, const std::string& path,
            sim::TimePs sample_period_ps = sim::kPsPerUs);
  ~QosVcdTap();

  QosVcdTap(const QosVcdTap&) = delete;
  QosVcdTap& operator=(const QosVcdTap&) = delete;

  /// Adds per-port signals (outstanding transactions, granted KiB).
  /// Call before the simulation starts producing events of interest.
  void attach_port(axi::MasterPort& port);

  /// Adds per-regulator signals (token credit, exhausted flag).
  void attach_regulator(const Regulator& reg);

  /// Stops sampling and closes the file.
  void finish();

 private:
  class PortObserver;
  void poll(std::uint64_t epoch);

  sim::Simulator& sim_;
  sim::VcdWriter writer_;
  sim::TimePs period_;
  sim::EventQueue::RecurringId poll_event_ = 0;
  bool poll_event_made_ = false;
  std::vector<std::unique_ptr<PortObserver>> observers_;
  struct RegSignals {
    const Regulator* reg;
    sim::VcdSignal tokens;
    sim::VcdSignal exhausted;
  };
  std::vector<RegSignals> regs_;
  std::uint64_t epoch_ = 0;
  bool polling_ = false;
  bool finished_ = false;
};

}  // namespace fgqos::qos
