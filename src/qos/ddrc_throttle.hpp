/// \file ddrc_throttle.hpp
/// \brief Controller-level traffic throttle (Xilinx DDRC-QoS-style).
///
/// Commercial FPGA SoCs expose coarse QoS knobs at the DDR controller:
/// global per-direction command throttles that limit how fast the
/// controller accepts requests, with no notion of which master they came
/// from. This class models that alternative as a SlaveIf decorator
/// inserted between the crossbar and the dram::Controller. It is the
/// "regulation at the wrong place" baseline: it can cap aggregate
/// traffic, but cannot isolate a critical master from an aggressive one —
/// both are slowed equally (EXP11 quantifies this against the paper's
/// per-port regulators).
#pragma once

#include <cstdint>
#include <string>

#include "axi/interconnect.hpp"
#include "qos/window.hpp"
#include "sim/simulator.hpp"

namespace fgqos::qos {

/// Throttle configuration.
struct DdrcThrottleConfig {
  std::string name = "ddrc_throttle";
  /// Aggregate accepted read payload per second (0 = unthrottled).
  double read_bps = 0;
  /// Aggregate accepted write payload per second (0 = unthrottled).
  double write_bps = 0;
  /// Accounting window for the internal credit buckets.
  sim::TimePs window_ps = sim::kPsPerUs;
};

/// The decorator. Wire as:
///   DdrcThrottle thr(sim, cfg, controller);
///   xbar.set_slave(thr);
class DdrcThrottle final : public axi::SlaveIf {
 public:
  DdrcThrottle(sim::Simulator& sim, DdrcThrottleConfig cfg,
               axi::SlaveIf& inner);

  [[nodiscard]] const DdrcThrottleConfig& config() const { return cfg_; }
  /// Bytes refused so far because a bucket was dry (per direction).
  [[nodiscard]] std::uint64_t throttled_rejections() const {
    return rejections_;
  }

  /// Reprograms the rates (takes effect immediately).
  void set_rates(double read_bps, double write_bps);

  // SlaveIf
  [[nodiscard]] bool can_accept(const axi::LineRequest& line,
                                sim::TimePs now) const override;
  void accept(axi::LineRequest line, sim::TimePs now) override;

 private:
  void on_window();

  sim::Simulator& sim_;
  DdrcThrottleConfig cfg_;
  sim::EventQueue::RecurringId window_event_ = 0;
  axi::SlaveIf* inner_;
  TokenBucket read_bucket_;
  TokenBucket write_bucket_;
  mutable std::uint64_t rejections_ = 0;
};

}  // namespace fgqos::qos
