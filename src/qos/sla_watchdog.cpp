#include "qos/sla_watchdog.hpp"

#include "qos/envelope.hpp"
#include "qos/qos_manager.hpp"
#include "telemetry/journal.hpp"
#include "util/assert.hpp"
#include "util/config_error.hpp"

namespace fgqos::qos {

namespace {

constexpr double kPsPerSecond = 1e12;

/// Victim's stall in \p rec charged to any master but itself (all causes
/// except self-attributed arbitration folds are already on the self cell).
std::uint64_t interference_ps(
    const telemetry::AttributionEngine& engine,
    const telemetry::AttributionEngine::WindowRecord& rec,
    axi::MasterId victim) {
  std::uint64_t ps = 0;
  const std::size_t m = engine.master_count();
  for (std::size_t a = 0; a < m; ++a) {
    for (std::size_t c = 0; c < telemetry::kCauseCount; ++c) {
      if (a == victim && static_cast<telemetry::Cause>(c) ==
                             telemetry::Cause::kSelf) {
        continue;
      }
      const std::size_t idx =
          (static_cast<std::size_t>(victim) * m + a) * telemetry::kCauseCount +
          c;
      ps += rec.cells[idx].stall_ps;
    }
  }
  return ps;
}

}  // namespace

const char* violation_kind_name(ViolationKind k) {
  switch (k) {
    case ViolationKind::kBandwidth: return "bandwidth";
    case ViolationKind::kLatencyP99: return "latency_p99";
    case ViolationKind::kInterference: return "interference";
  }
  return "?";
}

SlaWatchdog::SlaWatchdog(telemetry::AttributionEngine& engine,
                         telemetry::MetricsRegistry& metrics)
    : engine_(engine), metrics_(metrics) {
  engine_.add_window_listener(
      [this](const telemetry::AttributionEngine::WindowRecord& rec) {
        on_window(rec);
      });
}

void SlaWatchdog::watch(axi::MasterPort& port, SlaSpec spec) {
  config_check(find(port.id()) == nullptr,
               "SlaWatchdog: port '" + port.name() + "' already watched");
  config_check(spec.trip_windows > 0 && spec.clear_windows > 0,
               "SlaWatchdog: hysteresis window counts must be > 0");
  Watch w;
  w.master = port.id();
  w.name = port.name();
  w.spec = spec;
  w.objectives[static_cast<std::size_t>(ViolationKind::kBandwidth)] = {
      spec.min_bandwidth_mbps > 0, spec.min_bandwidth_mbps, 0, 0, false};
  w.objectives[static_cast<std::size_t>(ViolationKind::kLatencyP99)] = {
      spec.max_p99_latency_ps > 0, static_cast<double>(spec.max_p99_latency_ps),
      0, 0, false};
  w.objectives[static_cast<std::size_t>(ViolationKind::kInterference)] = {
      spec.max_interference_fraction > 0, spec.max_interference_fraction, 0, 0,
      false};
  w.violations_counter = &metrics_.counter("qos.sla." + w.name + ".violations");
  w.in_violation_gauge = &metrics_.gauge("qos.sla." + w.name + ".in_violation");
  watches_.push_back(std::move(w));
  port.add_observer(*this);
}

void SlaWatchdog::set_trace(telemetry::TraceWriter* writer) {
  trace_ = writer;
  track_ = telemetry::TrackId{};
  if (trace_ != nullptr) {
    track_ = trace_->track(telemetry::Cat::kQos, "sla");
    if (!track_.valid()) {
      trace_ = nullptr;  // qos category filtered out
    }
  }
}

void SlaWatchdog::set_envelope(const CertifiedEnvelope* envelope,
                               QosManager* manager) {
  envelope_ = envelope;
  manager_ = envelope == nullptr ? nullptr : manager;
}

void SlaWatchdog::on_issue(const axi::Transaction& /*txn*/,
                           sim::TimePs /*now*/) {}

void SlaWatchdog::on_grant(const axi::LineRequest& line, sim::TimePs /*now*/) {
  if (Watch* w = find(line.txn->master)) {
    w->window_bytes += line.bytes;
  }
}

void SlaWatchdog::on_complete(const axi::Transaction& txn,
                              sim::TimePs /*now*/) {
  if (Watch* w = find(txn.master)) {
    w->window_latency.record(txn.latency());
  }
}

SlaWatchdog::Watch* SlaWatchdog::find(axi::MasterId master) {
  for (Watch& w : watches_) {
    if (w.master == master) {
      return &w;
    }
  }
  return nullptr;
}

bool SlaWatchdog::in_violation(axi::MasterId master) const {
  for (const Watch& w : watches_) {
    if (w.master != master) {
      continue;
    }
    for (const Objective& o : w.objectives) {
      if (o.active) {
        return true;
      }
    }
  }
  return false;
}

void SlaWatchdog::check(
    Watch& w, ViolationKind kind, double measured,
    const telemetry::AttributionEngine::WindowRecord& rec) {
  Objective& o = w.objectives[static_cast<std::size_t>(kind)];
  if (!o.enabled) {
    return;
  }
  // Bandwidth is a lower bound; the other objectives are upper bounds.
  const bool violated = kind == ViolationKind::kBandwidth ? measured < o.bound
                                                          : measured > o.bound;
  if (!violated) {
    o.bad_streak = 0;
    if (o.active && ++o.good_streak >= w.spec.clear_windows) {
      o.active = false;
      o.good_streak = 0;
      if (journal_ != nullptr) {
        journal_->record(rec.end, "sla." + w.name, "sla_clear", 1.0, 0.0,
                         violation_kind_name(kind),
                         "measured=" + std::to_string(measured));
      }
    }
    return;
  }
  o.good_streak = 0;
  if (o.active || ++o.bad_streak < w.spec.trip_windows) {
    return;  // hysteresis: already tripped, or not persistent enough yet
  }
  o.active = true;
  o.bad_streak = 0;
  Violation v;
  v.kind = kind;
  v.master = w.master;
  v.window_start = rec.start;
  v.window_end = rec.end;
  v.measured = measured;
  v.bound = o.bound;
  engine_.dominant(rec.cells, w.master, v.dominant_aggressor, v.dominant_cause,
                   v.dominant_stall_ps);
  if (fault_probe_) {
    v.active_fault = fault_probe_(rec.end);
  }
  violations_.push_back(v);
  w.violations_counter->add();
  if (journal_ != nullptr) {
    std::string detail = "measured=" + std::to_string(measured);
    if (v.dominant_stall_ps > 0) {
      detail += " dominant=" + engine_.master_name(v.dominant_aggressor) +
                ":" + telemetry::cause_name(v.dominant_cause);
    }
    if (!v.active_fault.empty()) {
      detail += " active_fault=" + v.active_fault;
    }
    journal_->record(rec.end, "sla." + w.name, "sla_trip", v.bound, measured,
                     violation_kind_name(kind), detail);
  }
  if (trace_ != nullptr) {
    trace_->instant(track_, violation_kind_name(kind), rec.end);
  }
}

void SlaWatchdog::on_window(
    const telemetry::AttributionEngine::WindowRecord& rec) {
  FGQOS_ASSERT(rec.end > rec.start, "SlaWatchdog: empty window");
  const double window_s =
      static_cast<double>(rec.end - rec.start) / kPsPerSecond;
  for (Watch& w : watches_) {
    const double mbps =
        static_cast<double>(w.window_bytes) / window_s / 1e6;
    check(w, ViolationKind::kBandwidth, mbps, rec);
    if (w.window_latency.count() > 0) {
      check(w, ViolationKind::kLatencyP99,
            static_cast<double>(w.window_latency.p99()), rec);
    }
    const double stalled =
        static_cast<double>(interference_ps(engine_, rec, w.master));
    check(w, ViolationKind::kInterference,
          stalled / static_cast<double>(rec.end - rec.start), rec);
    if (envelope_ != nullptr && w.window_latency.count() > 0) {
      if (const MasterBound* b = envelope_->bound_for(w.name);
          b != nullptr && b->max_p99_ps > 0) {
        const double p99 = static_cast<double>(w.window_latency.p99());
        if (p99 > b->max_p99_ps) {
          metrics_.counter("qos.sla." + w.name + ".envelope_excursions").add();
          if (journal_ != nullptr) {
            journal_->record(
                rec.end, "sla." + w.name, "envelope_violated", b->max_p99_ps,
                p99, "latency_p99",
                "window_us=" + std::to_string(rec.start / sim::kPsPerUs));
          }
          if (manager_ != nullptr) {
            manager_->on_envelope_violated("sla." + w.name, "latency_p99",
                                           b->max_p99_ps, p99);
          }
        }
      }
    }
    w.window_bytes = 0;
    w.window_latency.reset();
    double active = 0.0;
    for (const Objective& o : w.objectives) {
      if (o.active) {
        active = 1.0;
        break;
      }
    }
    w.in_violation_gauge->set(active);
  }
}

void SlaWatchdog::write_report(std::ostream& os) const {
  os << "SLA report: " << violations_.size() << " violation(s)\n";
  for (const Violation& v : violations_) {
    const std::string& victim = engine_.master_name(v.master);
    os << "  [" << violation_kind_name(v.kind) << "] " << victim << " window "
       << v.window_start / 1000000 << "-" << v.window_end / 1000000 << " us: ";
    switch (v.kind) {
      case ViolationKind::kBandwidth:
        os << v.measured << " MB/s < " << v.bound << " MB/s guarantee";
        break;
      case ViolationKind::kLatencyP99:
        os << v.measured / 1000.0 << " ns p99 > " << v.bound / 1000.0
           << " ns bound";
        break;
      case ViolationKind::kInterference:
        os << v.measured * 100.0 << "% stalled on others > " << v.bound * 100.0
           << "% budget";
        break;
    }
    if (v.dominant_stall_ps > 0) {
      os << "; dominant: " << engine_.master_name(v.dominant_aggressor) << " ("
         << telemetry::cause_name(v.dominant_cause) << ", "
         << static_cast<double>(v.dominant_stall_ps) / 1e6 << " us)";
    }
    if (!v.active_fault.empty()) {
      os << "; active fault: " << v.active_fault;
    }
    os << '\n';
  }
}

}  // namespace fgqos::qos
