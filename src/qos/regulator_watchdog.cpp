#include "qos/regulator_watchdog.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "telemetry/journal.hpp"
#include "util/config_error.hpp"

namespace fgqos::qos {

RegulatorWatchdog::RegulatorWatchdog(sim::Simulator& sim, Regulator& reg,
                                     const BandwidthMonitor& mon,
                                     RegulatorWatchdogConfig cfg,
                                     telemetry::MetricsRegistry* metrics)
    : sim_(sim),
      reg_(reg),
      mon_(mon),
      cfg_(std::move(cfg)),
      last_closed_(mon.windows_closed()),
      metrics_(metrics) {
  config_check(cfg_.check_period_ps > mon_.config().window_ps,
               "RegulatorWatchdog: check period must exceed the monitor "
               "window (otherwise an alive monitor looks stale)");
  config_check(cfg_.stale_checks_to_trip >= 1,
               "RegulatorWatchdog: stale_checks_to_trip must be >= 1");
  config_check(cfg_.sane_checks_to_rearm >= 1,
               "RegulatorWatchdog: sane_checks_to_rearm must be >= 1");
  check_event_ = sim_.make_recurring_event(
      [this](std::uint64_t) { on_check(); },
      sim_.profile_tag("qos.watchdog"));
  sim_.schedule_recurring(check_event_, sim_.now() + cfg_.check_period_ps);
}

void RegulatorWatchdog::set_trace(telemetry::TraceWriter* writer) {
  trace_ = writer;
  track_ = telemetry::TrackId{};
  if (trace_ != nullptr) {
    track_ = trace_->track(telemetry::Cat::kQos, cfg_.name);
    if (!track_.valid()) {
      trace_ = nullptr;  // qos category filtered out
    }
  }
}

void RegulatorWatchdog::on_check() {
  const sim::TimePs now = sim_.now();
  ++stats_.checks;

  const std::uint64_t closed = mon_.windows_closed();
  const bool stale = closed == last_closed_;
  last_closed_ = closed;
  // A saturated counter keeps closing windows but the sample pegs at the
  // cap; only a fresh sample can be judged saturated. While degraded, the
  // fallback budget itself caps what the monitor can observe: a sample
  // pegged at the throttled ceiling says nothing about counter health, so
  // it must stay suspicious — otherwise the watchdog would re-arm on
  // samples that are only "sane" because of its own throttling, restore
  // the broken budget, and oscillate.
  std::uint64_t ceiling = cfg_.saturation_bytes;
  if (degraded_ && cfg_.saturation_bytes > 0) {
    const auto fallback_per_mon_window = static_cast<std::uint64_t>(
        static_cast<long double>(cfg_.fallback_budget_bytes) *
        static_cast<long double>(mon_.config().window_ps) /
        static_cast<long double>(reg_.config().window_ps));
    ceiling = std::min(ceiling, fallback_per_mon_window);
  }
  const bool saturated = !stale && cfg_.saturation_bytes > 0 &&
                         mon_.last_window_bytes() >= ceiling;
  if (stale) {
    ++stats_.stale_checks;
  }
  if (saturated) {
    ++stats_.saturated_checks;
  }

  if (stale || saturated) {
    sane_streak_ = 0;
    if (!degraded_ && ++stale_streak_ >= cfg_.stale_checks_to_trip) {
      enter_degraded(stale ? "monitor_stale" : "monitor_saturated");
    }
  } else {
    stale_streak_ = 0;
    if (degraded_ && ++sane_streak_ >= cfg_.sane_checks_to_rearm) {
      leave_degraded();
    }
  }

  if (degraded_ && (reg_.config().budget_bytes != cfg_.fallback_budget_bytes ||
                    !reg_.enabled())) {
    // Someone (e.g. an adaptive host controller still trusting the broken
    // monitor) reprogrammed the regulator behind our back: clamp it back.
    ++stats_.clamped_writes;
    const std::uint64_t foreign = reg_.config().budget_bytes;
    reg_.set_enabled(true);
    reg_.set_budget(cfg_.fallback_budget_bytes);
    if (clamped_ != nullptr) {
      clamped_->add();
    }
    if (journal_ != nullptr) {
      journal_->record(now, cfg_.name, "clamp_write",
                       static_cast<double>(foreign),
                       static_cast<double>(cfg_.fallback_budget_bytes),
                       "degraded_mode",
                       "regulator=" + reg_.config().name);
    }
  }

  sim_.schedule_recurring(check_event_, now + cfg_.check_period_ps);
}

void RegulatorWatchdog::enter_degraded(const char* cause) {
  degraded_ = true;
  ++stats_.degraded_entries;
  saved_budget_ = reg_.config().budget_bytes;
  saved_enabled_ = reg_.enabled();
  if (journal_ != nullptr) {
    journal_->record(sim_.now(), cfg_.name, "degrade",
                     static_cast<double>(saved_budget_),
                     static_cast<double>(cfg_.fallback_budget_bytes), cause,
                     "regulator=" + reg_.config().name);
  }
  reg_.set_enabled(true);
  reg_.set_budget(cfg_.fallback_budget_bytes);
  if (metrics_ != nullptr) {
    // Lazy creation: a watchdog that never trips leaves the registry (and
    // the golden snapshots) untouched.
    if (transitions_ == nullptr) {
      const std::string base = "qos.degraded." + cfg_.name;
      transitions_ = &metrics_->counter(base + ".transitions");
      clamped_ = &metrics_->counter(base + ".clamped");
      active_ = &metrics_->gauge(base + ".active");
    }
    transitions_->add();
    active_->set(1.0);
  }
  if (trace_ != nullptr) {
    trace_->instant(track_, "degraded", sim_.now());
  }
}

void RegulatorWatchdog::leave_degraded() {
  degraded_ = false;
  ++stats_.rearms;
  if (journal_ != nullptr) {
    journal_->record(sim_.now(), cfg_.name, "rearm",
                     static_cast<double>(cfg_.fallback_budget_bytes),
                     static_cast<double>(saved_budget_), "monitor_recovered",
                     "regulator=" + reg_.config().name);
  }
  reg_.set_budget(saved_budget_);
  reg_.set_enabled(saved_enabled_);
  if (transitions_ != nullptr) {
    transitions_->add();
    active_->set(0.0);
  }
  if (trace_ != nullptr) {
    trace_->instant(track_, "rearmed", sim_.now());
  }
}

}  // namespace fgqos::qos
