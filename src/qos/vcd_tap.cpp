#include "qos/vcd_tap.hpp"

#include <algorithm>

namespace fgqos::qos {

/// Observer translating port events to VCD samples.
class QosVcdTap::PortObserver final : public axi::TxnObserver {
 public:
  PortObserver(sim::VcdWriter& writer, const std::string& scope)
      : writer_(&writer),
        outstanding_sig_(writer.add_signal(scope, "outstanding", 8)),
        granted_kib_sig_(writer.add_signal(scope, "granted_kib", 32)),
        grant_pulse_sig_(writer.add_signal(scope, "grant", 1)) {}

  void on_issue(const axi::Transaction&, sim::TimePs now) override {
    ++outstanding_;
    writer_->sample(outstanding_sig_, outstanding_, now);
  }
  void on_grant(const axi::LineRequest& line, sim::TimePs now) override {
    granted_bytes_ += line.bytes;
    writer_->sample(granted_kib_sig_, granted_bytes_ >> 10, now);
    // Pulse: toggles on every grant so edges are visible at any zoom.
    pulse_ = !pulse_;
    writer_->sample(grant_pulse_sig_, pulse_ ? 1 : 0, now);
  }
  void on_complete(const axi::Transaction&, sim::TimePs now) override {
    if (outstanding_ > 0) {
      --outstanding_;
    }
    writer_->sample(outstanding_sig_, outstanding_, now);
  }

 private:
  sim::VcdWriter* writer_;
  sim::VcdSignal outstanding_sig_;
  sim::VcdSignal granted_kib_sig_;
  sim::VcdSignal grant_pulse_sig_;
  std::uint64_t outstanding_ = 0;
  std::uint64_t granted_bytes_ = 0;
  bool pulse_ = false;
};

QosVcdTap::QosVcdTap(sim::Simulator& sim, const std::string& path,
                     sim::TimePs sample_period_ps)
    : sim_(sim), writer_(path), period_(sample_period_ps) {}

QosVcdTap::~QosVcdTap() { finish(); }

void QosVcdTap::attach_port(axi::MasterPort& port) {
  observers_.push_back(
      std::make_unique<PortObserver>(writer_, "port_" + port.name()));
  port.add_observer(*observers_.back());
}

void QosVcdTap::attach_regulator(const Regulator& reg) {
  RegSignals rs;
  rs.reg = &reg;
  const std::string scope = "reg_" + reg.config().name;
  rs.tokens = writer_.add_signal(scope, "tokens", 32);
  rs.exhausted = writer_.add_signal(scope, "exhausted", 1);
  regs_.push_back(rs);
  if (!polling_) {
    polling_ = true;
    if (!poll_event_made_) {
      poll_event_made_ = true;
      poll_event_ = sim_.make_recurring_event(
          [this](std::uint64_t epoch) { poll(epoch); },
          sim_.profile_tag("telemetry.vcd_tap"));
    }
    sim_.schedule_recurring(poll_event_, sim_.now() + period_, ++epoch_);
  }
}

void QosVcdTap::poll(std::uint64_t epoch) {
  if (finished_ || epoch != epoch_) {
    return;
  }
  const sim::TimePs now = sim_.now();
  for (const RegSignals& rs : regs_) {
    const std::int64_t tokens = rs.reg->tokens();
    writer_.sample(rs.tokens,
                   static_cast<std::uint64_t>(std::max<std::int64_t>(0, tokens)),
                   now);
    writer_.sample(rs.exhausted, rs.reg->exhausted() ? 1 : 0, now);
  }
  sim_.schedule_recurring(poll_event_, now + period_, epoch);
}

void QosVcdTap::finish() {
  if (finished_) {
    return;
  }
  finished_ = true;
  ++epoch_;
  writer_.finish();
}

}  // namespace fgqos::qos
