/// \file bandwidth_monitor.hpp
/// \brief Tightly-coupled per-port bandwidth monitor.
///
/// The monitor observes every granted line in the same cycle the grant
/// occurs (it is wired as a TxnObserver on the supervised MasterPort) and
/// maintains byte counts per configurable window. A programmable threshold
/// fires a callback in the *same cycle* the budget is crossed — this
/// zero-latency observation is the "tightly-coupled" property the paper
/// contrasts with PMU sampling from a periodic OS timer.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "axi/port.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"
#include "sim/time.hpp"
#include "telemetry/trace.hpp"

namespace fgqos::qos {

/// Monitor configuration.
struct MonitorConfig {
  std::string name = "monitor";
  /// Accounting window; counters reset at each boundary.
  sim::TimePs window_ps = sim::kPsPerUs;
  /// When true, every closed window's byte count is kept for later
  /// inspection (regulation-accuracy experiments).
  bool keep_window_trace = false;
  /// Count reads, writes or both.
  bool count_reads = true;
  bool count_writes = true;
};

/// Callback fired when the in-window byte count crosses the threshold.
/// Arguments: time of crossing, bytes counted in the window so far.
using ThresholdFn = std::function<void(sim::TimePs, std::uint64_t)>;

/// The monitor. Attach with `port.add_observer(monitor)`.
class BandwidthMonitor final : public axi::TxnObserver {
 public:
  BandwidthMonitor(sim::Simulator& sim, MonitorConfig cfg);

  [[nodiscard]] const MonitorConfig& config() const { return cfg_; }

  /// Arms the threshold: \p fn fires once per window, in the same cycle
  /// the counted bytes reach \p bytes. Pass 0 to disarm.
  void set_threshold(std::uint64_t bytes, ThresholdFn fn);

  /// Changes the window length; takes effect immediately (the current
  /// window is closed at the next boundary of the new length).
  void set_window(sim::TimePs window_ps);

  /// Total bytes observed since construction (or last reset_totals()).
  [[nodiscard]] std::uint64_t total_bytes() const { return total_bytes_; }
  /// Bytes observed in the currently open window.
  [[nodiscard]] std::uint64_t window_bytes() const { return window_bytes_; }
  /// Bytes of the last fully closed window.
  [[nodiscard]] std::uint64_t last_window_bytes() const {
    return last_window_bytes_;
  }
  /// Number of windows closed so far.
  [[nodiscard]] std::uint64_t windows_closed() const {
    return windows_closed_;
  }
  /// Mean bandwidth since \p since_ps (bytes/second).
  [[nodiscard]] double mean_bandwidth_bps(sim::TimePs since_ps = 0) const;

  /// Per-window trace (only populated when keep_window_trace).
  [[nodiscard]] const std::vector<std::uint64_t>& window_trace() const {
    return trace_;
  }

  /// Clears totals and the trace (window phase is preserved).
  void reset_totals();

  /// Attaches the Chrome-trace sink (nullptr detaches): each window close
  /// samples a "window_bytes" counter series and each threshold crossing
  /// emits an instant event, on a track named after this monitor.
  void set_trace(telemetry::TraceWriter* writer);

  /// Fault seam: when set and true at a boundary, the boundary passes
  /// without publishing a sample — last_window_bytes() goes stale and
  /// windows_closed() stops advancing (a frozen sample register). The
  /// internal byte counter keeps counting.
  using FreezeFaultFn = std::function<bool(sim::TimePs)>;
  void set_freeze_fault(FreezeFaultFn fn) { freeze_fault_ = std::move(fn); }

  /// Fault seam: per-grant saturation cap for the window byte counter
  /// (0 = unbounded). A saturated counter under-reports heavy traffic,
  /// the classic failure a watchdog must catch.
  using SaturationFaultFn = std::function<std::uint64_t(sim::TimePs)>;
  void set_saturation_fault(SaturationFaultFn fn) {
    saturation_fault_ = std::move(fn);
  }

  /// Boundaries skipped by an injected freeze fault.
  [[nodiscard]] std::uint64_t frozen_boundaries() const {
    return frozen_boundaries_;
  }
  /// Grants clamped by an injected saturation fault.
  [[nodiscard]] std::uint64_t saturated_grants() const {
    return saturated_grants_;
  }

  // TxnObserver
  void on_issue(const axi::Transaction& txn, sim::TimePs now) override;
  void on_grant(const axi::LineRequest& line, sim::TimePs now) override;
  void on_complete(const axi::Transaction& txn, sim::TimePs now) override;

 private:
  void schedule_boundary();
  void on_boundary(std::uint64_t epoch);
  void close_window(sim::TimePs now);

  sim::Simulator& sim_;
  MonitorConfig cfg_;
  std::uint64_t total_bytes_ = 0;
  std::uint64_t window_bytes_ = 0;
  std::uint64_t last_window_bytes_ = 0;
  std::uint64_t windows_closed_ = 0;
  std::uint64_t threshold_ = 0;
  bool threshold_fired_ = false;
  ThresholdFn threshold_fn_;
  std::vector<std::uint64_t> trace_;
  std::uint64_t epoch_ = 0;  ///< invalidates boundary events on set_window
  FreezeFaultFn freeze_fault_;
  SaturationFaultFn saturation_fault_;
  std::uint64_t frozen_boundaries_ = 0;
  std::uint64_t saturated_grants_ = 0;
  sim::TimePs window_start_ = 0;
  sim::EventQueue::RecurringId boundary_event_ = 0;
  telemetry::TraceWriter* trace_writer_ = nullptr;
  telemetry::TrackId track_;
};

}  // namespace fgqos::qos
