#include "qos/latency_monitor.hpp"

#include "util/config_error.hpp"

namespace fgqos::qos {

LatencyMonitor::LatencyMonitor(sim::Simulator& sim, LatencyMonitorConfig cfg)
    : sim_(sim), cfg_(std::move(cfg)) {
  config_check(cfg_.window_ps > 0, "LatencyMonitor: window must be > 0");
  config_check(cfg_.track_reads || cfg_.track_writes,
               "LatencyMonitor: must track at least one direction");
  boundary_event_ = sim_.make_recurring_event(
      [this](std::uint64_t epoch) { on_boundary(epoch); },
      sim_.profile_tag("qos.latency_monitor"));
  schedule_boundary();
}

void LatencyMonitor::schedule_boundary() {
  sim_.schedule_recurring(boundary_event_, sim_.now() + cfg_.window_ps,
                          epoch_);
}

void LatencyMonitor::on_boundary(std::uint64_t epoch) {
  if (epoch != epoch_) {
    return;
  }
  last_window_max_ = window_max_;
  last_window_mean_ =
      window_count_ == 0
          ? 0.0
          : static_cast<double>(window_sum_) /
                static_cast<double>(window_count_);
  window_max_ = 0;
  window_sum_ = 0;
  window_count_ = 0;
  threshold_fired_ = false;
  schedule_boundary();
}

void LatencyMonitor::set_threshold(sim::TimePs latency_ps,
                                   LatencyThresholdFn fn) {
  threshold_ = latency_ps;
  threshold_fn_ = std::move(fn);
  threshold_fired_ = false;
}

void LatencyMonitor::on_complete(const axi::Transaction& txn,
                                 sim::TimePs now) {
  const bool is_write = txn.dir == axi::Dir::kWrite;
  if (is_write ? !cfg_.track_writes : !cfg_.track_reads) {
    return;
  }
  const sim::TimePs lat = txn.latency();
  hist_.record(lat);
  window_max_ = std::max(window_max_, lat);
  window_sum_ += lat;
  ++window_count_;
  if (threshold_ > 0 && !threshold_fired_ && lat >= threshold_ &&
      threshold_fn_) {
    threshold_fired_ = true;
    threshold_fn_(now, lat);
  }
}

}  // namespace fgqos::qos
