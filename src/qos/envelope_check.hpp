/// \file envelope_check.hpp
/// \brief Bounds-vs-measured verification of a certified envelope.
///
/// The library behind `fgqos_report --envelope`: it takes a
/// CertifiedEnvelope and any number of measured runs (metrics JSON
/// exports parsed into telemetry::RunData) and renders a PASS/FAIL row
/// per (scenario, master, quantity) — did the measurement stay inside the
/// certified bound? Upper-bound rows whose metric the run did not capture
/// are reported as "n/a" and do not fail; a *lower*-bound row with no
/// measurement fails, because "we could not show the guaranteed minimum
/// was delivered" is exactly what a certification gate must not ignore.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "qos/envelope.hpp"
#include "telemetry/report.hpp"

namespace fgqos::qos {

/// One checked (scenario, master, quantity) cell.
struct EnvelopeCheckRow {
  std::string scenario;  ///< run label (file path by default)
  std::string master;
  std::string quantity;  ///< "read_p99_ps" | "bandwidth_bps"
  double measured = 0.0;
  double bound = 0.0;
  bool upper = true;     ///< bound direction (false = certified minimum)
  bool available = true; ///< the run captured the metric
  bool ok = true;
};

/// The verification result.
struct EnvelopeReport {
  std::vector<EnvelopeCheckRow> rows;
  std::string manifest_note;  ///< set when a mismatch was forced past
  /// Excursions (rows with ok == false), pre-rendered one per line.
  std::vector<std::string> excursions;
  [[nodiscard]] bool pass() const { return excursions.empty(); }

  void write_text(std::ostream& os) const;
  void write_json(std::ostream& os) const;
};

/// Checks every run in \p runs against \p env. Throws ConfigError when a
/// run's manifest carries a different export schema version than the
/// envelope's, unless \p force — then the mismatch is recorded in
/// manifest_note instead.
[[nodiscard]] EnvelopeReport check_envelope(
    const CertifiedEnvelope& env,
    const std::vector<telemetry::RunData>& runs, bool force = false);

}  // namespace fgqos::qos
