/// \file mshr.hpp
/// \brief Miss Status Holding Registers: outstanding-miss tracking with
///        same-line merge.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "axi/types.hpp"

namespace fgqos::mem {

/// Bounded set of in-flight miss line addresses. A second miss to a line
/// already in flight merges into the existing entry (no extra memory
/// transaction); capacity limits memory-level parallelism.
class MshrFile {
 public:
  explicit MshrFile(std::size_t entries);

  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t in_flight() const { return entries_.size(); }
  [[nodiscard]] bool full() const { return entries_.size() >= capacity_; }

  /// True when \p line_addr already has an entry (a merge is free).
  [[nodiscard]] bool present(axi::Addr line_addr) const {
    return entries_.count(line_addr) != 0;
  }

  /// Allocates an entry (or merges). Returns false when full and the line
  /// is not already present — the requester must stall.
  bool allocate(axi::Addr line_addr);

  /// Number of merged requests waiting on \p line_addr (1 = just the
  /// original miss).
  [[nodiscard]] std::uint32_t waiters(axi::Addr line_addr) const;

  /// Completes the miss and frees the entry. Returns the waiter count that
  /// was released. Pre: present(line_addr).
  std::uint32_t complete(axi::Addr line_addr);

  /// Total allocations that merged into an existing entry.
  [[nodiscard]] std::uint64_t merges() const { return merges_; }

 private:
  std::size_t capacity_;
  std::unordered_map<axi::Addr, std::uint32_t> entries_;
  std::uint64_t merges_ = 0;
};

}  // namespace fgqos::mem
