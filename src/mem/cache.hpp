/// \file cache.hpp
/// \brief Set-associative write-back, write-allocate cache (tag-only).
///
/// Functional tag array with true-LRU replacement; no data storage (the
/// simulator is timing-only). Used for the CPU cluster's private L1s and
/// shared L2.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "axi/types.hpp"
#include "sim/stats.hpp"

namespace fgqos::mem {

/// Geometry of one cache level.
struct CacheConfig {
  std::string name = "cache";
  std::uint64_t size_bytes = 32 * 1024;
  std::uint32_t line_bytes = 64;
  std::uint32_t ways = 4;

  void validate() const;
  [[nodiscard]] std::uint64_t sets() const {
    return size_bytes / (static_cast<std::uint64_t>(line_bytes) * ways);
  }
};

/// Outcome of one access.
struct CacheAccessResult {
  bool hit = false;
  /// On a miss: line address of a dirty victim that must be written back
  /// (nullopt when the victim was clean or the set had room).
  std::optional<axi::Addr> writeback_addr;
};

/// Cache statistics.
struct CacheStats {
  sim::Counter hits;
  sim::Counter misses;
  sim::Counter writebacks;

  [[nodiscard]] double hit_rate() const {
    const double total =
        static_cast<double>(hits.value() + misses.value());
    return total == 0 ? 0.0 : static_cast<double>(hits.value()) / total;
  }
};

/// The tag array.
class Cache {
 public:
  explicit Cache(CacheConfig cfg);

  [[nodiscard]] const CacheConfig& config() const { return cfg_; }
  [[nodiscard]] const CacheStats& stats() const { return stats_; }

  /// Performs an access: on a hit updates LRU (and the dirty bit for
  /// writes); on a miss allocates the line, evicting LRU if needed.
  CacheAccessResult access(axi::Addr addr, bool is_write);

  /// True when the line holding \p addr is present (no LRU update).
  [[nodiscard]] bool probe(axi::Addr addr) const;

  /// Invalidates everything (dirty state is dropped; use for test setup).
  void flush();

 private:
  struct Line {
    std::uint64_t tag = 0;
    bool valid = false;
    bool dirty = false;
    std::uint64_t lru = 0;  ///< higher = more recently used
  };

  [[nodiscard]] std::uint64_t set_index(axi::Addr addr) const;
  [[nodiscard]] std::uint64_t tag_of(axi::Addr addr) const;
  [[nodiscard]] axi::Addr line_addr(std::uint64_t tag,
                                    std::uint64_t set) const;

  CacheConfig cfg_;
  std::uint64_t sets_;
  std::vector<Line> lines_;  ///< sets_ * ways, row-major by set
  std::uint64_t lru_clock_ = 0;
  CacheStats stats_;
};

}  // namespace fgqos::mem
