#include "mem/cache.hpp"

#include "util/config_error.hpp"

namespace fgqos::mem {

void CacheConfig::validate() const {
  config_check(line_bytes > 0 && (line_bytes & (line_bytes - 1)) == 0,
               "CacheConfig '" + name + "': line_bytes must be a power of two");
  config_check(ways > 0, "CacheConfig '" + name + "': ways must be > 0");
  config_check(size_bytes % (static_cast<std::uint64_t>(line_bytes) * ways) == 0,
               "CacheConfig '" + name +
                   "': size must be a multiple of line_bytes * ways");
  const std::uint64_t s = size_bytes / (static_cast<std::uint64_t>(line_bytes) * ways);
  config_check(s > 0 && (s & (s - 1)) == 0,
               "CacheConfig '" + name + "': set count must be a power of two");
}

Cache::Cache(CacheConfig cfg) : cfg_(std::move(cfg)) {
  cfg_.validate();
  sets_ = cfg_.sets();
  lines_.resize(sets_ * cfg_.ways);
}

std::uint64_t Cache::set_index(axi::Addr addr) const {
  return (addr / cfg_.line_bytes) & (sets_ - 1);
}

std::uint64_t Cache::tag_of(axi::Addr addr) const {
  return (addr / cfg_.line_bytes) / sets_;
}

axi::Addr Cache::line_addr(std::uint64_t tag, std::uint64_t set) const {
  return (tag * sets_ + set) * cfg_.line_bytes;
}

CacheAccessResult Cache::access(axi::Addr addr, bool is_write) {
  const std::uint64_t set = set_index(addr);
  const std::uint64_t tag = tag_of(addr);
  Line* base = &lines_[set * cfg_.ways];
  for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
    Line& line = base[w];
    if (line.valid && line.tag == tag) {
      line.lru = ++lru_clock_;
      line.dirty = line.dirty || is_write;
      stats_.hits.add();
      return CacheAccessResult{true, std::nullopt};
    }
  }
  // Miss: victim is the first invalid way, else the true-LRU way.
  Line* victim = base;
  for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
    if (!base[w].valid) {
      victim = &base[w];
      break;
    }
    if (base[w].lru < victim->lru) {
      victim = &base[w];
    }
  }
  stats_.misses.add();
  CacheAccessResult res{false, std::nullopt};
  if (victim->valid && victim->dirty) {
    res.writeback_addr = line_addr(victim->tag, set);
    stats_.writebacks.add();
  }
  victim->valid = true;
  victim->tag = tag;
  victim->dirty = is_write;
  victim->lru = ++lru_clock_;
  return res;
}

bool Cache::probe(axi::Addr addr) const {
  const std::uint64_t set = set_index(addr);
  const std::uint64_t tag = tag_of(addr);
  const Line* base = &lines_[set * cfg_.ways];
  for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
    if (base[w].valid && base[w].tag == tag) {
      return true;
    }
  }
  return false;
}

void Cache::flush() {
  for (auto& line : lines_) {
    line = Line{};
  }
}

}  // namespace fgqos::mem
