#include "mem/mshr.hpp"

#include "util/assert.hpp"
#include "util/config_error.hpp"

namespace fgqos::mem {

MshrFile::MshrFile(std::size_t entries) : capacity_(entries) {
  config_check(capacity_ > 0, "MshrFile: capacity must be > 0");
}

bool MshrFile::allocate(axi::Addr line_addr) {
  auto it = entries_.find(line_addr);
  if (it != entries_.end()) {
    ++it->second;
    ++merges_;
    return true;
  }
  if (full()) {
    return false;
  }
  entries_.emplace(line_addr, 1);
  return true;
}

std::uint32_t MshrFile::waiters(axi::Addr line_addr) const {
  auto it = entries_.find(line_addr);
  return it == entries_.end() ? 0 : it->second;
}

std::uint32_t MshrFile::complete(axi::Addr line_addr) {
  auto it = entries_.find(line_addr);
  FGQOS_ASSERT(it != entries_.end(), "MshrFile: completing unknown line");
  const std::uint32_t n = it->second;
  entries_.erase(it);
  return n;
}

}  // namespace fgqos::mem
