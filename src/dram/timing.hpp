/// \file timing.hpp
/// \brief DDR4-style timing and geometry parameters.
///
/// All timing values are in controller clock cycles (the controller clock
/// runs at the I/O frequency / 2, i.e. 1200 MHz for DDR4-2400, moving
/// 2 * bus_width bytes per controller cycle).
#pragma once

#include <cstdint>
#include <string>

#include "sim/time.hpp"

namespace fgqos::dram {

/// Timing/geometry bundle. Defaults model a 64-bit DDR4-2400 channel, the
/// PS DDR controller class found on Zynq UltraScale+ boards
/// (theoretical peak 19.2 GB/s).
struct TimingConfig {
  std::uint64_t clock_mhz = 1200;          ///< controller clock
  std::uint32_t data_bytes_per_cycle = 16; ///< 64-bit DDR: 2 beats/cycle
  std::uint32_t burst_bytes = 64;          ///< BL8 on a 64-bit bus

  // Core timings (controller cycles, DDR4-2400 17-17-17-ish):
  std::uint32_t tCL = 17;    ///< read CAS latency
  std::uint32_t tCWL = 12;   ///< write CAS latency
  std::uint32_t tRCD = 17;   ///< ACT -> CAS
  std::uint32_t tRP = 17;    ///< PRE -> ACT
  std::uint32_t tRAS = 39;   ///< ACT -> PRE
  std::uint32_t tRC = 56;    ///< ACT -> ACT, same bank
  std::uint32_t tRRD_S = 4;  ///< ACT -> ACT, different bank group
  std::uint32_t tRRD_L = 6;  ///< ACT -> ACT, same bank group
  std::uint32_t tFAW = 26;   ///< four-ACT window
  std::uint32_t tCCD_S = 4;  ///< CAS -> CAS, different bank group
  std::uint32_t tCCD_L = 6;  ///< CAS -> CAS, same bank group
  std::uint32_t tRTP = 9;    ///< read CAS -> PRE
  std::uint32_t tWR = 18;    ///< end of write data -> PRE
  std::uint32_t tWTR = 9;    ///< end of write data -> read CAS
  std::uint32_t tRTW = 8;    ///< extra gap when turning read -> write
  std::uint32_t tREFI = 9360;  ///< refresh interval
  std::uint32_t tRFC = 420;    ///< refresh cycle time

  std::uint32_t banks = 16;        ///< total banks (DDR4: 4 groups x 4)
  std::uint32_t bank_groups = 4;   ///< bank groups (tCCD_L/tRRD_L apply
                                   ///< within a group)
  std::uint64_t row_bytes = 8192;  ///< row (page) size per bank
  std::uint64_t capacity_bytes = 2ull << 30;  ///< channel capacity

  /// Controller clock period.
  [[nodiscard]] sim::TimePs period_ps() const {
    return sim::period_ps_from_mhz(clock_mhz);
  }
  /// Cycles one burst occupies the data bus.
  [[nodiscard]] std::uint32_t burst_cycles() const {
    return burst_bytes / data_bytes_per_cycle;
  }
  /// Theoretical peak bandwidth in bytes/second.
  [[nodiscard]] double peak_bandwidth_bps() const {
    return static_cast<double>(data_bytes_per_cycle) *
           static_cast<double>(clock_mhz) * 1e6;
  }
  /// Bank group of a bank index.
  [[nodiscard]] std::uint32_t group_of(std::uint32_t bank) const {
    return bank % bank_groups;
  }

  /// Throws ConfigError when a parameter combination is inconsistent.
  void validate() const;
};

}  // namespace fgqos::dram
