/// \file command_queue.hpp
/// \brief Bounded request queue scanned by the FR-FCFS scheduler.
#pragma once

#include <cstdint>
#include <deque>

#include "axi/transaction.hpp"
#include "dram/address_mapper.hpp"
#include "sim/time.hpp"
#include "telemetry/attribution.hpp"

namespace fgqos::dram {

/// One pending line request plus its decoded coordinates.
struct QueueEntry {
  axi::LineRequest line;
  Decoded where;
  sim::TimePs visible_at = 0;  ///< front-end pipeline delay
  std::uint64_t seq = 0;       ///< arrival order (FCFS tie-break)
  /// Queueing-delay blame bookkeeping (open only when attribution is on).
  telemetry::WaitState wait;
};

/// FIFO-ordered bounded queue; the scheduler scans visible entries and
/// removes an arbitrary one (FR-FCFS is not head-of-line).
class RequestQueue {
 public:
  explicit RequestQueue(std::size_t capacity);

  [[nodiscard]] bool full() const { return entries_.size() >= capacity_; }
  [[nodiscard]] bool empty() const { return entries_.empty(); }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  void push(QueueEntry entry);

  /// Entries in arrival order; index into this deque is stable between
  /// push/remove calls within one scheduling pass.
  [[nodiscard]] const std::deque<QueueEntry>& entries() const {
    return entries_;
  }
  /// Mutable view for the attribution pass (updates per-entry WaitStates
  /// without perturbing order or contents).
  [[nodiscard]] std::deque<QueueEntry>& mutable_entries() { return entries_; }

  /// Removes the entry at \p index and returns it.
  QueueEntry remove_at(std::size_t index);

 private:
  std::size_t capacity_;
  std::deque<QueueEntry> entries_;
};

}  // namespace fgqos::dram
