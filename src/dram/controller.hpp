/// \file controller.hpp
/// \brief FR-FCFS DDR controller model.
///
/// Mid-fidelity model in the DRAMSim tradition: per-bank row state and
/// timing windows (tRCD/tRP/tRAS/tRC/tRRD/tFAW/tCCD/tRTP/tWR/tWTR/tRTW),
/// a shared command bus (one command per controller cycle), a shared data
/// bus with direction-turnaround penalties, periodic refresh, FR-FCFS
/// scheduling with a starvation guard, and write draining with
/// high/low watermarks.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "axi/interconnect.hpp"
#include "axi/transaction.hpp"
#include "dram/address_mapper.hpp"
#include "dram/bank.hpp"
#include "dram/command_queue.hpp"
#include "dram/timing.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"
#include "telemetry/attribution.hpp"
#include "telemetry/trace.hpp"

namespace fgqos::dram {

/// Row management policy after a CAS completes.
enum class PagePolicy : std::uint8_t {
  /// Leave the row open (bet on locality; conflicts pay PRE+ACT).
  kOpen,
  /// Auto-precharge after each CAS unless another hit to the same row is
  /// already queued (bet on randomness; every access pays ACT).
  kClosed,
};

/// Controller-level knobs (timing lives in TimingConfig).
struct ControllerConfig {
  TimingConfig timing{};
  MappingPolicy mapping = MappingPolicy::kBankInterleaved;
  PagePolicy page_policy = PagePolicy::kOpen;
  std::size_t read_queue_depth = 32;
  std::size_t write_queue_depth = 32;
  /// Write-drain hysteresis (entries).
  std::size_t write_high_watermark = 24;
  std::size_t write_low_watermark = 8;
  /// Oldest-request age (controller cycles) beyond which row hits may no
  /// longer bypass it (FR-FCFS starvation guard).
  std::uint64_t starvation_cycles = 1200;
  /// Front-end pipeline latency from accept() to schedulability.
  sim::TimePs frontend_latency_ps = 20'000;  // 20 ns
  /// Fail hard (ConfigError) on a capacity-aliasing decode instead of
  /// counting it in AddressMapper::oob_decodes().
  bool strict_addressing = false;

  void validate() const;
};

/// Aggregate controller statistics.
struct ControllerStats {
  sim::Counter reads_serviced;
  sim::Counter writes_serviced;
  sim::Counter payload_bytes;    ///< useful bytes delivered
  sim::Counter bus_bytes;        ///< bytes moved on the data bus (bursts)
  sim::Counter activations;      ///< ACT commands (row misses)
  sim::Counter conflict_precharges;  ///< PRE issued to replace an open row
  sim::Counter refreshes;
  sim::Counter data_bus_busy_cycles;

  /// CAS issued to a row opened by an earlier request of the same stream.
  [[nodiscard]] std::uint64_t row_hits() const {
    const std::uint64_t cas = reads_serviced.value() + writes_serviced.value();
    const std::uint64_t acts = activations.value();
    return cas > acts ? cas - acts : 0;
  }
};

/// The memory controller. Accepts line requests from the interconnect and
/// reports each back through the ResponseSink at data-burst completion.
class Controller final : public sim::Clocked, public axi::SlaveIf {
 public:
  /// \param clk must have the same frequency as cfg.timing.clock_mhz.
  Controller(sim::Simulator& sim, const sim::ClockDomain& clk,
             ControllerConfig cfg, axi::ResponseSink& sink);

  [[nodiscard]] const ControllerConfig& config() const { return cfg_; }
  [[nodiscard]] const ControllerStats& stats() const { return stats_; }
  [[nodiscard]] const AddressMapper& mapper() const { return mapper_; }

  /// Bytes serviced for one master id (payload).
  [[nodiscard]] std::uint64_t master_bytes(axi::MasterId m) const;

  /// Payload bytes serviced for one (master, bank) pair. Always tracked;
  /// the Soc layer decides whether to publish them as metrics.
  [[nodiscard]] std::uint64_t bank_bytes(axi::MasterId m,
                                         std::uint32_t bank) const;
  /// CAS commands issued for one (master, bank) pair.
  [[nodiscard]] std::uint64_t bank_cas(axi::MasterId m,
                                       std::uint32_t bank) const;

  /// Measured data-bus utilisation in [0,1] over the whole run.
  [[nodiscard]] double bus_utilization(sim::TimePs elapsed_ps) const;

  /// Current queue occupancies (diagnostics).
  [[nodiscard]] std::size_t read_queue_size() const { return read_q_.size(); }
  [[nodiscard]] std::size_t write_queue_size() const {
    return write_q_.size();
  }
  [[nodiscard]] bool draining_writes() const { return draining_writes_; }

  /// Attaches the Chrome-trace sink (nullptr detaches). Each CAS data
  /// burst becomes a duration event ("rd"/"wr") and the queue occupancies
  /// counter series on a track named \p track_name.
  void set_trace(telemetry::TraceWriter* writer, const std::string& track_name);

  /// Wires the interference-attribution engine (nullptr disables; the
  /// default). When enabled, every controller cycle classifies why each
  /// visible queued line could not issue its CAS (bank conflict, bus
  /// turnaround / write-drain batching, refresh, scheduling) and charges
  /// the slice to the master occupying that resource.
  void set_attribution(telemetry::AttributionEngine* engine);

  /// Fault seam: divides tREFI by \p divisor (>= 1), modelling a refresh
  /// storm (e.g. high-temperature 2x/4x refresh or a misbehaving
  /// controller). 1 restores the nominal schedule. Takes effect at the
  /// next refresh decision; an overdue refresh fires immediately.
  void set_refresh_interval_divisor(std::uint32_t divisor);
  [[nodiscard]] std::uint32_t refresh_interval_divisor() const {
    return refresh_divisor_;
  }

  // SlaveIf
  [[nodiscard]] bool can_accept(const axi::LineRequest& line,
                                sim::TimePs now) const override;
  void accept(axi::LineRequest line, sim::TimePs now) override;

  // Clocked
  bool tick(sim::Cycles cycle) override;

 private:
  using Cycle = Bank::Cycle;

  void do_refresh(Cycle c);
  [[nodiscard]] bool act_allowed(Cycle c, std::uint32_t group) const;
  void note_act(Cycle c, std::uint32_t group);
  /// Earliest CAS issue cycle for direction \p write given bus state.
  [[nodiscard]] Cycle dir_cas_ready(bool write) const;
  /// True when a CAS for \p e could be issued at cycle \p c.
  [[nodiscard]] bool cas_issuable(const QueueEntry& e, Cycle c,
                                  sim::TimePs now) const;
  /// Issues the CAS: updates bank/bus state, schedules completion.
  /// \param auto_precharge close the row right after (closed-page policy).
  void issue_cas(QueueEntry entry, Cycle c, bool auto_precharge);
  /// Tries to issue PRE/ACT for the oldest entries (one command max).
  /// \param hit_pending per-bank flag: a visible entry targets the open row
  /// \param starving_bank bank whose oldest entry is starving (-1 = none);
  ///        row-hit protection is suspended for that bank.
  bool try_prep(const std::vector<const QueueEntry*>& order,
                const std::vector<bool>& hit_pending, int starving_bank,
                Cycle c);
  /// Collects pointers to visible entries of the queues to scan, oldest
  /// first.
  void scan_order(std::vector<const QueueEntry*>& out, bool include_reads,
                  bool include_writes, sim::TimePs now) const;
  /// One scheduling cycle (refresh / CAS / prep); the original tick body.
  /// Reports the scan-direction decision through \p serve_reads /
  /// \p serve_writes so the attribution pass can classify drain exclusion.
  bool schedule(Cycle c, sim::TimePs now, bool& serve_reads,
                bool& serve_writes);
  /// Per-cycle blame pass over every visible waiting queue entry.
  void attribution_pass(Cycle c, sim::TimePs now, bool serve_reads,
                        bool serve_writes);

  ControllerConfig cfg_;
  AddressMapper mapper_;
  axi::ResponseSink* sink_;
  std::uint32_t prof_tag_done_ = 0;  ///< host-profiler tag, dram.line_done
  std::vector<Bank> banks_;
  RequestQueue read_q_;
  RequestQueue write_q_;
  std::uint64_t arrival_seq_ = 0;
  bool draining_writes_ = false;

  // Global channel state (absolute controller cycles).
  Cycle next_act_any_ = 0;                 ///< tRRD_S
  std::vector<Cycle> next_act_group_;      ///< tRRD_L, per bank group
  std::deque<Cycle> act_history_;          ///< tFAW window
  Cycle next_cas_any_ = 0;                 ///< tCCD_S
  std::vector<Cycle> next_cas_group_;      ///< tCCD_L, per bank group
  Cycle next_read_cas_ = 0;
  Cycle next_write_cas_ = 0;
  Cycle data_bus_free_ = 0;
  Cycle next_refresh_ = 0;
  std::uint32_t refresh_divisor_ = 1;  ///< fault seam: tREFI / divisor

  ControllerStats stats_;
  std::vector<std::uint64_t> master_bytes_;
  // Per-(master, bank) accounting, flattened [m * banks + bank]; grown on
  // demand as new master ids appear.
  std::vector<std::uint64_t> bank_bytes_;
  std::vector<std::uint64_t> bank_cas_;

  telemetry::TraceWriter* trace_ = nullptr;
  telemetry::TrackId track_;

  // Interference attribution (all state dormant while attr_ == nullptr).
  telemetry::AttributionEngine* attr_ = nullptr;
  std::vector<axi::MasterId> bank_owner_;  ///< master of each bank's last ACT
  axi::MasterId bus_owner_ = telemetry::kNoOwner;  ///< last CAS issuer
  /// Masters whose CAS pushed the opposite direction's turnaround window.
  axi::MasterId read_block_owner_ = telemetry::kNoOwner;   ///< last writer
  axi::MasterId write_block_owner_ = telemetry::kNoOwner;  ///< last reader
  Cycle refresh_busy_until_ = 0;  ///< tRFC window of the last refresh
};

}  // namespace fgqos::dram
