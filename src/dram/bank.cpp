#include "dram/bank.hpp"

#include <algorithm>

namespace fgqos::dram {

void Bank::activate(std::uint64_t row, Cycle c, std::uint32_t t_rcd,
                    std::uint32_t t_ras, std::uint32_t t_rc) {
  open_row_ = row;
  cas_ready_ = c + t_rcd;
  pre_ready_ = std::max(pre_ready_, c + t_ras);
  act_ready_ = std::max(act_ready_, c + t_rc);
  ++activations_;
}

void Bank::precharge(Cycle c, std::uint32_t t_rp) {
  open_row_.reset();
  act_ready_ = std::max(act_ready_, c + t_rp);
}

void Bank::read_cas(Cycle c, std::uint32_t t_rtp) {
  pre_ready_ = std::max(pre_ready_, c + t_rtp);
}

void Bank::write_cas(Cycle data_end, std::uint32_t t_wr) {
  pre_ready_ = std::max(pre_ready_, data_end + t_wr);
}

void Bank::refresh_block(Cycle ready) {
  open_row_.reset();
  act_ready_ = std::max(act_ready_, ready);
}

}  // namespace fgqos::dram
