#include "dram/controller.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/config_error.hpp"

namespace fgqos::dram {

void ControllerConfig::validate() const {
  timing.validate();
  config_check(read_queue_depth > 0 && write_queue_depth > 0,
               "ControllerConfig: queue depths must be > 0");
  config_check(write_high_watermark <= write_queue_depth,
               "ControllerConfig: high watermark exceeds queue depth");
  config_check(write_low_watermark < write_high_watermark,
               "ControllerConfig: watermarks must satisfy low < high");
  config_check(starvation_cycles > 0,
               "ControllerConfig: starvation_cycles must be > 0");
}

Controller::Controller(sim::Simulator& sim, const sim::ClockDomain& clk,
                       ControllerConfig cfg, axi::ResponseSink& sink)
    : sim::Clocked(sim, clk, "dram"),
      cfg_(std::move(cfg)),
      mapper_(cfg_.timing, cfg_.mapping, cfg_.strict_addressing),
      sink_(&sink),
      banks_(cfg_.timing.banks),
      read_q_(cfg_.read_queue_depth),
      write_q_(cfg_.write_queue_depth) {
  cfg_.validate();
  next_act_group_.assign(cfg_.timing.bank_groups, 0);
  next_cas_group_.assign(cfg_.timing.bank_groups, 0);
  config_check(clk.period_ps() == cfg_.timing.period_ps(),
               "Controller: clock domain does not match timing.clock_mhz");
  next_refresh_ = cfg_.timing.tREFI;
  prof_tag_done_ = sim.profile_tag("dram.line_done");
}

std::uint64_t Controller::master_bytes(axi::MasterId m) const {
  if (m >= master_bytes_.size()) {
    return 0;
  }
  return master_bytes_[m];
}

std::uint64_t Controller::bank_bytes(axi::MasterId m,
                                     std::uint32_t bank) const {
  const std::size_t idx =
      static_cast<std::size_t>(m) * cfg_.timing.banks + bank;
  return idx < bank_bytes_.size() ? bank_bytes_[idx] : 0;
}

std::uint64_t Controller::bank_cas(axi::MasterId m, std::uint32_t bank) const {
  const std::size_t idx =
      static_cast<std::size_t>(m) * cfg_.timing.banks + bank;
  return idx < bank_cas_.size() ? bank_cas_[idx] : 0;
}

double Controller::bus_utilization(sim::TimePs elapsed_ps) const {
  if (elapsed_ps == 0) {
    return 0.0;
  }
  const double busy_ps =
      static_cast<double>(stats_.data_bus_busy_cycles.value()) *
      static_cast<double>(cfg_.timing.period_ps());
  return busy_ps / static_cast<double>(elapsed_ps);
}

bool Controller::can_accept(const axi::LineRequest& line,
                            sim::TimePs /*now*/) const {
  return line.is_write ? !write_q_.full() : !read_q_.full();
}

void Controller::set_trace(telemetry::TraceWriter* writer,
                           const std::string& track_name) {
  trace_ = writer;
  track_ = telemetry::TrackId{};
  if (trace_ != nullptr) {
    track_ = trace_->track(telemetry::Cat::kDram, track_name);
    if (!track_.valid()) {
      trace_ = nullptr;  // dram category filtered out
    }
  }
}

void Controller::accept(axi::LineRequest line, sim::TimePs now) {
  FGQOS_ASSERT(line.bytes <= cfg_.timing.burst_bytes,
               "Controller: line larger than one burst");
  if (line.txn != nullptr && line.txn->dram_enqueued == 0) {
    line.txn->dram_enqueued = now;
  }
  QueueEntry e;
  e.where = mapper_.decode(line.addr);
  e.visible_at = now + cfg_.frontend_latency_ps;
  e.seq = ++arrival_seq_;
  e.line = line;
  if (attr_ != nullptr) {
    // The line's queueing wait starts once the front-end pipeline makes it
    // schedulable; charged per cycle by attribution_pass(), closed at CAS
    // issue.
    attr_->begin_wait(e.wait, e.visible_at);
  }
  const sim::TimePs visible_at = e.visible_at;
  if (line.is_write) {
    write_q_.push(std::move(e));
  } else {
    read_q_.push(std::move(e));
  }
  wake_at(visible_at);
}

void Controller::do_refresh(Cycle c) {
  const Cycle ready = c + cfg_.timing.tRFC;
  for (auto& b : banks_) {
    b.refresh_block(ready);
  }
  if (attr_ != nullptr) {
    refresh_busy_until_ = ready;
  }
  stats_.refreshes.add();
  // Catch up the schedule (idle periods may have skipped several tREFI
  // intervals; those refreshes happened while no requests were pending and
  // carry no modelled cost).
  const Cycle interval =
      std::max<Cycle>(1, cfg_.timing.tREFI / refresh_divisor_);
  while (next_refresh_ <= c) {
    next_refresh_ += interval;
  }
}

void Controller::set_refresh_interval_divisor(std::uint32_t divisor) {
  refresh_divisor_ = std::max<std::uint32_t>(1, divisor);
  // A shortened interval must take effect now, not after the previously
  // scheduled (nominal-length) gap elapses.
  const Cycle interval =
      std::max<Cycle>(1, cfg_.timing.tREFI / refresh_divisor_);
  const Cycle c = clock().edge_index_at_or_after(simulator().now());
  next_refresh_ = std::min(next_refresh_, c + interval);
}

bool Controller::act_allowed(Cycle c, std::uint32_t group) const {
  if (c < next_act_any_ || c < next_act_group_[group]) {
    return false;
  }
  if (act_history_.size() >= 4 &&
      c < act_history_.front() + cfg_.timing.tFAW) {
    return false;
  }
  return true;
}

void Controller::note_act(Cycle c, std::uint32_t group) {
  next_act_any_ = c + cfg_.timing.tRRD_S;
  next_act_group_[group] =
      std::max(next_act_group_[group], c + cfg_.timing.tRRD_L);
  act_history_.push_back(c);
  while (act_history_.size() > 4) {
    act_history_.pop_front();
  }
}

Controller::Cycle Controller::dir_cas_ready(bool write) const {
  return write ? next_write_cas_ : next_read_cas_;
}

bool Controller::cas_issuable(const QueueEntry& e, Cycle c,
                              sim::TimePs now) const {
  if (e.visible_at > now) {
    return false;
  }
  const Bank& b = banks_[e.where.bank];
  if (!b.row_open() || !b.row_hit(e.where.row)) {
    return false;
  }
  const std::uint32_t group = cfg_.timing.group_of(e.where.bank);
  if (c < b.cas_ready() || c < dir_cas_ready(e.line.is_write) ||
      c < next_cas_any_ || c < next_cas_group_[group]) {
    return false;
  }
  const Cycle data_start =
      c + (e.line.is_write ? cfg_.timing.tCWL : cfg_.timing.tCL);
  return data_start >= data_bus_free_;
}

void Controller::issue_cas(QueueEntry entry, Cycle c, bool auto_precharge) {
  const TimingConfig& t = cfg_.timing;
  const bool is_write = entry.line.is_write;
  Bank& b = banks_[entry.where.bank];
  const std::uint32_t group = t.group_of(entry.where.bank);
  const Cycle data_start = c + (is_write ? t.tCWL : t.tCL);
  const Cycle data_end = data_start + t.burst_cycles();
  data_bus_free_ = data_end;
  stats_.data_bus_busy_cycles.add(t.burst_cycles());
  next_cas_any_ = std::max(next_cas_any_, c + t.tCCD_S);
  next_cas_group_[group] =
      std::max(next_cas_group_[group], c + t.tCCD_L);
  if (is_write) {
    b.write_cas(data_end, t.tWR);
    // Write -> read turnaround.
    next_read_cas_ = std::max(next_read_cas_, data_end + t.tWTR);
    stats_.writes_serviced.add();
  } else {
    b.read_cas(c, t.tRTP);
    // Read -> write turnaround: the write CAS must not start its burst
    // before the read burst has left the bus plus tRTW.
    const Cycle wr_earliest = data_end + t.tRTW;
    next_write_cas_ = std::max(
        next_write_cas_, wr_earliest > t.tCWL ? wr_earliest - t.tCWL : 0);
    stats_.reads_serviced.add();
  }
  if (auto_precharge) {
    // CAS-with-AP: the row closes by itself once tRTP/tWR allows; model
    // as a precharge effective at the bank's earliest legal PRE cycle.
    b.precharge(b.pre_ready(), t.tRP);
  }
  stats_.payload_bytes.add(entry.line.bytes);
  stats_.bus_bytes.add(t.burst_bytes);
  const axi::MasterId m = entry.line.txn->master;
  if (m >= master_bytes_.size()) {
    master_bytes_.resize(m + 1, 0);
  }
  master_bytes_[m] += entry.line.bytes;
  const std::size_t bank_idx =
      static_cast<std::size_t>(m) * t.banks + entry.where.bank;
  if (bank_idx >= bank_bytes_.size()) {
    bank_bytes_.resize(bank_idx + 1, 0);
    bank_cas_.resize(bank_idx + 1, 0);
  }
  bank_bytes_[bank_idx] += entry.line.bytes;
  bank_cas_[bank_idx] += 1;
  if (attr_ != nullptr) {
    if (entry.wait.open) {
      const sim::TimePs now_ps = simulator().now();
      attr_->end_wait(entry.wait, m, entry.line.bytes, now_ps,
                      entry.line.txn);
      entry.line.txn->attr_measured_ps += now_ps - entry.visible_at;
    }
    // This CAS now occupies the shared resources: remember who to blame
    // for the bus, and for the direction-turnaround window it just pushed.
    bus_owner_ = m;
    if (is_write) {
      read_block_owner_ = m;  // tWTR holds reads back
    } else {
      write_block_owner_ = m;  // tRTW holds writes back
    }
  }

  const sim::TimePs data_start_ps = data_start * clock().period_ps();
  const sim::TimePs done_ps = data_end * clock().period_ps();
  if (axi::Transaction* txn = entry.line.txn; txn != nullptr) {
    if (txn->dram_service_start == 0) {
      txn->dram_service_start = data_start_ps;
    }
    if (done_ps > txn->dram_service_end) {
      txn->dram_service_end = done_ps;
    }
  }
  if (trace_ != nullptr) {
    trace_->complete(track_, is_write ? "wr" : "rd", data_start_ps,
                     done_ps - data_start_ps);
    const sim::TimePs now = simulator().now();
    trace_->counter(track_, "read_q", now,
                    static_cast<double>(read_q_.size()));
    trace_->counter(track_, "write_q", now,
                    static_cast<double>(write_q_.size()));
  }
  axi::ResponseSink* sink = sink_;
  const axi::LineRequest line = entry.line;
  simulator().schedule_at(
      done_ps, [sink, line, done_ps]() { sink->line_done(line, done_ps); },
      prof_tag_done_);
}

void Controller::scan_order(std::vector<const QueueEntry*>& out,
                            bool include_reads, bool include_writes,
                            sim::TimePs now) const {
  out.clear();
  if (include_reads) {
    for (const auto& e : read_q_.entries()) {
      if (e.visible_at <= now) {
        out.push_back(&e);
      }
    }
  }
  if (include_writes) {
    for (const auto& e : write_q_.entries()) {
      if (e.visible_at <= now) {
        out.push_back(&e);
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const QueueEntry* a, const QueueEntry* b) {
              return a->seq < b->seq;
            });
}

bool Controller::try_prep(const std::vector<const QueueEntry*>& order,
                          const std::vector<bool>& hit_pending,
                          int starving_bank, Cycle c) {
  // One command bus: issue at most one PRE or ACT, scanning oldest-first
  // and touching each bank once (bank-level parallelism warms several banks
  // across consecutive cycles).
  std::uint64_t touched = 0;  // bitmask over banks (<= 64 banks supported)
  FGQOS_ASSERT(banks_.size() <= 64, "try_prep: more than 64 banks");
  for (const QueueEntry* e : order) {
    const std::uint64_t bit = std::uint64_t{1} << e->where.bank;
    if (touched & bit) {
      continue;
    }
    touched |= bit;
    Bank& b = banks_[e->where.bank];
    const std::uint32_t group = cfg_.timing.group_of(e->where.bank);
    if (!b.row_open()) {
      if (c >= b.act_ready() && act_allowed(c, group)) {
        b.activate(e->where.row, c, cfg_.timing.tRCD, cfg_.timing.tRAS,
                   cfg_.timing.tRC);
        note_act(c, group);
        if (attr_ != nullptr) {
          bank_owner_[e->where.bank] = e->line.txn->master;
        }
        stats_.activations.add();
        return true;
      }
    } else if (!b.row_hit(e->where.row)) {
      // First-ready FR-FCFS: keep the open row alive while visible row
      // hits remain — unless this bank's oldest request is starving.
      const bool protect_hits =
          hit_pending[e->where.bank] &&
          static_cast<int>(e->where.bank) != starving_bank;
      if (!protect_hits && c >= b.pre_ready()) {
        b.precharge(c, cfg_.timing.tRP);
        stats_.conflict_precharges.add();
        return true;
      }
    }
    // Row open and matching: waiting on CAS timing; nothing to prep.
  }
  return false;
}

bool Controller::tick(sim::Cycles cycle) {
  const sim::TimePs now = simulator().now();
  const Cycle c = cycle;
  // Scheduling proper lives in schedule(); splitting it out gives the
  // attribution pass a single point that runs on every tick, including the
  // refresh and CAS-issued early exits.
  bool serve_reads = true;
  bool serve_writes = true;
  const bool keep_ticking = schedule(c, now, serve_reads, serve_writes);
  if (attr_ != nullptr) {
    attribution_pass(c, now, serve_reads, serve_writes);
  }
  return keep_ticking;
}

bool Controller::schedule(Cycle c, sim::TimePs now, bool& serve_reads,
                          bool& serve_writes) {
  if (c >= next_refresh_) {
    do_refresh(c);
    return true;  // refresh occupies the command bus this cycle
  }

  // Write-drain hysteresis.
  if (write_q_.size() >= cfg_.write_high_watermark) {
    draining_writes_ = true;
  } else if (write_q_.size() <= cfg_.write_low_watermark) {
    draining_writes_ = false;
  }
  serve_writes = draining_writes_ || read_q_.empty();
  serve_reads = !draining_writes_ || write_q_.empty();
  // Aging in both directions bounds worst-case service:
  //  * a sustained write flood can hold the drain above the low watermark
  //    forever — aged reads re-enter the scan;
  //  * a sustained read stream can keep the write queue just below the
  //    high watermark forever (and deadlock masters waiting on write
  //    completions) — aged writes re-enter the scan.
  const auto front_aged = [&](const RequestQueue& q) {
    if (q.empty()) {
      return false;
    }
    const QueueEntry& front = q.entries().front();
    return front.visible_at <= now &&
           c >= front.visible_at / clock().period_ps() +
                    cfg_.starvation_cycles;
  };
  serve_reads = serve_reads || front_aged(read_q_);
  serve_writes = serve_writes || front_aged(write_q_);

  static thread_local std::vector<const QueueEntry*> order;
  scan_order(order, serve_reads, serve_writes, now);

  if (!order.empty()) {
    // Starvation guard: when the oldest visible request has waited too
    // long, suspend row-hit bypassing on its bank (other banks keep full
    // FR-FCFS parallelism, so throughput is preserved while the oldest
    // request's service is bounded).
    const QueueEntry* oldest = order.front();
    const Cycle oldest_age =
        c - std::min<Cycle>(c, oldest->visible_at / clock().period_ps());
    const bool starving = oldest_age > cfg_.starvation_cycles;
    const int starving_bank =
        starving ? static_cast<int>(oldest->where.bank) : -1;

    // Per-bank flag: does any visible entry (either queue, regardless of
    // drain mode) hit the currently open row? Protects warm rows from
    // being precharged moments before their hits would issue.
    static thread_local std::vector<bool> hit_pending;
    hit_pending.assign(banks_.size(), false);
    auto mark_hits = [&](const RequestQueue& q) {
      for (const auto& e : q.entries()) {
        if (e.visible_at > now) {
          continue;
        }
        const Bank& b = banks_[e.where.bank];
        if (b.row_open() && b.row_hit(e.where.row)) {
          hit_pending[e.where.bank] = true;
        }
      }
    };
    mark_hits(read_q_);
    mark_hits(write_q_);

    // 1. First-ready CAS: oldest row-hit whose timings allow issue now.
    //    On the starving bank only the starving entry itself may issue;
    //    while starving, CAS in the opposite bus direction is also held
    //    back — otherwise a continuous same-direction stream pushes the
    //    turnaround window (next_read/write_cas) forward forever and the
    //    starving request never becomes issuable (write livelock).
    const QueueEntry* best = nullptr;
    for (const QueueEntry* e : order) {
      if (starving && e->line.is_write != oldest->line.is_write) {
        continue;
      }
      if (static_cast<int>(e->where.bank) == starving_bank && e != oldest) {
        continue;
      }
      if (cas_issuable(*e, c, now)) {
        best = e;
        break;  // order is oldest-first
      }
    }
    if (best != nullptr) {
      RequestQueue& q = best->line.is_write ? write_q_ : read_q_;
      // Find the entry's index in its queue to remove it.
      const auto& entries = q.entries();
      // Closed-page: auto-precharge unless another queued hit wants the
      // row. "best" itself is one of the pending hits, so the row stays
      // open only when at least one other hit exists.
      bool other_hit = false;
      if (cfg_.page_policy == PagePolicy::kClosed) {
        const Bank& b = banks_[best->where.bank];
        for (const QueueEntry* e : order) {
          if (e != best && e->where.bank == best->where.bank &&
              b.row_hit(e->where.row)) {
            other_hit = true;
            break;
          }
        }
      }
      const bool auto_pre =
          cfg_.page_policy == PagePolicy::kClosed && !other_hit;
      for (std::size_t i = 0; i < entries.size(); ++i) {
        if (entries[i].seq == best->seq) {
          issue_cas(q.remove_at(i), c, auto_pre);
          return true;
        }
      }
      FGQOS_ASSERT(false, "controller: CAS candidate vanished");
    }

    // 2. Otherwise issue one prep command (PRE or ACT), oldest entries
    //    first, one bank each.
    try_prep(order, hit_pending, starving_bank, c);
  }

  // Sleep only when both queues are completely empty (invisible entries
  // still need future ticks; wake_at in accept() covers new arrivals, and
  // we remain awake while anything is queued).
  return !(read_q_.empty() && write_q_.empty());
}

void Controller::attribution_pass(Cycle c, sim::TimePs now, bool serve_reads,
                                  bool serve_writes) {
  const bool refresh_busy = c < refresh_busy_until_;
  auto pass_queue = [&](RequestQueue& q, bool served, bool is_write) {
    for (QueueEntry& e : q.mutable_entries()) {
      if (e.visible_at > now || !e.wait.open) {
        continue;
      }
      const axi::MasterId victim = e.line.txn->master;
      axi::MasterId aggressor;
      telemetry::Cause cause;
      if (refresh_busy) {
        // tRFC blocks every bank; nobody's traffic is at fault.
        aggressor = telemetry::kNoOwner;
        cause = telemetry::Cause::kDramRefresh;
      } else if (!served) {
        // Direction excluded from the scan: write-drain batching (or its
        // read mirror) is bus-turnaround amortisation — the opposite
        // direction owns the bus.
        aggressor = bus_owner_;
        cause = telemetry::Cause::kDramBusTurnaround;
      } else {
        const Bank& b = banks_[e.where.bank];
        if (!b.row_open() || !b.row_hit(e.where.row)) {
          // Row closed or holding someone else's row: PRE/ACT/tRCD
          // exposure, blamed on whoever activated the bank last.
          aggressor = bank_owner_[e.where.bank];
          cause = telemetry::Cause::kDramBankConflict;
        } else if (c < dir_cas_ready(is_write)) {
          // Row ready but the direction's CAS window is pushed out by an
          // opposite-direction burst (tWTR / tRTW).
          aggressor = is_write ? write_block_owner_ : read_block_owner_;
          cause = telemetry::Cause::kDramBusTurnaround;
        } else {
          // Schedulable but lost FR-FCFS / bus occupancy this cycle.
          aggressor = bus_owner_;
          cause = telemetry::Cause::kFabricArb;
        }
      }
      attr_->charge(e.wait, victim, aggressor, cause, now, e.line.txn,
                    e.where.bank);
    }
  };
  pass_queue(read_q_, serve_reads, false);
  pass_queue(write_q_, serve_writes, true);
}

void Controller::set_attribution(telemetry::AttributionEngine* engine) {
  attr_ = engine;
  bank_owner_.assign(banks_.size(), telemetry::kNoOwner);
  bus_owner_ = telemetry::kNoOwner;
  read_block_owner_ = telemetry::kNoOwner;
  write_block_owner_ = telemetry::kNoOwner;
  refresh_busy_until_ = 0;
}

}  // namespace fgqos::dram
