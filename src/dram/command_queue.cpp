#include "dram/command_queue.hpp"

#include "util/assert.hpp"
#include "util/config_error.hpp"

namespace fgqos::dram {

RequestQueue::RequestQueue(std::size_t capacity) : capacity_(capacity) {
  config_check(capacity_ > 0, "RequestQueue: capacity must be > 0");
}

void RequestQueue::push(QueueEntry entry) {
  FGQOS_ASSERT(!full(), "RequestQueue: push on full queue");
  entries_.push_back(std::move(entry));
}

QueueEntry RequestQueue::remove_at(std::size_t index) {
  FGQOS_ASSERT(index < entries_.size(), "RequestQueue: bad index");
  QueueEntry e = std::move(entries_[index]);
  entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(index));
  return e;
}

}  // namespace fgqos::dram
