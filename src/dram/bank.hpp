/// \file bank.hpp
/// \brief Per-bank state machine with timing-window bookkeeping.
#pragma once

#include <cstdint>
#include <optional>

#include "sim/time.hpp"

namespace fgqos::dram {

/// Tracks one DRAM bank: the open row and the earliest cycle each command
/// class may next be issued to it. All times are absolute controller-clock
/// cycle indices (not ps), maintained by the controller.
class Bank {
 public:
  using Cycle = std::uint64_t;

  [[nodiscard]] bool row_open() const { return open_row_.has_value(); }
  [[nodiscard]] std::uint64_t open_row() const { return *open_row_; }
  [[nodiscard]] bool row_hit(std::uint64_t row) const {
    return open_row_ == row;
  }

  [[nodiscard]] Cycle act_ready() const { return act_ready_; }
  [[nodiscard]] Cycle cas_ready() const { return cas_ready_; }
  [[nodiscard]] Cycle pre_ready() const { return pre_ready_; }

  /// Applies an ACT of \p row at cycle \p c.
  /// \param t_rcd ACT->CAS, \param t_ras ACT->PRE, \param t_rc ACT->ACT.
  void activate(std::uint64_t row, Cycle c, std::uint32_t t_rcd,
                std::uint32_t t_ras, std::uint32_t t_rc);

  /// Applies a PRE at cycle \p c. \param t_rp PRE->ACT.
  void precharge(Cycle c, std::uint32_t t_rp);

  /// Applies a read CAS at cycle \p c. \param t_rtp read->PRE gap.
  void read_cas(Cycle c, std::uint32_t t_rtp);

  /// Applies a write CAS at cycle \p c; \p data_end is the cycle the write
  /// burst finishes on the bus, \p t_wr the write recovery after it.
  void write_cas(Cycle data_end, std::uint32_t t_wr);

  /// Forces the bank closed (refresh) and blocks ACT until \p ready.
  void refresh_block(Cycle ready);

  /// Row activations since construction (row-miss count for this bank).
  [[nodiscard]] std::uint64_t activations() const { return activations_; }

 private:
  std::optional<std::uint64_t> open_row_;
  Cycle act_ready_ = 0;
  Cycle cas_ready_ = 0;   ///< earliest CAS to the open row
  Cycle pre_ready_ = 0;
  std::uint64_t activations_ = 0;
};

}  // namespace fgqos::dram
