#include "dram/timing.hpp"

#include "util/config_error.hpp"

namespace fgqos::dram {

void TimingConfig::validate() const {
  config_check(clock_mhz > 0, "TimingConfig: clock_mhz must be > 0");
  config_check(data_bytes_per_cycle > 0,
               "TimingConfig: data_bytes_per_cycle must be > 0");
  config_check(burst_bytes % data_bytes_per_cycle == 0,
               "TimingConfig: burst_bytes must be a multiple of the bus width");
  config_check(banks > 0, "TimingConfig: banks must be > 0");
  config_check((banks & (banks - 1)) == 0,
               "TimingConfig: banks must be a power of two");
  config_check(bank_groups > 0 && banks % bank_groups == 0,
               "TimingConfig: banks must divide evenly into bank groups");
  config_check(tRRD_L >= tRRD_S, "TimingConfig: tRRD_L must cover tRRD_S");
  config_check(tCCD_L >= tCCD_S, "TimingConfig: tCCD_L must cover tCCD_S");
  config_check(row_bytes >= burst_bytes,
               "TimingConfig: row must hold at least one burst");
  config_check((row_bytes & (row_bytes - 1)) == 0,
               "TimingConfig: row_bytes must be a power of two");
  config_check(capacity_bytes >= row_bytes * banks,
               "TimingConfig: capacity smaller than one row per bank");
  config_check(tRAS >= tRCD, "TimingConfig: tRAS must cover tRCD");
  config_check(tRC >= tRAS, "TimingConfig: tRC must cover tRAS");
  config_check(tREFI > tRFC, "TimingConfig: tREFI must exceed tRFC");
}

}  // namespace fgqos::dram
