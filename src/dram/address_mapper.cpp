#include "dram/address_mapper.hpp"

#include <string>

#include "util/config_error.hpp"

namespace fgqos::dram {

namespace {
// Sentinel for "no window has touched this region yet".
constexpr std::uint32_t kNoWindow = 0xFFFF'FFFFu;
}  // namespace

const char* mapping_policy_name(MappingPolicy policy) {
  switch (policy) {
    case MappingPolicy::kRowBankColumn:
      return "row_bank_col";
    case MappingPolicy::kBankInterleaved:
      return "bank_interleaved";
    case MappingPolicy::kBankPartitioned:
      return "bank_partitioned";
  }
  return "unknown";
}

MappingPolicy mapping_policy_from_name(const std::string& name) {
  if (name == "row_bank_col") { return MappingPolicy::kRowBankColumn; }
  if (name == "bank_interleaved") { return MappingPolicy::kBankInterleaved; }
  if (name == "bank_partitioned") { return MappingPolicy::kBankPartitioned; }
  throw ConfigError("unknown mapping policy '" + name +
                    "' (expected row_bank_col, bank_interleaved, or "
                    "bank_partitioned)");
}

AddressMapper::AddressMapper(const TimingConfig& cfg, MappingPolicy policy,
                             bool strict)
    : policy_(policy),
      strict_(strict),
      burst_bytes_(cfg.burst_bytes),
      bursts_per_row_(cfg.row_bytes / cfg.burst_bytes),
      banks_(cfg.banks),
      capacity_(cfg.capacity_bytes),
      row_bytes_(cfg.row_bytes) {}

Decoded AddressMapper::decode(axi::Addr addr) const {
  // Wrap into the channel capacity; callers may use any physical window.
  const std::uint64_t offset = addr % capacity_;
  const std::uint64_t burst_index = offset / burst_bytes_;
  // Capacity-alias bookkeeping: remember which window (addr / capacity)
  // last touched each row-sized region of the channel.  A window change on
  // a region means two disjoint physical ranges are folding onto the same
  // DRAM rows — the classic mis-sized-scenario bug this diagnostic exists
  // to surface.
  if (region_window_.empty()) {
    region_window_.assign(capacity_ / row_bytes_, kNoWindow);
  }
  const std::uint64_t region = offset / row_bytes_;
  const auto window = static_cast<std::uint32_t>(addr / capacity_);
  std::uint32_t& tag = region_window_[region];
  if (tag == kNoWindow) {
    tag = window;
  } else if (tag != window) {
    ++oob_decodes_;
    tag = window;
    if (strict_) {
      throw ConfigError(
          "AddressMapper: out-of-range decode aliases channel offset " +
          std::to_string(offset) + " from a different capacity window "
          "(addr=" + std::to_string(addr) + ", capacity=" +
          std::to_string(capacity_) + ")");
    }
  }
  Decoded d;
  switch (policy_) {
    case MappingPolicy::kRowBankColumn: {
      d.column = burst_index % bursts_per_row_;
      const std::uint64_t upper = burst_index / bursts_per_row_;
      d.bank = static_cast<std::uint32_t>(upper % banks_);
      d.row = upper / banks_;
      break;
    }
    case MappingPolicy::kBankInterleaved: {
      d.bank = static_cast<std::uint32_t>(burst_index % banks_);
      const std::uint64_t upper = burst_index / banks_;
      d.column = upper % bursts_per_row_;
      d.row = upper / bursts_per_row_;
      break;
    }
    case MappingPolicy::kBankPartitioned: {
      const std::uint64_t slice_bursts =
          capacity_ / burst_bytes_ / banks_;
      d.bank = static_cast<std::uint32_t>(burst_index / slice_bursts);
      const std::uint64_t within = burst_index % slice_bursts;
      d.column = within % bursts_per_row_;
      d.row = within / bursts_per_row_;
      break;
    }
  }
  return d;
}

}  // namespace fgqos::dram
