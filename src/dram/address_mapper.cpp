#include "dram/address_mapper.hpp"

namespace fgqos::dram {

AddressMapper::AddressMapper(const TimingConfig& cfg, MappingPolicy policy)
    : policy_(policy),
      burst_bytes_(cfg.burst_bytes),
      bursts_per_row_(cfg.row_bytes / cfg.burst_bytes),
      banks_(cfg.banks),
      capacity_(cfg.capacity_bytes) {}

Decoded AddressMapper::decode(axi::Addr addr) const {
  // Wrap into the channel capacity; callers may use any physical window.
  const std::uint64_t burst_index = (addr % capacity_) / burst_bytes_;
  Decoded d;
  switch (policy_) {
    case MappingPolicy::kRowBankColumn: {
      d.column = burst_index % bursts_per_row_;
      const std::uint64_t upper = burst_index / bursts_per_row_;
      d.bank = static_cast<std::uint32_t>(upper % banks_);
      d.row = upper / banks_;
      break;
    }
    case MappingPolicy::kBankInterleaved: {
      d.bank = static_cast<std::uint32_t>(burst_index % banks_);
      const std::uint64_t upper = burst_index / banks_;
      d.column = upper % bursts_per_row_;
      d.row = upper / bursts_per_row_;
      break;
    }
  }
  return d;
}

}  // namespace fgqos::dram
