/// \file address_mapper.hpp
/// \brief Physical address -> (bank, row, column) decoding policies.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "axi/types.hpp"
#include "dram/timing.hpp"

namespace fgqos::dram {

/// Decoded DRAM coordinates of one burst-aligned address.
struct Decoded {
  std::uint32_t bank = 0;
  std::uint64_t row = 0;
  std::uint64_t column = 0;  ///< burst index within the row
};

/// How address bits are spread over banks and rows.
enum class MappingPolicy : std::uint8_t {
  /// row : bank : column — a sequential stream fills a whole row in one
  /// bank before moving on (maximum row locality, minimum parallelism).
  kRowBankColumn,
  /// row : column : bank — consecutive bursts rotate across banks
  /// (bank-interleaved; the common high-throughput default).
  kBankInterleaved,
  /// bank : row : column — the channel is carved into `banks` equal
  /// contiguous slices and a slice maps onto exactly one bank.  Masters
  /// given disjoint address slices therefore own disjoint banks, which is
  /// the substrate the per-bank regulation experiments partition over.
  kBankPartitioned,
};

/// Canonical CLI/JSON spelling of a mapping policy.
[[nodiscard]] const char* mapping_policy_name(MappingPolicy policy);

/// Inverse of mapping_policy_name(); throws ConfigError on unknown names.
[[nodiscard]] MappingPolicy mapping_policy_from_name(const std::string& name);

/// Decoder for a given geometry and policy.
///
/// Decoding wraps addresses into the channel capacity (callers may park
/// their footprint in any capacity-aligned physical window), but the mapper
/// tracks *capacity aliasing*: a decode lands out of range when its window
/// (`addr / capacity`) differs from the window that last touched the same
/// row-sized region of the channel.  A mis-sized scenario that silently
/// folds two masters onto the same rows is therefore counted rather than
/// invisible, and `strict` mode turns the first such decode into a
/// ConfigError.
class AddressMapper {
 public:
  AddressMapper(const TimingConfig& cfg, MappingPolicy policy,
                bool strict = false);

  [[nodiscard]] Decoded decode(axi::Addr addr) const;
  [[nodiscard]] MappingPolicy policy() const { return policy_; }

  /// Decodes that aliased a row-region already claimed by a different
  /// capacity window (see class comment).  0 for well-sized scenarios.
  [[nodiscard]] std::uint64_t oob_decodes() const { return oob_decodes_; }

 private:
  MappingPolicy policy_;
  bool strict_;
  std::uint64_t burst_bytes_;
  std::uint64_t bursts_per_row_;
  std::uint32_t banks_;
  std::uint64_t capacity_;
  std::uint64_t row_bytes_;
  // Alias tracking is observability, not decode state, hence mutable.
  mutable std::uint64_t oob_decodes_ = 0;
  mutable std::vector<std::uint32_t> region_window_;  ///< lazily sized
};

}  // namespace fgqos::dram
