/// \file address_mapper.hpp
/// \brief Physical address -> (bank, row, column) decoding policies.
#pragma once

#include <cstdint>

#include "axi/types.hpp"
#include "dram/timing.hpp"

namespace fgqos::dram {

/// Decoded DRAM coordinates of one burst-aligned address.
struct Decoded {
  std::uint32_t bank = 0;
  std::uint64_t row = 0;
  std::uint64_t column = 0;  ///< burst index within the row
};

/// How address bits are spread over banks and rows.
enum class MappingPolicy : std::uint8_t {
  /// row : bank : column — a sequential stream fills a whole row in one
  /// bank before moving on (maximum row locality, minimum parallelism).
  kRowBankColumn,
  /// row : column : bank — consecutive bursts rotate across banks
  /// (bank-interleaved; the common high-throughput default).
  kBankInterleaved,
};

/// Stateless decoder for a given geometry and policy.
class AddressMapper {
 public:
  AddressMapper(const TimingConfig& cfg, MappingPolicy policy);

  [[nodiscard]] Decoded decode(axi::Addr addr) const;
  [[nodiscard]] MappingPolicy policy() const { return policy_; }

 private:
  MappingPolicy policy_;
  std::uint64_t burst_bytes_;
  std::uint64_t bursts_per_row_;
  std::uint32_t banks_;
  std::uint64_t capacity_;
};

}  // namespace fgqos::dram
