/// \file fgqos.hpp
/// \brief Umbrella header: everything a downstream application needs.
///
/// Fine-grained include paths remain available (and are preferred inside
/// the library itself); this header is for application convenience.
#pragma once

#include "exec/scenario_runner.hpp"      // IWYU pragma: export
#include "qos/adaptive_controller.hpp"   // IWYU pragma: export
#include "qos/analysis.hpp"              // IWYU pragma: export
#include "qos/bandwidth_monitor.hpp"     // IWYU pragma: export
#include "qos/cmri.hpp"                  // IWYU pragma: export
#include "qos/ddrc_throttle.hpp"         // IWYU pragma: export
#include "qos/latency_monitor.hpp"       // IWYU pragma: export
#include "qos/polling_monitor.hpp"       // IWYU pragma: export
#include "qos/prem_arbiter.hpp"          // IWYU pragma: export
#include "qos/qos_manager.hpp"           // IWYU pragma: export
#include "qos/regfile.hpp"               // IWYU pragma: export
#include "qos/regulator.hpp"             // IWYU pragma: export
#include "qos/soft_memguard.hpp"         // IWYU pragma: export
#include "qos/vcd_tap.hpp"               // IWYU pragma: export
#include "soc/presets.hpp"               // IWYU pragma: export
#include "soc/soc.hpp"                   // IWYU pragma: export
#include "workload/cpu_workloads.hpp"    // IWYU pragma: export
#include "workload/suite.hpp"            // IWYU pragma: export
#include "workload/trace.hpp"            // IWYU pragma: export
#include "workload/traffic_gen.hpp"      // IWYU pragma: export
