/// \file job.hpp
/// \brief Job identity and deterministic per-job seed derivation.
///
/// A job is one independent simulation point (one Soc built, run and torn
/// down). Everything a job may vary on is carried in the JobContext, and
/// every field of the context is a pure function of the submission — never
/// of scheduling — so a job's outcome is bit-identical whether it runs on
/// one worker or eight.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace fgqos::exec {

/// Identity handed to every job by the ScenarioRunner.
struct JobContext {
  /// Submission index (0-based). Results are merged in this order.
  std::size_t index = 0;
  /// derive_seed(base_seed, index, attempt): the only RNG seed a job may
  /// use.
  std::uint64_t seed = 0;
  /// Worker ordinal that happened to run the job. Informational only —
  /// deriving anything result-visible from it breaks the determinism
  /// contract.
  std::size_t worker = 0;
  /// Retry ordinal: 0 for the first attempt, +1 per retry. Part of the
  /// seed derivation, so a retried job replays a fresh but reproducible
  /// stream instead of the one that just failed.
  std::uint32_t attempt = 0;
  /// Set by ScenarioRunner::request_stop(); long-running cooperative jobs
  /// should poll cancel_requested() and return early.
  const std::atomic<bool>* cancelled = nullptr;
  /// Set when this specific attempt exceeded its wall-clock timeout and
  /// was abandoned by its supervising worker. Folded into
  /// cancel_requested(), so polling jobs need no extra code.
  const std::atomic<bool>* attempt_cancelled = nullptr;

  [[nodiscard]] bool cancel_requested() const {
    return (cancelled != nullptr &&
            cancelled->load(std::memory_order_relaxed)) ||
           (attempt_cancelled != nullptr &&
            attempt_cancelled->load(std::memory_order_relaxed));
  }
};

/// SplitMix64 finalizer — the same avalanche step sim::Xoshiro256 uses to
/// expand its seed, so per-job streams are as decorrelated as the
/// generator's own state words.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Derives job \p index's RNG seed from the batch \p base seed. Two
/// mixing rounds keep nearby (base, index) pairs uncorrelated; the result
/// depends only on (base, index), never on worker count or schedule.
[[nodiscard]] constexpr std::uint64_t derive_seed(std::uint64_t base,
                                                  std::size_t index) {
  return splitmix64(splitmix64(base) ^
                    (0x9e3779b97f4a7c15ull * (static_cast<std::uint64_t>(index) + 1)));
}

/// Retry-aware overload: attempt 0 is exactly derive_seed(base, index)
/// (the historical stream), and each retry re-bases the lineage so the
/// replay is fresh yet a pure function of (base, index, attempt).
[[nodiscard]] constexpr std::uint64_t derive_seed(std::uint64_t base,
                                                  std::size_t index,
                                                  std::uint32_t attempt) {
  return attempt == 0
             ? derive_seed(base, index)
             : derive_seed(splitmix64(base ^ (0xbf58476d1ce4e5b9ull *
                                              attempt)),
                           index);
}

}  // namespace fgqos::exec
