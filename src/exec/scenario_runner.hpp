/// \file scenario_runner.hpp
/// \brief Thread-pool scenario-execution engine with deterministic merge.
///
/// The ScenarioRunner fans a batch of independent simulation points out
/// over worker threads and merges the outcomes in submission order. The
/// determinism contract: a job may depend only on its JobContext (index
/// and derived seed), each job builds its own Soc (and therefore its own
/// telemetry Hub and sinks), and results land in the slot of their
/// submission index — so for a fixed base seed the merged outcome of a
/// batch is bit-identical for 1 worker and N workers.
///
/// The runner profiles itself into its own MetricsRegistry under `exec.*`
/// (jobs completed, per-job queue wait and runtime, worker utilisation,
/// wall-clock speedup). These are host wall-clock numbers and are kept
/// out of every job's simulation metrics on purpose: simulation snapshots
/// stay reproducible, the runner's registry is where the nondeterminism
/// lives.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <string>
#include <type_traits>
#include <vector>

#include "exec/job.hpp"
#include "telemetry/metrics.hpp"

namespace fgqos::exec {

/// Execution configuration for a runner.
struct ExecConfig {
  /// Worker threads: 1 = serial (run on the calling thread, the default),
  /// 0 = one per hardware thread, N = exactly N.
  std::size_t jobs = 1;
  /// Base seed from which every job's seed is derived (derive_seed).
  std::uint64_t base_seed = 1;
  /// Per-attempt wall-clock timeout in seconds; 0 disables. Each timed
  /// attempt runs on its own thread so a hung simulation cannot wedge the
  /// batch; on timeout the attempt's private cancel flag is raised
  /// (visible through JobContext::cancel_requested()) and the thread is
  /// abandoned. run_report() waits one extra timeout span for abandoned
  /// attempts to exit before returning, so a job that polls
  /// cancel_requested() never touches caller state after the report is
  /// handed back; a job that ignores cancellation leaks its thread, and
  /// any caller references captured in its closure are then the caller's
  /// responsibility to keep alive.
  double job_timeout_s = 0;
  /// Extra attempts after a failed or timed-out first attempt. Each retry
  /// gets a fresh deterministic seed (derive_seed with the attempt
  /// ordinal). After a timeout, the retry only launches once the
  /// abandoned attempt has acknowledged cancellation (exited) within one
  /// extra timeout span — two attempts of one job never run concurrently;
  /// if it keeps running, the job ends kTimedOut and the remaining
  /// retries are forfeited.
  std::uint32_t max_retries = 0;
};

/// Terminal state of one submitted job.
enum class JobStatus : std::uint8_t {
  kOk = 0,
  kFailed,    ///< last attempt threw
  kTimedOut,  ///< last attempt exceeded job_timeout_s
  kSkipped,   ///< never claimed (stop requested before it started)
};

[[nodiscard]] const char* job_status_name(JobStatus s);

/// Outcome of one submitted job across all its attempts.
struct JobOutcome {
  JobStatus status = JobStatus::kSkipped;
  /// Attempts actually made (0 for skipped jobs).
  std::uint32_t attempts = 0;
  /// what() of the last failure ("timed out after Ns" for timeouts).
  std::string error;
  /// The last failure in throwable form (null for kOk/kTimedOut/kSkipped).
  std::exception_ptr exception;
};

/// Everything run_report() learned about a batch: one outcome per
/// submission index, always fully populated — partial results survive
/// failures, timeouts and interrupts.
struct RunReport {
  std::vector<JobOutcome> jobs;

  [[nodiscard]] bool all_ok() const;
  /// Submission indices that terminally failed or timed out (skipped jobs
  /// are listed by describe() but are not failures).
  [[nodiscard]] std::vector<std::size_t> failed_indices() const;
  /// One-line human summary naming every non-ok index, e.g.
  /// "8 jobs: 5 ok, 2 failed (2, 6), 1 timed out (4)".
  [[nodiscard]] std::string describe() const;
};

/// Resolves a requested worker count: 0 becomes the hardware concurrency
/// (at least 1), anything else is returned unchanged (minimum 1).
[[nodiscard]] std::size_t resolve_jobs(std::size_t requested);

/// Reads the FGQOS_JOBS environment variable (same semantics as --jobs:
/// 0 = hardware concurrency); returns \p fallback when unset or empty.
/// Malformed values throw ConfigError.
[[nodiscard]] std::size_t jobs_from_env(std::size_t fallback = 1);

/// The engine.
class ScenarioRunner {
 public:
  /// Type-erased job: receives its context, returns nothing. Typed
  /// fan-out (map) writes results into pre-sized slots on top of this.
  using JobFn = std::function<void(const JobContext&)>;

  explicit ScenarioRunner(ExecConfig cfg);

  ScenarioRunner(const ScenarioRunner&) = delete;
  ScenarioRunner& operator=(const ScenarioRunner&) = delete;

  /// Resolved worker count (>= 1).
  [[nodiscard]] std::size_t worker_count() const { return workers_; }
  [[nodiscard]] std::uint64_t base_seed() const { return cfg_.base_seed; }

  /// Runs every job in \p batch, blocking until all complete (or time
  /// out / are skipped after request_stop()). Jobs are claimed in
  /// submission order; with workers > 1 they run concurrently. Failed
  /// attempts are retried up to cfg.max_retries times with fresh
  /// deterministic seeds. Never throws for job failures — the returned
  /// report carries every outcome, so partial results remain usable.
  RunReport run_report(std::vector<JobFn> batch);

  /// Legacy strict wrapper over run_report(): if any job did not finish
  /// kOk, rethrows the stored exception of the lowest non-ok submission
  /// index (or throws ConfigError naming the index for timeouts/skips).
  void run(std::vector<JobFn> batch);

  /// Asks the runner to wind down: running jobs see
  /// JobContext::cancel_requested(), unclaimed jobs are skipped. Safe to
  /// call from a signal handler (a single atomic store) and from any
  /// thread; sticky across run_report() calls until reset_stop().
  void request_stop() { stop_->store(true, std::memory_order_relaxed); }
  [[nodiscard]] bool stop_requested() const {
    return stop_->load(std::memory_order_relaxed);
  }
  void reset_stop() { stop_->store(false, std::memory_order_relaxed); }

  /// Typed fan-out: invokes fn(ctx) for n jobs and returns the results
  /// in submission order. R must be default-constructible.
  template <typename Fn>
  auto map(std::size_t n, Fn&& fn) {
    using R = std::decay_t<std::invoke_result_t<Fn&, const JobContext&>>;
    static_assert(std::is_default_constructible_v<R>,
                  "map() results are merged into a pre-sized vector");
    std::vector<R> out(n);
    std::vector<JobFn> batch;
    batch.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      batch.push_back(
          [&out, &fn](const JobContext& ctx) { out[ctx.index] = fn(ctx); });
    }
    run(std::move(batch));
    return out;
  }

  /// The runner's own `exec.*` metrics (host wall-clock; accumulated
  /// across run() calls on this instance).
  [[nodiscard]] telemetry::MetricsRegistry& metrics() { return metrics_; }
  [[nodiscard]] const telemetry::MetricsRegistry& metrics() const {
    return metrics_;
  }

  /// One-line human summary of the accumulated exec metrics, e.g.
  /// "exec: 6 jobs on 4 workers, wall 1.2 s, busy 4.4 s, speedup 3.7x,
  /// utilization 92%". When jobs failed, every failed submission index is
  /// appended ("..., 2 failed (indices 2, 6)").
  [[nodiscard]] std::string summary() const;

 private:
  ExecConfig cfg_;
  std::size_t workers_ = 1;
  telemetry::MetricsRegistry metrics_;
  std::uint64_t jobs_done_ = 0;
  double wall_s_ = 0;
  double busy_s_ = 0;
  /// Failed/timed-out indices accumulated across run_report() calls (for
  /// summary()); guarded by the metrics mutex while a batch runs.
  std::vector<std::size_t> failed_indices_;
  /// Runner-wide stop flag. Every timed attempt thread holds its own
  /// shared_ptr copy (via its AttemptState), so a hung, abandoned attempt
  /// can never dangle into a destroyed runner.
  std::shared_ptr<std::atomic<bool>> stop_ =
      std::make_shared<std::atomic<bool>>(false);
};

}  // namespace fgqos::exec
