/// \file scenario_runner.hpp
/// \brief Thread-pool scenario-execution engine with deterministic merge.
///
/// The ScenarioRunner fans a batch of independent simulation points out
/// over worker threads and merges the outcomes in submission order. The
/// determinism contract: a job may depend only on its JobContext (index
/// and derived seed), each job builds its own Soc (and therefore its own
/// telemetry Hub and sinks), and results land in the slot of their
/// submission index — so for a fixed base seed the merged outcome of a
/// batch is bit-identical for 1 worker and N workers.
///
/// The runner profiles itself into its own MetricsRegistry under `exec.*`
/// (jobs completed, per-job queue wait and runtime, worker utilisation,
/// wall-clock speedup). These are host wall-clock numbers and are kept
/// out of every job's simulation metrics on purpose: simulation snapshots
/// stay reproducible, the runner's registry is where the nondeterminism
/// lives.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <type_traits>
#include <vector>

#include "exec/job.hpp"
#include "telemetry/metrics.hpp"

namespace fgqos::exec {

/// Execution configuration for a runner.
struct ExecConfig {
  /// Worker threads: 1 = serial (run on the calling thread, the default),
  /// 0 = one per hardware thread, N = exactly N.
  std::size_t jobs = 1;
  /// Base seed from which every job's seed is derived (derive_seed).
  std::uint64_t base_seed = 1;
};

/// Resolves a requested worker count: 0 becomes the hardware concurrency
/// (at least 1), anything else is returned unchanged (minimum 1).
[[nodiscard]] std::size_t resolve_jobs(std::size_t requested);

/// Reads the FGQOS_JOBS environment variable (same semantics as --jobs:
/// 0 = hardware concurrency); returns \p fallback when unset or empty.
/// Malformed values throw ConfigError.
[[nodiscard]] std::size_t jobs_from_env(std::size_t fallback = 1);

/// The engine.
class ScenarioRunner {
 public:
  /// Type-erased job: receives its context, returns nothing. Typed
  /// fan-out (map) writes results into pre-sized slots on top of this.
  using JobFn = std::function<void(const JobContext&)>;

  explicit ScenarioRunner(ExecConfig cfg);

  ScenarioRunner(const ScenarioRunner&) = delete;
  ScenarioRunner& operator=(const ScenarioRunner&) = delete;

  /// Resolved worker count (>= 1).
  [[nodiscard]] std::size_t worker_count() const { return workers_; }
  [[nodiscard]] std::uint64_t base_seed() const { return cfg_.base_seed; }

  /// Runs every job in \p batch, blocking until all complete. Jobs are
  /// claimed in submission order; with workers > 1 they run concurrently.
  /// If any job throws, the remaining unclaimed jobs still run and the
  /// exception of the lowest submission index is rethrown after the
  /// batch drains.
  void run(std::vector<JobFn> batch);

  /// Typed fan-out: invokes fn(ctx) for n jobs and returns the results
  /// in submission order. R must be default-constructible.
  template <typename Fn>
  auto map(std::size_t n, Fn&& fn) {
    using R = std::decay_t<std::invoke_result_t<Fn&, const JobContext&>>;
    static_assert(std::is_default_constructible_v<R>,
                  "map() results are merged into a pre-sized vector");
    std::vector<R> out(n);
    std::vector<JobFn> batch;
    batch.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      batch.push_back(
          [&out, &fn](const JobContext& ctx) { out[ctx.index] = fn(ctx); });
    }
    run(std::move(batch));
    return out;
  }

  /// The runner's own `exec.*` metrics (host wall-clock; accumulated
  /// across run() calls on this instance).
  [[nodiscard]] telemetry::MetricsRegistry& metrics() { return metrics_; }
  [[nodiscard]] const telemetry::MetricsRegistry& metrics() const {
    return metrics_;
  }

  /// One-line human summary of the accumulated exec metrics, e.g.
  /// "exec: 6 jobs on 4 workers, wall 1.2 s, busy 4.4 s, speedup 3.7x,
  /// utilization 92%".
  [[nodiscard]] std::string summary() const;

 private:
  ExecConfig cfg_;
  std::size_t workers_ = 1;
  telemetry::MetricsRegistry metrics_;
  std::uint64_t jobs_done_ = 0;
  double wall_s_ = 0;
  double busy_s_ = 0;
};

}  // namespace fgqos::exec
