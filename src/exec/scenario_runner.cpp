#include "exec/scenario_runner.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>

#include "util/config_error.hpp"

namespace fgqos::exec {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

}  // namespace

std::size_t resolve_jobs(std::size_t requested) {
  if (requested != 0) {
    return requested;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

std::size_t jobs_from_env(std::size_t fallback) {
  const char* env = std::getenv("FGQOS_JOBS");
  if (env == nullptr || *env == '\0') {
    return fallback;
  }
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(env, &end, 10);
  config_check(end != nullptr && *end == '\0',
               std::string("FGQOS_JOBS expects an integer, got '") + env +
                   "'");
  return resolve_jobs(static_cast<std::size_t>(parsed));
}

ScenarioRunner::ScenarioRunner(ExecConfig cfg)
    : cfg_(cfg), workers_(resolve_jobs(cfg.jobs)) {}

void ScenarioRunner::run(std::vector<JobFn> batch) {
  const std::size_t n = batch.size();
  if (n == 0) {
    return;
  }
  const std::size_t used = std::min(workers_, n);
  const auto batch_start = Clock::now();

  // Registry creation is not thread-safe; fetch every handle up front and
  // funnel worker updates through one mutex (contended only at job
  // boundaries, which are whole-simulation granular).
  auto& jobs_completed = metrics_.counter("exec.jobs_completed");
  auto& jobs_failed = metrics_.counter("exec.jobs_failed");
  auto& queue_wait_us = metrics_.histogram("exec.queue_wait_us");
  auto& job_us = metrics_.histogram("exec.job_us");
  std::mutex metrics_mu;

  std::vector<std::exception_ptr> errors(n);
  std::atomic<std::size_t> next{0};

  auto worker_loop = [&](std::size_t worker) {
    while (true) {
      const std::size_t i = next.fetch_add(1);
      if (i >= n) {
        return;
      }
      JobContext ctx;
      ctx.index = i;
      ctx.seed = derive_seed(cfg_.base_seed, i);
      ctx.worker = worker;
      const double wait_s = seconds_since(batch_start);
      const auto job_start = Clock::now();
      bool failed = false;
      try {
        batch[i](ctx);
      } catch (...) {
        errors[i] = std::current_exception();
        failed = true;
      }
      const double run_s = seconds_since(job_start);
      const std::scoped_lock lock(metrics_mu);
      (failed ? jobs_failed : jobs_completed).add(1);
      queue_wait_us.record(static_cast<std::uint64_t>(wait_s * 1e6));
      job_us.record(static_cast<std::uint64_t>(run_s * 1e6));
      busy_s_ += run_s;
    }
  };

  if (used == 1) {
    worker_loop(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(used);
    for (std::size_t w = 0; w < used; ++w) {
      pool.emplace_back(worker_loop, w);
    }
    for (auto& t : pool) {
      t.join();
    }
  }

  wall_s_ += seconds_since(batch_start);
  jobs_done_ += n;
  metrics_.gauge("exec.workers").set(static_cast<double>(used));
  metrics_.gauge("exec.wall_s").set(wall_s_);
  metrics_.gauge("exec.busy_s").set(busy_s_);
  metrics_.gauge("exec.speedup").set(wall_s_ > 0 ? busy_s_ / wall_s_ : 0.0);
  metrics_.gauge("exec.worker_utilization")
      .set(wall_s_ > 0 ? busy_s_ / (wall_s_ * static_cast<double>(used))
                       : 0.0);

  for (auto& e : errors) {
    if (e != nullptr) {
      std::rethrow_exception(e);
    }
  }
}

std::string ScenarioRunner::summary() const {
  char buf[160];
  const double speedup = wall_s_ > 0 ? busy_s_ / wall_s_ : 0.0;
  const double util =
      wall_s_ > 0 ? busy_s_ / (wall_s_ * static_cast<double>(workers_)) : 0.0;
  std::snprintf(buf, sizeof buf,
                "exec: %llu jobs on %zu workers, wall %.2f s, busy %.2f s, "
                "speedup %.2fx, utilization %.0f%%",
                static_cast<unsigned long long>(jobs_done_), workers_, wall_s_,
                busy_s_, speedup, util * 100.0);
  return buf;
}

}  // namespace fgqos::exec
