#include "exec/scenario_runner.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>

#include "util/config_error.hpp"

namespace fgqos::exec {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// State shared between a worker and the attempt thread it supervises.
/// Lives in a shared_ptr so a timed-out (abandoned) attempt can finish —
/// or hang forever — without dangling once the worker moved on.
struct AttemptState {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  std::exception_ptr err;
  /// Per-attempt cancellation: set by the supervising worker on timeout,
  /// surfaced to the job through JobContext::cancel_requested(). Distinct
  /// from the runner-wide stop flag so abandoning one attempt does not
  /// cancel the rest of the batch.
  std::atomic<bool> cancel{false};
  /// Co-owns the runner's stop flag so an abandoned attempt that outlives
  /// the ScenarioRunner (and even run_report's caller) never dereferences
  /// a destroyed atomic.
  std::shared_ptr<std::atomic<bool>> stop;
};

/// Waits up to \p grace_s for \p state's attempt thread to exit.
bool await_attempt(AttemptState& state, double grace_s) {
  std::unique_lock<std::mutex> lk(state.mu);
  return state.cv.wait_for(lk, std::chrono::duration<double>(grace_s),
                           [&state] { return state.done; });
}

std::string join_indices(const std::vector<std::size_t>& v) {
  std::string out;
  for (const std::size_t i : v) {
    if (!out.empty()) {
      out += ", ";
    }
    out += std::to_string(i);
  }
  return out;
}

}  // namespace

const char* job_status_name(JobStatus s) {
  switch (s) {
    case JobStatus::kOk:
      return "ok";
    case JobStatus::kFailed:
      return "failed";
    case JobStatus::kTimedOut:
      return "timed out";
    case JobStatus::kSkipped:
      return "skipped";
  }
  return "?";
}

bool RunReport::all_ok() const {
  for (const JobOutcome& j : jobs) {
    if (j.status != JobStatus::kOk) {
      return false;
    }
  }
  return true;
}

std::vector<std::size_t> RunReport::failed_indices() const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (jobs[i].status == JobStatus::kFailed ||
        jobs[i].status == JobStatus::kTimedOut) {
      out.push_back(i);
    }
  }
  return out;
}

std::string RunReport::describe() const {
  std::vector<std::size_t> failed, timed_out, skipped;
  std::size_t ok = 0;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    switch (jobs[i].status) {
      case JobStatus::kOk:
        ++ok;
        break;
      case JobStatus::kFailed:
        failed.push_back(i);
        break;
      case JobStatus::kTimedOut:
        timed_out.push_back(i);
        break;
      case JobStatus::kSkipped:
        skipped.push_back(i);
        break;
    }
  }
  std::string out = std::to_string(jobs.size()) + " jobs: " +
                    std::to_string(ok) + " ok";
  if (!failed.empty()) {
    out += ", " + std::to_string(failed.size()) + " failed (" +
           join_indices(failed) + ")";
  }
  if (!timed_out.empty()) {
    out += ", " + std::to_string(timed_out.size()) + " timed out (" +
           join_indices(timed_out) + ")";
  }
  if (!skipped.empty()) {
    out += ", " + std::to_string(skipped.size()) + " skipped (" +
           join_indices(skipped) + ")";
  }
  return out;
}

std::size_t resolve_jobs(std::size_t requested) {
  if (requested != 0) {
    return requested;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

std::size_t jobs_from_env(std::size_t fallback) {
  const char* env = std::getenv("FGQOS_JOBS");
  if (env == nullptr || *env == '\0') {
    return fallback;
  }
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(env, &end, 10);
  config_check(end != nullptr && *end == '\0',
               std::string("FGQOS_JOBS expects an integer, got '") + env +
                   "'");
  return resolve_jobs(static_cast<std::size_t>(parsed));
}

ScenarioRunner::ScenarioRunner(ExecConfig cfg)
    : cfg_(cfg), workers_(resolve_jobs(cfg.jobs)) {
  config_check(cfg_.job_timeout_s >= 0,
               "ScenarioRunner: job timeout must be >= 0");
}

RunReport ScenarioRunner::run_report(std::vector<JobFn> batch) {
  const std::size_t n = batch.size();
  RunReport report;
  report.jobs.resize(n);
  if (n == 0) {
    return report;
  }
  const std::size_t used = std::min(workers_, n);
  const auto batch_start = Clock::now();

  // Attempt threads outlive their worker on timeout, so the batch must
  // outlive them too: shared ownership instead of a stack vector.
  auto jobs = std::make_shared<std::vector<JobFn>>(std::move(batch));

  // Registry creation is not thread-safe; fetch every handle up front and
  // funnel worker updates through one mutex (contended only at job
  // boundaries, which are whole-simulation granular).
  auto& jobs_completed = metrics_.counter("exec.jobs_completed");
  auto& jobs_failed = metrics_.counter("exec.jobs_failed");
  auto& jobs_retried = metrics_.counter("exec.jobs_retried");
  auto& jobs_timed_out = metrics_.counter("exec.jobs_timed_out");
  auto& queue_wait_us = metrics_.histogram("exec.queue_wait_us");
  auto& job_us = metrics_.histogram("exec.job_us");
  auto& job_wall_ms = metrics_.histogram("exec.job_wall_ms");
  auto& queue_depth = metrics_.gauge("exec.queue_depth");
  queue_depth.set(static_cast<double>(n));
  std::mutex metrics_mu;

  std::atomic<std::size_t> next{0};

  // Timed-out attempts whose threads were abandoned mid-job; drained (with
  // a bounded grace) before run_report returns so cooperative jobs cannot
  // keep mutating caller state after the report is handed back.
  std::vector<std::shared_ptr<AttemptState>> abandoned;
  std::mutex abandoned_mu;

  // One attempt of job \p i with context \p ctx; fills status/error into
  // \p out. Honours cfg_.job_timeout_s when positive. Returns the state of
  // a timed-out (abandoned) attempt — with its cancel flag already set —
  // so the caller can gate any retry on the attempt actually exiting;
  // returns nullptr when the attempt finished.
  auto run_attempt = [this, jobs](std::size_t i, JobContext ctx,
                                  JobOutcome& out)
      -> std::shared_ptr<AttemptState> {
    if (cfg_.job_timeout_s <= 0) {
      try {
        (*jobs)[i](ctx);
        out.status = JobStatus::kOk;
      } catch (...) {
        out.status = JobStatus::kFailed;
        out.exception = std::current_exception();
      }
      return nullptr;
    }
    auto state = std::make_shared<AttemptState>();
    state->stop = stop_;
    // The attempt thread's context points only into state it co-owns
    // (the AttemptState and the stop flag), never into the runner.
    ctx.cancelled = state->stop.get();
    ctx.attempt_cancelled = &state->cancel;
    std::thread([state, jobs, i, ctx]() {
      std::exception_ptr err;
      try {
        (*jobs)[i](ctx);
      } catch (...) {
        err = std::current_exception();
      }
      const std::lock_guard<std::mutex> lk(state->mu);
      state->err = err;
      state->done = true;
      state->cv.notify_all();
    }).detach();
    std::unique_lock<std::mutex> lk(state->mu);
    const bool finished =
        state->cv.wait_for(lk, std::chrono::duration<double>(cfg_.job_timeout_s),
                           [&state] { return state->done; });
    if (!finished) {
      state->cancel.store(true, std::memory_order_relaxed);
      out.status = JobStatus::kTimedOut;
      out.exception = nullptr;
      char buf[64];
      std::snprintf(buf, sizeof buf, "timed out after %gs",
                    cfg_.job_timeout_s);
      out.error = buf;
      return state;
    }
    if (state->err != nullptr) {
      out.status = JobStatus::kFailed;
      out.exception = state->err;
    } else {
      out.status = JobStatus::kOk;
    }
    return nullptr;
  };

  auto worker_loop = [&, jobs](std::size_t worker) {
    while (!stop_->load(std::memory_order_relaxed)) {
      const std::size_t i = next.fetch_add(1);
      if (i >= n) {
        return;
      }
      JobOutcome& out = report.jobs[i];
      {
        // Unclaimed jobs left right now; re-read the shared cursor so late
        // writers cannot revive a depth another worker already lowered.
        const std::size_t claimed = std::min(next.load(), n);
        const std::lock_guard<std::mutex> lock(metrics_mu);
        queue_depth.set(static_cast<double>(n - claimed));
      }
      const double wait_s = seconds_since(batch_start);
      const auto job_start = Clock::now();
      for (std::uint32_t attempt = 0;; ++attempt) {
        out.attempts = attempt + 1;
        const auto attempt_start = Clock::now();
        JobContext ctx;
        ctx.index = i;
        ctx.seed = derive_seed(cfg_.base_seed, i, attempt);
        ctx.worker = worker;
        ctx.attempt = attempt;
        ctx.cancelled = stop_.get();
        std::shared_ptr<AttemptState> hung = run_attempt(i, ctx, out);
        {
          // Per-attempt wall time: retries and timeouts each get their own
          // sample (job_us keeps the whole-job view).
          const double attempt_s = seconds_since(attempt_start);
          const std::lock_guard<std::mutex> lock(metrics_mu);
          job_wall_ms.record(static_cast<std::uint64_t>(attempt_s * 1e3));
        }
        if (out.status == JobStatus::kOk) {
          break;
        }
        if (out.status == JobStatus::kFailed && out.exception != nullptr) {
          try {
            std::rethrow_exception(out.exception);
          } catch (const std::exception& e) {
            out.error = e.what();
          } catch (...) {
            out.error = "unknown exception";
          }
        }
        const bool want_retry = attempt < cfg_.max_retries &&
                                !stop_->load(std::memory_order_relaxed);
        if (hung != nullptr) {
          // Never launch a retry while the timed-out attempt may still be
          // executing the same closure: wait for it to acknowledge the
          // cancellation (exit), and forfeit the remaining retries if it
          // does not — two attempts of one job must never run
          // concurrently.
          if (!want_retry || !await_attempt(*hung, cfg_.job_timeout_s)) {
            if (want_retry) {
              out.error +=
                  " (attempt ignored cancellation; retries forfeited)";
            }
            const std::lock_guard<std::mutex> lock(abandoned_mu);
            abandoned.push_back(std::move(hung));
            break;
          }
        } else if (!want_retry) {
          break;
        }
        const std::lock_guard<std::mutex> lock(metrics_mu);
        jobs_retried.add(1);
      }
      const double run_s = seconds_since(job_start);
      const std::lock_guard<std::mutex> lock(metrics_mu);
      if (out.status == JobStatus::kOk) {
        jobs_completed.add(1);
      } else {
        jobs_failed.add(1);
        failed_indices_.push_back(i);
        if (out.status == JobStatus::kTimedOut) {
          jobs_timed_out.add(1);
        }
      }
      queue_wait_us.record(static_cast<std::uint64_t>(wait_s * 1e6));
      job_us.record(static_cast<std::uint64_t>(run_s * 1e6));
      busy_s_ += run_s;
    }
  };

  if (used == 1) {
    worker_loop(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(used);
    for (std::size_t w = 0; w < used; ++w) {
      pool.emplace_back(worker_loop, w);
    }
    for (auto& t : pool) {
      t.join();
    }
  }

  // Drain abandoned attempts (their cancel flags are set) under one shared
  // deadline: cooperative jobs exit almost immediately, so results stop
  // mutating before the report is returned. A job that never polls
  // cancel_requested() leaks its thread past this point — it keeps the
  // batch and its AttemptState alive, but references to caller state in
  // its closure are the caller's responsibility (see ExecConfig).
  if (!abandoned.empty()) {
    const auto deadline =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(cfg_.job_timeout_s));
    for (const auto& state : abandoned) {
      std::unique_lock<std::mutex> lk(state->mu);
      state->cv.wait_until(lk, deadline, [&state] { return state->done; });
    }
  }

  wall_s_ += seconds_since(batch_start);
  jobs_done_ += n;
  metrics_.gauge("exec.workers").set(static_cast<double>(used));
  metrics_.gauge("exec.wall_s").set(wall_s_);
  metrics_.gauge("exec.busy_s").set(busy_s_);
  metrics_.gauge("exec.speedup").set(wall_s_ > 0 ? busy_s_ / wall_s_ : 0.0);
  metrics_.gauge("exec.worker_utilization")
      .set(wall_s_ > 0 ? busy_s_ / (wall_s_ * static_cast<double>(used))
                       : 0.0);
  return report;
}

void ScenarioRunner::run(std::vector<JobFn> batch) {
  const RunReport report = run_report(std::move(batch));
  for (std::size_t i = 0; i < report.jobs.size(); ++i) {
    const JobOutcome& out = report.jobs[i];
    if (out.status == JobStatus::kOk) {
      continue;
    }
    if (out.exception != nullptr) {
      std::rethrow_exception(out.exception);
    }
    throw ConfigError("job " + std::to_string(i) + " " +
                      job_status_name(out.status) +
                      (out.error.empty() ? "" : ": " + out.error));
  }
}

std::string ScenarioRunner::summary() const {
  char buf[160];
  const double speedup = wall_s_ > 0 ? busy_s_ / wall_s_ : 0.0;
  const double util =
      wall_s_ > 0 ? busy_s_ / (wall_s_ * static_cast<double>(workers_)) : 0.0;
  std::snprintf(buf, sizeof buf,
                "exec: %llu jobs on %zu workers, wall %.2f s, busy %.2f s, "
                "speedup %.2fx, utilization %.0f%%",
                static_cast<unsigned long long>(jobs_done_), workers_, wall_s_,
                busy_s_, speedup, util * 100.0);
  std::string out = buf;
  if (!failed_indices_.empty()) {
    std::vector<std::size_t> sorted = failed_indices_;
    std::sort(sorted.begin(), sorted.end());
    out += ", " + std::to_string(sorted.size()) + " failed (indices " +
           join_indices(sorted) + ")";
  }
  return out;
}

}  // namespace fgqos::exec
