#include "soc/presets.hpp"

#include "util/config_error.hpp"

namespace fgqos::soc {

SocConfig preset_zcu102() {
  SocConfig cfg;
  cfg.name = "zcu102";
  return cfg;
}

SocConfig preset_kria_k26() {
  SocConfig cfg;
  cfg.name = "kria_k26";
  cfg.cpu_mhz = 1000;
  cfg.accel_ports = 2;
  cfg.cluster.l2.size_bytes = 512 * 1024;
  cfg.dram.timing.clock_mhz = 933;  // DDR4-1866
  cfg.dram.timing.tCL = 13;
  cfg.dram.timing.tCWL = 10;
  cfg.dram.timing.tRCD = 13;
  cfg.dram.timing.tRP = 13;
  cfg.dram.timing.tRAS = 32;
  cfg.dram.timing.tRC = 45;
  cfg.dram.timing.tRFC = 328;
  cfg.dram.timing.tREFI = 7280;
  return cfg;
}

SocConfig preset_ultra96() {
  SocConfig cfg;
  cfg.name = "ultra96";
  cfg.cpu_mhz = 1000;
  cfg.accel_ports = 2;
  cfg.cluster.l2.size_bytes = 512 * 1024;
  cfg.dram.timing.clock_mhz = 1066;  // DDR4-2133, 32-bit
  cfg.dram.timing.data_bytes_per_cycle = 8;
  cfg.dram.timing.tCL = 15;
  cfg.dram.timing.tCWL = 11;
  cfg.dram.timing.tRCD = 15;
  cfg.dram.timing.tRP = 15;
  cfg.dram.timing.tRAS = 35;
  cfg.dram.timing.tRC = 50;
  cfg.dram.timing.tRFC = 373;
  cfg.dram.timing.tREFI = 8312;
  // 32-bit bus: each 64 B burst is BL16-equivalent (8 bus cycles).
  cfg.accel_port.port_bandwidth_bps = 2.4e9;  // 64-bit @ 300 MHz fabric / 2
  cfg.cpu_port.port_bandwidth_bps = 8e9;
  return cfg;
}

SocConfig preset_by_name(const std::string& name) {
  if (name == "zcu102") {
    return preset_zcu102();
  }
  if (name == "kria_k26") {
    return preset_kria_k26();
  }
  if (name == "ultra96") {
    return preset_ultra96();
  }
  throw ConfigError("unknown platform preset '" + name +
                    "' (try: zcu102, kria_k26, ultra96)");
}

const std::vector<std::string>& preset_names() {
  static const std::vector<std::string> kNames = {"zcu102", "kria_k26",
                                                  "ultra96"};
  return kNames;
}

}  // namespace fgqos::soc
