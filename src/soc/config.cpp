#include "soc/config.hpp"

#include "util/config_error.hpp"

namespace fgqos::soc {

void SocConfig::validate() const {
  config_check(cpu_mhz > 0 && fabric_mhz > 0 && xbar_mhz > 0,
               "SocConfig: clock frequencies must be > 0");
  config_check(accel_ports >= 1, "SocConfig: need at least one accel port");
  config_check(accel_ports <= 16, "SocConfig: too many accel ports (max 16)");
  config_check(dram_channels >= 1 && dram_channels <= 8,
               "SocConfig: dram_channels must be in [1,8]");
  config_check(channel_stride_bytes >= cpu_port.line_bytes &&
                   (channel_stride_bytes & (channel_stride_bytes - 1)) == 0,
               "SocConfig: channel stride must be a power of two >= line");
  dram.validate();
  cpu_port_check();
}

// Separate helper so the header stays declaration-only.
void SocConfig::cpu_port_check() const {
  config_check(cpu_port.line_bytes == accel_port.line_bytes,
               "SocConfig: all ports must share one line size");
  config_check(cpu_port.line_bytes == cluster.l2.line_bytes,
               "SocConfig: L2 line size must match the port line size");
  config_check(cpu_port.line_bytes <= dram.timing.burst_bytes,
               "SocConfig: line must fit in one DRAM burst");
}

}  // namespace fgqos::soc
