/// \file presets.hpp
/// \brief Named platform configurations.
///
/// The experiments default to a ZCU102-class device; the other presets
/// let users (and the portability tests) check that results hold across
/// platform scales, the way the paper's group evaluates on more than one
/// board.
#pragma once

#include <string>
#include <vector>

#include "soc/config.hpp"

namespace fgqos::soc {

/// ZCU102-class: 4 HP ports, 64-bit DDR4-2400 (19.2 GB/s), 4-core
/// 1.2 GHz cluster, 1 MiB L2. This is SocConfig's default.
SocConfig preset_zcu102();

/// Kria-K26-class: 2 HP ports, 64-bit DDR4-1866 (14.9 GB/s), 1 GHz
/// cluster, 512 KiB L2 — a mid-size production module.
SocConfig preset_kria_k26();

/// Ultra96-class: 2 HP ports, 32-bit DDR4-2133 (8.5 GB/s), 1 GHz
/// cluster, 512 KiB L2 — the small end of the family.
SocConfig preset_ultra96();

/// Looks a preset up by name ("zcu102", "kria_k26", "ultra96").
/// Throws ConfigError for unknown names.
SocConfig preset_by_name(const std::string& name);

/// All preset names, for help text and sweep tests.
const std::vector<std::string>& preset_names();

}  // namespace fgqos::soc
