#include "soc/soc.hpp"

#include "util/config_error.hpp"

namespace fgqos::soc {

Soc::Soc(SocConfig cfg)
    : cfg_(std::move(cfg)),
      cpu_clk_(sim::ClockDomain::from_mhz("cpu", cfg_.cpu_mhz)),
      fabric_clk_(sim::ClockDomain::from_mhz("fabric", cfg_.fabric_mhz)),
      xbar_clk_(sim::ClockDomain::from_mhz("xbar", cfg_.xbar_mhz)),
      dram_clk_(sim::ClockDomain::from_mhz("dram", cfg_.dram.timing.clock_mhz)) {
  cfg_.validate();
  xbar_ = std::make_unique<axi::Interconnect>(sim_, xbar_clk_, cfg_.xbar);

  // Master 0: CPU cluster port.
  axi::MasterPortConfig cpu_port_cfg = cfg_.cpu_port;
  xbar_->add_master(cpu_port_cfg);
  // Masters 1..N: accelerator HP ports.
  for (std::size_t i = 0; i < cfg_.accel_ports; ++i) {
    axi::MasterPortConfig pc = cfg_.accel_port;
    pc.name = cfg_.accel_port.name + std::to_string(i);
    xbar_->add_master(pc);
  }

  for (std::size_t ch = 0; ch < cfg_.dram_channels; ++ch) {
    drams_.push_back(std::make_unique<dram::Controller>(sim_, dram_clk_,
                                                        cfg_.dram, *xbar_));
  }
  if (cfg_.dram_channels == 1) {
    xbar_->set_slave(*drams_[0]);
  } else {
    std::vector<axi::SlaveIf*> channels;
    channels.reserve(drams_.size());
    for (auto& d : drams_) {
      channels.push_back(d.get());
    }
    channel_router_ = std::make_unique<axi::ChannelRouter>(
        std::move(channels), cfg_.channel_stride_bytes);
    xbar_->set_slave(*channel_router_);
  }

  cluster_ = std::make_unique<cpu::CpuCluster>(sim_, cpu_clk_, cfg_.cluster,
                                               xbar_->master(0));

  if (cfg_.qos_blocks) {
    for (std::size_t m = 0; m < xbar_->master_count(); ++m) {
      QosBlock block;
      qos::RegulatorConfig rc = cfg_.default_regulator;
      rc.name = xbar_->master(m).name() + ".reg";
      block.regulator = std::make_unique<qos::Regulator>(sim_, rc);
      qos::MonitorConfig mc = cfg_.default_monitor;
      mc.name = xbar_->master(m).name() + ".mon";
      block.monitor = std::make_unique<qos::BandwidthMonitor>(sim_, mc);
      block.regfile = std::make_unique<qos::QosRegFile>(block.regulator.get(),
                                                        block.monitor.get());
      xbar_->master(m).add_gate(*block.regulator);
      xbar_->master(m).add_observer(*block.monitor);
      qos_blocks_.push_back(std::move(block));
    }
  }
}

QosBlock& Soc::qos_block(std::size_t master_index) {
  config_check(cfg_.qos_blocks, "Soc: QoS blocks disabled by configuration");
  config_check(master_index < qos_blocks_.size(),
               "Soc: master index out of range");
  return qos_blocks_[master_index];
}

cpu::CpuCore& Soc::add_core(cpu::CoreConfig core_cfg,
                            std::unique_ptr<cpu::Kernel> kernel) {
  return cluster_->add_core(std::move(core_cfg), std::move(kernel));
}

wl::TrafficGen& Soc::add_traffic_gen(std::size_t accel_index,
                                     wl::TrafficGenConfig tg_cfg) {
  config_check(accel_index < cfg_.accel_ports,
               "Soc: accel port index out of range");
  traffic_gens_.push_back(std::make_unique<wl::TrafficGen>(
      sim_, fabric_clk_, std::move(tg_cfg), accel_port(accel_index)));
  return *traffic_gens_.back();
}

qos::DdrcThrottle& Soc::insert_ddrc_throttle(qos::DdrcThrottleConfig tc) {
  config_check(ddrc_throttle_ == nullptr,
               "Soc: DDRC throttle already inserted");
  axi::SlaveIf& inner = channel_router_ != nullptr
                            ? static_cast<axi::SlaveIf&>(*channel_router_)
                            : static_cast<axi::SlaveIf&>(*drams_[0]);
  ddrc_throttle_ =
      std::make_unique<qos::DdrcThrottle>(sim_, std::move(tc), inner);
  xbar_->set_slave(*ddrc_throttle_);
  return *ddrc_throttle_;
}

bool Soc::run_until_cores_finished(sim::TimePs deadline, sim::TimePs poll_ps) {
  while (sim_.now() < deadline) {
    if (cluster_->all_finished()) {
      return true;
    }
    const sim::TimePs step =
        std::min<sim::TimePs>(poll_ps, deadline - sim_.now());
    sim_.run_for(step);
  }
  return cluster_->all_finished();
}

double Soc::dram_bandwidth_bps() const {
  std::uint64_t bytes = 0;
  for (const auto& d : drams_) {
    bytes += d->stats().payload_bytes.value();
  }
  return sim::bytes_per_second(bytes, sim_.now());
}

void Soc::collect_stats(sim::StatsRegistry& out) const {
  // Aggregate over channels (single-channel platforms see one-to-one).
  std::uint64_t reads = 0, writes = 0, payload = 0, bus = 0, hits = 0;
  std::uint64_t acts = 0, conflicts = 0, refreshes = 0;
  double util = 0;
  for (const auto& d : drams_) {
    const auto& ds = d->stats();
    reads += ds.reads_serviced.value();
    writes += ds.writes_serviced.value();
    payload += ds.payload_bytes.value();
    bus += ds.bus_bytes.value();
    hits += ds.row_hits();
    acts += ds.activations.value();
    conflicts += ds.conflict_precharges.value();
    refreshes += ds.refreshes.value();
    util += d->bus_utilization(sim_.now());
  }
  out.set("dram.reads", reads);
  out.set("dram.writes", writes);
  out.set("dram.payload_bytes", payload);
  out.set("dram.bus_bytes", bus);
  out.set("dram.row_hits", hits);
  out.set("dram.activations", acts);
  out.set("dram.conflict_precharges", conflicts);
  out.set("dram.refreshes", refreshes);
  out.set("dram.bus_utilization",
          util / static_cast<double>(drams_.size()));
  for (std::size_t m = 0; m < xbar_->master_count(); ++m) {
    const axi::MasterPort& p = xbar_->master(m);
    const std::string prefix = "port." + p.name() + ".";
    out.set(prefix + "txns", p.stats().txns_completed.value());
    out.set(prefix + "bytes", p.stats().bytes_granted.value());
    out.set(prefix + "read_bytes", p.stats().read_bytes.value());
    out.set(prefix + "write_bytes", p.stats().write_bytes.value());
    out.set(prefix + "read_mean_ps", p.stats().read_latency.mean());
    out.set(prefix + "read_p99_ps", p.stats().read_latency.p99());
  }
  out.set("cluster.l2_hit_rate", cluster_->l2().stats().hit_rate());
  for (std::size_t c = 0; c < cluster_->core_count(); ++c) {
    const cpu::CpuCore& core =
        const_cast<cpu::CpuCluster&>(*cluster_).core(c);
    const std::string prefix = "core." + core.config().name + ".";
    out.set(prefix + "iterations", core.stats().iterations);
    out.set(prefix + "iter_mean_ps", core.stats().iteration_ps.mean());
    out.set(prefix + "iter_p99_ps", core.stats().iteration_ps.p99());
    out.set(prefix + "l1_hit_rate", core.l1().stats().hit_rate());
  }
}

}  // namespace fgqos::soc
