#include "soc/soc.hpp"

#include "util/config_error.hpp"

namespace fgqos::soc {

Soc::Soc(SocConfig cfg)
    : cfg_(std::move(cfg)),
      cpu_clk_(sim::ClockDomain::from_mhz("cpu", cfg_.cpu_mhz)),
      fabric_clk_(sim::ClockDomain::from_mhz("fabric", cfg_.fabric_mhz)),
      xbar_clk_(sim::ClockDomain::from_mhz("xbar", cfg_.xbar_mhz)),
      dram_clk_(sim::ClockDomain::from_mhz("dram", cfg_.dram.timing.clock_mhz)) {
  cfg_.validate();
  if (cfg_.profile) {
    // Attach before any component is built so construction-time tag
    // registrations all land in the profiler's tag table.
    telemetry_.enable_profiler(sim_);
  }
  xbar_ = std::make_unique<axi::Interconnect>(sim_, xbar_clk_, cfg_.xbar);

  // Master 0: CPU cluster port.
  axi::MasterPortConfig cpu_port_cfg = cfg_.cpu_port;
  xbar_->add_master(cpu_port_cfg);
  // Masters 1..N: accelerator HP ports.
  for (std::size_t i = 0; i < cfg_.accel_ports; ++i) {
    axi::MasterPortConfig pc = cfg_.accel_port;
    pc.name = cfg_.accel_port.name + std::to_string(i);
    xbar_->add_master(pc);
  }

  for (std::size_t ch = 0; ch < cfg_.dram_channels; ++ch) {
    drams_.push_back(std::make_unique<dram::Controller>(sim_, dram_clk_,
                                                        cfg_.dram, *xbar_));
  }
  if (cfg_.dram_channels == 1) {
    xbar_->set_slave(*drams_[0]);
  } else {
    std::vector<axi::SlaveIf*> channels;
    channels.reserve(drams_.size());
    for (auto& d : drams_) {
      channels.push_back(d.get());
    }
    channel_router_ = std::make_unique<axi::ChannelRouter>(
        std::move(channels), cfg_.channel_stride_bytes);
    xbar_->set_slave(*channel_router_);
  }

  cluster_ = std::make_unique<cpu::CpuCluster>(sim_, cpu_clk_, cfg_.cluster,
                                               xbar_->master(0));

  if (cfg_.qos_blocks) {
    for (std::size_t m = 0; m < xbar_->master_count(); ++m) {
      QosBlock block;
      qos::RegulatorConfig rc = cfg_.default_regulator;
      rc.name = xbar_->master(m).name() + ".reg";
      block.regulator = std::make_unique<qos::Regulator>(sim_, rc);
      qos::MonitorConfig mc = cfg_.default_monitor;
      mc.name = xbar_->master(m).name() + ".mon";
      block.monitor = std::make_unique<qos::BandwidthMonitor>(sim_, mc);
      block.regfile = std::make_unique<qos::QosRegFile>(block.regulator.get(),
                                                        block.monitor.get());
      xbar_->master(m).add_gate(*block.regulator);
      xbar_->master(m).add_observer(*block.monitor);
      qos_blocks_.push_back(std::move(block));
    }
  }
}

QosBlock& Soc::qos_block(std::size_t master_index) {
  config_check(cfg_.qos_blocks, "Soc: QoS blocks disabled by configuration");
  config_check(master_index < qos_blocks_.size(),
               "Soc: master index out of range");
  return qos_blocks_[master_index];
}

cpu::CpuCore& Soc::add_core(cpu::CoreConfig core_cfg,
                            std::unique_ptr<cpu::Kernel> kernel) {
  return cluster_->add_core(std::move(core_cfg), std::move(kernel));
}

wl::TrafficGen& Soc::add_traffic_gen(std::size_t accel_index,
                                     wl::TrafficGenConfig tg_cfg) {
  config_check(accel_index < cfg_.accel_ports,
               "Soc: accel port index out of range");
  for (const auto& tenant : serving_) {
    config_check(tenant->spec().port != accel_index,
                 "Soc: HP port " + std::to_string(accel_index) +
                     " already serves tenant '" + tenant->spec().name + "'");
  }
  traffic_gens_.push_back(std::make_unique<wl::TrafficGen>(
      sim_, fabric_clk_, std::move(tg_cfg), accel_port(accel_index)));
  if (telemetry_.tracing()) {
    traffic_gens_.back()->set_trace(telemetry_.trace());
  }
  return *traffic_gens_.back();
}

wl::ServingTenant& Soc::add_serving_tenant(wl::ServingTenantSpec spec,
                                           sim::TimePs duration_ps,
                                           std::uint64_t seed) {
  config_check(spec.port < cfg_.accel_ports,
               "Soc: serving tenant '" + spec.name +
                   "' names HP port " + std::to_string(spec.port) +
                   " but the platform has " +
                   std::to_string(cfg_.accel_ports));
  // The tenant takes over the port's completion handler; sharing the
  // port with anything else would silently orphan that thing's
  // completions, so claim it exclusively.
  axi::MasterPort& port = accel_port(spec.port);
  for (const auto& other : serving_) {
    config_check(other->spec().port != spec.port,
                 "Soc: HP port " + std::to_string(spec.port) +
                     " already serves tenant '" + other->spec().name + "'");
  }
  for (const auto& tg : traffic_gens_) {
    config_check(&tg->port() != &port,
                 "Soc: HP port " + std::to_string(spec.port) +
                     " already drives traffic generator '" +
                     tg->config().name + "'");
  }
  serving_.push_back(std::make_unique<wl::ServingTenant>(
      sim_, fabric_clk_, std::move(spec), duration_ps, seed, port));
  return *serving_.back();
}

void Soc::add_serving(const wl::ServingSpec& spec, std::uint64_t run_seed) {
  for (std::size_t i = 0; i < spec.tenants.size(); ++i) {
    add_serving_tenant(spec.tenants[i], spec.duration_ps,
                       wl::serving_tenant_seed(spec.seed, run_seed, i));
  }
}

void Soc::open_trace(const std::string& path, const std::string& filter) {
  telemetry_.open_trace(path, filter);
  enable_lifecycle_metrics();
  telemetry::TraceWriter* tw = telemetry_.trace();
  for (std::size_t ch = 0; ch < drams_.size(); ++ch) {
    drams_[ch]->set_trace(tw, "ch" + std::to_string(ch));
  }
  for (auto& block : qos_blocks_) {
    block.regulator->set_trace(tw);
    block.monitor->set_trace(tw);
  }
  for (auto& tg : traffic_gens_) {
    tg->set_trace(tw);
  }
  if (injector_ != nullptr) {
    injector_->set_trace(tw);
  }
  for (auto& wd : watchdogs_) {
    wd->set_trace(tw);
  }
  telemetry_.start_kernel_sampling(sim_);
}

void Soc::enable_lifecycle_metrics() {
  for (std::size_t m = 0; m < xbar_->master_count(); ++m) {
    telemetry_.lifecycle(xbar_->master(m));
  }
}

telemetry::AttributionEngine& Soc::enable_attribution(sim::TimePs window_ps) {
  telemetry::AttributionEngine& engine =
      telemetry_.enable_attribution(window_ps);
  for (std::size_t m = 0; m < xbar_->master_count(); ++m) {
    engine.register_master(static_cast<axi::MasterId>(m),
                           xbar_->master(m).name());
  }
  if (cfg_.bank_telemetry) {
    engine.enable_bank_dimension(
        static_cast<std::uint32_t>(cfg_.dram.timing.banks));
  }
  xbar_->set_attribution(&engine);
  for (auto& d : drams_) {
    d->set_attribution(&engine);
  }
  if (telemetry_.tracing()) {
    engine.set_trace(telemetry_.trace());
  }
  return engine;
}

telemetry::TimeSeriesRecorder& Soc::enable_timeseries(
    telemetry::TimeSeriesConfig ts_cfg) {
  telemetry::TimeSeriesRecorder& rec =
      telemetry_.enable_timeseries(sim_, std::move(ts_cfg));
  using Kind = telemetry::TimeSeriesRecorder::Kind;
  // Registration order is export order; keep it stable (dram, ports, qos,
  // generators, cores, attribution) so exports are byte-comparable across
  // runs. Probes read live component state — no metrics-registry detour,
  // which is only refreshed by collect_metrics() at the end of a run.
  rec.add_series("dram.payload_bytes", Kind::kDelta, [this](sim::TimePs) {
    std::uint64_t bytes = 0;
    for (const auto& d : drams_) {
      bytes += d->stats().payload_bytes.value();
    }
    return static_cast<double>(bytes);
  });
  if (drams_.size() > 1) {
    for (std::size_t ch = 0; ch < drams_.size(); ++ch) {
      dram::Controller* d = drams_[ch].get();
      rec.add_series("dram.ch" + std::to_string(ch) + ".payload_bytes",
                     Kind::kDelta, [d](sim::TimePs) {
                       return static_cast<double>(
                           d->stats().payload_bytes.value());
                     });
    }
  }
  if (cfg_.bank_telemetry) {
    // Per-(master, bank) serviced bytes plus the per-master DRAM aggregate
    // sampled at the same probe instant, so the per-window conservation
    // property (sum over banks == port aggregate) is checkable per row.
    const auto banks = static_cast<std::uint32_t>(cfg_.dram.timing.banks);
    for (std::size_t m = 0; m < xbar_->master_count(); ++m) {
      const auto mid = static_cast<axi::MasterId>(m);
      const std::string pname = xbar_->master(m).name();
      rec.add_series("dram.port." + pname + ".bytes", Kind::kDelta,
                     [this, mid](sim::TimePs) {
                       std::uint64_t bytes = 0;
                       for (const auto& d : drams_) {
                         bytes += d->master_bytes(mid);
                       }
                       return static_cast<double>(bytes);
                     });
      for (std::uint32_t b = 0; b < banks; ++b) {
        rec.add_series("dram.bank." + std::to_string(b) + ".port." + pname +
                           ".bytes",
                       Kind::kDelta, [this, mid, b](sim::TimePs) {
                         std::uint64_t bytes = 0;
                         for (const auto& d : drams_) {
                           bytes += d->bank_bytes(mid, b);
                         }
                         return static_cast<double>(bytes);
                       });
      }
    }
  }
  for (std::size_t m = 0; m < xbar_->master_count(); ++m) {
    axi::MasterPort* p = &xbar_->master(m);
    rec.add_series("port." + p->name() + ".bytes", Kind::kDelta,
                   [p](sim::TimePs) {
                     return static_cast<double>(
                         p->stats().bytes_granted.value());
                   });
    rec.add_series("port." + p->name() + ".read_p99_ps", Kind::kGauge,
                   [p](sim::TimePs) {
                     return static_cast<double>(p->stats().read_latency.p99());
                   });
  }
  for (auto& block : qos_blocks_) {
    qos::Regulator* r = block.regulator.get();
    const std::string rp = "qos." + r->config().name + ".";
    rec.add_series(rp + "tokens", Kind::kGauge, [r](sim::TimePs) {
      return static_cast<double>(r->tokens());
    });
    rec.add_series(rp + "budget_bytes", Kind::kGauge, [r](sim::TimePs) {
      return static_cast<double>(r->config().budget_bytes);
    });
    rec.add_series(rp + "throttled_ps", Kind::kDelta, [r](sim::TimePs) {
      return static_cast<double>(r->stats().throttled_ps);
    });
    qos::BandwidthMonitor* mon = block.monitor.get();
    rec.add_series("qos." + mon->config().name + ".bytes", Kind::kDelta,
                   [mon](sim::TimePs) {
                     return static_cast<double>(mon->total_bytes());
                   });
  }
  for (auto& brp : bank_regs_) {
    if (brp == nullptr) {
      continue;
    }
    qos::BankRegulator* br = brp.get();
    rec.add_series("qos." + br->config().name + ".throttled_ps", Kind::kDelta,
                   [br](sim::TimePs) {
                     return static_cast<double>(br->total_throttled_ps());
                   });
  }
  for (auto& tgp : traffic_gens_) {
    wl::TrafficGen* tg = tgp.get();
    rec.add_series("tg." + tg->config().name + ".completed_bytes", Kind::kDelta,
                   [tg](sim::TimePs) {
                     return static_cast<double>(tg->stats().completed_bytes);
                   });
  }
  for (auto& sp : serving_) {
    wl::ServingTenant* t = sp.get();
    const std::string prefix = "serving." + t->spec().name + ".";
    rec.add_series(prefix + "completed", Kind::kDelta, [t](sim::TimePs) {
      return static_cast<double>(t->stats().completed);
    });
    rec.add_series(prefix + "generated", Kind::kDelta, [t](sim::TimePs) {
      return static_cast<double>(t->stats().generated);
    });
    rec.add_series(prefix + "dropped", Kind::kDelta, [t](sim::TimePs) {
      return static_cast<double>(t->stats().dropped);
    });
    rec.add_series(prefix + "queue_depth", Kind::kGauge, [t](sim::TimePs) {
      return static_cast<double>(t->queue_depth());
    });
    rec.add_series(prefix + "p99_ps", Kind::kGauge, [t](sim::TimePs) {
      return static_cast<double>(t->latency().p99());
    });
  }
  for (std::size_t c = 0; c < cluster_->core_count(); ++c) {
    const cpu::CpuCore* core = &cluster_->core(c);
    rec.add_series("core." + core->config().name + ".iterations", Kind::kDelta,
                   [core](sim::TimePs) {
                     return static_cast<double>(core->stats().iterations);
                   });
  }
  if (telemetry::AttributionEngine* attr = telemetry_.attribution()) {
    for (std::size_t m = 0; m < xbar_->master_count(); ++m) {
      const auto victim = static_cast<axi::MasterId>(m);
      rec.add_series("attr." + xbar_->master(m).name() + ".stall_ps",
                     Kind::kDelta, [attr, victim](sim::TimePs) {
                       return static_cast<double>(
                           attr->victim_stall_ps(victim));
                     });
    }
  }
  rec.start();
  return rec;
}

telemetry::DecisionJournal& Soc::enable_journal(std::size_t capacity) {
  telemetry::DecisionJournal& j = telemetry_.enable_journal(capacity);
  for (auto& block : qos_blocks_) {
    block.regulator->set_journal(&j);
  }
  for (auto& br : bank_regs_) {
    if (br != nullptr) {
      br->set_journal(&j);
    }
  }
  if (injector_ != nullptr) {
    injector_->set_journal(&j);
  }
  for (auto& wd : watchdogs_) {
    wd->set_journal(&j);
  }
  return j;
}

void Soc::finish_telemetry() {
  if (telemetry_.tracing()) {
    for (auto& block : qos_blocks_) {
      block.regulator->flush_trace(sim_.now());
    }
  }
  if (telemetry::AttributionEngine* attr = telemetry_.attribution()) {
    attr->finish(sim_.now());
  }
  if (telemetry::TimeSeriesRecorder* ts = telemetry_.timeseries()) {
    ts->finish(sim_.now());
  }
  telemetry_.finish();
}

fault::FaultInjector& Soc::arm_faults(fault::FaultPlan plan,
                                      std::uint64_t run_seed) {
  config_check(injector_ == nullptr, "Soc: faults already armed");
  injector_ = std::make_unique<fault::FaultInjector>(
      sim_, std::move(plan), run_seed, &telemetry_.metrics());
  injector_->wire_interconnect(*xbar_);
  for (std::size_t m = 0; m < xbar_->master_count(); ++m) {
    injector_->wire_port(xbar_->master(m));
  }
  for (std::size_t m = 0; m < qos_blocks_.size(); ++m) {
    injector_->wire_regulator(m, *qos_blocks_[m].regulator);
    injector_->wire_monitor(m, *qos_blocks_[m].monitor);
  }
  for (auto& d : drams_) {
    injector_->wire_dram(*d);
  }
  if (telemetry_.tracing()) {
    injector_->set_trace(telemetry_.trace());
  }
  if (telemetry::DecisionJournal* j = telemetry_.journal()) {
    injector_->set_journal(j);
  }
  return *injector_;
}

qos::RegulatorWatchdog& Soc::add_regulator_watchdog(
    std::size_t master_index, qos::RegulatorWatchdogConfig wd_cfg) {
  QosBlock& block = qos_block(master_index);
  watchdogs_.push_back(std::make_unique<qos::RegulatorWatchdog>(
      sim_, *block.regulator, *block.monitor, std::move(wd_cfg),
      &telemetry_.metrics()));
  if (telemetry_.tracing()) {
    watchdogs_.back()->set_trace(telemetry_.trace());
  }
  if (telemetry::DecisionJournal* j = telemetry_.journal()) {
    watchdogs_.back()->set_journal(j);
  }
  return *watchdogs_.back();
}

qos::BankRegulator& Soc::add_bank_regulator(std::size_t master_index,
                                            qos::BankRegulatorConfig brc) {
  config_check(master_index < xbar_->master_count(),
               "Soc: master index out of range");
  // With channel interleaving a line's bank depends on which channel it
  // routes to, so a single port-side decode would charge the wrong bucket.
  config_check(drams_.size() == 1,
               "Soc: per-bank regulation requires a single DRAM channel");
  if (bank_regs_.size() < xbar_->master_count()) {
    bank_regs_.resize(xbar_->master_count());
  }
  config_check(bank_regs_[master_index] == nullptr,
               "Soc: master " + std::to_string(master_index) +
                   " already has a bank regulator");
  if (brc.name == "bankreg") {
    brc.name = xbar_->master(master_index).name() + ".bankreg";
  }
  bank_regs_[master_index] = std::make_unique<qos::BankRegulator>(
      sim_, std::move(brc), cfg_.dram.timing, cfg_.dram.mapping);
  xbar_->master(master_index).add_gate(*bank_regs_[master_index]);
  if (telemetry::DecisionJournal* j = telemetry_.journal()) {
    bank_regs_[master_index]->set_journal(j);
  }
  return *bank_regs_[master_index];
}

qos::BankRegulator* Soc::bank_regulator(std::size_t master_index) {
  return master_index < bank_regs_.size() ? bank_regs_[master_index].get()
                                          : nullptr;
}

std::size_t Soc::apply_bank_budgets(const qos::BankBudgetSpec& spec) {
  for (const qos::BankBudgetSpec::PortBudget& pb : spec.ports) {
    config_check(pb.port < cfg_.accel_ports,
                 "Soc: bank budget names HP port " + std::to_string(pb.port) +
                     " but the platform has " +
                     std::to_string(cfg_.accel_ports));
    qos::BankRegulatorConfig brc;
    brc.window_ps = spec.window_ps;
    brc.kind = spec.kind;
    brc.max_accumulation_windows = spec.max_accumulation_windows;
    brc.budget_bytes = spec.budgets_for(
        pb, static_cast<std::uint32_t>(cfg_.dram.timing.banks));
    add_bank_regulator(1 + pb.port, std::move(brc));
  }
  return spec.ports.size();
}

qos::DdrcThrottle& Soc::insert_ddrc_throttle(qos::DdrcThrottleConfig tc) {
  config_check(ddrc_throttle_ == nullptr,
               "Soc: DDRC throttle already inserted");
  axi::SlaveIf& inner = channel_router_ != nullptr
                            ? static_cast<axi::SlaveIf&>(*channel_router_)
                            : static_cast<axi::SlaveIf&>(*drams_[0]);
  ddrc_throttle_ =
      std::make_unique<qos::DdrcThrottle>(sim_, std::move(tc), inner);
  xbar_->set_slave(*ddrc_throttle_);
  return *ddrc_throttle_;
}

bool Soc::run_until_cores_finished(sim::TimePs deadline, sim::TimePs poll_ps) {
  while (sim_.now() < deadline) {
    if (cluster_->all_finished()) {
      return true;
    }
    const sim::TimePs step =
        std::min<sim::TimePs>(poll_ps, deadline - sim_.now());
    sim_.run_for(step);
  }
  return cluster_->all_finished();
}

double Soc::dram_bandwidth_bps() const {
  std::uint64_t bytes = 0;
  for (const auto& d : drams_) {
    bytes += d->stats().payload_bytes.value();
  }
  return sim::bytes_per_second(bytes, sim_.now());
}

telemetry::MetricsRegistry& Soc::collect_metrics() {
  telemetry::MetricsRegistry& reg = telemetry_.metrics();
  // Snapshot semantics: reset-then-add keeps counters idempotent across
  // repeated collections while preserving their type in exports.
  const auto set_counter = [&reg](const std::string& name, std::uint64_t v) {
    telemetry::Counter& c = reg.counter(name);
    c.reset();
    c.add(v);
  };
  const auto set_gauge = [&reg](const std::string& name, double v) {
    reg.gauge(name).set(v);
  };

  // DRAM: aggregate plus per-channel hierarchy (dram.ch0.row_hits, ...).
  std::uint64_t reads = 0, writes = 0, payload = 0, bus = 0, hits = 0;
  std::uint64_t acts = 0, conflicts = 0, refreshes = 0;
  double util = 0;
  for (std::size_t ch = 0; ch < drams_.size(); ++ch) {
    const auto& ds = drams_[ch]->stats();
    reads += ds.reads_serviced.value();
    writes += ds.writes_serviced.value();
    payload += ds.payload_bytes.value();
    bus += ds.bus_bytes.value();
    hits += ds.row_hits();
    acts += ds.activations.value();
    conflicts += ds.conflict_precharges.value();
    refreshes += ds.refreshes.value();
    util += drams_[ch]->bus_utilization(sim_.now());
    const std::string prefix = "dram.ch" + std::to_string(ch) + ".";
    set_counter(prefix + "reads", ds.reads_serviced.value());
    set_counter(prefix + "writes", ds.writes_serviced.value());
    set_counter(prefix + "payload_bytes", ds.payload_bytes.value());
    set_counter(prefix + "row_hits", ds.row_hits());
    set_counter(prefix + "activations", ds.activations.value());
    set_gauge(prefix + "bus_utilization",
              drams_[ch]->bus_utilization(sim_.now()));
  }
  set_counter("dram.reads", reads);
  set_counter("dram.writes", writes);
  set_counter("dram.payload_bytes", payload);
  set_counter("dram.bus_bytes", bus);
  set_counter("dram.row_hits", hits);
  set_counter("dram.activations", acts);
  set_counter("dram.conflict_precharges", conflicts);
  set_counter("dram.refreshes", refreshes);
  set_gauge("dram.bus_utilization", util / static_cast<double>(drams_.size()));
  std::uint64_t oob = 0;
  for (const auto& d : drams_) {
    oob += d->mapper().oob_decodes();
  }
  set_counter("dram.oob_decodes", oob);

  if (cfg_.bank_telemetry) {
    const auto banks = static_cast<std::uint32_t>(cfg_.dram.timing.banks);
    for (std::size_t m = 0; m < xbar_->master_count(); ++m) {
      const auto mid = static_cast<axi::MasterId>(m);
      const std::string pname = xbar_->master(m).name();
      std::uint64_t port_total = 0;
      for (const auto& d : drams_) {
        port_total += d->master_bytes(mid);
      }
      set_counter("dram.port." + pname + ".bytes", port_total);
      for (std::uint32_t b = 0; b < banks; ++b) {
        std::uint64_t bytes = 0, cas = 0;
        for (const auto& d : drams_) {
          bytes += d->bank_bytes(mid, b);
          cas += d->bank_cas(mid, b);
        }
        if (bytes == 0 && cas == 0) {
          continue;  // keep the cardinality at touched cells only
        }
        const std::string prefix =
            "dram.bank." + std::to_string(b) + ".port." + pname + ".";
        set_counter(prefix + "bytes", bytes);
        set_counter(prefix + "cas", cas);
      }
    }
  }

  for (std::size_t m = 0; m < xbar_->master_count(); ++m) {
    const axi::MasterPort& p = xbar_->master(m);
    const std::string prefix = "port." + p.name() + ".";
    set_counter(prefix + "txns", p.stats().txns_completed.value());
    set_counter(prefix + "bytes", p.stats().bytes_granted.value());
    set_counter(prefix + "read_bytes", p.stats().read_bytes.value());
    set_counter(prefix + "write_bytes", p.stats().write_bytes.value());
    set_gauge(prefix + "read_mean_ps", p.stats().read_latency.mean());
    set_gauge(prefix + "read_p99_ps",
              static_cast<double>(p.stats().read_latency.p99()));
  }

  for (const auto& block : qos_blocks_) {
    const auto& rs = block.regulator->stats();
    const std::string rp = "qos." + block.regulator->config().name + ".";
    set_counter(rp + "exhausted_windows", rs.exhausted_windows);
    set_counter(rp + "throttled_ps", rs.throttled_ps);
    set_counter(rp + "regulated_bytes", rs.regulated_bytes);
    const std::string mp = "qos." + block.monitor->config().name + ".";
    set_counter(mp + "total_bytes", block.monitor->total_bytes());
    set_counter(mp + "windows_closed", block.monitor->windows_closed());
  }

  for (const auto& br : bank_regs_) {
    if (br == nullptr) {
      continue;
    }
    const std::string rp = "qos." + br->config().name + ".";
    set_counter(rp + "exhausted_windows", br->total_exhausted_windows());
    set_counter(rp + "throttled_ps", br->total_throttled_ps());
    set_counter(rp + "regulated_bytes", br->regulated_bytes());
    for (std::uint32_t b = 0; b < br->banks(); ++b) {
      if (!br->bank_limited(b)) {
        continue;
      }
      const qos::BankRegBankStats& bs = br->bank_stats(b);
      const std::string bp = rp + "bank." + std::to_string(b) + ".";
      set_counter(bp + "exhausted_windows", bs.exhausted_windows);
      set_counter(bp + "throttled_ps", bs.throttled_ps);
      set_counter(bp + "regulated_bytes", bs.regulated_bytes);
    }
  }

  for (const auto& tg : traffic_gens_) {
    const std::string prefix = "tg." + tg->config().name + ".";
    set_counter(prefix + "issued_bytes", tg->stats().issued_bytes);
    set_counter(prefix + "completed_bytes", tg->stats().completed_bytes);
    set_counter(prefix + "transactions", tg->stats().transactions);
  }

  for (const auto& tenant : serving_) {
    const std::string prefix = "serving." + tenant->spec().name + ".";
    const auto& ss = tenant->stats();
    set_counter(prefix + "generated", ss.generated);
    set_counter(prefix + "completed", ss.completed);
    set_counter(prefix + "dropped", ss.dropped);
    set_counter(prefix + "slo_met", ss.slo_met);
    set_counter(prefix + "error_completions", ss.error_completions);
    set_counter(prefix + "issued_bytes", ss.issued_bytes);
    set_counter(prefix + "completed_bytes", ss.completed_bytes);
    set_gauge(prefix + "offered_qps", tenant->offered_qps());
    set_gauge(prefix + "completed_qps", tenant->completed_qps());
    set_gauge(prefix + "queue_depth",
              static_cast<double>(tenant->queue_depth()));
    set_gauge(prefix + "peak_queue_depth",
              static_cast<double>(ss.peak_queue_depth));
    set_gauge(prefix + "p50_ps", static_cast<double>(tenant->latency().p50()));
    set_gauge(prefix + "p99_ps", static_cast<double>(tenant->latency().p99()));
    set_gauge(prefix + "p999_ps",
              static_cast<double>(tenant->latency().p999()));
    // Zero-sample attainment is unavailable, not 100%: the gauge is only
    // published once a request finished, so downstream readers get
    // absence (rendered n/a / null) instead of a fabricated number.
    if (tenant->slo_attainment_available()) {
      set_gauge(prefix + "slo_attainment_pct",
                tenant->slo_attainment() * 100.0);
    }
    telemetry::Histogram& lat = reg.histogram(prefix + "latency_ps");
    lat.reset();
    lat.merge(tenant->latency());
  }

  set_gauge("cluster.l2_hit_rate", cluster_->l2().stats().hit_rate());
  for (std::size_t c = 0; c < cluster_->core_count(); ++c) {
    const cpu::CpuCore& core = cluster_->core(c);
    const std::string prefix = "core." + core.config().name + ".";
    set_counter(prefix + "iterations", core.stats().iterations);
    set_gauge(prefix + "iter_mean_ps", core.stats().iteration_ps.mean());
    set_gauge(prefix + "iter_p99_ps",
              static_cast<double>(core.stats().iteration_ps.p99()));
    set_gauge(prefix + "l1_hit_rate", core.l1().stats().hit_rate());
  }

  if (telemetry::AttributionEngine* attr = telemetry_.attribution()) {
    attr->publish_metrics();
  }

  // Kernel self-profiling.
  set_counter("sim.events_dispatched", sim_.events_dispatched());
  set_counter("sim.ticks", sim_.tick_count());
  set_gauge("sim.max_event_queue",
            static_cast<double>(sim_.max_event_queue()));
  set_counter("sim.wall_ns", sim_.wall_ns());
  set_gauge("sim.wall_s_per_sim_s", sim_.wall_s_per_sim_s());

  // Host profiler (cfg.profile): per-tag CPU attribution plus kernel
  // micro-telemetry. Host-dependent like sim.wall*, so collect_stats()
  // excludes the whole profile.* namespace from the legacy view.
  if (telemetry::HostProfiler* prof = telemetry_.profiler()) {
    prof->record_arena("xbar.txn_pool", xbar_->txn_pool().live(),
                       xbar_->txn_pool().capacity());
    const telemetry::ProfileSnapshot snap = prof->snapshot();
    set_counter("profile.total_cycles", snap.total_cycles);
    set_gauge("profile.coverage", snap.coverage());
    set_counter("profile.oneshot_scheduled", snap.oneshot_scheduled);
    set_counter("profile.recurring_armed", snap.recurring_armed);
    for (const auto& t : snap.tags) {
      set_counter("profile.tag." + t.name + ".count", t.count);
      set_counter("profile.tag." + t.name + ".cycles", t.cycles);
    }
    for (const auto& a : snap.arenas) {
      set_gauge("profile.arena." + a.name + ".peak_live",
                static_cast<double>(a.peak_live));
      set_gauge("profile.arena." + a.name + ".capacity",
                static_cast<double>(a.capacity));
    }
    const auto publish_hist = [&reg](const std::string& name,
                                     const telemetry::Histogram& h) {
      telemetry::Histogram& out = reg.histogram(name);
      out.reset();
      out.merge(h);
    };
    publish_hist("profile.heap_depth", snap.heap_depth);
    publish_hist("profile.run_length", snap.run_length);
    publish_hist("profile.arm_delta_ps", snap.arm_delta_ps);
  }
  return reg;
}

void Soc::collect_stats(sim::StatsRegistry& out) const {
  // Legacy scalar view, derived from the metrics registry so both exports
  // agree; histograms are only visible through the registry. Host-side
  // wall-clock metrics (sim.wall*, profile.*) are excluded: this view must
  // stay bit-identical across runs of the same configuration.
  const_cast<Soc*>(this)->collect_metrics().for_each_scalar(
      [&out](const std::string& name, double value) {
        if (name.rfind("sim.wall", 0) == 0 || name.rfind("profile.", 0) == 0) {
          return;
        }
        out.set(name, value);
      });
}

}  // namespace fgqos::soc
