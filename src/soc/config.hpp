/// \file config.hpp
/// \brief Whole-platform configuration (Zynq UltraScale+-like defaults).
#pragma once

#include <cstdint>
#include <string>

#include "axi/interconnect.hpp"
#include "cpu/core.hpp"
#include "dram/controller.hpp"
#include "qos/bandwidth_monitor.hpp"
#include "qos/regulator.hpp"

namespace fgqos::soc {

/// Platform configuration. Defaults model the topology of a Zynq
/// UltraScale+ class device: a 4-core application cluster (1.2 GHz) with
/// private L1s and a shared 1 MiB L2, four FPGA HP master ports
/// (128-bit @ 300 MHz, 4.8 GB/s each), one shared AXI crossbar and one
/// 64-bit DDR4-2400 channel (19.2 GB/s theoretical peak).
struct SocConfig {
  std::string name = "zynqmp_sim";

  std::uint64_t cpu_mhz = 1200;
  std::uint64_t fabric_mhz = 300;
  std::uint64_t xbar_mhz = 600;

  dram::ControllerConfig dram{};
  /// Number of independent DRAM channels (1 on Zynq-US+-class parts;
  /// larger family members interleave lines across several).
  std::size_t dram_channels = 1;
  /// Channel-interleave granularity.
  std::uint64_t channel_stride_bytes = 4096;
  axi::InterconnectConfig xbar{};
  cpu::ClusterConfig cluster{};

  /// Number of FPGA accelerator (HP) master ports.
  std::size_t accel_ports = 4;

  /// CPU cluster port (master 0 on the crossbar).
  axi::MasterPortConfig cpu_port{
      .name = "cpu",
      .max_outstanding_reads = 16,
      .max_outstanding_writes = 16,
      .request_queue_depth = 16,
      .port_bandwidth_bps = 16e9,
      .request_latency_ps = 30'000,
      .response_latency_ps = 30'000,
      .line_bytes = 64,
      .qos = axi::kQosCritical,
      .critical = true,
  };

  /// Template for the HP ports (masters 1..accel_ports).
  axi::MasterPortConfig accel_port{
      .name = "hp",
      .max_outstanding_reads = 8,
      .max_outstanding_writes = 8,
      .request_queue_depth = 8,
      .port_bandwidth_bps = 4.8e9,
      .request_latency_ps = 50'000,
      .response_latency_ps = 50'000,
      .line_bytes = 64,
      .qos = axi::kQosBestEffort,
      .critical = false,
  };

  /// Instantiate a QoS block (monitor + regulator + register file) on
  /// every master port. Regulators start disabled (transparent).
  bool qos_blocks = true;

  /// Publish per-(bank, master) DRAM accounting: `dram.bank.<b>.port.<m>.*`
  /// metrics, the matching time-series, `dram.oob_decodes`, and the
  /// attribution bank dimension. Off by default so every existing export
  /// stays byte-identical; the controller tracks the counters either way.
  bool bank_telemetry = false;

  /// Attach the host-side hot-path profiler (telemetry::HostProfiler) at
  /// construction, before any component registers attribution tags. Off
  /// by default: disabled profiling costs one predicted branch per
  /// run_until() call and leaves every export byte-identical (CI-gated).
  bool profile = false;
  qos::RegulatorConfig default_regulator{
      .name = "reg",
      .budget_bytes = 4096,
      .window_ps = sim::kPsPerUs,
      .kind = qos::ReplenishKind::kFixedWindow,
      .max_accumulation_windows = 1,
      .enabled = false,
      .gate_reads = true,
      .gate_writes = true,
  };
  qos::MonitorConfig default_monitor{
      .name = "mon",
      .window_ps = sim::kPsPerUs,
      .keep_window_trace = false,
      .count_reads = true,
      .count_writes = true,
  };

  /// Throws ConfigError on inconsistencies.
  void validate() const;

 private:
  void cpu_port_check() const;
};

}  // namespace fgqos::soc
