/// \file soc.hpp
/// \brief The assembled platform: simulator + clocks + fabric + DRAM +
///        CPU cluster + per-port QoS blocks.
///
/// This is the main entry point of the library: construct a Soc from a
/// SocConfig, add CPU kernels and accelerator traffic generators, program
/// QoS through the register files (directly or via qos::QosManager), and
/// run. See examples/quickstart.cpp.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "axi/channel_router.hpp"
#include "axi/interconnect.hpp"
#include "cpu/core.hpp"
#include "dram/controller.hpp"
#include "fault/injector.hpp"
#include "qos/bank_regulator.hpp"
#include "qos/ddrc_throttle.hpp"
#include "qos/regfile.hpp"
#include "qos/regulator_watchdog.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"
#include "soc/config.hpp"
#include "telemetry/hub.hpp"
#include "workload/serving.hpp"
#include "workload/traffic_gen.hpp"

namespace fgqos::soc {

/// Per-port QoS block: monitor + regulator behind a register file.
struct QosBlock {
  std::unique_ptr<qos::Regulator> regulator;
  std::unique_ptr<qos::BandwidthMonitor> monitor;
  std::unique_ptr<qos::QosRegFile> regfile;
};

/// The platform.
class Soc {
 public:
  explicit Soc(SocConfig cfg);

  Soc(const Soc&) = delete;
  Soc& operator=(const Soc&) = delete;

  [[nodiscard]] const SocConfig& config() const { return cfg_; }
  [[nodiscard]] sim::Simulator& sim() { return sim_; }
  [[nodiscard]] sim::TimePs now() const { return sim_.now(); }

  [[nodiscard]] axi::Interconnect& xbar() { return *xbar_; }
  /// Channel \p i's memory controller (most platforms have just one).
  [[nodiscard]] dram::Controller& dram(std::size_t i = 0) {
    return *drams_.at(i);
  }
  [[nodiscard]] const dram::Controller& dram(std::size_t i = 0) const {
    return *drams_.at(i);
  }
  [[nodiscard]] std::size_t dram_channel_count() const {
    return drams_.size();
  }
  [[nodiscard]] cpu::CpuCluster& cluster() { return *cluster_; }

  /// Master port 0 (the CPU cluster's path to memory).
  [[nodiscard]] axi::MasterPort& cpu_port() { return xbar_->master(0); }
  /// Accelerator port \p i in [0, accel_ports).
  [[nodiscard]] axi::MasterPort& accel_port(std::size_t i) {
    return xbar_->master(1 + i);
  }
  [[nodiscard]] std::size_t accel_port_count() const {
    return cfg_.accel_ports;
  }

  /// QoS block of crossbar master \p master_index (0 = CPU, 1.. = HP).
  /// Only available when cfg.qos_blocks.
  [[nodiscard]] QosBlock& qos_block(std::size_t master_index);
  [[nodiscard]] qos::QosRegFile& regfile(std::size_t master_index) {
    return *qos_block(master_index).regfile;
  }

  /// Adds a CPU core running \p kernel.
  cpu::CpuCore& add_core(cpu::CoreConfig cfg,
                         std::unique_ptr<cpu::Kernel> kernel);

  /// Adds a traffic generator on accelerator port \p accel_index.
  wl::TrafficGen& add_traffic_gen(std::size_t accel_index,
                                  wl::TrafficGenConfig cfg);

  /// Adds one request-serving tenant on HP port \p spec.port. The tenant
  /// takes over the port's completion handler, so each serving port is
  /// exclusive: one tenant per port, and no TrafficGen on it (checked).
  /// \p seed is the tenant's op-buffer seed (see serving_tenant_seed).
  wl::ServingTenant& add_serving_tenant(wl::ServingTenantSpec spec,
                                        sim::TimePs duration_ps,
                                        std::uint64_t seed);

  /// Instantiates a whole serving scenario: one tenant per spec entry,
  /// each seeded with serving_tenant_seed(spec.seed, run_seed, index) so
  /// op buffers are byte-identical for equal (spec, run) on any --jobs
  /// schedule. Call before running.
  void add_serving(const wl::ServingSpec& spec, std::uint64_t run_seed);

  [[nodiscard]] std::size_t serving_tenant_count() const {
    return serving_.size();
  }
  [[nodiscard]] wl::ServingTenant& serving_tenant(std::size_t i) {
    return *serving_.at(i);
  }

  /// Inserts a DDRC-level global throttle between the crossbar and the
  /// memory controller (the coarse commercial-knob baseline; EXP11).
  /// Call at most once, before running.
  qos::DdrcThrottle& insert_ddrc_throttle(qos::DdrcThrottleConfig cfg);

  /// Adds a per-bank regulator gating crossbar master \p master_index
  /// (0 = CPU, 1.. = HP), decoding each line with the DRAM channel's
  /// mapping policy. Composes with the port's aggregate QoS block (both
  /// gates must allow). Single-channel platforms only: with channel
  /// interleaving the line's bank depends on which channel it routes to.
  /// At most one per master, added before running.
  qos::BankRegulator& add_bank_regulator(std::size_t master_index,
                                         qos::BankRegulatorConfig cfg);
  /// The per-bank regulator on \p master_index, or nullptr.
  [[nodiscard]] qos::BankRegulator* bank_regulator(std::size_t master_index);

  /// Instantiates one per-bank regulator per spec entry (spec ports index
  /// the HP ports, matching serving specs) with the spec's window/kind and
  /// per-bank budgets. Returns the number of regulators added.
  std::size_t apply_bank_budgets(const qos::BankBudgetSpec& spec);

  // --- fault injection ---------------------------------------------------

  /// Arms \p plan against the whole platform: crossbar response path,
  /// every master port, every QoS block's regulator and monitor, and every
  /// DRAM channel. \p run_seed is the per-run/per-job seed mixed into the
  /// plan's RNG streams. Call at most once, before running; an empty plan
  /// wires nothing and perturbs nothing.
  fault::FaultInjector& arm_faults(fault::FaultPlan plan,
                                   std::uint64_t run_seed);
  /// The armed injector, or nullptr when no faults were armed.
  [[nodiscard]] fault::FaultInjector* faults() { return injector_.get(); }

  /// Attaches a degraded-mode watchdog to master \p master_index's QoS
  /// block (requires cfg.qos_blocks). The watchdog forces the regulator
  /// onto cfg.fallback_budget_bytes whenever the block's monitor feed goes
  /// stale or saturates — the hardening counterpart to arm_faults.
  qos::RegulatorWatchdog& add_regulator_watchdog(
      std::size_t master_index, qos::RegulatorWatchdogConfig cfg);

  /// Runs for \p delta picoseconds.
  void run_for(sim::TimePs delta) { sim_.run_for(delta); }
  /// Runs until absolute time \p t.
  void run_until(sim::TimePs t) { sim_.run_until(t); }

  /// Runs until every bounded-iteration core halted, checking every
  /// \p poll_ps, up to \p deadline. Returns true when all finished.
  bool run_until_cores_finished(sim::TimePs deadline,
                                sim::TimePs poll_ps = 10 * sim::kPsPerUs);

  // --- telemetry ---------------------------------------------------------

  /// The platform's telemetry hub (metrics registry + optional trace
  /// sink + per-port lifecycle tracers).
  [[nodiscard]] telemetry::Hub& telemetry() { return telemetry_; }

  /// The host profiler, or nullptr when cfg.profile is off.
  [[nodiscard]] telemetry::HostProfiler* profiler() {
    return telemetry_.profiler();
  }
  [[nodiscard]] const telemetry::HostProfiler* profiler() const {
    return telemetry_.profiler();
  }

  /// Opens the Chrome-trace sink at \p path and wires every component to
  /// it: ports (per-transaction spans), DRAM channels (CAS bursts, queue
  /// occupancy), QoS blocks (throttle intervals, token credit, window
  /// bandwidth) and traffic generators, plus the simulation-kernel
  /// self-profiling sampler. \p filter selects categories
  /// (see telemetry::parse_categories; "" = everything).
  void open_trace(const std::string& path, const std::string& filter = "");

  /// Attaches per-hop latency histograms to every master port (implied by
  /// open_trace; call directly for lifecycle metrics without a trace).
  void enable_lifecycle_metrics();

  /// Turns on interference attribution: registers every master with the
  /// hub's AttributionEngine and wires the blame hooks into the crossbar,
  /// its ports and every DRAM channel. \p window_ps sets the blame-matrix
  /// accounting window. Call before running (and at most once); order
  /// relative to open_trace() does not matter.
  telemetry::AttributionEngine& enable_attribution(
      sim::TimePs window_ps = 100 * sim::kPsPerUs);
  /// The engine, or nullptr when attribution is disabled.
  [[nodiscard]] telemetry::AttributionEngine* attribution() {
    return telemetry_.attribution();
  }

  /// Turns on windowed time-series capture: creates the hub's recorder
  /// and registers the standard platform series — per-port granted bytes
  /// and running read p99, per-QoS-block token credit / programmed budget
  /// / throttle time / monitored bytes, DRAM payload bytes (aggregate and
  /// per channel), per-core iteration progress, per-generator completed
  /// bytes, and per-victim attribution stall time when attribution is
  /// enabled. Series are admitted through cfg.filter (comma-separated
  /// globs; "" = all). Call AFTER workload setup (cores and traffic
  /// generators present at call time are probed) and at most once; the
  /// recorder is started before returning.
  telemetry::TimeSeriesRecorder& enable_timeseries(
      telemetry::TimeSeriesConfig cfg);
  /// The recorder, or nullptr when time-series capture is disabled.
  [[nodiscard]] telemetry::TimeSeriesRecorder* timeseries() {
    return telemetry_.timeseries();
  }

  /// Turns on the QoS decision journal: creates the hub's journal and
  /// wires every journaling component the platform owns (per-port
  /// regulators, armed fault injector, regulator watchdogs). Components
  /// added later through arm_faults()/add_regulator_watchdog() are wired
  /// at add time; externally-owned controllers (SoftMemguard,
  /// AdaptiveQosController, SlaWatchdog) attach via their own
  /// set_journal(). Call at most once.
  telemetry::DecisionJournal& enable_journal(std::size_t capacity = 65536);
  /// The journal, or nullptr when journaling is disabled.
  [[nodiscard]] telemetry::DecisionJournal* journal() {
    return telemetry_.journal();
  }

  /// Refreshes the hub's registry with a full platform snapshot (DRAM,
  /// ports, QoS, cores, generators, kernel self-profiling) and returns it.
  telemetry::MetricsRegistry& collect_metrics();

  /// Flushes trailing trace spans (still-shut regulator gates, parked
  /// masters) and closes the trace sink. Idempotent; call before reading
  /// the trace file.
  void finish_telemetry();

  /// Dumps platform statistics ("dram.payload_bytes",
  /// "port.cpu.read_p99_ps", ...) into \p out. Legacy view: flattens the
  /// scalar metrics of collect_metrics().
  void collect_stats(sim::StatsRegistry& out) const;

  /// Measured DRAM payload bandwidth since t=0 (bytes/second).
  [[nodiscard]] double dram_bandwidth_bps() const;

 private:
  SocConfig cfg_;
  sim::Simulator sim_;
  telemetry::Hub telemetry_;
  sim::ClockDomain cpu_clk_;
  sim::ClockDomain fabric_clk_;
  sim::ClockDomain xbar_clk_;
  sim::ClockDomain dram_clk_;
  std::unique_ptr<axi::Interconnect> xbar_;
  std::vector<std::unique_ptr<dram::Controller>> drams_;
  std::unique_ptr<axi::ChannelRouter> channel_router_;
  std::unique_ptr<qos::DdrcThrottle> ddrc_throttle_;
  std::unique_ptr<cpu::CpuCluster> cluster_;
  std::vector<QosBlock> qos_blocks_;
  std::vector<std::unique_ptr<wl::TrafficGen>> traffic_gens_;
  std::vector<std::unique_ptr<wl::ServingTenant>> serving_;
  std::unique_ptr<fault::FaultInjector> injector_;
  std::vector<std::unique_ptr<qos::RegulatorWatchdog>> watchdogs_;
  /// Per-master per-bank regulators, indexed by crossbar master (sparse:
  /// nullptr where none was added).
  std::vector<std::unique_ptr<qos::BankRegulator>> bank_regs_;
};

}  // namespace fgqos::soc
