#include "util/assert.hpp"

#include <cstdio>
#include <cstdlib>

namespace fgqos::util {

void assert_fail(std::string_view cond, std::string_view file, int line,
                 std::string_view msg) {
  std::fprintf(stderr, "FGQOS_ASSERT failed: %.*s\n  at %.*s:%d\n  %.*s\n",
               static_cast<int>(cond.size()), cond.data(),
               static_cast<int>(file.size()), file.data(), line,
               static_cast<int>(msg.size()), msg.data());
  std::fflush(stderr);
  std::abort();
}

}  // namespace fgqos::util
