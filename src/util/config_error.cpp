#include "util/config_error.hpp"

namespace fgqos {

void config_check(bool ok, const std::string& message) {
  if (!ok) {
    throw ConfigError(message);
  }
}

}  // namespace fgqos
