#include "util/cli.hpp"

#include <cerrno>
#include <cmath>
#include <cstdlib>

#include "util/config_error.hpp"

namespace fgqos::util {

namespace {

/// Silently keeping only the last of "--budget 4 --budget 8" hides typos
/// in scripted sweeps; every option is single-valued, so repeats are
/// always a mistake.
void insert_unique(std::map<std::string, std::string>& values,
                   const std::string& key, std::string value) {
  config_check(values.emplace(key, std::move(value)).second,
               "ArgParser: duplicate option --" + key);
}

}  // namespace

ArgParser::ArgParser(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    std::string key = arg.substr(2);
    const std::size_t eq = key.find('=');
    config_check(!key.empty() && eq != 0, "ArgParser: empty option name");
    if (eq != std::string::npos) {
      insert_unique(values_, key.substr(0, eq), key.substr(eq + 1));
      continue;
    }
    // "--key value" when the next token is not an option; bare flag else.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      insert_unique(values_, key, argv[++i]);
    } else {
      insert_unique(values_, key, "");
    }
  }
}

bool ArgParser::has(const std::string& key) const {
  used_[key] = true;
  return values_.count(key) != 0;
}

std::string ArgParser::get(const std::string& key,
                           const std::string& def) const {
  used_[key] = true;
  auto it = values_.find(key);
  return it == values_.end() ? def : it->second;
}

std::int64_t ArgParser::get_int(const std::string& key,
                                std::int64_t def) const {
  const std::string v = get(key);
  if (v.empty() && !has(key)) {
    return def;
  }
  if (v.empty()) {
    return def;
  }
  char* end = nullptr;
  errno = 0;
  const long long parsed = std::strtoll(v.c_str(), &end, 0);
  config_check(end != nullptr && *end == '\0',
               "ArgParser: --" + key + " expects an integer, got '" + v + "'");
  config_check(errno != ERANGE,
               "ArgParser: --" + key + " value out of range: '" + v + "'");
  return parsed;
}

double ArgParser::get_double(const std::string& key, double def) const {
  const std::string v = get(key);
  if (v.empty()) {
    return def;
  }
  char* end = nullptr;
  errno = 0;
  const double parsed = std::strtod(v.c_str(), &end);
  config_check(end != nullptr && *end == '\0',
               "ArgParser: --" + key + " expects a number, got '" + v + "'");
  // ERANGE also flags underflow (tiny values parse to a subnormal or 0,
  // which is fine); only overflow to +/-HUGE_VAL is a real error.
  config_check(errno != ERANGE || std::fabs(parsed) != HUGE_VAL,
               "ArgParser: --" + key + " value out of range: '" + v + "'");
  return parsed;
}

bool ArgParser::get_bool(const std::string& key, bool def) const {
  if (!has(key)) {
    return def;
  }
  const std::string v = get(key);
  if (v.empty() || v == "1" || v == "true" || v == "yes" || v == "on") {
    return true;
  }
  if (v == "0" || v == "false" || v == "no" || v == "off") {
    return false;
  }
  throw ConfigError("ArgParser: --" + key + " expects a boolean, got '" + v +
                    "'");
}

std::vector<std::string> ArgParser::unused_keys() const {
  std::vector<std::string> out;
  for (const auto& [k, v] : values_) {
    if (!used_.count(k)) {
      out.push_back(k);
    }
  }
  return out;
}

}  // namespace fgqos::util
