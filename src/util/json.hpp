/// \file json.hpp
/// \brief Minimal JSON document model and recursive-descent parser.
///
/// Used to round-trip-validate the telemetry exporters (Chrome trace and
/// metrics snapshots) in tests and tools without an external dependency.
/// Supports the full JSON grammar (RFC 8259) except that numbers are
/// stored as double and \uXXXX escapes outside the BMP are kept as the
/// two raw surrogate code units encoded in UTF-8.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace fgqos::util {

/// One parsed JSON value (recursive sum type).
class JsonValue {
 public:
  enum class Kind : std::uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject,
  };

  /// Parses \p text as one JSON document; throws ConfigError (with byte
  /// offset) on malformed input or trailing garbage.
  static JsonValue parse(const std::string& text);

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_bool() const { return kind_ == Kind::kBool; }
  [[nodiscard]] bool is_number() const { return kind_ == Kind::kNumber; }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::kString; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::kObject; }

  /// Typed accessors; throw ConfigError on kind mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  /// True when the literal was a plain non-negative integer (no sign,
  /// fraction or exponent) that fits a uint64 — kept exactly, because
  /// as_number()'s double loses precision above 2^53.
  [[nodiscard]] bool is_uint64() const { return has_u64_; }
  /// Exact value of such a literal; throws ConfigError when !is_uint64().
  [[nodiscard]] std::uint64_t as_uint64() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const std::vector<JsonValue>& as_array() const;
  [[nodiscard]] const std::map<std::string, JsonValue>& as_object() const;

  /// Object member access; throws ConfigError when absent or not an object.
  [[nodiscard]] const JsonValue& at(const std::string& key) const;
  [[nodiscard]] bool contains(const std::string& key) const;
  /// Array element access; throws ConfigError when out of range.
  [[nodiscard]] const JsonValue& at(std::size_t index) const;
  /// Array / object element count (0 otherwise).
  [[nodiscard]] std::size_t size() const;

 private:
  friend class JsonParser;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  bool has_u64_ = false;
  double num_ = 0.0;
  std::uint64_t u64_ = 0;
  std::string str_;
  std::vector<JsonValue> arr_;
  std::map<std::string, JsonValue> obj_;
};

/// Escapes \p s for embedding inside a JSON string literal (no quotes
/// added). Shared by every JSON emitter in the codebase.
std::string json_escape(const std::string& s);

}  // namespace fgqos::util
