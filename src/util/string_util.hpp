/// \file string_util.hpp
/// \brief Small string helpers shared by reporting code.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace fgqos::util {

/// Formats a byte/second rate with a binary-ish engineering suffix,
/// e.g. 1536000000 -> "1536.0 MB/s". MB here is 1e6 bytes (the convention
/// memory-bandwidth papers use).
std::string format_bandwidth(double bytes_per_second);

/// Formats a picosecond duration with an adaptive unit (ps/ns/us/ms/s).
std::string format_time_ps(std::uint64_t ps);

/// Formats a byte count with a power-of-two suffix (B/KiB/MiB/GiB).
std::string format_bytes(std::uint64_t bytes);

/// Splits \p s on \p sep; empty fields are preserved.
std::vector<std::string> split(const std::string& s, char sep);

/// printf-style float with fixed decimals, e.g. format_fixed(3.14159, 2)
/// == "3.14".
std::string format_fixed(double v, int decimals);

/// Shell-style glob match: '*' matches any run of characters (including
/// none), '?' matches exactly one; everything else is literal. Matches the
/// whole of \p text.
bool glob_match(const std::string& pattern, const std::string& text);

/// True when \p text matches any glob in the comma-separated \p globs.
/// An empty list (or one consisting only of empty fields) matches
/// everything — mirroring the trace-filter convention where "" selects
/// all categories.
bool glob_match_any(const std::string& globs, const std::string& text);

}  // namespace fgqos::util
