#include "util/json.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>

#include "util/config_error.hpp"

namespace fgqos::util {

namespace {

void append_utf8(std::string& out, unsigned code) {
  if (code < 0x80) {
    out.push_back(static_cast<char>(code));
  } else if (code < 0x800) {
    out.push_back(static_cast<char>(0xC0 | (code >> 6)));
    out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
  } else {
    out.push_back(static_cast<char>(0xE0 | (code >> 12)));
    out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
  }
}

}  // namespace

/// Single-pass recursive-descent parser over a borrowed string.
class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue run() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing characters after JSON document");
    }
    return v;
  }

 private:
  static constexpr int kMaxDepth = 200;

  [[noreturn]] void fail(const std::string& what) const {
    throw ConfigError("JSON parse error at byte " + std::to_string(pos_) +
                      ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') {
        break;
      }
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
    }
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    std::size_t n = 0;
    while (lit[n] != '\0') {
      ++n;
    }
    if (text_.compare(pos_, n, lit) != 0) {
      return false;
    }
    pos_ += n;
    return true;
  }

  JsonValue parse_value() {
    if (++depth_ > kMaxDepth) {
      fail("nesting too deep");
    }
    skip_ws();
    JsonValue v;
    switch (peek()) {
      case '{': v = parse_object(); break;
      case '[': v = parse_array(); break;
      case '"':
        v.kind_ = JsonValue::Kind::kString;
        v.str_ = parse_string();
        break;
      case 't':
        if (!consume_literal("true")) {
          fail("bad literal");
        }
        v.kind_ = JsonValue::Kind::kBool;
        v.bool_ = true;
        break;
      case 'f':
        if (!consume_literal("false")) {
          fail("bad literal");
        }
        v.kind_ = JsonValue::Kind::kBool;
        v.bool_ = false;
        break;
      case 'n':
        if (!consume_literal("null")) {
          fail("bad literal");
        }
        v.kind_ = JsonValue::Kind::kNull;
        break;
      default: v = parse_number(); break;
    }
    --depth_;
    return v;
  }

  JsonValue parse_object() {
    JsonValue v;
    v.kind_ = JsonValue::Kind::kObject;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.obj_[std::move(key)] = parse_value();
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue parse_array() {
    JsonValue v;
    v.kind_ = JsonValue::Kind::kArray;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.arr_.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) {
        fail("unterminated string");
      }
      const char c = text_[pos_++];
      if (c == '"') {
        return out;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("raw control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) {
        fail("unterminated escape");
      }
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': append_utf8(out, parse_hex4()); break;
        default: fail("bad escape character");
      }
    }
  }

  unsigned parse_hex4() {
    if (pos_ + 4 > text_.size()) {
      fail("truncated \\u escape");
    }
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      code <<= 4;
      if (c >= '0' && c <= '9') {
        code |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        code |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        code |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        fail("bad hex digit in \\u escape");
      }
    }
    return code;
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') {
      ++pos_;
    }
    if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
      fail("bad number");
    }
    auto digits = [&] {
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    };
    digits();
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        fail("bad fraction");
      }
      digits();
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        fail("bad exponent");
      }
      digits();
    }
    JsonValue v;
    v.kind_ = JsonValue::Kind::kNumber;
    v.num_ = std::strtod(text_.c_str() + start, nullptr);
    // Exact sidecar for plain unsigned-integer literals: num_ alone would
    // silently round values above 2^53 (e.g. 64-bit fault-plan seeds).
    const std::string token = text_.substr(start, pos_ - start);
    if (token.find_first_not_of("0123456789") == std::string::npos &&
        !token.empty() && token.size() <= 20) {
      errno = 0;
      char* end = nullptr;
      const unsigned long long u = std::strtoull(token.c_str(), &end, 10);
      if (errno != ERANGE && end != nullptr && *end == '\0') {
        v.u64_ = u;
        v.has_u64_ = true;
      }
    }
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

JsonValue JsonValue::parse(const std::string& text) {
  return JsonParser(text).run();
}

bool JsonValue::as_bool() const {
  config_check(kind_ == Kind::kBool, "JsonValue: not a bool");
  return bool_;
}

double JsonValue::as_number() const {
  config_check(kind_ == Kind::kNumber, "JsonValue: not a number");
  return num_;
}

std::uint64_t JsonValue::as_uint64() const {
  config_check(has_u64_, "JsonValue: not an exact unsigned integer");
  return u64_;
}

const std::string& JsonValue::as_string() const {
  config_check(kind_ == Kind::kString, "JsonValue: not a string");
  return str_;
}

const std::vector<JsonValue>& JsonValue::as_array() const {
  config_check(kind_ == Kind::kArray, "JsonValue: not an array");
  return arr_;
}

const std::map<std::string, JsonValue>& JsonValue::as_object() const {
  config_check(kind_ == Kind::kObject, "JsonValue: not an object");
  return obj_;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  const auto& o = as_object();
  auto it = o.find(key);
  config_check(it != o.end(), "JsonValue: missing key '" + key + "'");
  return it->second;
}

bool JsonValue::contains(const std::string& key) const {
  return kind_ == Kind::kObject && obj_.count(key) != 0;
}

const JsonValue& JsonValue::at(std::size_t index) const {
  const auto& a = as_array();
  config_check(index < a.size(), "JsonValue: array index out of range");
  return a[index];
}

std::size_t JsonValue::size() const {
  if (kind_ == Kind::kArray) {
    return arr_.size();
  }
  if (kind_ == Kind::kObject) {
    return obj_.size();
  }
  return 0;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace fgqos::util
