/// \file config_error.hpp
/// \brief Exception type for user-facing configuration mistakes.
#pragma once

#include <stdexcept>
#include <string>

namespace fgqos {

/// Thrown when a user-supplied configuration (SoC topology, QoS budget,
/// DRAM timing, workload parameters) is inconsistent or out of range.
/// Internal invariant violations use FGQOS_ASSERT instead.
class ConfigError : public std::runtime_error {
 public:
  explicit ConfigError(const std::string& what_arg)
      : std::runtime_error(what_arg) {}
};

/// Throws ConfigError with \p message when \p ok is false.
void config_check(bool ok, const std::string& message);

}  // namespace fgqos
