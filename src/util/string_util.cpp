#include "util/string_util.hpp"

#include <cstdio>

namespace fgqos::util {

std::string format_bandwidth(double bytes_per_second) {
  char buf[64];
  if (bytes_per_second >= 1e9) {
    std::snprintf(buf, sizeof buf, "%.2f GB/s", bytes_per_second / 1e9);
  } else if (bytes_per_second >= 1e6) {
    std::snprintf(buf, sizeof buf, "%.1f MB/s", bytes_per_second / 1e6);
  } else if (bytes_per_second >= 1e3) {
    std::snprintf(buf, sizeof buf, "%.1f KB/s", bytes_per_second / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%.0f B/s", bytes_per_second);
  }
  return buf;
}

std::string format_time_ps(std::uint64_t ps) {
  char buf[64];
  const auto v = static_cast<double>(ps);
  if (ps < 1000) {
    std::snprintf(buf, sizeof buf, "%llu ps",
                  static_cast<unsigned long long>(ps));
  } else if (ps < 1000ull * 1000) {
    std::snprintf(buf, sizeof buf, "%.2f ns", v / 1e3);
  } else if (ps < 1000ull * 1000 * 1000) {
    std::snprintf(buf, sizeof buf, "%.2f us", v / 1e6);
  } else if (ps < 1000ull * 1000 * 1000 * 1000) {
    std::snprintf(buf, sizeof buf, "%.2f ms", v / 1e9);
  } else {
    std::snprintf(buf, sizeof buf, "%.3f s", v / 1e12);
  }
  return buf;
}

std::string format_bytes(std::uint64_t bytes) {
  char buf[64];
  const auto v = static_cast<double>(bytes);
  if (bytes < 1024) {
    std::snprintf(buf, sizeof buf, "%llu B",
                  static_cast<unsigned long long>(bytes));
  } else if (bytes < 1024ull * 1024) {
    std::snprintf(buf, sizeof buf, "%.1f KiB", v / 1024.0);
  } else if (bytes < 1024ull * 1024 * 1024) {
    std::snprintf(buf, sizeof buf, "%.1f MiB", v / (1024.0 * 1024));
  } else {
    std::snprintf(buf, sizeof buf, "%.2f GiB", v / (1024.0 * 1024 * 1024));
  }
  return buf;
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(sep, start);
    if (pos == std::string::npos) {
      out.push_back(s.substr(start));
      return out;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string format_fixed(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
  return buf;
}

bool glob_match(const std::string& pattern, const std::string& text) {
  // Iterative two-pointer matcher with one backtrack point per '*'
  // (linear in practice; no recursion, no allocation).
  std::size_t p = 0, t = 0;
  std::size_t star = std::string::npos, mark = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '?' || pattern[p] == text[t])) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      mark = t;
    } else if (star != std::string::npos) {
      p = star + 1;
      t = ++mark;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') {
    ++p;
  }
  return p == pattern.size();
}

bool glob_match_any(const std::string& globs, const std::string& text) {
  bool any_pattern = false;
  for (const std::string& g : split(globs, ',')) {
    if (g.empty()) {
      continue;
    }
    any_pattern = true;
    if (glob_match(g, text)) {
      return true;
    }
  }
  return !any_pattern;  // empty filter selects everything
}

}  // namespace fgqos::util
