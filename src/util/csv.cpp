#include "util/csv.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <ostream>

#include "util/config_error.hpp"

namespace fgqos::util {
namespace {

std::string format_double(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", v);
    return buf;
  }
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) {
    return s;
  }
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') {
      out += "\"\"";
    } else {
      out += c;
    }
  }
  out += '"';
  return out;
}

}  // namespace

std::string cell_to_string(const Cell& cell) {
  return std::visit(
      [](const auto& v) -> std::string {
        using T = std::decay_t<decltype(v)>;
        if constexpr (std::is_same_v<T, std::string>) {
          return v;
        } else if constexpr (std::is_same_v<T, double>) {
          return format_double(v);
        } else {
          return std::to_string(v);
        }
      },
      cell);
}

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  config_check(!header_.empty(), "Table: header must not be empty");
}

void Table::add_row(std::vector<Cell> row) {
  config_check(row.size() == header_.size(),
               "Table: row arity does not match header");
  rows_.push_back(std::move(row));
}

void Table::write_csv(std::ostream& os) const {
  for (std::size_t i = 0; i < header_.size(); ++i) {
    os << (i ? "," : "") << csv_escape(header_[i]);
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      os << (i ? "," : "") << csv_escape(cell_to_string(row[i]));
    }
    os << '\n';
  }
}

void Table::write_pretty(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t i = 0; i < header_.size(); ++i) {
    width[i] = header_[i].size();
  }
  std::vector<std::vector<std::string>> rendered;
  rendered.reserve(rows_.size());
  for (const auto& row : rows_) {
    std::vector<std::string> r;
    r.reserve(row.size());
    for (std::size_t i = 0; i < row.size(); ++i) {
      r.push_back(cell_to_string(row[i]));
      width[i] = std::max(width[i], r.back().size());
    }
    rendered.push_back(std::move(r));
  }
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      os << (i ? "  " : "") << cells[i]
         << std::string(width[i] - cells[i].size(), ' ');
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t w : width) {
    total += w;
  }
  total += 2 * (width.size() - 1);
  os << std::string(total, '-') << '\n';
  for (const auto& r : rendered) {
    emit(r);
  }
}

void Table::print() const { write_pretty(std::cout); }

void Table::save_csv(const std::string& path) const {
  std::ofstream os(path);
  config_check(static_cast<bool>(os), "Table: cannot open " + path);
  write_csv(os);
  config_check(static_cast<bool>(os), "Table: write failed for " + path);
}

}  // namespace fgqos::util
