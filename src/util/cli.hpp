/// \file cli.hpp
/// \brief Tiny --key=value / --flag command-line parser for the tools.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace fgqos::util {

/// Parses `--key=value`, `--key value` and bare `--flag` arguments.
/// Unknown positional arguments are collected separately.
class ArgParser {
 public:
  /// Parses argv; throws ConfigError on malformed input ("--" prefix with
  /// empty key, or the same option given twice).
  ArgParser(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& key) const;

  /// Returns the value, or \p def when absent. A bare flag reads as "".
  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& def = "") const;

  /// Typed getters; throw ConfigError when present but unparsable.
  [[nodiscard]] std::int64_t get_int(const std::string& key,
                                     std::int64_t def) const;
  [[nodiscard]] double get_double(const std::string& key, double def) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool def) const;

  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }
  /// Keys that were never read via has()/get*(); used to reject typos.
  [[nodiscard]] std::vector<std::string> unused_keys() const;

 private:
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> used_;
  std::vector<std::string> positional_;
};

}  // namespace fgqos::util
