/// \file assert.hpp
/// \brief Always-on invariant checking for the fgqos library.
///
/// Simulation correctness depends on internal invariants (FIFO occupancy,
/// token-bucket non-negativity, DRAM timing windows, ...). Violations are
/// programming errors, not recoverable conditions, so FGQOS_ASSERT aborts
/// with a source location and message in every build type.
#pragma once

#include <cstdint>
#include <string_view>

namespace fgqos::util {

/// Terminates the process after printing the failed condition, the source
/// location and an optional message. Never returns.
[[noreturn]] void assert_fail(std::string_view cond, std::string_view file,
                              int line, std::string_view msg);

}  // namespace fgqos::util

/// Always-active assertion. \p cond must be side-effect free.
#define FGQOS_ASSERT(cond, msg)                                        \
  do {                                                                 \
    if (!(cond)) [[unlikely]] {                                        \
      ::fgqos::util::assert_fail(#cond, __FILE__, __LINE__, (msg));    \
    }                                                                  \
  } while (false)

/// Debug-build-only assertion: compiled out under NDEBUG (Release /
/// RelWithDebInfo). For invariants that are worth a bugcheck while
/// developing but too hot — or deliberately tolerated with a telemetry
/// residual — in optimized builds.
#ifdef NDEBUG
#define FGQOS_DEBUG_ASSERT(cond, msg) \
  do {                                \
  } while (false)
#else
#define FGQOS_DEBUG_ASSERT(cond, msg) FGQOS_ASSERT(cond, msg)
#endif
