/// \file csv.hpp
/// \brief Minimal CSV / aligned-table emitters used by benches and examples.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace fgqos::util {

/// One table cell: string, integer or floating-point value.
using Cell = std::variant<std::string, std::int64_t, std::uint64_t, double>;

/// Renders a cell as text. Doubles use up to 6 significant digits and drop
/// a trailing ".0" only when the value is integral.
std::string cell_to_string(const Cell& cell);

/// Accumulates rows and writes them either as CSV or as a human-readable
/// aligned table (the format the bench binaries print to stdout).
class Table {
 public:
  /// Creates a table with a fixed header; every later row must have the
  /// same number of cells.
  explicit Table(std::vector<std::string> header);

  /// Appends one row. Throws ConfigError if the arity differs from the
  /// header.
  void add_row(std::vector<Cell> row);

  /// Number of data rows currently stored.
  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

  /// Writes `header\nrow\n...` with comma separation and minimal quoting
  /// (cells containing commas or quotes are double-quoted).
  void write_csv(std::ostream& os) const;

  /// Writes a column-aligned table with a separator rule under the header.
  void write_pretty(std::ostream& os) const;

  /// Convenience: write_pretty to stdout.
  void print() const;

  /// Writes the CSV form to \p path. Throws ConfigError on I/O failure.
  void save_csv(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<Cell>> rows_;
};

}  // namespace fgqos::util
