#include "telemetry/lifecycle.hpp"

#include <cstdio>

namespace fgqos::telemetry {

namespace {

/// Stamps may be missing (0) when a transaction bypassed a stage; clamp
/// instead of underflowing.
std::uint64_t hop(sim::TimePs from, sim::TimePs to) {
  return to > from ? to - from : 0;
}

}  // namespace

TxnLifecycleTracer::TxnLifecycleTracer(MetricsRegistry& metrics,
                                       std::string port_name)
    : name_(std::move(port_name)),
      gate_(metrics.histogram("port." + name_ + ".hop.gate_ps")),
      xbar_(metrics.histogram("port." + name_ + ".hop.xbar_ps")),
      dram_queue_(metrics.histogram("port." + name_ + ".hop.dram_queue_ps")),
      dram_service_(
          metrics.histogram("port." + name_ + ".hop.dram_service_ps")),
      response_(metrics.histogram("port." + name_ + ".hop.response_ps")),
      total_(metrics.histogram("port." + name_ + ".hop.total_ps")) {}

void TxnLifecycleTracer::set_trace(TraceWriter* writer) {
  trace_ = writer;
  track_ = TrackId{};
  if (trace_ != nullptr) {
    track_ = trace_->track(Cat::kPort, name_);
    if (!track_.valid()) {
      trace_ = nullptr;  // category filtered out
    }
  }
}

void TxnLifecycleTracer::on_issue(const axi::Transaction&, sim::TimePs) {}

void TxnLifecycleTracer::on_grant(const axi::LineRequest&, sim::TimePs) {}

void TxnLifecycleTracer::on_complete(const axi::Transaction& txn,
                                     sim::TimePs) {
  const std::uint64_t gate = hop(txn.created, txn.granted);
  const std::uint64_t xbar = hop(txn.granted, txn.dram_enqueued);
  const std::uint64_t dq = hop(txn.dram_enqueued, txn.dram_service_start);
  const std::uint64_t svc =
      hop(txn.dram_service_start, txn.dram_service_end);
  const std::uint64_t resp = hop(txn.dram_service_end, txn.completed);
  gate_.record(gate);
  xbar_.record(xbar);
  dram_queue_.record(dq);
  dram_service_.record(svc);
  response_.record(resp);
  total_.record(hop(txn.created, txn.completed));

  if (trace_ != nullptr) {
    // The whole span is emitted at completion (timestamps lie in the
    // past; viewers sort by ts), so aborted/in-flight transactions never
    // leave unbalanced events.
    trace_->async_begin(track_, name_.c_str(), txn.id, txn.created);
    char args[256];
    std::snprintf(args, sizeof args,
                  "{\"dir\":\"%s\",\"bytes\":%u,\"gate_ns\":%.3f,"
                  "\"xbar_ns\":%.3f,\"dram_queue_ns\":%.3f,"
                  "\"dram_service_ns\":%.3f,\"response_ns\":%.3f}",
                  txn.dir == axi::Dir::kRead ? "rd" : "wr", txn.bytes,
                  static_cast<double>(gate) / 1e3,
                  static_cast<double>(xbar) / 1e3,
                  static_cast<double>(dq) / 1e3,
                  static_cast<double>(svc) / 1e3,
                  static_cast<double>(resp) / 1e3);
    trace_->async_end(track_, name_.c_str(), txn.id, txn.completed, args);
  }
}

}  // namespace fgqos::telemetry
