#include "telemetry/timeseries.hpp"

#include <charconv>
#include <cmath>
#include <fstream>
#include <utility>

#include "telemetry/manifest.hpp"
#include "util/config_error.hpp"
#include "util/json.hpp"
#include "util/string_util.hpp"

namespace fgqos::telemetry {

namespace {

/// Shortest representation that round-trips the exact double (same
/// contract as the metrics registry: exports are determinism goldens).
void write_number(std::ostream& os, double v) {
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  os.write(buf, res.ptr - buf);
}

const char* kind_name(TimeSeriesRecorder::Kind k) {
  return k == TimeSeriesRecorder::Kind::kGauge ? "gauge" : "delta";
}

}  // namespace

TimeSeriesRecorder::TimeSeriesRecorder(sim::Simulator& sim,
                                       TimeSeriesConfig cfg)
    : sim_(sim), cfg_(std::move(cfg)) {
  config_check(cfg_.window_ps > 0,
               "TimeSeriesRecorder: window_ps must be positive");
  config_check(cfg_.capacity > 0,
               "TimeSeriesRecorder: capacity must be positive");
  rollover_event_ = sim_.make_recurring_event(
      [this](std::uint64_t epoch) { on_rollover(epoch); },
      sim_.profile_tag("telemetry.timeseries"));
}

bool TimeSeriesRecorder::admits(const std::string& name) const {
  return util::glob_match_any(cfg_.filter, name);
}

bool TimeSeriesRecorder::add_series(const std::string& name, Kind kind,
                                    ProbeFn probe) {
  config_check(!started_, "TimeSeriesRecorder: add_series after start");
  config_check(!name.empty(), "TimeSeriesRecorder: empty series name");
  config_check(static_cast<bool>(probe),
               "TimeSeriesRecorder: null probe for '" + name + "'");
  if (!admits(name)) {
    return false;
  }
  names_.push_back(name);
  kinds_.push_back(kind);
  probes_.push_back(std::move(probe));
  prev_.push_back(0.0);
  summaries_.emplace_back();
  return true;
}

void TimeSeriesRecorder::start() {
  config_check(!started_, "TimeSeriesRecorder: started twice");
  started_ = true;
  if (names_.empty()) {
    return;  // nothing selected: never touches the event queue
  }
  starts_.assign(cfg_.capacity, 0);
  ends_.assign(cfg_.capacity, 0);
  values_.assign(cfg_.capacity * names_.size(), 0.0);
  window_start_ = sim_.now();
  // Seed kDelta baselines so the first window reports growth since start,
  // not growth since time zero.
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (kinds_[i] == Kind::kDelta) {
      prev_[i] = probes_[i](window_start_);
    }
  }
  sim_.schedule_recurring(rollover_event_, window_start_ + cfg_.window_ps,
                          epoch_);
}

void TimeSeriesRecorder::on_rollover(std::uint64_t epoch) {
  if (epoch != epoch_ || finished_) {
    return;  // stale arm from before a finish()
  }
  capture(sim_.now());
  sim_.schedule_recurring(rollover_event_, sim_.now() + cfg_.window_ps,
                          epoch_);
}

void TimeSeriesRecorder::finish(sim::TimePs now) {
  if (!started_ || finished_ || names_.empty()) {
    finished_ = true;
    return;
  }
  finished_ = true;
  ++epoch_;  // invalidate the in-flight rollover arm
  if (now > window_start_) {
    capture(now);  // tail window of a horizon that does not divide window_ps
  }
}

void TimeSeriesRecorder::capture(sim::TimePs now) {
  std::size_t slot;
  if (held_ < cfg_.capacity) {
    slot = ring_slot(held_);
    ++held_;
  } else {
    slot = head_;
    head_ = (head_ + 1) % cfg_.capacity;
    ++dropped_;
  }
  starts_[slot] = window_start_;
  ends_[slot] = now;
  const std::size_t n = names_.size();
  for (std::size_t i = 0; i < n; ++i) {
    const double cur = probes_[i](now);
    double v = cur;
    if (kinds_[i] == Kind::kDelta) {
      v = cur - prev_[i];
      prev_[i] = cur;
    }
    values_[slot * n + i] = v;
    summaries_[i].record(
        static_cast<std::uint64_t>(std::llround(std::max(0.0, v))));
  }
  ++sampled_;
  window_start_ = now;
}

std::vector<TimeSeriesRecorder::Sample> TimeSeriesRecorder::samples(
    std::size_t index) const {
  config_check(index < names_.size(),
               "TimeSeriesRecorder: series index out of range");
  std::vector<Sample> out;
  out.reserve(held_);
  const std::size_t n = names_.size();
  for (std::size_t w = 0; w < held_; ++w) {
    const std::size_t slot = ring_slot(w);
    out.push_back({starts_[slot], ends_[slot], values_[slot * n + index]});
  }
  return out;
}

void TimeSeriesRecorder::write_csv(std::ostream& os, bool header,
                                   const std::string& row_prefix,
                                   const std::string& header_prefix) const {
  if (header) {
    os << header_prefix << "series,window,start_ps,end_ps,value\n";
  }
  const std::size_t n = names_.size();
  for (std::size_t w = 0; w < held_; ++w) {
    const std::size_t slot = ring_slot(w);
    // Window numbering is global (dropped windows keep their indices) so
    // that rows stay identifiable after ring eviction.
    const std::uint64_t window = dropped_ + w;
    for (std::size_t i = 0; i < n; ++i) {
      os << row_prefix << names_[i] << "," << window << "," << starts_[slot]
         << "," << ends_[slot] << ",";
      write_number(os, values_[slot * n + i]);
      os << "\n";
    }
  }
}

void TimeSeriesRecorder::save_csv(const std::string& path,
                                  const RunManifest* manifest) const {
  std::ofstream os(path);
  config_check(os.good(), "TimeSeriesRecorder: cannot write " + path);
  if (manifest != nullptr) {
    os << manifest->to_csv_comment();
  }
  write_csv(os);
  config_check(os.good(), "TimeSeriesRecorder: error writing " + path);
}

void TimeSeriesRecorder::write_json(std::ostream& os,
                                    const RunManifest* manifest) const {
  os << "{";
  if (manifest != nullptr) {
    os << "\"manifest\":" << manifest->to_json_object() << ",";
  }
  os << "\"window_ps\":" << cfg_.window_ps
     << ",\"windows_sampled\":" << sampled_
     << ",\"windows_dropped\":" << dropped_ << ",\"series\":{";
  const std::size_t n = names_.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (i != 0) {
      os << ",";
    }
    os << "\"" << util::json_escape(names_[i]) << "\":{\"kind\":\""
       << kind_name(kinds_[i]) << "\",\"samples\":[";
    bool first = true;
    for (std::size_t w = 0; w < held_; ++w) {
      const std::size_t slot = ring_slot(w);
      if (!first) {
        os << ",";
      }
      first = false;
      os << "[" << starts_[slot] << "," << ends_[slot] << ",";
      write_number(os, values_[slot * n + i]);
      os << "]";
    }
    const sim::Histogram& h = summaries_[i];
    os << "],\"summary\":{\"count\":" << h.count();
    if (h.count() > 0) {
      os << ",\"min\":" << h.min() << ",\"max\":" << h.max() << ",\"mean\":";
      write_number(os, h.mean());
      os << ",\"p50\":" << h.p50() << ",\"p99\":" << h.p99()
         << ",\"p999\":" << h.p999();
    }
    os << "}}";
  }
  os << "}}\n";
}

void TimeSeriesRecorder::save_json(const std::string& path,
                                   const RunManifest* manifest) const {
  std::ofstream os(path);
  config_check(os.good(), "TimeSeriesRecorder: cannot write " + path);
  write_json(os, manifest);
  config_check(os.good(), "TimeSeriesRecorder: error writing " + path);
}

}  // namespace fgqos::telemetry
