#include "telemetry/journal.hpp"

#include <charconv>
#include <fstream>
#include <sstream>

#include "telemetry/manifest.hpp"
#include "util/config_error.hpp"
#include "util/json.hpp"

namespace fgqos::telemetry {

namespace {

/// Shortest round-trip double (same contract as the other exporters).
void write_number(std::ostream& os, double v) {
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  os.write(buf, res.ptr - buf);
}

}  // namespace

DecisionJournal::DecisionJournal(std::size_t capacity) : capacity_(capacity) {
  config_check(capacity_ > 0, "DecisionJournal: capacity must be positive");
}

void DecisionJournal::set_trace(TraceWriter* trace) {
  trace_ = trace;
  if (trace_ != nullptr && !trace_->enabled(Cat::kQos)) {
    trace_ = nullptr;
  }
}

void DecisionJournal::record(sim::TimePs at, const std::string& component,
                             const std::string& action, double old_value,
                             double new_value, const std::string& cause,
                             const std::string& detail) {
  ++recorded_;
  if (entries_.size() < capacity_) {
    JournalEntry e;
    e.seq = recorded_ - 1;
    e.at = at;
    e.component = component;
    e.action = action;
    e.old_value = old_value;
    e.new_value = new_value;
    e.cause = cause;
    e.detail = detail;
    entries_.push_back(std::move(e));
  }
  if (trace_ != nullptr) {
    auto [it, inserted] = tracks_.try_emplace(component);
    if (inserted) {
      it->second = trace_->track(Cat::kQos, component + ".journal");
    }
    trace_->instant(it->second, action.c_str(), at);
  }
}

std::string DecisionJournal::to_json(const JournalEntry& e) {
  std::ostringstream os;
  os << "{\"seq\":" << e.seq << ",\"at_ps\":" << e.at << ",\"component\":\""
     << util::json_escape(e.component) << "\",\"action\":\""
     << util::json_escape(e.action) << "\",\"old\":";
  write_number(os, e.old_value);
  os << ",\"new\":";
  write_number(os, e.new_value);
  os << ",\"cause\":\"" << util::json_escape(e.cause) << "\"";
  if (!e.detail.empty()) {
    os << ",\"detail\":\"" << util::json_escape(e.detail) << "\"";
  }
  os << "}";
  return os.str();
}

void DecisionJournal::write_jsonl(std::ostream& os,
                                  const RunManifest* manifest) const {
  if (manifest != nullptr) {
    os << "{\"manifest\":" << manifest->to_json_object() << "}\n";
  }
  for (const JournalEntry& e : entries_) {
    os << to_json(e) << "\n";
  }
  if (dropped() > 0) {
    os << "{\"dropped\":" << dropped() << "}\n";
  }
}

void DecisionJournal::save_jsonl(const std::string& path,
                                 const RunManifest* manifest) const {
  std::ofstream os(path);
  config_check(os.good(), "DecisionJournal: cannot write " + path);
  write_jsonl(os, manifest);
  config_check(os.good(), "DecisionJournal: error writing " + path);
}

}  // namespace fgqos::telemetry
