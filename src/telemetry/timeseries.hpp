/// \file timeseries.hpp
/// \brief Windowed time-series recorder: per-window samples of selected
///        platform metrics in fixed-memory ring buffers.
///
/// The third observability pillar (after the metrics registry and the
/// Chrome trace): end-of-run snapshots show *where a run ended up*, traces
/// show *everything*, and the recorder shows *how the control loop moved*
/// — per-window bandwidth, token credit, throttle time, iteration
/// progress — cheap enough to keep on for long runs and structured enough
/// to diff across runs.
///
/// Sampling is pull-based: components are never touched on their hot
/// paths. At every window rollover (a recurring simulator event) the
/// recorder invokes one probe per registered series and stores the value
/// in a fixed-capacity ring (oldest windows evicted first, eviction
/// counted). Each series also feeds a sim::Histogram summary covering
/// every window of the run, evicted or not, so percentile summaries stay
/// exact even when the ring wrapped.
///
/// Series are admitted through a comma-separated glob filter
/// (`qos.*,dram.*`; empty = everything). A filter that admits no series
/// makes the recorder a true no-op: start() schedules nothing and exports
/// write only headers.
///
/// Determinism: rollovers are simulation events, probes are pure reads of
/// simulation state, and export order is registration order — so exports
/// are byte-identical across `--jobs` fan-out (per sweep point) and across
/// repeated runs.
#pragma once

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "sim/histogram.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace fgqos::telemetry {

struct RunManifest;

/// Recorder configuration.
struct TimeSeriesConfig {
  /// Sampling window (the monitoring granularity of the time series).
  sim::TimePs window_ps = 100 * sim::kPsPerUs;
  /// Comma-separated series-name globs ("qos.*,dram.*"); empty admits
  /// every registered series.
  std::string filter;
  /// Ring capacity in windows (fixed memory: capacity * series doubles).
  std::size_t capacity = 4096;
};

/// The recorder.
class TimeSeriesRecorder {
 public:
  /// How a probe's value turns into the per-window sample.
  enum class Kind : std::uint8_t {
    kGauge,  ///< sample the probe's value as-is at the window end
    kDelta,  ///< per-window difference of a monotonically growing probe
  };

  /// Reads the current value of the underlying quantity at sample time.
  using ProbeFn = std::function<double(sim::TimePs)>;

  TimeSeriesRecorder(sim::Simulator& sim, TimeSeriesConfig cfg);

  TimeSeriesRecorder(const TimeSeriesRecorder&) = delete;
  TimeSeriesRecorder& operator=(const TimeSeriesRecorder&) = delete;

  [[nodiscard]] const TimeSeriesConfig& config() const { return cfg_; }

  /// Registers series \p name when it passes the filter; returns whether
  /// it was admitted. Call before start(); registration order is export
  /// order.
  bool add_series(const std::string& name, Kind kind, ProbeFn probe);

  /// True when \p name would pass the configured filter.
  [[nodiscard]] bool admits(const std::string& name) const;

  /// Schedules the window rollovers. No-op when no series was admitted
  /// (the empty-selection recorder costs nothing at runtime).
  void start();

  /// Closes the final (possibly partial) window at \p now — horizons that
  /// do not divide the window still account their tail. Idempotent for a
  /// given \p now; call before exporting.
  void finish(sim::TimePs now);

  [[nodiscard]] std::size_t series_count() const { return names_.size(); }
  [[nodiscard]] const std::vector<std::string>& series_names() const {
    return names_;
  }
  /// Windows sampled so far (including ones evicted from the ring).
  [[nodiscard]] std::uint64_t windows_sampled() const { return sampled_; }
  /// Windows evicted because the ring was full.
  [[nodiscard]] std::uint64_t windows_dropped() const { return dropped_; }
  /// Windows currently held in the ring.
  [[nodiscard]] std::size_t windows_held() const { return held_; }

  /// One retained window of one series.
  struct Sample {
    sim::TimePs start = 0;
    sim::TimePs end = 0;
    double value = 0.0;
  };
  /// Retained samples of series \p index, oldest first.
  [[nodiscard]] std::vector<Sample> samples(std::size_t index) const;

  /// Whole-run summary of series \p index (negative sample values clamp
  /// to 0 before recording; the histogram takes uint64).
  [[nodiscard]] const sim::Histogram& summary(std::size_t index) const {
    return summaries_.at(index);
  }

  /// Long-format CSV:
  ///   series,window,start_ps,end_ps,value
  /// one row per (retained window, series), window-major then
  /// registration order. \p row_prefix is prepended verbatim to every row
  /// (sweep merges add a leading point column) and \p header_prefix to the
  /// header line when \p header is set.
  void write_csv(std::ostream& os, bool header = true,
                 const std::string& row_prefix = "",
                 const std::string& header_prefix = "") const;
  /// write_csv to \p path; \p manifest (when non-null) is embedded as a
  /// leading '#' comment line. Throws ConfigError on I/O failure.
  void save_csv(const std::string& path,
                const RunManifest* manifest = nullptr) const;

  /// One JSON object: manifest (when given), window_ps, windows sampled/
  /// dropped, and per-series kind, retained samples and histogram summary
  /// (count/min/max/mean/p50/p99/p999).
  void write_json(std::ostream& os, const RunManifest* manifest) const;
  void save_json(const std::string& path,
                 const RunManifest* manifest = nullptr) const;

 private:
  void on_rollover(std::uint64_t epoch);
  /// Samples every series for the window [window_start_, now).
  void capture(sim::TimePs now);
  [[nodiscard]] std::size_t ring_slot(std::size_t logical) const {
    return (head_ + logical) % cfg_.capacity;
  }

  sim::Simulator& sim_;
  TimeSeriesConfig cfg_;
  std::vector<std::string> names_;
  std::vector<Kind> kinds_;
  std::vector<ProbeFn> probes_;
  std::vector<double> prev_;  ///< previous cumulative value (kDelta)
  std::vector<sim::Histogram> summaries_;
  /// Ring storage: boundaries per window plus a flat value matrix
  /// (capacity rows x series columns), preallocated at start().
  std::vector<sim::TimePs> starts_;
  std::vector<sim::TimePs> ends_;
  std::vector<double> values_;
  std::size_t head_ = 0;  ///< ring index of the oldest retained window
  std::size_t held_ = 0;
  std::uint64_t sampled_ = 0;
  std::uint64_t dropped_ = 0;
  sim::TimePs window_start_ = 0;
  std::uint64_t epoch_ = 0;
  sim::EventQueue::RecurringId rollover_event_ = 0;
  bool started_ = false;
  bool finished_ = false;
};

}  // namespace fgqos::telemetry
