#include "telemetry/attribution.hpp"

#include <fstream>

#include "util/assert.hpp"
#include "util/config_error.hpp"
#include "util/json.hpp"

namespace fgqos::telemetry {

const char* cause_name(Cause c) {
  switch (c) {
    case Cause::kFabricArb: return "fabric_arb";
    case Cause::kDramBankConflict: return "dram_bank_conflict";
    case Cause::kDramBusTurnaround: return "dram_bus_turnaround";
    case Cause::kDramRefresh: return "dram_refresh";
    case Cause::kSelf: return "self";
  }
  return "?";
}

AttributionEngine::AttributionEngine(MetricsRegistry& metrics,
                                     sim::TimePs window_ps)
    : metrics_(metrics), window_ps_(window_ps) {
  config_check(window_ps_ > 0, "AttributionEngine: window must be > 0");
}

void AttributionEngine::register_master(axi::MasterId id, std::string name) {
  config_check(id == names_.size(),
               "AttributionEngine: master ids must be registered densely");
  names_.push_back(std::move(name));
  const std::size_t cells = names_.size() * names_.size() * kCauseCount;
  window_cells_.assign(cells, Cell{});
  totals_.assign(cells, Cell{});
  config_check(history_.empty(),
               "AttributionEngine: register masters before charging");
}

void AttributionEngine::add_window_listener(WindowListener fn) {
  listeners_.push_back(std::move(fn));
}

void AttributionEngine::enable_bank_dimension(std::uint32_t banks) {
  config_check(banks > 0, "AttributionEngine: bank count must be > 0");
  config_check(!names_.empty(),
               "AttributionEngine: register masters before enabling the "
               "bank dimension");
  config_check(history_.empty(),
               "AttributionEngine: enable the bank dimension before charging");
  banks_ = banks;
  bank_totals_.assign(names_.size() * banks_ * kCauseCount, Cell{});
}

void AttributionEngine::set_trace(TraceWriter* writer) {
  trace_ = writer;
  tracks_.clear();
  if (trace_ == nullptr) {
    return;
  }
  tracks_.reserve(names_.size());
  for (const std::string& n : names_) {
    tracks_.push_back(trace_->track(Cat::kAttr, n));
  }
  if (!tracks_.empty() && !tracks_.front().valid()) {
    trace_ = nullptr;  // attr category filtered out
    tracks_.clear();
  }
}

void AttributionEngine::normalize(axi::MasterId victim,
                                  axi::MasterId& aggressor,
                                  Cause& cause) const {
  if (aggressor == kNoOwner) {
    aggressor = victim;
  }
  FGQOS_ASSERT(aggressor < names_.size() && victim < names_.size(),
               "AttributionEngine: unregistered master");
  // Losing arbitration to your own in-flight work is not interference.
  if (aggressor == victim && cause == Cause::kFabricArb) {
    cause = Cause::kSelf;
  }
}

void AttributionEngine::add(axi::MasterId victim, axi::MasterId aggressor,
                            Cause cause, std::uint64_t ps, sim::TimePs at) {
  roll_to(at);
  const std::size_t i = index(victim, aggressor, cause);
  window_cells_[i].stall_ps += ps;
  totals_[i].stall_ps += ps;
}

void AttributionEngine::charge(WaitState& w, axi::MasterId victim,
                               axi::MasterId aggressor, Cause cause,
                               sim::TimePs now, axi::Transaction* txn,
                               std::uint32_t bank) {
  FGQOS_ASSERT(w.open && now >= w.last, "AttributionEngine: bad charge");
  normalize(victim, aggressor, cause);
  const std::uint64_t slice = now - w.last;
  w.last = now;
  w.last_aggressor = aggressor;
  w.last_bank = bank;
  w.last_cause = cause;
  if (slice == 0) {
    return;
  }
  add(victim, aggressor, cause, slice, now);
  if (banks_ != 0 && bank < banks_) {
    bank_totals_[bank_index(victim, bank, cause)].stall_ps += slice;
  }
  if (txn != nullptr) {
    txn->attr_charged_ps += slice;
  }
}

void AttributionEngine::end_wait(WaitState& w, axi::MasterId victim,
                                 std::uint32_t bytes, sim::TimePs now,
                                 axi::Transaction* txn) {
  FGQOS_ASSERT(w.open && now >= w.last, "AttributionEngine: bad end_wait");
  axi::MasterId aggressor = w.last_aggressor;
  Cause cause = w.last_cause;
  normalize(victim, aggressor, cause);
  const std::uint64_t slice = now - w.last;
  const bool bank_cell = banks_ != 0 && w.last_bank < banks_;
  if (slice != 0) {
    add(victim, aggressor, cause, slice, now);
    if (bank_cell) {
      bank_totals_[bank_index(victim, w.last_bank, cause)].stall_ps += slice;
    }
    if (txn != nullptr) {
      txn->attr_charged_ps += slice;
    }
  }
  if (now > w.start && bytes != 0) {
    roll_to(now);
    const std::size_t i = index(victim, aggressor, cause);
    window_cells_[i].bytes += bytes;
    totals_[i].bytes += bytes;
    if (bank_cell) {
      bank_totals_[bank_index(victim, w.last_bank, cause)].bytes += bytes;
    }
  }
  w.open = false;
}

void AttributionEngine::charge_span(axi::MasterId victim,
                                    axi::MasterId aggressor, Cause cause,
                                    sim::TimePs start, sim::TimePs end,
                                    axi::Transaction* txn) {
  FGQOS_ASSERT(end >= start, "AttributionEngine: bad span");
  if (end == start) {
    return;
  }
  normalize(victim, aggressor, cause);
  add(victim, aggressor, cause, end - start, end);
  if (txn != nullptr) {
    txn->attr_charged_ps += end - start;
  }
}

void AttributionEngine::roll_to(sim::TimePs at) {
  while (at > window_start_ + window_ps_) {
    publish_window(window_start_ + window_ps_);
  }
}

void AttributionEngine::publish_window(sim::TimePs end) {
  WindowRecord rec;
  rec.start = window_start_;
  rec.end = end;
  rec.cells = window_cells_;
  if (trace_ != nullptr) {
    for (axi::MasterId v = 0; v < names_.size(); ++v) {
      for (std::size_t c = 0; c < kCauseCount; ++c) {
        std::uint64_t ps = 0;
        for (std::size_t a = 0; a < names_.size(); ++a) {
          ps += rec.cells[index(v, static_cast<axi::MasterId>(a),
                                static_cast<Cause>(c))].stall_ps;
        }
        trace_->counter(tracks_[v], cause_name(static_cast<Cause>(c)), end,
                        static_cast<double>(ps));
      }
    }
  }
  for (const WindowListener& fn : listeners_) {
    fn(rec);
  }
  history_.push_back(std::move(rec));
  window_cells_.assign(window_cells_.size(), Cell{});
  window_start_ = end;
}

void AttributionEngine::finish(sim::TimePs now) {
  if (finished_) {
    return;
  }
  finished_ = true;
  roll_to(now);
  if (now > window_start_) {
    publish_window(now);  // final partial window
  }
}

std::uint64_t AttributionEngine::victim_stall_ps(axi::MasterId victim) const {
  std::uint64_t ps = 0;
  for (std::size_t a = 0; a < names_.size(); ++a) {
    for (std::size_t c = 0; c < kCauseCount; ++c) {
      ps += totals_[index(victim, static_cast<axi::MasterId>(a),
                          static_cast<Cause>(c))].stall_ps;
    }
  }
  return ps;
}

std::uint64_t AttributionEngine::bank_stall_ps(axi::MasterId victim,
                                               std::uint32_t bank) const {
  if (banks_ == 0 || bank >= banks_) {
    return 0;
  }
  std::uint64_t ps = 0;
  for (std::size_t c = 0; c < kCauseCount; ++c) {
    ps += bank_totals_[bank_index(victim, bank, static_cast<Cause>(c))]
              .stall_ps;
  }
  return ps;
}

std::uint64_t AttributionEngine::blame_ps(axi::MasterId victim,
                                          axi::MasterId aggressor) const {
  std::uint64_t ps = 0;
  for (std::size_t c = 0; c < kCauseCount; ++c) {
    ps += totals_[index(victim, aggressor, static_cast<Cause>(c))].stall_ps;
  }
  return ps;
}

std::uint64_t AttributionEngine::cause_ps(axi::MasterId victim,
                                          Cause cause) const {
  std::uint64_t ps = 0;
  for (std::size_t a = 0; a < names_.size(); ++a) {
    ps += totals_[index(victim, static_cast<axi::MasterId>(a), cause)].stall_ps;
  }
  return ps;
}

bool AttributionEngine::dominant(const std::vector<Cell>& cells,
                                 axi::MasterId victim, axi::MasterId& aggressor,
                                 Cause& cause, std::uint64_t& stall_ps) const {
  stall_ps = 0;
  bool found = false;
  for (std::size_t a = 0; a < names_.size(); ++a) {
    for (std::size_t c = 0; c < kCauseCount; ++c) {
      const Cell& cell = cells[index(victim, static_cast<axi::MasterId>(a),
                                     static_cast<Cause>(c))];
      if (cell.stall_ps > stall_ps) {
        stall_ps = cell.stall_ps;
        aggressor = static_cast<axi::MasterId>(a);
        cause = static_cast<Cause>(c);
        found = true;
      }
    }
  }
  return found;
}

void AttributionEngine::write_cells(std::ostream& os,
                                    const std::vector<Cell>& cells,
                                    const char* scope, sim::TimePs start,
                                    sim::TimePs end,
                                    const std::string& row_prefix) const {
  for (axi::MasterId v = 0; v < names_.size(); ++v) {
    for (std::size_t a = 0; a < names_.size(); ++a) {
      for (std::size_t c = 0; c < kCauseCount; ++c) {
        const Cell& cell = cells[index(v, static_cast<axi::MasterId>(a),
                                       static_cast<Cause>(c))];
        if (cell.stall_ps == 0 && cell.bytes == 0) {
          continue;
        }
        os << row_prefix << scope << ',' << start << ',' << end << ','
           << names_[v] << ',' << names_[a] << ','
           << cause_name(static_cast<Cause>(c)) << ',' << cell.stall_ps << ','
           << cell.bytes << '\n';
      }
    }
  }
}

void AttributionEngine::write_csv(std::ostream& os, bool header,
                                  const std::string& row_prefix,
                                  const std::string& header_prefix) const {
  if (header) {
    os << header_prefix
       << "scope,window_start_ps,window_end_ps,victim,aggressor,cause,"
          "stall_ps,bytes\n";
  }
  for (const WindowRecord& w : history_) {
    write_cells(os, w.cells, "window", w.start, w.end, row_prefix);
  }
  const sim::TimePs end =
      history_.empty() ? window_start_ : history_.back().end;
  write_cells(os, totals_, "total", 0, end, row_prefix);
  // Bank-dimension rows reuse the schema with the aggressor column holding
  // the bank label; absent entirely while the dimension is disabled, so
  // bank-less exports stay byte-identical.
  for (axi::MasterId v = 0; v < names_.size(); ++v) {
    for (std::uint32_t b = 0; b < banks_; ++b) {
      for (std::size_t c = 0; c < kCauseCount; ++c) {
        const Cell& cell = bank_totals_[bank_index(v, b,
                                                   static_cast<Cause>(c))];
        if (cell.stall_ps == 0 && cell.bytes == 0) {
          continue;
        }
        os << row_prefix << "bank_total,0," << end << ',' << names_[v]
           << ",bank" << b << ',' << cause_name(static_cast<Cause>(c)) << ','
           << cell.stall_ps << ',' << cell.bytes << '\n';
      }
    }
  }
}

void AttributionEngine::save_csv(const std::string& path) const {
  std::ofstream os(path);
  config_check(os.good(), "AttributionEngine: cannot write " + path);
  write_csv(os);
}

void AttributionEngine::write_json(std::ostream& os) const {
  os << "{\"window_ps\":" << window_ps_ << ",\"masters\":[";
  for (std::size_t i = 0; i < names_.size(); ++i) {
    os << (i == 0 ? "" : ",") << '"' << util::json_escape(names_[i]) << '"';
  }
  os << "],\"causes\":[";
  for (std::size_t c = 0; c < kCauseCount; ++c) {
    os << (c == 0 ? "" : ",") << '"' << cause_name(static_cast<Cause>(c))
       << '"';
  }
  const auto write_matrix = [&](const std::vector<Cell>& cells) {
    os << '[';
    bool first = true;
    for (axi::MasterId v = 0; v < names_.size(); ++v) {
      for (std::size_t a = 0; a < names_.size(); ++a) {
        for (std::size_t c = 0; c < kCauseCount; ++c) {
          const Cell& cell = cells[index(v, static_cast<axi::MasterId>(a),
                                         static_cast<Cause>(c))];
          if (cell.stall_ps == 0 && cell.bytes == 0) {
            continue;
          }
          os << (first ? "" : ",") << "{\"victim\":" << v << ",\"aggressor\":"
             << a << ",\"cause\":\"" << cause_name(static_cast<Cause>(c))
             << "\",\"stall_ps\":" << cell.stall_ps << ",\"bytes\":"
             << cell.bytes << '}';
          first = false;
        }
      }
    }
    os << ']';
  };
  os << "],\"windows\":[";
  for (std::size_t i = 0; i < history_.size(); ++i) {
    const WindowRecord& w = history_[i];
    os << (i == 0 ? "" : ",") << "{\"start_ps\":" << w.start << ",\"end_ps\":"
       << w.end << ",\"cells\":";
    write_matrix(w.cells);
    os << '}';
  }
  os << "],\"totals\":";
  write_matrix(totals_);
  if (banks_ != 0) {
    os << ",\"banks\":" << banks_ << ",\"bank_totals\":[";
    bool first = true;
    for (axi::MasterId v = 0; v < names_.size(); ++v) {
      for (std::uint32_t b = 0; b < banks_; ++b) {
        for (std::size_t c = 0; c < kCauseCount; ++c) {
          const Cell& cell = bank_totals_[bank_index(v, b,
                                                     static_cast<Cause>(c))];
          if (cell.stall_ps == 0 && cell.bytes == 0) {
            continue;
          }
          os << (first ? "" : ",") << "{\"victim\":" << v << ",\"bank\":" << b
             << ",\"cause\":\"" << cause_name(static_cast<Cause>(c))
             << "\",\"stall_ps\":" << cell.stall_ps << ",\"bytes\":"
             << cell.bytes << '}';
          first = false;
        }
      }
    }
    os << ']';
  }
  os << ",\"residual_ps\":" << residual_ps_ << "}\n";
}

void AttributionEngine::save_json(const std::string& path) const {
  std::ofstream os(path);
  config_check(os.good(), "AttributionEngine: cannot write " + path);
  write_json(os);
}

void AttributionEngine::publish_metrics() {
  const auto set_counter = [this](const std::string& name, std::uint64_t v) {
    Counter& c = metrics_.counter(name);
    c.reset();
    c.add(v);
  };
  for (axi::MasterId v = 0; v < names_.size(); ++v) {
    const std::string prefix = "attr." + names_[v] + ".";
    set_counter(prefix + "stall_ps", victim_stall_ps(v));
    for (std::size_t c = 0; c < kCauseCount; ++c) {
      set_counter(prefix + "cause." + cause_name(static_cast<Cause>(c)) +
                      "_ps",
                  cause_ps(v, static_cast<Cause>(c)));
    }
    for (axi::MasterId a = 0; a < names_.size(); ++a) {
      set_counter(prefix + "from." + names_[a] + "_ps", blame_ps(v, a));
    }
    for (std::uint32_t b = 0; b < banks_; ++b) {
      const std::uint64_t ps = bank_stall_ps(v, b);
      if (ps != 0) {
        set_counter(prefix + "bank." + std::to_string(b) + "_ps", ps);
      }
    }
  }
  set_counter("telemetry.attribution.windows", history_.size());
  metrics_.gauge("telemetry.attribution.residual_ps")
      .set(static_cast<double>(residual_ps_));
}

}  // namespace fgqos::telemetry
