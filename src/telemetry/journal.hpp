/// \file journal.hpp
/// \brief Causally-ordered journal of QoS control-loop decisions.
///
/// End-of-run metrics say *what* the platform did; the trace says *when*
/// everything happened; the journal answers *why*: every discrete control
/// action — a regulator budget write, a memguard stall, an adaptive-
/// controller rate step, a watchdog degrade, an SLA trip, a fault
/// activation — is appended as one structured entry carrying the acting
/// component, the action, the old and new values of whatever was changed,
/// and the triggering cause. Entries are appended in simulation-dispatch
/// order, which on the single-threaded deterministic kernel *is* causal
/// order, and carry a monotone sequence number so ties at equal
/// timestamps stay ordered.
///
/// Components hold a nullable `DecisionJournal*` and guard every record
/// with it, so a run without `--journal` pays exactly one predicted
/// branch per decision point — the same zero-cost-when-disabled contract
/// the tracer uses. Recording itself is bounded: the journal keeps at
/// most `capacity` entries and counts (rather than stores) the overflow,
/// so a pathological run cannot eat unbounded memory.
///
/// Export is JSON-lines (one entry per line, manifest first) for cheap
/// diff/grep/stream processing, and each entry is optionally mirrored
/// into the Chrome trace as an instant on a per-component "journal"
/// track, so decisions line up visually with the signals that caused
/// them.
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "sim/time.hpp"
#include "telemetry/trace.hpp"

namespace fgqos::telemetry {

struct RunManifest;

/// One recorded decision.
struct JournalEntry {
  std::uint64_t seq = 0;     ///< appends so far; ties at equal `at` keep order
  sim::TimePs at = 0;
  std::string component;     ///< acting component, e.g. "qos.hp0.reg"
  std::string action;        ///< verb, e.g. "set_budget", "degrade", "sla_trip"
  double old_value = 0.0;    ///< value before the action (0 when n/a)
  double new_value = 0.0;    ///< value after the action (0 when n/a)
  std::string cause;         ///< trigger, e.g. "host_write", "monitor_stale"
  std::string detail;        ///< free-form context, "k=v k=v" by convention
};

/// The journal. One per Soc, owned by the telemetry Hub.
class DecisionJournal {
 public:
  /// \param capacity maximum retained entries; further records are
  ///        counted in dropped() but not stored.
  explicit DecisionJournal(std::size_t capacity = 65536);

  DecisionJournal(const DecisionJournal&) = delete;
  DecisionJournal& operator=(const DecisionJournal&) = delete;

  /// Mirrors subsequent records into \p trace as instants on per-component
  /// journal tracks (category kQos). Pass nullptr to stop mirroring.
  void set_trace(TraceWriter* trace);

  /// Appends one entry. \p component and \p action are required;
  /// old/new/cause/detail as applicable.
  void record(sim::TimePs at, const std::string& component,
              const std::string& action, double old_value, double new_value,
              const std::string& cause, const std::string& detail = "");

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] std::uint64_t recorded() const { return recorded_; }
  /// Records refused because the journal was full.
  [[nodiscard]] std::uint64_t dropped() const {
    return recorded_ - entries_.size();
  }
  [[nodiscard]] const std::vector<JournalEntry>& entries() const {
    return entries_;
  }

  /// JSON-lines export: when \p manifest is non-null the first line is
  /// {"manifest":{...}}, then one {"seq":...,"at_ps":...,...} object per
  /// entry in append (causal) order, then a {"dropped":N} trailer when any
  /// record was refused.
  void write_jsonl(std::ostream& os, const RunManifest* manifest) const;
  void save_jsonl(const std::string& path,
                  const RunManifest* manifest = nullptr) const;

  /// Renders one entry as its JSONL object (no newline); exposed for
  /// tests and for tools that re-emit entries.
  [[nodiscard]] static std::string to_json(const JournalEntry& e);

 private:
  std::size_t capacity_;
  std::vector<JournalEntry> entries_;
  std::uint64_t recorded_ = 0;
  TraceWriter* trace_ = nullptr;
  /// Lazily-created per-component trace tracks ("<component>.journal").
  std::map<std::string, TrackId> tracks_;
};

}  // namespace fgqos::telemetry
