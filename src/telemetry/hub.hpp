/// \file hub.hpp
/// \brief Per-platform telemetry hub: registry + trace sink + lifecycle.
///
/// One Hub per Soc (or per hand-assembled platform) owns the metrics
/// registry, the optional Chrome-trace sink and the per-port lifecycle
/// tracers, and runs the simulation-kernel self-profiling sampler. All
/// instrumentation is opt-in and near-zero cost when disabled: components
/// carry a nullable TraceWriter pointer, and lifecycle observers are only
/// attached to ports on request.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "axi/port.hpp"
#include "sim/simulator.hpp"
#include "telemetry/attribution.hpp"
#include "telemetry/journal.hpp"
#include "telemetry/lifecycle.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/profiler.hpp"
#include "telemetry/timeseries.hpp"
#include "telemetry/trace.hpp"

namespace fgqos::telemetry {

/// The hub.
class Hub {
 public:
  Hub() = default;

  Hub(const Hub&) = delete;
  Hub& operator=(const Hub&) = delete;

  [[nodiscard]] MetricsRegistry& metrics() { return metrics_; }
  [[nodiscard]] const MetricsRegistry& metrics() const { return metrics_; }

  /// Opens the Chrome-trace sink. \p filter is a comma-separated category
  /// list (see parse_categories; "" = everything). At most one trace per
  /// hub; throws ConfigError on a second call.
  void open_trace(const std::string& path, const std::string& filter = "");

  /// The sink, or nullptr when tracing is disabled.
  [[nodiscard]] TraceWriter* trace() { return trace_.get(); }
  [[nodiscard]] bool tracing() const { return trace_ != nullptr; }

  /// Returns the lifecycle tracer observing \p port, attaching one on
  /// first use; wires it to the trace sink when open.
  TxnLifecycleTracer& lifecycle(axi::MasterPort& port);
  /// True when \p port already has a lifecycle tracer attached.
  [[nodiscard]] bool has_lifecycle(const axi::MasterPort& port) const;

  /// Creates the interference-attribution engine with blame windows of
  /// \p window_ps (at most one per hub; throws ConfigError on a second
  /// call). Wires it to the trace sink when one is already open. The
  /// caller still registers masters and hands the engine to the fabric.
  AttributionEngine& enable_attribution(sim::TimePs window_ps);
  /// The engine, or nullptr when attribution is disabled.
  [[nodiscard]] AttributionEngine* attribution() { return attribution_.get(); }

  /// Creates the windowed time-series recorder (at most one per hub;
  /// throws ConfigError on a second call). The caller registers series
  /// (probes) and calls start() once assembly is done.
  TimeSeriesRecorder& enable_timeseries(sim::Simulator& sim,
                                        TimeSeriesConfig cfg);
  /// The recorder, or nullptr when time-series capture is disabled.
  [[nodiscard]] TimeSeriesRecorder* timeseries() { return timeseries_.get(); }

  /// Creates the QoS decision journal (at most one per hub; throws
  /// ConfigError on a second call). Wires it to the trace sink when one is
  /// already open so entries mirror as trace instants.
  DecisionJournal& enable_journal(std::size_t capacity = 65536);
  /// The journal, or nullptr when journaling is disabled.
  [[nodiscard]] DecisionJournal* journal() { return journal_.get(); }

  /// Creates the host-side hot-path profiler and attaches it to \p sim
  /// (at most one per hub; throws ConfigError on a second call). Must run
  /// before components register tags, i.e. before platform assembly.
  HostProfiler& enable_profiler(sim::Simulator& sim);
  /// The profiler, or nullptr when host profiling is disabled.
  [[nodiscard]] HostProfiler* profiler() { return profiler_.get(); }
  [[nodiscard]] const HostProfiler* profiler() const {
    return profiler_.get();
  }

  /// Starts the kernel self-profiling sampler: every \p period_ps it
  /// records event-queue occupancy and event/tick dispatch rates as
  /// counter tracks (category "kernel") and registry metrics.
  void start_kernel_sampling(sim::Simulator& sim,
                             sim::TimePs period_ps = 100 * sim::kPsPerUs);

  /// Flushes and closes the trace sink (idempotent). Lifecycle metrics
  /// stay available afterwards.
  void finish();

 private:
  void kernel_sample(sim::Simulator& sim, sim::TimePs period_ps);

  MetricsRegistry metrics_;
  std::unique_ptr<TraceWriter> trace_;
  std::unique_ptr<AttributionEngine> attribution_;
  std::unique_ptr<TimeSeriesRecorder> timeseries_;
  std::unique_ptr<DecisionJournal> journal_;
  std::unique_ptr<HostProfiler> profiler_;
  std::vector<std::unique_ptr<TxnLifecycleTracer>> lifecycles_;
  std::vector<const axi::MasterPort*> lifecycle_ports_;
  TrackId kernel_track_;
  sim::EventQueue::RecurringId sample_event_ = 0;
  bool kernel_sampling_ = false;
  std::uint64_t last_events_ = 0;
  std::uint64_t last_ticks_ = 0;
};

}  // namespace fgqos::telemetry
