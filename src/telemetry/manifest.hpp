/// \file manifest.hpp
/// \brief Run provenance embedded in telemetry exports.
///
/// Every artifact a run writes (metrics snapshots, time-series, decision
/// journals, bench records) carries a RunManifest so that analysis tools
/// — chiefly `fgqos_report` — can (a) tell which scenario produced the
/// numbers and (b) refuse to compare artifacts whose schemas do not line
/// up. The manifest deliberately records only *semantic* inputs (seed,
/// scenario-shaping CLI arguments, fault-plan hash) and never execution
/// mechanics (output paths, --jobs, timeouts): two runs of the same
/// scenario must produce byte-identical manifests whatever the fan-out,
/// because the determinism CI compares the files byte for byte.
#pragma once

#include <cstdint>
#include <string>

namespace fgqos::util {
class JsonValue;
}

namespace fgqos::telemetry {

/// Version of the export schemas (metrics JSON, time-series CSV/JSON,
/// journal JSONL). Bump when any export's shape changes incompatibly;
/// fgqos_report refuses to compare runs across versions unless forced.
inline constexpr int kExportSchemaVersion = 1;

/// The manifest. Field order in to_json_object() is fixed (part of the
/// byte-identical export contract).
struct RunManifest {
  int schema_version = kExportSchemaVersion;
  std::string tool;      ///< producing binary, e.g. "fgqos_sim"
  std::string scenario;  ///< normalized semantic args, "k=v k=v ..."
  std::uint64_t seed = 0;
  /// FNV-1a 64 hex of the canonical fault-plan JSON; empty when the run
  /// injected no faults.
  std::string fault_spec_hash;
  /// Build flavour ("release" / "debug"); informational only.
  std::string build;
  /// Host-profiler tag-table version when the run profiled itself, 0 when
  /// profiling was off. Emitted only when non-zero, so manifests of
  /// profile-off runs — including every committed golden — are untouched.
  /// fgqos_report refuses to diff profiles across versions unless forced.
  int profile_tag_table_version = 0;

  /// Fills \p build from the compile-time flavour of this library.
  [[nodiscard]] static const char* build_flavor();

  /// Renders the manifest as one JSON object (no trailing newline), e.g.
  ///   {"schema_version":1,"tool":"fgqos_sim","scenario":"...","seed":100,
  ///    "fault_spec_hash":"","build":"release"}
  [[nodiscard]] std::string to_json_object() const;

  /// Renders '#'-prefixed comment lines for CSV exports:
  ///   # fgqos-manifest schema_version=1 tool=... seed=...
  [[nodiscard]] std::string to_csv_comment() const;

  /// Parses a manifest from a JSON object; unknown keys are ignored and
  /// absent keys keep their defaults (so older artifacts still load).
  [[nodiscard]] static RunManifest from_json(const util::JsonValue& v);

  /// Parses the "# fgqos-manifest ..." comment line form (the inverse of
  /// to_csv_comment()); returns false when \p line is not a manifest
  /// comment.
  static bool from_csv_comment(const std::string& line, RunManifest& out);

  /// True when artifacts from \p other can be compared against this run:
  /// the schema versions match and the tools agree. Scenario and seed
  /// differences are expected (that is what run comparison is *for*) and
  /// are surfaced in the report header instead.
  [[nodiscard]] bool comparable_with(const RunManifest& other) const {
    return schema_version == other.schema_version && tool == other.tool;
  }
};

/// FNV-1a 64-bit hash of \p s, rendered as 16 lowercase hex digits. Used
/// for the fault-spec hash (stable, dependency-free, good enough to detect
/// "these two runs injected different faults").
[[nodiscard]] std::string fnv1a_hex(const std::string& s);

}  // namespace fgqos::telemetry
