#include "telemetry/metrics.hpp"

#include <charconv>
#include <fstream>

#include "telemetry/manifest.hpp"
#include "util/config_error.hpp"
#include "util/json.hpp"

namespace fgqos::telemetry {

namespace {

const char* kind_name(std::uint8_t k) {
  switch (k) {
    case 0: return "counter";
    case 1: return "gauge";
    default: return "histogram";
  }
}

/// Shortest representation that round-trips the exact double. Snapshots
/// serve as golden masters for determinism checks, so the export must be
/// canonical and lossless — ostream's default 6-significant-digit
/// formatting would both drop information and hide real divergence.
void write_number(std::ostream& os, double v) {
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  os.write(buf, res.ptr - buf);
}

}  // namespace

MetricsRegistry::Metric& MetricsRegistry::fetch(const std::string& name,
                                                Kind kind) {
  config_check(!name.empty(), "MetricsRegistry: empty metric name");
  auto [it, inserted] = metrics_.try_emplace(name);
  if (inserted) {
    it->second.kind = kind;
  } else {
    config_check(it->second.kind == kind,
                 "MetricsRegistry: metric '" + name +
                     "' already registered as " +
                     kind_name(static_cast<std::uint8_t>(it->second.kind)));
  }
  return it->second;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  return fetch(name, Kind::kCounter).counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  return fetch(name, Kind::kGauge).gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  return fetch(name, Kind::kHistogram).histogram;
}

bool MetricsRegistry::contains(const std::string& name) const {
  return metrics_.count(name) != 0;
}

double MetricsRegistry::scalar(const std::string& name) const {
  auto it = metrics_.find(name);
  config_check(it != metrics_.end(),
               "MetricsRegistry: unknown metric '" + name + "'");
  const Metric& m = it->second;
  config_check(m.kind != Kind::kHistogram,
               "MetricsRegistry: '" + name + "' is a histogram, not a scalar");
  return m.kind == Kind::kCounter ? static_cast<double>(m.counter.value())
                                  : m.gauge.value();
}

std::size_t MetricsRegistry::erase_prefix(const std::string& prefix) {
  if (prefix.empty()) {
    const std::size_t n = metrics_.size();
    metrics_.clear();
    return n;
  }
  std::size_t erased = 0;
  for (auto it = metrics_.lower_bound(prefix);
       it != metrics_.end() && it->first.compare(0, prefix.size(), prefix) == 0;
       it = metrics_.erase(it)) {
    ++erased;
  }
  return erased;
}

void MetricsRegistry::write_json(std::ostream& os, sim::TimePs now,
                                 const RunManifest* manifest) const {
  os << "{";
  if (manifest != nullptr) {
    os << "\"manifest\":" << manifest->to_json_object() << ",";
  }
  os << "\"time_ps\":" << now << ",\"metrics\":{";
  bool first = true;
  for (const auto& [name, m] : metrics_) {
    if (!first) {
      os << ",";
    }
    first = false;
    os << "\"" << util::json_escape(name) << "\":{";
    switch (m.kind) {
      case Kind::kCounter:
        os << "\"type\":\"counter\",\"value\":" << m.counter.value();
        break;
      case Kind::kGauge:
        os << "\"type\":\"gauge\",\"value\":";
        write_number(os, m.gauge.value());
        break;
      case Kind::kHistogram: {
        const Histogram& h = m.histogram;
        os << "\"type\":\"histogram\",\"count\":" << h.count();
        if (h.count() > 0) {
          os << ",\"min\":" << h.min() << ",\"max\":" << h.max()
             << ",\"mean\":";
          write_number(os, h.mean());
          os << ",\"stddev\":";
          write_number(os, h.stddev());
          os << ",\"p50\":" << h.p50() << ",\"p90\":" << h.p90()
             << ",\"p99\":" << h.p99() << ",\"p999\":" << h.p999();
        }
        break;
      }
    }
    os << "}";
  }
  os << "}}\n";
}

void MetricsRegistry::save_json(const std::string& path, sim::TimePs now,
                                const RunManifest* manifest) const {
  std::ofstream os(path);
  config_check(os.good(), "MetricsRegistry: cannot write " + path);
  write_json(os, now, manifest);
  config_check(os.good(), "MetricsRegistry: error writing " + path);
}

void MetricsRegistry::write_csv(std::ostream& os,
                                const RunManifest* manifest) const {
  if (manifest != nullptr) {
    os << manifest->to_csv_comment();
  }
  os << "name,type,count,value,p50,p90,p99,p999,max\n";
  for (const auto& [name, m] : metrics_) {
    os << name << ",";
    switch (m.kind) {
      case Kind::kCounter:
        os << "counter,," << m.counter.value() << ",,,,,\n";
        break;
      case Kind::kGauge:
        os << "gauge,,";
        write_number(os, m.gauge.value());
        os << ",,,,,\n";
        break;
      case Kind::kHistogram: {
        const Histogram& h = m.histogram;
        os << "histogram," << h.count() << ",";
        write_number(os, h.mean());
        os << "," << h.p50() << "," << h.p90() << "," << h.p99() << ","
           << h.p999() << "," << h.max() << "\n";
        break;
      }
    }
  }
}

void MetricsRegistry::save_csv(const std::string& path,
                               const RunManifest* manifest) const {
  std::ofstream os(path);
  config_check(os.good(), "MetricsRegistry: cannot write " + path);
  write_csv(os, manifest);
  config_check(os.good(), "MetricsRegistry: error writing " + path);
}

}  // namespace fgqos::telemetry
