#include "telemetry/hub.hpp"

#include <utility>

#include "util/config_error.hpp"

namespace fgqos::telemetry {

void Hub::open_trace(const std::string& path, const std::string& filter) {
  config_check(trace_ == nullptr, "Hub: trace already open");
  trace_ = std::make_unique<TraceWriter>(path, parse_categories(filter));
  // Wire tracers attached before the sink existed.
  for (auto& lc : lifecycles_) {
    lc->set_trace(trace_.get());
  }
  if (attribution_ != nullptr) {
    attribution_->set_trace(trace_.get());
  }
  if (journal_ != nullptr) {
    journal_->set_trace(trace_.get());
  }
}

AttributionEngine& Hub::enable_attribution(sim::TimePs window_ps) {
  config_check(attribution_ == nullptr, "Hub: attribution already enabled");
  attribution_ = std::make_unique<AttributionEngine>(metrics_, window_ps);
  return *attribution_;
}

TimeSeriesRecorder& Hub::enable_timeseries(sim::Simulator& sim,
                                           TimeSeriesConfig cfg) {
  config_check(timeseries_ == nullptr, "Hub: time-series already enabled");
  timeseries_ = std::make_unique<TimeSeriesRecorder>(sim, std::move(cfg));
  return *timeseries_;
}

HostProfiler& Hub::enable_profiler(sim::Simulator& sim) {
  config_check(profiler_ == nullptr, "Hub: profiler already enabled");
  profiler_ = std::make_unique<HostProfiler>();
  profiler_->attach(sim);
  return *profiler_;
}

DecisionJournal& Hub::enable_journal(std::size_t capacity) {
  config_check(journal_ == nullptr, "Hub: journal already enabled");
  journal_ = std::make_unique<DecisionJournal>(capacity);
  if (trace_ != nullptr) {
    journal_->set_trace(trace_.get());
  }
  return *journal_;
}

TxnLifecycleTracer& Hub::lifecycle(axi::MasterPort& port) {
  for (std::size_t i = 0; i < lifecycle_ports_.size(); ++i) {
    if (lifecycle_ports_[i] == &port) {
      return *lifecycles_[i];
    }
  }
  auto tracer = std::make_unique<TxnLifecycleTracer>(metrics_, port.name());
  if (trace_ != nullptr) {
    tracer->set_trace(trace_.get());
  }
  port.add_observer(*tracer);
  lifecycles_.push_back(std::move(tracer));
  lifecycle_ports_.push_back(&port);
  return *lifecycles_.back();
}

bool Hub::has_lifecycle(const axi::MasterPort& port) const {
  for (const auto* p : lifecycle_ports_) {
    if (p == &port) {
      return true;
    }
  }
  return false;
}

void Hub::start_kernel_sampling(sim::Simulator& sim, sim::TimePs period_ps) {
  config_check(period_ps > 0, "Hub: sampling period must be > 0");
  if (kernel_sampling_) {
    return;
  }
  kernel_sampling_ = true;
  if (trace_ != nullptr) {
    kernel_track_ = trace_->track(Cat::kKernel, "sim");
  }
  sample_event_ = sim.make_recurring_event(
      [this, &sim, period_ps](std::uint64_t) { kernel_sample(sim, period_ps); },
      sim.profile_tag("telemetry.kernel_sampler"));
  last_events_ = sim.events_dispatched();
  last_ticks_ = sim.tick_count();
  // Baseline sample so even runs shorter than one period get the counter
  // tracks (and viewers get a t=start anchor for each series).
  kernel_sample(sim, period_ps);
}

void Hub::kernel_sample(sim::Simulator& sim, sim::TimePs period_ps) {
  const std::uint64_t events = sim.events_dispatched();
  const std::uint64_t ticks = sim.tick_count();
  if (trace_ != nullptr && kernel_track_.valid()) {
    trace_->counter(kernel_track_, "event_queue", sim.now(),
                    static_cast<double>(sim.event_queue_size()));
    trace_->counter(kernel_track_, "events_per_sample", sim.now(),
                    static_cast<double>(events - last_events_));
    trace_->counter(kernel_track_, "ticks_per_sample", sim.now(),
                    static_cast<double>(ticks - last_ticks_));
  }
  last_events_ = events;
  last_ticks_ = ticks;
  sim.schedule_recurring(sample_event_, sim.now() + period_ps);
}

void Hub::finish() {
  if (trace_ != nullptr) {
    trace_->finish();
  }
}

}  // namespace fgqos::telemetry
