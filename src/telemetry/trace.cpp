#include "telemetry/trace.hpp"

#include "util/config_error.hpp"
#include "util/json.hpp"
#include "util/string_util.hpp"

namespace fgqos::telemetry {

namespace {

constexpr double kPsPerUsD = 1e6;

}  // namespace

const char* cat_name(Cat c) {
  switch (c) {
    case Cat::kPort: return "port";
    case Cat::kDram: return "dram";
    case Cat::kQos: return "qos";
    case Cat::kWorkload: return "workload";
    case Cat::kKernel: return "kernel";
    case Cat::kAttr: return "attr";
  }
  return "?";
}

std::uint32_t parse_categories(const std::string& filter) {
  if (filter.empty() || filter == "all") {
    return kAllCategories;
  }
  std::uint32_t mask = 0;
  for (const std::string& part : util::split(filter, ',')) {
    bool found = false;
    for (const Cat c : {Cat::kPort, Cat::kDram, Cat::kQos, Cat::kWorkload,
                        Cat::kKernel, Cat::kAttr}) {
      if (part == cat_name(c)) {
        mask |= cat_bit(c);
        found = true;
        break;
      }
    }
    config_check(found, "unknown trace category '" + part +
                            "' (expected port,dram,qos,workload,kernel,attr)");
  }
  return mask;
}

TraceWriter::TraceWriter(const std::string& path,
                         std::uint32_t category_mask)
    : mask_(category_mask) {
  file_ = std::fopen(path.c_str(), "w");
  config_check(file_ != nullptr, "TraceWriter: cannot open " + path);
  std::fputs("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[", file_);
}

TraceWriter::~TraceWriter() { finish(); }

TrackId TraceWriter::track(Cat c, const std::string& name) {
  TrackId t;
  t.cat = c;
  if (!enabled(c) || file_ == nullptr) {
    return t;
  }
  t.id = static_cast<std::int32_t>(track_names_.size());
  track_names_.push_back(util::json_escape(name));
  // First track of a category also names the synthetic process.
  if ((procs_named_ & cat_bit(c)) == 0) {
    procs_named_ |= cat_bit(c);
    std::fprintf(file_,
                 "%s{\"ph\":\"M\",\"pid\":%d,\"tid\":0,\"name\":"
                 "\"process_name\",\"args\":{\"name\":\"%s\"}}",
                 events_ == 0 ? "" : ",\n", pid_of(c), cat_name(c));
    ++events_;
  }
  std::fprintf(file_,
               "%s{\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"name\":"
               "\"thread_name\",\"args\":{\"name\":\"%s\"}}",
               events_ == 0 ? "" : ",\n", pid_of(c), t.id,
               track_names_.back().c_str());
  ++events_;
  return t;
}

void TraceWriter::emit_prefix(TrackId t, const char ph, const char* name,
                              sim::TimePs ts) {
  std::fprintf(file_,
               "%s{\"ph\":\"%c\",\"pid\":%d,\"tid\":%d,\"cat\":\"%s\","
               "\"name\":\"%s\",\"ts\":%.6f",
               events_ == 0 ? "" : ",\n", ph, pid_of(t.cat), t.id,
               cat_name(t.cat), name,
               static_cast<double>(ts) / kPsPerUsD);
  ++events_;
}

void TraceWriter::complete_impl(TrackId t, const char* name, sim::TimePs ts,
                                sim::TimePs dur) {
  emit_prefix(t, 'X', name, ts);
  std::fprintf(file_, ",\"dur\":%.6f}", static_cast<double>(dur) / kPsPerUsD);
}

void TraceWriter::instant_impl(TrackId t, const char* name, sim::TimePs ts) {
  emit_prefix(t, 'i', name, ts);
  std::fputs(",\"s\":\"t\"}", file_);
}

void TraceWriter::counter_impl(TrackId t, const char* series, sim::TimePs ts,
                               double value) {
  // Counter tracks are identified by (pid, name): qualify the series with
  // the owning track's name so every component gets its own track.
  const std::string& owner = track_names_[static_cast<std::size_t>(t.id)];
  std::fprintf(file_,
               "%s{\"ph\":\"C\",\"pid\":%d,\"tid\":%d,\"cat\":\"%s\","
               "\"name\":\"%s.%s\",\"ts\":%.6f,\"args\":{\"%s\":%g}}",
               events_ == 0 ? "" : ",\n", pid_of(t.cat), t.id,
               cat_name(t.cat), owner.c_str(), series,
               static_cast<double>(ts) / kPsPerUsD, series, value);
  ++events_;
}

void TraceWriter::async_begin_impl(TrackId t, const char* name,
                                   std::uint64_t id, sim::TimePs ts) {
  emit_prefix(t, 'b', name, ts);
  std::fprintf(file_, ",\"id\":\"%llu\"}",
               static_cast<unsigned long long>(id));
}

void TraceWriter::async_end_impl(TrackId t, const char* name,
                                 std::uint64_t id, sim::TimePs ts,
                                 const std::string& args_json) {
  emit_prefix(t, 'e', name, ts);
  std::fprintf(file_, ",\"id\":\"%llu\"",
               static_cast<unsigned long long>(id));
  if (!args_json.empty()) {
    std::fprintf(file_, ",\"args\":%s", args_json.c_str());
  }
  std::fputs("}", file_);
}

void TraceWriter::finish() {
  if (file_ == nullptr) {
    return;
  }
  std::fputs("\n]}\n", file_);
  std::fclose(file_);
  file_ = nullptr;
}

}  // namespace fgqos::telemetry
