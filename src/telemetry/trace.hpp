/// \file trace.hpp
/// \brief Chrome trace_event JSON writer (chrome://tracing / Perfetto).
///
/// Streams trace events to disk in the Trace Event Format understood by
/// chrome://tracing and ui.perfetto.dev:
///  * duration ("X") events for non-overlapping intervals — DRAM data
///    bursts, regulator throttle intervals, memguard stalls;
///  * async ("b"/"e") events keyed by transaction id for potentially
///    overlapping spans — per-transaction lifecycles on a port's track;
///  * counter ("C") events for token credit, window bandwidth and
///    event-queue occupancy tracks;
///  * instant ("i") events for point occurrences (IRQs, phase changes).
///
/// Tracks are organised as one synthetic "process" per subsystem category
/// (ports, dram, qos, workload, kernel) with one "thread" per component,
/// named through metadata events. A category bitmask (--trace-filter)
/// suppresses whole subsystems at registration time: a filtered component
/// receives an invalid track id and its emit calls return immediately.
///
/// Timestamps are microseconds (double) as the format requires; the
/// simulator's picosecond timeline is converted with full precision.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace fgqos::telemetry {

/// Trace categories, one bit each (see parse_categories()).
enum class Cat : std::uint8_t {
  kPort = 0,      ///< per-transaction lifecycle spans
  kDram,          ///< DRAM data-bus bursts, queue occupancy
  kQos,           ///< regulator/monitor/memguard activity
  kWorkload,      ///< traffic generators
  kKernel,        ///< simulation-kernel self-profiling
  kAttr,          ///< interference-attribution blame counters
};

inline constexpr std::uint32_t kAllCategories = 0x3F;

/// Returns the bit for one category.
[[nodiscard]] constexpr std::uint32_t cat_bit(Cat c) {
  return std::uint32_t{1} << static_cast<std::uint8_t>(c);
}

/// Short name used in the trace "cat" field and in --trace-filter.
[[nodiscard]] const char* cat_name(Cat c);

/// Parses a comma-separated category list ("port,dram") into a bitmask;
/// empty string or "all" selects every category. Throws ConfigError on
/// unknown names.
[[nodiscard]] std::uint32_t parse_categories(const std::string& filter);

/// Identifies one named track (synthetic thread) in the trace. Invalid
/// (filtered-out) tracks have id < 0; every emit call on them is a no-op.
struct TrackId {
  std::int32_t id = -1;
  Cat cat = Cat::kPort;
  [[nodiscard]] bool valid() const { return id >= 0; }
};

/// The streaming writer. One instance per output file; not thread-safe
/// (the simulator is single-threaded).
class TraceWriter {
 public:
  /// Opens \p path and writes the stream prologue. \p category_mask
  /// selects the subsystems recorded (kAllCategories = everything).
  TraceWriter(const std::string& path, std::uint32_t category_mask);
  ~TraceWriter();

  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  /// True when \p c is selected by the category mask.
  [[nodiscard]] bool enabled(Cat c) const {
    return (mask_ & cat_bit(c)) != 0;
  }

  /// Registers a named track under category \p c; emits the thread_name
  /// metadata. Returns an invalid TrackId when the category is filtered.
  TrackId track(Cat c, const std::string& name);

  // The emit calls below are on simulation hot paths (instrumented
  // components call them per grant/completion). The disabled check is
  // inlined here so a filtered track or closed file costs one
  // well-predicted branch and no function call; only live events pay for
  // the out-of-line formatting in the _impl functions.

  /// Non-overlapping interval [ts, ts+dur] on \p t.
  void complete(TrackId t, const char* name, sim::TimePs ts, sim::TimePs dur) {
    if (live(t)) {
      complete_impl(t, name, ts, dur);
    }
  }
  /// Point event at \p ts.
  void instant(TrackId t, const char* name, sim::TimePs ts) {
    if (live(t)) {
      instant_impl(t, name, ts);
    }
  }
  /// Counter sample: series \p series of counter track \p t gets \p value.
  void counter(TrackId t, const char* series, sim::TimePs ts, double value) {
    if (live(t)) {
      counter_impl(t, series, ts, value);
    }
  }

  /// Async span begin/end, correlated by \p id within \p t's category.
  /// Overlapping ids each get their own lane in the viewer.
  void async_begin(TrackId t, const char* name, std::uint64_t id,
                   sim::TimePs ts) {
    if (live(t)) {
      async_begin_impl(t, name, id, ts);
    }
  }
  /// \p args_json, when non-empty, is a pre-rendered JSON object placed in
  /// the event's "args" field (e.g. per-hop latency breakdown).
  void async_end(TrackId t, const char* name, std::uint64_t id,
                 sim::TimePs ts, const std::string& args_json = "") {
    if (live(t)) {
      async_end_impl(t, name, id, ts, args_json);
    }
  }

  /// Number of events written so far (diagnostics and tests).
  [[nodiscard]] std::uint64_t events_written() const { return events_; }

  /// Writes the epilogue and closes the file. Idempotent.
  void finish();

 private:
  /// True when an emit call on \p t will actually write something.
  [[nodiscard]] bool live(TrackId t) const {
    return t.valid() && file_ != nullptr;
  }

  void complete_impl(TrackId t, const char* name, sim::TimePs ts,
                     sim::TimePs dur);
  void instant_impl(TrackId t, const char* name, sim::TimePs ts);
  void counter_impl(TrackId t, const char* series, sim::TimePs ts,
                    double value);
  void async_begin_impl(TrackId t, const char* name, std::uint64_t id,
                        sim::TimePs ts);
  void async_end_impl(TrackId t, const char* name, std::uint64_t id,
                      sim::TimePs ts, const std::string& args_json);

  void emit_prefix(TrackId t, const char ph, const char* name,
                   sim::TimePs ts);
  void emit_suffix();
  /// pid of a category's synthetic process (stable small integers).
  [[nodiscard]] static int pid_of(Cat c) {
    return static_cast<int>(c) + 1;
  }

  std::FILE* file_ = nullptr;
  std::uint32_t mask_;
  std::uint64_t events_ = 0;
  std::uint32_t procs_named_ = 0;  ///< categories with process_name emitted
  std::vector<std::string> track_names_;  ///< escaped, indexed by tid
};

}  // namespace fgqos::telemetry
