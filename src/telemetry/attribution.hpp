/// \file attribution.hpp
/// \brief Interference-attribution engine: per-transaction stall blame.
///
/// Answers the question the plain monitors cannot: when a victim's
/// transaction waited, *who* occupied the resource it waited for, and
/// *where* in the memory path. Every queueing point (AXI port head,
/// crossbar arbitration, DRAM command queue) charges each waited
/// picosecond to an (victim, aggressor, cause) cell:
///
///   fabric_arb           lost crossbar arbitration / FR-FCFS scheduling or
///                        the shared data path was occupied by another
///                        master's in-flight work
///   dram_bank_conflict   the bank's row was closed or owned by another
///                        request (PRE + ACT + tRCD exposure)
///   dram_bus_turnaround  read<->write direction-switch windows
///                        (tWTR/tRTW) and write-drain batching
///   dram_refresh         the channel was blocked by refresh (tRFC)
///   self                 own doing: port rate limit, own QoS gate shut,
///                        queued behind own earlier transactions, or
///                        clock/pipeline alignment
///
/// Charges accumulate into per-window M x M x cause blame matrices
/// (picoseconds + bytes-delayed) plus a cumulative matrix. Window
/// rollovers notify listeners (qos::SlaWatchdog) and emit Chrome-trace
/// counter tracks when a TraceWriter is attached.
///
/// Accounting discipline: components track one WaitState per waiting
/// head/entry. A wait is opened once, charged in telescoping slices
/// (each slice runs from the previous charge to now), and closed
/// exactly once; the engine also accumulates each slice onto the
/// transaction (attr_charged_ps) while the hooks record the
/// independently measured wait (attr_measured_ps) from lifecycle
/// stamps. At completion the two must agree exactly — FGQOS_DEBUG_ASSERT
/// in debug builds, a `telemetry.attribution.residual_ps` gauge in
/// release builds.
///
/// Zero-cost when disabled: every hook is behind a nullable
/// AttributionEngine pointer (one predicted branch), and the hot path
/// never allocates (window publication, once per window, may).
#pragma once

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "axi/transaction.hpp"
#include "axi/types.hpp"
#include "sim/time.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace fgqos::telemetry {

/// Why a transaction's line could not make progress.
enum class Cause : std::uint8_t {
  kFabricArb = 0,
  kDramBankConflict,
  kDramBusTurnaround,
  kDramRefresh,
  kSelf,
};

inline constexpr std::size_t kCauseCount = 5;

/// Stable short name ("fabric_arb", ...) used in exports.
[[nodiscard]] const char* cause_name(Cause c);

/// Sentinel for "no known occupant" (e.g. a bank never activated); the
/// engine folds it onto the victim itself.
inline constexpr axi::MasterId kNoOwner = 0xFFFF;

/// Sentinel for "no DRAM bank involved" (fabric-level waits, or the bank
/// dimension being disabled).
inline constexpr std::uint32_t kNoBank = 0xFFFF'FFFFu;

/// Per-wait bookkeeping embedded in the waiting component (one per AXI
/// port head, one per DRAM queue entry). POD; default state = closed.
struct WaitState {
  sim::TimePs start = 0;  ///< wait begin (independent measurement anchor)
  sim::TimePs last = 0;   ///< end of the last charged slice
  axi::MasterId last_aggressor = 0;
  std::uint32_t last_bank = kNoBank;  ///< bank the victim was waiting on
  Cause last_cause = Cause::kSelf;
  bool open = false;
};

/// The engine.
class AttributionEngine {
 public:
  /// One blame-matrix cell: stalled picoseconds plus the payload bytes
  /// whose delivery the stall delayed (credited to the cell that blocked
  /// the wait last).
  struct Cell {
    std::uint64_t stall_ps = 0;
    std::uint64_t bytes = 0;
  };

  /// One closed accounting window.
  struct WindowRecord {
    sim::TimePs start = 0;
    sim::TimePs end = 0;
    std::vector<Cell> cells;  ///< M * M * kCauseCount, victim-major
  };

  /// Called at each window rollover with the just-closed window.
  using WindowListener = std::function<void(const WindowRecord&)>;

  /// \param metrics registry the summary metrics are published into
  /// \param window_ps blame-matrix accounting window (> 0)
  AttributionEngine(MetricsRegistry& metrics, sim::TimePs window_ps);

  AttributionEngine(const AttributionEngine&) = delete;
  AttributionEngine& operator=(const AttributionEngine&) = delete;

  /// Registers master \p id under \p name. Ids must be dense from 0;
  /// call for every master before the simulation runs.
  void register_master(axi::MasterId id, std::string name);

  [[nodiscard]] std::size_t master_count() const { return names_.size(); }
  [[nodiscard]] const std::string& master_name(axi::MasterId id) const {
    return names_.at(id);
  }
  [[nodiscard]] sim::TimePs window_ps() const { return window_ps_; }

  void add_window_listener(WindowListener fn);

  /// Enables the per-bank blame dimension: charges carrying a bank id
  /// additionally accumulate into cumulative (victim, bank, cause) cells
  /// exported as `bank_total` CSV rows / `bank_totals` JSON and
  /// `attr.<victim>.bank.<b>_ps` metrics. Call after register_master(),
  /// before any charge. Off by default — all exports are byte-identical
  /// to the bank-less engine while disabled.
  void enable_bank_dimension(std::uint32_t banks);
  [[nodiscard]] bool bank_dimension_enabled() const { return banks_ > 0; }
  [[nodiscard]] std::uint32_t bank_count() const { return banks_; }

  /// Attaches the Chrome-trace sink: one counter track per victim
  /// (category "attr"), one series per cause, sampled at window ends.
  void set_trace(TraceWriter* writer);

  // --- hot path ----------------------------------------------------------

  /// Opens \p w at \p start (typically in the past: the instant the head
  /// became ready / the entry became visible).
  void begin_wait(WaitState& w, sim::TimePs start) {
    w.start = start;
    w.last = start;
    w.last_aggressor = kNoOwner;
    w.last_bank = kNoBank;
    w.last_cause = Cause::kSelf;
    w.open = true;
  }

  /// Charges the slice [w.last, now] of \p victim's open wait to
  /// (\p aggressor, \p cause) and remembers the blocker for the final
  /// slice. kNoOwner (or the victim itself for kFabricArb) folds to
  /// (victim, self). \p bank (DRAM bank the wait targets) feeds the
  /// optional bank dimension; kNoBank for fabric-level waits.
  void charge(WaitState& w, axi::MasterId victim, axi::MasterId aggressor,
              Cause cause, sim::TimePs now, axi::Transaction* txn,
              std::uint32_t bank = kNoBank);

  /// Closes \p w at \p now: charges the final slice to the last observed
  /// blocker and credits \p bytes to that cell (only when the wait had
  /// nonzero length).
  void end_wait(WaitState& w, axi::MasterId victim, std::uint32_t bytes,
                sim::TimePs now, axi::Transaction* txn);

  /// Single-shot charge of the closed span [start, end] (e.g. time spent
  /// queued behind the victim's own earlier transactions).
  void charge_span(axi::MasterId victim, axi::MasterId aggressor, Cause cause,
                   sim::TimePs start, sim::TimePs end, axi::Transaction* txn);

  /// Records a conservation residual observed at transaction completion
  /// (|measured - charged|; 0 when the bookkeeping is sound).
  void note_residual(std::uint64_t ps) { residual_ps_ += ps; }

  // --- cold path ---------------------------------------------------------

  /// Publishes the final (partial) window. Call once, at end of run,
  /// before exporting. Idempotent for a given \p now.
  void finish(sim::TimePs now);

  [[nodiscard]] const std::vector<WindowRecord>& windows() const {
    return history_;
  }
  /// Cumulative cell (all windows + the open one).
  [[nodiscard]] const Cell& total(axi::MasterId victim, axi::MasterId aggressor,
                                  Cause cause) const {
    return totals_[index(victim, aggressor, cause)];
  }
  /// Total stall charged to \p victim across aggressors and causes.
  [[nodiscard]] std::uint64_t victim_stall_ps(axi::MasterId victim) const;
  /// Cumulative (victim, bank, cause) cell; bank dimension must be enabled.
  [[nodiscard]] const Cell& bank_total(axi::MasterId victim,
                                       std::uint32_t bank, Cause cause) const {
    return bank_totals_[bank_index(victim, bank, cause)];
  }
  /// Stall of \p victim on \p bank (all causes); 0 while disabled.
  [[nodiscard]] std::uint64_t bank_stall_ps(axi::MasterId victim,
                                            std::uint32_t bank) const;
  /// Stall of \p victim charged to \p aggressor (all causes).
  [[nodiscard]] std::uint64_t blame_ps(axi::MasterId victim,
                                       axi::MasterId aggressor) const;
  /// Stall of \p victim with \p cause (all aggressors).
  [[nodiscard]] std::uint64_t cause_ps(axi::MasterId victim, Cause cause) const;
  [[nodiscard]] std::uint64_t residual_ps() const { return residual_ps_; }

  /// Heaviest (aggressor, cause) cell of \p victim inside \p cells
  /// (a WindowRecord's or the cumulative matrix). Returns false when the
  /// victim has no charges.
  bool dominant(const std::vector<Cell>& cells, axi::MasterId victim,
                axi::MasterId& aggressor, Cause& cause,
                std::uint64_t& stall_ps) const;

  /// Writes the blame matrices as CSV. Schema:
  ///   scope,window_start_ps,window_end_ps,victim,aggressor,cause,stall_ps,bytes
  /// One row per nonzero cell, windows first then `total` rows. When
  /// \p row_prefix is nonempty it is prepended verbatim to every row
  /// (sweep tools add a leading point column); \p header controls the
  /// header line (which gets \p header_prefix prepended).
  void write_csv(std::ostream& os, bool header = true,
                 const std::string& row_prefix = "",
                 const std::string& header_prefix = "") const;
  void save_csv(const std::string& path) const;

  /// Writes one JSON object: masters, causes, window_ps, windows[],
  /// totals[], residual_ps.
  void write_json(std::ostream& os) const;
  void save_json(const std::string& path) const;

  /// Publishes the summary metrics into the registry:
  ///   attr.<victim>.stall_ps / attr.<victim>.cause.<cause>_ps /
  ///   attr.<victim>.from.<aggressor>_ps / telemetry.attribution.windows /
  ///   telemetry.attribution.residual_ps (gauge).
  void publish_metrics();

 private:
  [[nodiscard]] std::size_t index(axi::MasterId victim, axi::MasterId aggressor,
                                  Cause cause) const {
    return (static_cast<std::size_t>(victim) * names_.size() +
            aggressor) * kCauseCount +
           static_cast<std::size_t>(cause);
  }

  [[nodiscard]] std::size_t bank_index(axi::MasterId victim,
                                       std::uint32_t bank, Cause cause) const {
    return (static_cast<std::size_t>(victim) * banks_ + bank) * kCauseCount +
           static_cast<std::size_t>(cause);
  }

  /// Folds sentinel / self-blamed-arbitration charges onto (victim, self).
  void normalize(axi::MasterId victim, axi::MasterId& aggressor,
                 Cause& cause) const;
  void add(axi::MasterId victim, axi::MasterId aggressor, Cause cause,
           std::uint64_t ps, sim::TimePs at);
  /// Closes windows until \p at falls inside the open one.
  void roll_to(sim::TimePs at);
  void publish_window(sim::TimePs end);
  void write_cells(std::ostream& os, const std::vector<Cell>& cells,
                   const char* scope, sim::TimePs start, sim::TimePs end,
                   const std::string& row_prefix) const;

  MetricsRegistry& metrics_;
  sim::TimePs window_ps_;
  sim::TimePs window_start_ = 0;
  std::vector<std::string> names_;
  std::vector<Cell> window_cells_;   ///< open window, M*M*C
  std::vector<Cell> totals_;         ///< cumulative, M*M*C
  std::uint32_t banks_ = 0;          ///< bank dimension size (0 = disabled)
  std::vector<Cell> bank_totals_;    ///< cumulative, M*banks*C
  std::vector<WindowRecord> history_;
  std::vector<WindowListener> listeners_;
  std::uint64_t residual_ps_ = 0;
  bool finished_ = false;
  TraceWriter* trace_ = nullptr;
  std::vector<TrackId> tracks_;  ///< one per victim
};

}  // namespace fgqos::telemetry
