#include "telemetry/profiler.hpp"

#include <algorithm>
#include <charconv>
#include <fstream>

#include "telemetry/manifest.hpp"
#include "util/assert.hpp"
#include "util/config_error.hpp"
#include "util/json.hpp"

namespace fgqos::telemetry {

namespace {

/// Shortest round-tripping double render (same rationale as the metrics
/// exporter: profile documents are diffed by tooling, so keep them
/// canonical).
void write_number(std::ostream& os, double v) {
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  os.write(buf, res.ptr - buf);
}

void write_hist(std::ostream& os, const char* key, const sim::Histogram& h) {
  os << "\"" << key << "\":{\"count\":" << h.count();
  if (h.count() > 0) {
    os << ",\"min\":" << h.min() << ",\"max\":" << h.max() << ",\"mean\":";
    write_number(os, h.mean());
    os << ",\"p50\":" << h.p50() << ",\"p90\":" << h.p90()
       << ",\"p99\":" << h.p99() << ",\"p999\":" << h.p999();
  }
  os << "}";
}

/// "qos.regulator" -> "qos"; tags without a dot are their own group.
std::string_view tag_group(std::string_view name) {
  const std::size_t dot = name.find('.');
  return dot == std::string_view::npos ? name : name.substr(0, dot);
}

}  // namespace

// ---------------------------------------------------------------------------
// ProfileSnapshot
// ---------------------------------------------------------------------------

void ProfileSnapshot::merge(const ProfileSnapshot& other) {
  config_check(tag_table_version == other.tag_table_version,
               "ProfileSnapshot: merging across tag-table versions");
  total_cycles += other.total_cycles;
  oneshot_scheduled += other.oneshot_scheduled;
  recurring_armed += other.recurring_armed;
  events_dispatched += other.events_dispatched;
  ticks_dispatched += other.ticks_dispatched;
  heap_depth.merge(other.heap_depth);
  run_length.merge(other.run_length);
  arm_delta_ps.merge(other.arm_delta_ps);
  // Tags fold by name; both sides are name-sorted, so one linear merge
  // keeps the result sorted (and therefore independent of merge order).
  std::vector<ProfileTagEntry> merged;
  merged.reserve(tags.size() + other.tags.size());
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < tags.size() || j < other.tags.size()) {
    if (j == other.tags.size() ||
        (i < tags.size() && tags[i].name < other.tags[j].name)) {
      merged.push_back(std::move(tags[i++]));
    } else if (i == tags.size() || other.tags[j].name < tags[i].name) {
      merged.push_back(other.tags[j++]);
    } else {
      ProfileTagEntry e = std::move(tags[i++]);
      e.count += other.tags[j].count;
      e.cycles += other.tags[j].cycles;
      ++j;
      merged.push_back(std::move(e));
    }
  }
  tags = std::move(merged);
  for (const ProfileArenaStat& a : other.arenas) {
    auto it = std::find_if(arenas.begin(), arenas.end(),
                           [&](const ProfileArenaStat& mine) {
                             return mine.name == a.name;
                           });
    if (it == arenas.end()) {
      arenas.push_back(a);
    } else {
      it->peak_live = std::max(it->peak_live, a.peak_live);
      it->capacity = std::max(it->capacity, a.capacity);
    }
  }
  std::sort(arenas.begin(), arenas.end(),
            [](const ProfileArenaStat& a, const ProfileArenaStat& b) {
              return a.name < b.name;
            });
}

double ProfileSnapshot::coverage() const {
  if (total_cycles == 0) {
    return 0.0;
  }
  std::uint64_t attributed = 0;
  for (const ProfileTagEntry& t : tags) {
    attributed += t.cycles;
  }
  return static_cast<double>(attributed) / static_cast<double>(total_cycles);
}

void ProfileSnapshot::write_json_object(std::ostream& os) const {
  os << "{\"tag_table_version\":" << tag_table_version
     << ",\"total_cycles\":" << total_cycles << ",\"coverage\":";
  write_number(os, coverage());
  os << ",\"events\":{\"oneshot_scheduled\":" << oneshot_scheduled
     << ",\"recurring_armed\":" << recurring_armed
     << ",\"events_dispatched\":" << events_dispatched
     << ",\"ticks_dispatched\":" << ticks_dispatched << "}";
  os << ",\"tags\":[";
  bool first = true;
  for (const ProfileTagEntry& t : tags) {
    if (!first) {
      os << ",";
    }
    first = false;
    os << "{\"name\":\"" << util::json_escape(t.name)
       << "\",\"count\":" << t.count << ",\"cycles\":" << t.cycles
       << ",\"share\":";
    write_number(os, total_cycles == 0
                         ? 0.0
                         : static_cast<double>(t.cycles) /
                               static_cast<double>(total_cycles));
    os << "}";
  }
  os << "],";
  write_hist(os, "heap_depth", heap_depth);
  os << ",";
  write_hist(os, "run_length", run_length);
  os << ",";
  write_hist(os, "arm_delta_ps", arm_delta_ps);
  os << ",\"arenas\":[";
  first = true;
  for (const ProfileArenaStat& a : arenas) {
    if (!first) {
      os << ",";
    }
    first = false;
    os << "{\"name\":\"" << util::json_escape(a.name)
       << "\",\"peak_live\":" << a.peak_live
       << ",\"capacity\":" << a.capacity << "}";
  }
  os << "]}";
}

void ProfileSnapshot::write_json(std::ostream& os,
                                 const RunManifest* manifest) const {
  os << "{";
  if (manifest != nullptr) {
    os << "\"manifest\":" << manifest->to_json_object() << ",";
  }
  os << "\"profile\":";
  write_json_object(os);
  os << "}\n";
}

void ProfileSnapshot::save_json(const std::string& path,
                                const RunManifest* manifest) const {
  std::ofstream os(path);
  config_check(os.good(), "ProfileSnapshot: cannot write " + path);
  write_json(os, manifest);
  config_check(os.good(), "ProfileSnapshot: error writing " + path);
}

void ProfileSnapshot::write_folded(std::ostream& os) const {
  for (const ProfileTagEntry& t : tags) {
    if (t.cycles == 0) {
      continue;  // flamegraph tooling chokes on zero-weight frames
    }
    os << "fgqos;" << tag_group(t.name) << ";" << t.name << " " << t.cycles
       << "\n";
  }
}

void ProfileSnapshot::save_folded(const std::string& path) const {
  std::ofstream os(path);
  config_check(os.good(), "ProfileSnapshot: cannot write " + path);
  write_folded(os);
  config_check(os.good(), "ProfileSnapshot: error writing " + path);
}

// ---------------------------------------------------------------------------
// HostProfiler
// ---------------------------------------------------------------------------

HostProfiler::HostProfiler() {
  const std::uint32_t untagged = register_tag("kernel.untagged");
  const std::uint32_t overhead = register_tag("kernel.overhead");
  FGQOS_ASSERT(untagged == sim::kProfTagUntagged &&
                   overhead == sim::kProfTagOverhead,
               "HostProfiler: well-known tag ids out of sync with sim/prof");
}

std::uint32_t HostProfiler::register_tag(std::string_view name) {
  auto it = ids_.find(name);
  if (it != ids_.end()) {
    return it->second;
  }
  config_check(names_.size() < sim::ProfTable::kMaxTags,
               "HostProfiler: tag table full (" +
                   std::to_string(sim::ProfTable::kMaxTags) + " tags)");
  const auto id = static_cast<std::uint32_t>(names_.size());
  names_.emplace_back(name);
  ids_.emplace(names_.back(), id);
  return id;
}

sim::ProfTable& HostProfiler::acquire_table() {
  const std::size_t slot = tables_used_.fetch_add(1);
  config_check(slot < kMaxTables, "HostProfiler: out of per-thread tables");
  tables_[slot] = std::make_unique<sim::ProfTable>();
  return *tables_[slot];
}

void HostProfiler::attach(sim::Simulator& sim) {
  sim::ProfTable& table = acquire_table();
  sim.set_profiler(&table, [this](std::string_view name) {
    return register_tag(name);
  });
}

void HostProfiler::record_arena(const std::string& name, std::uint64_t live,
                                std::uint64_t capacity) {
  ProfileArenaStat& a = arenas_[name];
  a.name = name;
  a.peak_live = std::max(a.peak_live, live);
  a.capacity = std::max(a.capacity, capacity);
}

ProfileSnapshot HostProfiler::snapshot() const {
  ProfileSnapshot s;
  const std::size_t used = std::min(tables_used_.load(), kMaxTables);
  // Sum the fixed tables per tag id first, then materialise only the
  // live tags under their names, sorted.
  std::vector<sim::ProfTagStat> by_id(names_.size());
  for (std::size_t t = 0; t < used; ++t) {
    const sim::ProfTable& tab = *tables_[t];
    for (std::size_t id = 0; id < names_.size(); ++id) {
      by_id[id].count += tab.tags[id].count;
      by_id[id].cycles += tab.tags[id].cycles;
    }
    s.total_cycles += tab.total_cycles;
    s.oneshot_scheduled += tab.oneshot_scheduled;
    s.recurring_armed += tab.recurring_armed;
    s.events_dispatched += tab.events_dispatched;
    s.ticks_dispatched += tab.ticks_dispatched;
    s.heap_depth.merge(tab.heap_depth);
    s.run_length.merge(tab.run_length);
    s.arm_delta_ps.merge(tab.arm_delta_ps);
  }
  for (std::size_t id = 0; id < names_.size(); ++id) {
    if (by_id[id].count == 0 && by_id[id].cycles == 0) {
      continue;
    }
    s.tags.push_back(
        ProfileTagEntry{names_[id], by_id[id].count, by_id[id].cycles});
  }
  std::sort(s.tags.begin(), s.tags.end(),
            [](const ProfileTagEntry& a, const ProfileTagEntry& b) {
              return a.name < b.name;
            });
  for (const auto& [name, a] : arenas_) {
    s.arenas.push_back(a);
  }
  return s;
}

}  // namespace fgqos::telemetry
