/// \file profiler.hpp
/// \brief Host-side hot-path profiler: per-component CPU attribution,
///        kernel micro-telemetry, flamegraph export.
///
/// The paper's lesson — regulation is only as good as the monitoring it
/// is coupled to — applied to our own hot path: before restructuring the
/// event kernel (ROADMAP item 2) we need to know which component the host
/// cycles actually go to and what the event population looks like.
///
/// The profiler has two halves. The hot half lives in sim/prof.hpp: a
/// fixed-size per-thread ProfTable the kernel writes with no allocation
/// and no locks (one cycle-counter read per dispatch, fence-post
/// attribution, so per-tag cycles sum exactly to the measured total).
/// This header is the cold half: the tag-name registry (register once at
/// assembly time, idempotent by name), table ownership, and the merged
/// ProfileSnapshot with its exports — folded-stack text for flamegraph
/// tooling, a profile JSON document carrying the RunManifest, and
/// metrics-registry publication. Snapshots merge commutatively (sums by
/// tag name, histogram bucket adds), so per-job profiles folded in
/// ScenarioRunner submission order are identical for any --jobs count.
///
/// Zero-cost-when-disabled: with no profiler attached the kernel takes
/// one predicted branch per run_until() call and none per event; the
/// disabled-overhead gate in CI holds the profile-off golden CSVs
/// byte-identical and BENCH_micro events/s within 1%.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "sim/prof.hpp"
#include "sim/simulator.hpp"

namespace fgqos::telemetry {

struct RunManifest;

/// Version of the profiler's tag-table layout and profile export schema.
/// Bump when the well-known tags, the folded-stack shape or the profile
/// JSON shape change incompatibly; fgqos_report refuses to diff profiles
/// across versions unless forced.
inline constexpr int kProfilerTagTableVersion = 1;

/// One merged tag in a snapshot.
struct ProfileTagEntry {
  std::string name;
  std::uint64_t count = 0;   ///< dispatches attributed
  std::uint64_t cycles = 0;  ///< cycle-counter ticks attributed
};

/// Peak occupancy of one slab arena (e.g. the DRAM controller's
/// transaction pool), sampled by the owning platform.
struct ProfileArenaStat {
  std::string name;
  std::uint64_t peak_live = 0;
  std::uint64_t capacity = 0;
};

/// Merged, export-ready view of one or more ProfTables. Plain data:
/// copyable, default-constructible, mergeable — sweep outcomes carry one
/// per point and fold them in submission order.
struct ProfileSnapshot {
  int tag_table_version = kProfilerTagTableVersion;
  std::uint64_t total_cycles = 0;
  std::uint64_t oneshot_scheduled = 0;
  std::uint64_t recurring_armed = 0;
  std::uint64_t events_dispatched = 0;
  std::uint64_t ticks_dispatched = 0;
  /// Sorted by tag name, zero-cycle zero-count tags dropped — so the
  /// rendering is independent of registration and merge order.
  std::vector<ProfileTagEntry> tags;
  sim::Histogram heap_depth;
  sim::Histogram run_length;
  sim::Histogram arm_delta_ps;
  /// Sorted by arena name.
  std::vector<ProfileArenaStat> arenas;

  /// Folds \p other in: commutative and associative (per-name sums,
  /// histogram bucket adds, per-arena maxima), so any merge order yields
  /// the same snapshot.
  void merge(const ProfileSnapshot& other);

  /// Sum of per-tag cycles over total_cycles (1.0 by construction for a
  /// single table; the acceptance gate requires >= 0.95). 0 when empty.
  [[nodiscard]] double coverage() const;

  /// Writes the profile JSON document:
  ///   {"manifest":{...},"profile":{"tag_table_version":...,"tags":[...],
  ///    "heap_depth":{...},"run_length":{...},...}}
  /// The manifest member is omitted when \p manifest is null.
  void write_json(std::ostream& os, const RunManifest* manifest = nullptr) const;
  void save_json(const std::string& path,
                 const RunManifest* manifest = nullptr) const;
  /// Writes just the profile object (the value of the "profile" key);
  /// used to splice the section into other documents (BENCH_micro.json).
  void write_json_object(std::ostream& os) const;

  /// Writes folded-stack text for flamegraph tooling, one line per tag:
  ///   fgqos;<group>;<tag> <cycles>
  /// where <group> is the first dot-separated component of the tag name.
  void write_folded(std::ostream& os) const;
  void save_folded(const std::string& path) const;
};

/// The profiler: tag-name registry + table pool + snapshot/merge.
class HostProfiler {
 public:
  /// Tables this profiler can hand out (one per simulation thread; a
  /// platform uses exactly one).
  static constexpr std::size_t kMaxTables = 32;

  /// Registers the well-known tags (kernel.untagged, kernel.overhead) so
  /// their ids match sim::kProfTagUntagged / sim::kProfTagOverhead.
  HostProfiler();

  HostProfiler(const HostProfiler&) = delete;
  HostProfiler& operator=(const HostProfiler&) = delete;

  /// Returns the id of tag \p name, registering it on first use —
  /// idempotent, so recurring events re-registering across re-arms (or
  /// two components sharing a name) converge on one id. Throws
  /// ConfigError when the fixed table is full (ProfTable::kMaxTags).
  std::uint32_t register_tag(std::string_view name);

  [[nodiscard]] std::size_t tag_count() const { return names_.size(); }
  [[nodiscard]] const std::string& tag_name(std::uint32_t id) const {
    return names_.at(id);
  }

  /// Hands out the next free per-thread table. Thread-safe (one atomic
  /// bump); each table must only ever be written by one thread. Throws
  /// ConfigError when kMaxTables are in use.
  sim::ProfTable& acquire_table();

  /// Attaches this profiler to \p sim: acquires a table and wires the
  /// kernel's dispatch attribution and tag registration to it.
  void attach(sim::Simulator& sim);

  /// Records a slab-arena occupancy sample; keeps the per-arena peak.
  /// Cold path (called from metric collection, not per transaction).
  void record_arena(const std::string& name, std::uint64_t live,
                    std::uint64_t capacity);

  /// Merges every acquired table (and the arena peaks) into one
  /// export-ready snapshot. Call after the runs finish; reading tables
  /// concurrently with a running simulation is a data race.
  [[nodiscard]] ProfileSnapshot snapshot() const;

 private:
  std::vector<std::string> names_;              ///< id -> name
  std::map<std::string, std::uint32_t, std::less<>> ids_;  ///< name -> id
  std::array<std::unique_ptr<sim::ProfTable>, kMaxTables> tables_;
  std::atomic<std::size_t> tables_used_{0};
  std::map<std::string, ProfileArenaStat> arenas_;
};

}  // namespace fgqos::telemetry
