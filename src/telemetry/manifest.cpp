#include "telemetry/manifest.hpp"

#include <sstream>

#include "util/json.hpp"

namespace fgqos::telemetry {

const char* RunManifest::build_flavor() {
#ifdef NDEBUG
  return "release";
#else
  return "debug";
#endif
}

std::string fnv1a_hex(const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  char buf[17];
  static const char* hex = "0123456789abcdef";
  for (int i = 15; i >= 0; --i) {
    buf[i] = hex[h & 0xF];
    h >>= 4;
  }
  buf[16] = '\0';
  return buf;
}

std::string RunManifest::to_json_object() const {
  std::ostringstream os;
  os << "{\"schema_version\":" << schema_version << ",\"tool\":\""
     << util::json_escape(tool) << "\",\"scenario\":\""
     << util::json_escape(scenario) << "\",\"seed\":" << seed
     << ",\"fault_spec_hash\":\"" << util::json_escape(fault_spec_hash)
     << "\",\"build\":\"" << util::json_escape(build) << "\"";
  if (profile_tag_table_version != 0) {
    // Conditional: profile-off manifests (all goldens) stay byte-identical.
    os << ",\"profile_tag_table_version\":" << profile_tag_table_version;
  }
  os << "}";
  return os.str();
}

std::string RunManifest::to_csv_comment() const {
  // scenario goes last: it may contain spaces, so the parser treats the
  // remainder of the line after "scenario=" as its value.
  std::ostringstream os;
  os << "# fgqos-manifest schema_version=" << schema_version
     << " tool=" << tool << " seed=" << seed
     << " fault_spec_hash=" << fault_spec_hash << " build=" << build;
  if (profile_tag_table_version != 0) {
    os << " profile_tag_table_version=" << profile_tag_table_version;
  }
  os << " scenario=" << scenario << "\n";
  return os.str();
}

RunManifest RunManifest::from_json(const util::JsonValue& v) {
  RunManifest m;
  if (!v.is_object()) {
    return m;
  }
  if (v.contains("schema_version")) {
    m.schema_version = static_cast<int>(v.at("schema_version").as_number());
  }
  if (v.contains("tool")) {
    m.tool = v.at("tool").as_string();
  }
  if (v.contains("scenario")) {
    m.scenario = v.at("scenario").as_string();
  }
  if (v.contains("seed")) {
    const util::JsonValue& s = v.at("seed");
    m.seed = s.is_uint64() ? s.as_uint64()
                           : static_cast<std::uint64_t>(s.as_number());
  }
  if (v.contains("fault_spec_hash")) {
    m.fault_spec_hash = v.at("fault_spec_hash").as_string();
  }
  if (v.contains("build")) {
    m.build = v.at("build").as_string();
  }
  if (v.contains("profile_tag_table_version")) {
    m.profile_tag_table_version =
        static_cast<int>(v.at("profile_tag_table_version").as_number());
  }
  return m;
}

bool RunManifest::from_csv_comment(const std::string& line, RunManifest& out) {
  static const std::string kTag = "# fgqos-manifest ";
  if (line.compare(0, kTag.size(), kTag) != 0) {
    return false;
  }
  RunManifest m;
  std::size_t pos = kTag.size();
  while (pos < line.size()) {
    const std::size_t eq = line.find('=', pos);
    if (eq == std::string::npos) {
      break;
    }
    const std::string key = line.substr(pos, eq - pos);
    if (key == "scenario") {
      // Remainder of the line (minus a trailing newline) is the value.
      std::string rest = line.substr(eq + 1);
      while (!rest.empty() && (rest.back() == '\n' || rest.back() == '\r')) {
        rest.pop_back();
      }
      m.scenario = rest;
      pos = line.size();
      break;
    }
    std::size_t end = line.find(' ', eq + 1);
    if (end == std::string::npos) {
      end = line.size();
    }
    std::string value = line.substr(eq + 1, end - (eq + 1));
    while (!value.empty() && (value.back() == '\n' || value.back() == '\r')) {
      value.pop_back();
    }
    if (key == "schema_version") {
      m.schema_version = std::stoi(value);
    } else if (key == "tool") {
      m.tool = value;
    } else if (key == "seed") {
      m.seed = std::stoull(value);
    } else if (key == "fault_spec_hash") {
      m.fault_spec_hash = value;
    } else if (key == "build") {
      m.build = value;
    } else if (key == "profile_tag_table_version") {
      m.profile_tag_table_version = std::stoi(value);
    }
    pos = end + 1;
  }
  out = m;
  return true;
}

}  // namespace fgqos::telemetry
