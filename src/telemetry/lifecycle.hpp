/// \file lifecycle.hpp
/// \brief Per-port transaction-lifecycle tracer: hop histograms + spans.
///
/// One TxnLifecycleTracer observes one MasterPort (attached with
/// port.add_observer). At completion every transaction carries the full
/// set of lifecycle stamps (issue -> grant -> DRAM enqueue -> DRAM service
/// -> response), so the tracer attributes its end-to-end latency to hops:
///
///   gate_ps          issue -> first grant (request queue, QoS gates,
///                    crossbar arbitration)
///   xbar_ps          first grant -> first line at the DRAM controller
///                    (crossbar forward + controller front-end)
///   dram_queue_ps    controller arrival -> first data burst (FR-FCFS
///                    queueing, bank prep)
///   dram_service_ps  first -> last data burst (service proper)
///   response_ps      last data burst -> response at the master
///
/// Each hop feeds a registry histogram "port.<name>.hop.<hop>"; when a
/// TraceWriter is attached, the whole transaction is additionally emitted
/// as an async span (id = transaction id) with the hop breakdown in the
/// end event's args.
#pragma once

#include <string>

#include "axi/port.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace fgqos::telemetry {

/// The per-port tracer. Near-zero cost: five saturating subtractions and
/// six histogram records per *transaction* (not per line); span emission
/// only when a trace sink is attached.
class TxnLifecycleTracer final : public axi::TxnObserver {
 public:
  TxnLifecycleTracer(MetricsRegistry& metrics, std::string port_name);

  /// Attaches (or detaches, nullptr) the trace sink; registers this
  /// port's track on attach.
  void set_trace(TraceWriter* writer);

  [[nodiscard]] const std::string& port_name() const { return name_; }

  // TxnObserver
  void on_issue(const axi::Transaction& txn, sim::TimePs now) override;
  void on_grant(const axi::LineRequest& line, sim::TimePs now) override;
  void on_complete(const axi::Transaction& txn, sim::TimePs now) override;

 private:
  std::string name_;
  Histogram& gate_;
  Histogram& xbar_;
  Histogram& dram_queue_;
  Histogram& dram_service_;
  Histogram& response_;
  Histogram& total_;
  TraceWriter* trace_ = nullptr;
  TrackId track_;
};

}  // namespace fgqos::telemetry
