/// \file report.hpp
/// \brief Run-comparison and regression analysis over exported artifacts.
///
/// The library behind the `fgqos_report` tool: it parses the files a run
/// writes (metrics JSON, blame CSV, decision-journal JSONL, time-series
/// JSON, BENCH_micro.json) back into memory, compares two runs per tenant
/// (p50/p99/p999 latency, bandwidth), diffs blame matrices, summarises
/// the decision timelines, and renders pass/fail verdicts against
/// configurable regression thresholds. Manifests embedded in the
/// artifacts gate the comparison: runs whose export schema or producing
/// tool differ are refused unless forced.
///
/// Everything here works on *files*, not on live platform objects, so the
/// analysis can run on another machine, in CI, long after the simulation
/// finished.
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "sim/time.hpp"
#include "telemetry/journal.hpp"
#include "telemetry/manifest.hpp"

namespace fgqos::telemetry {

/// One metric parsed back from a metrics JSON export.
struct MetricSample {
  enum class Type : std::uint8_t { kCounter, kGauge, kHistogram };
  Type type = Type::kCounter;
  double value = 0.0;  ///< counter/gauge value (histograms use the fields below)
  std::uint64_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double p999 = 0.0;
  /// True when the histogram export actually carried its quantile keys.
  /// Empty histograms (and truncated or foreign exports) omit them; the
  /// zero-initialised fields above are then placeholders, not
  /// measurements, and must render as "n/a"/null rather than 0.
  bool has_quantiles = false;
};

/// Whole-run summary of one time series (parsed from the recorder's JSON).
struct SeriesSummary {
  std::string kind;  ///< "gauge" or "delta"
  std::uint64_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double p50 = 0.0;
  double p99 = 0.0;
  double p999 = 0.0;
};

/// One run's artifacts, parsed back into memory. Load whichever files the
/// run produced; every loader is optional and independent.
struct RunData {
  std::string label;  ///< "A" / "B" in reports
  RunManifest manifest;
  bool has_manifest = false;

  sim::TimePs time_ps = 0;  ///< simulated horizon from the metrics snapshot
  std::map<std::string, MetricSample> metrics;

  /// Whole-run blame totals (scope=total rows), keyed
  /// "victim|aggressor|cause" -> stall_ps. Sweep-merged files with a
  /// leading point column are summed across points.
  std::map<std::string, double> blame_stall_ps;

  std::vector<JournalEntry> journal;
  std::uint64_t journal_dropped = 0;
  bool has_journal = false;

  std::map<std::string, SeriesSummary> timeseries;
  sim::TimePs timeseries_window_ps = 0;

  /// Loaders; each throws ConfigError on unreadable or malformed input.
  /// A manifest found in any artifact is adopted (the first one wins;
  /// later conflicting manifests throw — mixed-run artifact sets are
  /// exactly the mistake the manifest exists to catch).
  void load_metrics_json(const std::string& path);
  void load_blame_csv(const std::string& path);
  void load_journal_jsonl(const std::string& path);
  void load_timeseries_json(const std::string& path);

  /// Tenant names with any per-port metric ("port.<tenant>.*"), sorted.
  [[nodiscard]] std::vector<std::string> tenants() const;

 private:
  void adopt_manifest(const RunManifest& m);
};

/// Regression thresholds for compare_runs().
struct ReportThresholds {
  /// Max tolerated p99/p999 latency growth, percent (B worse than A).
  double max_p99_regress_pct = 10.0;
  /// Max tolerated per-tenant bandwidth drop, percent.
  double max_bw_drop_pct = 10.0;
};

/// One compared quantity of one tenant.
struct TenantDelta {
  std::string tenant;
  std::string metric;  ///< "p50_ps", "p99_ps", "p999_ps", "bandwidth_bps"
  double a = 0.0;
  double b = 0.0;
  double delta_pct = 0.0;  ///< (b - a) / a * 100; 0 when a == 0
  bool regression = false;
  /// False when the runs did not capture this quantity (e.g. p999 for a
  /// tenant with only the read_p99_ps gauge, no hop histogram): the row
  /// renders as "n/a" (JSON null) and never participates in PASS/FAIL
  /// gating — an absent measurement must not masquerade as 0.
  bool available = true;
};

/// One blame-matrix cell that moved between the runs.
struct BlameDelta {
  std::string victim;
  std::string aggressor;
  std::string cause;
  double a_stall_ps = 0.0;
  double b_stall_ps = 0.0;
};

/// Decision-timeline digest of one run's journal.
struct JournalSummary {
  std::uint64_t entries = 0;
  std::uint64_t dropped = 0;
  std::map<std::string, std::uint64_t> action_counts;
  /// Noteworthy entries (watchdog degrade/re-arm, SLA trips, fault
  /// activations), pre-rendered one per line for the text report.
  std::vector<std::string> highlights;
};

/// The comparison result.
struct RunReport {
  RunData const* a = nullptr;  ///< borrowed; must outlive the report
  RunData const* b = nullptr;  ///< null for a single-run summary
  ReportThresholds thresholds;
  bool comparable = true;      ///< manifests agreed (or were absent/forced)
  std::string manifest_note;   ///< why comparable is false / was forced
  std::vector<TenantDelta> tenant_deltas;
  std::vector<BlameDelta> blame_deltas;  ///< sorted by |b - a| descending
  JournalSummary journal_a;
  JournalSummary journal_b;
  std::vector<std::string> regressions;  ///< human-readable verdicts
  [[nodiscard]] bool pass() const { return regressions.empty(); }

  void write_text(std::ostream& os) const;
  void write_json(std::ostream& os) const;
};

/// Digests \p r's journal (no-op summary when the run has none).
[[nodiscard]] JournalSummary summarize_journal(const RunData& r);

/// Compares run \p b against baseline \p a. Throws ConfigError when both
/// runs carry manifests that are not comparable_with() each other, unless
/// \p force — then the mismatch is recorded in manifest_note instead.
[[nodiscard]] RunReport compare_runs(const RunData& a, const RunData& b,
                                     const ReportThresholds& thresholds,
                                     bool force = false);

/// Single-run digest: tenant metrics, journal summary, time-series
/// overview of \p a alone (tenant_deltas carry a == b).
[[nodiscard]] RunReport summarize_run(const RunData& a);

/// Kernel micro-benchmark comparison (BENCH_micro.json schema).
struct BenchComparison {
  double base_events_per_sec = 0.0;
  double new_events_per_sec = 0.0;
  double base_ns_per_event = 0.0;
  double new_ns_per_event = 0.0;
  double drop_pct = 0.0;  ///< throughput loss, percent (negative = faster)
  double max_drop_pct = 10.0;
  [[nodiscard]] bool pass() const { return drop_pct <= max_drop_pct; }

  void write_text(std::ostream& os) const;
  void write_json(std::ostream& os) const;
};

/// Parses two BENCH_micro.json documents and compares events_per_sec.
/// Throws ConfigError on malformed input, a missing events_per_sec, or
/// (when both documents carry one) a schema_version mismatch.
[[nodiscard]] BenchComparison compare_bench(const std::string& baseline_json,
                                            const std::string& fresh_json,
                                            double max_drop_pct = 10.0);

/// One host-profile artifact parsed back from disk: either the JSON a
/// run writes via --profile-json (`{"manifest":...,"profile":{...}}`,
/// the bare `{"profile":{...}}` form, or a raw profile object), or a
/// folded-stack file (`fgqos;<group>;<tag> <cycles>` lines).
struct ProfileData {
  RunManifest manifest;
  bool has_manifest = false;
  int tag_table_version = 0;
  std::uint64_t total_cycles = 0;
  double coverage = 0.0;
  /// tag name -> {count, cycles}, sorted by name (std::map).
  std::map<std::string, std::pair<std::uint64_t, std::uint64_t>> tags;

  /// Cycle share of \p tag (0 when the profile is empty).
  [[nodiscard]] double share(const std::string& tag) const;

  /// Autodetects JSON vs folded by the first non-space byte ('{' = JSON).
  [[nodiscard]] static ProfileData parse(const std::string& text);
  [[nodiscard]] static ProfileData load(const std::string& path);
};

/// Per-tag cycle-share movement between two profiles.
struct ProfileTagDelta {
  std::string name;
  double share_a = 0.0;
  double share_b = 0.0;
  [[nodiscard]] double delta_pp() const { return (share_b - share_a) * 100.0; }
};

/// Host-profile comparison: flags tags whose cycle share grew by more
/// than max_share_regress_pp percentage points.
struct ProfileComparison {
  std::vector<ProfileTagDelta> deltas;      ///< sorted by |delta| descending
  std::vector<std::string> regressions;     ///< human-readable verdicts
  std::string manifest_note;                ///< set when forced past a mismatch
  double max_share_regress_pp = 2.0;
  double coverage_a = 0.0;
  double coverage_b = 0.0;
  [[nodiscard]] bool pass() const { return regressions.empty(); }

  void write_text(std::ostream& os) const;
  void write_json(std::ostream& os) const;
};

/// Compares profile \p b against baseline \p a. Throws ConfigError when
/// the two profiles carry different tag-table versions (the tag sets are
/// not comparable), unless \p force — then the mismatch is recorded in
/// manifest_note instead.
[[nodiscard]] ProfileComparison compare_profiles(
    const ProfileData& a, const ProfileData& b,
    double max_share_regress_pp = 2.0, bool force = false);

}  // namespace fgqos::telemetry
