/// \file metrics.hpp
/// \brief Typed metrics registry with hierarchical dotted names.
///
/// The registry is the one place every component's numbers end up in:
/// monotonic Counters, settable Gauges and HDR Histograms, addressed by
/// hierarchical names such as "dram.ch0.row_hits" or
/// "port.cpu.hop.dram_service_ps". Handles returned by counter()/gauge()/
/// histogram() are stable for the registry's lifetime, so hot paths update
/// a plain field — no lookup, no branch, no sink indirection. Exporting
/// (JSON or CSV snapshot) walks the registry once at the end of a run.
///
/// This subsumes the ad-hoc sim::StatsRegistry scalar dump: Soc fills a
/// MetricsRegistry and the legacy StatsRegistry view is derived from it.
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <string>

#include "sim/histogram.hpp"
#include "sim/time.hpp"

namespace fgqos::telemetry {

struct RunManifest;

/// Monotonically increasing counter handle.
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_ += n; }
  [[nodiscard]] std::uint64_t value() const { return value_; }
  void reset() { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-value gauge handle.
class Gauge {
 public:
  void set(double v) { value_ = v; }
  void add(double v) { value_ += v; }
  [[nodiscard]] double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Histograms reuse the simulator's HDR-style log-linear implementation.
using Histogram = sim::Histogram;

/// The registry. Metric names are registered on first use; registering the
/// same name with a different type throws ConfigError (name collision).
class MetricsRegistry {
 public:
  /// Returns the counter named \p name, creating it on first use.
  Counter& counter(const std::string& name);
  /// Returns the gauge named \p name, creating it on first use.
  Gauge& gauge(const std::string& name);
  /// Returns the histogram named \p name, creating it on first use.
  Histogram& histogram(const std::string& name);

  [[nodiscard]] bool contains(const std::string& name) const;
  [[nodiscard]] std::size_t size() const { return metrics_.size(); }

  /// Scalar read of a counter or gauge; throws ConfigError when absent or
  /// when the metric is a histogram.
  [[nodiscard]] double scalar(const std::string& name) const;

  /// Discards every metric.
  void clear() { metrics_.clear(); }

  /// Removes every metric whose name starts with \p prefix; returns the
  /// number removed. Invalidates handles to the removed metrics — use
  /// only between a collection pass and an export, e.g. to drop the
  /// host-dependent `sim.wall*` numbers from snapshots that must be
  /// bit-identical across runs.
  std::size_t erase_prefix(const std::string& prefix);

  /// Writes the full snapshot as one JSON object:
  ///   {"time_ps": ..., "metrics": {"name": {"type": ..., ...}, ...}}
  /// Histograms export count/min/max/mean/stddev and the standard
  /// percentiles (p50/p90/p99/p999). When \p manifest is non-null the
  /// object gains a leading "manifest" member carrying run provenance
  /// (fgqos_report refuses to compare snapshots whose manifests do not
  /// line up).
  void write_json(std::ostream& os, sim::TimePs now,
                  const RunManifest* manifest = nullptr) const;
  /// write_json to \p path; throws ConfigError when the file cannot be
  /// written.
  void save_json(const std::string& path, sim::TimePs now,
                 const RunManifest* manifest = nullptr) const;

  /// Writes a flat CSV snapshot (name,type,count,value,p50,p90,p99,p999,max).
  /// When \p manifest is non-null it is embedded as a leading
  /// '# fgqos-manifest ...' comment line before the header.
  void write_csv(std::ostream& os, const RunManifest* manifest = nullptr) const;
  void save_csv(const std::string& path,
                const RunManifest* manifest = nullptr) const;

  /// Calls \p fn(name, metric kind string, scalar-or-count) for each metric
  /// in name order — used by the legacy StatsRegistry adapter.
  template <typename Fn>
  void for_each_scalar(Fn&& fn) const {
    for (const auto& [name, m] : metrics_) {
      if (m.kind == Kind::kCounter) {
        fn(name, static_cast<double>(m.counter.value()));
      } else if (m.kind == Kind::kGauge) {
        fn(name, m.gauge.value());
      }
    }
  }

 private:
  enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };

  struct Metric {
    Kind kind = Kind::kCounter;
    Counter counter;
    Gauge gauge;
    Histogram histogram;
  };

  Metric& fetch(const std::string& name, Kind kind);

  /// std::map: node-based, so Metric addresses (and thus handles) are
  /// stable across later registrations.
  std::map<std::string, Metric> metrics_;
};

}  // namespace fgqos::telemetry
