#include "telemetry/report.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <fstream>
#include <sstream>

#include "util/config_error.hpp"
#include "util/json.hpp"
#include "util/string_util.hpp"

namespace fgqos::telemetry {

namespace {

/// Shortest representation that round-trips the exact double (the same
/// contract every exporter in the codebase uses).
void write_number(std::ostream& os, double v) {
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  os.write(buf, res.ptr - buf);
}

std::string read_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  config_check(is.good(), "report: cannot read '" + path + "'");
  std::ostringstream ss;
  ss << is.rdbuf();
  return ss.str();
}

double number_or(const util::JsonValue& obj, const std::string& key,
                 double def) {
  if (!obj.contains(key)) {
    return def;
  }
  return obj.at(key).as_number();
}

std::string string_or(const util::JsonValue& obj, const std::string& key) {
  if (!obj.contains(key) || !obj.at(key).is_string()) {
    return "";
  }
  return obj.at(key).as_string();
}

double pct_delta(double a, double b) {
  if (a == 0.0) {
    return 0.0;
  }
  return (b - a) / a * 100.0;
}

std::string format_pct(double pct) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%+.1f%%", pct);
  return buf;
}

std::string format_value(double v) {
  char buf[32];
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof buf, "%.0f", v);
  } else {
    std::snprintf(buf, sizeof buf, "%.3f", v);
  }
  return buf;
}

std::string manifest_line(const RunData& r) {
  if (!r.has_manifest) {
    return "(no manifest)";
  }
  const RunManifest& m = r.manifest;
  std::string s = "tool=" + m.tool + " schema_version=" +
                  std::to_string(m.schema_version) + " seed=" +
                  std::to_string(m.seed) + " build=" + m.build;
  if (!m.fault_spec_hash.empty()) {
    s += " fault_spec_hash=" + m.fault_spec_hash;
  }
  if (!m.scenario.empty()) {
    s += " scenario=\"" + m.scenario + "\"";
  }
  return s;
}

/// Compares one quantity of one tenant and appends the row (and any
/// verdict) to the report. \p lower_is_better selects which direction of
/// travel counts against \p threshold_pct.
void push_delta(RunReport& rep, const std::string& tenant,
                const std::string& metric, double a, double b,
                double threshold_pct, bool lower_is_better) {
  TenantDelta d;
  d.tenant = tenant;
  d.metric = metric;
  d.a = a;
  d.b = b;
  d.delta_pct = pct_delta(a, b);
  if (threshold_pct > 0.0) {
    d.regression = lower_is_better ? d.delta_pct > threshold_pct
                                   : d.delta_pct < -threshold_pct;
  }
  if (d.regression) {
    rep.regressions.push_back(
        tenant + " " + metric + " " + format_pct(d.delta_pct) + " (" +
        format_value(a) + " -> " + format_value(b) + ") exceeds " +
        format_value(threshold_pct) + "% threshold");
  }
  rep.tenant_deltas.push_back(std::move(d));
}

const MetricSample* find_metric(const RunData& r, const std::string& name) {
  const auto it = r.metrics.find(name);
  return it == r.metrics.end() ? nullptr : &it->second;
}

void summarize_entry(const JournalEntry& e, std::vector<std::string>& out) {
  std::string line = std::to_string(e.at / sim::kPsPerUs) + "us " +
                     e.component + " " + e.action + " " +
                     format_value(e.old_value) + "->" +
                     format_value(e.new_value);
  if (!e.cause.empty()) {
    line += " (" + e.cause + ")";
  }
  if (!e.detail.empty()) {
    line += " " + e.detail;
  }
  out.push_back(std::move(line));
}

}  // namespace

void RunData::adopt_manifest(const RunManifest& m) {
  if (!has_manifest) {
    manifest = m;
    has_manifest = true;
    return;
  }
  config_check(
      manifest.comparable_with(m) && manifest.seed == m.seed &&
          manifest.scenario == m.scenario &&
          manifest.fault_spec_hash == m.fault_spec_hash,
      "report: run " + label +
          " mixes artifacts from different runs (manifests disagree: '" +
          manifest.to_json_object() + "' vs '" + m.to_json_object() + "')");
}

void RunData::load_metrics_json(const std::string& path) {
  const util::JsonValue doc = util::JsonValue::parse(read_file(path));
  config_check(doc.is_object(), "report: '" + path + "' is not a JSON object");
  if (doc.contains("manifest")) {
    adopt_manifest(RunManifest::from_json(doc.at("manifest")));
  }
  if (doc.contains("time_ps")) {
    time_ps = doc.at("time_ps").is_uint64()
                  ? doc.at("time_ps").as_uint64()
                  : static_cast<sim::TimePs>(doc.at("time_ps").as_number());
  }
  config_check(doc.contains("metrics"),
               "report: '" + path + "' has no \"metrics\" object");
  for (const auto& [name, m] : doc.at("metrics").as_object()) {
    MetricSample s;
    const std::string type = string_or(m, "type");
    if (type == "counter") {
      s.type = MetricSample::Type::kCounter;
      s.value = number_or(m, "value", 0.0);
    } else if (type == "gauge") {
      s.type = MetricSample::Type::kGauge;
      s.value = number_or(m, "value", 0.0);
    } else if (type == "histogram") {
      s.type = MetricSample::Type::kHistogram;
      s.count = static_cast<std::uint64_t>(number_or(m, "count", 0.0));
      s.min = number_or(m, "min", 0.0);
      s.max = number_or(m, "max", 0.0);
      s.mean = number_or(m, "mean", 0.0);
      s.p50 = number_or(m, "p50", 0.0);
      s.p90 = number_or(m, "p90", 0.0);
      s.p99 = number_or(m, "p99", 0.0);
      s.p999 = number_or(m, "p999", 0.0);
      s.has_quantiles =
          m.contains("p50") && m.contains("p99") && m.contains("p999");
    } else {
      throw ConfigError("report: metric '" + name + "' in '" + path +
                        "' has unknown type '" + type + "'");
    }
    metrics[name] = s;
  }
}

void RunData::load_blame_csv(const std::string& path) {
  std::istringstream is(read_file(path));
  std::string line;
  bool saw_header = false;
  bool has_point_column = false;
  while (std::getline(is, line)) {
    if (line.empty()) {
      continue;
    }
    if (line[0] == '#') {
      RunManifest m;
      if (RunManifest::from_csv_comment(line, m)) {
        adopt_manifest(m);
      }
      continue;
    }
    const std::vector<std::string> f = util::split(line, ',');
    if (!saw_header) {
      // Single-run files start "scope,..."; sweep merges "point,scope,...".
      saw_header = true;
      config_check(!f.empty() && (f[0] == "scope" || f[0] == "point"),
                   "report: '" + path + "' is not a blame CSV");
      has_point_column = f[0] == "point";
      continue;
    }
    const std::size_t off = has_point_column ? 1 : 0;
    if (f.size() < off + 8 || f[off] != "total") {
      continue;  // per-window rows: the totals are what we diff
    }
    const std::string key = f[off + 3] + "|" + f[off + 4] + "|" + f[off + 5];
    blame_stall_ps[key] += std::stod(f[off + 6]);
  }
  config_check(saw_header, "report: '" + path + "' is empty");
}

void RunData::load_journal_jsonl(const std::string& path) {
  std::istringstream is(read_file(path));
  std::string line;
  bool saw_any = false;
  while (std::getline(is, line)) {
    if (line.empty()) {
      continue;
    }
    saw_any = true;
    const util::JsonValue v = util::JsonValue::parse(line);
    config_check(v.is_object(),
                 "report: '" + path + "' line is not a JSON object");
    if (v.contains("manifest")) {
      adopt_manifest(RunManifest::from_json(v.at("manifest")));
      continue;
    }
    if (v.contains("dropped") && !v.contains("seq")) {
      journal_dropped =
          static_cast<std::uint64_t>(v.at("dropped").as_number());
      continue;
    }
    JournalEntry e;
    e.seq = static_cast<std::uint64_t>(number_or(v, "seq", 0.0));
    e.at = v.contains("at_ps")
               ? (v.at("at_ps").is_uint64()
                      ? v.at("at_ps").as_uint64()
                      : static_cast<sim::TimePs>(v.at("at_ps").as_number()))
               : 0;
    e.component = string_or(v, "component");
    e.action = string_or(v, "action");
    e.old_value = number_or(v, "old", 0.0);
    e.new_value = number_or(v, "new", 0.0);
    e.cause = string_or(v, "cause");
    e.detail = string_or(v, "detail");
    journal.push_back(std::move(e));
  }
  config_check(saw_any, "report: journal '" + path + "' is empty");
  has_journal = true;
}

void RunData::load_timeseries_json(const std::string& path) {
  const util::JsonValue doc = util::JsonValue::parse(read_file(path));
  config_check(doc.is_object(), "report: '" + path + "' is not a JSON object");
  if (doc.contains("manifest")) {
    adopt_manifest(RunManifest::from_json(doc.at("manifest")));
  }
  timeseries_window_ps =
      static_cast<sim::TimePs>(number_or(doc, "window_ps", 0.0));
  config_check(doc.contains("series"),
               "report: '" + path + "' has no \"series\" object");
  for (const auto& [name, s] : doc.at("series").as_object()) {
    SeriesSummary sum;
    sum.kind = string_or(s, "kind");
    if (s.contains("summary")) {
      const util::JsonValue& h = s.at("summary");
      sum.count = static_cast<std::uint64_t>(number_or(h, "count", 0.0));
      sum.min = number_or(h, "min", 0.0);
      sum.max = number_or(h, "max", 0.0);
      sum.mean = number_or(h, "mean", 0.0);
      sum.p50 = number_or(h, "p50", 0.0);
      sum.p99 = number_or(h, "p99", 0.0);
      sum.p999 = number_or(h, "p999", 0.0);
    }
    timeseries[name] = sum;
  }
}

std::vector<std::string> RunData::tenants() const {
  std::vector<std::string> out;
  for (const auto& [name, m] : metrics) {
    if (name.rfind("port.", 0) != 0) {
      continue;
    }
    const std::size_t dot = name.find('.', 5);
    if (dot == std::string::npos) {
      continue;
    }
    const std::string tenant = name.substr(5, dot - 5);
    if (out.empty() || out.back() != tenant) {
      out.push_back(tenant);
    }
  }
  return out;  // metrics map is sorted, so tenants come out sorted + unique
}

JournalSummary summarize_journal(const RunData& r) {
  JournalSummary s;
  if (!r.has_journal) {
    return s;
  }
  s.entries = static_cast<std::uint64_t>(r.journal.size());
  s.dropped = r.journal_dropped;
  for (const JournalEntry& e : r.journal) {
    ++s.action_counts[e.action];
    // The timeline highlights: mode changes and violations, not the
    // steady-state hum of budget writes and stall/release cycles.
    if (e.action == "degrade" || e.action == "rearm" ||
        e.action == "clamp_write" || e.action == "sla_trip" ||
        e.action == "sla_clear" || e.component == "fault") {
      summarize_entry(e, s.highlights);
    }
  }
  return s;
}

RunReport compare_runs(const RunData& a, const RunData& b,
                       const ReportThresholds& thresholds, bool force) {
  RunReport rep;
  rep.a = &a;
  rep.b = &b;
  rep.thresholds = thresholds;
  if (a.has_manifest && b.has_manifest &&
      !a.manifest.comparable_with(b.manifest)) {
    rep.comparable = false;
    rep.manifest_note = "runs are not comparable: A is {" + manifest_line(a) +
                        "}, B is {" + manifest_line(b) + "}";
    if (!force) {
      throw ConfigError("report: " + rep.manifest_note +
                        " (pass --force to compare anyway)");
    }
    rep.manifest_note += " — compared anyway (--force)";
  }

  // Per-tenant latency (per-hop end-to-end histogram when the run captured
  // lifecycle metrics, the always-on read p99 gauge otherwise) and
  // bandwidth. Tenants come from either run so a vanished port still shows.
  std::vector<std::string> tenants = a.tenants();
  for (const std::string& t : b.tenants()) {
    if (std::find(tenants.begin(), tenants.end(), t) == tenants.end()) {
      tenants.push_back(t);
    }
  }
  std::sort(tenants.begin(), tenants.end());
  for (const std::string& t : tenants) {
    const std::string hop = "port." + t + ".hop.total_ps";
    const MetricSample* ha = find_metric(a, hop);
    const MetricSample* hb = find_metric(b, hop);
    const bool hop_usable = ha != nullptr && hb != nullptr &&
                            ha->count > 0 && hb->count > 0 &&
                            ha->has_quantiles && hb->has_quantiles;
    if (hop_usable) {
      push_delta(rep, t, "p50_ps", ha->p50, hb->p50, 0.0, true);
      push_delta(rep, t, "p99_ps", ha->p99, hb->p99,
                 thresholds.max_p99_regress_pct, true);
      push_delta(rep, t, "p999_ps", ha->p999, hb->p999,
                 thresholds.max_p99_regress_pct, true);
    } else {
      const MetricSample* ga = find_metric(a, "port." + t + ".read_p99_ps");
      const MetricSample* gb = find_metric(b, "port." + t + ".read_p99_ps");
      if (ga != nullptr && gb != nullptr) {
        push_delta(rep, t, "p99_ps", ga->value, gb->value,
                   thresholds.max_p99_regress_pct, true);
        // The gauge carries no p999; emit the row as explicitly
        // unavailable rather than a fake 0, and keep it out of gating.
        TenantDelta na;
        na.tenant = t;
        na.metric = "p999_ps";
        na.available = false;
        rep.tenant_deltas.push_back(std::move(na));
      } else if (ha != nullptr && hb != nullptr) {
        // Hop histograms exist but carry no usable quantiles (empty, or
        // an export that dropped the keys): explicit n/a rows, never the
        // zero-initialised placeholders masquerading as measurements.
        for (const char* metric : {"p50_ps", "p99_ps", "p999_ps"}) {
          TenantDelta na;
          na.tenant = t;
          na.metric = metric;
          na.available = false;
          rep.tenant_deltas.push_back(std::move(na));
        }
      }
    }
    const MetricSample* ba = find_metric(a, "port." + t + ".bytes");
    const MetricSample* bb = find_metric(b, "port." + t + ".bytes");
    if (ba != nullptr && bb != nullptr && a.time_ps > 0 && b.time_ps > 0) {
      const double bps_a =
          ba->value * 1e12 / static_cast<double>(a.time_ps);
      const double bps_b =
          bb->value * 1e12 / static_cast<double>(b.time_ps);
      push_delta(rep, t, "bandwidth_bps", bps_a, bps_b,
                 thresholds.max_bw_drop_pct, false);
    }
  }

  // Blame-matrix movement over the union of cells.
  std::vector<std::string> keys;
  for (const auto& [k, v] : a.blame_stall_ps) {
    keys.push_back(k);
  }
  for (const auto& [k, v] : b.blame_stall_ps) {
    if (a.blame_stall_ps.find(k) == a.blame_stall_ps.end()) {
      keys.push_back(k);
    }
  }
  for (const std::string& k : keys) {
    const auto ia = a.blame_stall_ps.find(k);
    const auto ib = b.blame_stall_ps.find(k);
    BlameDelta d;
    const std::vector<std::string> parts = util::split(k, '|');
    d.victim = parts.at(0);
    d.aggressor = parts.at(1);
    d.cause = parts.at(2);
    d.a_stall_ps = ia == a.blame_stall_ps.end() ? 0.0 : ia->second;
    d.b_stall_ps = ib == b.blame_stall_ps.end() ? 0.0 : ib->second;
    if (d.a_stall_ps != d.b_stall_ps) {
      rep.blame_deltas.push_back(std::move(d));
    }
  }
  std::sort(rep.blame_deltas.begin(), rep.blame_deltas.end(),
            [](const BlameDelta& x, const BlameDelta& y) {
              return std::fabs(x.b_stall_ps - x.a_stall_ps) >
                     std::fabs(y.b_stall_ps - y.a_stall_ps);
            });

  rep.journal_a = summarize_journal(a);
  rep.journal_b = summarize_journal(b);
  return rep;
}

RunReport summarize_run(const RunData& a) {
  ReportThresholds off;
  off.max_p99_regress_pct = 0.0;
  off.max_bw_drop_pct = 0.0;
  RunReport rep = compare_runs(a, a, off, /*force=*/false);
  rep.b = nullptr;
  rep.blame_deltas.clear();  // a run never moves against itself
  return rep;
}

void RunReport::write_text(std::ostream& os) const {
  const bool comparing = b != nullptr;
  os << (comparing ? "fgqos run comparison\n" : "fgqos run summary\n");
  os << "  A: " << manifest_line(*a) << "\n";
  if (comparing) {
    os << "  B: " << manifest_line(*b) << "\n";
  }
  if (!manifest_note.empty()) {
    os << "  ! " << manifest_note << "\n";
  }

  if (!tenant_deltas.empty()) {
    os << "\ntenant metrics" << (comparing ? " (A -> B)" : "") << ":\n";
    for (const TenantDelta& d : tenant_deltas) {
      char line[160];
      if (!d.available) {
        if (comparing) {
          std::snprintf(line, sizeof line, "  %-10s %-14s %14s %14s  %8s",
                        d.tenant.c_str(), d.metric.c_str(), "n/a", "n/a",
                        "n/a");
        } else {
          std::snprintf(line, sizeof line, "  %-10s %-14s %14s",
                        d.tenant.c_str(), d.metric.c_str(), "n/a");
        }
      } else if (comparing) {
        std::snprintf(line, sizeof line, "  %-10s %-14s %14s %14s  %8s%s",
                      d.tenant.c_str(), d.metric.c_str(),
                      format_value(d.a).c_str(), format_value(d.b).c_str(),
                      format_pct(d.delta_pct).c_str(),
                      d.regression ? "  << REGRESSION" : "");
      } else {
        std::snprintf(line, sizeof line, "  %-10s %-14s %14s",
                      d.tenant.c_str(), d.metric.c_str(),
                      format_value(d.a).c_str());
      }
      os << line << "\n";
    }
  }

  if (!blame_deltas.empty()) {
    os << "\nblame-matrix movement (top " << std::min<std::size_t>(10,
        blame_deltas.size()) << " by |delta|, stall_ps):\n";
    std::size_t shown = 0;
    for (const BlameDelta& d : blame_deltas) {
      if (++shown > 10) {
        os << "  ... " << blame_deltas.size() - 10 << " more cell(s)\n";
        break;
      }
      os << "  " << d.victim << " <- " << d.aggressor << " [" << d.cause
         << "]: " << format_value(d.a_stall_ps) << " -> "
         << format_value(d.b_stall_ps) << " ("
         << format_pct(pct_delta(d.a_stall_ps, d.b_stall_ps)) << ")\n";
    }
  }

  const auto print_journal = [&os](const char* tag, const JournalSummary& j) {
    if (j.entries == 0 && j.dropped == 0) {
      return;
    }
    os << "  " << tag << ": " << j.entries << " entrie(s)";
    if (j.dropped > 0) {
      os << " (" << j.dropped << " dropped)";
    }
    os << ":";
    for (const auto& [action, n] : j.action_counts) {
      os << " " << action << "=" << n;
    }
    os << "\n";
    std::size_t shown = 0;
    for (const std::string& h : j.highlights) {
      if (++shown > 20) {
        os << "    ... " << j.highlights.size() - 20 << " more highlight(s)\n";
        break;
      }
      os << "    " << h << "\n";
    }
  };
  if (journal_a.entries > 0 || journal_b.entries > 0) {
    os << "\ndecision timeline:\n";
    print_journal("A", journal_a);
    if (comparing) {
      print_journal("B", journal_b);
    }
  }

  if (comparing) {
    os << "\nverdict: " << (pass() ? "PASS" : "FAIL") << "\n";
    for (const std::string& r : regressions) {
      os << "  - " << r << "\n";
    }
  }
}

void RunReport::write_json(std::ostream& os) const {
  os << "{\"comparable\":" << (comparable ? "true" : "false");
  if (!manifest_note.empty()) {
    os << ",\"manifest_note\":\"" << util::json_escape(manifest_note) << "\"";
  }
  if (a->has_manifest) {
    os << ",\"manifest_a\":" << a->manifest.to_json_object();
  }
  if (b != nullptr && b->has_manifest) {
    os << ",\"manifest_b\":" << b->manifest.to_json_object();
  }
  os << ",\"thresholds\":{\"max_p99_regress_pct\":";
  write_number(os, thresholds.max_p99_regress_pct);
  os << ",\"max_bw_drop_pct\":";
  write_number(os, thresholds.max_bw_drop_pct);
  os << "},\"tenants\":[";
  bool first = true;
  for (const TenantDelta& d : tenant_deltas) {
    if (!first) {
      os << ",";
    }
    first = false;
    os << "{\"tenant\":\"" << util::json_escape(d.tenant) << "\",\"metric\":\""
       << util::json_escape(d.metric) << "\",\"a\":";
    if (d.available) {
      write_number(os, d.a);
      os << ",\"b\":";
      write_number(os, d.b);
      os << ",\"delta_pct\":";
      write_number(os, d.delta_pct);
    } else {
      os << "null,\"b\":null,\"delta_pct\":null";
    }
    os << ",\"available\":" << (d.available ? "true" : "false")
       << ",\"regression\":" << (d.regression ? "true" : "false") << "}";
  }
  os << "],\"blame\":[";
  first = true;
  for (const BlameDelta& d : blame_deltas) {
    if (!first) {
      os << ",";
    }
    first = false;
    os << "{\"victim\":\"" << util::json_escape(d.victim)
       << "\",\"aggressor\":\"" << util::json_escape(d.aggressor)
       << "\",\"cause\":\"" << util::json_escape(d.cause) << "\",\"a_stall_ps\":";
    write_number(os, d.a_stall_ps);
    os << ",\"b_stall_ps\":";
    write_number(os, d.b_stall_ps);
    os << "}";
  }
  const auto journal_json = [&os](const JournalSummary& j) {
    os << "{\"entries\":" << j.entries << ",\"dropped\":" << j.dropped
       << ",\"actions\":{";
    bool f = true;
    for (const auto& [action, n] : j.action_counts) {
      if (!f) {
        os << ",";
      }
      f = false;
      os << "\"" << util::json_escape(action) << "\":" << n;
    }
    os << "}}";
  };
  os << "],\"journal_a\":";
  journal_json(journal_a);
  if (b != nullptr) {
    os << ",\"journal_b\":";
    journal_json(journal_b);
  }
  os << ",\"regressions\":[";
  first = true;
  for (const std::string& r : regressions) {
    if (!first) {
      os << ",";
    }
    first = false;
    os << "\"" << util::json_escape(r) << "\"";
  }
  os << "],\"pass\":" << (pass() ? "true" : "false") << "}\n";
}

BenchComparison compare_bench(const std::string& baseline_json,
                              const std::string& fresh_json,
                              double max_drop_pct) {
  const util::JsonValue base = util::JsonValue::parse(baseline_json);
  const util::JsonValue fresh = util::JsonValue::parse(fresh_json);
  config_check(base.is_object() && fresh.is_object(),
               "report: bench records must be JSON objects");
  if (base.contains("schema_version") && fresh.contains("schema_version")) {
    config_check(base.at("schema_version").as_number() ==
                     fresh.at("schema_version").as_number(),
                 "report: bench schema_version mismatch");
  }
  config_check(
      base.contains("events_per_sec") && fresh.contains("events_per_sec"),
      "report: bench record has no events_per_sec");
  BenchComparison c;
  c.base_events_per_sec = base.at("events_per_sec").as_number();
  c.new_events_per_sec = fresh.at("events_per_sec").as_number();
  c.base_ns_per_event = number_or(base, "ns_per_event", 0.0);
  c.new_ns_per_event = number_or(fresh, "ns_per_event", 0.0);
  config_check(c.base_events_per_sec > 0.0,
               "report: baseline events_per_sec must be positive");
  c.drop_pct = (c.base_events_per_sec - c.new_events_per_sec) /
               c.base_events_per_sec * 100.0;
  c.max_drop_pct = max_drop_pct;
  return c;
}

void BenchComparison::write_text(std::ostream& os) const {
  char line[256];
  std::snprintf(line, sizeof line,
                "kernel throughput: baseline %.3e ev/s, now %.3e ev/s "
                "(%+.1f%%%s)\n",
                base_events_per_sec, new_events_per_sec, -drop_pct,
                new_ns_per_event > 0.0 ? "" : ", ns/event unavailable");
  os << line;
  if (new_ns_per_event > 0.0 && base_ns_per_event > 0.0) {
    std::snprintf(line, sizeof line,
                  "ns/event: baseline %.2f, now %.2f\n", base_ns_per_event,
                  new_ns_per_event);
    os << line;
  }
  std::snprintf(line, sizeof line, "verdict: %s (max tolerated drop %.1f%%)\n",
                pass() ? "PASS" : "FAIL", max_drop_pct);
  os << line;
}

void BenchComparison::write_json(std::ostream& os) const {
  os << "{\"base_events_per_sec\":";
  write_number(os, base_events_per_sec);
  os << ",\"new_events_per_sec\":";
  write_number(os, new_events_per_sec);
  os << ",\"drop_pct\":";
  write_number(os, drop_pct);
  os << ",\"max_drop_pct\":";
  write_number(os, max_drop_pct);
  os << ",\"pass\":" << (pass() ? "true" : "false") << "}\n";
}

// ---------------------------------------------------------------------------
// Host-profile comparison

double ProfileData::share(const std::string& tag) const {
  if (total_cycles == 0) {
    return 0.0;
  }
  const auto it = tags.find(tag);
  if (it == tags.end()) {
    return 0.0;
  }
  return static_cast<double>(it->second.second) /
         static_cast<double>(total_cycles);
}

ProfileData ProfileData::parse(const std::string& text) {
  ProfileData d;
  const std::size_t first = text.find_first_not_of(" \t\r\n");
  config_check(first != std::string::npos, "report: empty profile artifact");
  if (text[first] == '{') {
    const util::JsonValue root = util::JsonValue::parse(text);
    config_check(root.is_object(), "report: profile artifact must be an object");
    if (root.contains("manifest")) {
      d.manifest = RunManifest::from_json(root.at("manifest"));
      d.has_manifest = true;
    }
    // Accept both the wrapped form ({"profile":{...}}) and a bare
    // profile object (has total_cycles/tags at the top level).
    const util::JsonValue& prof =
        root.contains("profile") ? root.at("profile") : root;
    config_check(prof.is_object() && prof.contains("tags"),
                 "report: profile artifact has no tags array");
    d.tag_table_version =
        static_cast<int>(number_or(prof, "tag_table_version", 0.0));
    if (d.tag_table_version == 0 && d.has_manifest) {
      d.tag_table_version = d.manifest.profile_tag_table_version;
    }
    d.total_cycles =
        static_cast<std::uint64_t>(number_or(prof, "total_cycles", 0.0));
    d.coverage = number_or(prof, "coverage", 0.0);
    for (const util::JsonValue& t : prof.at("tags").as_array()) {
      config_check(t.is_object() && t.contains("name"),
                   "report: malformed profile tag entry");
      d.tags[t.at("name").as_string()] = {
          static_cast<std::uint64_t>(number_or(t, "count", 0.0)),
          static_cast<std::uint64_t>(number_or(t, "cycles", 0.0))};
    }
    return d;
  }
  // Folded-stack format: "fgqos;<group>;<tag> <cycles>" per line. The
  // total is reconstructed as the attributed sum, so coverage is 1 by
  // construction and untagged time is whatever the kernel.* frames say.
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) {
      continue;
    }
    const std::size_t sp = line.find_last_of(' ');
    config_check(sp != std::string::npos && sp + 1 < line.size(),
                 "report: malformed folded line '" + line + "'");
    const std::size_t semi = line.find_last_of(';', sp);
    config_check(semi != std::string::npos,
                 "report: malformed folded line '" + line + "'");
    const std::string name = line.substr(semi + 1, sp - semi - 1);
    std::uint64_t cycles = 0;
    const char* begin = line.c_str() + sp + 1;
    const auto res = std::from_chars(begin, line.c_str() + line.size(), cycles);
    config_check(res.ec == std::errc(),
                 "report: bad cycle count in folded line '" + line + "'");
    auto& slot = d.tags[name];
    slot.second += cycles;
    d.total_cycles += cycles;
  }
  config_check(!d.tags.empty(), "report: folded profile has no frames");
  d.coverage = 1.0;
  return d;
}

ProfileData ProfileData::load(const std::string& path) {
  return parse(read_file(path));
}

ProfileComparison compare_profiles(const ProfileData& a, const ProfileData& b,
                                   double max_share_regress_pp, bool force) {
  ProfileComparison c;
  c.max_share_regress_pp = max_share_regress_pp;
  c.coverage_a = a.coverage;
  c.coverage_b = b.coverage;
  if (a.tag_table_version != 0 && b.tag_table_version != 0 &&
      a.tag_table_version != b.tag_table_version) {
    const std::string note =
        "profile tag-table version mismatch: baseline v" +
        std::to_string(a.tag_table_version) + " vs v" +
        std::to_string(b.tag_table_version);
    config_check(force, "report: " + note + " (use --force to compare anyway)");
    c.manifest_note = note;
  }
  // Union of tag names; both sides are name-sorted maps already.
  std::vector<std::string> names;
  for (const auto& [name, cc] : a.tags) {
    names.push_back(name);
  }
  for (const auto& [name, cc] : b.tags) {
    if (a.tags.find(name) == a.tags.end()) {
      names.push_back(name);
    }
  }
  for (const std::string& name : names) {
    ProfileTagDelta d;
    d.name = name;
    d.share_a = a.share(name);
    d.share_b = b.share(name);
    c.deltas.push_back(d);
    if (d.delta_pp() > max_share_regress_pp) {
      char buf[160];
      std::snprintf(buf, sizeof buf,
                    "%s: cycle share %.1f%% -> %.1f%% (+%.1fpp > %.1fpp)",
                    name.c_str(), d.share_a * 100.0, d.share_b * 100.0,
                    d.delta_pp(), max_share_regress_pp);
      c.regressions.emplace_back(buf);
    }
  }
  std::stable_sort(c.deltas.begin(), c.deltas.end(),
                   [](const ProfileTagDelta& x, const ProfileTagDelta& y) {
                     const double ax = std::abs(x.delta_pp());
                     const double ay = std::abs(y.delta_pp());
                     if (ax != ay) {
                       return ax > ay;
                     }
                     // Equal magnitude: regressions ahead of improvements.
                     return x.delta_pp() > y.delta_pp();
                   });
  return c;
}

void ProfileComparison::write_text(std::ostream& os) const {
  if (!manifest_note.empty()) {
    os << "note: " << manifest_note << "\n";
  }
  char line[192];
  std::snprintf(line, sizeof line, "coverage: baseline %.3f, now %.3f\n",
                coverage_a, coverage_b);
  os << line;
  os << "top cycle-share movements:\n";
  const std::size_t shown = std::min<std::size_t>(deltas.size(), 10);
  for (std::size_t i = 0; i < shown; ++i) {
    const ProfileTagDelta& d = deltas[i];
    std::snprintf(line, sizeof line, "  %-32s %6.1f%% -> %6.1f%% (%+.1fpp)\n",
                  d.name.c_str(), d.share_a * 100.0, d.share_b * 100.0,
                  d.delta_pp());
    os << line;
  }
  if (regressions.empty()) {
    std::snprintf(line, sizeof line,
                  "verdict: PASS (no tag grew more than %.1fpp)\n",
                  max_share_regress_pp);
    os << line;
  } else {
    os << "verdict: FAIL\n";
    for (const std::string& r : regressions) {
      os << "  regression: " << r << "\n";
    }
  }
}

void ProfileComparison::write_json(std::ostream& os) const {
  os << "{\"max_share_regress_pp\":";
  write_number(os, max_share_regress_pp);
  os << ",\"coverage_a\":";
  write_number(os, coverage_a);
  os << ",\"coverage_b\":";
  write_number(os, coverage_b);
  if (!manifest_note.empty()) {
    os << ",\"manifest_note\":\"" << util::json_escape(manifest_note) << "\"";
  }
  os << ",\"deltas\":[";
  bool first = true;
  for (const ProfileTagDelta& d : deltas) {
    if (!first) {
      os << ",";
    }
    first = false;
    os << "{\"name\":\"" << util::json_escape(d.name) << "\",\"share_a\":";
    write_number(os, d.share_a);
    os << ",\"share_b\":";
    write_number(os, d.share_b);
    os << ",\"delta_pp\":";
    write_number(os, d.delta_pp());
    os << "}";
  }
  os << "],\"regressions\":[";
  first = true;
  for (const std::string& r : regressions) {
    if (!first) {
      os << ",";
    }
    first = false;
    os << "\"" << util::json_escape(r) << "\"";
  }
  os << "],\"pass\":" << (pass() ? "true" : "false") << "}\n";
}

}  // namespace fgqos::telemetry
