/// \file prof.hpp
/// \brief Kernel-facing host-profiling primitives (cycle counter + table).
///
/// The simulation kernel attributes host CPU time to component tags by
/// fence-post accounting: one cycle-counter read per dispatch, with the
/// span between consecutive reads charged to the event (or tick) that
/// just ran. Everything the kernel touches on that path lives here — a
/// fixed-size per-thread table of (count, cycles) per tag plus the
/// micro-telemetry histograms ROADMAP item 2 needs (heap depth,
/// same-timestamp run lengths, arm deltas). The table is plain data with
/// no locks and no allocation after construction; one table is written by
/// exactly one simulation thread and merged at report time by
/// telemetry::HostProfiler, which also owns the tag-name registry. Keeping
/// this header free of telemetry/ types preserves the sim -> telemetry
/// layering (telemetry depends on sim, never the reverse).
#pragma once

#include <array>
#include <cstdint>

#if defined(__x86_64__) || defined(_M_X64)
#include <x86intrin.h>
#else
#include <chrono>
#endif

#include "sim/histogram.hpp"

namespace fgqos::sim {

/// Reads the host cycle counter: rdtsc on x86-64 (cheap, monotonic on
/// modern invariant-TSC parts), steady_clock nanoseconds elsewhere. Only
/// ratios of spans ever leave the process, so the unit does not matter —
/// "cycles" in every export means "ticks of this counter".
inline std::uint64_t prof_now_cycles() {
#if defined(__x86_64__) || defined(_M_X64)
  return __rdtsc();
#else
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
#endif
}

/// One tag's accumulator.
struct ProfTagStat {
  std::uint64_t count = 0;   ///< dispatches attributed to this tag
  std::uint64_t cycles = 0;  ///< cycle-counter ticks attributed
};

/// Well-known tag ids, registered by HostProfiler in this order before
/// any component tag. Tag 0 doubles as the sink for events scheduled
/// without a tag.
inline constexpr std::uint32_t kProfTagUntagged = 0;
/// Run-loop cycles after the last dispatch of a run_until() call (loop
/// bookkeeping tail). Charging it to a named tag keeps the accounting
/// exact: every measured cycle lands in exactly one tag.
inline constexpr std::uint32_t kProfTagOverhead = 1;

/// Fixed-size per-thread attribution table. All members are updated from
/// the one thread driving the owning Simulator; merging happens off the
/// hot path (telemetry::HostProfiler::snapshot).
struct ProfTable {
  static constexpr std::size_t kMaxTags = 256;

  std::array<ProfTagStat, kMaxTags> tags{};

  // Kernel micro-telemetry (see ROADMAP open item 2).
  Histogram heap_depth;    ///< event-queue occupancy at each event dispatch
  Histogram run_length;    ///< consecutive events sharing one timestamp
  Histogram arm_delta_ps;  ///< schedule-time horizon: when - now, ps

  std::uint64_t oneshot_scheduled = 0;  ///< schedule_at/schedule_after calls
  std::uint64_t recurring_armed = 0;    ///< schedule_recurring calls
  std::uint64_t events_dispatched = 0;  ///< profiled event dispatches
  std::uint64_t ticks_dispatched = 0;   ///< profiled tick dispatches
  std::uint64_t total_cycles = 0;       ///< fence-post total inside run_until

  /// Charges \p cycles to \p tag; out-of-range tags (table overflow)
  /// fall back to the untagged bucket so accounting stays exact.
  void hit(std::uint32_t tag, std::uint64_t cycles) {
    ProfTagStat& s = tags[tag < kMaxTags ? tag : kProfTagUntagged];
    ++s.count;
    s.cycles += cycles;
  }
};

}  // namespace fgqos::sim
