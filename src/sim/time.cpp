#include "sim/time.hpp"

// Header-only; this translation unit exists so the module shows up in the
// library and to anchor future non-inline additions.
namespace fgqos::sim {}
