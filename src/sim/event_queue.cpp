#include "sim/event_queue.hpp"

#include "util/assert.hpp"

namespace fgqos::sim {

void EventQueue::schedule(TimePs when, EventFn fn) {
  FGQOS_ASSERT(static_cast<bool>(fn), "EventQueue: null callback");
  heap_.push(Entry{when, next_seq_++, std::move(fn)});
}

TimePs EventQueue::next_time() const {
  return heap_.empty() ? kTimeNever : heap_.top().when;
}

EventQueue::Popped EventQueue::pop() {
  FGQOS_ASSERT(!heap_.empty(), "EventQueue: pop on empty queue");
  // std::priority_queue::top() is const; move is safe because we pop
  // immediately after.
  Entry top = std::move(const_cast<Entry&>(heap_.top()));
  heap_.pop();
  return Popped{top.when, std::move(top.fn)};
}

}  // namespace fgqos::sim
