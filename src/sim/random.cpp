#include "sim/random.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace fgqos::sim {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& w : s_) {
    w = splitmix64(sm);
  }
  // All-zero state is invalid for xoshiro; splitmix cannot produce four
  // zeros from any seed, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) {
    s_[0] = 1;
  }
}

std::uint64_t Xoshiro256::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Xoshiro256::next_below(std::uint64_t bound) {
  FGQOS_ASSERT(bound > 0, "next_below: bound must be positive");
  // Lemire's method with rejection for exact uniformity.
  while (true) {
    const std::uint64_t x = next();
    const unsigned __int128 m =
        static_cast<unsigned __int128>(x) * static_cast<unsigned __int128>(bound);
    const auto lo = static_cast<std::uint64_t>(m);
    if (lo >= bound || lo >= std::uint64_t(-bound) % bound) {
      return static_cast<std::uint64_t>(m >> 64);
    }
  }
}

std::uint64_t Xoshiro256::next_in(std::uint64_t lo, std::uint64_t hi) {
  FGQOS_ASSERT(lo <= hi, "next_in: empty range");
  const std::uint64_t span = hi - lo;
  if (span == ~std::uint64_t{0}) {
    return next();
  }
  return lo + next_below(span + 1);
}

double Xoshiro256::next_double() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Xoshiro256::next_bool(double p) {
  if (p <= 0.0) {
    return false;
  }
  if (p >= 1.0) {
    return true;
  }
  return next_double() < p;
}

std::uint64_t Xoshiro256::next_exponential(double mean) {
  FGQOS_ASSERT(mean > 0.0, "next_exponential: mean must be positive");
  const double u = 1.0 - next_double();  // in (0, 1]
  const double v = -mean * std::log(u);
  if (v < 1.0) {
    return 1;
  }
  return static_cast<std::uint64_t>(v);
}

}  // namespace fgqos::sim
