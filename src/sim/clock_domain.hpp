/// \file clock_domain.hpp
/// \brief A named clock with conversions between cycles and picoseconds.
#pragma once

#include <string>

#include "sim/time.hpp"

namespace fgqos::sim {

/// One synchronous clock domain. Components belonging to a domain are
/// ticked on its rising edges; edge N occurs at time N * period_ps.
class ClockDomain {
 public:
  /// \param name      human-readable label used in stats and logs
  /// \param period_ps clock period; must be > 0 (checked)
  ClockDomain(std::string name, TimePs period_ps);

  /// Convenience factory from a frequency in MHz.
  static ClockDomain from_mhz(std::string name, std::uint64_t mhz);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] TimePs period_ps() const { return period_ps_; }
  [[nodiscard]] double freq_hz() const {
    return 1e12 / static_cast<double>(period_ps_);
  }

  /// Time of the given edge number.
  [[nodiscard]] TimePs edge_time(Cycles edge) const {
    return edge * period_ps_;
  }

  /// Number of whole cycles elapsed at absolute time \p t.
  [[nodiscard]] Cycles cycles_at(TimePs t) const { return t / period_ps_; }

  /// First edge at or after \p t.
  [[nodiscard]] TimePs next_edge_at_or_after(TimePs t) const {
    return ((t + period_ps_ - 1) / period_ps_) * period_ps_;
  }

  /// Index of the first edge at or after \p t (edge_time() inverts this).
  [[nodiscard]] Cycles edge_index_at_or_after(TimePs t) const {
    return (t + period_ps_ - 1) / period_ps_;
  }

  /// Duration of \p n cycles in ps.
  [[nodiscard]] TimePs cycles_to_ps(Cycles n) const { return n * period_ps_; }

  /// Smallest cycle count whose duration is >= \p ps.
  [[nodiscard]] Cycles ps_to_cycles_ceil(TimePs ps) const {
    return (ps + period_ps_ - 1) / period_ps_;
  }

 private:
  std::string name_;
  TimePs period_ps_;
};

}  // namespace fgqos::sim
