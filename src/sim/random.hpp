/// \file random.hpp
/// \brief Deterministic, seedable random source (xoshiro256**).
///
/// All stochastic behaviour in the library flows through this generator so
/// that experiments are reproducible bit-for-bit from a seed.
#pragma once

#include <cstdint>

namespace fgqos::sim {

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference
/// implementation, re-typed). Fast, 2^256-1 period, passes BigCrush.
class Xoshiro256 {
 public:
  /// Seeds the four 64-bit state words from \p seed via SplitMix64 so that
  /// nearby seeds give uncorrelated streams. seed==0 is allowed.
  explicit Xoshiro256(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  /// Next raw 64-bit value.
  std::uint64_t next();

  /// Uniform integer in [0, bound) using Lemire's multiply-shift rejection.
  /// \p bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::uint64_t next_in(std::uint64_t lo, std::uint64_t hi);

  /// Uniform double in [0, 1).
  double next_double();

  /// Bernoulli draw with probability \p p (clamped to [0,1]).
  bool next_bool(double p);

  /// Geometric-ish exponential inter-arrival sample with the given mean
  /// (rounded to >= 1). Used by bursty traffic generators.
  std::uint64_t next_exponential(double mean);

 private:
  std::uint64_t s_[4];
};

}  // namespace fgqos::sim
