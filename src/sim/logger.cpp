#include "sim/logger.hpp"

#include <atomic>
#include <cstdio>

namespace fgqos::sim {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* tag(LogLevel lvl) {
  switch (lvl) {
    case LogLevel::kError: return "ERROR";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kTrace: return "TRACE";
  }
  return "?";
}

}  // namespace

LogLevel Logger::level() { return g_level.load(std::memory_order_relaxed); }

void Logger::set_level(LogLevel lvl) {
  g_level.store(lvl, std::memory_order_relaxed);
}

void Logger::logf(LogLevel lvl, const char* fmt, ...) {
  std::fprintf(stderr, "[fgqos %s] ", tag(lvl));
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
}

}  // namespace fgqos::sim
