/// \file event.hpp
/// \brief Small-buffer-optimized event callable (the kernel's hot path).
///
/// Every scheduled event used to pay a `std::function` heap allocation;
/// with millions of events per simulated millisecond that dominated kernel
/// time. InlineEvent stores the closure inline in a fixed 48-byte buffer:
/// scheduling never allocates, moving an event is (at worst) a memcpy plus
/// a relocate call for non-trivial captures, and dispatch is one indirect
/// call.
///
/// Contract for event callables:
///  * captures must fit in kInlineBytes (48 B) — enforced by static_assert
///    at the schedule site. If a closure legitimately needs more state,
///    move it behind a pointer (capture `this` or a raw pointer) instead
///    of growing the buffer: the limit is what keeps the queue compact.
///  * the callable must be nothrow-move-constructible (std::function,
///    plain captures and POD aggregates all qualify);
///  * signature `void()` or `void(std::uint64_t)` — the latter receives
///    the per-schedule payload of recurring events (e.g. a config epoch).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace fgqos::sim {

/// Move-only type-erased `void(std::uint64_t)` callable with inline
/// storage and no heap fallback.
class InlineEvent {
 public:
  /// Maximum capture size stored inline. Closures above this limit are a
  /// compile error at the schedule site (see file comment).
  static constexpr std::size_t kInlineBytes = 48;

  InlineEvent() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineEvent>>>
  InlineEvent(F&& fn) {  // NOLINT(google-explicit-constructor)
    emplace(std::forward<F>(fn));
  }

  InlineEvent(InlineEvent&& other) noexcept { move_from(other); }

  InlineEvent& operator=(InlineEvent&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  InlineEvent(const InlineEvent&) = delete;
  InlineEvent& operator=(const InlineEvent&) = delete;

  ~InlineEvent() { reset(); }

  /// True when a callable is stored.
  explicit operator bool() const { return invoke_ != nullptr; }

  /// Invokes the stored callable. \p arg reaches callables that accept a
  /// std::uint64_t (recurring-event payload); others ignore it.
  /// Pre: operator bool().
  void operator()(std::uint64_t arg = 0) { invoke_(buf_, arg); }

  /// Destroys the stored callable (no-op when empty).
  void reset() {
    if (destroy_ != nullptr) {
      destroy_(buf_);
    }
    invoke_ = nullptr;
    relocate_ = nullptr;
    destroy_ = nullptr;
  }

  /// Stores \p fn, destroying any previous callable.
  template <typename F>
  void emplace(F&& fn) {
    using Fn = std::decay_t<F>;
    static_assert(sizeof(Fn) <= kInlineBytes,
                  "event capture exceeds InlineEvent::kInlineBytes; capture "
                  "a pointer to external state instead of growing the event");
    static_assert(alignof(Fn) <= alignof(std::max_align_t),
                  "event capture is over-aligned");
    static_assert(std::is_nothrow_move_constructible_v<Fn>,
                  "event callables must be nothrow-move-constructible");
    reset();
    ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(fn));
    if constexpr (std::is_invocable_v<Fn&, std::uint64_t>) {
      invoke_ = [](void* p, std::uint64_t arg) {
        (*std::launder(reinterpret_cast<Fn*>(p)))(arg);
      };
    } else {
      static_assert(std::is_invocable_v<Fn&>,
                    "event callables must be invocable as void() or "
                    "void(std::uint64_t)");
      invoke_ = [](void* p, std::uint64_t) {
        (*std::launder(reinterpret_cast<Fn*>(p)))();
      };
    }
    // Trivially-copyable captures relocate by memcpy (the common case:
    // a couple of pointers and integers); only non-trivial ones pay for
    // a move-construct + destroy pair.
    if constexpr (!(std::is_trivially_copyable_v<Fn> &&
                    std::is_trivially_destructible_v<Fn>)) {
      relocate_ = [](void* dst, void* src) {
        Fn* s = std::launder(reinterpret_cast<Fn*>(src));
        ::new (dst) Fn(std::move(*s));
        s->~Fn();
      };
    }
    if constexpr (!std::is_trivially_destructible_v<Fn>) {
      destroy_ = [](void* p) {
        std::launder(reinterpret_cast<Fn*>(p))->~Fn();
      };
    }
  }

 private:
  void move_from(InlineEvent& other) noexcept {
    invoke_ = other.invoke_;
    relocate_ = other.relocate_;
    destroy_ = other.destroy_;
    if (other.invoke_ != nullptr) {
      if (other.relocate_ != nullptr) {
        other.relocate_(buf_, other.buf_);
      } else {
        std::memcpy(buf_, other.buf_, kInlineBytes);
      }
    }
    other.invoke_ = nullptr;
    other.relocate_ = nullptr;
    other.destroy_ = nullptr;
  }

  alignas(std::max_align_t) std::byte buf_[kInlineBytes];
  void (*invoke_)(void*, std::uint64_t) = nullptr;
  void (*relocate_)(void*, void*) = nullptr;
  void (*destroy_)(void*) = nullptr;
};

}  // namespace fgqos::sim
