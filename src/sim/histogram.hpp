/// \file histogram.hpp
/// \brief HDR-style log-linear histogram for latency distributions.
///
/// Buckets are organised as log2 major buckets each split into a fixed
/// number of linear sub-buckets, giving bounded relative error (< 1/32 by
/// default) on quantiles while using O(64 * sub_buckets) memory regardless
/// of the value range — suitable for recording millions of per-transaction
/// latencies.
#pragma once

#include <cstdint>
#include <vector>

namespace fgqos::sim {

/// Fixed-memory quantile-capable histogram over uint64 samples.
class Histogram {
 public:
  /// \param sub_bucket_bits log2 of linear sub-buckets per octave
  ///        (default 5 -> 32 sub-buckets -> <= 3.1% relative error).
  explicit Histogram(unsigned sub_bucket_bits = 5);

  /// Records one sample.
  void record(std::uint64_t value);

  /// Records \p count identical samples.
  void record_n(std::uint64_t value, std::uint64_t count);

  /// Merges another histogram with identical geometry into this one.
  /// Merging is associative and commutative (bucket counts and running
  /// sums simply add), so folding per-job histograms in submission order
  /// yields the same summary whatever the fan-out — the property sweep
  /// aggregation relies on for byte-identical exports across --jobs.
  /// Merging an empty histogram is a no-op.
  void merge(const Histogram& other);

  /// Discards all samples.
  void reset();

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] std::uint64_t min() const;
  [[nodiscard]] std::uint64_t max() const { return max_; }
  [[nodiscard]] double mean() const;
  /// Population standard deviation (0 for < 2 samples). Computed from the
  /// exact running sums, not the bucketised values.
  [[nodiscard]] double stddev() const;

  /// Value at quantile \p q in [0,1]; returns an upper bound of the bucket
  /// containing the q-th sample.
  ///
  /// Empty-histogram semantics: quantile(q) == 0 for every q (as do min(),
  /// max() and mean()). 0 — not NaN, not a throw — so that exporters can
  /// emit summaries of series that never recorded without special-casing,
  /// and report tooling treats a 0-count summary as "no data" by checking
  /// count(), never the quantile value.
  [[nodiscard]] std::uint64_t quantile(double q) const;

  /// Shorthand for common percentiles.
  [[nodiscard]] std::uint64_t p50() const { return quantile(0.50); }
  [[nodiscard]] std::uint64_t p90() const { return quantile(0.90); }
  [[nodiscard]] std::uint64_t p99() const { return quantile(0.99); }
  [[nodiscard]] std::uint64_t p999() const { return quantile(0.999); }

  /// One (upper_bound, cumulative_count) point per non-empty bucket; used
  /// to print CDFs.
  struct CdfPoint {
    std::uint64_t value;
    std::uint64_t cumulative;
  };
  [[nodiscard]] std::vector<CdfPoint> cdf() const;

 private:
  [[nodiscard]] std::size_t bucket_index(std::uint64_t value) const;
  [[nodiscard]] std::uint64_t bucket_upper_bound(std::size_t index) const;

  unsigned sub_bits_;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  std::uint64_t min_ = ~std::uint64_t{0};
  std::uint64_t max_ = 0;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
};

}  // namespace fgqos::sim
