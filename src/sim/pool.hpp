/// \file pool.hpp
/// \brief Slab-backed object pool (the sim's arena for hot-path objects).
///
/// Transactions (and other per-request objects) are created and destroyed
/// millions of times per simulated second; going through the global
/// allocator for each one costs both the malloc/free pair and cache
/// locality. ObjectPool hands out objects from fixed-size slabs with a
/// free list: create/destroy are a vector pop/push plus placement
/// new/destructor call, and recycled objects stay cache-warm.
///
/// Restricted to trivially-destructible T so teardown need not track live
/// objects: dropping the pool drops the slabs, and objects still "live"
/// at end of simulation (e.g. in-flight transactions) need no cleanup.
#pragma once

#include <cstddef>
#include <memory>
#include <type_traits>
#include <vector>

namespace fgqos::sim {

/// The pool. Pointers returned by create() are stable until destroy()
/// (slabs never move or shrink).
template <typename T>
class ObjectPool {
  static_assert(std::is_trivially_destructible_v<T>,
                "ObjectPool requires trivially-destructible T (teardown "
                "does not visit live objects)");

 public:
  /// \param slab_objects objects allocated per slab (growth granule).
  explicit ObjectPool(std::size_t slab_objects = 256)
      : slab_objects_(slab_objects == 0 ? 1 : slab_objects) {}

  ObjectPool(const ObjectPool&) = delete;
  ObjectPool& operator=(const ObjectPool&) = delete;

  /// Constructs a T in the arena.
  template <typename... Args>
  T* create(Args&&... args) {
    if (free_.empty()) {
      grow();
    }
    T* p = free_.back();
    free_.pop_back();
    return ::new (static_cast<void*>(p)) T(std::forward<Args>(args)...);
  }

  /// Returns \p p to the free list. Pre: p came from this pool's create().
  void destroy(T* p) {
    p->~T();
    free_.push_back(p);
  }

  /// Objects currently handed out.
  [[nodiscard]] std::size_t live() const {
    return slabs_.size() * slab_objects_ - free_.size();
  }
  /// Total objects the slabs can hold.
  [[nodiscard]] std::size_t capacity() const {
    return slabs_.size() * slab_objects_;
  }

 private:
  struct alignas(alignof(T)) Slot {
    std::byte raw[sizeof(T)];
  };

  void grow() {
    slabs_.push_back(std::make_unique<Slot[]>(slab_objects_));
    Slot* base = slabs_.back().get();
    free_.reserve(free_.size() + slab_objects_);
    // Push in reverse so create() hands out ascending addresses within a
    // slab (sequential use walks memory forward).
    for (std::size_t i = slab_objects_; i-- > 0;) {
      free_.push_back(reinterpret_cast<T*>(base + i));
    }
  }

  std::size_t slab_objects_;
  std::vector<std::unique_ptr<Slot[]>> slabs_;
  std::vector<T*> free_;
};

}  // namespace fgqos::sim
