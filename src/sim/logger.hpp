/// \file logger.hpp
/// \brief Leveled logging with near-zero cost when disabled.
#pragma once

#include <cstdarg>
#include <cstdint>

namespace fgqos::sim {

enum class LogLevel : std::uint8_t { kError = 0, kWarn, kInfo, kDebug, kTrace };

/// Process-wide log sink writing to stderr. Components call the macros
/// below; the level check is a single branch on the hot path.
class Logger {
 public:
  static LogLevel level();
  static void set_level(LogLevel lvl);

  /// printf-style emission; prepends the level tag.
  static void logf(LogLevel lvl, const char* fmt, ...)
      __attribute__((format(printf, 2, 3)));
};

}  // namespace fgqos::sim

#define FGQOS_LOG(lvl, ...)                                       \
  do {                                                            \
    if (static_cast<int>(lvl) <=                                  \
        static_cast<int>(::fgqos::sim::Logger::level())) {        \
      ::fgqos::sim::Logger::logf((lvl), __VA_ARGS__);             \
    }                                                             \
  } while (false)

#define FGQOS_LOG_ERROR(...) \
  FGQOS_LOG(::fgqos::sim::LogLevel::kError, __VA_ARGS__)
#define FGQOS_LOG_WARN(...) \
  FGQOS_LOG(::fgqos::sim::LogLevel::kWarn, __VA_ARGS__)
#define FGQOS_LOG_INFO(...) \
  FGQOS_LOG(::fgqos::sim::LogLevel::kInfo, __VA_ARGS__)
#define FGQOS_LOG_DEBUG(...) \
  FGQOS_LOG(::fgqos::sim::LogLevel::kDebug, __VA_ARGS__)
#define FGQOS_LOG_TRACE(...) \
  FGQOS_LOG(::fgqos::sim::LogLevel::kTrace, __VA_ARGS__)
