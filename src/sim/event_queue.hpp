/// \file event_queue.hpp
/// \brief Deterministic time-ordered callback queue.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/time.hpp"

namespace fgqos::sim {

/// Callback executed when its scheduled time is reached.
using EventFn = std::function<void()>;

/// Min-heap of (time, insertion sequence) -> callback. Two events at the
/// same time fire in insertion order, which makes runs deterministic.
class EventQueue {
 public:
  /// Schedules \p fn at absolute time \p when. \p when may equal the time
  /// of the event currently executing (fires in the same delta step).
  void schedule(TimePs when, EventFn fn);

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }

  /// Time of the earliest pending event; kTimeNever when empty.
  [[nodiscard]] TimePs next_time() const;

  /// Removes and returns the earliest event. Pre: !empty().
  struct Popped {
    TimePs when;
    EventFn fn;
  };
  Popped pop();

 private:
  struct Entry {
    TimePs when;
    std::uint64_t seq;
    EventFn fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.seq > b.seq;
    }
  };
  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace fgqos::sim
