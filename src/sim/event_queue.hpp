/// \file event_queue.hpp
/// \brief Deterministic time-ordered callback queue (allocation-free).
///
/// The queue is an indexed 4-ary heap of (time, sequence) keys over
/// small-buffer-optimized events (see event.hpp): scheduling never touches
/// the global allocator. Dispatch moves a one-shot closure out of its slot
/// before invoking it (the callback may schedule and reallocate the slot
/// vector); recurring closures live in a deque and are invoked in place.
/// Two events at the same time fire in schedule order, which makes runs
/// deterministic.
///
/// Recurring events — per-window replenish/boundary/period ticks that
/// re-arm themselves forever — register their closure once with
/// make_recurring() and re-enter the heap via schedule_recurring(), which
/// pushes a 32-byte heap entry and constructs nothing. The per-schedule
/// std::uint64_t payload carries cheap state that used to live in the
/// closure (typically a config epoch used to invalidate stale events).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "sim/dheap.hpp"
#include "sim/event.hpp"
#include "sim/time.hpp"
#include "util/assert.hpp"

namespace fgqos::sim {

/// Callback type accepted by convenience APIs; any callable obeying the
/// InlineEvent contract (capture <= 48 B) schedules without allocation.
using EventFn = std::function<void()>;

/// The queue.
class EventQueue {
 public:
  /// Maximum inline capture size for scheduled callables (see event.hpp).
  static constexpr std::size_t kMaxInlineCaptureBytes =
      InlineEvent::kInlineBytes;

  /// Handle to a recurring event's registered closure.
  using RecurringId = std::uint32_t;

  /// Schedules \p fn at absolute time \p when. \p when may equal the time
  /// of the event currently executing (fires in the same delta step).
  /// One-shot: the closure is dropped after it fires. \p tag is the host
  /// profiler's attribution tag (0 = untagged); it rides in the heap
  /// entry's padding, so tagging costs nothing either way.
  template <typename F>
  void schedule(TimePs when, F&& fn, std::uint32_t tag = 0) {
    std::uint32_t slot;
    if (!free_slots_.empty()) {
      slot = free_slots_.back();
      free_slots_.pop_back();
    } else {
      slot = static_cast<std::uint32_t>(slots_.size());
      FGQOS_ASSERT(slot < kRecurringBit, "EventQueue: slot space exhausted");
      slots_.emplace_back();
    }
    slots_[slot].emplace(std::forward<F>(fn));
    FGQOS_ASSERT(static_cast<bool>(slots_[slot]),
                 "EventQueue: null callback");
    push_entry(when, slot, 0, tag);
  }

  /// Registers a recurring closure; it fires every time a
  /// schedule_recurring() entry for it reaches the head of the queue. The
  /// closure may take a std::uint64_t to receive the per-schedule payload.
  /// The attribution \p tag is registered once here and stamped on every
  /// re-arm, so a recurring event keeps one tag for its whole life no
  /// matter how many times it re-arms itself.
  template <typename F>
  RecurringId make_recurring(F&& fn, std::uint32_t tag = 0) {
    FGQOS_ASSERT(recurring_.size() < kRecurringBit,
                 "EventQueue: recurring id space exhausted");
    recurring_.emplace_back(std::forward<F>(fn));
    recurring_tags_.push_back(tag);
    return static_cast<RecurringId>(recurring_.size() - 1);
  }

  /// Arms recurring event \p id at absolute time \p when. Multiple
  /// outstanding arms of the same id are allowed (each fires once) — the
  /// closure disambiguates via \p arg, e.g. an epoch counter.
  void schedule_recurring(RecurringId id, TimePs when, std::uint64_t arg = 0) {
    FGQOS_ASSERT(id < recurring_.size(), "EventQueue: bad recurring id");
    push_entry(when, id | kRecurringBit, arg, recurring_tags_[id]);
  }

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }
  /// Largest occupancy ever observed (kernel self-profiling).
  [[nodiscard]] std::size_t max_size() const { return max_size_; }

  /// Time of the earliest pending event; kTimeNever when empty.
  [[nodiscard]] TimePs next_time() const {
    return heap_.empty() ? kTimeNever : heap_.top().when();
  }

  /// Removes and dispatches the earliest event; returns its time.
  /// Pre: !empty(). Defined inline: this is the kernel's innermost call
  /// and inlining it into the run loop saves a call per event. Only the
  /// profiled run loop instantiates kTag=true; the default instantiation
  /// never touches last_tag_, so unprofiled dispatch pays nothing for
  /// the attribution plumbing.
  template <bool kTag = false>
  TimePs run_next() {
    FGQOS_ASSERT(!heap_.empty(), "run_next on empty EventQueue");
    const Entry e = heap_.pop();
    const TimePs when = e.when();
    if constexpr (kTag) {
      last_tag_ = e.tag;
    }
    if ((e.slot & kRecurringBit) != 0) {
      recurring_[e.slot & ~kRecurringBit](e.arg);
      return when;
    }
    // One-shot: move the closure out of its slot before invoking — the
    // callback may schedule new events and reallocate slots_.
    InlineEvent fn = std::move(slots_[e.slot]);
    free_slots_.push_back(e.slot);
    fn(e.arg);
    return when;
  }

  /// Attribution tag of the event most recently dispatched by
  /// run_next<true>(). Read by the profiled run loop immediately after
  /// each dispatch.
  [[nodiscard]] std::uint32_t last_dispatch_tag() const { return last_tag_; }

 private:
  /// High bit of Entry::slot marks a recurring event.
  static constexpr std::uint32_t kRecurringBit = 0x8000'0000u;

  struct Entry {
    /// (when << 64) | seq: one 128-bit compare orders by time then by
    /// schedule order, with no tie-breaking branch on the compare path.
    unsigned __int128 key;
    std::uint64_t arg;  ///< payload for recurring closures
    std::uint32_t slot;
    std::uint32_t tag;  ///< host-profiler attribution tag (was padding)
    [[nodiscard]] TimePs when() const {
      return static_cast<TimePs>(key >> 64);
    }
  };
  static_assert(sizeof(Entry) == 32,
                "Entry must stay 32 bytes: the tag lives in what used to "
                "be alignment padding, not in new heap traffic");
  struct Earlier {
    bool operator()(const Entry& a, const Entry& b) const {
      return a.key < b.key;
    }
  };

  void push_entry(TimePs when, std::uint32_t slot, std::uint64_t arg = 0,
                  std::uint32_t tag = 0) {
    const auto key =
        (static_cast<unsigned __int128>(when) << 64) | next_seq_++;
    heap_.push(Entry{key, arg, slot, tag});
    if (heap_.size() > max_size_) {
      max_size_ = heap_.size();
    }
  }

  DHeap<Entry, Earlier, 4> heap_;
  std::vector<InlineEvent> slots_;        ///< one-shot closures
  std::vector<std::uint32_t> free_slots_;
  std::deque<InlineEvent> recurring_;     ///< stable registered closures
  std::vector<std::uint32_t> recurring_tags_;  ///< parallel to recurring_
  std::uint64_t next_seq_ = 0;
  std::size_t max_size_ = 0;
  std::uint32_t last_tag_ = 0;
};

}  // namespace fgqos::sim
