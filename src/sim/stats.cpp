#include "sim/stats.hpp"

#include <algorithm>

#include "util/config_error.hpp"

namespace fgqos::sim {

WindowedBytes::WindowedBytes(TimePs window_ps)
    : window_ps_(window_ps), window_end_(window_ps) {
  config_check(window_ps > 0, "WindowedBytes: window must be > 0");
}

void WindowedBytes::close_until(TimePs now) {
  while (now >= window_end_) {
    samples_.push_back(current_);
    current_ = 0;
    window_end_ += window_ps_;
  }
}

void WindowedBytes::add(TimePs now, std::uint64_t bytes) {
  close_until(now);
  current_ += bytes;
  total_ += bytes;
}

void WindowedBytes::flush(TimePs now) { close_until(now); }

std::uint64_t WindowedBytes::max_window_bytes() const {
  if (samples_.empty()) {
    return 0;
  }
  return *std::max_element(samples_.begin(), samples_.end());
}

double WindowedBytes::mean_window_bytes() const {
  if (samples_.empty()) {
    return 0.0;
  }
  std::uint64_t sum = 0;
  for (auto s : samples_) {
    sum += s;
  }
  return static_cast<double>(sum) / static_cast<double>(samples_.size());
}

void StatsRegistry::set(const std::string& name, double value) {
  values_[name] = value;
}

void StatsRegistry::set(const std::string& name, std::uint64_t value) {
  values_[name] = static_cast<double>(value);
}

bool StatsRegistry::contains(const std::string& name) const {
  return values_.count(name) != 0;
}

double StatsRegistry::get(const std::string& name) const {
  auto it = values_.find(name);
  config_check(it != values_.end(), "StatsRegistry: unknown stat " + name);
  return it->second;
}

}  // namespace fgqos::sim
