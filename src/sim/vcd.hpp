/// \file vcd.hpp
/// \brief Value-change-dump (IEEE 1364 VCD) writer.
///
/// Lets any simulation entity export signals viewable in GTKWave &co —
/// the natural debug medium for the hardware audience this library
/// targets. Define all signals first, then sample(); the header is
/// emitted lazily at the first sample.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace fgqos::sim {

/// Handle to a defined signal.
using VcdSignal = std::size_t;

/// The writer. One VCD file per instance.
class VcdWriter {
 public:
  /// \param path         output file (truncated)
  /// \param timescale_ps dump resolution; times are divided by this
  ///                     (default 1000 = 1 ns ticks)
  explicit VcdWriter(const std::string& path, TimePs timescale_ps = 1'000);
  ~VcdWriter();

  VcdWriter(const VcdWriter&) = delete;
  VcdWriter& operator=(const VcdWriter&) = delete;

  /// Defines a signal. Must be called before the first sample().
  /// \param scope dotted module path ("soc.hp0"), flattened into VCD
  ///        scopes; \param width bits (1 = wire, >1 = vector).
  VcdSignal add_signal(const std::string& scope, const std::string& name,
                       std::uint32_t width);

  /// Records a value change at time \p now. Unchanged values are
  /// de-duplicated. Times must be non-decreasing.
  void sample(VcdSignal signal, std::uint64_t value, TimePs now);

  /// Flushes and closes; further samples are ignored. Called by the
  /// destructor.
  void finish();

  [[nodiscard]] bool header_written() const { return header_written_; }

 private:
  void write_header();
  void advance_time(TimePs now);
  [[nodiscard]] std::string id_of(VcdSignal s) const;

  struct Signal {
    std::string scope;
    std::string name;
    std::uint32_t width;
    std::uint64_t last_value = ~std::uint64_t{0};
    bool ever_sampled = false;
  };

  std::ofstream os_;
  TimePs timescale_ps_;
  std::vector<Signal> signals_;
  bool header_written_ = false;
  bool finished_ = false;
  TimePs current_tick_ = ~TimePs{0};
};

}  // namespace fgqos::sim
