#include "sim/vcd.hpp"

#include <algorithm>
#include <map>

#include "util/assert.hpp"
#include "util/config_error.hpp"

namespace fgqos::sim {

VcdWriter::VcdWriter(const std::string& path, TimePs timescale_ps)
    : os_(path), timescale_ps_(timescale_ps) {
  config_check(static_cast<bool>(os_), "VcdWriter: cannot open " + path);
  config_check(timescale_ps_ > 0, "VcdWriter: timescale must be > 0");
}

VcdWriter::~VcdWriter() { finish(); }

std::string VcdWriter::id_of(VcdSignal s) const {
  // Printable short identifiers: base-94 over '!'..'~'.
  std::string id;
  std::size_t v = s;
  do {
    id += static_cast<char>('!' + v % 94);
    v /= 94;
  } while (v != 0);
  return id;
}

VcdSignal VcdWriter::add_signal(const std::string& scope,
                                const std::string& name,
                                std::uint32_t width) {
  config_check(!header_written_,
               "VcdWriter: signals must be defined before sampling");
  config_check(width >= 1 && width <= 64,
               "VcdWriter: width must be in [1,64]");
  signals_.push_back(Signal{scope, name, width});
  return signals_.size() - 1;
}

void VcdWriter::write_header() {
  os_ << "$version fgqos simulator $end\n";
  os_ << "$timescale " << timescale_ps_ / 1'000 << "ns $end\n";
  // Group signals by scope (single level, dotted names kept verbatim).
  std::map<std::string, std::vector<VcdSignal>> by_scope;
  for (VcdSignal s = 0; s < signals_.size(); ++s) {
    by_scope[signals_[s].scope].push_back(s);
  }
  for (const auto& [scope, sigs] : by_scope) {
    os_ << "$scope module " << (scope.empty() ? "top" : scope) << " $end\n";
    for (const VcdSignal s : sigs) {
      os_ << "$var wire " << signals_[s].width << ' ' << id_of(s) << ' '
          << signals_[s].name << " $end\n";
    }
    os_ << "$upscope $end\n";
  }
  os_ << "$enddefinitions $end\n";
  header_written_ = true;
}

void VcdWriter::advance_time(TimePs now) {
  const TimePs tick = now / timescale_ps_;
  if (current_tick_ == tick) {
    return;
  }
  FGQOS_ASSERT(current_tick_ == ~TimePs{0} || tick > current_tick_,
               "VcdWriter: time went backwards");
  current_tick_ = tick;
  os_ << '#' << tick << '\n';
}

void VcdWriter::sample(VcdSignal signal, std::uint64_t value, TimePs now) {
  if (finished_) {
    return;
  }
  FGQOS_ASSERT(signal < signals_.size(), "VcdWriter: unknown signal");
  Signal& s = signals_[signal];
  if (s.ever_sampled && s.last_value == value) {
    return;
  }
  if (!header_written_) {
    write_header();
  }
  advance_time(now);
  s.ever_sampled = true;
  s.last_value = value;
  if (s.width == 1) {
    os_ << (value & 1) << id_of(signal) << '\n';
    return;
  }
  os_ << 'b';
  bool leading = true;
  for (int bit = static_cast<int>(s.width) - 1; bit >= 0; --bit) {
    const bool v = (value >> bit) & 1;
    if (v || !leading || bit == 0) {
      os_ << (v ? '1' : '0');
      leading = false;
    }
  }
  os_ << ' ' << id_of(signal) << '\n';
}

void VcdWriter::finish() {
  if (finished_) {
    return;
  }
  finished_ = true;
  os_.flush();
  os_.close();
}

}  // namespace fgqos::sim
