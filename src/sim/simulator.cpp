#include "sim/simulator.hpp"

#include <chrono>

#include "util/assert.hpp"

namespace fgqos::sim {

Clocked::Clocked(Simulator& sim, const ClockDomain& clk, std::string name)
    : sim_(sim), clk_(&clk), name_(std::move(name)) {
  sim_.register_clocked(*this);
}

Clocked::~Clocked() {
  FGQOS_ASSERT(!sim_.running_,
               "Clocked destroyed while the simulator is running");
  // Any stale heap entries referring to this component are discarded by the
  // lazy-deletion check in run_until (scheduled_ is reset here).
  scheduled_ = false;
}

void Clocked::wake_at(TimePs at) {
  if (at < sim_.now()) {
    at = sim_.now();
  }
  Cycles cyc = clk_->edge_index_at_or_after(at);
  if (has_ticked_ && cyc <= last_cycle_) {
    // Never re-tick an edge that already fired: work that became visible
    // during cycle N is processed at cycle N+1, as in hardware.
    cyc = last_cycle_ + 1;
  }
  const TimePs edge = clk_->edge_time(cyc);
  if (scheduled_ && next_tick_ <= edge) {
    return;
  }
  // Re-scheduling to an earlier edge leaves a stale entry in the heap; the
  // run loop discards entries whose time no longer matches next_tick_.
  next_tick_ = edge;
  next_cycle_ = cyc;
  scheduled_ = true;
  sim_.push_tick(*this);
}

void Clocked::wake() { wake_at(sim_.now() + 1); }

void Simulator::register_clocked(Clocked& c) {
  c.order_ = next_order_++;
  // Components start awake at their first edge at or after the current
  // time; idle ones will put themselves to sleep on their first tick.
  c.next_cycle_ = c.clk_->edge_index_at_or_after(now_);
  c.next_tick_ = c.clk_->edge_time(c.next_cycle_);
  c.scheduled_ = true;
  push_tick(c);
}

void Simulator::push_tick(Clocked& c) {
  ticks_.push(TickEntry{c.next_tick_, c.order_, &c});
}

double Simulator::wall_s_per_sim_s() const {
  if (now_ == 0) {
    return 0.0;
  }
  return static_cast<double>(wall_ns_) * 1e3 / static_cast<double>(now_);
}

void Simulator::run_until(TimePs t_end) {
  FGQOS_ASSERT(!running_, "run_until: re-entrant call");
  running_ = true;
  stop_requested_ = false;
  const auto wall_start = std::chrono::steady_clock::now();
  while (!stop_requested_) {
    const TimePs ev_t = events_.next_time();
    const TimePs tk_t = ticks_.empty() ? kTimeNever : ticks_.top().when;
    const TimePs next = ev_t < tk_t ? ev_t : tk_t;
    if (next > t_end) {
      break;
    }
    now_ = next;
    // Events fire before ticks at equal timestamps.
    if (ev_t <= tk_t && ev_t != kTimeNever) {
      ++events_dispatched_;
      events_.run_next();
      continue;
    }
    const TickEntry e = ticks_.pop();
    Clocked& c = *e.comp;
    if (!c.scheduled_ || c.next_tick_ != e.when) {
      continue;  // stale lazy-deleted entry
    }
    ++tick_count_;
    ++c.ticks_fired_;
    c.has_ticked_ = true;
    const Cycles cycle = c.next_cycle_;
    c.last_cycle_ = cycle;
    // Unschedule before ticking so the component may call wake_at() on
    // itself (e.g. to fast-forward over a long compute phase) and then
    // return false.
    c.scheduled_ = false;
    if (c.tick(cycle)) {
      const TimePs next_edge = e.when + c.clk_->period_ps();
      if (!c.scheduled_ || c.next_tick_ > next_edge) {
        c.next_tick_ = next_edge;
        c.next_cycle_ = cycle + 1;
        c.scheduled_ = true;
        push_tick(c);
      }
    }
    // When tick() returned false, any wake_at() it performed stands.
  }
  if (!stop_requested_ && now_ < t_end) {
    now_ = t_end;
  }
  wall_ns_ += static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - wall_start)
          .count());
  running_ = false;
}

}  // namespace fgqos::sim
