#include "sim/simulator.hpp"

#include <chrono>

#include "util/assert.hpp"

namespace fgqos::sim {

Clocked::Clocked(Simulator& sim, const ClockDomain& clk, std::string name)
    : sim_(sim), clk_(&clk), name_(std::move(name)) {
  sim_.register_clocked(*this);
}

Clocked::~Clocked() {
  FGQOS_ASSERT(!sim_.running_,
               "Clocked destroyed while the simulator is running");
  // Any stale heap entries referring to this component are discarded by the
  // lazy-deletion check in run_until (scheduled_ is reset here).
  scheduled_ = false;
}

void Clocked::wake_at(TimePs at) {
  if (at < sim_.now()) {
    at = sim_.now();
  }
  Cycles cyc = clk_->edge_index_at_or_after(at);
  if (has_ticked_ && cyc <= last_cycle_) {
    // Never re-tick an edge that already fired: work that became visible
    // during cycle N is processed at cycle N+1, as in hardware.
    cyc = last_cycle_ + 1;
  }
  const TimePs edge = clk_->edge_time(cyc);
  if (scheduled_ && next_tick_ <= edge) {
    return;
  }
  // Re-scheduling to an earlier edge leaves a stale entry in the heap; the
  // run loop discards entries whose time no longer matches next_tick_.
  next_tick_ = edge;
  next_cycle_ = cyc;
  scheduled_ = true;
  sim_.push_tick(*this);
}

void Clocked::wake() { wake_at(sim_.now() + 1); }

void Simulator::register_clocked(Clocked& c) {
  c.order_ = next_order_++;
  // Components start awake at their first edge at or after the current
  // time; idle ones will put themselves to sleep on their first tick.
  c.next_cycle_ = c.clk_->edge_index_at_or_after(now_);
  c.next_tick_ = c.clk_->edge_time(c.next_cycle_);
  c.scheduled_ = true;
  push_tick(c);
}

void Simulator::push_tick(Clocked& c) {
  ticks_.push(TickEntry{c.next_tick_, c.order_, &c});
}

double Simulator::wall_s_per_sim_s() const {
  if (now_ == 0) {
    return 0.0;
  }
  return static_cast<double>(wall_ns_) * 1e3 / static_cast<double>(now_);
}

void Simulator::run_until(TimePs t_end) {
  // The whole profiling price when disabled is this one predicted branch
  // per run_until() call; the kProfile=false instantiation is the exact
  // pre-profiler loop.
  if (prof_ != nullptr) {
    run_loop<true>(t_end);
  } else {
    run_loop<false>(t_end);
  }
}

template <bool kProfile>
void Simulator::run_loop(TimePs t_end) {
  FGQOS_ASSERT(!running_, "run_until: re-entrant call");
  running_ = true;
  stop_requested_ = false;
  const auto wall_start = std::chrono::steady_clock::now();
  // Fence-post cycle attribution: the span between consecutive counter
  // reads is charged to the dispatch that ended it (heap ops and loop
  // bookkeeping ride along with the work they set up), and the tail after
  // the last dispatch goes to kernel.overhead — so the per-tag cycles of
  // a run sum exactly to total_cycles.
  std::uint64_t c_prev = kProfile ? prof_now_cycles() : 0;
  const std::uint64_t c_start = c_prev;
  TimePs run_ts = kTimeNever;     // timestamp of the current event run
  std::uint64_t run_len = 0;      // same-timestamp events seen in it
  while (!stop_requested_) {
    const TimePs ev_t = events_.next_time();
    const TimePs tk_t = ticks_.empty() ? kTimeNever : ticks_.top().when;
    const TimePs next = ev_t < tk_t ? ev_t : tk_t;
    if (next > t_end) {
      break;
    }
    now_ = next;
    // Events fire before ticks at equal timestamps.
    if (ev_t <= tk_t && ev_t != kTimeNever) {
      if constexpr (kProfile) {
        prof_->heap_depth.record(events_.size());
        if (ev_t == run_ts) {
          ++run_len;
        } else {
          if (run_len > 0) {
            prof_->run_length.record(run_len);
          }
          run_ts = ev_t;
          run_len = 1;
        }
      }
      ++events_dispatched_;
      events_.run_next<kProfile>();
      if constexpr (kProfile) {
        const std::uint64_t c = prof_now_cycles();
        prof_->hit(events_.last_dispatch_tag(), c - c_prev);
        ++prof_->events_dispatched;
        c_prev = c;
      }
      continue;
    }
    const TickEntry e = ticks_.pop();
    Clocked& c = *e.comp;
    if (!c.scheduled_ || c.next_tick_ != e.when) {
      continue;  // stale lazy-deleted entry
    }
    ++tick_count_;
    ++c.ticks_fired_;
    c.has_ticked_ = true;
    const Cycles cycle = c.next_cycle_;
    c.last_cycle_ = cycle;
    // Unschedule before ticking so the component may call wake_at() on
    // itself (e.g. to fast-forward over a long compute phase) and then
    // return false.
    c.scheduled_ = false;
    if constexpr (kProfile) {
      if (c.prof_tag_ == 0 && prof_register_) {
        c.prof_tag_ = prof_register_("tick." + c.name_);
      }
    }
    if (c.tick(cycle)) {
      const TimePs next_edge = e.when + c.clk_->period_ps();
      if (!c.scheduled_ || c.next_tick_ > next_edge) {
        c.next_tick_ = next_edge;
        c.next_cycle_ = cycle + 1;
        c.scheduled_ = true;
        push_tick(c);
      }
    }
    // When tick() returned false, any wake_at() it performed stands.
    if constexpr (kProfile) {
      const std::uint64_t cy = prof_now_cycles();
      prof_->hit(c.prof_tag_, cy - c_prev);
      ++prof_->ticks_dispatched;
      c_prev = cy;
    }
  }
  if (!stop_requested_ && now_ < t_end) {
    now_ = t_end;
  }
  if constexpr (kProfile) {
    if (run_len > 0) {
      prof_->run_length.record(run_len);
    }
    const std::uint64_t c_end = prof_now_cycles();
    prof_->hit(kProfTagOverhead, c_end - c_prev);
    prof_->total_cycles += c_end - c_start;
  }
  wall_ns_ += static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - wall_start)
          .count());
  running_ = false;
}

template void Simulator::run_loop<false>(TimePs);
template void Simulator::run_loop<true>(TimePs);

}  // namespace fgqos::sim
