#include "sim/clock_domain.hpp"

#include "util/config_error.hpp"

namespace fgqos::sim {

ClockDomain::ClockDomain(std::string name, TimePs period_ps)
    : name_(std::move(name)), period_ps_(period_ps) {
  config_check(period_ps_ > 0, "ClockDomain '" + name_ + "': period must be > 0");
}

ClockDomain ClockDomain::from_mhz(std::string name, std::uint64_t mhz) {
  config_check(mhz > 0, "ClockDomain '" + name + "': frequency must be > 0");
  return ClockDomain(std::move(name), period_ps_from_mhz(mhz));
}

}  // namespace fgqos::sim
