/// \file stats.hpp
/// \brief Named counters and per-window time series for components.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace fgqos::sim {

/// A monotonically increasing named counter.
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_ += n; }
  [[nodiscard]] std::uint64_t value() const { return value_; }
  void reset() { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

/// Windowed bandwidth sampler: accumulate bytes, close windows at fixed
/// intervals, and keep the per-window byte counts for later inspection
/// (used to measure regulation overshoot per window).
class WindowedBytes {
 public:
  /// \param window_ps window length; must be > 0
  explicit WindowedBytes(TimePs window_ps);

  /// Accounts \p bytes transferred at time \p now; closes any windows that
  /// ended at or before \p now first.
  void add(TimePs now, std::uint64_t bytes);

  /// Closes all windows ending at or before \p now (call once at the end
  /// of a run so trailing samples are flushed).
  void flush(TimePs now);

  [[nodiscard]] TimePs window_ps() const { return window_ps_; }
  [[nodiscard]] const std::vector<std::uint64_t>& samples() const {
    return samples_;
  }
  /// Total bytes recorded (flushed + current open window).
  [[nodiscard]] std::uint64_t total_bytes() const { return total_; }
  /// Largest closed-window byte count (0 if none closed yet).
  [[nodiscard]] std::uint64_t max_window_bytes() const;
  /// Mean bytes per closed window.
  [[nodiscard]] double mean_window_bytes() const;

 private:
  void close_until(TimePs now);

  TimePs window_ps_;
  TimePs window_end_;
  std::uint64_t current_ = 0;
  std::uint64_t total_ = 0;
  std::vector<std::uint64_t> samples_;
};

/// Registry mapping dotted stat names ("dram.row_hit") to values, used to
/// dump a whole SoC's statistics in one call.
class StatsRegistry {
 public:
  /// Sets (or overwrites) a scalar stat.
  void set(const std::string& name, double value);
  void set(const std::string& name, std::uint64_t value);

  [[nodiscard]] bool contains(const std::string& name) const;
  /// Returns the value; throws ConfigError when absent.
  [[nodiscard]] double get(const std::string& name) const;

  [[nodiscard]] const std::map<std::string, double>& all() const {
    return values_;
  }

 private:
  std::map<std::string, double> values_;
};

}  // namespace fgqos::sim
