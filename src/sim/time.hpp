/// \file time.hpp
/// \brief Global time base of the simulator.
///
/// All component clocks are derived from a single picosecond timeline so
/// that multiple clock domains (CPU cluster, FPGA fabric, DDR controller)
/// can interact without accumulating rounding error.
#pragma once

#include <cstdint>

namespace fgqos::sim {

/// Absolute simulation time in picoseconds.
using TimePs = std::uint64_t;

/// Cycle count within one clock domain.
using Cycles = std::uint64_t;

inline constexpr TimePs kPsPerNs = 1'000;
inline constexpr TimePs kPsPerUs = 1'000'000;
inline constexpr TimePs kPsPerMs = 1'000'000'000;
inline constexpr TimePs kPsPerS = 1'000'000'000'000;

/// A sentinel meaning "never" for optional deadlines.
inline constexpr TimePs kTimeNever = ~TimePs{0};

/// Converts a frequency in MHz to a clock period in ps (rounded to the
/// nearest picosecond). E.g. 1200 MHz -> 833 ps.
constexpr TimePs period_ps_from_mhz(std::uint64_t mhz) {
  return (kPsPerUs + mhz / 2) / mhz;
}

/// Bytes-per-second bandwidth given bytes moved over a ps interval.
constexpr double bytes_per_second(std::uint64_t bytes, TimePs interval_ps) {
  if (interval_ps == 0) {
    return 0.0;
  }
  return static_cast<double>(bytes) * 1e12 / static_cast<double>(interval_ps);
}

}  // namespace fgqos::sim
