/// \file simulator.hpp
/// \brief Event-driven simulator with clocked components and sleep/wake.
///
/// The kernel merges two sources of work on one picosecond timeline:
///  * one-shot events scheduled through EventQueue (timers, interrupts,
///    window boundaries), and
///  * per-cycle ticks of Clocked components.
///
/// Clocked components may sleep when idle (tick() returns false) and are
/// woken by whoever hands them work (wake_at). The contract that makes this
/// safe is: a component may only sleep when it has nothing pending, and
/// every producer of pending work wakes its consumer with the time at which
/// the work becomes visible.
///
/// Determinism: at equal timestamps, one-shot events fire before ticks, and
/// ticks fire in component-registration order. Two runs with identical
/// configuration and seeds are bit-identical.
#pragma once

#include <cstdint>
#include <queue>
#include <string>
#include <vector>

#include "sim/clock_domain.hpp"
#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace fgqos::sim {

class Simulator;

/// Base class for components ticked on clock edges.
class Clocked {
 public:
  /// Registers with \p sim. \p clk must outlive the component.
  Clocked(Simulator& sim, const ClockDomain& clk, std::string name);
  virtual ~Clocked();

  Clocked(const Clocked&) = delete;
  Clocked& operator=(const Clocked&) = delete;

  /// Called once per clock edge while awake. \p cycle is the edge index in
  /// this component's clock domain. Return true to be ticked again next
  /// cycle, false to sleep until woken.
  virtual bool tick(Cycles cycle) = 0;

  /// Wakes the component so that it ticks at the first edge at or after
  /// \p at (and never before the current time). No-op when already
  /// scheduled at or before that edge.
  void wake_at(TimePs at);

  /// Wakes the component at the next edge strictly after the current time.
  void wake();

  [[nodiscard]] const ClockDomain& clock() const { return *clk_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] Simulator& simulator() const { return sim_; }

  /// Number of tick() invocations this component has executed (telemetry:
  /// per-component dispatch attribution).
  [[nodiscard]] std::uint64_t ticks_fired() const { return ticks_fired_; }

 private:
  friend class Simulator;
  Simulator& sim_;
  const ClockDomain* clk_;
  std::string name_;
  std::uint64_t order_ = 0;   ///< registration order, for deterministic ties
  std::uint64_t ticks_fired_ = 0;
  bool scheduled_ = false;
  bool has_ticked_ = false;
  TimePs next_tick_ = 0;      ///< valid iff scheduled_
  TimePs last_tick_ = 0;      ///< valid iff has_ticked_
};

/// The simulation kernel. Owns the timeline; does not own components.
/// All registered Clocked components must outlive any call to run().
class Simulator {
 public:
  Simulator() = default;

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulation time.
  [[nodiscard]] TimePs now() const { return now_; }

  /// Schedules a one-shot callback at absolute time \p when (>= now).
  void schedule_at(TimePs when, EventFn fn);

  /// Schedules a one-shot callback \p delay after the current time.
  void schedule_after(TimePs delay, EventFn fn) {
    schedule_at(now_ + delay, std::move(fn));
  }

  /// Runs until the timeline is exhausted or time would exceed \p t_end.
  /// On return now() == t_end (or the time work ran out, if stop() was
  /// called). Events exactly at t_end are executed.
  void run_until(TimePs t_end);

  /// Runs for \p delta more picoseconds.
  void run_for(TimePs delta) { run_until(now_ + delta); }

  /// Requests that the current run() returns as soon as the in-flight
  /// timestamp finishes processing.
  void stop() { stop_requested_ = true; }

  /// Number of tick invocations executed so far (for micro-benchmarks).
  [[nodiscard]] std::uint64_t tick_count() const { return tick_count_; }

  // --- kernel self-profiling (telemetry) ---------------------------------

  /// One-shot events dispatched so far.
  [[nodiscard]] std::uint64_t events_dispatched() const {
    return events_dispatched_;
  }
  /// Current one-shot event-queue occupancy.
  [[nodiscard]] std::size_t event_queue_size() const {
    return events_.size();
  }
  /// Largest event-queue occupancy observed during run_until().
  [[nodiscard]] std::size_t max_event_queue() const {
    return max_event_queue_;
  }
  /// Wall-clock nanoseconds spent inside run_until() so far.
  [[nodiscard]] std::uint64_t wall_ns() const { return wall_ns_; }
  /// Wall-clock seconds per simulated second so far (simulation slowdown;
  /// 0 before the first run).
  [[nodiscard]] double wall_s_per_sim_s() const;

 private:
  friend class Clocked;

  void register_clocked(Clocked& c);
  void push_tick(Clocked& c);

  struct TickEntry {
    TimePs when;
    std::uint64_t order;
    Clocked* comp;
  };
  struct Later {
    bool operator()(const TickEntry& a, const TickEntry& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.order > b.order;
    }
  };

  EventQueue events_;
  std::priority_queue<TickEntry, std::vector<TickEntry>, Later> ticks_;
  TimePs now_ = 0;
  std::uint64_t next_order_ = 0;
  std::uint64_t tick_count_ = 0;
  std::uint64_t events_dispatched_ = 0;
  std::size_t max_event_queue_ = 0;
  std::uint64_t wall_ns_ = 0;
  bool running_ = false;
  bool stop_requested_ = false;
};

}  // namespace fgqos::sim
