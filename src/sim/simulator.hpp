/// \file simulator.hpp
/// \brief Event-driven simulator with clocked components and sleep/wake.
///
/// The kernel merges two sources of work on one picosecond timeline:
///  * one-shot and recurring events scheduled through EventQueue (timers,
///    interrupts, window boundaries), and
///  * per-cycle ticks of Clocked components.
///
/// Clocked components may sleep when idle (tick() returns false) and are
/// woken by whoever hands them work (wake_at). The contract that makes this
/// safe is: a component may only sleep when it has nothing pending, and
/// every producer of pending work wakes its consumer with the time at which
/// the work becomes visible.
///
/// Determinism: at equal timestamps, events fire before ticks (events in
/// schedule order, ticks in component-registration order). Two runs with
/// identical configuration and seeds are bit-identical.
///
/// Hot path: both queues are allocation-free 4-ary heaps (see dheap.hpp);
/// event closures are stored inline (see event.hpp); per-window periodic
/// work should use the recurring-event API so re-arming a timer costs one
/// heap push and no closure construction.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "sim/clock_domain.hpp"
#include "sim/dheap.hpp"
#include "sim/event_queue.hpp"
#include "sim/prof.hpp"
#include "sim/time.hpp"
#include "util/assert.hpp"

namespace fgqos::sim {

class Simulator;

/// Base class for components ticked on clock edges.
class Clocked {
 public:
  /// Registers with \p sim. \p clk must outlive the component.
  Clocked(Simulator& sim, const ClockDomain& clk, std::string name);
  virtual ~Clocked();

  Clocked(const Clocked&) = delete;
  Clocked& operator=(const Clocked&) = delete;

  /// Called once per clock edge while awake. \p cycle is the edge index in
  /// this component's clock domain. Return true to be ticked again next
  /// cycle, false to sleep until woken.
  virtual bool tick(Cycles cycle) = 0;

  /// Wakes the component so that it ticks at the first edge at or after
  /// \p at (and never before the current time). No-op when already
  /// scheduled at or before that edge.
  void wake_at(TimePs at);

  /// Wakes the component at the next edge strictly after the current time.
  void wake();

  [[nodiscard]] const ClockDomain& clock() const { return *clk_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] Simulator& simulator() const { return sim_; }

  /// Number of tick() invocations this component has executed (telemetry:
  /// per-component dispatch attribution).
  [[nodiscard]] std::uint64_t ticks_fired() const { return ticks_fired_; }

 private:
  friend class Simulator;
  Simulator& sim_;
  const ClockDomain* clk_;
  std::string name_;
  std::uint64_t order_ = 0;   ///< registration order, for deterministic ties
  std::uint64_t ticks_fired_ = 0;
  /// Host-profiler tag ("tick.<name>"), assigned lazily by the profiled
  /// run loop on this component's first profiled tick.
  std::uint32_t prof_tag_ = 0;
  bool scheduled_ = false;
  bool has_ticked_ = false;
  TimePs next_tick_ = 0;      ///< valid iff scheduled_
  // Cached edge indices so the run loop never divides by the clock period:
  // each tick costs an increment instead of a 64-bit division.
  Cycles next_cycle_ = 0;     ///< edge index of next_tick_; valid iff scheduled_
  Cycles last_cycle_ = 0;     ///< edge index last ticked; valid iff has_ticked_
};

/// The simulation kernel. Owns the timeline; does not own components.
/// All registered Clocked components must outlive any call to run().
class Simulator {
 public:
  Simulator() = default;

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulation time.
  [[nodiscard]] TimePs now() const { return now_; }

  /// Schedules a one-shot callback at absolute time \p when (>= now).
  /// The callable must fit the InlineEvent contract (capture <= 48 B,
  /// nothrow-movable); oversized captures are a compile error. \p tag is
  /// the host-profiler attribution tag from profile_tag() (0 = untagged).
  template <typename F>
  void schedule_at(TimePs when, F&& fn, std::uint32_t tag = 0) {
    FGQOS_ASSERT(when >= now_, "schedule_at: time in the past");
    if (prof_ != nullptr) {
      ++prof_->oneshot_scheduled;
      prof_->arm_delta_ps.record(when - now_);
    }
    events_.schedule(when, std::forward<F>(fn), tag);
  }

  /// Schedules a one-shot callback \p delay after the current time.
  template <typename F>
  void schedule_after(TimePs delay, F&& fn, std::uint32_t tag = 0) {
    schedule_at(now_ + delay, std::forward<F>(fn), tag);
  }

  /// Registers a recurring closure (see EventQueue::make_recurring).
  /// Periodic work — window boundaries, replenish ticks, refresh — should
  /// register once and re-arm via schedule_recurring(): re-arming pushes a
  /// plain heap entry and constructs no closure. \p tag is stamped on
  /// every re-arm of this id, so the tag is registered exactly once per
  /// recurring event however long it lives.
  template <typename F>
  EventQueue::RecurringId make_recurring_event(F&& fn, std::uint32_t tag = 0) {
    return events_.make_recurring(std::forward<F>(fn), tag);
  }

  /// Arms recurring event \p id at absolute time \p when (>= now). \p arg
  /// is delivered to the closure (commonly a config epoch).
  void schedule_recurring(EventQueue::RecurringId id, TimePs when,
                          std::uint64_t arg = 0) {
    FGQOS_ASSERT(when >= now_, "schedule_recurring: time in the past");
    if (prof_ != nullptr) {
      ++prof_->recurring_armed;
      prof_->arm_delta_ps.record(when - now_);
    }
    events_.schedule_recurring(id, when, arg);
  }

  /// Runs until the timeline is exhausted or time would exceed \p t_end.
  /// On return now() == t_end (or the time work ran out, if stop() was
  /// called). Events exactly at t_end are executed.
  void run_until(TimePs t_end);

  /// Runs for \p delta more picoseconds.
  void run_for(TimePs delta) { run_until(now_ + delta); }

  /// Requests that the current run() returns as soon as the in-flight
  /// timestamp finishes processing.
  void stop() { stop_requested_ = true; }

  /// Number of tick invocations executed so far (for micro-benchmarks).
  [[nodiscard]] std::uint64_t tick_count() const { return tick_count_; }

  // --- kernel self-profiling (telemetry) ---------------------------------

  /// Events dispatched so far (one-shot and recurring).
  [[nodiscard]] std::uint64_t events_dispatched() const {
    return events_dispatched_;
  }
  /// Current event-queue occupancy.
  [[nodiscard]] std::size_t event_queue_size() const {
    return events_.size();
  }
  /// Largest event-queue occupancy observed so far.
  [[nodiscard]] std::size_t max_event_queue() const {
    return events_.max_size();
  }
  /// Wall-clock nanoseconds spent inside run_until() so far.
  [[nodiscard]] std::uint64_t wall_ns() const { return wall_ns_; }
  /// Wall-clock seconds per simulated second so far (simulation slowdown;
  /// 0 before the first run).
  [[nodiscard]] double wall_s_per_sim_s() const;

  // --- host profiling ----------------------------------------------------

  /// Attaches a host profiler: \p table receives per-tag cycle
  /// attribution and kernel micro-telemetry, \p register_tag maps tag
  /// names to ids (owned by the telemetry::HostProfiler behind it; the
  /// indirection keeps sim/ free of telemetry types). Pass nullptr to
  /// detach. When no profiler is attached the run loop takes exactly one
  /// predicted branch extra per run_until() call — nothing per event.
  void set_profiler(ProfTable* table,
                    std::function<std::uint32_t(std::string_view)>
                        register_tag) {
    FGQOS_ASSERT(!running_, "set_profiler while running");
    prof_ = table;
    prof_register_ = std::move(register_tag);
  }

  /// True when a host profiler is attached.
  [[nodiscard]] bool profiling() const { return prof_ != nullptr; }

  /// Registers (idempotently) the attribution tag named \p name with the
  /// attached profiler; returns 0 — the untagged bucket — when profiling
  /// is off, so components can tag unconditionally at construction time.
  [[nodiscard]] std::uint32_t profile_tag(std::string_view name) {
    return prof_ != nullptr && prof_register_ ? prof_register_(name) : 0;
  }

 private:
  friend class Clocked;

  void register_clocked(Clocked& c);
  void push_tick(Clocked& c);

  template <bool kProfile>
  void run_loop(TimePs t_end);

  struct TickEntry {
    TimePs when;
    std::uint64_t order;
    Clocked* comp;
  };
  struct TickBefore {
    bool operator()(const TickEntry& a, const TickEntry& b) const {
      if (a.when != b.when) {
        return a.when < b.when;
      }
      return a.order < b.order;
    }
  };

  EventQueue events_;
  DHeap<TickEntry, TickBefore, 4> ticks_;
  TimePs now_ = 0;
  std::uint64_t next_order_ = 0;
  std::uint64_t tick_count_ = 0;
  std::uint64_t events_dispatched_ = 0;
  std::uint64_t wall_ns_ = 0;
  bool running_ = false;
  bool stop_requested_ = false;
  ProfTable* prof_ = nullptr;  ///< null = profiling off (the common case)
  std::function<std::uint32_t(std::string_view)> prof_register_;
};

}  // namespace fgqos::sim
