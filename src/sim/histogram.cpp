#include "sim/histogram.hpp"

#include <bit>
#include <cmath>

#include "util/assert.hpp"
#include "util/config_error.hpp"

namespace fgqos::sim {

Histogram::Histogram(unsigned sub_bucket_bits) : sub_bits_(sub_bucket_bits) {
  config_check(sub_bucket_bits >= 1 && sub_bucket_bits <= 16,
               "Histogram: sub_bucket_bits must be in [1,16]");
  // Values 0 .. 2^sub_bits_-1 are exact; above that, 64-sub_bits_ octaves
  // each with 2^sub_bits_ sub-buckets.
  const std::size_t octaves = 64 - sub_bits_;
  buckets_.assign((octaves + 1) << sub_bits_, 0);
}

std::size_t Histogram::bucket_index(std::uint64_t value) const {
  if (value < (std::uint64_t{1} << sub_bits_)) {
    return static_cast<std::size_t>(value);
  }
  const unsigned msb = 63 - static_cast<unsigned>(std::countl_zero(value));
  const unsigned octave = msb - sub_bits_ + 1;  // >= 1
  const std::uint64_t sub = (value >> (msb - sub_bits_)) & ((std::uint64_t{1} << sub_bits_) - 1);
  return (static_cast<std::size_t>(octave) << sub_bits_) +
         static_cast<std::size_t>(sub);
}

std::uint64_t Histogram::bucket_upper_bound(std::size_t index) const {
  const std::size_t octave = index >> sub_bits_;
  const std::uint64_t sub = index & ((std::uint64_t{1} << sub_bits_) - 1);
  if (octave == 0) {
    return sub;  // exact
  }
  // Bucket spans [ (2^sub_bits + sub) << (octave-1), +span ), upper bound is
  // the largest value mapping to this bucket.
  const unsigned shift = static_cast<unsigned>(octave) - 1;
  const std::uint64_t base = ((std::uint64_t{1} << sub_bits_) + sub) << shift;
  const std::uint64_t span = std::uint64_t{1} << shift;
  return base + span - 1;
}

void Histogram::record(std::uint64_t value) { record_n(value, 1); }

void Histogram::record_n(std::uint64_t value, std::uint64_t n) {
  if (n == 0) {
    return;
  }
  buckets_[bucket_index(value)] += n;
  count_ += n;
  if (value < min_) {
    min_ = value;
  }
  if (value > max_) {
    max_ = value;
  }
  const double v = static_cast<double>(value);
  const double dn = static_cast<double>(n);
  sum_ += v * dn;
  sum_sq_ += v * v * dn;
}

void Histogram::merge(const Histogram& other) {
  FGQOS_ASSERT(other.sub_bits_ == sub_bits_, "Histogram::merge: geometry mismatch");
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  sum_ += other.sum_;
  sum_sq_ += other.sum_sq_;
}

void Histogram::reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  min_ = ~std::uint64_t{0};
  max_ = 0;
  sum_ = 0.0;
  sum_sq_ = 0.0;
}

std::uint64_t Histogram::min() const { return count_ == 0 ? 0 : min_; }

double Histogram::mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double Histogram::stddev() const {
  if (count_ < 2) {
    return 0.0;
  }
  const double n = static_cast<double>(count_);
  const double var = sum_sq_ / n - (sum_ / n) * (sum_ / n);
  return var > 0.0 ? std::sqrt(var) : 0.0;
}

std::uint64_t Histogram::quantile(double q) const {
  if (count_ == 0) {
    return 0;
  }
  if (q <= 0.0) {
    return min();
  }
  if (q >= 1.0) {
    return max_;
  }
  const double targetd = q * static_cast<double>(count_);
  auto target = static_cast<std::uint64_t>(std::ceil(targetd));
  if (target == 0) {
    target = 1;
  }
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    cum += buckets_[i];
    if (cum >= target) {
      return std::min(bucket_upper_bound(i), max_);
    }
  }
  return max_;
}

std::vector<Histogram::CdfPoint> Histogram::cdf() const {
  std::vector<CdfPoint> out;
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) {
      continue;
    }
    cum += buckets_[i];
    out.push_back(CdfPoint{std::min(bucket_upper_bound(i), max_), cum});
  }
  return out;
}

}  // namespace fgqos::sim
