/// \file dheap.hpp
/// \brief Indexed d-ary min-heap (default 4-ary) for the kernel queues.
///
/// Replaces std::priority_queue in the event and tick queues. A 4-ary
/// implicit heap halves the tree depth of a binary heap, so push/pop touch
/// fewer cache lines, and the hole-based sift routines move elements once
/// instead of swapping. Both kernel queues order by a strict total order
/// (time, then insertion sequence), so any correct heap pops the exact
/// same sequence — determinism does not depend on heap shape.
#pragma once

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

namespace fgqos::sim {

/// Min-heap: Before(a, b) == true means a is dispatched before b. Before
/// must define a strict weak ordering; for deterministic pop order across
/// heap implementations it should be a strict total order.
template <typename T, typename Before, unsigned Arity = 4>
class DHeap {
  static_assert(Arity >= 2, "DHeap: arity must be >= 2");

 public:
  [[nodiscard]] bool empty() const { return v_.empty(); }
  [[nodiscard]] std::size_t size() const { return v_.size(); }
  [[nodiscard]] const T& top() const { return v_.front(); }

  void reserve(std::size_t n) { v_.reserve(n); }
  void clear() { v_.clear(); }

  void push(T x) {
    v_.push_back(std::move(x));
    sift_up(v_.size() - 1);
  }

  /// Removes and returns the minimum. Pre: !empty().
  T pop() {
    T out = std::move(v_.front());
    T tail = std::move(v_.back());
    v_.pop_back();
    if (!v_.empty()) {
      sift_down_from_root(std::move(tail));
    }
    return out;
  }

 private:
  void sift_up(std::size_t i) {
    T x = std::move(v_[i]);
    while (i > 0) {
      const std::size_t parent = (i - 1) / Arity;
      if (!before_(x, v_[parent])) {
        break;
      }
      v_[i] = std::move(v_[parent]);
      i = parent;
    }
    v_[i] = std::move(x);
  }

  void sift_down_from_root(T x) {
    const std::size_t n = v_.size();
    std::size_t i = 0;
    for (;;) {
      const std::size_t first = i * Arity + 1;
      if (first >= n) {
        break;
      }
      std::size_t best = first;
      const std::size_t last = std::min(first + Arity, n);
      for (std::size_t c = first + 1; c < last; ++c) {
        if (before_(v_[c], v_[best])) {
          best = c;
        }
      }
      if (!before_(v_[best], x)) {
        break;
      }
      v_[i] = std::move(v_[best]);
      i = best;
    }
    v_[i] = std::move(x);
  }

  std::vector<T> v_;
  [[no_unique_address]] Before before_;
};

}  // namespace fgqos::sim
