#include "workload/cpu_workloads.hpp"

#include "util/config_error.hpp"

namespace fgqos::wl {
namespace {

using cpu::Kernel;
using cpu::KernelStep;
using cpu::MemOp;

/// Dependent random loads.
class PointerChaseKernel final : public Kernel {
 public:
  explicit PointerChaseKernel(PointerChaseConfig cfg) : cfg_(std::move(cfg)) {
    config_check(cfg_.footprint_bytes >= cfg_.line_bytes,
                 "pointer_chase: footprint too small");
    config_check(cfg_.accesses_per_iteration > 0,
                 "pointer_chase: needs at least one access per iteration");
    lines_ = cfg_.footprint_bytes / cfg_.line_bytes;
  }

  KernelStep next(sim::Xoshiro256& rng) override {
    KernelStep s;
    s.compute_cycles = cfg_.compute_cycles_per_access;
    s.op = MemOp{cfg_.base + rng.next_below(lines_) * cfg_.line_bytes,
                 /*is_write=*/false, /*blocking=*/true};
    ++pos_;
    if (pos_ >= cfg_.accesses_per_iteration) {
      pos_ = 0;
      s.end_of_iteration = true;
    }
    return s;
  }

  void reset() override { pos_ = 0; }
  [[nodiscard]] const std::string& name() const override { return cfg_.name; }

 private:
  PointerChaseConfig cfg_;
  std::uint64_t lines_ = 0;
  std::uint64_t pos_ = 0;
};

/// Streaming reads/writes/copy.
class StreamKernel final : public Kernel {
 public:
  explicit StreamKernel(StreamConfig cfg) : cfg_(std::move(cfg)) {
    config_check(cfg_.footprint_bytes >= cfg_.line_bytes,
                 "stream: footprint too small");
    config_check(cfg_.lines_per_iteration > 0,
                 "stream: needs at least one line per iteration");
    lines_ = cfg_.footprint_bytes / cfg_.line_bytes;
  }

  KernelStep next(sim::Xoshiro256&) override {
    KernelStep s;
    s.compute_cycles = cfg_.compute_cycles_per_line;
    const axi::Addr addr = cfg_.base + (cursor_ % lines_) * cfg_.line_bytes;
    switch (cfg_.mode) {
      case StreamMode::kRead:
        s.op = MemOp{addr, false, /*blocking=*/false};
        ++cursor_;
        break;
      case StreamMode::kWrite:
        s.op = MemOp{addr, true, false};
        ++cursor_;
        break;
      case StreamMode::kCopy: {
        // Alternate read lower half / write upper half.
        const std::uint64_t half = lines_ / 2 == 0 ? 1 : lines_ / 2;
        const std::uint64_t idx = cursor_ % half;
        if (write_leg_) {
          s.op = MemOp{cfg_.base + (half + idx) * cfg_.line_bytes, true, false};
          ++cursor_;
        } else {
          s.op = MemOp{cfg_.base + idx * cfg_.line_bytes, false, false};
        }
        write_leg_ = !write_leg_;
        break;
      }
    }
    ++emitted_;
    if (emitted_ >= cfg_.lines_per_iteration) {
      emitted_ = 0;
      s.end_of_iteration = true;
    }
    return s;
  }

  void reset() override {
    cursor_ = 0;
    emitted_ = 0;
    write_leg_ = false;
  }
  [[nodiscard]] const std::string& name() const override { return cfg_.name; }

 private:
  StreamConfig cfg_;
  std::uint64_t lines_ = 0;
  std::uint64_t cursor_ = 0;
  std::uint64_t emitted_ = 0;
  bool write_leg_ = false;
};

/// Memory-phase / compute-phase alternation.
class PhasedKernel final : public Kernel {
 public:
  explicit PhasedKernel(PhasedConfig cfg) : cfg_(std::move(cfg)) {
    config_check(cfg_.lines_per_phase > 0, "phased: lines_per_phase must be > 0");
    config_check(cfg_.phases_per_iteration > 0,
                 "phased: phases_per_iteration must be > 0");
    lines_ = cfg_.footprint_bytes / cfg_.line_bytes;
  }

  KernelStep next(sim::Xoshiro256&) override {
    KernelStep s;
    if (line_in_phase_ < cfg_.lines_per_phase) {
      // Memory phase: sequential non-blocking reads.
      s.op = MemOp{cfg_.base + (cursor_ % lines_) * cfg_.line_bytes, false,
                   false};
      ++cursor_;
      ++line_in_phase_;
      return s;
    }
    // Compute phase closes the phase.
    s.compute_cycles = cfg_.compute_cycles_per_phase;
    line_in_phase_ = 0;
    ++phase_;
    if (phase_ >= cfg_.phases_per_iteration) {
      phase_ = 0;
      s.end_of_iteration = true;
    }
    return s;
  }

  void reset() override {
    cursor_ = 0;
    line_in_phase_ = 0;
    phase_ = 0;
  }
  [[nodiscard]] const std::string& name() const override { return cfg_.name; }

 private:
  PhasedConfig cfg_;
  std::uint64_t lines_ = 0;
  std::uint64_t cursor_ = 0;
  std::uint64_t line_in_phase_ = 0;
  std::uint64_t phase_ = 0;
};

/// Random read-modify-write.
class RandomRmwKernel final : public Kernel {
 public:
  explicit RandomRmwKernel(RandomRmwConfig cfg) : cfg_(std::move(cfg)) {
    config_check(cfg_.accesses_per_iteration > 0,
                 "random_rmw: needs accesses per iteration");
    lines_ = cfg_.footprint_bytes / cfg_.line_bytes;
  }

  KernelStep next(sim::Xoshiro256& rng) override {
    KernelStep s;
    s.compute_cycles = cfg_.compute_cycles_per_access;
    if (!store_leg_) {
      pending_addr_ = cfg_.base + rng.next_below(lines_) * cfg_.line_bytes;
      s.op = MemOp{pending_addr_, false, true};
      store_leg_ = true;
      return s;
    }
    s.op = MemOp{pending_addr_, true, false};
    store_leg_ = false;
    ++pos_;
    if (pos_ >= cfg_.accesses_per_iteration) {
      pos_ = 0;
      s.end_of_iteration = true;
    }
    return s;
  }

  void reset() override {
    pos_ = 0;
    store_leg_ = false;
  }
  [[nodiscard]] const std::string& name() const override { return cfg_.name; }

 private:
  RandomRmwConfig cfg_;
  std::uint64_t lines_ = 0;
  std::uint64_t pos_ = 0;
  bool store_leg_ = false;
  axi::Addr pending_addr_ = 0;
};

/// Blocked matmul.
class TiledMatmulKernel final : public Kernel {
 public:
  explicit TiledMatmulKernel(TiledMatmulConfig cfg) : cfg_(std::move(cfg)) {
    config_check(cfg_.tile_dim > 0 && cfg_.matrix_dim % cfg_.tile_dim == 0,
                 "matmul: tile must divide the matrix dimension");
    tiles_per_edge_ = cfg_.matrix_dim / cfg_.tile_dim;
    // Lines per tile: tile_dim rows of tile_dim * 4 bytes each.
    const std::uint32_t row_bytes = cfg_.tile_dim * 4;
    lines_per_tile_ = cfg_.tile_dim *
                      ((row_bytes + cfg_.line_bytes - 1) / cfg_.line_bytes);
  }

  KernelStep next(sim::Xoshiro256&) override {
    KernelStep s;
    // Phase order per tile-step: A lines, B lines, compute, C writes.
    if (phase_ == 0) {  // A tile: sequential
      s.op = MemOp{cfg_.base_a + tile_line_offset(ti_, kk_, false), false,
                   false};
      advance_line(lines_per_tile_);
      return s;
    }
    if (phase_ == 1) {  // B tile: column-major -> stride matrix row
      s.op = MemOp{cfg_.base_b + tile_line_offset(kk_, tj_, true), false,
                   false};
      advance_line(lines_per_tile_);
      return s;
    }
    if (phase_ == 2) {  // compute: T^3 MACs
      s.compute_cycles = cfg_.compute_cycles_per_mac * cfg_.tile_dim *
                         cfg_.tile_dim * cfg_.tile_dim / 64;
      ++phase_;
      return s;
    }
    // phase 3: C tile writeback
    s.op = MemOp{cfg_.base_c + tile_line_offset(ti_, tj_, false), true,
                 false};
    if (line_ + 1 >= lines_per_tile_) {
      line_ = 0;
      phase_ = 0;
      // Advance (kk, then tj, then ti).
      if (++kk_ >= tiles_per_edge_) {
        kk_ = 0;
        if (++tj_ >= tiles_per_edge_) {
          tj_ = 0;
          if (++ti_ >= tiles_per_edge_) {
            ti_ = 0;
            s.end_of_iteration = true;  // full matrix done
          }
        }
      }
    } else {
      ++line_;
    }
    return s;
  }

  void reset() override {
    phase_ = 0;
    line_ = 0;
    ti_ = tj_ = kk_ = 0;
  }
  [[nodiscard]] const std::string& name() const override { return cfg_.name; }

 private:
  axi::Addr tile_line_offset(std::uint32_t tr, std::uint32_t tc,
                             bool column_major) const {
    // Byte offset of the current line within tile (tr, tc) of the matrix.
    const std::uint64_t elem_bytes = 4;
    const std::uint64_t dim = cfg_.matrix_dim;
    const std::uint64_t lines_per_row =
        (cfg_.tile_dim * elem_bytes + cfg_.line_bytes - 1) / cfg_.line_bytes;
    const std::uint64_t row_in_tile = line_ / lines_per_row;
    const std::uint64_t line_in_row = line_ % lines_per_row;
    const std::uint64_t r = column_major
                                ? tr * cfg_.tile_dim + line_in_row
                                : tr * cfg_.tile_dim + row_in_tile;
    const std::uint64_t c = column_major
                                ? tc * cfg_.tile_dim + row_in_tile
                                : tc * cfg_.tile_dim;
    return (r * dim + c) * elem_bytes +
           (column_major ? 0 : line_in_row * cfg_.line_bytes);
  }

  void advance_line(std::uint64_t limit) {
    if (++line_ >= limit) {
      line_ = 0;
      ++phase_;
    }
  }

  TiledMatmulConfig cfg_;
  std::uint32_t tiles_per_edge_ = 0;
  std::uint64_t lines_per_tile_ = 0;
  std::uint32_t phase_ = 0;
  std::uint64_t line_ = 0;
  std::uint32_t ti_ = 0, tj_ = 0, kk_ = 0;
};

/// 3x3 convolution.
class Conv2dKernel final : public Kernel {
 public:
  explicit Conv2dKernel(Conv2dConfig cfg) : cfg_(std::move(cfg)) {
    config_check(cfg_.width > 0, "conv2d: width must be > 0");
    config_check(cfg_.rows_per_iteration > 0,
                 "conv2d: rows_per_iteration must be > 0");
    lines_per_row_ =
        (cfg_.width * 4 + cfg_.line_bytes - 1) / cfg_.line_bytes;
  }

  KernelStep next(sim::Xoshiro256&) override {
    KernelStep s;
    const std::uint64_t row_bytes =
        static_cast<std::uint64_t>(lines_per_row_) * cfg_.line_bytes;
    if (phase_ < 3) {  // read input rows y-1, y, y+1
      const std::uint64_t in_row = row_ + phase_;
      s.op = MemOp{cfg_.base_in + in_row * row_bytes +
                       line_ * cfg_.line_bytes,
                   false, false};
      s.compute_cycles = cfg_.compute_cycles_per_line / 3;
      step_line();
      return s;
    }
    // phase 3: write the output row
    s.op = MemOp{cfg_.base_out + row_ * row_bytes + line_ * cfg_.line_bytes,
                 true, false};
    if (line_ + 1 >= lines_per_row_) {
      line_ = 0;
      phase_ = 0;
      ++row_;
      if (row_ >= cfg_.rows_per_iteration) {
        row_ = 0;
        s.end_of_iteration = true;
      }
    } else {
      ++line_;
    }
    return s;
  }

  void reset() override {
    phase_ = 0;
    line_ = 0;
    row_ = 0;
  }
  [[nodiscard]] const std::string& name() const override { return cfg_.name; }

 private:
  void step_line() {
    if (++line_ >= lines_per_row_) {
      line_ = 0;
      ++phase_;
    }
  }

  Conv2dConfig cfg_;
  std::uint64_t lines_per_row_ = 0;
  std::uint32_t phase_ = 0;
  std::uint64_t line_ = 0;
  std::uint64_t row_ = 0;
};

/// FFT butterfly passes with doubling stride.
class FftStrideKernel final : public Kernel {
 public:
  explicit FftStrideKernel(FftStrideConfig cfg) : cfg_(std::move(cfg)) {
    config_check(cfg_.elements >= 2 &&
                     (cfg_.elements & (cfg_.elements - 1)) == 0,
                 "fft: elements must be a power of two >= 2");
    passes_ = 0;
    for (std::uint32_t n = cfg_.elements; n > 1; n >>= 1) {
      ++passes_;
    }
  }

  KernelStep next(sim::Xoshiro256&) override {
    KernelStep s;
    s.compute_cycles = cfg_.compute_cycles_per_butterfly;
    // Butterfly pair (index_, index_ + stride); we touch both lines.
    const std::uint64_t stride = std::uint64_t{1} << pass_;
    const std::uint64_t idx = leg_ == 0 ? index_ : index_ + stride;
    s.op = MemOp{cfg_.base + idx * 8, leg_ == 1, false};
    if (leg_ == 0) {
      leg_ = 1;
      return s;
    }
    leg_ = 0;
    index_ += 1;
    if ((index_ & (stride - 1)) == 0) {
      index_ += stride;  // skip the upper half of each butterfly block
    }
    if (index_ + stride > cfg_.elements) {
      index_ = 0;
      ++pass_;
      if (pass_ >= passes_) {
        pass_ = 0;
        s.end_of_iteration = true;
      }
    }
    return s;
  }

  void reset() override {
    pass_ = 0;
    index_ = 0;
    leg_ = 0;
  }
  [[nodiscard]] const std::string& name() const override { return cfg_.name; }

 private:
  FftStrideConfig cfg_;
  std::uint32_t passes_ = 0;
  std::uint32_t pass_ = 0;
  std::uint64_t index_ = 0;
  std::uint32_t leg_ = 0;
};

/// L1-resident compute.
class ComputeBoundKernel final : public Kernel {
 public:
  explicit ComputeBoundKernel(ComputeBoundConfig cfg) : cfg_(std::move(cfg)) {
    config_check(cfg_.accesses_per_iteration > 0,
                 "compute_bound: needs accesses per iteration");
    lines_ = cfg_.footprint_bytes / cfg_.line_bytes;
    config_check(lines_ > 0, "compute_bound: footprint too small");
  }

  KernelStep next(sim::Xoshiro256&) override {
    KernelStep s;
    s.compute_cycles = cfg_.compute_cycles_per_access;
    s.op = MemOp{cfg_.base + (cursor_ % lines_) * cfg_.line_bytes, false, true};
    ++cursor_;
    ++pos_;
    if (pos_ >= cfg_.accesses_per_iteration) {
      pos_ = 0;
      s.end_of_iteration = true;
    }
    return s;
  }

  void reset() override {
    cursor_ = 0;
    pos_ = 0;
  }
  [[nodiscard]] const std::string& name() const override { return cfg_.name; }

 private:
  ComputeBoundConfig cfg_;
  std::uint64_t lines_ = 0;
  std::uint64_t cursor_ = 0;
  std::uint64_t pos_ = 0;
};

}  // namespace

std::unique_ptr<cpu::Kernel> make_pointer_chase(PointerChaseConfig cfg) {
  return std::make_unique<PointerChaseKernel>(std::move(cfg));
}

std::unique_ptr<cpu::Kernel> make_stream(StreamConfig cfg) {
  return std::make_unique<StreamKernel>(std::move(cfg));
}

std::unique_ptr<cpu::Kernel> make_phased(PhasedConfig cfg) {
  return std::make_unique<PhasedKernel>(std::move(cfg));
}

std::unique_ptr<cpu::Kernel> make_random_rmw(RandomRmwConfig cfg) {
  return std::make_unique<RandomRmwKernel>(std::move(cfg));
}

std::unique_ptr<cpu::Kernel> make_tiled_matmul(TiledMatmulConfig cfg) {
  return std::make_unique<TiledMatmulKernel>(std::move(cfg));
}

std::unique_ptr<cpu::Kernel> make_conv2d(Conv2dConfig cfg) {
  return std::make_unique<Conv2dKernel>(std::move(cfg));
}

std::unique_ptr<cpu::Kernel> make_fft_stride(FftStrideConfig cfg) {
  return std::make_unique<FftStrideKernel>(std::move(cfg));
}

std::unique_ptr<cpu::Kernel> make_compute_bound(ComputeBoundConfig cfg) {
  return std::make_unique<ComputeBoundKernel>(std::move(cfg));
}

}  // namespace fgqos::wl
