/// \file trace.hpp
/// \brief Transaction trace capture and replay.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "axi/port.hpp"
#include "cpu/kernel.hpp"

namespace fgqos::wl {

/// One captured event (a granted line).
struct TraceEvent {
  sim::TimePs time = 0;
  axi::MasterId master = 0;
  axi::Addr addr = 0;
  std::uint32_t bytes = 0;
  bool is_write = false;
};

/// Observer that records every granted line on the port(s) it is attached
/// to. Useful for debugging and for building replayable workloads.
class TraceRecorder final : public axi::TxnObserver {
 public:
  /// \param max_events recording stops silently after this many (bounds
  ///        memory); 0 = unlimited.
  explicit TraceRecorder(std::size_t max_events = 0);

  [[nodiscard]] const std::vector<TraceEvent>& events() const {
    return events_;
  }
  [[nodiscard]] bool truncated() const { return truncated_; }
  void clear();

  /// Saves as CSV (time_ps,master,addr,bytes,is_write).
  void save_csv(const std::string& path) const;
  /// Loads a CSV produced by save_csv. Throws ConfigError on parse errors.
  static std::vector<TraceEvent> load_csv(const std::string& path);

  // TxnObserver
  void on_issue(const axi::Transaction&, sim::TimePs) override {}
  void on_grant(const axi::LineRequest& line, sim::TimePs now) override;
  void on_complete(const axi::Transaction&, sim::TimePs) override {}

 private:
  std::size_t max_events_;
  bool truncated_ = false;
  std::vector<TraceEvent> events_;
};

/// Kernel that replays the memory accesses of a captured trace (timestamps
/// are ignored; ordering and addresses are preserved; all accesses are
/// non-blocking reads/writes per the recorded direction).
std::unique_ptr<cpu::Kernel> make_trace_replay(std::string name,
                                               std::vector<TraceEvent> events,
                                               bool blocking_reads = false);

}  // namespace fgqos::wl
