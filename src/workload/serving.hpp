/// \file serving.hpp
/// \brief Request-serving workload family: key-value tenants with Zipfian
///        key popularity and open-loop arrival processes.
///
/// The paper regulates raw bandwidth streams; this layer models what those
/// streams carry at production scale — request-level traffic whose contract
/// is tail latency, not MB/s. A ServingTenant is a memcache-style client
/// population bound to one SoC master port: requests arrive on an
/// open-loop schedule (Poisson, or a bursty two-state MMPP), pick keys by
/// a Zipfian popularity law, and traverse the full memory path as AXI
/// transactions. Per-request latency (arrival to completion, queueing
/// included) feeds a per-tenant sim::Histogram and per-tenant SLO
/// attainment against a deadline.
///
/// Everything random is pre-generated into an op buffer at construction
/// (the RACoherence workload idiom): the hot path replays immutable
/// descriptors, so a tenant's traffic is a pure function of
/// (spec, duration, seed) — byte-identical across --jobs and replayable
/// under fault injection.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "axi/interconnect.hpp"
#include "sim/histogram.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace fgqos::wl {

/// Open-loop arrival process of a tenant.
enum class ArrivalKind : std::uint8_t {
  kPoisson,  ///< exponential inter-arrivals at rate_qps
  kMmpp,     ///< 2-state Markov-modulated Poisson (base + burst state)
};

/// Returns "poisson" / "mmpp".
const char* arrival_kind_name(ArrivalKind k);
/// Inverse of arrival_kind_name; throws ConfigError on unknown names.
ArrivalKind arrival_kind_from_name(const std::string& name);

/// One tenant of the serving population. JSON schema (all fields
/// optional unless noted, unknown keys rejected):
///   name            string, unique per spec (CSV/metric-safe)
///   port            HP port index (unique per spec)
///   arrival         "poisson" | "mmpp"
///   rate_qps        mean offered load; MMPP: base-state rate
///   burst_qps       MMPP only: burst-state rate
///   dwell_us        MMPP only: mean dwell in the base state
///   burst_dwell_us  MMPP only: mean dwell in the burst state
///   zipf_s          key-popularity exponent (0 = uniform)
///   keys            key-space size
///   value_bytes     value size (fixed, or minimum when value_bytes_max set)
///   value_bytes_max 0 = fixed size; else uniform in [value_bytes, max]
///   read_fraction   GET fraction (rest are SETs / writes)
///   slo_us          per-request deadline for SLO attainment
///   max_outstanding service concurrency (in-flight AXI transactions)
///   queue_capacity  pending-request bound; overflow counts as dropped
///   start_us        arrivals begin this long into the run
struct ServingTenantSpec {
  std::string name = "lc";
  std::size_t port = 0;
  ArrivalKind arrival = ArrivalKind::kPoisson;
  double rate_qps = 100000.0;
  double burst_qps = 0.0;
  sim::TimePs dwell_ps = 0;
  sim::TimePs burst_dwell_ps = 0;
  double zipf_s = 0.99;
  std::uint64_t key_count = 65536;
  std::uint32_t value_bytes = 1024;
  std::uint32_t value_bytes_max = 0;
  double read_fraction = 0.95;
  sim::TimePs slo_ps = 5 * sim::kPsPerUs;
  std::size_t max_outstanding = 8;
  std::size_t queue_capacity = 4096;
  sim::TimePs start_ps = 0;
  /// Key-space placement (not serialized): 0 = auto-assign by port.
  axi::Addr base = 0;
  std::uint64_t footprint_bytes = 64ull << 20;
};

/// A whole serving scenario: shared seed + arrival horizon + tenants.
/// Top-level JSON keys: "seed", "duration_us", "tenants".
struct ServingSpec {
  std::uint64_t seed = 1;
  sim::TimePs duration_ps = 10 * sim::kPsPerMs;
  std::vector<ServingTenantSpec> tenants;

  /// Parses + validates; throws ConfigError naming the offending field.
  static ServingSpec from_json(const std::string& text);
  static ServingSpec from_file(const std::string& path);
  /// Canonical serialization; from_json(to_json()) round-trips exactly
  /// (uint64 seed included — integer path, never through double).
  [[nodiscard]] std::string to_json() const;
};

/// Bounded Zipfian sampler over ranks [0, n): P(rank r) ~ 1/(r+1)^s.
/// Inverse-CDF over a precomputed table — exact for any s >= 0 (s = 0 is
/// uniform), O(log n) per sample, used only at op-buffer generation time.
class ZipfianSampler {
 public:
  ZipfianSampler(std::uint64_t n, double s);
  /// Rank in [0, n); rank 0 is the most popular key.
  [[nodiscard]] std::uint64_t sample(sim::Xoshiro256& rng) const;
  [[nodiscard]] std::uint64_t n() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

/// One pre-generated request descriptor.
struct ServingOp {
  sim::TimePs arrival_ps;
  axi::Addr addr;
  std::uint32_t bytes;
  axi::Dir dir;
};

/// Per-tenant RNG seed: derive_seed lineage over (plan seed ^ run seed),
/// so equal (spec, run) pairs produce byte-identical op buffers on any
/// --jobs schedule.
[[nodiscard]] std::uint64_t serving_tenant_seed(std::uint64_t spec_seed,
                                                std::uint64_t run_seed,
                                                std::size_t tenant_index);

/// Pre-generates the arrival schedule over [start_ps, start_ps +
/// duration_ps). Pure function of (spec, duration, seed); uses the same
/// sub-stream generate_ops() uses for arrivals.
[[nodiscard]] std::vector<sim::TimePs> generate_arrivals(
    const ServingTenantSpec& spec, sim::TimePs duration_ps,
    std::uint64_t seed);

/// Pre-generates the full op buffer (arrival + key address + size + dir).
/// Pure function of (spec, duration, seed).
[[nodiscard]] std::vector<ServingOp> generate_ops(
    const ServingTenantSpec& spec, sim::TimePs duration_ps,
    std::uint64_t seed);

/// Tenant statistics. Conservation invariant (checked by tests): at any
/// time, generated == completed + dropped + in_flight + queue_depth.
struct ServingTenantStats {
  std::uint64_t generated = 0;  ///< arrivals admitted or dropped
  std::uint64_t completed = 0;
  std::uint64_t dropped = 0;    ///< queue-capacity overflow (an SLO miss)
  std::uint64_t slo_met = 0;    ///< completions within the deadline
  std::uint64_t error_completions = 0;  ///< non-OKAY responses (still done)
  std::uint64_t issued_bytes = 0;
  std::uint64_t completed_bytes = 0;
  std::uint64_t peak_queue_depth = 0;
  sim::TimePs first_arrival_at = sim::kTimeNever;
  sim::TimePs last_completion_at = 0;
};

/// The runtime tenant; drives one master port. Open-loop by construction:
/// the arrival schedule is fixed at build time, so a stalled service path
/// grows the pending queue (and eventually drops) instead of slowing the
/// offered load — the failure mode that separates open- from closed-loop
/// load generators.
class ServingTenant final : public sim::Clocked {
 public:
  /// \param port must outlive the tenant; its completion handler is taken
  ///        over, so a port serves at most one tenant (and no TrafficGen).
  ServingTenant(sim::Simulator& sim, const sim::ClockDomain& clk,
                ServingTenantSpec spec, sim::TimePs duration_ps,
                std::uint64_t seed, axi::MasterPort& port);

  [[nodiscard]] const ServingTenantSpec& spec() const { return spec_; }
  [[nodiscard]] const ServingTenantStats& stats() const { return stats_; }
  /// Request latency (arrival to completion, ps) over the whole run.
  [[nodiscard]] const sim::Histogram& latency() const { return latency_; }
  [[nodiscard]] const std::vector<ServingOp>& ops() const { return ops_; }
  [[nodiscard]] std::size_t queue_depth() const { return queue_.size(); }
  [[nodiscard]] std::size_t in_flight() const { return in_flight_; }
  /// True when every generated request has completed or been dropped.
  [[nodiscard]] bool drained() const;

  /// Requests with a final disposition (completed + dropped).
  [[nodiscard]] std::uint64_t finished() const;
  /// True once at least one request finished — only then is SLO
  /// attainment a measurement. Render paths must report "n/a" (CSV/text)
  /// or null (JSON) while this is false instead of a fabricated number;
  /// see attainment_pct_cell().
  [[nodiscard]] bool slo_attainment_available() const;
  /// SLO attainment over finished requests: slo_met / (completed +
  /// dropped). Drops count as misses. Zero-sample result is pinned to
  /// 1.0 (total function, never NaN) but carries no information — check
  /// slo_attainment_available() before reporting it.
  [[nodiscard]] double slo_attainment() const;
  /// Offered / completed request rates over [0, now].
  [[nodiscard]] double offered_qps() const;
  [[nodiscard]] double completed_qps() const;

  bool tick(sim::Cycles cycle) override;

 private:
  ServingTenantSpec spec_;
  axi::MasterPort* port_;
  std::vector<ServingOp> ops_;
  std::size_t next_op_ = 0;          ///< next arrival not yet admitted
  std::deque<std::size_t> queue_;    ///< admitted, awaiting an issue slot
  std::size_t in_flight_ = 0;
  ServingTenantStats stats_;
  sim::Histogram latency_;
};

/// Shared attainment-cell formatter for CSV/table output: the attainment
/// percentage with \p decimals fraction digits, or "n/a" while the tenant
/// has no finished requests. Every render path uses this so the
/// zero-sample treatment cannot drift between tools.
[[nodiscard]] std::string attainment_pct_cell(const ServingTenant& tenant,
                                              int decimals = 4);

}  // namespace fgqos::wl
