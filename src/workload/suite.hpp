/// \file suite.hpp
/// \brief Named benchmark suite used by the end-to-end experiments (EXP6).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cpu/kernel.hpp"

namespace fgqos::wl {

/// A named kernel factory plus the iteration count that gives a
/// measurement of reasonable length on the default platform.
struct SuiteEntry {
  std::string name;
  std::string description;
  std::function<std::unique_ptr<cpu::Kernel>()> make;
  std::uint64_t iterations;
};

/// The suite: one entry per workload class the paper's group uses for
/// worst-case characterisation (streaming, copy, random, phased,
/// compute-bound control).
const std::vector<SuiteEntry>& benchmark_suite();

/// Finds an entry by name; throws ConfigError when absent.
const SuiteEntry& suite_entry(const std::string& name);

}  // namespace fgqos::wl
