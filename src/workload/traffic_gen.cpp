#include "workload/traffic_gen.hpp"

#include <algorithm>

#include "util/config_error.hpp"

namespace fgqos::wl {

const char* pattern_name(Pattern p) {
  switch (p) {
    case Pattern::kSeqRead: return "seq_rd";
    case Pattern::kSeqWrite: return "seq_wr";
    case Pattern::kCopy: return "copy";
    case Pattern::kRandomRead: return "rnd_rd";
    case Pattern::kRandomWrite: return "rnd_wr";
    case Pattern::kStrided: return "strided";
  }
  return "?";
}

TrafficGen::TrafficGen(sim::Simulator& sim, const sim::ClockDomain& clk,
                       TrafficGenConfig cfg, axi::MasterPort& port)
    : sim::Clocked(sim, clk, cfg.name),
      cfg_(std::move(cfg)),
      port_(&port),
      rng_(cfg_.seed) {
  config_check(cfg_.burst_bytes > 0, "TrafficGen: burst_bytes must be > 0");
  config_check(cfg_.footprint_bytes >= cfg_.burst_bytes,
               "TrafficGen: footprint smaller than one burst");
  config_check(cfg_.max_outstanding > 0,
               "TrafficGen: max_outstanding must be > 0");
  config_check((cfg_.active_ps == 0) == (cfg_.idle_ps == 0),
               "TrafficGen: active_ps and idle_ps must both be set or unset");
  prof_tag_ = sim.profile_tag("workload.traffic_gen");
  port_->set_completion_handler([this](const axi::Transaction& txn) {
    --outstanding_;
    if (txn.resp != axi::Resp::kOkay) {
      // Errored burst: the payload never arrived. The user tag carries
      // the attempt count; re-issue with capped exponential backoff.
      ++stats_.error_completions;
      const auto attempt = static_cast<std::uint32_t>(txn.user);
      if (cfg_.max_retries > 0 && attempt < cfg_.max_retries) {
        const std::uint32_t shift = std::min<std::uint32_t>(attempt, 6);
        const sim::TimePs backoff = cfg_.retry_backoff_ps << shift;
        const axi::Dir dir = txn.dir;
        const axi::Addr addr = txn.addr;
        const std::uint32_t bytes = txn.bytes;
        simulator().schedule_after(
            backoff,
            [this, dir, addr, bytes, attempt]() {
              if (port_->issue(dir, addr, bytes, attempt + 1)) {
                ++outstanding_;
                ++stats_.retries_issued;
              } else {
                ++stats_.retries_abandoned;
              }
            },
            prof_tag_);
      } else {
        ++stats_.retries_abandoned;
      }
    } else {
      stats_.completed_bytes += txn.bytes;
    }
    stats_.last_completion_at = txn.completed;
    if (trace_ != nullptr) {
      trace_->counter(track_, "outstanding", txn.completed,
                      static_cast<double>(outstanding_));
    }
    wake();
  });
}

void TrafficGen::set_trace(telemetry::TraceWriter* writer) {
  trace_ = writer;
  track_ = telemetry::TrackId{};
  if (trace_ != nullptr) {
    track_ = trace_->track(telemetry::Cat::kWorkload, cfg_.name);
    if (!track_.valid()) {
      trace_ = nullptr;  // workload category filtered out
    }
  }
}

bool TrafficGen::drained() const {
  return cfg_.max_bytes != 0 && stats_.issued_bytes >= cfg_.max_bytes &&
         outstanding_ == 0;
}

double TrafficGen::achieved_bps(sim::TimePs since_ps) const {
  const sim::TimePs now = simulator().now();
  if (now <= since_ps) {
    return 0.0;
  }
  return sim::bytes_per_second(stats_.completed_bytes, now - since_ps);
}

TrafficGen::NextOp TrafficGen::make_op() {
  const std::uint64_t bursts = cfg_.footprint_bytes / cfg_.burst_bytes;
  NextOp op{axi::Dir::kRead, cfg_.base};
  switch (cfg_.pattern) {
    case Pattern::kSeqRead:
    case Pattern::kSeqWrite: {
      op.dir = cfg_.pattern == Pattern::kSeqWrite ? axi::Dir::kWrite
                                                  : axi::Dir::kRead;
      op.addr = cfg_.base + (cursor_ % bursts) * cfg_.burst_bytes;
      ++cursor_;
      break;
    }
    case Pattern::kCopy: {
      // Read from the lower half, write to the upper half, alternating.
      const std::uint64_t half = bursts / 2;
      const std::uint64_t idx = cursor_ % (half == 0 ? 1 : half);
      if (copy_phase_write_) {
        op.dir = axi::Dir::kWrite;
        op.addr = cfg_.base + (half + idx) * cfg_.burst_bytes;
        ++cursor_;
      } else {
        op.dir = axi::Dir::kRead;
        op.addr = cfg_.base + idx * cfg_.burst_bytes;
      }
      copy_phase_write_ = !copy_phase_write_;
      break;
    }
    case Pattern::kRandomRead:
    case Pattern::kRandomWrite: {
      op.dir = cfg_.pattern == Pattern::kRandomWrite ? axi::Dir::kWrite
                                                     : axi::Dir::kRead;
      op.addr = cfg_.base + rng_.next_below(bursts) * cfg_.burst_bytes;
      break;
    }
    case Pattern::kStrided: {
      op.dir = axi::Dir::kRead;
      const std::uint64_t offset =
          (cursor_ * cfg_.stride_bytes) % cfg_.footprint_bytes;
      op.addr = cfg_.base + offset;
      ++cursor_;
      break;
    }
  }
  return op;
}

bool TrafficGen::in_active_phase(sim::TimePs now,
                                 sim::TimePs* resume_at) const {
  if (cfg_.active_ps == 0) {
    return true;
  }
  const sim::TimePs cycle_len = cfg_.active_ps + cfg_.idle_ps;
  const sim::TimePs origin =
      now < cfg_.start_delay_ps ? 0 : now - cfg_.start_delay_ps;
  const sim::TimePs phase = origin % cycle_len;
  if (phase < cfg_.active_ps) {
    return true;
  }
  *resume_at = now + (cycle_len - phase);
  return false;
}

bool TrafficGen::tick(sim::Cycles /*cycle*/) {
  const sim::TimePs now = simulator().now();
  if (now < cfg_.start_delay_ps) {
    wake_at(cfg_.start_delay_ps);
    return false;
  }
  if (cfg_.max_bytes != 0 && stats_.issued_bytes >= cfg_.max_bytes) {
    return false;  // done; completions still drain via the callback
  }
  sim::TimePs resume = 0;
  if (!in_active_phase(now, &resume)) {
    wake_at(resume);
    return false;
  }
  if (outstanding_ >= cfg_.max_outstanding) {
    return false;  // completion callback wakes us
  }
  if (cfg_.target_bps > 0 && now < next_paced_issue_) {
    wake_at(next_paced_issue_);
    return false;
  }
  const NextOp op = make_op();
  if (!port_->issue(op.dir, op.addr, cfg_.burst_bytes)) {
    return true;  // port queue full; retry next cycle
  }
  ++outstanding_;
  ++stats_.transactions;
  stats_.issued_bytes += cfg_.burst_bytes;
  if (trace_ != nullptr) {
    trace_->counter(track_, "outstanding", now,
                    static_cast<double>(outstanding_));
  }
  if (stats_.first_issue_at == sim::kTimeNever) {
    stats_.first_issue_at = now;
  }
  if (cfg_.target_bps > 0) {
    const double interval_ps =
        static_cast<double>(cfg_.burst_bytes) * 1e12 / cfg_.target_bps;
    next_paced_issue_ = now + static_cast<sim::TimePs>(interval_ps);
  }
  return true;
}

}  // namespace fgqos::wl
