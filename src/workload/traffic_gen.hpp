/// \file traffic_gen.hpp
/// \brief DMA-style accelerator traffic generators.
///
/// Models the memory behaviour of FPGA accelerators: large bursts, high
/// outstanding counts, saturating or paced issue, optional phased on/off
/// activity (for reclamation experiments) — the same synthetic traffic
/// classes the paper's group uses to characterise worst-case DRAM
/// interference on FPGA HeSoCs.
#pragma once

#include <cstdint>
#include <string>

#include "axi/interconnect.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "telemetry/trace.hpp"

namespace fgqos::wl {

/// Address pattern of the generator.
enum class Pattern : std::uint8_t {
  kSeqRead,
  kSeqWrite,
  kCopy,        ///< alternating read/write between two halves
  kRandomRead,
  kRandomWrite,
  kStrided,     ///< reads at a fixed stride
};

/// Returns a short label ("seq_rd", ...) for reports.
const char* pattern_name(Pattern p);

/// Generator configuration.
struct TrafficGenConfig {
  std::string name = "tg";
  Pattern pattern = Pattern::kSeqRead;
  axi::Addr base = 0x4000'0000;
  std::uint64_t footprint_bytes = 16ull << 20;
  std::uint32_t burst_bytes = 1024;       ///< per transaction
  std::uint64_t stride_bytes = 4096;      ///< for kStrided
  std::size_t max_outstanding = 4;        ///< self-imposed cap
  /// Self-pacing target rate in bytes/second (0 = saturate the port).
  double target_bps = 0.0;
  /// Phased activity: active for active_ps then idle for idle_ps,
  /// repeating. Both zero = always active.
  sim::TimePs active_ps = 0;
  sim::TimePs idle_ps = 0;
  /// Generation starts this long after simulation start.
  sim::TimePs start_delay_ps = 0;
  /// Stop after this many issued bytes (0 = unlimited).
  std::uint64_t max_bytes = 0;
  std::uint64_t seed = 99;
  /// Error-response hardening: a transaction completing with a non-OKAY
  /// AXI response is re-issued after retry_backoff_ps * 2^attempt, up to
  /// max_retries attempts (0 disables retries; errored bytes are then
  /// simply not counted as completed).
  std::uint32_t max_retries = 3;
  sim::TimePs retry_backoff_ps = 100'000;  // 100 ns base backoff
};

/// Generator statistics.
struct TrafficGenStats {
  std::uint64_t issued_bytes = 0;
  std::uint64_t completed_bytes = 0;
  std::uint64_t transactions = 0;
  sim::TimePs first_issue_at = sim::kTimeNever;
  sim::TimePs last_completion_at = 0;
  std::uint64_t error_completions = 0;   ///< non-OKAY responses observed
  std::uint64_t retries_issued = 0;      ///< error retries that re-issued
  std::uint64_t retries_abandoned = 0;   ///< retry budget/queue exhausted
};

/// The generator; drives one master port.
class TrafficGen final : public sim::Clocked {
 public:
  /// \param port must outlive the generator; its completion handler is
  ///        taken over by this object.
  TrafficGen(sim::Simulator& sim, const sim::ClockDomain& clk,
             TrafficGenConfig cfg, axi::MasterPort& port);

  [[nodiscard]] const TrafficGenConfig& config() const { return cfg_; }
  [[nodiscard]] const TrafficGenStats& stats() const { return stats_; }
  [[nodiscard]] axi::MasterPort& port() { return *port_; }
  /// True when max_bytes was reached and everything completed.
  [[nodiscard]] bool drained() const;

  /// Mean achieved bandwidth over [since, now] based on completions.
  [[nodiscard]] double achieved_bps(sim::TimePs since_ps = 0) const;

  /// Changes the pacing target at runtime (0 = saturate).
  void set_target_bps(double bps) { cfg_.target_bps = bps; }

  /// Attaches the Chrome-trace sink (nullptr detaches): the in-flight
  /// transaction count becomes a counter series on a track named after
  /// this generator.
  void set_trace(telemetry::TraceWriter* writer);

  bool tick(sim::Cycles cycle) override;

 private:
  struct NextOp {
    axi::Dir dir;
    axi::Addr addr;
  };
  NextOp make_op();
  [[nodiscard]] bool in_active_phase(sim::TimePs now,
                                     sim::TimePs* resume_at) const;

  TrafficGenConfig cfg_;
  axi::MasterPort* port_;
  sim::Xoshiro256 rng_;
  TrafficGenStats stats_;
  std::uint32_t prof_tag_ = 0;  ///< host-profiler tag, workload.traffic_gen
  std::uint64_t cursor_ = 0;
  bool copy_phase_write_ = false;
  std::size_t outstanding_ = 0;
  sim::TimePs next_paced_issue_ = 0;
  telemetry::TraceWriter* trace_ = nullptr;
  telemetry::TrackId track_;
};

}  // namespace fgqos::wl
