#include "workload/trace.hpp"

#include <fstream>

#include "util/config_error.hpp"
#include "util/string_util.hpp"

namespace fgqos::wl {

TraceRecorder::TraceRecorder(std::size_t max_events)
    : max_events_(max_events) {}

void TraceRecorder::clear() {
  events_.clear();
  truncated_ = false;
}

void TraceRecorder::on_grant(const axi::LineRequest& line, sim::TimePs now) {
  if (max_events_ != 0 && events_.size() >= max_events_) {
    truncated_ = true;
    return;
  }
  events_.push_back(TraceEvent{now, line.txn->master, line.addr, line.bytes,
                               line.is_write});
}

void TraceRecorder::save_csv(const std::string& path) const {
  std::ofstream os(path);
  config_check(static_cast<bool>(os), "TraceRecorder: cannot open " + path);
  os << "time_ps,master,addr,bytes,is_write\n";
  for (const auto& e : events_) {
    os << e.time << ',' << e.master << ',' << e.addr << ',' << e.bytes << ','
       << (e.is_write ? 1 : 0) << '\n';
  }
  config_check(static_cast<bool>(os), "TraceRecorder: write failed " + path);
}

std::vector<TraceEvent> TraceRecorder::load_csv(const std::string& path) {
  std::ifstream is(path);
  config_check(static_cast<bool>(is), "TraceRecorder: cannot open " + path);
  std::string line;
  config_check(static_cast<bool>(std::getline(is, line)),
               "TraceRecorder: empty file " + path);
  std::vector<TraceEvent> out;
  while (std::getline(is, line)) {
    if (line.empty()) {
      continue;
    }
    const auto parts = util::split(line, ',');
    config_check(parts.size() == 5, "TraceRecorder: bad row in " + path);
    TraceEvent e;
    e.time = std::stoull(parts[0]);
    e.master = static_cast<axi::MasterId>(std::stoul(parts[1]));
    e.addr = std::stoull(parts[2]);
    e.bytes = static_cast<std::uint32_t>(std::stoul(parts[3]));
    e.is_write = parts[4] == "1";
    out.push_back(e);
  }
  return out;
}

namespace {

class TraceReplayKernel final : public cpu::Kernel {
 public:
  TraceReplayKernel(std::string name, std::vector<TraceEvent> events,
                    bool blocking_reads)
      : name_(std::move(name)),
        events_(std::move(events)),
        blocking_reads_(blocking_reads) {
    config_check(!events_.empty(), "trace replay: empty trace");
  }

  cpu::KernelStep next(sim::Xoshiro256&) override {
    const TraceEvent& e = events_[pos_];
    cpu::KernelStep s;
    s.op = cpu::MemOp{e.addr, e.is_write,
                      blocking_reads_ && !e.is_write};
    ++pos_;
    if (pos_ >= events_.size()) {
      pos_ = 0;
      s.end_of_iteration = true;
    }
    return s;
  }

  void reset() override { pos_ = 0; }
  [[nodiscard]] const std::string& name() const override { return name_; }

 private:
  std::string name_;
  std::vector<TraceEvent> events_;
  bool blocking_reads_;
  std::size_t pos_ = 0;
};

}  // namespace

std::unique_ptr<cpu::Kernel> make_trace_replay(std::string name,
                                               std::vector<TraceEvent> events,
                                               bool blocking_reads) {
  return std::make_unique<TraceReplayKernel>(std::move(name),
                                             std::move(events),
                                             blocking_reads);
}

}  // namespace fgqos::wl
