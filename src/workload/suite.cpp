#include "workload/suite.hpp"

#include "util/config_error.hpp"
#include "workload/cpu_workloads.hpp"

namespace fgqos::wl {

const std::vector<SuiteEntry>& benchmark_suite() {
  static const std::vector<SuiteEntry> kSuite = [] {
    std::vector<SuiteEntry> s;
    s.push_back(SuiteEntry{
        "memread",
        "streaming reads, 8 MiB footprint (DRAM-bound bandwidth)",
        [] {
          StreamConfig c;
          c.name = "memread";
          c.mode = StreamMode::kRead;
          return make_stream(c);
        },
        120});
    s.push_back(SuiteEntry{
        "memcpy",
        "streaming copy, read+write halves of 8 MiB",
        [] {
          StreamConfig c;
          c.name = "memcpy";
          c.mode = StreamMode::kCopy;
          return make_stream(c);
        },
        40});
    s.push_back(SuiteEntry{
        "memwrite",
        "streaming writes, 8 MiB footprint (write-drain pressure)",
        [] {
          StreamConfig c;
          c.name = "memwrite";
          c.mode = StreamMode::kWrite;
          return make_stream(c);
        },
        24});
    s.push_back(SuiteEntry{
        "latency",
        "dependent random loads over 16 MiB (latency-critical)",
        [] {
          PointerChaseConfig c;
          c.name = "latency";
          return make_pointer_chase(c);
        },
        24});
    s.push_back(SuiteEntry{
        "update",
        "random read-modify-write over 32 MiB",
        [] {
          RandomRmwConfig c;
          c.name = "update";
          return make_random_rmw(c);
        },
        40});
    s.push_back(SuiteEntry{
        "phased",
        "PREM-style alternation of memory and compute phases",
        [] {
          PhasedConfig c;
          c.name = "phased";
          return make_phased(c);
        },
        40});
    s.push_back(SuiteEntry{
        "compute",
        "L1-resident compute control (interference-insensitive)",
        [] {
          ComputeBoundConfig c;
          c.name = "compute";
          return make_compute_bound(c);
        },
        170});
    s.push_back(SuiteEntry{
        "matmul",
        "blocked 384x384 matmul, 64x64 tiles (compute/memory mix)",
        [] {
          TiledMatmulConfig c;
          c.name = "matmul";
          c.matrix_dim = 384;
          return make_tiled_matmul(c);
        },
        2});
    s.push_back(SuiteEntry{
        "conv2d",
        "3x3 convolution over 1920x256 rows (vision pipeline)",
        [] {
          Conv2dConfig c;
          c.name = "conv2d";
          c.rows_per_iteration = 256;
          return make_conv2d(c);
        },
        4});
    s.push_back(SuiteEntry{
        "fft",
        "butterfly passes with doubling stride over 1 MiB",
        [] {
          FftStrideConfig c;
          c.name = "fft";
          c.elements = 1u << 17;
          return make_fft_stride(c);
        },
        2});
    return s;
  }();
  return kSuite;
}

const SuiteEntry& suite_entry(const std::string& name) {
  for (const auto& e : benchmark_suite()) {
    if (e.name == name) {
      return e;
    }
  }
  throw ConfigError("suite_entry: unknown workload '" + name + "'");
}

}  // namespace fgqos::wl
